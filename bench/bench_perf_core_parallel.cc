// perf_core_parallel — partitioned parallel engine benchmark (no paper figure).
//
// Runs the same Bullet' workload over the routed transit-stub topology twice:
// once on the serial engine (num_threads = 1) and once on the partitioned
// multi-threaded engine (num_threads = N, one worker per transit domain
// partition), and reports both wall clocks plus their ratio. The parallel leg
// runs a second time and `parallel_deterministic` is 1.0 only when both
// parallel runs agree completion-for-completion — a large-scale check that the
// engine's results depend on the partition count, never on thread scheduling.
//
// The topology pins transit_delay_min to the sync quantum so the conservative
// lookahead (min up-delay + cross-delay + min down-delay) always covers a full
// window regardless of --nodes; see docs/ARCHITECTURE.md "Partitioned parallel
// engine". Serial and parallel legs are compared through the usual completion
// metrics with the baseline's relative band, not bit-identity: the sharded
// water-fill is deterministic but may resolve exact FP share ties differently
// from the serial allocator (src/sim/bandwidth_allocator.h documents this).
//
// `parallel_speedup_ok` is the CI floor for the tentpole acceptance: at 4+
// threads the parallel engine must be >= 1.5x the serial wall clock; at 2-3
// threads it only has to not be slower. On a machine with fewer hardware
// threads than the worker count the bit reports vacuous success — worker
// threads that timeshare one core cannot demonstrate wall-clock scaling, and
// a floor that fails everywhere but CI would be regenerated into meaningless
// values. The wall scalars always record the real measured ratio. The
// committed baseline (bench/baselines/perf_core_parallel_baseline.json) pins
// the bit at 1.0, so multi-core CI enforces the real floor.

#include <algorithm>
#include <chrono>
#include <thread>

#include "bench/session_common.h"
#include "src/harness/scenario_registry.h"

namespace bullet {
namespace {

double WallSeconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

BULLET_SCENARIO_TRANSIT_STUB_DEFAULT(perf_core_parallel);

BULLET_SCENARIO(perf_core_parallel,
                "Perf — serial vs partitioned parallel engine, transit-stub topology") {
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kTransitStub;
  cfg.num_nodes = 500;
  cfg.file_mb = ScaledFileMb(20.0);
  // Finer-grained blocks than the wide-area deployment's 100 KB: per-window
  // event work (block transfers, protocol logic) is what the partition workers
  // spread, while the barrier's allocator epoch scales with the flow count,
  // which block size leaves unchanged. High event density is the regime a
  // parallel engine exists for — with 100 KB blocks at CI's file sizes the
  // barrier dominates and Amdahl caps 4-way speedup below 1.5x regardless of
  // implementation quality.
  cfg.block_bytes = 25 * 1024;
  cfg.seed = 3101;
  cfg.deadline = SecToSim(3600.0);
  ApplyScenarioOptions(opts, &cfg);
  // The scenario *is* the partitioned routed graph; see fig17 for the same rule.
  cfg.topo = ScenarioConfig::Topo::kTransitStub;
  cfg.transit_stub = ScaledTransitStub(cfg.num_nodes);
  // Inter-domain delay >= quantum keeps the conservative lookahead at one full
  // sync window for every sweep size (the scaled shape's default min is 5 ms).
  cfg.transit_stub.transit_delay_min = std::max(cfg.transit_stub.transit_delay_min, cfg.quantum);

  // --threads (or the sweep's threads axis) sets the parallel leg's worker
  // count; without it the leg runs at 4, the acceptance-gate width.
  const int nthreads = cfg.num_threads > 1 ? cfg.num_threads : 4;

  ScenarioReport report(kScenarioName);

  cfg.num_threads = 1;
  const auto t_serial = std::chrono::steady_clock::now();
  const ScenarioResult serial = RunScenario("bullet-prime", cfg);
  const double wall_serial = WallSeconds(t_serial);

  cfg.num_threads = nthreads;
  const auto t_par = std::chrono::steady_clock::now();
  const ScenarioResult par = RunScenario("bullet-prime", cfg);
  const double wall_par = WallSeconds(t_par);

  // Second parallel run: same config, same seed — run-to-run determinism.
  const ScenarioResult par2 = RunScenario("bullet-prime", cfg);

  const double speedup = wall_par > 0.0 ? wall_serial / wall_par : 0.0;
  report.AddCompletion("BulletPrime (serial engine)", serial);
  report.AddCompletion("BulletPrime (parallel engine)", par);
  report.AddScalar("threads", static_cast<double>(nthreads));
  report.AddScalar("wall_sec_1thread", wall_serial);
  report.AddScalar("wall_sec_nthreads", wall_par);
  report.AddScalar("parallel_speedup", speedup);
  report.AddScalar("parallel_deterministic",
                   par.completion_sec == par2.completion_sec ? 1.0 : 0.0);
  const bool enough_cores =
      static_cast<int>(std::thread::hardware_concurrency()) >= nthreads;
  report.AddScalar("parallel_speedup_ok",
                   !enough_cores || speedup >= (nthreads >= 4 ? 1.5 : 1.0) ? 1.0 : 0.0);
  return report;
}

}  // namespace
}  // namespace bullet
