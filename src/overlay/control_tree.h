// The control tree used for joining the overlay and for RanSub epochs (Fig. 1 of the
// paper, step 1). Bullet' uses a basic random tree; the source is always the root.

#ifndef SRC_OVERLAY_CONTROL_TREE_H_
#define SRC_OVERLAY_CONTROL_TREE_H_

#include <vector>

#include "src/common/rng.h"
#include "src/sim/topology.h"

namespace bullet {

struct ControlTree {
  std::vector<NodeId> parent;                 // parent[root] == -1
  std::vector<std::vector<NodeId>> children;  // children[n] in attach order
  std::vector<int> subtree_size;              // including the node itself

  int num_nodes() const { return static_cast<int>(parent.size()); }
  bool IsRoot(NodeId n) const { return parent[static_cast<size_t>(n)] < 0; }
  int depth(NodeId n) const;

  // Random tree rooted at node 0: nodes join in random order and attach to a random
  // node that still has fanout capacity.
  static ControlTree Random(int num_nodes, int max_fanout, Rng& rng);
};

}  // namespace bullet

#endif  // SRC_OVERLAY_CONTROL_TREE_H_
