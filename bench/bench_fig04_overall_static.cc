// Fig. 4: CDF of 100 MB download times across 100 nodes on the Section 4.1 topology
// (6 Mbps access, 2 Mbps core, 0-3% random core loss), static conditions, for
// Bullet', Bullet, BitTorrent and SplitStream, plus the two analytic reference lines
// (access-link optimal and MACEDON-on-TCP feasible).
//
// Expected shape (paper): optimal < TCP-feasible < Bullet' < Bullet ~ BitTorrent <
// SplitStream; Bullet' leads by ~25% and its slowest node by ~37%.

#include "bench/bench_util.h"

namespace bullet {
namespace {

ScenarioConfig Fig4Config() {
  ScenarioConfig cfg;
  cfg.num_nodes = 100;
  cfg.file_mb = bench::ScaledFileMb(100.0);
  cfg.seed = 401;
  return cfg;
}

void BM_System(benchmark::State& state) {
  const System system = static_cast<System>(state.range(0));
  const ScenarioConfig cfg = Fig4Config();
  for (auto _ : state) {
    const ScenarioResult r = RunScenario(system, cfg);
    bench::ReportCompletion(state, r.name, r);
  }
}
BENCHMARK(BM_System)
    ->Arg(static_cast<int>(System::kBulletPrime))
    ->Arg(static_cast<int>(System::kBulletLegacy))
    ->Arg(static_cast<int>(System::kBitTorrent))
    ->Arg(static_cast<int>(System::kSplitStream))
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ReferenceLines(benchmark::State& state) {
  const ScenarioConfig cfg = Fig4Config();
  for (auto _ : state) {
    const double optimal = OptimalAccessLinkSeconds(cfg.file_mb, 6e6);
    // Startup: tree join + first RanSub epochs before the mesh fills pipes.
    const double feasible = TcpFeasibleSeconds(cfg.file_mb, 6e6, /*startup_sec=*/12.0);
    state.counters["optimal_s"] = optimal;
    state.counters["tcp_feasible_s"] = feasible;
    bench::CollectedSeries().push_back(CdfSeries{"PhysicalLinkOptimal", {optimal}});
    bench::CollectedSeries().push_back(CdfSeries{"MacedonTcpFeasible", {feasible}});
  }
}
BENCHMARK(BM_ReferenceLines)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bullet

BULLET_BENCH_MAIN("Fig. 4 — overall performance, static conditions")
