// Resilience under node failures: the mesh must absorb peer deaths with bounded
// slowdown — the paper's 1/n argument for mesh dissemination (Section 1).

#include <gtest/gtest.h>

#include <memory>

#include "src/common/stats.h"
#include "src/core/bullet_prime.h"
#include "src/harness/churn.h"
#include "src/harness/experiment.h"
#include "src/sim/dynamics.h"

namespace bullet {
namespace {

struct ChurnRun {
  RunMetrics metrics{0};
  int victims = 0;
};

ChurnRun RunWithChurn(int nodes, int kills, uint64_t seed) {
  Rng topo_rng(seed);
  MeshTopology::MeshParams mesh;
  mesh.num_nodes = nodes;
  mesh.core_loss_max = 0.0;
  MeshTopology topo = MeshTopology::FullMesh(mesh, topo_rng);
  ExperimentParams params;
  params.seed = seed;
  params.file.num_blocks = 640;  // 10 MB
  params.deadline = SecToSim(1800.0);
  Experiment exp(std::move(topo), params);

  ChurnRun run;
  if (kills > 0) {
    Rng churn_rng(seed ^ 0xdead);
    ChurnPlan plan = PlanLeafFailures(exp.tree(), params.source, kills, churn_rng);
    run.victims = static_cast<int>(plan.victims.size());
    ScheduleChurn(exp.net(), plan);
  }
  BulletPrimeConfig config;
  run.metrics = exp.Run([&](const Protocol::Context& ctx, const ControlTree* tree) {
    return std::make_unique<BulletPrime>(ctx, params.file, params.source, tree, config);
  });
  return run;
}

TEST(Churn, FailNodeCutsConnections) {
  Rng rng(3);
  MeshTopology topo = MeshTopology::ConstrainedAccess(4, rng);
  Network net(std::move(topo), NetworkConfig{}, 3);
  const ConnId conn = net.Connect(0, 1);
  net.Run(SecToSim(1.0));
  ASSERT_TRUE(net.IsOpen(conn));
  net.FailNode(1);
  EXPECT_FALSE(net.IsOpen(conn));
  EXPECT_TRUE(net.IsNodeFailed(1));
  EXPECT_EQ(net.Connect(0, 1), -1);
  EXPECT_EQ(net.Connect(1, 2), -1);
  net.FailNode(1);  // idempotent
  EXPECT_EQ(net.Connect(2, 3) >= 0, true);
}

TEST(Churn, PlanTargetsOnlyLeaves) {
  Rng rng(5);
  ControlTree tree = ControlTree::Random(50, 4, rng);
  Rng churn_rng(6);
  const ChurnPlan plan = PlanLeafFailures(tree, 0, 10, churn_rng);
  EXPECT_EQ(plan.victims.size(), 10u);
  for (const NodeId v : plan.victims) {
    EXPECT_NE(v, 0);
    EXPECT_TRUE(tree.children[static_cast<size_t>(v)].empty());
  }
}

TEST(Churn, SurvivorsCompleteDespiteFailures) {
  // Kill 6 of 29 receivers mid-download; every survivor must still finish.
  const ChurnRun churned = RunWithChurn(30, 6, 77);
  ASSERT_EQ(churned.victims, 6);
  int survivors_done = 0;
  for (NodeId n = 1; n < 30; ++n) {
    if (churned.metrics.node(n).completion >= 0) {
      ++survivors_done;
    }
  }
  EXPECT_GE(survivors_done, 29 - 6);
}

struct BulkMsg : Message {
  explicit BulkMsg(int64_t bytes) { wire_bytes = bytes; }
};

class DownCounter : public NetHandler {
 public:
  void OnConnDown(ConnId /*conn*/, NodeId /*peer*/) override { ++downs; }
  void OnMessage(ConnId /*conn*/, NodeId /*from*/, std::unique_ptr<Message> /*msg*/) override {
    ++messages;
  }
  int downs = 0;
  int messages = 0;
};

TEST(Churn, FailNodeRacesPendingDeliveries) {
  // Fail a node while messages are both queued and in flight toward it; the
  // in-flight deliveries must be dropped cleanly (no delivery after the
  // failure, exactly one OnConnDown per surviving endpoint, no crash).
  Rng rng(11);
  MeshTopology topo = MeshTopology::ConstrainedAccess(4, rng);
  Network net(std::move(topo), NetworkConfig{}, 11);
  DownCounter h0;
  DownCounter h1;
  net.SetHandler(0, &h0);
  net.SetHandler(1, &h1);
  const ConnId conn = net.Connect(0, 1);
  net.Run(SecToSim(1.0));
  for (int i = 0; i < 20; ++i) {
    net.Send(conn, 0, std::make_unique<BulkMsg>(64 * 1024));
  }
  net.Run(SecToSim(3.0));  // some deliveries pending, some queued
  EXPECT_GT(h1.messages, 0);
  const int delivered_before_failure = h1.messages;
  net.FailNode(1);
  net.Run(SecToSim(30.0));
  EXPECT_EQ(h1.messages, delivered_before_failure);
  EXPECT_FALSE(net.IsOpen(conn));
  EXPECT_EQ(h0.downs, 1);
  EXPECT_EQ(h1.downs, 1);
}

TEST(Churn, DynamicsOnFailedNodeLinksIsNoOp) {
  // Periodic correlated bandwidth halving racing a node failure: firings that
  // land on a failed node's links must leave them untouched (they carry no
  // flows, and Connect() toward the node is refused forever), while live links
  // keep degrading.
  MeshTopology topo(4);
  for (NodeId n = 0; n < 4; ++n) {
    topo.uplink(n) = LinkParams{6e6, 0, 0.0};
    topo.downlink(n) = LinkParams{6e6, 0, 0.0};
    for (NodeId d = 0; d < 4; ++d) {
      topo.core(n, d) = LinkParams{2e6, MsToSim(1), 0.0};
    }
  }
  Network net(std::move(topo), NetworkConfig{}, 7);
  BandwidthDynamicsParams params;
  params.period = SecToSim(1.0);
  params.node_fraction = 1.0;
  params.sender_fraction = 1.0;
  StartPeriodicBandwidthChanges(net, params);
  net.queue().Schedule(MsToSim(500), [&net] { net.FailNode(1); });
  net.Run(SecToSim(3.5));  // failure at 0.5 s, then 3 firings

  EXPECT_TRUE(net.IsNodeFailed(1));
  for (NodeId s = 0; s < 4; ++s) {
    for (NodeId d = 0; d < 4; ++d) {
      if (s == d) {
        continue;
      }
      const double bw = net.topology().AsMesh()->core(s, d).bandwidth_bps;
      if (s == 1 || d == 1) {
        EXPECT_NEAR(bw, 2e6, 1.0) << "failed node's link " << s << "->" << d << " was degraded";
      } else {
        EXPECT_NEAR(bw, 2e6 / 8.0, 1.0) << "live link " << s << "->" << d;
      }
    }
  }
}

TEST(Churn, FailuresUnderBandwidthDynamicsStillComplete) {
  // Full protocol integration: leaf failures land mid-download while the
  // periodic halving keeps firing (including on the victims' links). Survivors
  // must still finish; nothing may crash.
  Rng topo_rng(21);
  MeshTopology::MeshParams mesh;
  mesh.num_nodes = 16;
  mesh.core_loss_max = 0.0;
  MeshTopology topo = MeshTopology::FullMesh(mesh, topo_rng);
  ExperimentParams params;
  params.seed = 21;
  params.file.num_blocks = 320;  // 5 MB
  params.deadline = SecToSim(1800.0);
  Experiment exp(std::move(topo), params);
  StartPeriodicBandwidthChanges(exp.net(), BandwidthDynamicsParams{});

  Rng churn_rng(21 ^ 0xdead);
  ChurnPlan plan = PlanLeafFailures(exp.tree(), params.source, 3, churn_rng);
  ASSERT_EQ(plan.victims.size(), 3u);
  ScheduleChurn(exp.net(), plan);

  BulletPrimeConfig config;
  RunMetrics metrics = exp.Run([&](const Protocol::Context& ctx, const ControlTree* tree) {
    return std::make_unique<BulletPrime>(ctx, params.file, params.source, tree, config);
  });

  int survivors_done = 0;
  for (NodeId n = 1; n < 16; ++n) {
    if (metrics.node(n).completion >= 0) {
      ++survivors_done;
    }
  }
  EXPECT_GE(survivors_done, 15 - 3);
}

TEST(Churn, SlowdownIsBounded) {
  // The paper's 1/n argument: losing ~20% of peers costs far less than 2x.
  const ChurnRun baseline = RunWithChurn(30, 0, 78);
  const ChurnRun churned = RunWithChurn(30, 6, 78);
  const double base_p90 = Percentile(baseline.metrics.CompletionSeconds(0), 0.9);
  std::vector<double> survivor_times;
  for (NodeId n = 1; n < 30; ++n) {
    if (churned.metrics.node(n).completion >= 0) {
      survivor_times.push_back(SimToSec(churned.metrics.node(n).completion));
    }
  }
  ASSERT_GE(survivor_times.size(), 23u);
  EXPECT_LT(Percentile(survivor_times, 0.9), base_p90 * 1.6);
}

}  // namespace
}  // namespace bullet
