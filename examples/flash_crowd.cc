// Flash crowd: the paper's motivating scenario — one source, a crowd of receivers
// grabbing the same file at once — run across all four systems on the Section 4.1
// emulated topology, with and without dynamic bandwidth changes.
//
// Usage: flash_crowd [num_nodes] [file_mb]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/common/cdf.h"
#include "src/harness/scenarios.h"

int main(int argc, char** argv) {
  const int num_nodes = argc > 1 ? std::atoi(argv[1]) : 50;
  const double file_mb = argc > 2 ? std::atof(argv[2]) : 5.0;

  for (const bool dynamic : {false, true}) {
    std::printf("\n=== flash crowd: %d nodes, %.1f MB, %s conditions ===\n", num_nodes, file_mb,
                dynamic ? "dynamic (bandwidth halving every 20s)" : "static");
    std::vector<bullet::CdfSeries> series;
    for (const char* system : {"bullet-prime", "bullet", "bittorrent", "splitstream"}) {
      bullet::ScenarioConfig cfg;
      cfg.num_nodes = num_nodes;
      cfg.file_mb = file_mb;
      cfg.dynamic_bw = dynamic;
      cfg.seed = 21;
      bullet::ScenarioResult r = bullet::RunScenario(system, cfg);
      std::printf("%-12s completed %d/%d, dup %.1f%%, ctrl %.1f%%\n", r.name.c_str(), r.completed,
                  r.receivers, r.duplicate_fraction * 100.0, r.control_overhead * 100.0);
      series.push_back(bullet::CdfSeries{r.name, r.completion_sec});
    }
    bullet::PrintSummaryTable(std::cout, series);
  }
  return 0;
}
