// Per-run metrics filled in by protocols. The experiment harness turns these into the
// CDFs and tables reported by the paper.
//
// Thread-safety: under the parallel engine (network.h), protocols on different
// partitions record metrics concurrently. Per-node state (NodeMetrics) is only
// ever written by its own node's protocol — one partition — so it needs no
// synchronization; the cross-session aggregates (completed_,
// departed_incomplete_, the one-shot completion hooks) are guarded by an
// internal mutex. The completion observer and the all-complete callback fire
// outside the lock, so they may re-enter RunMetrics freely; both are installed
// before the run starts and are not re-installed concurrently.

#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "src/sim/time.h"
#include "src/sim/topology.h"

namespace bullet {

struct NodeMetrics {
  SimTime completion = -1;  // -1 until the node holds the full file
  SimTime departed = -1;    // -1 unless the node left the session mid-run
  int64_t useful_blocks = 0;
  int64_t duplicate_blocks = 0;  // blocks received that were already held
  int64_t data_bytes_in = 0;
  int64_t dup_bytes_in = 0;
  int64_t ctrl_bytes_in = 0;
  int64_t ctrl_bytes_out = 0;
  // Arrival time of every accepted block, recorded when RunMetrics::record_arrivals
  // is set (Fig. 13 inter-arrival analysis).
  std::vector<SimTime> block_arrivals;
  // Streaming sessions only: first-arrival time per playback position (-1 =
  // never arrived). Empty until the node's first block (or for bulk sessions);
  // sized lazily by RunMetrics::RecordPositionArrival.
  std::vector<SimTime> position_arrivals;
};

class RunMetrics {
 public:
  explicit RunMetrics(int num_nodes) : nodes_(static_cast<size_t>(num_nodes)) {}

  // Copyable: the harness returns RunMetrics snapshots by value. The mutex is
  // not part of the value (each copy owns a fresh one); copying is only valid
  // while no concurrent recording is in flight, i.e. outside Network::Run().
  RunMetrics(const RunMetrics& o)
      : record_arrivals(o.record_arrivals),
        nodes_(o.nodes_),
        completed_(o.completed_),
        departed_incomplete_(o.departed_incomplete_),
        num_positions_(o.num_positions_),
        completion_target_(o.completion_target_),
        on_all_complete_(o.on_all_complete_),
        completion_observer_(o.completion_observer_),
        members_(o.members_) {}
  RunMetrics& operator=(const RunMetrics& o) {
    if (this != &o) {
      record_arrivals = o.record_arrivals;
      nodes_ = o.nodes_;
      completed_ = o.completed_;
      departed_incomplete_ = o.departed_incomplete_;
      num_positions_ = o.num_positions_;
      completion_target_ = o.completion_target_;
      on_all_complete_ = o.on_all_complete_;
      completion_observer_ = o.completion_observer_;
      members_ = o.members_;
    }
    return *this;
  }

  NodeMetrics& node(NodeId n) { return nodes_[static_cast<size_t>(n)]; }
  const NodeMetrics& node(NodeId n) const { return nodes_[static_cast<size_t>(n)]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  void RecordCompletion(NodeId n, SimTime t) {
    NodeMetrics& m = node(n);
    bool first = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (m.completion < 0) {
        m.completion = t;
        ++completed_;
        if (m.departed >= 0) {
          // Completed after departing (an in-flight delivery landed first): the
          // node must not count toward the live target twice.
          --departed_incomplete_;
        }
        first = true;
      }
    }
    if (first && completion_observer_) {
      completion_observer_(n, t);
    }
  }
  int completed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return completed_;
  }

  // Marks a member as departed (failed / left the overlay). Idempotent. A
  // departure before completion shrinks the session's live receiver set: the
  // completion policy treats departed-incomplete members as no longer owed the
  // file, so a session whose stragglers all left still terminates.
  void RecordDeparture(NodeId n, SimTime t) {
    NodeMetrics& m = node(n);
    std::lock_guard<std::mutex> lock(mu_);
    if (m.departed < 0) {
      m.departed = t;
      if (m.completion < 0) {
        ++departed_incomplete_;
      }
    }
  }
  int departed_incomplete() const {
    std::lock_guard<std::mutex> lock(mu_);
    return departed_incomplete_;
  }

  // --- streaming ---
  //
  // Streaming sessions (SessionSpec::streaming) record the first arrival of
  // every playback position so the harness can reconstruct each receiver's
  // playback timeline (stall seconds, blocks missed) after the run. The
  // protocol layer calls this from AcceptBlock; `num_positions` sizes the
  // per-node arrival vector on first use.
  void EnableStreaming(uint32_t num_positions) { num_positions_ = num_positions; }
  bool streaming() const { return num_positions_ > 0; }
  uint32_t num_positions() const { return num_positions_; }
  void RecordPositionArrival(NodeId n, uint32_t position, SimTime t) {
    NodeMetrics& m = node(n);
    if (m.position_arrivals.empty()) {
      m.position_arrivals.assign(num_positions_, -1);
    }
    if (position < m.position_arrivals.size() && m.position_arrivals[position] < 0) {
      m.position_arrivals[position] = t;
    }
  }

  // Fired from inside RecordCompletion (once per node, at its completion
  // instant). The workload harness uses it to schedule post-completion
  // departures (LifetimeModel::departs_after_completion).
  void SetCompletionObserver(std::function<void(NodeId, SimTime)> observer) {
    completion_observer_ = std::move(observer);
  }

  // --- session scoping ---
  //
  // A RunMetrics may describe a *session* over a subset of the network: node
  // slots still index by global NodeId (non-members stay zero and do not
  // affect the aggregate fractions), but completion accounting and the
  // CompletionSeconds series are restricted to the member set, and "everyone
  // finished" means the session's own receivers — not num_nodes()-1. The
  // harness installs the policy; protocols only call NotifyIfAllComplete().

  // Restricts CompletionSeconds to `members` (in the given order). Empty means
  // every node, the historical behavior.
  void SetMembers(std::vector<NodeId> members) { members_ = std::move(members); }
  const std::vector<NodeId>& members() const { return members_; }

  // Arms the completion policy: once `receivers_target` nodes have completed,
  // the next NotifyIfAllComplete() fires `on_all_complete` exactly once (the
  // session-completion hook; the workload harness uses it to stop the network
  // only when *every* session is done).
  void SetCompletionPolicy(int receivers_target, std::function<void()> on_all_complete) {
    completion_target_ = receivers_target;
    on_all_complete_ = std::move(on_all_complete);
  }
  bool has_completion_policy() const { return completion_target_ >= 0; }
  bool all_complete() const {
    std::lock_guard<std::mutex> lock(mu_);
    return AllCompleteLocked();
  }
  void NotifyIfAllComplete() {
    std::function<void()> cb;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (AllCompleteLocked() && on_all_complete_) {
        // Move-out first (and call outside the lock): the callback may copy or
        // destroy this object, or re-enter RunMetrics.
        cb = std::move(on_all_complete_);
        on_all_complete_ = nullptr;
      }
    }
    if (cb) {
      cb();
    }
  }

  // Completion times in seconds for all member nodes except `exclude` (the source).
  // Nodes that never completed are reported at `incomplete_value` seconds if >= 0.
  std::vector<double> CompletionSeconds(NodeId exclude, double incomplete_value = -1.0) const;

  // duplicate_blocks / (useful + duplicate) over all nodes.
  double DuplicateFraction() const;
  // control bytes / total bytes received, over all nodes.
  double ControlOverheadFraction() const;

  bool record_arrivals = false;

 private:
  bool AllCompleteLocked() const {
    return completion_target_ >= 0 && completed_ + departed_incomplete_ >= completion_target_;
  }

  std::vector<NodeMetrics> nodes_;
  mutable std::mutex mu_;  // guards completed_, departed_incomplete_, on_all_complete_
  int completed_ = 0;
  int departed_incomplete_ = 0;  // departed members that never completed
  uint32_t num_positions_ = 0;  // > 0: streaming session (position arrivals recorded)
  int completion_target_ = -1;  // < 0: no policy installed (legacy fallback applies)
  std::function<void()> on_all_complete_;
  std::function<void(NodeId, SimTime)> completion_observer_;
  std::vector<NodeId> members_;  // empty: all nodes
};

}  // namespace bullet

#endif  // SRC_SIM_METRICS_H_
