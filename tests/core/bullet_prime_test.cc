// Protocol-level tests of Bullet' running on the real emulator: source gating,
// fixed-window mode, post-completion behaviour, and waste bounds.

#include "src/core/bullet_prime.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/harness/experiment.h"

namespace bullet {
namespace {

struct Swarm {
  std::unique_ptr<Experiment> exp;
  std::vector<BulletPrime*> protos;
  RunMetrics metrics{0};
};

Swarm RunSwarm(int nodes, uint32_t blocks, const BulletPrimeConfig& config, double deadline_sec,
               uint64_t seed = 44) {
  Rng topo_rng(seed);
  MeshTopology::MeshParams mesh;
  mesh.num_nodes = nodes;
  mesh.core_loss_max = 0.0;
  MeshTopology topo = MeshTopology::FullMesh(mesh, topo_rng);
  ExperimentParams params;
  params.seed = seed;
  params.file.num_blocks = blocks;
  params.deadline = SecToSim(deadline_sec);
  Swarm swarm;
  swarm.exp = std::make_unique<Experiment>(std::move(topo), params);
  swarm.metrics = swarm.exp->Run([&](const Protocol::Context& ctx, const ControlTree* tree) {
    auto p = std::make_unique<BulletPrime>(ctx, params.file, params.source, tree, config);
    swarm.protos.push_back(p.get());
    return p;
  });
  return swarm;
}

TEST(BulletPrimeProtocol, SourceHidesUntilFullPass) {
  // Stop mid-push: the source must not yet advertise (push_done false) and must have
  // no mesh senders of its own.
  BulletPrimeConfig config;
  Swarm swarm = RunSwarm(10, 512, config, /*deadline_sec=*/4.0);
  EXPECT_FALSE(swarm.protos[0]->push_done());
  EXPECT_EQ(swarm.protos[0]->num_senders(), 0);
}

TEST(BulletPrimeProtocol, SourcePushCompletesAndAdvertises) {
  BulletPrimeConfig config;
  Swarm swarm = RunSwarm(10, 64, config, /*deadline_sec=*/600.0);
  EXPECT_TRUE(swarm.protos[0]->push_done());
  EXPECT_EQ(swarm.metrics.completed(), 9);
}

TEST(BulletPrimeProtocol, CompletedNodesDropTheirSenders) {
  BulletPrimeConfig config;
  Swarm swarm = RunSwarm(12, 64, config, 600.0);
  ASSERT_EQ(swarm.metrics.completed(), 11);
  for (size_t n = 1; n < swarm.protos.size(); ++n) {
    EXPECT_EQ(swarm.protos[n]->num_senders(), 0) << "node " << n;
  }
}

TEST(BulletPrimeProtocol, FixedOutstandingStaysFixed) {
  BulletPrimeConfig config;
  config.dynamic_outstanding = false;
  config.fixed_outstanding = 4;
  Swarm swarm = RunSwarm(10, 96, config, 600.0);
  EXPECT_EQ(swarm.metrics.completed(), 9);
  // desired_ is never updated in fixed mode; every sender entry retains the fixed
  // window (senders close on completion, so probe a mid-run state instead).
  BulletPrimeConfig probe_config = config;
  Swarm mid = RunSwarm(10, 2048, probe_config, 8.0);
  bool saw_sender = false;
  for (auto* p : mid.protos) {
    for (const auto& d : p->DebugSenders()) {
      saw_sender = true;
      EXPECT_DOUBLE_EQ(d.desired, 4.0);
      EXPECT_LE(d.outstanding, 4);
    }
  }
  EXPECT_TRUE(saw_sender);
}

TEST(BulletPrimeProtocol, PeerCountsRespectHardBounds) {
  BulletPrimeConfig config;
  Swarm swarm = RunSwarm(30, 1024, config, 12.0);  // stop mid-download
  for (auto* p : swarm.protos) {
    EXPECT_LE(p->num_senders(), config.max_peers);
    EXPECT_LE(p->num_receivers(), config.max_peers);
    EXPECT_GE(p->max_senders(), config.min_peers);
    EXPECT_LE(p->max_senders(), config.max_peers);
  }
}

TEST(BulletPrimeProtocol, NoDuplicateBlocksWithoutChurn) {
  // The request path (global requested-set + per-sender candidates) must never fetch
  // a block twice in a loss-free, churn-free run.
  BulletPrimeConfig config;
  Swarm swarm = RunSwarm(16, 128, config, 600.0);
  ASSERT_EQ(swarm.metrics.completed(), 15);
  for (NodeId n = 0; n < 16; ++n) {
    EXPECT_EQ(swarm.metrics.node(n).duplicate_blocks, 0) << "node " << n;
  }
}

TEST(BulletPrimeProtocol, EncodedModeUsesOverheadRule) {
  BulletPrimeConfig config;
  Rng topo_rng(45);
  MeshTopology::MeshParams mesh;
  mesh.num_nodes = 10;
  mesh.core_loss_max = 0.0;
  MeshTopology topo = MeshTopology::FullMesh(mesh, topo_rng);
  ExperimentParams params;
  params.seed = 45;
  params.file.num_blocks = 100;
  params.file.encoded = true;
  params.deadline = SecToSim(900.0);
  Experiment exp(std::move(topo), params);
  std::vector<BulletPrime*> protos;
  RunMetrics metrics = exp.Run([&](const Protocol::Context& ctx, const ControlTree* tree) {
    auto p = std::make_unique<BulletPrime>(ctx, params.file, params.source, tree, config);
    protos.push_back(p.get());
    return p;
  });
  ASSERT_EQ(metrics.completed(), 9);
  for (size_t n = 1; n < protos.size(); ++n) {
    // Complete at (1 + 4%) * n distinct encoded blocks. Tree children of the source
    // keep receiving pushed blocks after completing, so counts may exceed the
    // threshold but never undershoot it.
    EXPECT_GE(protos[n]->have().count(), 104u) << "node " << n;
    EXPECT_GE(metrics.node(static_cast<NodeId>(n)).completion, 0) << "node " << n;
  }
  // Non-children of the source stop pulling at exactly the completion threshold.
  bool checked_non_child = false;
  for (size_t n = 1; n < protos.size(); ++n) {
    const auto& kids = exp.tree().children[0];
    if (std::find(kids.begin(), kids.end(), static_cast<NodeId>(n)) == kids.end()) {
      EXPECT_EQ(protos[n]->have().count(), 104u) << "node " << n;
      checked_non_child = true;
    }
  }
  EXPECT_TRUE(checked_non_child);
}

}  // namespace
}  // namespace bullet
