#include "src/sim/scale/flow_aggregation.h"

#include <algorithm>

#include "src/common/logging.h"

namespace bullet {

namespace {

// FNV-1a over the interior link-id slice; collisions are resolved by content
// comparison, the hash only buckets.
uint64_t HashSlice(const int32_t* ids, size_t len) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(ids[i]));
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

void FlowAggregator::Allocate(const IncrementalMaxMin& epoch, size_t num_access_links) {
  const IncrementalMaxMin::EpochView view = epoch.epoch_view();
  const std::vector<double>& link_cap = *view.capacity;
  const std::vector<int32_t>& flow_links = *view.flow_links;
  const std::vector<uint32_t>& flow_off = *view.flow_off;
  const std::vector<double>& tcp_cap = *view.cap;
  const size_t nf = tcp_cap.size();
  BULLET_CHECK(num_access_links <= link_cap.size());
  const size_t ni = link_cap.size() - num_access_links;

  rates_.assign(nf, 0.0);
  member_cap_.resize(nf);
  flow_bundle_.assign(nf, -1);
  bundles_.clear();
  slice_pool_.clear();
  bundle_index_.clear();
  max_interior_link_flows_ = 0;

  // Pass 1: busy-flow count per access link (the k in capacity/k member caps).
  access_count_.assign(num_access_links, 0);
  for (size_t i = 0; i < nf; ++i) {
    for (uint32_t o = flow_off[i]; o < flow_off[i + 1]; ++o) {
      const int32_t l = flow_links[o];
      if (l >= 0 && static_cast<size_t>(l) < num_access_links) {
        ++access_count_[static_cast<size_t>(l)];
      }
    }
  }

  // Pass 2: member caps and bundling. A flow's interior slice is the
  // contiguous tail of its link list from the first interior id (the network
  // registers uplink, downlink, then the route).
  for (size_t i = 0; i < nf; ++i) {
    double w = tcp_cap[i];
    uint32_t interior_begin = flow_off[i + 1];
    for (uint32_t o = flow_off[i]; o < flow_off[i + 1]; ++o) {
      const int32_t l = flow_links[o];
      if (l < 0) {
        continue;
      }
      if (static_cast<size_t>(l) < num_access_links) {
        const double share =
            link_cap[static_cast<size_t>(l)] / access_count_[static_cast<size_t>(l)];
        w = std::min(w, share);
      } else {
        interior_begin = o;
        break;
      }
    }
    member_cap_[i] = w;
    const int32_t* slice = flow_links.data() + interior_begin;
    const size_t slice_len = flow_off[i + 1] - interior_begin;
    if (slice_len == 0) {
      // No shared interior links: the member cap is the allocation.
      rates_[i] = w;
      continue;
    }
    const uint64_t h = HashSlice(slice, slice_len);
    int32_t b = -1;
    std::vector<int32_t>& chain = bundle_index_[h];
    for (const int32_t cand : chain) {
      const Bundle& bd = bundles_[static_cast<size_t>(cand)];
      if (bd.slice_len == slice_len &&
          std::equal(slice, slice + slice_len, slice_pool_.data() + bd.slice_off)) {
        b = cand;
        break;
      }
    }
    if (b < 0) {
      b = static_cast<int32_t>(bundles_.size());
      Bundle bd;
      bd.slice_off = static_cast<uint32_t>(slice_pool_.size());
      bd.slice_len = static_cast<uint32_t>(slice_len);
      slice_pool_.insert(slice_pool_.end(), slice, slice + slice_len);
      bundles_.push_back(bd);
      chain.push_back(b);
    }
    Bundle& bd = bundles_[static_cast<size_t>(b)];
    bd.cap_sum += w;
    ++bd.members;
    flow_bundle_[i] = b;
  }

  // Pass 3: water-fill bundles over the interior links only (remapped to a
  // dense 0-based id space), and record the member-level link widths for the
  // shared-bottleneck telemetry.
  bundle_alloc_.BeginEpoch(0);
  for (size_t l = 0; l < ni; ++l) {
    bundle_alloc_.AddLink(link_cap[num_access_links + l]);
  }
  std::vector<int32_t>& width = access_count_;  // reuse: per interior link now
  width.assign(ni, 0);
  for (const Bundle& bd : bundles_) {
    remap_scratch_.clear();
    for (uint32_t o = 0; o < bd.slice_len; ++o) {
      const int32_t l =
          slice_pool_[bd.slice_off + o] - static_cast<int32_t>(num_access_links);
      remap_scratch_.push_back(l);
      width[static_cast<size_t>(l)] += bd.members;
    }
    bundle_alloc_.AddFlowPath(remap_scratch_.data(), remap_scratch_.size(), bd.cap_sum);
  }
  bundle_alloc_.Allocate();
  for (size_t b = 0; b < bundles_.size(); ++b) {
    bundles_[b].rate = bundle_alloc_.rate(b);
  }
  for (const int32_t c : width) {
    max_interior_link_flows_ = std::max(max_interior_link_flows_, c);
  }

  // Pass 4: split each bundle's rate across its members — bounded water-fill
  // in ascending (member cap, flow index) order, subtracting every grant from
  // one running remainder so the member rates telescope to exactly the bundle
  // rate (the last member absorbs the residue; its cap covers it because the
  // caps sum to the bundle cap >= the bundle rate, up to FP rounding).
  const size_t nb = bundles_.size();
  bundle_off_.assign(nb + 1, 0);
  for (size_t i = 0; i < nf; ++i) {
    if (flow_bundle_[i] >= 0) {
      ++bundle_off_[static_cast<size_t>(flow_bundle_[i]) + 1];
    }
  }
  for (size_t b = 0; b < nb; ++b) {
    bundle_off_[b + 1] += bundle_off_[b];
  }
  bundle_members_.resize(bundle_off_[nb]);
  cursor_.assign(bundle_off_.begin(), bundle_off_.end() - 1);
  for (size_t i = 0; i < nf; ++i) {
    if (flow_bundle_[i] >= 0) {
      bundle_members_[cursor_[static_cast<size_t>(flow_bundle_[i])]++] = {
          member_cap_[i], static_cast<uint32_t>(i)};
    }
  }
  for (size_t b = 0; b < nb; ++b) {
    auto* first = bundle_members_.data() + bundle_off_[b];
    auto* last = bundle_members_.data() + bundle_off_[b + 1];
    std::sort(first, last);
    double remaining = bundles_[b].rate;
    int k = static_cast<int>(last - first);
    for (auto* m = first; m != last; ++m, --k) {
      double r = remaining / k;
      if (m->first < r) {
        r = m->first;
      }
      rates_[m->second] = r;
      remaining -= r;
    }
  }
}

}  // namespace bullet
