#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bullet {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance of the classic example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, Reset) {
  RunningStats s;
  s.Add(1.0);
  s.Add(2.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 10.0);
}

TEST(Percentile, EmptyAndSingle) {
  EXPECT_EQ(Percentile({}, 0.5), 0.0);
  EXPECT_EQ(Percentile({7.0}, 0.0), 7.0);
  EXPECT_EQ(Percentile({7.0}, 1.0), 7.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.25), 20.0);
  EXPECT_NEAR(Percentile(v, 0.1), 14.0, 1e-9);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(Percentile({50.0, 10.0, 30.0, 20.0, 40.0}, 0.5), 30.0);
}

TEST(Percentile, ClampsQ) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 2.0), 2.0);
}

TEST(Ewma, FirstValueInitializes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.has_value());
  e.Add(10.0);
  EXPECT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.3);
  for (int i = 0; i < 100; ++i) {
    e.Add(5.0);
  }
  EXPECT_NEAR(e.value(), 5.0, 1e-9);
}

TEST(Ewma, GainControlsAdaptation) {
  Ewma fast(0.9);
  Ewma slow(0.1);
  fast.Add(0.0);
  slow.Add(0.0);
  fast.Add(10.0);
  slow.Add(10.0);
  EXPECT_GT(fast.value(), slow.value());
}

TEST(RateMeter, Rate) {
  RateMeter m;
  m.AddBytes(1000);
  m.AddBytes(500);
  // 1500 bytes over 1 second.
  EXPECT_DOUBLE_EQ(m.RateBps(0, 1000000), 1500.0);
  EXPECT_EQ(m.RateBps(1000000, 1000000), 0.0);  // empty window
  m.Reset();
  EXPECT_EQ(m.bytes(), 0);
}

}  // namespace
}  // namespace bullet
