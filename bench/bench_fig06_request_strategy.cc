// Fig. 6: impact of the request strategy (first-encountered vs random vs
// rarest-random; plain rarest included as the fourth design point of Section 3.3.2)
// on Bullet' download times under random network losses.
//
// Expected shape (paper): first-encountered worst; rarest-random best for ~70% of
// receivers; plain random catches up in the tail because rarest decisions go stale
// on lossy links.

#include "src/harness/scenario_registry.h"

namespace bullet {
namespace {

const char* StrategyName(RequestStrategy s) {
  switch (s) {
    case RequestStrategy::kFirstEncountered:
      return "first-encountered";
    case RequestStrategy::kRandom:
      return "random";
    case RequestStrategy::kRarest:
      return "rarest";
    case RequestStrategy::kRarestRandom:
      return "rarest-random";
  }
  return "?";
}

BULLET_SCENARIO(fig06_request_strategy, "Fig. 6 — request strategy under random losses") {
  ScenarioConfig cfg;
  cfg.num_nodes = 100;
  cfg.file_mb = ScaledFileMb(100.0);
  cfg.seed = 601;
  ApplyScenarioOptions(opts, &cfg);

  ScenarioReport report(kScenarioName);
  for (const RequestStrategy strategy :
       {RequestStrategy::kRarestRandom, RequestStrategy::kRandom, RequestStrategy::kRarest,
        RequestStrategy::kFirstEncountered}) {
    BulletPrimeConfig bp;
    bp.request_strategy = strategy;
    const ScenarioResult r = RunScenario("bullet-prime", cfg, bp);
    report.AddCompletion(std::string("BulletPrime ") + StrategyName(strategy), r);
  }
  return report;
}

}  // namespace
}  // namespace bullet
