#include "src/sim/topology.h"

#include <gtest/gtest.h>

namespace bullet {
namespace {

TEST(Topology, FullMeshParameters) {
  Rng rng(1);
  MeshTopology::MeshParams params;
  params.num_nodes = 30;
  MeshTopology topo = MeshTopology::FullMesh(params, rng);
  EXPECT_EQ(topo.num_nodes(), 30);
  for (NodeId n = 0; n < 30; ++n) {
    EXPECT_DOUBLE_EQ(topo.uplink(n).bandwidth_bps, 6e6);
    EXPECT_DOUBLE_EQ(topo.downlink(n).bandwidth_bps, 6e6);
    EXPECT_EQ(topo.uplink(n).delay, MsToSim(1));
  }
  for (NodeId s = 0; s < 30; ++s) {
    for (NodeId d = 0; d < 30; ++d) {
      if (s == d) {
        continue;
      }
      const LinkParams& core = topo.core(s, d);
      EXPECT_DOUBLE_EQ(core.bandwidth_bps, 2e6);
      EXPECT_GE(core.delay, MsToSim(5));
      EXPECT_LE(core.delay, MsToSim(200));
      EXPECT_GE(core.loss_rate, 0.0);
      EXPECT_LE(core.loss_rate, 0.03);
    }
  }
}

TEST(Topology, CoreLinksAreAsymmetric) {
  // Direction-specific links: the paper's dynamic scenario halves one direction only.
  Rng rng(2);
  MeshTopology::MeshParams params;
  params.num_nodes = 10;
  MeshTopology topo = MeshTopology::FullMesh(params, rng);
  topo.core(1, 2).bandwidth_bps = 1e5;
  EXPECT_DOUBLE_EQ(topo.core(2, 1).bandwidth_bps, 2e6);
}

TEST(Topology, PathDelayAndRtt) {
  Rng rng(3);
  MeshTopology::MeshParams params;
  params.num_nodes = 5;
  MeshTopology topo = MeshTopology::FullMesh(params, rng);
  const SimTime d12 = topo.PathDelay(1, 2);
  EXPECT_EQ(d12, topo.uplink(1).delay + topo.core(1, 2).delay + topo.downlink(2).delay);
  EXPECT_EQ(topo.Rtt(1, 2), d12 + topo.PathDelay(2, 1));
  EXPECT_EQ(topo.Rtt(1, 2), topo.Rtt(2, 1));
}

TEST(Topology, PathLossComposition) {
  Rng rng(4);
  MeshTopology topo = MeshTopology::ConstrainedAccess(4, rng);
  topo.core(0, 1).loss_rate = 0.5;
  topo.uplink(0).loss_rate = 0.5;
  EXPECT_NEAR(topo.PathLoss(0, 1), 0.75, 1e-12);
  EXPECT_NEAR(topo.PathLoss(1, 0), 0.0, 1e-12);
}

TEST(Topology, ConstrainedAccess) {
  Rng rng(5);
  MeshTopology topo = MeshTopology::ConstrainedAccess(20, rng);
  for (NodeId n = 0; n < 20; ++n) {
    EXPECT_DOUBLE_EQ(topo.uplink(n).bandwidth_bps, 800e3);
  }
  EXPECT_DOUBLE_EQ(topo.core(3, 4).bandwidth_bps, 10e6);
  EXPECT_DOUBLE_EQ(topo.core(3, 4).loss_rate, 0.0);
}

TEST(Topology, Uniform) {
  Rng rng(6);
  MeshTopology topo = MeshTopology::Uniform(25, 10e6, MsToSim(100), 0.0, 0.0, rng);
  EXPECT_DOUBLE_EQ(topo.core(1, 2).bandwidth_bps, 10e6);
  EXPECT_EQ(topo.core(1, 2).delay, MsToSim(100));
  // Access links ample so the uniform links constrain.
  EXPECT_GT(topo.uplink(1).bandwidth_bps, 10e6);
}

TEST(Topology, WideAreaHeterogeneous) {
  Rng rng(7);
  MeshTopology topo = MeshTopology::WideArea(41, rng);
  double min_up = 1e18;
  double max_up = 0;
  for (NodeId n = 0; n < 41; ++n) {
    min_up = std::min(min_up, topo.uplink(n).bandwidth_bps);
    max_up = std::max(max_up, topo.uplink(n).bandwidth_bps);
    EXPECT_GE(topo.uplink(n).bandwidth_bps, 1e6);
    EXPECT_LE(topo.uplink(n).bandwidth_bps, 20e6);
    EXPECT_GE(topo.downlink(n).bandwidth_bps, topo.uplink(n).bandwidth_bps);
  }
  EXPECT_GT(max_up / min_up, 2.0);  // genuinely heterogeneous
}

TEST(Topology, DeterministicGivenSeed) {
  Rng rng1(42);
  Rng rng2(42);
  MeshTopology::MeshParams params;
  params.num_nodes = 12;
  MeshTopology a = MeshTopology::FullMesh(params, rng1);
  MeshTopology b = MeshTopology::FullMesh(params, rng2);
  for (NodeId s = 0; s < 12; ++s) {
    for (NodeId d = 0; d < 12; ++d) {
      if (s != d) {
        EXPECT_EQ(a.core(s, d).delay, b.core(s, d).delay);
        EXPECT_DOUBLE_EQ(a.core(s, d).loss_rate, b.core(s, d).loss_rate);
      }
    }
  }
}

}  // namespace
}  // namespace bullet
