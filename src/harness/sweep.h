// Parallel scenario-sweep engine. A SweepSpec names one registered scenario, a
// cartesian parameter grid (axes), and a repeat count; RunSweep fans the resulting
// runs out across a worker pool and the aggregator reduces repeats into
// median/p10/p90 bands per grid point (schema bullet-bench-v2).
//
// Determinism contract: every run executes in an isolated ScenarioContext whose
// seed is derived from (base_seed, point_index, repeat) alone, and aggregate JSON
// contains no wall-clock or scheduling-dependent data — the same spec always
// produces byte-identical aggregate output, regardless of --jobs.

#ifndef SRC_HARNESS_SWEEP_H_
#define SRC_HARNESS_SWEEP_H_

#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/profiler.h"
#include "src/harness/scenario_registry.h"

namespace bullet {

// One grid dimension: a canonical parameter key and its value list. Supported
// keys are the sweepable rows of the scenario option table (scenario_registry);
// numeric axes fill `values`, string axes (e.g. churn-model) fill
// `text_values` — exactly one of the two is non-empty.
struct SweepAxis {
  std::string key;
  std::vector<double> values;
  std::vector<std::string> text_values;

  bool is_string() const { return !text_values.empty(); }
  size_t size() const { return is_string() ? text_values.size() : values.size(); }
};

// Scenario × parameter grid × repeats. `base` carries fixed overrides that apply
// to every point (anything also named by an axis is overwritten per point).
struct SweepSpec {
  std::string name;        // output tag; defaults to the scenario name
  std::string scenario;
  int repeats = 1;
  uint64_t base_seed = 1;
  ScenarioOptions base;
  std::vector<SweepAxis> axes;

  std::string OutputName() const { return name.empty() ? scenario : name; }
};

// One axis assignment at a grid point: numeric or string, mirroring SweepAxis.
struct SweepParamValue {
  double number = 0.0;
  std::string text;  // set for string axes
  bool is_string = false;
};

// One cell of the expanded grid × repeat plan.
struct SweepPoint {
  int point_index = 0;  // grid cell, repeats excluded
  int repeat = 0;
  uint64_t seed = 0;    // DeriveSweepSeed(base_seed, point_index, repeat)
  // Axis assignments in axis-declaration order (stable for JSON output).
  std::vector<std::pair<std::string, SweepParamValue>> params;
  ScenarioOptions options;  // base + params + seed, ready to hand to a scenario
};

// Isolated per-run execution state: own derived seed (inside point.options), own
// report sink, no mutable state shared with sibling runs. Workers write only to
// their own context, so results are position-stable regardless of scheduling.
struct ScenarioContext {
  SweepPoint point;
  std::optional<ScenarioReport> report;  // empty until the run finishes
  std::string error;                     // non-empty if the scenario threw
  // This run's wall time and deterministic counters (captured via a per-run
  // ScopedRunCounters install). Wall time feeds only the floors document —
  // never the aggregate, which must stay byte-identical across --jobs.
  double wall_sec = 0.0;
  RunCounters counters;
  // Per-phase totals; all zero unless the build has -DBULLET_PROFILE=ON.
  PhaseSnapshot profile;
};

struct SweepRunOutcome {
  bool ok = false;
  std::string error;
  SweepSpec spec;
  // Grid-major, repeat-minor order (point 0 repeat 0, point 0 repeat 1, ...).
  std::vector<ScenarioContext> runs;
  int jobs_used = 0;
  double wall_sec = 0.0;  // informational only; never serialized to JSON
};

// Independent stream per (point, repeat): SplitMix64 over a mix of the base seed
// and both indices. Same inputs always give the same seed; distinct runs get
// decorrelated streams even for adjacent indices or base seeds.
uint64_t DeriveSweepSeed(uint64_t base_seed, int point_index, int repeat);

// Parses "key=v1,v2,..." (the --sweep argument form). On failure returns false and
// sets *error; *axis is only written on success. Values are validated against the
// same ranges as the corresponding single-run flags; empty and repeated values in
// one axis are errors (a duplicate would silently run one grid point twice).
bool ParseSweepAxisSpec(const std::string& text, SweepAxis* axis, std::string* error);

// Parses a sweep spec file: one directive per line, '#' comments and blank lines
// ignored.
//   scenario NAME        (required unless the caller pre-set spec->scenario)
//   name TAG             (optional output tag)
//   repeats N
//   seed N
//   set key=value        (fixed base override, e.g. "set block-bytes=8192")
//   sweep key=v1,v2,...  (one axis; repeatable)
// Directives layer onto whatever *spec already holds, so CLI flags can override
// file contents afterwards.
bool ParseSweepFile(std::istream& in, SweepSpec* spec, std::string* error);

// True when two axes share a key (writes it to *key) — such a grid would run the
// last axis's value under the first axis's label, so spec assembly must reject it.
bool FindDuplicateAxisKey(const std::vector<SweepAxis>& axes, std::string* key);

// Expands the cartesian product of the axes × repeats, in grid-major order with
// axis 0 slowest. An axis-free spec yields `repeats` runs of the single base point.
// Axis keys must be unique (see FindDuplicateAxisKey).
std::vector<SweepPoint> ExpandSweepGrid(const SweepSpec& spec);

// Applies one canonical-key numeric parameter (a SweepAxis value) onto
// options. Returns false on an unknown or non-numeric key.
bool ApplySweepParam(const std::string& key, double value, ScenarioOptions* options);
// String-axis counterpart (e.g. churn-model=stub).
bool ApplySweepParamText(const std::string& key, const std::string& value,
                         ScenarioOptions* options);

// Runs every grid point through the registry's scenario on `jobs` worker threads
// (jobs <= 0 picks hardware concurrency). Blocks until all runs finish.
SweepRunOutcome RunSweep(const SweepSpec& spec, const ScenarioRegistry& registry, int jobs);

// Flattens one run's report into "series.metric" -> value pairs, the metric
// namespace the aggregator and bench_check operate on.
std::map<std::string, double> FlattenReportMetrics(const ScenarioReport& report);

// Serializes the aggregate bullet-bench-v3 document: spec echo, per-point params,
// and median/p10/p90 across repeats for every flattened metric. In profiled
// builds (PhaseProfiler::kCompiledIn) each point also carries a `profile`
// object of median per-phase *counts* — counts are deterministic, so the
// aggregate stays byte-identical across --jobs; nanoseconds never appear here.
void WriteSweepJson(std::ostream& os, const SweepRunOutcome& outcome);

// Serializes the companion bullet-floors-v1 document: per grid point, the
// median wall time and deterministic counters across repeats, plus the derived
// normalized throughputs (events/sec, simulated bytes/sec) the CI perf gate
// compares against committed floors (see docs/PERFORMANCE.md). This file is
// machine-dependent by design and is written separately from the aggregate.
void WriteSweepFloorsJson(std::ostream& os, const SweepRunOutcome& outcome);

// True when any run's report carries one of the deterministic memory-byte
// scalars (route_cache_bytes / path_pool_bytes / arena_peak_bytes) — the
// runner writes the ceilings companion only for such sweeps.
bool SweepHasCeilingMetrics(const SweepRunOutcome& outcome);

// Serializes the companion bullet-ceilings-v1 document: per grid point, the
// median of each memory-byte scalar across repeats, under a `ceilings` object.
// The CI memory gate compares a fresh document against a committed one with
// the floors mechanism inverted: current must stay at or *below* every
// committed ceiling. The scalars are deterministic byte counters (never RSS),
// so this document is byte-identical across --jobs like the aggregate.
void WriteSweepCeilingsJson(std::ostream& os, const SweepRunOutcome& outcome);

}  // namespace bullet

#endif  // SRC_HARNESS_SWEEP_H_
