// Fig. 9: peer-set sizes on the constrained-access topology (ample 10 Mbps / 1 ms
// core, 800 Kbps access links, no loss), 10 MB file.
//
// Expected shape (paper): the ranking INVERTS relative to Fig. 7 — 14 peers performs
// worse than 10 because extra maximizing TCP flows fight over the narrow access
// links and extra control traffic eats goodput. The dynamic approach tracks (and
// sometimes exceeds) the better static setup. This inversion is the paper's central
// argument that no static peer-set size works everywhere.

#include "src/harness/scenario_registry.h"
#include "bench/peerset_common.h"

namespace bullet {
namespace {

BULLET_SCENARIO(fig09_peerset_constrained, "Fig. 9 — peer-set size, constrained access links") {
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kConstrained;
  cfg.num_nodes = 100;
  cfg.file_mb = ScaledFileMb(10.0);
  cfg.seed = 901;
  ApplyScenarioOptions(opts, &cfg);

  ScenarioReport report(kScenarioName);
  bench::RunPeerSetSweep(cfg, {10, 0, 14}, &report);
  return report;
}

}  // namespace
}  // namespace bullet
