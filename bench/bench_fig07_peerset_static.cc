// Fig. 7: static peer-set sizes (6, 10, 14 senders and receivers) versus Bullet''s
// dynamic sizing, on the lossy Section 4.1 topology.
//
// Expected shape (paper): 14 > 10 > 6 (more TCP flows are more resilient to loss);
// the dynamic strategy starts at 10 and tracks the 14-peer configuration for about
// half the receivers.

#include "bench/bench_util.h"

namespace bullet {
namespace {

void BM_PeerSet(benchmark::State& state) {
  const int peers = static_cast<int>(state.range(0));  // 0 = dynamic
  ScenarioConfig cfg;
  cfg.num_nodes = 100;
  cfg.file_mb = bench::ScaledFileMb(100.0);
  cfg.seed = 701;
  BulletPrimeConfig bp;
  std::string name;
  if (peers == 0) {
    name = "BulletPrime dynamic peer sets";
  } else {
    bp.dynamic_peer_sets = false;
    bp.initial_senders = peers;
    bp.initial_receivers = peers;
    name = "BulletPrime " + std::to_string(peers) + " senders/receivers";
  }
  for (auto _ : state) {
    const ScenarioResult r = RunScenario(System::kBulletPrime, cfg, bp);
    bench::ReportCompletion(state, name, r);
  }
}
BENCHMARK(BM_PeerSet)->Arg(14)->Arg(0)->Arg(10)->Arg(6)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bullet

BULLET_BENCH_MAIN("Fig. 7 — peer-set size under random losses")
