// Fig. 20 (extension, no paper figure): mixed systems in one network. A
// Bullet' session and a BitTorrent session — disjoint interleaved member sets,
// separate sources and files — compete head-to-head over the same transit-stub
// gateways. The string-keyed protocol registry is what makes this expressible:
// each session resolves its own factory by name, and per-session completion
// lets the faster system finish without cutting the slower one off.
//
// Fixed system roster (the comparison *is* the scenario), so --system is
// ignored like any other override that does not apply.

#include "bench/session_common.h"
#include "src/harness/scenario_registry.h"

namespace bullet {
namespace {

BULLET_SCENARIO_TRANSIT_STUB_DEFAULT(fig20_mixed_systems);

BULLET_SCENARIO(fig20_mixed_systems,
                "Extension — Bullet' vs BitTorrent sessions competing in one network") {
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kTransitStub;
  cfg.num_nodes = 60;
  cfg.file_mb = ScaledFileMb(10.0);
  cfg.block_bytes = 100 * 1024;  // match fig17/fig19's wide-area block size
  cfg.seed = 2001;
  ApplyScenarioOptions(opts, &cfg);
  cfg.topo = ScenarioConfig::Topo::kTransitStub;
  cfg.transit_stub = ScaledTransitStub(cfg.num_nodes);

  WorkloadSpec workload;
  {
    SessionSpec a;
    a.name = "BulletPrime (mixed)";
    a.protocol = "bullet-prime";
    a.members = EvenMembers(cfg.num_nodes);
    a.source = 0;
    workload.sessions.push_back(std::move(a));
  }
  {
    SessionSpec b;
    b.name = "BitTorrent (mixed)";
    b.protocol = "bittorrent";
    b.members = OddMembers(cfg.num_nodes);
    b.source = 1;
    workload.sessions.push_back(std::move(b));
  }

  const WorkloadResult wl = RunScenarioWorkload(cfg, workload);

  ScenarioReport report(kScenarioName);
  for (const SessionResult& session : wl.sessions) {
    report.AddCompletion(session.name, ToScenarioResult(session, wl));
  }
  report.AddScalar("max_flows_on_shared_link", wl.max_shared_link_flows);
  report.AddScalar("sessions_completed", wl.sessions_completed);
  return report;
}

}  // namespace
}  // namespace bullet
