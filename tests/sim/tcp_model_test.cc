#include "src/sim/tcp_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bullet {
namespace {

TEST(TcpModel, MathisNoLossIsUnlimited) {
  EXPECT_GE(MathisCapBps(MsToSim(100), 0.0, 1460.0), 1e11);
}

TEST(TcpModel, MathisKnownValue) {
  // MSS 1460 B, RTT 200 ms, p = 1%: 1460*8 / (0.2 * sqrt(2*0.01/3)).
  const double expected = 1460.0 * 8.0 / (0.2 * std::sqrt(2.0 * 0.01 / 3.0));
  EXPECT_NEAR(MathisCapBps(MsToSim(200), 0.01, 1460.0), expected, 1.0);
}

TEST(TcpModel, MathisDecreasesWithLossAndRtt) {
  const double base = MathisCapBps(MsToSim(100), 0.01, 1460.0);
  EXPECT_LT(MathisCapBps(MsToSim(100), 0.02, 1460.0), base);
  EXPECT_LT(MathisCapBps(MsToSim(200), 0.01, 1460.0), base);
}

TEST(TcpModel, SlowStartRampGrows) {
  TcpModelParams params;
  TcpFlowState state;
  state.OnBecameActive(0, params);
  const SimTime rtt = MsToSim(100);
  const double r0 = TcpRateCapBps(state, 0, rtt, 0.0, params);
  const double r3 = TcpRateCapBps(state, 3 * rtt, rtt, 0.0, params);
  const double r6 = TcpRateCapBps(state, 6 * rtt, rtt, 0.0, params);
  EXPECT_GT(r3, r0 * 4);  // doubles per RTT
  EXPECT_GT(r6, r3 * 4);
}

TEST(TcpModel, RampStartsFromInitialWindow) {
  TcpModelParams params;
  TcpFlowState state;
  state.OnBecameActive(0, params);
  const SimTime rtt = MsToSim(100);
  // At t=0: IW segments per RTT.
  const double expected = params.initial_window_segments * params.mss_bytes * 8.0 / 0.1;
  EXPECT_NEAR(TcpRateCapBps(state, 0, rtt, 0.0, params), expected, expected * 0.01);
}

TEST(TcpModel, IdleRestartResetsRamp) {
  TcpModelParams params;
  TcpFlowState state;
  state.OnBecameActive(0, params);
  state.last_busy = SecToSim(10.0);
  // Re-activating shortly after staying busy keeps the ramp.
  state.OnBecameActive(SecToSim(10.5), params);
  EXPECT_EQ(state.active_since, 0);
  // Re-activating after a long idle restarts slow start.
  state.OnBecameActive(SecToSim(30.0), params);
  EXPECT_EQ(state.active_since, SecToSim(30.0));
}

TEST(TcpModel, LossCapsTheRamp) {
  TcpModelParams params;
  TcpFlowState state;
  state.OnBecameActive(0, params);
  const SimTime rtt = MsToSim(100);
  const double capped = TcpRateCapBps(state, SecToSim(60.0), rtt, 0.02, params);
  EXPECT_NEAR(capped, MathisCapBps(rtt, 0.02, params.mss_bytes), 1.0);
}

}  // namespace
}  // namespace bullet
