// Command-line driver behind the bullet_run binary. Split from main() so the arg
// parsing, JSON emission and exit codes are unit-testable.

#ifndef SRC_HARNESS_SCENARIO_RUNNER_H_
#define SRC_HARNESS_SCENARIO_RUNNER_H_

#include <ostream>
#include <string>

#include "src/harness/scenario_registry.h"

namespace bullet {

struct RunnerArgs {
  bool ok = true;          // false => `error` says what was wrong
  std::string error;
  bool help = false;
  bool list = false;
  bool quiet = false;      // suppress the human-readable tables on stdout
  std::string scenario;
  std::string out_path;    // empty => BENCH_<scenario>.json in the working directory
  ScenarioOptions options;
};

// Parses bullet_run flags: --list, --scenario NAME, --nodes N, --file-mb F,
// --seed S, --block-bytes B, --deadline-sec D, --out PATH, --quiet, --help.
// Both "--flag value" and "--flag=value" forms are accepted.
RunnerArgs ParseRunnerArgs(int argc, const char* const* argv);

// Serializes a finished report (plus the options that produced it) as JSON.
void WriteReportJson(std::ostream& os, const ScenarioReport& report,
                     const ScenarioOptions& options);

void PrintScenarioList(std::ostream& os, const ScenarioRegistry& registry);
void PrintRunnerUsage(std::ostream& os);

// Full CLI flow against `registry`; returns the process exit code.
int RunnerMain(int argc, const char* const* argv, const ScenarioRegistry& registry,
               std::ostream& out, std::ostream& err);

// Convenience overload used by the bullet_run main(): global registry, std streams.
int RunnerMain(int argc, const char* const* argv);

}  // namespace bullet

#endif  // SRC_HARNESS_SCENARIO_RUNNER_H_
