// Fig. 19 (extension, no paper figure): two concurrent sessions — two files,
// disjoint sources and receiver sets — competing over the shared transit-stub
// core from PR 4. Members interleave (evens vs odds), so both sessions run
// through the same stub gateway and transit links; the allocator's
// max_flows_on_shared_link scalar shows flows from *both* transfers stacked on
// one interior link, which is impossible in the single-session harness (and on
// the legacy mesh, where every pair has a private core link).
//
// Completion is per-session: whichever session finishes first must not stop
// the other (tests/harness/workload_test.cc pins this; here the
// sessions_completed scalar shows both ran to completion).

#include "bench/session_common.h"
#include "src/harness/scenario_registry.h"

namespace bullet {
namespace {

BULLET_SCENARIO_TRANSIT_STUB_DEFAULT(fig19_concurrent_sessions);

BULLET_SCENARIO(fig19_concurrent_sessions,
                "Extension — two concurrent sessions over a shared transit-stub core") {
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kTransitStub;
  cfg.num_nodes = 60;
  cfg.file_mb = ScaledFileMb(10.0);
  cfg.block_bytes = 100 * 1024;  // the wide-area deployment's block size (Section 4.7)
  cfg.seed = 1901;
  ApplyScenarioOptions(opts, &cfg);
  // The scenario *is* the shared routed core; see fig17 for the same rule.
  cfg.topo = ScenarioConfig::Topo::kTransitStub;
  cfg.transit_stub = ScaledTransitStub(cfg.num_nodes);

  // Subset sessions: a --system that cannot run over half the nodes
  // (splitstream) is ignored like any other inapplicable override.
  const std::string protocol = ScenarioSubsetSystemOr(cfg, "bullet-prime");
  WorkloadSpec workload;
  {
    SessionSpec a;
    a.name = "session A";
    a.protocol = protocol;
    a.members = EvenMembers(cfg.num_nodes);
    a.source = 0;
    workload.sessions.push_back(std::move(a));
  }
  {
    SessionSpec b;
    b.name = "session B";
    b.protocol = protocol;
    b.members = OddMembers(cfg.num_nodes);
    b.source = 1;
    workload.sessions.push_back(std::move(b));
  }
  // Session seeds are left unset: each derives its own stream from the
  // workload seed and its index, so A and B build different trees and meshes.

  const WorkloadResult wl = RunScenarioWorkload(cfg, workload);

  ScenarioReport report(kScenarioName);
  for (const SessionResult& session : wl.sessions) {
    report.AddCompletion(session.name, ToScenarioResult(session, wl));
  }
  report.AddScalar("max_flows_on_shared_link", wl.max_shared_link_flows);
  report.AddScalar("sessions_completed", wl.sessions_completed);
  return report;
}

}  // namespace
}  // namespace bullet
