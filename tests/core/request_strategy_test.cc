#include "src/core/request_strategy.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace bullet {
namespace {

const CandidateSet::ValidFn kAlwaysValid = [](uint32_t) { return true; };
const CandidateSet::RarityFn kFlatRarity = [](uint32_t) { return 1; };

TEST(CandidateSet, EmptyPicksNothing) {
  CandidateSet cs;
  Rng rng(1);
  for (const auto strategy :
       {RequestStrategy::kFirstEncountered, RequestStrategy::kRandom, RequestStrategy::kRarest,
        RequestStrategy::kRarestRandom}) {
    EXPECT_FALSE(cs.Pick(strategy, kAlwaysValid, kFlatRarity, rng).has_value());
  }
}

TEST(CandidateSet, FirstEncounteredPreservesDiscoveryOrder) {
  CandidateSet cs;
  Rng rng(2);
  for (const uint32_t id : {5u, 3u, 9u, 1u}) {
    cs.Add(id);
  }
  EXPECT_EQ(cs.Pick(RequestStrategy::kFirstEncountered, kAlwaysValid, kFlatRarity, rng), 5u);
  EXPECT_EQ(cs.Pick(RequestStrategy::kFirstEncountered, kAlwaysValid, kFlatRarity, rng), 3u);
  EXPECT_EQ(cs.Pick(RequestStrategy::kFirstEncountered, kAlwaysValid, kFlatRarity, rng), 9u);
  EXPECT_EQ(cs.Pick(RequestStrategy::kFirstEncountered, kAlwaysValid, kFlatRarity, rng), 1u);
}

TEST(CandidateSet, FirstEncounteredSkipsInvalid) {
  CandidateSet cs;
  Rng rng(3);
  for (uint32_t id = 0; id < 10; ++id) {
    cs.Add(id);
  }
  const auto odd_only = [](uint32_t id) { return id % 2 == 1; };
  EXPECT_EQ(cs.Pick(RequestStrategy::kFirstEncountered, odd_only, kFlatRarity, rng), 1u);
  EXPECT_EQ(cs.Pick(RequestStrategy::kFirstEncountered, odd_only, kFlatRarity, rng), 3u);
}

TEST(CandidateSet, RandomCoversAllCandidates) {
  CandidateSet cs;
  Rng rng(4);
  std::set<uint32_t> expected;
  for (uint32_t id = 0; id < 20; ++id) {
    cs.Add(id);
    expected.insert(id);
  }
  std::set<uint32_t> picked;
  while (true) {
    const auto p = cs.Pick(RequestStrategy::kRandom, kAlwaysValid, kFlatRarity, rng);
    if (!p.has_value()) {
      break;
    }
    EXPECT_TRUE(picked.insert(*p).second) << "duplicate pick";
  }
  EXPECT_EQ(picked, expected);
}

TEST(CandidateSet, RandomIsActuallyRandom) {
  // First pick across many fresh sets should not always be the same id.
  std::map<uint32_t, int> first_pick;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    CandidateSet cs;
    Rng rng(seed);
    for (uint32_t id = 0; id < 10; ++id) {
      cs.Add(id);
    }
    first_pick[*cs.Pick(RequestStrategy::kRandom, kAlwaysValid, kFlatRarity, rng)]++;
  }
  EXPECT_GT(first_pick.size(), 3u);
}

TEST(CandidateSet, RarestPicksMinimumRarity) {
  CandidateSet cs;
  Rng rng(5);
  for (uint32_t id = 0; id < 30; ++id) {
    cs.Add(id);
  }
  const auto rarity = [](uint32_t id) { return id == 17 ? 1 : 5; };
  EXPECT_EQ(cs.Pick(RequestStrategy::kRarest, kAlwaysValid, rarity, rng), 17u);
}

TEST(CandidateSet, RarestBreaksTiesDeterministically) {
  // All equal rarity: plain rarest always picks the lowest id — the deterministic
  // herd behaviour the paper calls out as a flaw.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    CandidateSet cs;
    Rng rng(seed);
    for (const uint32_t id : {7u, 3u, 12u, 9u}) {
      cs.Add(id);
    }
    EXPECT_EQ(cs.Pick(RequestStrategy::kRarest, kAlwaysValid, kFlatRarity, rng), 3u);
  }
}

TEST(CandidateSet, RarestRandomBreaksTiesRandomly) {
  std::map<uint32_t, int> first_pick;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    CandidateSet cs;
    Rng rng(seed);
    for (uint32_t id = 0; id < 10; ++id) {
      cs.Add(id);
    }
    first_pick[*cs.Pick(RequestStrategy::kRarestRandom, kAlwaysValid, kFlatRarity, rng)]++;
  }
  EXPECT_GT(first_pick.size(), 3u);
}

TEST(CandidateSet, RarestRandomStillPrefersRarity) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    CandidateSet cs;
    Rng rng(seed);
    for (uint32_t id = 0; id < 50; ++id) {
      cs.Add(id);
    }
    const auto rarity = [](uint32_t id) { return id == 23 || id == 31 ? 1 : 4; };
    const auto pick = cs.Pick(RequestStrategy::kRarestRandom, kAlwaysValid, rarity, rng);
    ASSERT_TRUE(pick.has_value());
    EXPECT_TRUE(*pick == 23 || *pick == 31) << *pick;
  }
}

TEST(CandidateSet, StaleEntriesEventuallyCompacted) {
  CandidateSet cs;
  Rng rng(6);
  for (uint32_t id = 0; id < 500; ++id) {
    cs.Add(id);
  }
  // Invalidate everything except one needle; the sampled strategies must find it.
  const auto only_250 = [](uint32_t id) { return id == 250; };
  const auto pick = cs.Pick(RequestStrategy::kRarestRandom, only_250, kFlatRarity, rng);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 250u);
  EXPECT_FALSE(cs.Pick(RequestStrategy::kRarestRandom, only_250, kFlatRarity, rng).has_value());
}

TEST(CandidateSet, RunningDry) {
  CandidateSet cs;
  EXPECT_TRUE(cs.RunningDry(1, kAlwaysValid));
  for (uint32_t id = 0; id < 5; ++id) {
    cs.Add(id);
  }
  EXPECT_FALSE(cs.RunningDry(5, kAlwaysValid));
  EXPECT_TRUE(cs.RunningDry(6, kAlwaysValid));
  const auto none_valid = [](uint32_t) { return false; };
  EXPECT_TRUE(cs.RunningDry(1, none_valid));
}

TEST(CandidateSet, ReaddMakesPickableAgain) {
  CandidateSet cs;
  Rng rng(7);
  cs.Add(42);
  EXPECT_EQ(cs.Pick(RequestStrategy::kRandom, kAlwaysValid, kFlatRarity, rng), 42u);
  EXPECT_FALSE(cs.Pick(RequestStrategy::kRandom, kAlwaysValid, kFlatRarity, rng).has_value());
  cs.Readd(42);
  EXPECT_EQ(cs.Pick(RequestStrategy::kRandom, kAlwaysValid, kFlatRarity, rng), 42u);
}

TEST(CandidateSet, StaleOnlySampleCompactsAndRetries) {
  // Large set where valid entries are vanishingly rare: a sampled round can
  // draw only stale entries, which must trigger a Compact + retry on the
  // cleaned set rather than reporting nothing to request.
  CandidateSet cs;
  Rng rng(9);
  for (uint32_t id = 0; id < 20000; ++id) {
    cs.Add(id);
  }
  const auto only_19999 = [](uint32_t id) { return id == 19999; };
  for (const auto strategy : {RequestStrategy::kRarest, RequestStrategy::kRarestRandom}) {
    const auto pick = cs.Pick(strategy, only_19999, kFlatRarity, rng);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 19999u);
    cs.Readd(19999);
  }
}

TEST(CandidateSet, RunningDryThresholds) {
  CandidateSet cs;
  for (uint32_t id = 0; id < 100; ++id) {
    cs.Add(id);
  }
  // Only ids >= 90 are still valid: exactly 10 candidates remain.
  const auto last_ten = [](uint32_t id) { return id >= 90; };
  EXPECT_FALSE(cs.RunningDry(1, last_ten));
  EXPECT_FALSE(cs.RunningDry(10, last_ten));
  EXPECT_TRUE(cs.RunningDry(11, last_ten));
  EXPECT_TRUE(cs.RunningDry(100, last_ten));
}

TEST(CandidateSet, WindowedFirstEncounteredRetainsIneligible) {
  // Ineligible (outside the playback window) candidates must survive the pick
  // for a later window; invalid (already held) ones must be dropped.
  CandidateSet cs;
  Rng rng(10);
  for (const uint32_t id : {4u, 1u, 7u, 2u}) {
    cs.Add(id);
  }
  const auto not_4 = [](uint32_t id) { return id != 4; };  // 4 already held
  const auto window_lo = [](uint32_t id) { return id <= 2; };
  EXPECT_EQ(cs.PickWindowed(RequestStrategy::kFirstEncountered, not_4, window_lo, kFlatRarity, rng),
            1u);
  EXPECT_EQ(cs.PickWindowed(RequestStrategy::kFirstEncountered, not_4, window_lo, kFlatRarity, rng),
            2u);
  // Nothing eligible left, but 7 stays queued for when the window advances.
  EXPECT_FALSE(cs.PickWindowed(RequestStrategy::kFirstEncountered, not_4, window_lo, kFlatRarity,
                               rng)
                   .has_value());
  const auto window_hi = [](uint32_t id) { return id >= 5; };
  EXPECT_EQ(cs.PickWindowed(RequestStrategy::kFirstEncountered, not_4, window_hi, kFlatRarity, rng),
            7u);
}

TEST(CandidateSet, WindowedRarestPicksWithinWindowOnly) {
  CandidateSet cs;
  Rng rng(11);
  for (uint32_t id = 0; id < 20; ++id) {
    cs.Add(id);
  }
  // Id 15 is globally rarest but outside the window; 3 is the rarest inside.
  const auto rarity = [](uint32_t id) { return id == 15 ? 1 : (id == 3 ? 2 : 5); };
  const auto window = [](uint32_t id) { return id < 8; };
  EXPECT_EQ(cs.PickWindowed(RequestStrategy::kRarest, kAlwaysValid, window, rarity, rng), 3u);
  // The out-of-window rare block is still there once the window reaches it.
  const auto all = [](uint32_t) { return true; };
  EXPECT_EQ(cs.PickWindowed(RequestStrategy::kRarest, kAlwaysValid, all, rarity, rng), 15u);
}

TEST(CandidateSet, WindowedRarestTieBreaksMatchBulkSemantics) {
  // kRarest: deterministic lowest-id tie-break; kRarestRandom: spread.
  const auto window = [](uint32_t id) { return id < 10; };
  for (uint64_t seed = 0; seed < 10; ++seed) {
    CandidateSet cs;
    Rng rng(seed);
    for (const uint32_t id : {9u, 2u, 6u, 14u}) {
      cs.Add(id);
    }
    EXPECT_EQ(cs.PickWindowed(RequestStrategy::kRarest, kAlwaysValid, window, kFlatRarity, rng),
              2u);
  }
  std::map<uint32_t, int> first_pick;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    CandidateSet cs;
    Rng rng(seed);
    for (uint32_t id = 0; id < 10; ++id) {
      cs.Add(id);
    }
    first_pick[*cs.PickWindowed(RequestStrategy::kRarestRandom, kAlwaysValid, window, kFlatRarity,
                                rng)]++;
  }
  EXPECT_GT(first_pick.size(), 3u);
}

TEST(CandidateSet, WindowedCompactsInvalidEntries) {
  // PickWindowed drops invalid entries as it scans — observable via RunningDry
  // before any successful pick.
  CandidateSet cs;
  Rng rng(12);
  for (uint32_t id = 0; id < 50; ++id) {
    cs.Add(id);
  }
  const auto only_49 = [](uint32_t id) { return id == 49; };
  const auto nothing_eligible = [](uint32_t) { return false; };
  EXPECT_FALSE(
      cs.PickWindowed(RequestStrategy::kRarest, only_49, nothing_eligible, kFlatRarity, rng)
          .has_value());
  EXPECT_TRUE(cs.RunningDry(2, kAlwaysValid)) << "invalid entries were not compacted";
  EXPECT_FALSE(cs.RunningDry(1, kAlwaysValid)) << "the one valid entry was dropped";
  const auto all = [](uint32_t) { return true; };
  EXPECT_EQ(cs.PickWindowed(RequestStrategy::kRarest, only_49, all, kFlatRarity, rng), 49u);
}

TEST(CandidateSet, WindowedRandomCoversEligibleSet) {
  CandidateSet cs;
  Rng rng(13);
  std::set<uint32_t> expected;
  for (uint32_t id = 0; id < 16; ++id) {
    cs.Add(id);
    if (id < 8) {
      expected.insert(id);
    }
  }
  const auto window = [](uint32_t id) { return id < 8; };
  std::set<uint32_t> picked;
  while (true) {
    const auto p = cs.PickWindowed(RequestStrategy::kRandom, kAlwaysValid, window, kFlatRarity, rng);
    if (!p.has_value()) {
      break;
    }
    EXPECT_TRUE(picked.insert(*p).second) << "duplicate pick";
  }
  EXPECT_EQ(picked, expected);
}

TEST(CandidateSet, LargeSetSampledRarestFindsRareBlocks) {
  // With 10k candidates the sampled strategies still find low-rarity blocks with
  // high probability when they are not vanishingly rare.
  CandidateSet cs;
  Rng rng(8);
  for (uint32_t id = 0; id < 10000; ++id) {
    cs.Add(id);
  }
  // 5% of blocks are rare.
  const auto rarity = [](uint32_t id) { return id % 20 == 0 ? 1 : 9; };
  int rare_hits = 0;
  for (int i = 0; i < 100; ++i) {
    const auto pick = cs.Pick(RequestStrategy::kRarestRandom, kAlwaysValid, rarity, rng);
    ASSERT_TRUE(pick.has_value());
    if (*pick % 20 == 0) {
      ++rare_hits;
    }
  }
  EXPECT_GT(rare_hits, 90);
}

}  // namespace
}  // namespace bullet
