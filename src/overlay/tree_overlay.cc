#include "src/overlay/tree_overlay.h"

namespace bullet {

TreeOverlayProtocol::TreeOverlayProtocol(const Context& ctx, const FileParams& file, NodeId source,
                                         const ControlTree* tree,
                                         RanSubAgent::Config ransub_config)
    : DisseminationProtocol(ctx, file, source), tree_(tree) {
  ransub_ = std::make_unique<RanSubAgent>(
      tree_, self(), ransub_config, rng().Fork(0x5a),
      [this] { return MakeSummary(); },
      [this](const std::vector<PeerSummary>& subset) { OnRanSubEpoch(subset); },
      [this](NodeId peer, std::unique_ptr<Message> msg) { SendOnTree(peer, std::move(msg)); },
      &queue());
}

PeerSummary TreeOverlayProtocol::MakeSummary() {
  PeerSummary s;
  s.node = self();
  s.block_count = static_cast<uint32_t>(have_.count());
  s.sketch_bits = sketch_.bits();
  return s;
}

void TreeOverlayProtocol::Start() {
  if (!tree_->IsRoot(self())) {
    const NodeId parent = tree_->parent[static_cast<size_t>(self())];
    parent_conn_ = net().Connect(self(), parent);
  } else {
    ransub_->Start();
  }
}

ConnId TreeOverlayProtocol::ChildConn(NodeId child) const {
  auto it = child_conns_.find(child);
  return it == child_conns_.end() ? -1 : it->second;
}

bool TreeOverlayProtocol::IsTreeConn(ConnId conn) const {
  if (conn < 0) {
    return false;
  }
  if (conn == parent_conn_) {
    return true;
  }
  for (const auto& [child, c] : child_conns_) {
    if (c == conn) {
      return true;
    }
  }
  return false;
}

void TreeOverlayProtocol::SendOnTree(NodeId peer, std::unique_ptr<Message> msg) {
  ConnId conn = -1;
  if (!tree_->IsRoot(self()) && peer == tree_->parent[static_cast<size_t>(self())]) {
    conn = parent_conn_;
  } else {
    conn = ChildConn(peer);
  }
  if (conn >= 0) {
    net().Send(conn, self(), std::move(msg));
  }
  // A missing tree connection simply drops the message; RanSub recovers next epoch.
}

void TreeOverlayProtocol::OnConnUp(ConnId conn, NodeId peer, bool initiator) {
  if (initiator && conn == parent_conn_) {
    // Identify this as our tree link, then begin RanSub (the initial collect).
    net().Send(conn, self(), std::make_unique<TreeHelloMsg>());
    ransub_->Start();
    return;
  }
  OnPeerConnUp(conn, peer, initiator);
}

void TreeOverlayProtocol::OnConnDown(ConnId conn, NodeId peer) {
  if (conn == parent_conn_) {
    parent_conn_ = -1;  // Static membership in these experiments; no rejoin needed.
    return;
  }
  auto it = child_conns_.find(peer);
  if (it != child_conns_.end() && it->second == conn) {
    child_conns_.erase(it);
    return;
  }
  OnPeerConnDown(conn, peer);
}

void TreeOverlayProtocol::OnMessage(ConnId conn, NodeId from, std::unique_ptr<Message> msg) {
  if (msg->type == TreeHelloMsg::kType) {
    child_conns_[from] = conn;
    return;
  }
  if (ransub_->HandleMessage(from, *msg)) {
    AccountControlIn(msg->wire_bytes);
    return;
  }
  OnProtocolMessage(conn, from, std::move(msg));
}

}  // namespace bullet
