// The Bullet' adaptation algorithms as pure functions, straight from the paper's
// pseudocode, so tests can exercise them exhaustively.
//
//  * ManageMaxPeers      — Fig. 2 (ManageSenders): hill-climbing on the peer-set size
//                          driven by observed bandwidth between RanSub epochs. The
//                          identical procedure runs for receivers with outgoing
//                          bandwidth (Section 3.3.1).
//  * TrimIndices         — the 1.5-standard-deviation rule: disconnect peers whose
//                          metric falls that far below the mean, never dropping below
//                          the minimum peer count.
//  * ManageOutstanding   — Fig. 3: the XCP-derived controller for the per-peer
//                          outstanding-request window (Section 3.3.3).

#ifndef SRC_CORE_ADAPTATION_H_
#define SRC_CORE_ADAPTATION_H_

#include <cstddef>
#include <vector>

namespace bullet {

struct PeerSetState {
  int max_peers = 10;       // MAX_SENDERS (or MAX_RECEIVERS)
  int num_prev = 0;         // peer count at the previous epoch
  double prev_bw = 0.0;     // bandwidth observed over the previous epoch
};

// Runs one epoch of Fig. 2. `cur_size` is the current peer count and `bw` the
// bandwidth observed since the last epoch. Returns the updated MAX value clamped to
// [hard_min, hard_max] and updates history fields in `state`.
int ManageMaxPeers(PeerSetState& state, int cur_size, double bw, int hard_min, int hard_max);

// Returns indices of `metric` entries lying more than `stddevs` standard deviations
// below the mean, worst first, never selecting so many that fewer than `min_keep`
// entries remain. With zero spread nothing is selected (the paper: "if all of a
// peer's senders are approximately equal... none of them should be closed").
std::vector<size_t> TrimIndices(const std::vector<double>& metric, double stddevs,
                                size_t min_keep);

struct OutstandingParams {
  double alpha = 0.4;
  double beta = 0.226;
  double min_outstanding = 1.0;
  double max_outstanding = 64.0;
};

// Runs one Fig. 3 update. `requested` is the number of blocks currently outstanding
// to this sender; `in_front` and `wasted_sec` are the sender-measured values echoed
// on the marked block; `bandwidth_Bps` is the receiver-measured rate from this
// sender in bytes/second. Returns the new desired outstanding window. Increases are
// rounded up (the paper takes the ceiling when increasing, so request pipelines
// saturate TCP rather than just match it).
double ManageOutstanding(double requested, double in_front, double wasted_sec,
                         double bandwidth_Bps, double block_bytes,
                         const OutstandingParams& params);

}  // namespace bullet

#endif  // SRC_CORE_ADAPTATION_H_
