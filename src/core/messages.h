// Bullet' wire messages (Fig. 1 of the paper, steps 4-8). Wire sizes include a
// per-message protocol header estimate; the emulator charges exactly wire_bytes.

#ifndef SRC_CORE_MESSAGES_H_
#define SRC_CORE_MESSAGES_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/sim/network.h"

namespace bullet {

namespace bp {

constexpr int64_t kSmallHeader = 16;

// Receiver -> candidate sender: "I want to receive from you".
struct PeerRequestMsg : Message {
  static constexpr int kType = 101;
  PeerRequestMsg() {
    type = kType;
    wire_bytes = kSmallHeader;
  }
};

// Sender -> receiver: peering accepted; a full diff follows.
struct PeerAcceptMsg : Message {
  static constexpr int kType = 102;
  PeerAcceptMsg() {
    type = kType;
    wire_bytes = kSmallHeader;
  }
};

// Sender -> receiver: at capacity.
struct PeerRejectMsg : Message {
  static constexpr int kType = 103;
  PeerRejectMsg() {
    type = kType;
    wire_bytes = kSmallHeader;
  }
};

// Sender -> receiver: blocks newly available at the sender (incremental; a block id
// is mentioned to a given receiver at most once, Section 3.3.4). For large diffs the
// wire cost is capped at the bitmap representation.
struct DiffMsg : Message {
  static constexpr int kType = 104;
  std::vector<uint32_t> ids;

  void Finalize(uint32_t num_blocks_total) {
    type = kType;
    const int64_t as_list = static_cast<int64_t>(ids.size()) * 4;
    const int64_t as_bitmap = static_cast<int64_t>(num_blocks_total + 7) / 8;
    wire_bytes = kSmallHeader + std::min(as_list, as_bitmap);
  }
};

// Receiver -> sender: "I am about to run out of known-available blocks; send a diff".
struct DiffRequestMsg : Message {
  static constexpr int kType = 105;
  DiffRequestMsg() {
    type = kType;
    wire_bytes = 12;
  }
};

// Receiver -> sender: request one block. `marked` tags the request used to observe
// the effect of the last outstanding-window adjustment (Section 3.3.3). The receiver
// piggybacks its current total inbound bandwidth, which the sender uses when trimming
// receivers (Section 3.3.1).
struct BlockRequestMsg : Message {
  static constexpr int kType = 106;
  uint32_t block_id = 0;
  bool marked = false;
  float receiver_total_in_bps = 0;

  BlockRequestMsg() {
    type = kType;
    wire_bytes = 24;
  }
};

// Sender -> receiver: one data block. Carries the flow-control measurements for the
// request that elicited it, plus piggybacked availability news (ids the sender
// acquired since it last told this receiver).
struct BlockMsg : Message {
  static constexpr int kType = 107;
  uint32_t block_id = 0;
  bool pushed = false;    // true for source tree pushes (no request)
  bool marked = false;    // echoes the request's mark
  float in_front = 0;     // queued blocks in front of the socket buffer at request time
  float wasted_sec = 0;   // negative: idle gap; positive: service/queue wait
  std::vector<uint32_t> news;

  void Finalize(int64_t block_bytes) {
    type = kType;
    wire_bytes = block_bytes + 32 + static_cast<int64_t>(news.size()) * 4;
  }
};

}  // namespace bp

}  // namespace bullet

#endif  // SRC_CORE_MESSAGES_H_
