// Fig. 14: the wide-area (PlanetLab) comparison — 41 heterogeneous sites, 50 MB
// file, 100 KB blocks, Bullet' vs Bullet vs BitTorrent vs SplitStream.
//
// The PlanetLab testbed is replaced by the synthetic wide-area topology described in
// DESIGN.md (heterogeneous 1-20 Mbps uplinks, 10-400 ms RTTs, light random loss).
//
// Expected shape (paper): Bullet' consistently fastest; its slowest node finishes
// several hundred seconds before BitTorrent's slowest.

#include "src/harness/scenario_registry.h"

namespace bullet {
namespace {

BULLET_SCENARIO(fig14_widearea, "Fig. 14 — wide-area (PlanetLab stand-in) comparison") {
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kWideArea;
  cfg.num_nodes = 41;
  cfg.file_mb = ScaledFileMb(50.0);
  cfg.block_bytes = 100 * 1024;  // the deployment's block size (Section 4.7)
  cfg.seed = 1401;
  ApplyScenarioOptions(opts, &cfg);

  ScenarioReport report(kScenarioName);
  for (const char* system : {"bullet-prime", "bullet", "bittorrent", "splitstream"}) {
    const ScenarioResult r = RunScenario(system, cfg);
    report.AddCompletion(r.name + " (wide-area)", r);
  }
  return report;
}

}  // namespace
}  // namespace bullet
