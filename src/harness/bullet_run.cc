// Entry point for the unified scenario runner. All scenarios live in bench/*.cc and
// self-register into ScenarioRegistry::Global() before main runs.

#include "src/harness/scenario_runner.h"

int main(int argc, char** argv) { return bullet::RunnerMain(argc, argv); }
