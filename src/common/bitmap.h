// Block availability bitmap.
//
// Bullet' peers exchange *incremental* diffs of their block maps (Section 3.3.4 of the
// paper), so the bitmap supports extracting "set here but not there" differences and
// accounting the wire size a diff would occupy.

#ifndef SRC_COMMON_BITMAP_H_
#define SRC_COMMON_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bullet {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t size);

  void Resize(size_t size);

  size_t size() const { return size_; }
  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == size_; }

  bool Test(size_t i) const;
  // Returns true if the bit was newly set (i.e. it was previously clear).
  bool Set(size_t i);
  void Clear(size_t i);
  void ClearAll();

  // Index of the first clear bit, or size() if all bits are set.
  size_t FirstClear() const;

  // All indices that are set here. O(size).
  std::vector<uint32_t> SetBits() const;

  // All indices set in `this` but not in `other`. The bitmaps may have different
  // sizes; indices beyond other's size count as "not in other".
  std::vector<uint32_t> DiffFrom(const Bitmap& other) const;

  // Number of indices set in both.
  size_t IntersectCount(const Bitmap& other) const;

  // Bytes a full bitmap transfer would occupy on the wire (1 bit per block, plus a
  // small fixed header). Used for control-overhead accounting.
  size_t WireBytes() const;

 private:
  size_t size_ = 0;
  size_t count_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace bullet

#endif  // SRC_COMMON_BITMAP_H_
