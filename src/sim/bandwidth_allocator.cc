#include "src/sim/bandwidth_allocator.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "src/common/profiler.h"
#include "src/sim/engine_parallel.h"

namespace bullet {

namespace {

struct HeapEntry {
  double share;
  int32_t link;
  uint32_t stamp;
  bool operator>(const HeapEntry& o) const { return share > o.share; }
};

// The stateless reference body shared by AllocateMaxMin and AllocateMaxMinPaths.
// Flows arrive CSR-style: flow i crosses flow_links[flow_off[i] .. flow_off[i+1])
// (negative entries are skipped). Every auxiliary structure is built fresh per
// call; IncrementalMaxMin::Allocate() mirrors this body line for line over
// persistent storage, and the invariants tests compare the two bitwise.
void ReferenceMaxMin(const std::vector<int32_t>& flow_links, const std::vector<uint32_t>& flow_off,
                     const std::vector<double>& cap, const std::vector<double>& link_capacity_bps,
                     std::vector<double>& rate) {
  const size_t num_links = link_capacity_bps.size();
  const size_t num_flows = cap.size();
  std::vector<double> remaining(link_capacity_bps);
  std::vector<int32_t> nflows(num_links, 0);
  std::vector<uint32_t> stamp(num_links, 0);
  rate.assign(num_flows, 0.0);

  std::vector<std::vector<uint32_t>> link_flows(num_links);
  for (size_t i = 0; i < num_flows; ++i) {
    for (uint32_t off = flow_off[i]; off < flow_off[i + 1]; ++off) {
      const int32_t l = flow_links[off];
      if (l >= 0) {
        ++nflows[static_cast<size_t>(l)];
        link_flows[static_cast<size_t>(l)].push_back(static_cast<uint32_t>(i));
      }
    }
  }

  // Flow indices ordered by ascending cap, so cap-limited flows freeze cheaply.
  // Equal-cap flows may land in any order: they freeze at equal rates, and
  // subtracting equal values commutes bitwise, so the permutation is harmless.
  std::vector<std::pair<double, uint32_t>> sort_buf(num_flows);
  for (size_t i = 0; i < num_flows; ++i) {
    sort_buf[i] = {cap[i], static_cast<uint32_t>(i)};
  }
  std::sort(sort_buf.begin(), sort_buf.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<size_t> by_cap(num_flows);
  for (size_t i = 0; i < num_flows; ++i) {
    by_cap[i] = sort_buf[i].second;
  }
  size_t cap_cursor = 0;

  std::vector<char> frozen(num_flows, 0);
  size_t frozen_count = 0;

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>> heap;
  auto push_link = [&](int32_t l) {
    const size_t li = static_cast<size_t>(l);
    if (nflows[li] > 0) {
      heap.push(HeapEntry{remaining[li] / nflows[li], l, stamp[li]});
    }
  };
  for (size_t l = 0; l < num_links; ++l) {
    push_link(static_cast<int32_t>(l));
  }

  // Freeze one flow at `r`, removing its demand from its links.
  auto freeze = [&](size_t fi, double r) {
    rate[fi] = std::max(r, 0.0);
    frozen[fi] = 1;
    ++frozen_count;
    for (uint32_t off = flow_off[fi]; off < flow_off[fi + 1]; ++off) {
      const int32_t l = flow_links[off];
      if (l < 0) {
        continue;
      }
      const size_t li = static_cast<size_t>(l);
      remaining[li] = std::max(0.0, remaining[li] - rate[fi]);
      --nflows[li];
      ++stamp[li];
      push_link(l);
    }
  };

  // Flows that traverse no links are bounded only by their cap.
  for (size_t i = 0; i < num_flows; ++i) {
    bool has_link = false;
    for (uint32_t off = flow_off[i]; off < flow_off[i + 1]; ++off) {
      has_link |= flow_links[off] >= 0;
    }
    if (!has_link && !frozen[i]) {
      frozen[i] = 1;
      ++frozen_count;
      rate[i] = cap[i];
    }
  }

  while (frozen_count < num_flows) {
    // Find the currently most constrained link (skip stale heap entries).
    double min_share = -1.0;
    int32_t min_link = -1;
    while (!heap.empty()) {
      const HeapEntry top = heap.top();
      const size_t li = static_cast<size_t>(top.link);
      if (top.stamp != stamp[li] || nflows[li] <= 0) {
        heap.pop();
        continue;
      }
      min_share = top.share;
      min_link = top.link;
      break;
    }
    if (min_link < 0) {
      // No constrained link remains; all unfrozen flows get their caps.
      for (size_t i = 0; i < num_flows; ++i) {
        if (!frozen[i]) {
          frozen[i] = 1;
          ++frozen_count;
          rate[i] = cap[i];
        }
      }
      break;
    }

    // First freeze any flow whose cap is at or below the water level: it cannot use
    // a full fair share anywhere (min_share is the global minimum share).
    bool froze_capped = false;
    while (cap_cursor < by_cap.size()) {
      const size_t fi = by_cap[cap_cursor];
      if (frozen[fi]) {
        ++cap_cursor;
        continue;
      }
      if (cap[fi] <= min_share) {
        freeze(fi, cap[fi]);
        ++cap_cursor;
        froze_capped = true;
      } else {
        break;
      }
    }
    if (froze_capped) {
      continue;  // Water level may have risen; recompute.
    }

    // Saturate the bottleneck link: freeze all its unfrozen flows at the fair share.
    const size_t li = static_cast<size_t>(min_link);
    for (uint32_t fi : link_flows[li]) {
      if (!frozen[fi]) {
        freeze(fi, min_share);
      }
    }
    ++stamp[li];  // Invalidate stale entries for the saturated link.
  }
}

}  // namespace

void AllocateMaxMin(std::vector<FlowSpec>& flows, const std::vector<double>& link_capacity_bps) {
  // Fixed-3 flows become CSR rows of exactly three entries (-1 slots included and
  // skipped inside, matching the historical behaviour bit for bit).
  std::vector<int32_t> flow_links;
  flow_links.reserve(3 * flows.size());
  std::vector<uint32_t> flow_off(flows.size() + 1, 0);
  std::vector<double> cap(flows.size());
  for (size_t i = 0; i < flows.size(); ++i) {
    for (int32_t l : flows[i].links) {
      flow_links.push_back(l);
    }
    flow_off[i + 1] = static_cast<uint32_t>(flow_links.size());
    cap[i] = flows[i].cap_bps;
  }
  std::vector<double> rate;
  {
    BULLET_PROFILE_SCOPE(ProfilePhase::kWaterFill);
    ReferenceMaxMin(flow_links, flow_off, cap, link_capacity_bps, rate);
  }
  for (size_t i = 0; i < flows.size(); ++i) {
    flows[i].rate_bps = rate[i];
  }
}

void AllocateMaxMinPaths(std::vector<PathFlowSpec>& flows,
                         const std::vector<double>& link_capacity_bps) {
  std::vector<int32_t> flow_links;
  std::vector<uint32_t> flow_off(flows.size() + 1, 0);
  std::vector<double> cap(flows.size());
  for (size_t i = 0; i < flows.size(); ++i) {
    flow_links.insert(flow_links.end(), flows[i].links.begin(), flows[i].links.end());
    flow_off[i + 1] = static_cast<uint32_t>(flow_links.size());
    cap[i] = flows[i].cap_bps;
  }
  std::vector<double> rate;
  {
    BULLET_PROFILE_SCOPE(ProfilePhase::kWaterFill);
    ReferenceMaxMin(flow_links, flow_off, cap, link_capacity_bps, rate);
  }
  for (size_t i = 0; i < flows.size(); ++i) {
    flows[i].rate_bps = rate[i];
  }
}

void IncrementalMaxMin::BeginEpoch(size_t keep_links) {
  capacity_.resize(keep_links);
  flow_links_.clear();
  flow_off_.assign(1, 0);
  cap_.clear();
  rate_.clear();
}

int32_t IncrementalMaxMin::AddLink(double capacity_bps) {
  const int32_t id = static_cast<int32_t>(capacity_.size());
  capacity_.push_back(capacity_bps);
  return id;
}

void IncrementalMaxMin::AddFlow(int32_t l0, int32_t l1, int32_t l2, double cap_bps) {
  flow_links_.push_back(l0);
  flow_links_.push_back(l1);
  flow_links_.push_back(l2);
  flow_off_.push_back(static_cast<uint32_t>(flow_links_.size()));
  cap_.push_back(cap_bps);
}

void IncrementalMaxMin::AddFlowPath(const int32_t* ids, size_t num_ids, double cap_bps) {
  flow_links_.insert(flow_links_.end(), ids, ids + num_ids);
  flow_off_.push_back(static_cast<uint32_t>(flow_links_.size()));
  cap_.push_back(cap_bps);
}

void IncrementalMaxMin::BuildEpochScratch() {
  const size_t num_links = capacity_.size();
  const size_t num_flows = cap_.size();

  remaining_.assign(capacity_.begin(), capacity_.end());
  nflows_.assign(num_links, 0);
  stamp_.assign(num_links, 0);
  rate_.assign(num_flows, 0.0);

  // CSR build: count per-link flows, prefix-sum, then fill in flow order so each
  // link's flow sequence matches the reference's push_back order.
  for (const int32_t l : flow_links_) {
    if (l >= 0) {
      ++nflows_[static_cast<size_t>(l)];
    }
  }
  link_off_.assign(num_links + 1, 0);
  for (size_t l = 0; l < num_links; ++l) {
    link_off_[l + 1] = link_off_[l] + static_cast<uint32_t>(nflows_[l]);
  }
  link_flow_.resize(link_off_[num_links]);
  fill_cursor_.assign(link_off_.begin(), link_off_.end() - 1);
  for (size_t i = 0; i < num_flows; ++i) {
    for (uint32_t off = flow_off_[i]; off < flow_off_[i + 1]; ++off) {
      const int32_t l = flow_links_[off];
      if (l >= 0) {
        link_flow_[fill_cursor_[static_cast<size_t>(l)]++] = static_cast<uint32_t>(i);
      }
    }
  }

  // Ascending-cap order. Sorting (cap, index) pairs beats sorting indices with a
  // gathered comparator (no indirection per comparison). The relative order of
  // equal caps is whatever the sort produces: equal-cap flows freeze at equal
  // rates, and subtracting equal values commutes bitwise, so any permutation of
  // an equal-cap run yields bit-identical results.
  sort_buf_.resize(num_flows);
  for (size_t i = 0; i < num_flows; ++i) {
    sort_buf_[i] = {cap_[i], static_cast<uint32_t>(i)};
  }
  std::sort(sort_buf_.begin(), sort_buf_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  by_cap_.resize(num_flows);
  for (size_t i = 0; i < num_flows; ++i) {
    by_cap_[i] = sort_buf_[i].second;
  }

  frozen_.assign(num_flows, 0);
}

// The reference algorithm (ReferenceMaxMin above) with every auxiliary structure
// replaced by a persistent, allocation-free equivalent:
//   link_flows (vector of vectors)  ->  CSR arrays rebuilt with two linear passes
//   priority_queue                  ->  the same priority_queue over a reused vector
//   remaining/nflows/stamp/frozen   ->  assign() into retained capacity
// Every comparison and arithmetic update mirrors the reference line for line, in
// the same order, so the produced rates are bit-identical (see header contract).
void IncrementalMaxMin::Allocate() {
  BULLET_PROFILE_SCOPE(ProfilePhase::kWaterFill);
  const size_t num_links = capacity_.size();
  const size_t num_flows = cap_.size();

  BuildEpochScratch();
  size_t cap_cursor = 0;
  size_t frozen_count = 0;

  heap_.clear();
  auto push_link = [&](int32_t l) {
    const size_t li = static_cast<size_t>(l);
    if (nflows_[li] > 0) {
      heap_.push(HeapEntry{remaining_[li] / nflows_[li], l, stamp_[li]});
    }
  };
  for (size_t l = 0; l < num_links; ++l) {
    push_link(static_cast<int32_t>(l));
  }

  auto freeze = [&](size_t fi, double rate) {
    rate_[fi] = std::max(rate, 0.0);
    frozen_[fi] = 1;
    ++frozen_count;
    for (uint32_t off = flow_off_[fi]; off < flow_off_[fi + 1]; ++off) {
      const int32_t l = flow_links_[off];
      if (l < 0) {
        continue;
      }
      const size_t li = static_cast<size_t>(l);
      remaining_[li] = std::max(0.0, remaining_[li] - rate_[fi]);
      --nflows_[li];
      ++stamp_[li];
      push_link(l);
    }
  };

  for (size_t i = 0; i < num_flows; ++i) {
    bool has_link = false;
    for (uint32_t off = flow_off_[i]; off < flow_off_[i + 1]; ++off) {
      has_link |= flow_links_[off] >= 0;
    }
    if (!has_link && !frozen_[i]) {
      frozen_[i] = 1;
      ++frozen_count;
      rate_[i] = cap_[i];
    }
  }

  while (frozen_count < num_flows) {
    double min_share = -1.0;
    int32_t min_link = -1;
    while (!heap_.empty()) {
      const HeapEntry top = heap_.top();
      const size_t li = static_cast<size_t>(top.link);
      if (top.stamp != stamp_[li] || nflows_[li] <= 0) {
        heap_.pop();
        continue;
      }
      min_share = top.share;
      min_link = top.link;
      break;
    }
    if (min_link < 0) {
      for (size_t i = 0; i < num_flows; ++i) {
        if (!frozen_[i]) {
          frozen_[i] = 1;
          ++frozen_count;
          rate_[i] = cap_[i];
        }
      }
      break;
    }

    bool froze_capped = false;
    while (cap_cursor < by_cap_.size()) {
      const size_t fi = by_cap_[cap_cursor];
      if (frozen_[fi]) {
        ++cap_cursor;
        continue;
      }
      if (cap_[fi] <= min_share) {
        freeze(fi, cap_[fi]);
        ++cap_cursor;
        froze_capped = true;
      } else {
        break;
      }
    }
    if (froze_capped) {
      continue;
    }

    const size_t li = static_cast<size_t>(min_link);
    for (uint32_t off = link_off_[li]; off < link_off_[li + 1]; ++off) {
      const uint32_t fi = link_flow_[off];
      if (!frozen_[fi]) {
        freeze(fi, min_share);
      }
    }
    ++stamp_[li];
  }
}

// Allocate() with the two parallel-engine optimizations described in the
// header: per-round batched heap pushes (a saturated-link round bumps each
// touched link's stamp per freeze as usual but defers the heap push until the
// round ends, collapsing the heap traffic from one push per freeze-link pair
// to one per touched link) and sharded wide rounds (a bottleneck row of
// kShardMinRow+ flows is split into contiguous per-worker ranges; each worker
// writes its flows' rates — disjoint, since a flow appears once per row — and
// accumulates per-link demand deltas that the coordinator applies in
// worker-index order). Selection logic, cap-freezing, and the freeze
// arithmetic itself are unchanged from Allocate().
void IncrementalMaxMin::AllocateParallel(WorkerPool* pool) {
  BULLET_PROFILE_SCOPE(ProfilePhase::kWaterFill);
  const size_t num_links = capacity_.size();
  const size_t num_flows = cap_.size();

  // Below this row width a sharded round's barrier cost outweighs the work.
  constexpr uint32_t kShardMinRow = 512;

  BuildEpochScratch();
  size_t cap_cursor = 0;
  size_t frozen_count = 0;

  if (round_stamp_.size() < num_links) {
    round_stamp_.resize(num_links, 0);
  }
  round_touched_.clear();

  heap_.clear();
  auto push_link = [&](int32_t l) {
    const size_t li = static_cast<size_t>(l);
    if (nflows_[li] > 0) {
      heap_.push(HeapEntry{remaining_[li] / nflows_[li], l, stamp_[li]});
    }
  };
  for (size_t l = 0; l < num_links; ++l) {
    push_link(static_cast<int32_t>(l));
  }

  // Records a link as modified this round; end_round() re-pushes each touched
  // link exactly once, with its final (share, stamp) for the round.
  auto touch = [&](size_t li) {
    if (round_stamp_[li] != round_id_) {
      round_stamp_[li] = round_id_;
      round_touched_.push_back(static_cast<int32_t>(li));
    }
  };
  auto end_round = [&] {
    for (const int32_t l : round_touched_) {
      push_link(l);
    }
    round_touched_.clear();
    ++round_id_;
  };

  // As Allocate()'s freeze, but deferring the heap push to end_round().
  auto freeze = [&](size_t fi, double rate) {
    rate_[fi] = std::max(rate, 0.0);
    frozen_[fi] = 1;
    ++frozen_count;
    for (uint32_t off = flow_off_[fi]; off < flow_off_[fi + 1]; ++off) {
      const int32_t l = flow_links_[off];
      if (l < 0) {
        continue;
      }
      const size_t li = static_cast<size_t>(l);
      remaining_[li] = std::max(0.0, remaining_[li] - rate_[fi]);
      --nflows_[li];
      ++stamp_[li];
      touch(li);
    }
  };

  for (size_t i = 0; i < num_flows; ++i) {
    bool has_link = false;
    for (uint32_t off = flow_off_[i]; off < flow_off_[i + 1]; ++off) {
      has_link |= flow_links_[off] >= 0;
    }
    if (!has_link && !frozen_[i]) {
      frozen_[i] = 1;
      ++frozen_count;
      rate_[i] = cap_[i];
    }
  }

  while (frozen_count < num_flows) {
    double min_share = -1.0;
    int32_t min_link = -1;
    while (!heap_.empty()) {
      const HeapEntry top = heap_.top();
      const size_t li = static_cast<size_t>(top.link);
      if (top.stamp != stamp_[li] || nflows_[li] <= 0) {
        heap_.pop();
        continue;
      }
      min_share = top.share;
      min_link = top.link;
      break;
    }
    if (min_link < 0) {
      for (size_t i = 0; i < num_flows; ++i) {
        if (!frozen_[i]) {
          frozen_[i] = 1;
          ++frozen_count;
          rate_[i] = cap_[i];
        }
      }
      break;
    }

    bool froze_capped = false;
    while (cap_cursor < by_cap_.size()) {
      const size_t fi = by_cap_[cap_cursor];
      if (frozen_[fi]) {
        ++cap_cursor;
        continue;
      }
      if (cap_[fi] <= min_share) {
        freeze(fi, cap_[fi]);
        ++cap_cursor;
        froze_capped = true;
      } else {
        break;
      }
    }
    if (froze_capped) {
      end_round();
      continue;
    }

    const size_t li = static_cast<size_t>(min_link);
    const uint32_t row_lo = link_off_[li];
    const uint32_t row_hi = link_off_[li + 1];
    if (pool != nullptr && pool->num_threads() > 1 && row_hi - row_lo >= kShardMinRow) {
      const int nw = pool->num_threads();
      if (shards_.size() < static_cast<size_t>(nw)) {
        shards_.resize(static_cast<size_t>(nw));
      }
      const uint64_t round = round_id_;
      const uint64_t width = row_hi - row_lo;
      pool->RunOnAll([&](int w) {
        ShardScratch& s = shards_[static_cast<size_t>(w)];
        if (s.stamp.size() < num_links) {
          s.stamp.resize(num_links, 0);
          s.delta.resize(num_links, 0.0);
          s.dcount.resize(num_links, 0);
        }
        s.touched.clear();
        s.frozen = 0;
        const uint32_t lo = row_lo + static_cast<uint32_t>(width * static_cast<uint64_t>(w) / nw);
        const uint32_t hi =
            row_lo + static_cast<uint32_t>(width * (static_cast<uint64_t>(w) + 1) / nw);
        for (uint32_t off = lo; off < hi; ++off) {
          const uint32_t fi = link_flow_[off];
          // Flows frozen this round live in other workers' ranges and are
          // never read here, so this flag is stable for the whole round.
          if (frozen_[fi]) {
            continue;
          }
          rate_[fi] = std::max(min_share, 0.0);
          frozen_[fi] = 1;
          ++s.frozen;
          for (uint32_t foff = flow_off_[fi]; foff < flow_off_[fi + 1]; ++foff) {
            const int32_t l = flow_links_[foff];
            if (l < 0) {
              continue;
            }
            const size_t lj = static_cast<size_t>(l);
            if (s.stamp[lj] != round) {
              s.stamp[lj] = round;
              s.delta[lj] = 0.0;
              s.dcount[lj] = 0;
              s.touched.push_back(l);
            }
            s.delta[lj] += rate_[fi];
            ++s.dcount[lj];
          }
        }
      });
      for (int w = 0; w < nw; ++w) {
        ShardScratch& s = shards_[static_cast<size_t>(w)];
        frozen_count += s.frozen;
        for (const int32_t l : s.touched) {
          const size_t lj = static_cast<size_t>(l);
          remaining_[lj] = std::max(0.0, remaining_[lj] - s.delta[lj]);
          nflows_[lj] -= s.dcount[lj];
          ++stamp_[lj];
          touch(lj);
        }
      }
    } else {
      for (uint32_t off = row_lo; off < row_hi; ++off) {
        const uint32_t fi = link_flow_[off];
        if (!frozen_[fi]) {
          freeze(fi, min_share);
        }
      }
    }
    ++stamp_[li];
    end_round();
  }
}

}  // namespace bullet
