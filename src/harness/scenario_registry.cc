#include "src/harness/scenario_registry.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <utility>

#include "src/harness/flag_parse.h"
#include "src/harness/json_writer.h"
#include "src/harness/workload.h"
#include "src/overlay/protocol_registry.h"

namespace bullet {
namespace {

bool IsIntegral(double v) { return v == std::floor(v); }

bool IsChurnModelName(const std::string& text) {
  return text == "none" || text == "leaf" || text == "stub" || text == "gateway";
}

}  // namespace

const std::vector<ScenarioOptionDef>& ScenarioOptionTable() {
  // Row order is the requested_options emission order; committed BENCH
  // baselines pin it, so new options go at the end (after the never-echoed
  // --loss row, which keeps its historical position out of the echo entirely).
  static const std::vector<ScenarioOptionDef>* table = new std::vector<ScenarioOptionDef>{
      {"--nodes", "nodes", "nodes", ScenarioOptionDef::Kind::kNumber, /*sweepable=*/true,
       "--nodes requires an integer in [2, 1000000]",
       "nodes values must be integers in [2, 1000000]",
       [](const std::string& text, ScenarioOptions* opts, std::string*) {
         int64_t v = 0;
         if (!ParseStrictInt64(text, &v) || v < 2 || v > 1000000) {
           return false;
         }
         opts->nodes = static_cast<int>(v);
         return true;
       },
       [](double v) { return IsIntegral(v) && v >= 2 && v <= 1000000; },
       [](double v, ScenarioOptions* opts) { opts->nodes = static_cast<int>(v); },
       [](const ScenarioOptions& opts, ScenarioConfig* cfg) {
         if (opts.nodes) {
           cfg->num_nodes = *opts.nodes;
         }
       },
       [](const ScenarioOptions& opts, JsonWriter* json) {
         if (opts.nodes) {
           json->Field("nodes", *opts.nodes);
         }
       }},
      {"--file-mb", "file-mb", "file_mb", ScenarioOptionDef::Kind::kNumber, /*sweepable=*/true,
       "--file-mb requires a positive number", "file-mb values must be positive",
       [](const std::string& text, ScenarioOptions* opts, std::string*) {
         double v = 0.0;
         if (!ParseStrictDouble(text, &v) || v <= 0.0) {
           return false;
         }
         opts->file_mb = v;
         return true;
       },
       [](double v) { return v > 0.0; },
       [](double v, ScenarioOptions* opts) { opts->file_mb = v; },
       [](const ScenarioOptions& opts, ScenarioConfig* cfg) {
         if (opts.file_mb) {
           cfg->file_mb = *opts.file_mb;
         }
       },
       [](const ScenarioOptions& opts, JsonWriter* json) {
         if (opts.file_mb) {
           json->Field("file_mb", *opts.file_mb);
         }
       }},
      {"--seed", "seed", "seed", ScenarioOptionDef::Kind::kNumber, /*sweepable=*/false,
       "--seed requires a non-negative integer", nullptr,
       [](const std::string& text, ScenarioOptions* opts, std::string*) {
         uint64_t v = 0;
         if (!ParseStrictUint64(text, &v)) {
           return false;
         }
         opts->seed = v;
         return true;
       },
       nullptr, nullptr,
       [](const ScenarioOptions& opts, ScenarioConfig* cfg) {
         if (opts.seed) {
           cfg->seed = *opts.seed;
         }
       },
       [](const ScenarioOptions& opts, JsonWriter* json) {
         if (opts.seed) {
           json->Field("seed", *opts.seed);
         }
       }},
      {"--block-bytes", "block-bytes", "block_bytes", ScenarioOptionDef::Kind::kNumber,
       /*sweepable=*/true, "--block-bytes requires an integer >= 512",
       "block-bytes values must be integers >= 512",
       [](const std::string& text, ScenarioOptions* opts, std::string*) {
         int64_t v = 0;
         if (!ParseStrictInt64(text, &v) || v < 512) {
           return false;
         }
         opts->block_bytes = v;
         return true;
       },
       [](double v) { return IsIntegral(v) && v >= 512; },
       [](double v, ScenarioOptions* opts) { opts->block_bytes = static_cast<int64_t>(v); },
       [](const ScenarioOptions& opts, ScenarioConfig* cfg) {
         if (opts.block_bytes) {
           cfg->block_bytes = *opts.block_bytes;
         }
       },
       [](const ScenarioOptions& opts, JsonWriter* json) {
         if (opts.block_bytes) {
           json->Field("block_bytes", *opts.block_bytes);
         }
       }},
      {"--deadline-sec", "deadline-sec", "deadline_sec", ScenarioOptionDef::Kind::kNumber,
       /*sweepable=*/true, "--deadline-sec requires a positive number",
       "deadline-sec values must be positive",
       [](const std::string& text, ScenarioOptions* opts, std::string*) {
         double v = 0.0;
         if (!ParseStrictDouble(text, &v) || v <= 0.0) {
           return false;
         }
         opts->deadline_sec = v;
         return true;
       },
       [](double v) { return v > 0.0; },
       [](double v, ScenarioOptions* opts) { opts->deadline_sec = v; },
       [](const ScenarioOptions& opts, ScenarioConfig* cfg) {
         if (opts.deadline_sec) {
           cfg->deadline = SecToSim(*opts.deadline_sec);
         }
       },
       [](const ScenarioOptions& opts, JsonWriter* json) {
         if (opts.deadline_sec) {
           json->Field("deadline_sec", *opts.deadline_sec);
         }
       }},
      {"--topology", "topology", "topology", ScenarioOptionDef::Kind::kString,
       /*sweepable=*/false, "--topology requires 'mesh' or 'transit-stub'", nullptr,
       [](const std::string& text, ScenarioOptions* opts, std::string*) {
         ScenarioConfig::Topo topo;
         if (!ParseTopologyName(text, &topo)) {
           return false;
         }
         opts->topology = text;
         return true;
       },
       nullptr, nullptr,
       [](const ScenarioOptions& opts, ScenarioConfig* cfg) {
         if (opts.topology) {
           // Unknown names were already rejected by the CLI parser; a stale
           // string reaching this point keeps the scenario's registered
           // topology.
           ParseTopologyName(*opts.topology, &cfg->topo);
         }
       },
       [](const ScenarioOptions& opts, JsonWriter* json) {
         if (opts.topology) {
           json->Field("topology", *opts.topology);
         }
       }},
      {"--system", "system", "system", ScenarioOptionDef::Kind::kString, /*sweepable=*/false,
       "--system requires a registered protocol", nullptr,
       [](const std::string& text, ScenarioOptions* opts, std::string* error) {
         EnsureBuiltinProtocolsRegistered();
         if (ProtocolRegistry::Global().Find(text) == nullptr) {
           std::string known;
           for (const ProtocolRegistry::Entry* entry : ProtocolRegistry::Global().List()) {
             known += known.empty() ? entry->key : ", " + entry->key;
           }
           *error = "--system requires a registered protocol (" + known + ")";
           return false;
         }
         opts->system = text;
         return true;
       },
       nullptr, nullptr,
       [](const ScenarioOptions& opts, ScenarioConfig* cfg) {
         if (opts.system) {
           // CLI-validated (against ProtocolRegistry::Global()).
           cfg->system = *opts.system;
         }
       },
       [](const ScenarioOptions& opts, JsonWriter* json) {
         if (opts.system) {
           json->Field("system", *opts.system);
         }
       }},
      {"--join-fraction", "join-fraction", "join_fraction", ScenarioOptionDef::Kind::kNumber,
       /*sweepable=*/true, "--join-fraction requires a number in [0, 1]",
       "join-fraction values must be in [0, 1]",
       [](const std::string& text, ScenarioOptions* opts, std::string*) {
         double v = 0.0;
         if (!ParseStrictDouble(text, &v) || v < 0.0 || v > 1.0) {
           return false;
         }
         opts->join_fraction = v;
         return true;
       },
       [](double v) { return v >= 0.0 && v <= 1.0; },
       [](double v, ScenarioOptions* opts) { opts->join_fraction = v; },
       [](const ScenarioOptions& opts, ScenarioConfig* cfg) {
         if (opts.join_fraction) {
           cfg->join_fraction = *opts.join_fraction;
         }
       },
       [](const ScenarioOptions& opts, JsonWriter* json) {
         if (opts.join_fraction) {
           json->Field("join_fraction", *opts.join_fraction);
         }
       }},
      {"--loss", "loss", nullptr, ScenarioOptionDef::Kind::kNumber, /*sweepable=*/true,
       "--loss requires a number in [0, 1]", "loss values must be in [0, 1]",
       [](const std::string& text, ScenarioOptions* opts, std::string*) {
         double v = 0.0;
         if (!ParseStrictDouble(text, &v) || v < 0.0 || v > 1.0) {
           return false;
         }
         opts->loss = v;
         return true;
       },
       [](double v) { return v >= 0.0 && v <= 1.0; },
       [](double v, ScenarioOptions* opts) { opts->loss = v; },
       [](const ScenarioOptions& opts, ScenarioConfig* cfg) {
         if (opts.loss) {
           cfg->loss_min = 0.0;
           cfg->loss_max = *opts.loss;
         }
       },
       nullptr},
      {"--lifetime-pareto-alpha", "lifetime-pareto-alpha", "lifetime_pareto_alpha",
       ScenarioOptionDef::Kind::kNumber, /*sweepable=*/true,
       "--lifetime-pareto-alpha requires a positive number",
       "lifetime-pareto-alpha values must be positive",
       [](const std::string& text, ScenarioOptions* opts, std::string*) {
         double v = 0.0;
         if (!ParseStrictDouble(text, &v) || v <= 0.0) {
           return false;
         }
         opts->lifetime_pareto_alpha = v;
         return true;
       },
       [](double v) { return v > 0.0; },
       [](double v, ScenarioOptions* opts) { opts->lifetime_pareto_alpha = v; },
       [](const ScenarioOptions& opts, ScenarioConfig* cfg) {
         if (opts.lifetime_pareto_alpha) {
           cfg->lifetime_pareto_alpha = *opts.lifetime_pareto_alpha;
         }
       },
       [](const ScenarioOptions& opts, JsonWriter* json) {
         if (opts.lifetime_pareto_alpha) {
           json->Field("lifetime_pareto_alpha", *opts.lifetime_pareto_alpha);
         }
       }},
      {"--churn-model", "churn-model", "churn_model", ScenarioOptionDef::Kind::kString,
       /*sweepable=*/true, "--churn-model requires one of none, leaf, stub, gateway",
       "churn-model values must be one of none, leaf, stub, gateway",
       [](const std::string& text, ScenarioOptions* opts, std::string*) {
         if (!IsChurnModelName(text)) {
           return false;
         }
         opts->churn_model = text;
         return true;
       },
       nullptr, nullptr,
       [](const ScenarioOptions& opts, ScenarioConfig* cfg) {
         if (opts.churn_model) {
           cfg->churn_model = *opts.churn_model;
         }
       },
       [](const ScenarioOptions& opts, JsonWriter* json) {
         if (opts.churn_model) {
           json->Field("churn_model", *opts.churn_model);
         }
       }},
      {"--stream-bitrate-mbps", "stream-bitrate-mbps", "stream_bitrate_mbps",
       ScenarioOptionDef::Kind::kNumber, /*sweepable=*/true,
       "--stream-bitrate-mbps requires a positive number",
       "stream-bitrate-mbps values must be positive",
       [](const std::string& text, ScenarioOptions* opts, std::string*) {
         double v = 0.0;
         if (!ParseStrictDouble(text, &v) || v <= 0.0) {
           return false;
         }
         opts->stream_bitrate_mbps = v;
         return true;
       },
       [](double v) { return v > 0.0; },
       [](double v, ScenarioOptions* opts) { opts->stream_bitrate_mbps = v; },
       [](const ScenarioOptions& opts, ScenarioConfig* cfg) {
         if (opts.stream_bitrate_mbps) {
           cfg->stream_bitrate_mbps = *opts.stream_bitrate_mbps;
         }
       },
       [](const ScenarioOptions& opts, JsonWriter* json) {
         if (opts.stream_bitrate_mbps) {
           json->Field("stream_bitrate_mbps", *opts.stream_bitrate_mbps);
         }
       }},
      {"--stream-window-blocks", "stream-window-blocks", "stream_window_blocks",
       ScenarioOptionDef::Kind::kNumber, /*sweepable=*/true,
       "--stream-window-blocks requires a positive integer",
       "stream-window-blocks values must be positive integers",
       [](const std::string& text, ScenarioOptions* opts, std::string*) {
         int64_t v = 0;
         if (!ParseStrictInt64(text, &v) || v < 1 || v > 1000000) {
           return false;
         }
         opts->stream_window_blocks = static_cast<int>(v);
         return true;
       },
       [](double v) { return IsIntegral(v) && v >= 1 && v <= 1000000; },
       [](double v, ScenarioOptions* opts) { opts->stream_window_blocks = static_cast<int>(v); },
       [](const ScenarioOptions& opts, ScenarioConfig* cfg) {
         if (opts.stream_window_blocks) {
           cfg->stream_window_blocks = *opts.stream_window_blocks;
         }
       },
       [](const ScenarioOptions& opts, JsonWriter* json) {
         if (opts.stream_window_blocks) {
           json->Field("stream_window_blocks", *opts.stream_window_blocks);
         }
       }},
      {"--threads", "threads", "threads", ScenarioOptionDef::Kind::kNumber,
       /*sweepable=*/true, "--threads requires an integer in [1, 64]",
       "threads values must be integers in [1, 64]",
       [](const std::string& text, ScenarioOptions* opts, std::string*) {
         int64_t v = 0;
         if (!ParseStrictInt64(text, &v) || v < 1 || v > 64) {
           return false;
         }
         opts->threads = static_cast<int>(v);
         return true;
       },
       [](double v) { return IsIntegral(v) && v >= 1 && v <= 64; },
       [](double v, ScenarioOptions* opts) { opts->threads = static_cast<int>(v); },
       [](const ScenarioOptions& opts, ScenarioConfig* cfg) {
         if (opts.threads) {
           cfg->num_threads = *opts.threads;
         }
       },
       [](const ScenarioOptions& opts, JsonWriter* json) {
         if (opts.threads) {
           json->Field("threads", *opts.threads);
         }
       }},
      {"--compress-routes", "compress-routes", "compress_routes",
       ScenarioOptionDef::Kind::kNumber, /*sweepable=*/true,
       "--compress-routes requires 0 or 1", "compress-routes values must be 0 or 1",
       [](const std::string& text, ScenarioOptions* opts, std::string*) {
         int64_t v = 0;
         if (!ParseStrictInt64(text, &v) || (v != 0 && v != 1)) {
           return false;
         }
         opts->compress_routes = static_cast<int>(v);
         return true;
       },
       [](double v) { return v == 0.0 || v == 1.0; },
       [](double v, ScenarioOptions* opts) { opts->compress_routes = static_cast<int>(v); },
       [](const ScenarioOptions& opts, ScenarioConfig* cfg) {
         if (opts.compress_routes) {
           cfg->compress_routes = *opts.compress_routes != 0;
         }
       },
       [](const ScenarioOptions& opts, JsonWriter* json) {
         if (opts.compress_routes) {
           json->Field("compress_routes", *opts.compress_routes);
         }
       }},
      {"--aggregate-flows", "aggregate-flows", "aggregate_flows",
       ScenarioOptionDef::Kind::kNumber, /*sweepable=*/true,
       "--aggregate-flows requires 0 or 1", "aggregate-flows values must be 0 or 1",
       [](const std::string& text, ScenarioOptions* opts, std::string*) {
         int64_t v = 0;
         if (!ParseStrictInt64(text, &v) || (v != 0 && v != 1)) {
           return false;
         }
         opts->aggregate_flows = static_cast<int>(v);
         return true;
       },
       [](double v) { return v == 0.0 || v == 1.0; },
       [](double v, ScenarioOptions* opts) { opts->aggregate_flows = static_cast<int>(v); },
       [](const ScenarioOptions& opts, ScenarioConfig* cfg) {
         if (opts.aggregate_flows) {
           cfg->aggregate_flows = *opts.aggregate_flows != 0;
         }
       },
       [](const ScenarioOptions& opts, JsonWriter* json) {
         if (opts.aggregate_flows) {
           json->Field("aggregate_flows", *opts.aggregate_flows);
         }
       }},
  };
  return *table;
}

const ScenarioOptionDef* FindScenarioOptionByKey(const std::string& key) {
  for (const ScenarioOptionDef& def : ScenarioOptionTable()) {
    if (key == def.key) {
      return &def;
    }
  }
  return nullptr;
}

std::string SweepableOptionKeys() {
  std::string keys;
  for (const ScenarioOptionDef& def : ScenarioOptionTable()) {
    if (def.sweepable) {
      keys += keys.empty() ? def.key : std::string(", ") + def.key;
    }
  }
  return keys;
}

void ApplyScenarioOptions(const ScenarioOptions& opts, ScenarioConfig* cfg) {
  for (const ScenarioOptionDef& def : ScenarioOptionTable()) {
    def.apply_config(opts, cfg);
  }
}

void ScenarioReport::AddCompletion(const ScenarioResult& result) {
  AddCompletion(result.name, result);
}

void ScenarioReport::AddCompletion(const std::string& name, const ScenarioResult& result) {
  SeriesReport& s = AddSeries(name, result.completion_sec);
  s.metrics.emplace_back("dup_pct", result.duplicate_fraction * 100.0);
  s.metrics.emplace_back("ctrl_pct", result.control_overhead * 100.0);
  s.metrics.emplace_back("completed", static_cast<double>(result.completed));
  s.metrics.emplace_back("receivers", static_cast<double>(result.receivers));
  // Deterministic run counters (whole-network totals for the run that produced
  // this series; multi-session scenarios repeat them on each session's series).
  // bench_check normalizes these by wall time for the throughput-floor gate.
  s.metrics.emplace_back("net_events_executed", static_cast<double>(result.events_executed));
  s.metrics.emplace_back("net_allocator_epochs", static_cast<double>(result.allocator_epochs));
  s.metrics.emplace_back("net_sim_bytes_sent", static_cast<double>(result.sim_bytes_sent));
}

SeriesReport& ScenarioReport::AddSeries(const std::string& name, std::vector<double> samples) {
  series_.push_back(SeriesReport{name, std::move(samples), {}});
  return series_.back();
}

void ScenarioReport::AddScalar(const std::string& key, double value) {
  scalars_.emplace_back(key, value);
}

std::vector<CdfSeries> ScenarioReport::AsCdfSeries() const {
  std::vector<CdfSeries> out;
  out.reserve(series_.size());
  for (const SeriesReport& s : series_) {
    out.push_back(CdfSeries{s.name, s.samples});
  }
  return out;
}

ScenarioRegistry& ScenarioRegistry::Global() {
  static ScenarioRegistry* registry = new ScenarioRegistry();
  return *registry;
}

bool ScenarioRegistry::Register(const std::string& name, const std::string& description,
                                RunFn fn) {
  return entries_.emplace(name, Entry{name, description, std::move(fn)}).second;
}

const ScenarioRegistry::Entry* ScenarioRegistry::Find(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<const ScenarioRegistry::Entry*> ScenarioRegistry::List() const {
  std::vector<const Entry*> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(&entry);
  }
  return out;
}

namespace {

std::set<std::string>& TransitStubDefaultNames() {
  static std::set<std::string>* names = new std::set<std::string>();
  return *names;
}

}  // namespace

bool ScenarioDefaultsToTransitStub(const std::string& name) {
  return TransitStubDefaultNames().count(name) > 0;
}

namespace harness_internal {

ScenarioRegistrar::ScenarioRegistrar(const char* name, const char* description,
                                     ScenarioRegistry::RunFn fn) {
  if (!ScenarioRegistry::Global().Register(name, description, std::move(fn))) {
    std::fprintf(stderr, "duplicate scenario registration: %s\n", name);
    std::abort();
  }
}

TransitStubDefaultRegistrar::TransitStubDefaultRegistrar(const char* name) {
  TransitStubDefaultNames().insert(name);
}

}  // namespace harness_internal

}  // namespace bullet
