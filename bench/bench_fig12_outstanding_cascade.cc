// Fig. 12: cascading bandwidth changes. 8 participants: the source and 6 receivers
// reconcile over 10 Mbps / 1 ms links; the 8th node downloads from the 6 peers over
// dedicated 5 Mbps / 100 ms links; every 25 s another of those links collapses to
// 100 Kbps, cumulatively, until all are slow. 8 KB blocks, peer management disabled.
//
// Expected shape (paper): too many outstanding blocks (15/50) strand requests on
// collapsed links and delay the 8th node; the dynamic controller beats every fixed
// choice by 7-22% on the slowest node (3 and 6 outstanding are far slower still).

#include "bench/bench_util.h"

#include "src/core/bullet_prime.h"
#include "src/harness/experiment.h"
#include "src/sim/dynamics.h"

namespace bullet {
namespace {

constexpr int kNodes = 8;
constexpr NodeId kSlowNode = 7;

Topology Fig12Topology() {
  Topology topo(kNodes);
  for (NodeId n = 0; n < kNodes; ++n) {
    topo.uplink(n) = LinkParams{100e6, MsToSim(0), 0.0};
    topo.downlink(n) = LinkParams{100e6, MsToSim(0), 0.0};
  }
  for (NodeId s = 0; s < kNodes; ++s) {
    for (NodeId d = 0; d < kNodes; ++d) {
      if (s == d) {
        continue;
      }
      if (s == kSlowNode || d == kSlowNode) {
        topo.core(s, d) = LinkParams{5e6, MsToSim(100), 0.0};
      } else {
        topo.core(s, d) = LinkParams{10e6, MsToSim(1), 0.0};
      }
    }
  }
  return topo;
}

void BM_Outstanding(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));  // 0 = dynamic
  ExperimentParams params;
  params.seed = 1201;
  params.file.block_bytes = 8 * 1024;
  params.file.num_blocks = static_cast<uint32_t>(bench::ScaledFileMb(100.0) * 1024.0 * 1024.0 /
                                                 static_cast<double>(params.file.block_bytes));
  params.deadline = SecToSim(7200.0);

  BulletPrimeConfig bp;
  bp.dynamic_peer_sets = false;  // the paper disables peer management here
  bp.initial_senders = 6;
  bp.initial_receivers = 7;
  std::string name;
  if (window == 0) {
    name = "BulletPrime dyn outstanding";
  } else {
    bp.dynamic_outstanding = false;
    bp.fixed_outstanding = window;
    name = "BulletPrime " + std::to_string(window) + " outstanding";
  }

  for (auto _ : state) {
    Experiment exp(Fig12Topology(), params);
    // Every 25 s another peer's dedicated link toward the 8th node collapses.
    StartCascade(exp.net(), kSlowNode, {1, 2, 3, 4, 5, 6}, SecToSim(25.0), 100e3);
    RunMetrics metrics = exp.Run([&](const Protocol::Context& ctx, const ControlTree* tree) {
      return std::make_unique<BulletPrime>(ctx, params.file, params.source, tree, bp);
    });
    const auto all = metrics.CompletionSeconds(params.source, SimToSec(params.deadline));
    state.counters["slow_node_s"] = metrics.node(kSlowNode).completion >= 0
                                        ? SimToSec(metrics.node(kSlowNode).completion)
                                        : SimToSec(params.deadline);
    state.counters["p50_s"] = Percentile(all, 0.5);
    state.counters["max_s"] = Percentile(all, 1.0);
    bench::CollectedSeries().push_back(CdfSeries{name, all});
  }
}
BENCHMARK(BM_Outstanding)
    ->Arg(0)
    ->Arg(9)
    ->Arg(15)
    ->Arg(50)
    ->Arg(6)
    ->Arg(3)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bullet

BULLET_BENCH_MAIN("Fig. 12 — cascading bandwidth collapses toward one node")
