// Edge-case coverage for the strict numeric parsers shared by the CLI and the
// sweep grammar (flag_parse.h), plus the --sweep axis-value edge cases that
// ride on them (empty values, duplicate values, whitespace, trailing garbage).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/harness/flag_parse.h"
#include "src/harness/sweep.h"

namespace bullet {
namespace {

TEST(FlagParse, StrictInt64RejectsNonCanonicalForms) {
  int64_t v = 0;
  for (const char* bad : {"", " 1", "1 ", "+1", "1.5", "1e3", "0x10", "abc", "-", "--2",
                          "9223372036854775808" /* INT64_MAX + 1 */, "12k"}) {
    EXPECT_FALSE(ParseStrictInt64(bad, &v)) << "'" << bad << "'";
  }
  EXPECT_TRUE(ParseStrictInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(ParseStrictInt64("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
  EXPECT_TRUE(ParseStrictInt64("007", &v));  // leading zeros are still base 10
  EXPECT_EQ(v, 7);
}

TEST(FlagParse, StrictUint64RejectsSignsAndOverflow) {
  uint64_t v = 0;
  for (const char* bad : {"", "-1", "+1", " 5", "5 ", "1.0", "18446744073709551616"}) {
    EXPECT_FALSE(ParseStrictUint64(bad, &v)) << "'" << bad << "'";
  }
  EXPECT_TRUE(ParseStrictUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
}

TEST(FlagParse, StrictDoubleRejectsNonFiniteAndGarbage) {
  double v = 0.0;
  for (const char* bad : {"", " 1.0", "1.0 ", "nan", "inf", "-inf", "1e999", "1..2", "1,5",
                          "e5", "+2.5"}) {
    EXPECT_FALSE(ParseStrictDouble(bad, &v)) << "'" << bad << "'";
  }
  EXPECT_TRUE(ParseStrictDouble(".5", &v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_TRUE(ParseStrictDouble("-2.5e-2", &v));
  EXPECT_DOUBLE_EQ(v, -0.025);
}

// --- --sweep axis value edge cases (the same parsers underneath) ---

TEST(SweepAxisEdgeCases, EmptyValueListIsRejected) {
  SweepAxis axis;
  std::string error;
  EXPECT_FALSE(ParseSweepAxisSpec("nodes=", &axis, &error));
  EXPECT_FALSE(ParseSweepAxisSpec("nodes", &axis, &error));
  EXPECT_FALSE(ParseSweepAxisSpec("=5", &axis, &error));
}

TEST(SweepAxisEdgeCases, EmptyValueAmongOthersIsRejected) {
  SweepAxis axis;
  std::string error;
  EXPECT_FALSE(ParseSweepAxisSpec("nodes=5,,7", &axis, &error));
  EXPECT_NE(error.find("bad value"), std::string::npos) << error;
  EXPECT_FALSE(ParseSweepAxisSpec("nodes=5,7,", &axis, &error));
  EXPECT_FALSE(ParseSweepAxisSpec("nodes=,5", &axis, &error));
}

TEST(SweepAxisEdgeCases, DuplicateValuesAreRejected) {
  // A repeated value would run one grid point twice under two point indices
  // (with distinct derived seeds) — almost always a typo, so it is an error.
  SweepAxis axis;
  std::string error;
  EXPECT_FALSE(ParseSweepAxisSpec("nodes=5,5", &axis, &error));
  EXPECT_NE(error.find("duplicate value"), std::string::npos) << error;
  EXPECT_FALSE(ParseSweepAxisSpec("file-mb=1.5,2,1.5", &axis, &error));
  EXPECT_TRUE(ParseSweepAxisSpec("nodes=5,50,500", &axis, &error)) << error;
  ASSERT_EQ(axis.values.size(), 3u);
}

TEST(SweepAxisEdgeCases, WhitespaceAndGarbageValuesAreRejected) {
  SweepAxis axis;
  std::string error;
  EXPECT_FALSE(ParseSweepAxisSpec("nodes= 5", &axis, &error));
  EXPECT_FALSE(ParseSweepAxisSpec("nodes=5 ,7", &axis, &error));
  EXPECT_FALSE(ParseSweepAxisSpec("nodes=5;7", &axis, &error));
  EXPECT_FALSE(ParseSweepAxisSpec("nodes=twenty", &axis, &error));
}

}  // namespace
}  // namespace bullet
