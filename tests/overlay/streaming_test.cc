// StreamPlayback position/window math and post-run playback (stall / missed-
// deadline) accounting — the deadline/streaming dissemination mode's core.

#include "src/overlay/streaming.h"

#include <gtest/gtest.h>

#include <vector>

namespace bullet {
namespace {

// 16 KB blocks at 2 Mbps: 16384 * 8 / 2e6 = 65.536 ms per position.
constexpr int64_t kBlockBytes = 16 * 1024;

StreamingSpec Spec(double bitrate_mbps = 2.0, int window = 8, double buffer_sec = 1.0) {
  StreamingSpec s;
  s.bitrate_mbps = bitrate_mbps;
  s.window_blocks = window;
  s.startup_buffer_sec = buffer_sec;
  return s;
}

TEST(StreamPlayback, PositionsWrapEncodedIdSpace) {
  const StreamPlayback p(Spec(), /*num_positions=*/100, kBlockBytes, 0, 0);
  EXPECT_EQ(p.PositionOf(0), 0u);
  EXPECT_EQ(p.PositionOf(99), 99u);
  EXPECT_EQ(p.PositionOf(100), 0u);   // second encoded pass refills position 0
  EXPECT_EQ(p.PositionOf(750), 50u);
}

TEST(StreamPlayback, LiveEdgeFollowsReleaseClock) {
  const StreamPlayback p(Spec(), 100, kBlockBytes, /*session_start=*/SecToSim(10.0), SecToSim(10.0));
  const SimTime dur = p.block_duration();
  EXPECT_GT(dur, 0);
  EXPECT_EQ(p.LiveEdge(0), 0u);              // before the session starts
  EXPECT_EQ(p.LiveEdge(SecToSim(10.0)), 0u); // position 0 still being released
  EXPECT_EQ(p.LiveEdge(SecToSim(10.0) + dur), 1u);
  EXPECT_EQ(p.LiveEdge(SecToSim(10.0) + 5 * dur + dur / 2), 5u);
  // Capped at num_positions; BlocksReleasable keeps counting (encoded minting).
  EXPECT_EQ(p.LiveEdge(SecToSim(10.0) + 500 * dur), 100u);
  EXPECT_EQ(p.BlocksReleasable(SecToSim(10.0) + 500 * dur), 501u);
}

TEST(StreamPlayback, LateJoinerStartsAtLiveEdge) {
  const SimTime start = 0;
  const StreamPlayback early(Spec(), 100, kBlockBytes, start, 0);
  EXPECT_EQ(early.start_position(), 0u);
  const SimTime dur = early.block_duration();
  const StreamPlayback late(Spec(), 100, kBlockBytes, start, start + 20 * dur);
  EXPECT_EQ(late.start_position(), 20u);
  EXPECT_FALSE(late.Required(5));   // positions before the join's live edge
  EXPECT_TRUE(late.Required(20));
  EXPECT_TRUE(late.Required(120));  // wraps to position 20
  // A joiner far past the stream's end still needs the final position.
  const StreamPlayback very_late(Spec(), 100, kBlockBytes, start, start + 5000 * dur);
  EXPECT_EQ(very_late.start_position(), 99u);
  EXPECT_FALSE(very_late.Complete());
}

TEST(StreamPlayback, SlidingWindowEligibility) {
  const StreamPlayback p(Spec(2.0, /*window=*/8), 100, kBlockBytes, 0, 0);
  const SimTime dur = p.block_duration();
  const SimTime t = 50 * dur;  // live edge at 50, window [0, 8)
  EXPECT_TRUE(p.Eligible(0, t));
  EXPECT_TRUE(p.Eligible(7, t));
  EXPECT_FALSE(p.Eligible(8, t)) << "outside the window";
  EXPECT_FALSE(p.Eligible(49, t));
  // Not yet released: window is open but the source hasn't minted it.
  EXPECT_FALSE(p.Eligible(3, 2 * dur + dur / 2))
      << "position 3 unreleased at live edge 2";
  EXPECT_TRUE(p.Eligible(2, 2 * dur + dur / 2));
}

TEST(StreamPlayback, MarkHeldAdvancesWindow) {
  StreamPlayback p(Spec(2.0, /*window=*/4), 10, kBlockBytes, 0, 0);
  const SimTime late = SecToSim(1000.0);  // everything released
  EXPECT_TRUE(p.MarkHeld(0));
  EXPECT_FALSE(p.MarkHeld(0)) << "second arrival of a position is not fresh";
  EXPECT_EQ(p.next_needed(), 1u);
  // Out-of-order hold: the window advances only over the contiguous prefix.
  EXPECT_TRUE(p.MarkHeld(2));
  EXPECT_EQ(p.next_needed(), 1u);
  EXPECT_FALSE(p.Eligible(2, late)) << "held positions are not requestable";
  EXPECT_TRUE(p.Eligible(4, late)) << "window [1, 5) after holding 0";
  EXPECT_FALSE(p.Eligible(5, late));
  EXPECT_TRUE(p.MarkHeld(1));
  EXPECT_EQ(p.next_needed(), 3u) << "skips the already-held position 2";
  for (uint32_t pos = 3; pos < 10; ++pos) {
    EXPECT_FALSE(p.Complete());
    p.MarkHeld(pos);
  }
  EXPECT_TRUE(p.Complete());
  EXPECT_EQ(p.next_needed(), 10u);
}

TEST(PlaybackStats, NoStallWhenBlocksBeatTheSchedule) {
  const StreamingSpec spec = Spec(2.0, 8, /*buffer=*/1.0);
  const StreamPlayback ref(spec, 10, kBlockBytes, 0, 0);
  const SimTime dur = ref.block_duration();
  std::vector<SimTime> arrivals;
  for (uint32_t pos = 0; pos < 10; ++pos) {
    arrivals.push_back(static_cast<SimTime>(pos) * dur / 2);  // twice realtime
  }
  const PlaybackStats st =
      ComputePlaybackStats(spec, 10, kBlockBytes, 0, 0, arrivals, SecToSim(3600.0));
  EXPECT_DOUBLE_EQ(st.stall_sec, 0.0);
  EXPECT_EQ(st.missed_deadline, 0);
  EXPECT_TRUE(st.finished);
}

TEST(PlaybackStats, LateBlockStallsAndMissesFixedDeadline) {
  const StreamingSpec spec = Spec(2.0, 8, /*buffer=*/1.0);
  const StreamPlayback ref(spec, 4, kBlockBytes, 0, 0);
  const SimTime dur = ref.block_duration();
  const SimTime play_start = SecToSim(1.0);
  // Position 1 arrives one second after its playback instant; 0, 2, 3 early.
  std::vector<SimTime> arrivals = {0, play_start + dur + SecToSim(1.0), 0, 0};
  const PlaybackStats st =
      ComputePlaybackStats(spec, 4, kBlockBytes, 0, 0, arrivals, SecToSim(3600.0));
  EXPECT_NEAR(st.stall_sec, 1.0, 1e-9);
  // Positions 2 and 3 were already held, so only position 1 is late against
  // the fixed schedule (the stall does not shift later deadlines).
  EXPECT_EQ(st.missed_deadline, 1);
  EXPECT_TRUE(st.finished);
}

TEST(PlaybackStats, StallShiftsClockNotDeadlines) {
  const StreamingSpec spec = Spec(2.0, 8, /*buffer=*/1.0);
  const StreamPlayback ref(spec, 4, kBlockBytes, 0, 0);
  const SimTime dur = ref.block_duration();
  const SimTime play_start = SecToSim(1.0);
  // Every position arrives exactly when the *fixed* schedule needs the one
  // after it: each is late, but the stall-shifted clock only stalls once.
  std::vector<SimTime> arrivals;
  for (SimTime pos = 0; pos < 4; ++pos) {
    arrivals.push_back(play_start + (pos + 1) * dur);
  }
  const PlaybackStats st =
      ComputePlaybackStats(spec, 4, kBlockBytes, 0, 0, arrivals, SecToSim(3600.0));
  EXPECT_EQ(st.missed_deadline, 4) << "fixed deadlines are not absolved by stalls";
  EXPECT_NEAR(st.stall_sec, SimToSec(dur), 1e-9) << "the shifted clock stalls only once";
  EXPECT_TRUE(st.finished);
}

TEST(PlaybackStats, NeverArrivedAbandonsAtRunDeadline) {
  const StreamingSpec spec = Spec(2.0, 8, /*buffer=*/1.0);
  const SimTime run_deadline = SecToSim(100.0);
  // Position 1 never arrives (-1): playback stalls from its playhead to the
  // run deadline, later positions count missed but charge no further stall.
  const StreamPlayback ref(spec, 4, kBlockBytes, 0, 0);
  const SimTime dur = ref.block_duration();
  const SimTime play_start = SecToSim(1.0);
  std::vector<SimTime> arrivals = {0, -1, 0, 0};
  const PlaybackStats st =
      ComputePlaybackStats(spec, 4, kBlockBytes, 0, 0, arrivals, run_deadline);
  EXPECT_EQ(st.missed_deadline, 1) << "positions 2/3 arrived before their deadlines";
  EXPECT_NEAR(st.stall_sec, SimToSec(run_deadline - (play_start + dur)), 1e-9);
  EXPECT_FALSE(st.finished);
}

TEST(PlaybackStats, EmptyArrivalsMeansNothingEverArrived) {
  const StreamingSpec spec = Spec(2.0, 8, /*buffer=*/1.0);
  const PlaybackStats st = ComputePlaybackStats(spec, 10, kBlockBytes, 0, 0,
                                                std::vector<SimTime>{}, SecToSim(50.0));
  EXPECT_EQ(st.missed_deadline, 10);
  EXPECT_FALSE(st.finished);
  EXPECT_NEAR(st.stall_sec, 50.0 - 1.0, 1e-9);
}

TEST(PlaybackStats, LateJoinerOnlyAccountsRequiredPositions) {
  const StreamingSpec spec = Spec(2.0, 8, /*buffer=*/1.0);
  const StreamPlayback ref(spec, 10, kBlockBytes, 0, 0);
  const SimTime dur = ref.block_duration();
  const SimTime join = 6 * dur;  // start position 6
  std::vector<SimTime> arrivals(10, -1);
  for (uint32_t pos = 6; pos < 10; ++pos) {
    arrivals[pos] = join + SecToSim(0.1);
  }
  const PlaybackStats st =
      ComputePlaybackStats(spec, 10, kBlockBytes, 0, join, arrivals, SecToSim(3600.0));
  EXPECT_EQ(st.missed_deadline, 0) << "positions before the join are not required";
  EXPECT_DOUBLE_EQ(st.stall_sec, 0.0);
  EXPECT_TRUE(st.finished);
}

}  // namespace
}  // namespace bullet
