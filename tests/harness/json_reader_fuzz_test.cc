// Fuzz-style negative coverage for the bench JSON parser: truncation at every
// offset, hostile nesting depth, malformed escapes, duplicate keys, and number
// edge cases. The parser must reject (with an error, never a crash or hang)
// everything that is not one complete well-formed document.

#include <gtest/gtest.h>

#include <string>

#include "src/harness/json_reader.h"

namespace bullet {
namespace {

bool Parses(const std::string& text, std::string* error = nullptr) {
  JsonValue value;
  std::string scratch;
  return ParseJson(text, &value, error != nullptr ? error : &scratch);
}

TEST(JsonReaderFuzz, EveryProperPrefixOfAValidDocumentFails) {
  const std::string doc =
      R"({"schema":"bullet-bench-v2","points":[{"params":{"nodes":20},"metrics":)"
      R"({"a.p50_s":{"median":-1.5e2}}},[true,false,null,"A\n"]]})";
  JsonValue value;
  std::string error;
  ASSERT_TRUE(ParseJson(doc, &value, &error)) << error;
  for (size_t len = 0; len < doc.size(); ++len) {
    EXPECT_FALSE(Parses(doc.substr(0, len))) << "prefix length " << len;
  }
}

TEST(JsonReaderFuzz, DeepNestingFailsCleanlyInsteadOfOverflowingTheStack) {
  // 200k containers would blow the stack under naive recursion; the parser
  // caps nesting at 256 and reports it.
  for (const char* brackets : {"[", "{\"k\":"}) {
    std::string hostile;
    for (int i = 0; i < 200000; ++i) {
      hostile += brackets;
    }
    std::string error;
    EXPECT_FALSE(Parses(hostile, &error));
    EXPECT_NE(error.find("nesting"), std::string::npos) << error;
  }
  // At the limit itself, a balanced document still parses.
  std::string balanced(256, '[');
  balanced += std::string(256, ']');
  EXPECT_TRUE(Parses(balanced));
  EXPECT_FALSE(Parses("[" + balanced + "]"));
}

TEST(JsonReaderFuzz, BadEscapesAreRejected) {
  EXPECT_FALSE(Parses(R"("\q")"));          // unknown escape
  EXPECT_FALSE(Parses(R"("\u12")"));        // truncated \u
  EXPECT_FALSE(Parses(R"("\u12g4")"));      // bad hex digit
  EXPECT_FALSE(Parses("\"\\"));             // escape at end of input
  EXPECT_FALSE(Parses("\"abc"));            // unterminated string
  EXPECT_FALSE(Parses("\"a\nb\""));         // raw control character
  EXPECT_TRUE(Parses(R"("\" \\ \/ \b \f \n \r \t A")"));
}

std::string ParsedString(const std::string& doc) {
  JsonValue value;
  std::string error;
  if (!ParseJson(doc, &value, &error) || !value.is_string()) {
    ADD_FAILURE() << doc << ": " << error;
    return {};
  }
  return value.str();
}

TEST(JsonReaderFuzz, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(ParsedString(R"("\u0041")"), "A");
  EXPECT_EQ(ParsedString(R"("\u00e9")"), "\xC3\xA9");      // e-acute, 2-byte UTF-8
  EXPECT_EQ(ParsedString(R"("\u20AC")"), "\xE2\x82\xAC");  // euro sign, 3-byte UTF-8
  // Astral plane via a surrogate pair: U+1F600 (grinning face), 4-byte UTF-8.
  EXPECT_EQ(ParsedString(R"("\ud83d\ude00")"), "\xF0\x9F\x98\x80");
  EXPECT_EQ(ParsedString(R"("x\uD83D\uDE00y")"), "x\xF0\x9F\x98\x80y");
  // Highest code point, U+10FFFF.
  EXPECT_EQ(ParsedString(R"("\udbff\udfff")"), "\xF4\x8F\xBF\xBF");
  // \u0000 is a legal escape and must survive as an embedded NUL.
  EXPECT_EQ(ParsedString(R"("a\u0000b")"), std::string("a\0b", 3));
}

TEST(JsonReaderFuzz, LoneAndMismatchedSurrogatesAreRejected) {
  std::string error;
  EXPECT_FALSE(Parses(R"("\ud83d")", &error));     // lone high surrogate
  EXPECT_NE(error.find("surrogate"), std::string::npos) << error;
  EXPECT_FALSE(Parses(R"("\ude00")"));             // lone low surrogate
  EXPECT_FALSE(Parses(R"("\ud83dA")"));            // high followed by raw char
  EXPECT_FALSE(Parses(R"("\ud83d\n")"));           // high followed by other escape
  EXPECT_FALSE(Parses(R"("\ud83d\ud83d")"));       // high followed by another high
  EXPECT_FALSE(Parses(R"("\ud83d\u0041")"));       // high followed by a non-surrogate
  EXPECT_FALSE(Parses(R"("\ud83d\ude0")"));        // truncated low half
  EXPECT_FALSE(Parses(R"("\ud83d\u")"));           // bare second escape
  EXPECT_FALSE(Parses(R"("\ud83d)"));              // input ends after the high half
}

TEST(JsonReaderFuzz, DuplicateObjectKeysKeepTheFirstValue) {
  // Pinned behaviour: emplace into the member map means first-wins. bench
  // documents never emit duplicates; a hand-edited baseline that does must
  // behave deterministically.
  JsonValue value;
  std::string error;
  ASSERT_TRUE(ParseJson(R"({"k":1,"k":2,"other":3})", &value, &error)) << error;
  EXPECT_EQ(value.object().size(), 2u);
  EXPECT_DOUBLE_EQ(value.NumberOr("k", 0.0), 1.0);
}

TEST(JsonReaderFuzz, MalformedNumbersAndLiteralsAreRejected) {
  for (const char* bad : {"-", "1.2.3", "1e", "+1", "01x", "nan", "inf", "tru", "falsey",
                          "nulll", "1e999", "--5", "0x10"}) {
    EXPECT_FALSE(Parses(bad)) << bad;
  }
  for (const char* good : {"-0", "1.25e-3", "0", "123456789", "true", "false", "null"}) {
    EXPECT_TRUE(Parses(good)) << good;
  }
}

TEST(JsonReaderFuzz, StructuralGarbageIsRejected) {
  for (const char* bad : {"", "   ", "{", "}", "[", "]", "{]", "[}", "[1,]", "{\"a\":}",
                          "{\"a\"1}", "{1:2}", "[1 2]", "{\"a\":1,}", "[1],[2]", "{} {}",
                          "[1]x", ","}) {
    EXPECT_FALSE(Parses(bad)) << "'" << bad << "'";
  }
}

}  // namespace
}  // namespace bullet
