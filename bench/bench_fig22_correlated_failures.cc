// Fig. 22 (extension, no paper figure): a correlated failure — an entire stub
// domain (or every stub under one transit router) going dark mid-transfer —
// over the routed transit-stub core, watched from the shared gateway uplinks.
// Mesh-based dissemination should absorb the outage: surviving receivers lose
// the peers (and in-flight transfers) they had inside the dead region, their
// gateway-uplink utilization dips, and then recovers as RanSub re-peers them
// with live nodes and the allocator refills the freed shared capacity.
//
// --churn-model picks the failure scope: "stub" (default) kills one stub
// domain, "gateway" kills every stub domain under one transit router, "leaf"
// kills scattered tree leaves (the uncorrelated control), "none" runs
// failure-free. The outage time scales with the TCP-feasible transfer time so
// it stays mid-run across REPRO_SCALE and --nodes overrides.

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench/session_common.h"
#include "src/harness/scenario_registry.h"
#include "src/sim/dynamics.h"

namespace bullet {
namespace {

BULLET_SCENARIO_TRANSIT_STUB_DEFAULT(fig22_correlated_failures);

BULLET_SCENARIO(fig22_correlated_failures,
                "Extension — correlated stub/gateway outage over the transit-stub core") {
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kTransitStub;
  cfg.num_nodes = 60;
  cfg.file_mb = ScaledFileMb(10.0);
  cfg.block_bytes = 100 * 1024;  // the wide-area deployment's block size (Section 4.7)
  cfg.seed = 2201;
  ApplyScenarioOptions(opts, &cfg);
  // The scenario *is* the shared routed core; see fig17 for the same rule.
  cfg.topo = ScenarioConfig::Topo::kTransitStub;
  cfg.transit_stub = ScaledTransitStub(cfg.num_nodes);

  const std::string churn_name = cfg.churn_model.empty() ? "stub" : cfg.churn_model;
  const double feasible = TcpFeasibleSeconds(cfg.file_mb, 6e6, /*startup_sec=*/12.0);
  const SimTime outage_at = SecToSim(0.8 * feasible);

  WorkloadParams params;
  params.seed = cfg.seed;
  params.deadline = cfg.deadline;
  params.record_arrivals = cfg.record_arrivals;
  params.full_recompute_allocator = cfg.full_recompute_allocator;
  params.skip_idle_ticks = cfg.skip_idle_ticks;
  params.quantum = cfg.quantum;

  std::unique_ptr<Topology> topology = BuildScenarioTopology(cfg);
  const RoutedTopology* routed = topology->AsRouted();
  const RoutedTopology::TransitStubInfo* info = routed->transit_stub_info();
  // One sampled link per stub domain: the transit->gateway direction of its
  // shared uplink carries the stub's download traffic — the dominant direction
  // for dissemination. (Pointers into the topology stay valid after the move;
  // the experiment owns it for the rest of the scope.)
  const std::vector<int32_t> links = info->gateway_uplink_edge;

  WorkloadExperiment exp(std::move(topology), params);
  if (churn_name == "leaf") {
    exp.SetChurnModel(std::make_shared<LeafFailureChurn>(std::max(1, cfg.num_nodes / 10),
                                                         outage_at));
  } else if (churn_name == "gateway") {
    exp.SetChurnModel(std::make_shared<CorrelatedFailureChurn>(
        CorrelatedFailureChurn::Scope::kGatewayRouter, outage_at));
  } else if (churn_name != "none") {
    exp.SetChurnModel(std::make_shared<CorrelatedFailureChurn>(
        CorrelatedFailureChurn::Scope::kStubDomain, outage_at));
  }

  std::vector<double> sample_sec;
  std::vector<std::vector<double>> sample_bps;
  StartInteriorLinkSampling(exp.net(), links, SecToSim(1.0), SecToSim(1.0), &sample_sec,
                            &sample_bps);

  SessionSpec session;
  session.protocol = ScenarioSystemOr(cfg, "bullet-prime");
  session.source = 0;
  session.seed = cfg.seed;
  session.file.block_bytes = cfg.block_bytes;
  session.file.num_blocks = static_cast<uint32_t>(cfg.file_mb * 1024.0 * 1024.0 /
                                                  static_cast<double>(cfg.block_bytes));
  session.file.encoded = cfg.force_encoded;
  exp.AddSession(session);
  const WorkloadResult wl = exp.Run();

  // Aggregate utilization over *surviving* stubs' uplinks, so the dead
  // region's zeroed link doesn't masquerade as a protocol-level dip.
  std::set<int> failed_stubs;
  for (const ChurnEvent& ev : wl.churn_events) {
    failed_stubs.insert(info->stub_domain_of_router(routed->attach(ev.node)));
  }
  std::vector<double> survivor_mbps(sample_sec.size(), 0.0);
  for (size_t t = 0; t < sample_sec.size(); ++t) {
    for (size_t s = 0; s < links.size(); ++s) {
      if (failed_stubs.count(static_cast<int>(s)) == 0) {
        survivor_mbps[t] += sample_bps[t][s] / 1e6;
      }
    }
  }

  // Three-phase read of the timeline: steady state just before the outage, the
  // dip right after (in-flight transfers from the dead region vanish), and the
  // best level reached once re-peering refills the shared links.
  const double outage_sec = SimToSec(outage_at);
  double util_pre = 0.0, util_post = -1.0, util_recovered = 0.0;
  int pre_n = 0;
  for (size_t t = 0; t < sample_sec.size(); ++t) {
    const double at = sample_sec[t];
    if (at < outage_sec && at >= outage_sec - 3.0) {
      util_pre += survivor_mbps[t];
      ++pre_n;
    } else if (at >= outage_sec && at < outage_sec + 3.0) {
      util_post = util_post < 0.0 ? survivor_mbps[t] : std::min(util_post, survivor_mbps[t]);
    } else if (at >= outage_sec + 3.0) {
      util_recovered = std::max(util_recovered, survivor_mbps[t]);
    }
  }
  if (pre_n > 0) {
    util_pre /= pre_n;
  }

  ScenarioReport report(kScenarioName);
  report.AddCompletion(ToScenarioResult(wl.sessions.front(), wl));
  report.AddSeries("SurvivorGatewayMbps", survivor_mbps);
  report.AddScalar("outage_at_s", outage_sec);
  report.AddScalar("failed_nodes", static_cast<double>(wl.churn_events.size()));
  report.AddScalar("failed_stub_domains", static_cast<double>(failed_stubs.size()));
  report.AddScalar("surviving_stub_domains",
                   static_cast<double>(info->num_stub_domains - failed_stubs.size()));
  report.AddScalar("util_pre_mbps", util_pre);
  report.AddScalar("util_post_outage_mbps", std::max(util_post, 0.0));
  report.AddScalar("util_recovered_mbps", util_recovered);
  return report;
}

}  // namespace
}  // namespace bullet
