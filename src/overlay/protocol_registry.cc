#include "src/overlay/protocol_registry.h"

#include <utility>

namespace bullet {

ProtocolRegistry& ProtocolRegistry::Global() {
  static ProtocolRegistry* registry = new ProtocolRegistry();
  return *registry;
}

bool ProtocolRegistry::Register(Entry entry) {
  const std::string key = entry.key;
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.emplace(key, std::move(entry)).second;
}

const ProtocolRegistry::Entry* ProtocolRegistry::Find(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<const ProtocolRegistry::Entry*> ProtocolRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Entry*> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    out.push_back(&entry);
  }
  return out;
}

}  // namespace bullet
