// String-keyed registry of dissemination protocols, replacing the closed System
// enum dispatch. Each system registers one factory (see RegisterXxxProtocol in
// src/core / src/baselines); workload sessions pick protocols by name, so one
// network can mix systems and the bullet_run CLI gains --system without the
// harness enumerating concrete types.
//
// Registration is two-stage: a SessionFactory runs once per session (building
// any shared per-session structure, e.g. SplitStream's stripe forest) and
// returns the NodeFactory that instantiates one protocol per joining member.

#ifndef SRC_OVERLAY_PROTOCOL_REGISTRY_H_
#define SRC_OVERLAY_PROTOCOL_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <typeinfo>
#include <vector>

#include "src/overlay/control_tree.h"
#include "src/overlay/protocol.h"
#include "src/overlay/session.h"

namespace bullet {

class ProtocolRegistry {
 public:
  // Everything a session hands its protocol factory when it is set up.
  struct SessionEnv {
    const SessionSpec* spec = nullptr;  // normalized: members/offsets expanded
    const ControlTree* tree = nullptr;  // session-scoped control tree
    uint64_t seed = 0;                  // resolved session seed
    int num_nodes = 0;                  // network-wide node count
  };

  // Instantiates one protocol for a joining member. The Context carries the
  // member's node id, the shared network, the session's metrics object and the
  // per-node RNG seed.
  using NodeFactory = std::function<std::unique_ptr<Protocol>(const Protocol::Context&)>;
  // Runs once per session; returns the per-node factory used as members join.
  using SessionFactory = std::function<NodeFactory(const SessionEnv&)>;

  struct Entry {
    std::string key;           // registry name, e.g. "bullet-prime"
    std::string display_name;  // reporting label, e.g. "BulletPrime"
    std::string description;
    // Source-encoded-stream methodology (Section 4.2): Bullet and SplitStream
    // complete at (1 + 4%) n distinct blocks. The harness applies this to the
    // session's FileParams unless the caller already forced encoding.
    bool encoded_stream = false;
    // Set when the protocol cannot run over a member subset (SplitStream: its
    // stripe forest is interior-disjoint over the whole node-id space).
    // Scenarios with subset sessions treat a --system naming such a protocol
    // as an override that does not apply; AddSession still BULLET_CHECKs it.
    bool requires_full_span = false;
    // The protocol's configuration type (e.g. &typeid(BulletPrimeConfig)).
    // SessionSpec::protocol_config must be empty or hold exactly this type —
    // the harness validates it at AddSession with a clear message, instead of
    // a bad_any_cast (or a silent default fallback) deep inside the factory.
    // Null means the protocol takes no config: only an empty any is accepted.
    const std::type_info* config_type = nullptr;
    SessionFactory make;
  };

  // The process-wide registry. Built-in systems are registered on first use of
  // the workload harness (see EnsureBuiltinProtocolsRegistered in workload.h);
  // tests may register additional protocols.
  static ProtocolRegistry& Global();

  // Thread-safety: Register/Find/List/size serialize on an internal mutex, so
  // concurrent registration and lookup (e.g. sweep workers constructing
  // experiments while another thread's EnsureBuiltinProtocolsRegistered is
  // mid-flight, or registry queries from parallel-engine callbacks) are safe.
  // Returned Entry pointers stay valid and immutable forever: entries_ is a
  // node-based map and entries are never erased or overwritten — Register of
  // a duplicate key leaves the registry unchanged.

  // Returns false (and leaves the registry unchanged) on a duplicate key.
  bool Register(Entry entry);

  // nullptr when no protocol has that key.
  const Entry* Find(const std::string& key) const;
  // Sorted by key.
  std::vector<const Entry*> List() const;
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace bullet

#endif  // SRC_OVERLAY_PROTOCOL_REGISTRY_H_
