#include "src/sim/topology.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace bullet {

Topology::Topology(int num_nodes)
    : num_nodes_(num_nodes),
      uplinks_(static_cast<size_t>(num_nodes)),
      downlinks_(static_cast<size_t>(num_nodes)) {
  BULLET_CHECK(num_nodes >= 0);
}

SimTime Topology::PathDelay(NodeId src, NodeId dst) const {
  // Uplink first, then interior, then downlink — the legacy mesh summation
  // order (uplink + core + downlink), kept for bit-stable SimTime arithmetic.
  SimTime total = uplink(src).delay;
  for (const int32_t id : InteriorPath(src, dst)) {
    total += interior_link(id).delay;
  }
  total += downlink(dst).delay;
  return total;
}

SimTime Topology::Rtt(NodeId src, NodeId dst) const {
  return PathDelay(src, dst) + PathDelay(dst, src);
}

double Topology::PathLoss(NodeId src, NodeId dst) const {
  // Interior factors first, then uplink, then downlink: on the mesh this is
  // exactly the historical (1-p_core)*(1-p_up)*(1-p_down) product order, so the
  // FP result is bit-identical to the pre-routed implementation.
  double pass = 1.0;
  for (const int32_t id : InteriorPath(src, dst)) {
    pass *= 1.0 - interior_link(id).loss_rate;
  }
  pass *= 1.0 - uplink(src).loss_rate;
  pass *= 1.0 - downlink(dst).loss_rate;
  return 1.0 - pass;
}

void Topology::ScalePathBandwidth(NodeId src, NodeId dst, double factor) {
  for (const int32_t id : InteriorPath(src, dst)) {
    interior_link(id).bandwidth_bps *= factor;
  }
}

void Topology::SetPathBandwidth(NodeId src, NodeId dst, double bps) {
  for (const int32_t id : InteriorPath(src, dst)) {
    interior_link(id).bandwidth_bps = bps;
  }
}

// --- MeshTopology ---

size_t MeshTopology::CheckedCoreSize(int num_nodes) {
  BULLET_CHECK(num_nodes <= kMaxNodes &&
               "mesh core ids src*N+dst overflow int32 past 46340 nodes; use RoutedTopology");
  return static_cast<size_t>(num_nodes) * static_cast<size_t>(num_nodes);
}

MeshTopology::MeshTopology(int num_nodes)
    : Topology(num_nodes), core_(CheckedCoreSize(num_nodes)) {}

Topology::PathView MeshTopology::InteriorPath(NodeId src, NodeId dst) const {
  path_scratch_ = static_cast<int32_t>(CoreIndex(src, dst));
  return PathView{&path_scratch_, 1};
}

MeshTopology MeshTopology::FullMesh(const MeshParams& params, Rng& rng) {
  MeshTopology topo(params.num_nodes);
  for (NodeId n = 0; n < params.num_nodes; ++n) {
    topo.uplink(n) = LinkParams{params.access_bps, params.access_delay, 0.0};
    topo.downlink(n) = LinkParams{params.access_bps, params.access_delay, 0.0};
  }
  for (NodeId s = 0; s < params.num_nodes; ++s) {
    for (NodeId d = 0; d < params.num_nodes; ++d) {
      if (s == d) {
        continue;
      }
      LinkParams& link = topo.core(s, d);
      link.bandwidth_bps = params.core_bps;
      link.delay = rng.UniformInt(params.core_delay_min, params.core_delay_max);
      link.loss_rate = rng.UniformDouble(params.core_loss_min, params.core_loss_max);
    }
  }
  return topo;
}

MeshTopology MeshTopology::ConstrainedAccess(int num_nodes, Rng& /*rng*/) {
  MeshTopology topo(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    topo.uplink(n) = LinkParams{800e3, MsToSim(1), 0.0};
    topo.downlink(n) = LinkParams{800e3, MsToSim(1), 0.0};
  }
  for (NodeId s = 0; s < num_nodes; ++s) {
    for (NodeId d = 0; d < num_nodes; ++d) {
      if (s == d) {
        continue;
      }
      topo.core(s, d) = LinkParams{10e6, MsToSim(1), 0.0};
    }
  }
  return topo;
}

MeshTopology MeshTopology::Uniform(int num_nodes, double link_bps, SimTime link_delay,
                                   double loss_min, double loss_max, Rng& rng) {
  MeshTopology topo(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    // Ample access links so the uniform core links are the constraint.
    topo.uplink(n) = LinkParams{10.0 * link_bps, MsToSim(0), 0.0};
    topo.downlink(n) = LinkParams{10.0 * link_bps, MsToSim(0), 0.0};
  }
  for (NodeId s = 0; s < num_nodes; ++s) {
    for (NodeId d = 0; d < num_nodes; ++d) {
      if (s == d) {
        continue;
      }
      LinkParams& link = topo.core(s, d);
      link.bandwidth_bps = link_bps;
      link.delay = link_delay;
      link.loss_rate = loss_min >= loss_max ? loss_min : rng.UniformDouble(loss_min, loss_max);
    }
  }
  return topo;
}

MeshTopology MeshTopology::WideArea(int num_nodes, Rng& rng) {
  MeshTopology topo(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    // Heterogeneous site uplinks; downstream usually a bit faster than upstream.
    const double up = rng.UniformDouble(1e6, 20e6);
    const double down = up * rng.UniformDouble(1.0, 2.0);
    topo.uplink(n) = LinkParams{up, MsToSim(1), 0.0};
    topo.downlink(n) = LinkParams{down, MsToSim(1), 0.0};
  }
  for (NodeId s = 0; s < num_nodes; ++s) {
    for (NodeId d = 0; d < num_nodes; ++d) {
      if (s == d) {
        continue;
      }
      LinkParams& link = topo.core(s, d);
      // Wide-area paths: rarely the bottleneck but occasionally congested.
      link.bandwidth_bps = rng.UniformDouble(5e6, 50e6);
      link.delay = rng.UniformInt(MsToSim(5), MsToSim(200));
      link.loss_rate = rng.UniformDouble(0.0, 0.01);
    }
  }
  return topo;
}

// --- RoutedTopology ---

RoutedTopology::RoutedTopology(int num_nodes, int num_routers)
    : Topology(num_nodes),
      num_routers_(num_routers),
      attach_(static_cast<size_t>(num_nodes), -1),
      routes_(static_cast<size_t>(num_routers)) {
  BULLET_CHECK(num_routers >= 1);
}

void RoutedTopology::AttachNode(NodeId node, int32_t router) {
  BULLET_CHECK(static_cast<uint32_t>(node) < static_cast<uint32_t>(num_nodes_));
  BULLET_CHECK(static_cast<uint32_t>(router) < static_cast<uint32_t>(num_routers_));
  attach_[static_cast<size_t>(node)] = router;
}

int32_t RoutedTopology::AddEdge(int32_t from_router, int32_t to_router, const LinkParams& params) {
  BULLET_CHECK(!adj_built_ && "edges cannot be added after routes were first queried");
  BULLET_CHECK(static_cast<uint32_t>(from_router) < static_cast<uint32_t>(num_routers_));
  BULLET_CHECK(static_cast<uint32_t>(to_router) < static_cast<uint32_t>(num_routers_));
  BULLET_CHECK(from_router != to_router);
  BULLET_CHECK(params.delay >= 0);
  const int32_t id = static_cast<int32_t>(edges_.size());
  edges_.push_back(Edge{from_router, to_router, params});
  return id;
}

int32_t RoutedTopology::AddDuplexEdge(int32_t a, int32_t b, const LinkParams& params) {
  const int32_t id = AddEdge(a, b, params);
  AddEdge(b, a, params);
  return id;
}

void RoutedTopology::BuildAdjacency() const {
  const size_t r = static_cast<size_t>(num_routers_);
  adj_off_.assign(r + 1, 0);
  for (const Edge& e : edges_) {
    ++adj_off_[static_cast<size_t>(e.from) + 1];
  }
  for (size_t i = 0; i < r; ++i) {
    adj_off_[i + 1] += adj_off_[i];
  }
  adj_edge_.resize(edges_.size());
  std::vector<uint32_t> cursor(adj_off_.begin(), adj_off_.end() - 1);
  for (size_t e = 0; e < edges_.size(); ++e) {
    adj_edge_[cursor[static_cast<size_t>(edges_[e].from)]++] = static_cast<int32_t>(e);
  }
  adj_built_ = true;
}

void RoutedTopology::ComputeRoutesFrom(int32_t src_router) const {
  if (!adj_built_) {
    BuildAdjacency();
  }
  SourceRoutes& out = routes_[static_cast<size_t>(src_router)];
  out.prev_edge.assign(static_cast<size_t>(num_routers_), -1);
  std::vector<SimTime> dist(static_cast<size_t>(num_routers_), -1);  // -1 = unreached

  // Deterministic Dijkstra: the heap orders by (distance, router id), edges
  // relax in AddEdge order, and only strict improvements replace a predecessor,
  // so the shortest-path tree is a pure function of the construction sequence.
  using QueueEntry = std::pair<SimTime, int32_t>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<QueueEntry>> heap;
  dist[static_cast<size_t>(src_router)] = 0;
  heap.push({0, src_router});
  while (!heap.empty()) {
    const auto [d, router] = heap.top();
    heap.pop();
    const size_t ri = static_cast<size_t>(router);
    if (d != dist[ri]) {
      continue;  // stale entry
    }
    for (uint32_t off = adj_off_[ri]; off < adj_off_[ri + 1]; ++off) {
      const int32_t eid = adj_edge_[off];
      const Edge& e = edges_[static_cast<size_t>(eid)];
      const size_t ti = static_cast<size_t>(e.to);
      const SimTime nd = d + e.params.delay;
      if (dist[ti] < 0 || nd < dist[ti]) {
        dist[ti] = nd;
        out.prev_edge[ti] = eid;
        heap.push({nd, e.to});
      }
    }
  }
  out.computed = true;
}

Topology::PathView RoutedTopology::InteriorPath(NodeId src, NodeId dst) const {
  BULLET_CHECK(src != dst);
  const int32_t r0 = attach(src);
  const int32_t r1 = attach(dst);
  BULLET_CHECK(r0 >= 0 && r1 >= 0 && "overlay node queried before AttachNode");
  if (r0 == r1) {
    return PathView{nullptr, 0};  // same stub router: access links only
  }
  if (compress_segments_) {
    return ComposedInteriorPath(r0, r1);
  }
  const int64_t key = static_cast<int64_t>(r0) * num_routers_ + r1;
  auto it = path_cache_.find(key);
  if (it == path_cache_.end()) {
    if (!routes_[static_cast<size_t>(r0)].computed) {
      ComputeRoutesFrom(r0);
    }
    const SourceRoutes& routes = routes_[static_cast<size_t>(r0)];
    const uint32_t off = static_cast<uint32_t>(path_pool_.size());
    int32_t walk = r1;
    while (walk != r0) {
      const int32_t eid = routes.prev_edge[static_cast<size_t>(walk)];
      BULLET_CHECK(eid >= 0 && "router graph does not connect the attached routers");
      path_pool_.push_back(eid);
      walk = edges_[static_cast<size_t>(eid)].from;
    }
    std::reverse(path_pool_.begin() + off, path_pool_.end());
    const uint32_t len = static_cast<uint32_t>(path_pool_.size()) - off;
    it = path_cache_.emplace(key, std::make_pair(off, len)).first;
  }
  return PathView{path_pool_.data() + it->second.first, it->second.second};
}

void RoutedTopology::EnableSegmentCompression() {
  BULLET_CHECK(transit_stub_info() != nullptr &&
               "segment compression requires a TransitStub-built topology");
  BULLET_CHECK(!adj_built_ && "enable segment compression before the first route query");
  compress_segments_ = true;
  const size_t t = static_cast<size_t>(transit_stub_info_.num_transit_routers);
  segment_off_.assign(t * t, kSegmentUnset);
  segment_len_.assign(t * t, 0);
}

std::pair<uint32_t, uint32_t> RoutedTopology::TransitSegment(int32_t tr0, int32_t tr1) const {
  if (tr0 == tr1) {
    return {0, 0};  // both stubs hang off the same transit router
  }
  const size_t slot =
      static_cast<size_t>(tr0) * static_cast<size_t>(transit_stub_info_.num_transit_routers) +
      static_cast<size_t>(tr1);
  if (segment_off_[slot] == kSegmentUnset) {
    if (!routes_[static_cast<size_t>(tr0)].computed) {
      ComputeRoutesFrom(tr0);
    }
    const SourceRoutes& routes = routes_[static_cast<size_t>(tr0)];
    const uint32_t off = static_cast<uint32_t>(segment_pool_.size());
    int32_t walk = tr1;
    while (walk != tr0) {
      const int32_t eid = routes.prev_edge[static_cast<size_t>(walk)];
      BULLET_CHECK(eid >= 0 && "router graph does not connect the transit routers");
      segment_pool_.push_back(eid);
      walk = edges_[static_cast<size_t>(eid)].from;
    }
    std::reverse(segment_pool_.begin() + off, segment_pool_.end());
    segment_off_[slot] = off;
    segment_len_[slot] = static_cast<uint32_t>(segment_pool_.size()) - off;
  }
  return {segment_off_[slot], segment_len_[slot]};
}

Topology::PathView RoutedTopology::ComposedInteriorPath(int32_t r0, int32_t r1) const {
  const TransitStubInfo& ts = transit_stub_info_;
  const int d0 = ts.stub_domain_of_router(r0);
  const int d1 = ts.stub_domain_of_router(r1);
  BULLET_CHECK(d0 >= 0 && d1 >= 0 && "segment compression composes stub-attached nodes only");
  compose_scratch_.clear();
  const int32_t g0 = ts.gateway_router(d0);
  const int32_t g1 = ts.gateway_router(d1);
  if (d0 == d1) {
    // Same stub star: the unique simple path runs member -> gateway -> member
    // (the gateway's only other exit is its transit uplink, which cannot
    // re-enter the star without revisiting the gateway).
    if (r0 != g0) {
      compose_scratch_.push_back(ts.member_uplink_edge[static_cast<size_t>(r0)] + 1);
    }
    if (r1 != g1) {
      compose_scratch_.push_back(ts.member_uplink_edge[static_cast<size_t>(r1)]);
    }
  } else {
    // Cross-stub: up the star (if not at the gateway), up the gateway's single
    // transit uplink, across the shared transit segment, then mirror down.
    if (r0 != g0) {
      compose_scratch_.push_back(ts.member_uplink_edge[static_cast<size_t>(r0)] + 1);
    }
    compose_scratch_.push_back(ts.gateway_uplink_edge[static_cast<size_t>(d0)] + 1);
    const auto [off, len] = TransitSegment(ts.transit_router(d0), ts.transit_router(d1));
    compose_scratch_.insert(compose_scratch_.end(), segment_pool_.begin() + off,
                            segment_pool_.begin() + off + len);
    compose_scratch_.push_back(ts.gateway_uplink_edge[static_cast<size_t>(d1)]);
    if (r1 != g1) {
      compose_scratch_.push_back(ts.member_uplink_edge[static_cast<size_t>(r1)]);
    }
  }
  return PathView{compose_scratch_.data(), static_cast<uint32_t>(compose_scratch_.size())};
}

void RoutedTopology::PrewarmRoutes() const {
  if (!adj_built_) {
    BuildAdjacency();
  }
  if (compress_segments_) {
    // Only transit-router trees are needed (stub legs come straight from the
    // recorded build edges); warm one tree per transit router serving an
    // attached node's domain, then every segment between warmed routers so
    // the segment cache is read-only afterwards.
    const TransitStubInfo& ts = transit_stub_info_;
    for (const int32_t router : attach_) {
      if (router < 0) {
        continue;
      }
      const int d = ts.stub_domain_of_router(router);
      BULLET_CHECK(d >= 0 && "segment compression composes stub-attached nodes only");
      const int32_t tr = ts.transit_router(d);
      if (!routes_[static_cast<size_t>(tr)].computed) {
        ComputeRoutesFrom(tr);
      }
    }
    for (int32_t a = 0; a < ts.num_transit_routers; ++a) {
      if (!routes_[static_cast<size_t>(a)].computed) {
        continue;
      }
      for (int32_t b = 0; b < ts.num_transit_routers; ++b) {
        if (a != b && routes_[static_cast<size_t>(b)].computed) {
          TransitSegment(a, b);
        }
      }
    }
    // Size the compose scratch for the longest possible route (two stub legs,
    // two gateway uplinks, widest segment) so post-prewarm queries never
    // allocate and route_cache_bytes stays flat.
    uint32_t max_segment = 0;
    for (const uint32_t len : segment_len_) {
      max_segment = std::max(max_segment, len);
    }
    compose_scratch_.reserve(static_cast<size_t>(max_segment) + 4);
    return;
  }
  for (const int32_t router : attach_) {
    if (router >= 0 && !routes_[static_cast<size_t>(router)].computed) {
      ComputeRoutesFrom(router);
    }
  }
}

std::vector<SimTime> RoutedTopology::RouterDistancesFrom(
    const std::vector<int32_t>& sources) const {
  if (!adj_built_) {
    BuildAdjacency();
  }
  std::vector<SimTime> dist(static_cast<size_t>(num_routers_), -1);
  using QueueEntry = std::pair<SimTime, int32_t>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<QueueEntry>> heap;
  for (const int32_t src : sources) {
    BULLET_CHECK(static_cast<uint32_t>(src) < static_cast<uint32_t>(num_routers_));
    if (dist[static_cast<size_t>(src)] != 0) {
      dist[static_cast<size_t>(src)] = 0;
      heap.push({0, src});
    }
  }
  while (!heap.empty()) {
    const auto [d, router] = heap.top();
    heap.pop();
    const size_t ri = static_cast<size_t>(router);
    if (d != dist[ri]) {
      continue;
    }
    for (uint32_t off = adj_off_[ri]; off < adj_off_[ri + 1]; ++off) {
      const Edge& e = edges_[static_cast<size_t>(adj_edge_[off])];
      const size_t ti = static_cast<size_t>(e.to);
      const SimTime nd = d + e.params.delay;
      if (dist[ti] < 0 || nd < dist[ti]) {
        dist[ti] = nd;
        heap.push({nd, e.to});
      }
    }
  }
  return dist;
}

size_t RoutedTopology::MemoryFootprintBytes() const {
  return uplinks_.capacity() * sizeof(LinkParams) + downlinks_.capacity() * sizeof(LinkParams) +
         attach_.capacity() * sizeof(int32_t) + edges_.capacity() * sizeof(Edge);
}

size_t RoutedTopology::route_cache_bytes() const {
  // Per-pair map accounting is honest about container overhead: each hash node
  // carries the key/value pair plus a next pointer and an allocation header,
  // and the bucket array itself is resident memory. (The old formula counted
  // only key+value payload, so cache growth was under-reported by roughly the
  // bucket array plus one pointer-pair per routed pair.)
  constexpr size_t kMapNodeBytes =
      sizeof(std::pair<const int64_t, std::pair<uint32_t, uint32_t>>) + 2 * sizeof(void*);
  size_t bytes = adj_off_.capacity() * sizeof(uint32_t) + adj_edge_.capacity() * sizeof(int32_t) +
                 path_pool_.capacity() * sizeof(int32_t) +
                 routes_.capacity() * sizeof(SourceRoutes) +
                 path_cache_.size() * kMapNodeBytes +
                 path_cache_.bucket_count() * sizeof(void*) +
                 segment_off_.capacity() * sizeof(uint32_t) +
                 segment_len_.capacity() * sizeof(uint32_t) +
                 segment_pool_.capacity() * sizeof(int32_t) +
                 compose_scratch_.capacity() * sizeof(int32_t);
  for (const SourceRoutes& r : routes_) {
    bytes += r.prev_edge.capacity() * sizeof(int32_t);
  }
  return bytes;
}

RoutedTopology RoutedTopology::TransitStub(const TransitStubParams& p, Rng& rng) {
  BULLET_CHECK(p.num_nodes >= 1 && p.transit_domains >= 1 && p.routers_per_transit >= 1 &&
               p.stub_domains_per_transit_router >= 1 && p.routers_per_stub >= 1);
  const int num_transit = p.transit_domains * p.routers_per_transit;
  const int num_stub_domains = num_transit * p.stub_domains_per_transit_router;
  const int num_routers = num_transit + num_stub_domains * p.routers_per_stub;
  RoutedTopology topo(p.num_nodes, num_routers);

  for (NodeId n = 0; n < p.num_nodes; ++n) {
    topo.uplink(n) = LinkParams{p.access_bps, p.access_delay, 0.0};
    topo.downlink(n) = LinkParams{p.access_bps, p.access_delay, 0.0};
  }

  // Transit-tier links draw a per-duplex-link delay (symmetric, so routes are
  // direction-symmetric) and an optional loss rate.
  auto transit_link = [&rng, &p]() {
    LinkParams link;
    link.bandwidth_bps = p.transit_bps;
    link.delay = rng.UniformInt(p.transit_delay_min, p.transit_delay_max);
    link.loss_rate = p.transit_loss_min >= p.transit_loss_max
                         ? p.transit_loss_min
                         : rng.UniformDouble(p.transit_loss_min, p.transit_loss_max);
    return link;
  };

  // Intra-domain rings.
  for (int t = 0; t < p.transit_domains; ++t) {
    const int32_t base = t * p.routers_per_transit;
    const int k = p.routers_per_transit;
    if (k == 2) {
      topo.AddDuplexEdge(base, base + 1, transit_link());
    } else if (k > 2) {
      for (int i = 0; i < k; ++i) {
        topo.AddDuplexEdge(base + i, base + (i + 1) % k, transit_link());
      }
    }
  }
  // Inter-domain links between random representative routers of each domain pair.
  for (int i = 0; i < p.transit_domains; ++i) {
    for (int j = i + 1; j < p.transit_domains; ++j) {
      const int32_t a = i * p.routers_per_transit +
                        static_cast<int32_t>(rng.UniformInt(0, p.routers_per_transit - 1));
      const int32_t b = j * p.routers_per_transit +
                        static_cast<int32_t>(rng.UniformInt(0, p.routers_per_transit - 1));
      topo.AddDuplexEdge(a, b, transit_link());
    }
  }
  // Stub domains: stars whose gateway router uplinks to the transit router.
  topo.transit_stub_info_.num_transit_routers = num_transit;
  topo.transit_stub_info_.num_stub_domains = num_stub_domains;
  topo.transit_stub_info_.routers_per_stub = p.routers_per_stub;
  topo.transit_stub_info_.stub_domains_per_transit_router = p.stub_domains_per_transit_router;
  topo.transit_stub_info_.gateway_uplink_edge.reserve(static_cast<size_t>(num_stub_domains));
  topo.transit_stub_info_.member_uplink_edge.assign(static_cast<size_t>(num_routers), -1);
  std::vector<int32_t> stub_routers;
  stub_routers.reserve(static_cast<size_t>(num_stub_domains) *
                       static_cast<size_t>(p.routers_per_stub));
  int32_t next_router = num_transit;
  for (int tr = 0; tr < num_transit; ++tr) {
    for (int s = 0; s < p.stub_domains_per_transit_router; ++s) {
      const int32_t gateway = next_router;
      next_router += p.routers_per_stub;
      topo.transit_stub_info_.gateway_uplink_edge.push_back(topo.AddDuplexEdge(
          tr, gateway, LinkParams{p.transit_stub_bps, p.transit_stub_delay, 0.0}));
      stub_routers.push_back(gateway);
      for (int m = 1; m < p.routers_per_stub; ++m) {
        topo.transit_stub_info_.member_uplink_edge[static_cast<size_t>(gateway + m)] =
            topo.AddDuplexEdge(gateway, gateway + m, LinkParams{p.stub_bps, p.stub_delay, 0.0});
        stub_routers.push_back(gateway + m);
      }
    }
  }

  // Spread overlay nodes across stub routers: shuffled round robin, so domains
  // fill evenly but the node->stub mapping varies with the seed.
  rng.Shuffle(stub_routers);
  for (NodeId n = 0; n < p.num_nodes; ++n) {
    topo.AttachNode(n, stub_routers[static_cast<size_t>(n) % stub_routers.size()]);
  }
  return topo;
}

}  // namespace bullet
