// Ablations beyond the paper's figures, probing the design choices DESIGN.md calls
// out (all on the lossy Section 4.1 mesh), one scenario each:
//
//  * ablation_trim — trim threshold: the paper chose 1.5 sigma ("1 would lead to too
//    many nodes being closed whereas 2 would only permit a very few peers to ever be
//    closed"); we sweep {off, 1.0, 1.5, 2.0}.
//  * ablation_piggyback — Section 3.3.4's self-clocking diffs ride on data blocks;
//    piggyback budget 0 forces all availability onto explicit diff messages.
//  * ablation_source_push — round-robin (every block enters the overlay once before
//    any repeat) vs random child selection.

#include <string>

#include "src/harness/scenario_registry.h"

namespace bullet {
namespace {

ScenarioConfig MeshConfig(uint64_t seed, const ScenarioOptions& opts) {
  ScenarioConfig cfg;
  cfg.num_nodes = 100;
  cfg.file_mb = ScaledFileMb(100.0);
  cfg.seed = seed;
  ApplyScenarioOptions(opts, &cfg);
  return cfg;
}

BULLET_SCENARIO(ablation_trim, "Ablation — sender trim threshold (sigma sweep)") {
  const ScenarioConfig cfg = MeshConfig(2001, opts);
  ScenarioReport report(kScenarioName);
  for (const int tenths : {15, 10, 20, 0}) {  // 0 = trimming off
    BulletPrimeConfig bp;
    std::string name;
    if (tenths == 0) {
      bp.trim_stddevs = 1e9;  // never trims
      name = "trim off";
    } else {
      bp.trim_stddevs = tenths / 10.0;
      name = "trim " + std::to_string(tenths / 10.0).substr(0, 3) + " sigma";
    }
    report.AddCompletion(name, RunScenario("bullet-prime", cfg, bp));
  }
  return report;
}

BULLET_SCENARIO(ablation_piggyback, "Ablation — availability piggyback budget") {
  const ScenarioConfig cfg = MeshConfig(2002, opts);
  ScenarioReport report(kScenarioName);
  for (const int limit : {32, 8, 0}) {
    BulletPrimeConfig bp;
    bp.piggyback_limit = limit;
    report.AddCompletion("piggyback " + std::to_string(limit),
                         RunScenario("bullet-prime", cfg, bp));
  }
  return report;
}

BULLET_SCENARIO(ablation_source_push, "Ablation — source push order (round-robin vs random)") {
  const ScenarioConfig cfg = MeshConfig(2003, opts);
  ScenarioReport report(kScenarioName);
  for (const bool random : {false, true}) {
    BulletPrimeConfig bp;
    bp.source_random_push = random;
    report.AddCompletion(random ? "source random push" : "source round-robin push",
                         RunScenario("bullet-prime", cfg, bp));
  }
  return report;
}

}  // namespace
}  // namespace bullet
