// Fig. 18 (extension, no paper figure): flash crowd with staggered joins. The
// paper's premise is maintaining high bandwidth under *dynamic* conditions,
// but its experiments join every node at t=0; this scenario exercises the
// session API's join schedule — a small early cohort starts the transfer, then
// a crowd (80% of receivers by default; --join-fraction overrides) piles in
// mid-transfer. The control tree is join-staged (parents always join no later
// than their children) and completion is session-scoped, so the run ends when
// the *whole* session finishes, late joiners included.
//
// Reported series: absolute completion CDF over all receivers, plus the
// early/late cohorts' download times measured from each receiver's own join —
// the number a late joiner's user experiences. A healthy mesh keeps the late
// cohort's download time close to the early cohort's (the crowd bootstraps
// from many already-seeded peers) instead of serializing behind the source.

#include <algorithm>
#include <cmath>

#include "bench/session_common.h"
#include "src/harness/scenario_registry.h"

namespace bullet {
namespace {

BULLET_SCENARIO(fig18_flash_crowd, "Extension — flash crowd: 80% of nodes join mid-transfer") {
  ScenarioConfig cfg;
  cfg.num_nodes = 60;
  cfg.file_mb = ScaledFileMb(20.0);
  cfg.seed = 1801;
  ApplyScenarioOptions(opts, &cfg);

  const double late_fraction = cfg.join_fraction >= 0.0 ? cfg.join_fraction : 0.8;
  const int receivers = cfg.num_nodes - 1;
  const int late_count =
      std::min(receivers, static_cast<int>(std::lround(late_fraction * receivers)));
  // Mid-transfer: half the TCP-feasible time (transfer plus the ~12 s
  // tree/RanSub startup) lands inside the early cohort's downloads at any
  // REPRO_SCALE — the access-link optimum alone would undershoot, since real
  // completions carry the startup cost too.
  const double join_sec = 0.5 * TcpFeasibleSeconds(cfg.file_mb, 6e6, /*startup_sec=*/12.0);

  WorkloadSpec workload;
  SessionSpec session;
  session.protocol = ScenarioSystemOr(cfg, "bullet-prime");
  session.seed = cfg.seed;
  for (NodeId node = 0; node < cfg.num_nodes; ++node) {
    session.members.push_back(node);
    // The crowd is the high half of the id space; ids are interchangeable on
    // the scenario topologies, so which ids join late is immaterial.
    const bool late = node >= cfg.num_nodes - late_count;
    session.join_offsets.push_back(late ? SecToSim(join_sec) : 0);
  }
  workload.sessions.push_back(session);

  const WorkloadResult wl = RunScenarioWorkload(cfg, workload);
  const ScenarioResult result = ToScenarioResult(wl.sessions.front(), wl);

  ScenarioReport report(kScenarioName);
  report.AddCompletion(result.name, result);
  // download_sec is in member order with the source excluded: receivers
  // 1..n-1, so the late cohort is exactly the trailing late_count entries.
  std::vector<double> early(result.download_sec.begin(),
                            result.download_sec.end() - late_count);
  std::vector<double> late(result.download_sec.end() - late_count, result.download_sec.end());
  report.AddSeries(result.name + " early download", std::move(early));
  report.AddSeries(result.name + " late download", std::move(late));
  report.AddScalar("late_fraction", late_fraction);
  report.AddScalar("late_receivers", late_count);
  report.AddScalar("late_join_s", join_sec);
  report.AddScalar("sessions_completed", wl.sessions_completed);
  return report;
}

}  // namespace
}  // namespace bullet
