#include "src/harness/bench_check.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <vector>

namespace bullet {
namespace {

// Aggregate schemas the band gate accepts. v3 added deterministic counter
// metrics and (in profiled builds) per-point profile counts; the band
// comparison itself is unchanged, so either side may be either version.
constexpr const char* kAggregateSchemas[] = {"bullet-bench-v2", "bullet-bench-v3"};
constexpr char kFloorsSchema[] = "bullet-floors-v1";
constexpr char kCeilingsSchema[] = "bullet-ceilings-v1";

// Canonical identity of a grid point: its params object rendered "k=v,k=v".
// JsonValue objects are sorted maps, so equal param sets render identically no
// matter what order the axes were declared in.
std::string PointKey(const JsonValue& point) {
  const JsonValue* params = point.Find("params");
  std::string key;
  if (params == nullptr || !params->is_object()) {
    return key;
  }
  for (const auto& [name, value] : params->object()) {
    if (!key.empty()) {
      key += ',';
    }
    key += name + '=';
    if (value.is_string()) {
      // String axes (e.g. churn-model) key on the literal label.
      key += value.str();
    } else {
      std::ostringstream os;
      // max_digits10 keeps keys injective: default 6-digit precision would
      // alias points whose values differ only past the sixth significant digit.
      os << std::setprecision(std::numeric_limits<double>::max_digits10) << value.number();
      key += os.str();
    }
  }
  return key;
}

bool CheckSchema(const JsonValue& doc, const char* which, const char* expected_schema,
                 std::ostream& log) {
  if (!doc.is_object()) {
    log << "bench_check: " << which << " is not a JSON object\n";
    return false;
  }
  const std::string schema = doc.StringOr("schema", "");
  bool accepted = false;
  if (expected_schema != nullptr) {
    accepted = schema == expected_schema;
  } else {
    for (const char* s : kAggregateSchemas) {
      accepted = accepted || schema == s;
    }
  }
  if (!accepted) {
    log << "bench_check: " << which << " has schema '" << schema << "', expected '"
        << (expected_schema != nullptr ? expected_schema : "bullet-bench-v2/-v3") << "'\n";
    return false;
  }
  const JsonValue* points = doc.Find("points");
  if (points == nullptr || !points->is_array()) {
    log << "bench_check: " << which << " has no points array\n";
    return false;
  }
  return true;
}

// Scenario / seed / repeats / repro_scale identity shared by both modes.
bool CheckComparable(const JsonValue& baseline, const JsonValue& current, std::ostream& log) {
  const std::string base_scenario = baseline.StringOr("scenario", "");
  const std::string cur_scenario = current.StringOr("scenario", "");
  if (base_scenario != cur_scenario) {
    log << "bench_check: scenario mismatch: baseline '" << base_scenario << "' vs current '"
        << cur_scenario << "'\n";
    return false;
  }
  // Sweeps with different seeds, repeat counts or REPRO_SCALE are measuring
  // different things; diagnose that as incomparable input rather than flooding
  // the log with tolerance failures.
  for (const char* field : {"base_seed", "repeats", "repro_scale"}) {
    const JsonValue* base_v = baseline.Find(field);
    const JsonValue* cur_v = current.Find(field);
    if (base_v != nullptr && cur_v != nullptr && base_v->is_number() && cur_v->is_number() &&
        base_v->number() != cur_v->number()) {
      log << "bench_check: " << field << " mismatch: baseline " << base_v->number()
          << " vs current " << cur_v->number() << " — regenerate the baseline or fix the "
          << "sweep invocation\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int CompareFloorDocs(const JsonValue& baseline, const JsonValue& current, std::ostream& log) {
  if (!CheckSchema(baseline, "baseline", kFloorsSchema, log) ||
      !CheckSchema(current, "current", kFloorsSchema, log)) {
    return kBenchCheckBadInput;
  }
  if (!CheckComparable(baseline, current, log)) {
    return kBenchCheckBadInput;
  }

  std::map<std::string, const JsonValue*> current_points;
  for (const JsonValue& point : current.Find("points")->array()) {
    current_points[PointKey(point)] = &point;
  }

  int checked = 0;
  int failed = 0;
  for (const JsonValue& base_point : baseline.Find("points")->array()) {
    const std::string key = PointKey(base_point);
    const auto cur_it = current_points.find(key);
    if (cur_it == current_points.end()) {
      log << "FAIL point {" << key << "}: missing from current floors\n";
      ++failed;
      continue;
    }
    const JsonValue* base_floors = base_point.Find("floors");
    if (base_floors == nullptr || !base_floors->is_object()) {
      log << "bench_check: baseline point {" << key << "} has no floors object\n";
      return kBenchCheckBadInput;
    }
    const JsonValue* cur_floors = cur_it->second->Find("floors");
    for (const auto& [name, floor] : base_floors->object()) {
      if (!floor.is_number()) {
        continue;
      }
      ++checked;
      const JsonValue* cur_v = cur_floors != nullptr ? cur_floors->Find(name) : nullptr;
      if (cur_v == nullptr || !cur_v->is_number()) {
        log << "FAIL point {" << key << "} " << name << ": metric missing from current floors\n";
        ++failed;
        continue;
      }
      if (cur_v->number() < floor.number()) {
        log << "FAIL point {" << key << "} " << name << ": current " << cur_v->number()
            << " below floor " << floor.number() << "\n";
        ++failed;
      }
    }
  }

  log << "bench_check: " << checked << " throughput floors checked, " << failed << " below floor\n";
  return failed == 0 ? kBenchCheckOk : kBenchCheckRegression;
}

int CompareCeilingDocs(const JsonValue& baseline, const JsonValue& current, std::ostream& log) {
  if (!CheckSchema(baseline, "baseline", kCeilingsSchema, log) ||
      !CheckSchema(current, "current", kCeilingsSchema, log)) {
    return kBenchCheckBadInput;
  }
  if (!CheckComparable(baseline, current, log)) {
    return kBenchCheckBadInput;
  }

  std::map<std::string, const JsonValue*> current_points;
  for (const JsonValue& point : current.Find("points")->array()) {
    current_points[PointKey(point)] = &point;
  }

  int checked = 0;
  int failed = 0;
  for (const JsonValue& base_point : baseline.Find("points")->array()) {
    const std::string key = PointKey(base_point);
    const auto cur_it = current_points.find(key);
    if (cur_it == current_points.end()) {
      log << "FAIL point {" << key << "}: missing from current ceilings\n";
      ++failed;
      continue;
    }
    const JsonValue* base_ceilings = base_point.Find("ceilings");
    if (base_ceilings == nullptr || !base_ceilings->is_object()) {
      log << "bench_check: baseline point {" << key << "} has no ceilings object\n";
      return kBenchCheckBadInput;
    }
    const JsonValue* cur_ceilings = cur_it->second->Find("ceilings");
    for (const auto& [name, ceiling] : base_ceilings->object()) {
      if (!ceiling.is_number()) {
        continue;
      }
      ++checked;
      const JsonValue* cur_v = cur_ceilings != nullptr ? cur_ceilings->Find(name) : nullptr;
      if (cur_v == nullptr || !cur_v->is_number()) {
        log << "FAIL point {" << key << "} " << name
            << ": metric missing from current ceilings\n";
        ++failed;
        continue;
      }
      if (cur_v->number() > ceiling.number()) {
        log << "FAIL point {" << key << "} " << name << ": current " << cur_v->number()
            << " above ceiling " << ceiling.number() << "\n";
        ++failed;
      }
    }
  }

  log << "bench_check: " << checked << " memory ceilings checked, " << failed
      << " above ceiling\n";
  return failed == 0 ? kBenchCheckOk : kBenchCheckRegression;
}

int CompareSweepDocs(const JsonValue& baseline, const JsonValue& current,
                     const BenchCheckOptions& opts, std::ostream& log) {
  // A floors baseline selects the one-sided throughput gate; a ceilings
  // baseline the one-sided memory gate.
  if (baseline.is_object() && baseline.StringOr("schema", "") == kFloorsSchema) {
    return CompareFloorDocs(baseline, current, log);
  }
  if (baseline.is_object() && baseline.StringOr("schema", "") == kCeilingsSchema) {
    return CompareCeilingDocs(baseline, current, log);
  }
  if (!CheckSchema(baseline, "baseline", nullptr, log) ||
      !CheckSchema(current, "current", nullptr, log)) {
    return kBenchCheckBadInput;
  }
  if (!CheckComparable(baseline, current, log)) {
    return kBenchCheckBadInput;
  }

  std::map<std::string, const JsonValue*> current_points;
  for (const JsonValue& point : current.Find("points")->array()) {
    current_points[PointKey(point)] = &point;
  }

  int checked = 0;
  int failed = 0;
  for (const JsonValue& base_point : baseline.Find("points")->array()) {
    const std::string key = PointKey(base_point);
    const auto cur_it = current_points.find(key);
    if (cur_it == current_points.end()) {
      log << "FAIL point {" << key << "}: missing from current sweep\n";
      ++failed;
      continue;
    }
    const JsonValue* base_metrics = base_point.Find("metrics");
    const JsonValue* cur_metrics = cur_it->second->Find("metrics");
    if (base_metrics == nullptr || !base_metrics->is_object()) {
      log << "bench_check: baseline point {" << key << "} has no metrics object\n";
      return kBenchCheckBadInput;
    }
    for (const auto& [name, band] : base_metrics->object()) {
      const JsonValue* base_median = band.Find("median");
      if (base_median == nullptr || !base_median->is_number()) {
        continue;  // non-numeric medians (e.g. null from a non-finite value) are not gated
      }
      ++checked;
      const JsonValue* cur_band = cur_metrics != nullptr ? cur_metrics->Find(name) : nullptr;
      const JsonValue* cur_median = cur_band != nullptr ? cur_band->Find("median") : nullptr;
      if (cur_median == nullptr || !cur_median->is_number()) {
        log << "FAIL point {" << key << "} " << name << ": metric missing from current sweep\n";
        ++failed;
        continue;
      }
      const auto tol_it = opts.metric_rel_tol.find(name);
      const double rel = tol_it != opts.metric_rel_tol.end() ? tol_it->second : opts.rel_tol;
      const double base_v = base_median->number();
      const double cur_v = cur_median->number();
      const double band_width = std::max(opts.abs_tol, rel * std::fabs(base_v));
      const double diff = std::fabs(cur_v - base_v);
      if (diff > band_width) {
        log << "FAIL point {" << key << "} " << name << ": baseline " << base_v << " current "
            << cur_v << " (|diff| " << diff << " > tol " << band_width << ")\n";
        ++failed;
      }
    }
  }

  log << "bench_check: " << checked << " metric medians checked, " << failed
      << " out of tolerance\n";
  return failed == 0 ? kBenchCheckOk : kBenchCheckRegression;
}

int CompareSweepFiles(const std::string& baseline_path, const std::string& current_path,
                      const BenchCheckOptions& opts, std::ostream& log, std::ostream& err) {
  const auto load = [&err](const std::string& path, JsonValue* out) {
    std::ifstream in(path);
    if (!in) {
      err << "bench_check: cannot read " << path << "\n";
      return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    if (!ParseJson(buffer.str(), out, &error)) {
      err << "bench_check: " << path << ": " << error << "\n";
      return false;
    }
    return true;
  };
  JsonValue baseline;
  JsonValue current;
  if (!load(baseline_path, &baseline) || !load(current_path, &current)) {
    return kBenchCheckBadInput;
  }
  return CompareSweepDocs(baseline, current, opts, log);
}

}  // namespace bullet
