// The emulated network: reliable, ordered, byte-accounted connections between overlay
// nodes, with bandwidth shared max-min across all concurrently active flows and TCP
// behaviour approximated per flow (see tcp_model.h).
//
// Protocols interact with the network exclusively through:
//   Connect / Close  — connection lifecycle (establishment costs 1.5 RTT, like TCP
//                      handshake plus first application write),
//   Send             — enqueue a typed message on a connection,
//   NetHandler       — callbacks for connection up/down and message delivery.
//
// Every `quantum` of simulated time the network recomputes flow rates (a flow is a
// connection direction with queued bytes) and advances transmissions. Completed
// messages are delivered after the path's propagation delay, plus a retransmission
// penalty drawn from the path loss rate; deliveries on one direction are in order.

#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/event_queue.h"
#include "src/sim/tcp_model.h"
#include "src/sim/time.h"
#include "src/sim/topology.h"

namespace bullet {

using ConnId = int64_t;

// Base class for all protocol messages. `wire_bytes` must include the protocol's own
// header estimate; the network charges exactly this many bytes of link bandwidth.
struct Message {
  virtual ~Message() = default;
  int type = 0;
  int64_t wire_bytes = 0;
};

class NetHandler {
 public:
  virtual ~NetHandler() = default;
  // `initiator` is true at the node that called Connect().
  virtual void OnConnUp(ConnId /*conn*/, NodeId /*peer*/, bool /*initiator*/) {}
  virtual void OnConnDown(ConnId /*conn*/, NodeId /*peer*/) {}
  virtual void OnMessage(ConnId conn, NodeId from, std::unique_ptr<Message> msg) = 0;
};

struct NetworkConfig {
  SimTime quantum = MsToSim(10);
  TcpModelParams tcp;
  // Model the extra delivery latency of messages that suffer packet loss (TCP
  // retransmission + head-of-line blocking). Throughput loss is modelled separately
  // via the Mathis cap; this term affects message latency, which is what makes
  // availability information stale on lossy paths (Section 4.3).
  bool loss_latency = true;
};

class Network {
 public:
  Network(Topology topology, NetworkConfig config, uint64_t seed);

  EventQueue& queue() { return queue_; }
  SimTime now() const { return queue_.now(); }
  Topology& topology() { return topology_; }
  Rng& rng() { return rng_; }
  int num_nodes() const { return topology_.num_nodes(); }

  void SetHandler(NodeId node, NetHandler* handler);

  // Opens a connection from `from` to `to`. Both ends receive OnConnUp after
  // establishment. Messages may be sent immediately; they queue until established.
  ConnId Connect(NodeId from, NodeId to);

  // Closes the connection. The remote end receives OnConnDown after one path delay;
  // all queued and in-flight messages are dropped.
  void Close(ConnId conn);
  bool IsOpen(ConnId conn) const;

  // Enqueues a message from `from` on the connection. Returns false (and drops) if
  // the connection is closed or `from` is not an endpoint.
  bool Send(ConnId conn, NodeId from, std::unique_ptr<Message> msg);

  // Fails the node: every connection touching it closes (peers learn through
  // OnConnDown after the usual delay) and future Connect() calls involving it are
  // refused. Used by churn experiments; a failed node's protocol object survives but
  // is cut off. Idempotent.
  void FailNode(NodeId node);
  bool IsNodeFailed(NodeId node) const { return failed_[static_cast<size_t>(node)] != 0; }

  // Introspection used by protocol flow control (Bullet' measures its send queue to
  // report `in_front` and `wasted`, Section 3.3.3).
  size_t QueuedMessages(ConnId conn, NodeId from) const;
  int64_t QueuedBytes(ConnId conn, NodeId from) const;
  // Time since this direction last transmitted its final queued byte; 0 if busy.
  SimTime IdleTime(ConnId conn, NodeId from) const;
  // Most recent allocated rate for this direction, bits/second.
  double CurrentRateBps(ConnId conn, NodeId from) const;

  // Per-node totals (all message kinds), counted at transmission completion.
  int64_t node_bytes_sent(NodeId n) const { return tx_bytes_[static_cast<size_t>(n)]; }
  int64_t node_bytes_received(NodeId n) const { return rx_bytes_[static_cast<size_t>(n)]; }

  // Runs the simulation until `until` or Stop().
  void Run(SimTime until);
  void Stop() { queue_.Stop(); }

 private:
  struct QueuedMsg {
    std::unique_ptr<Message> msg;
    double remaining_bytes = 0.0;
  };

  struct Direction {
    std::deque<QueuedMsg> queue;
    int64_t queued_bytes = 0;
    double rate_bps = 0.0;
    TcpFlowState tcp;
    SimTime delivery_floor = 0;  // enforces in-order delivery
    SimTime idle_since = 0;      // valid when queue is empty
  };

  struct Conn {
    NodeId node[2] = {-1, -1};
    Direction dir[2];  // dir[i] carries node[i] -> node[1-i]
    bool established = false;
    bool closed = false;
  };

  Conn* GetConn(ConnId id);
  const Conn* GetConn(ConnId id) const;
  // Returns 0 or 1: which endpoint `node` is; -1 if neither.
  static int EndpointIndex(const Conn& c, NodeId node);

  void ScheduleTick();
  void Tick();
  void DeliverMessage(ConnId conn_id, int receiver_idx, std::unique_ptr<Message> msg);
  void EnqueueDelivery(ConnId conn_id, Conn& c, int sender_idx, std::unique_ptr<Message> msg);

  Topology topology_;
  NetworkConfig config_;
  Rng rng_;
  EventQueue queue_;

  std::vector<NetHandler*> handlers_;
  std::vector<std::unique_ptr<Conn>> conns_;  // indexed by ConnId, never reused
  std::vector<ConnId> open_conns_;            // compacted lazily during ticks

  std::vector<int64_t> tx_bytes_;
  std::vector<int64_t> rx_bytes_;
  std::vector<char> failed_;

  SimTime last_tick_ = 0;
  bool tick_scheduled_ = false;
};

}  // namespace bullet

#endif  // SRC_SIM_NETWORK_H_
