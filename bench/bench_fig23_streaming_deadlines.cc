// Fig. 23 (extension, no paper figure): playback-deadline (streaming)
// dissemination — the source releases positions at the stream bitrate, every
// receiver plays them in order after a startup buffer, and requests are
// confined to a sliding window ahead of the playhead (request_strategy
// PickWindowed; rarest-random applies *within* the window for Bullet').
// Late joiners tune in at the live edge rather than fetching from block 0.
//
// The figures of merit shift from download time to rebuffer/stall seconds and
// blocks that miss their fixed playback deadline, reported per system for
// Bullet', BitTorrent (window-filtered piece picking) and the repaired
// SplitStream (stripe forest reparenting, paced encoded source). Sweepable:
// --stream-window-blocks x --nodes x --loss (plus --stream-bitrate-mbps).

#include <memory>
#include <string>
#include <vector>

#include "src/harness/scenario_registry.h"
#include "src/harness/workload_gen.h"

namespace bullet {
namespace {

BULLET_SCENARIO(fig23_streaming_deadlines,
                "Extension — streaming playback deadlines: stall time and late blocks") {
  ScenarioConfig cfg;
  cfg.num_nodes = 100;
  cfg.file_mb = ScaledFileMb(50.0);
  cfg.seed = 2301;
  ApplyScenarioOptions(opts, &cfg);

  StreamingSpec stream;
  if (cfg.stream_bitrate_mbps > 0) {
    stream.bitrate_mbps = cfg.stream_bitrate_mbps;
  }
  if (cfg.stream_window_blocks > 0) {
    stream.window_blocks = cfg.stream_window_blocks;
  }

  // Receivers tune in over the first ~30 seconds of the stream under the
  // diurnal rate curve, so the late ones exercise the live-edge catch-up path.
  // Shared across systems: every run sees the same arrival process.
  const auto arrivals = std::make_shared<DiurnalArrivals>(
      (cfg.num_nodes - 1) / 30.0, /*amplitude=*/0.8, /*period=*/SecToSim(60.0));

  ScenarioReport report(kScenarioName);
  for (const char* system : {"bullet-prime", "bittorrent", "splitstream"}) {
    WorkloadSpec workload;
    SessionSpec session;
    session.protocol = system;
    session.source = 0;
    session.seed = cfg.seed;
    session.arrivals = arrivals;
    session.streaming = stream;
    workload.sessions.push_back(std::move(session));

    const WorkloadResult wl = RunScenarioWorkload(cfg, workload);
    const SessionResult& r = wl.sessions.front();
    report.AddCompletion(ToScenarioResult(r, wl));
    report.AddSeries(r.name + " stall", r.stall_sec);
    std::vector<double> missed(r.missed_deadline.begin(), r.missed_deadline.end());
    report.AddSeries(r.name + " missed", std::move(missed));
    // Underscored keys: metric names are dotted with the series name downstream.
    const std::string key = std::string(system) == "bullet-prime" ? "bullet_prime"
                                                                  : std::string(system);
    report.AddScalar(key + "_stall_sec_total", r.total_stall_sec);
    report.AddScalar(key + "_missed_deadline_total", r.total_missed_deadline);
    report.AddScalar(key + "_playback_finished", r.playback_finished);
  }
  report.AddScalar("stream_bitrate_mbps", stream.bitrate_mbps);
  report.AddScalar("stream_window_blocks", stream.window_blocks);
  report.AddScalar("stream_startup_buffer_s", stream.startup_buffer_sec);
  return report;
}

}  // namespace
}  // namespace bullet
