#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace bullet {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(300, [&] { order.push_back(3); });
  q.Schedule(100, [&] { order.push_back(1); });
  q.Schedule(200, [&] { order.push_back(2); });
  q.RunUntil(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 1000);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(50, [&order, i] { order.push_back(i); });
  }
  q.RunUntil(100);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.Schedule(100, [&] { ++fired; });
  q.Schedule(200, [&] { ++fired; });
  q.RunUntil(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 100);
  q.RunUntil(300);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, PastSchedulingClampsToNow) {
  EventQueue q;
  q.Schedule(100, [] {});
  q.RunUntil(100);
  SimTime fired_at = -1;
  q.Schedule(50, [&] { fired_at = q.now(); });  // in the past
  q.RunUntil(200);
  EXPECT_EQ(fired_at, 100);
}

TEST(EventQueue, Cancel) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.Schedule(100, [&] { ++fired; });
  q.Schedule(200, [&] { ++fired; });
  q.Cancel(id);
  q.RunUntil(1000);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelUnknownIsNoop) {
  EventQueue q;
  q.Cancel(9999);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueue, StopInsideEvent) {
  EventQueue q;
  int fired = 0;
  q.Schedule(100, [&] {
    ++fired;
    q.Stop();
  });
  q.Schedule(200, [&] { ++fired; });
  q.RunUntil(1000);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.stopped());
  // Resumable after stop.
  q.RunUntil(1000);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<SimTime> fire_times;
  std::function<void()> chain = [&] {
    fire_times.push_back(q.now());
    if (fire_times.size() < 5) {
      q.ScheduleAfter(10, chain);
    }
  };
  q.Schedule(0, chain);
  q.RunUntil(1000);
  EXPECT_EQ(fire_times, (std::vector<SimTime>{0, 10, 20, 30, 40}));
}

TEST(EventQueue, PendingCount) {
  EventQueue q;
  EXPECT_EQ(q.pending(), 0u);
  const EventId a = q.Schedule(10, [] {});
  q.Schedule(20, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.pending(), 1u);
}

}  // namespace
}  // namespace bullet
