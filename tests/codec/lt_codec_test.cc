#include "src/codec/lt_codec.h"

#include <gtest/gtest.h>

#include <tuple>

#include "src/codec/degree_distribution.h"
#include "src/common/rng.h"

namespace bullet {
namespace {

std::vector<uint8_t> RandomFile(size_t bytes, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data(bytes);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

TEST(RobustSoliton, PmfSumsToOne) {
  for (const uint32_t n : {16u, 100u, 1000u}) {
    RobustSoliton rs(n);
    double total = 0.0;
    for (uint32_t d = 1; d <= n; ++d) {
      total += rs.pmf(d);
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "n=" << n;
  }
}

TEST(RobustSoliton, DegreeOneHasMass) {
  RobustSoliton rs(1000);
  // The robust correction guarantees a healthy supply of degree-1 blocks — the
  // paper notes decoding cannot start without them.
  EXPECT_GT(rs.pmf(1), 0.005);
}

TEST(RobustSoliton, DegreeTwoDominates) {
  RobustSoliton rs(1000);
  // Ideal soliton: rho(2) = 1/2; robust keeps degree 2 the modal degree.
  for (uint32_t d = 3; d <= 10; ++d) {
    EXPECT_GT(rs.pmf(2), rs.pmf(d));
  }
}

TEST(RobustSoliton, SamplesInRange) {
  RobustSoliton rs(500);
  Rng rng(1);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const uint32_t d = rs.Sample(rng);
    EXPECT_GE(d, 1u);
    EXPECT_LE(d, 500u);
    sum += d;
  }
  EXPECT_NEAR(sum / 20000.0, rs.expected_degree(), rs.expected_degree() * 0.1);
}

TEST(Composition, DeterministicAndDistinct) {
  RobustSoliton rs(256);
  const auto a = EncodedComposition(42, 256, rs, 7);
  const auto b = EncodedComposition(42, 256, rs, 7);
  EXPECT_EQ(a, b);
  const auto c = EncodedComposition(43, 256, rs, 7);
  EXPECT_TRUE(a != c || a.size() != c.size());
  // Indices are distinct and sorted.
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_LT(a[i - 1], a[i]);
  }
}

TEST(Encoder, PadsShortFiles) {
  LtEncoder enc(RandomFile(1000, 1), 256);
  EXPECT_EQ(enc.num_blocks(), 4u);  // 1000 -> 1024 padded
  EXPECT_EQ(enc.Encode(0).size(), 256u);
}

// Parameterized roundtrip: (num source blocks, block bytes, seed).
class LtRoundtrip : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LtRoundtrip, DecodesWithBoundedOverhead) {
  const auto [blocks, block_bytes, seed] = GetParam();
  const size_t file_bytes = static_cast<size_t>(blocks) * static_cast<size_t>(block_bytes);
  const auto file = RandomFile(file_bytes, static_cast<uint64_t>(seed));

  LtEncoder enc(file, static_cast<size_t>(block_bytes));
  LtDecoder dec(enc.num_blocks(), static_cast<size_t>(block_bytes));

  uint32_t sent = 0;
  while (!dec.complete() && sent < enc.num_blocks() * 3) {
    dec.AddEncoded(sent, enc.Encode(sent));
    ++sent;
  }
  ASSERT_TRUE(dec.complete()) << "decode failed after 3n blocks";
  EXPECT_EQ(dec.Reconstruct(static_cast<int64_t>(file_bytes)), file);

  // Reception overhead: the paper reports ~4%; small n needs more slack, so bound
  // loosely but meaningfully.
  const double overhead =
      static_cast<double>(sent) / static_cast<double>(enc.num_blocks()) - 1.0;
  EXPECT_LT(overhead, 0.60) << "sent=" << sent << " n=" << enc.num_blocks();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LtRoundtrip,
    ::testing::Values(std::make_tuple(16, 64, 1), std::make_tuple(64, 64, 2),
                      std::make_tuple(100, 256, 3), std::make_tuple(256, 128, 4),
                      std::make_tuple(500, 64, 5), std::make_tuple(1000, 32, 6),
                      std::make_tuple(1000, 32, 7), std::make_tuple(2000, 16, 8)));

TEST(LtDecoder, ProgressCurveShowsDecodeCliff) {
  // "Even with n received blocks, only ~30 percent of the file content can be
  // reconstructed" — the decode-progress curve must be heavily back-loaded.
  const uint32_t n = 1000;
  LtEncoder enc(RandomFile(n * 32, 9), 32);
  LtDecoder dec(n, 32);
  for (uint32_t id = 0; !dec.complete() && id < 3 * n; ++id) {
    dec.AddEncoded(id, enc.Encode(id));
  }
  ASSERT_TRUE(dec.complete());
  const auto& progress = dec.progress();
  ASSERT_GE(progress.size(), n);
  const double at_n = static_cast<double>(progress[n - 1]) / n;
  EXPECT_LT(at_n, 0.75) << "decoding completed suspiciously early";
  const double at_80pct = static_cast<double>(progress[static_cast<size_t>(0.8 * n)]) / n;
  EXPECT_LT(at_80pct, 0.35);
}

TEST(LtDecoder, DuplicateBlocksAreHarmless) {
  const uint32_t n = 64;
  LtEncoder enc(RandomFile(n * 64, 10), 64);
  LtDecoder dec(n, 64);
  for (uint32_t id = 0; !dec.complete() && id < 3 * n; ++id) {
    dec.AddEncoded(id, enc.Encode(id));
    dec.AddEncoded(id, enc.Encode(id));  // duplicate feed
  }
  EXPECT_TRUE(dec.complete());
  EXPECT_EQ(dec.Reconstruct(), std::vector<uint8_t>(RandomFile(n * 64, 10)));
}

TEST(LtDecoder, OutOfOrderDelivery) {
  const uint32_t n = 128;
  const auto file = RandomFile(n * 32, 11);
  LtEncoder enc(file, 32);
  LtDecoder dec(n, 32);
  // Feed ids in a scrambled order (mesh delivery is not sequential).
  std::vector<uint32_t> ids;
  for (uint32_t id = 0; id < 3 * n; ++id) {
    ids.push_back(id);
  }
  Rng rng(12);
  rng.Shuffle(ids);
  for (const uint32_t id : ids) {
    if (dec.complete()) {
      break;
    }
    dec.AddEncoded(id, enc.Encode(id));
  }
  ASSERT_TRUE(dec.complete());
  EXPECT_EQ(dec.Reconstruct(static_cast<int64_t>(file.size())), file);
}

TEST(LtDecoder, ReconstructIncompleteReturnsEmpty) {
  LtDecoder dec(64, 32);
  EXPECT_TRUE(dec.Reconstruct().empty());
}

}  // namespace
}  // namespace bullet
