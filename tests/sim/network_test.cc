#include "src/sim/network.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/dynamics.h"

namespace bullet {
namespace {

struct TestMsg : Message {
  int id = 0;
  TestMsg(int i, int64_t bytes) : id(i) {
    type = 1;
    wire_bytes = bytes;
  }
};

class Recorder : public NetHandler {
 public:
  struct Event {
    enum class Kind { kUp, kDown, kMsg };
    Kind kind;
    ConnId conn;
    NodeId peer;
    bool initiator = false;
    int msg_id = 0;
    SimTime at = 0;
  };

  explicit Recorder(Network* net) : net_(net) {}

  void OnConnUp(ConnId conn, NodeId peer, bool initiator) override {
    events.push_back({Event::Kind::kUp, conn, peer, initiator, 0, net_->now()});
  }
  void OnConnDown(ConnId conn, NodeId peer) override {
    events.push_back({Event::Kind::kDown, conn, peer, false, 0, net_->now()});
  }
  void OnMessage(ConnId conn, NodeId from, std::unique_ptr<Message> msg) override {
    events.push_back(
        {Event::Kind::kMsg, conn, from, false, static_cast<TestMsg&>(*msg).id, net_->now()});
  }

  std::vector<Event> events;

 private:
  Network* net_;
};

// Two nodes, symmetric 8 Mbps links with 10 ms one-way delay, lossless.
Network MakeTwoNodeNet(double bps = 8e6, SimTime delay = MsToSim(10)) {
  MeshTopology topo(2);
  for (NodeId n = 0; n < 2; ++n) {
    topo.uplink(n) = LinkParams{bps, MsToSim(0), 0.0};
    topo.downlink(n) = LinkParams{bps, MsToSim(0), 0.0};
  }
  topo.core(0, 1) = LinkParams{bps, delay, 0.0};
  topo.core(1, 0) = LinkParams{bps, delay, 0.0};
  NetworkConfig config;
  config.quantum = MsToSim(10);
  return Network(std::move(topo), config, 77);
}

TEST(Network, ConnectionEstablishesAfterHandshake) {
  Network net = MakeTwoNodeNet();
  Recorder h0(&net);
  Recorder h1(&net);
  net.SetHandler(0, &h0);
  net.SetHandler(1, &h1);

  net.Connect(0, 1);
  net.Run(SecToSim(1.0));

  ASSERT_EQ(h0.events.size(), 1u);
  ASSERT_EQ(h1.events.size(), 1u);
  EXPECT_EQ(h0.events[0].kind, Recorder::Event::Kind::kUp);
  EXPECT_TRUE(h0.events[0].initiator);
  EXPECT_FALSE(h1.events[0].initiator);
  // Handshake = 1.5 RTT = 1.5 * 2 * 10 ms one-way.
  EXPECT_EQ(h0.events[0].at, MsToSim(30));
}

TEST(Network, SelfConnectionRejected) {
  Network net = MakeTwoNodeNet();
  EXPECT_EQ(net.Connect(0, 0), -1);
}

TEST(Network, MessageDeliveredWithTransmissionAndPropagation) {
  Network net = MakeTwoNodeNet(8e6, MsToSim(10));
  Recorder h0(&net);
  Recorder h1(&net);
  net.SetHandler(0, &h0);
  net.SetHandler(1, &h1);
  const ConnId conn = net.Connect(0, 1);
  // 100 KB at 8 Mbps = 100 ms transmission + 20 ms one-way + handshake 60 ms.
  net.Send(conn, 0, std::make_unique<TestMsg>(1, 100 * 1000));
  net.Run(SecToSim(5.0));

  ASSERT_EQ(h1.events.size(), 2u);  // up + msg
  const auto& msg = h1.events[1];
  EXPECT_EQ(msg.kind, Recorder::Event::Kind::kMsg);
  EXPECT_EQ(msg.msg_id, 1);
  // Handshake 30 ms + transmission 100 ms + propagation 10 ms = 140 ms minimum;
  // slow start delays the early bytes somewhat.
  EXPECT_GE(msg.at, MsToSim(140));
  EXPECT_LE(msg.at, MsToSim(450));
}

TEST(Network, ThroughputMatchesLinkRate) {
  Network net = MakeTwoNodeNet(8e6, MsToSim(5));
  Recorder h0(&net);
  Recorder h1(&net);
  net.SetHandler(0, &h0);
  net.SetHandler(1, &h1);
  const ConnId conn = net.Connect(0, 1);
  // 4 MB at 8 Mbps ~ 4 s of transmission once past slow start.
  constexpr int kMessages = 40;
  for (int i = 0; i < kMessages; ++i) {
    net.Send(conn, 0, std::make_unique<TestMsg>(i, 100 * 1000));
  }
  net.Run(SecToSim(60.0));
  int delivered = 0;
  SimTime last = 0;
  for (const auto& e : h1.events) {
    if (e.kind == Recorder::Event::Kind::kMsg) {
      ++delivered;
      last = e.at;
    }
  }
  EXPECT_EQ(delivered, kMessages);
  const double expected_sec = kMessages * 100.0 * 1000.0 * 8.0 / 8e6;
  EXPECT_NEAR(SimToSec(last), expected_sec, expected_sec * 0.25);
}

TEST(Network, InOrderDelivery) {
  Network net = MakeTwoNodeNet();
  Recorder h0(&net);
  Recorder h1(&net);
  net.SetHandler(0, &h0);
  net.SetHandler(1, &h1);
  const ConnId conn = net.Connect(0, 1);
  for (int i = 0; i < 50; ++i) {
    net.Send(conn, 0, std::make_unique<TestMsg>(i, 1000 + i * 100));
  }
  net.Run(SecToSim(30.0));
  int expected = 0;
  for (const auto& e : h1.events) {
    if (e.kind == Recorder::Event::Kind::kMsg) {
      EXPECT_EQ(e.msg_id, expected++);
    }
  }
  EXPECT_EQ(expected, 50);
}

TEST(Network, LossyPathStillDeliversInOrder) {
  MeshTopology topo(2);
  for (NodeId n = 0; n < 2; ++n) {
    topo.uplink(n) = LinkParams{8e6, MsToSim(0), 0.0};
    topo.downlink(n) = LinkParams{8e6, MsToSim(0), 0.0};
  }
  topo.core(0, 1) = LinkParams{8e6, MsToSim(10), 0.02};
  topo.core(1, 0) = LinkParams{8e6, MsToSim(10), 0.02};
  NetworkConfig config;
  Network net(std::move(topo), config, 99);
  Recorder h0(&net);
  Recorder h1(&net);
  net.SetHandler(0, &h0);
  net.SetHandler(1, &h1);
  const ConnId conn = net.Connect(0, 1);
  for (int i = 0; i < 30; ++i) {
    net.Send(conn, 0, std::make_unique<TestMsg>(i, 16 * 1024));
  }
  net.Run(SecToSim(120.0));
  int expected = 0;
  for (const auto& e : h1.events) {
    if (e.kind == Recorder::Event::Kind::kMsg) {
      EXPECT_EQ(e.msg_id, expected++);
    }
  }
  EXPECT_EQ(expected, 30);
}

TEST(Network, CloseDropsQueuedAndNotifiesPeer) {
  Network net = MakeTwoNodeNet();
  Recorder h0(&net);
  Recorder h1(&net);
  net.SetHandler(0, &h0);
  net.SetHandler(1, &h1);
  const ConnId conn = net.Connect(0, 1);
  net.Run(SecToSim(0.5));
  net.Send(conn, 0, std::make_unique<TestMsg>(1, 10 * 1000 * 1000));
  net.Close(conn);
  net.Run(SecToSim(5.0));
  EXPECT_FALSE(net.IsOpen(conn));
  bool down0 = false;
  bool down1 = false;
  bool msg1 = false;
  for (const auto& e : h0.events) {
    down0 |= e.kind == Recorder::Event::Kind::kDown;
  }
  for (const auto& e : h1.events) {
    down1 |= e.kind == Recorder::Event::Kind::kDown;
    msg1 |= e.kind == Recorder::Event::Kind::kMsg;
  }
  EXPECT_TRUE(down0);
  EXPECT_TRUE(down1);
  EXPECT_FALSE(msg1);
}

TEST(Network, SendOnClosedConnectionFails) {
  Network net = MakeTwoNodeNet();
  const ConnId conn = net.Connect(0, 1);
  net.Close(conn);
  EXPECT_FALSE(net.Send(conn, 0, std::make_unique<TestMsg>(1, 100)));
  EXPECT_FALSE(net.Send(-5, 0, std::make_unique<TestMsg>(1, 100)));
}

TEST(Network, SendFromNonEndpointFails) {
  MeshTopology topo(3);
  for (NodeId n = 0; n < 3; ++n) {
    topo.uplink(n) = LinkParams{8e6, 0, 0.0};
    topo.downlink(n) = LinkParams{8e6, 0, 0.0};
    for (NodeId d = 0; d < 3; ++d) {
      topo.core(n, d) = LinkParams{8e6, MsToSim(1), 0.0};
    }
  }
  Network net(std::move(topo), NetworkConfig{}, 1);
  const ConnId conn = net.Connect(0, 1);
  EXPECT_FALSE(net.Send(conn, 2, std::make_unique<TestMsg>(1, 100)));
}

TEST(Network, QueueIntrospection) {
  Network net = MakeTwoNodeNet();
  Recorder h0(&net);
  Recorder h1(&net);
  net.SetHandler(0, &h0);
  net.SetHandler(1, &h1);
  const ConnId conn = net.Connect(0, 1);
  net.Run(SecToSim(0.5));
  EXPECT_EQ(net.QueuedMessages(conn, 0), 0u);
  EXPECT_GT(net.IdleTime(conn, 0), 0);
  net.Send(conn, 0, std::make_unique<TestMsg>(1, 5 * 1000 * 1000));
  net.Send(conn, 0, std::make_unique<TestMsg>(2, 1000));
  EXPECT_EQ(net.QueuedMessages(conn, 0), 2u);
  EXPECT_EQ(net.QueuedBytes(conn, 0), 5 * 1000 * 1000 + 1000);
  EXPECT_EQ(net.IdleTime(conn, 0), 0);
}

TEST(Network, ByteAccounting) {
  Network net = MakeTwoNodeNet();
  Recorder h0(&net);
  Recorder h1(&net);
  net.SetHandler(0, &h0);
  net.SetHandler(1, &h1);
  const ConnId conn = net.Connect(0, 1);
  net.Send(conn, 0, std::make_unique<TestMsg>(1, 50 * 1000));
  net.Run(SecToSim(10.0));
  EXPECT_EQ(net.node_bytes_sent(0), 50 * 1000);
  EXPECT_EQ(net.node_bytes_received(1), 50 * 1000);
  EXPECT_EQ(net.node_bytes_sent(1), 0);
}

TEST(Network, BandwidthChangeTakesEffect) {
  Network net = MakeTwoNodeNet(8e6, MsToSim(5));
  Recorder h0(&net);
  Recorder h1(&net);
  net.SetHandler(0, &h0);
  net.SetHandler(1, &h1);
  const ConnId conn = net.Connect(0, 1);
  net.Run(SecToSim(1.0));  // warm up past slow start bookkeeping

  // Halve the core link before a 2 MB transfer; it should take ~2x the time.
  net.topology().AsMesh()->core(0, 1).bandwidth_bps = 2e6;
  const SimTime start = net.now();
  net.Send(conn, 0, std::make_unique<TestMsg>(7, 2 * 1000 * 1000));
  net.Run(SecToSim(60.0));
  SimTime arrival = -1;
  for (const auto& e : h1.events) {
    if (e.kind == Recorder::Event::Kind::kMsg && e.msg_id == 7) {
      arrival = e.at;
    }
  }
  ASSERT_GE(arrival, 0);
  const double sec = SimToSec(arrival - start);
  // 2 MB at 2 Mbps = 8 s (plus slow start); at the original 8 Mbps it would be 2 s.
  EXPECT_GT(sec, 6.0);
  EXPECT_LT(sec, 12.0);
}

TEST(Network, CloseCompactsWithinOneQuantum) {
  // Regression: closed connections used to linger in the open list until some
  // later tick's compaction pass. With event-driven tick work the pass only
  // runs when needed, so Close() must guarantee compaction on the next quantum
  // boundary — including when the network is otherwise completely idle.
  MeshTopology topo(4);
  for (NodeId n = 0; n < 4; ++n) {
    topo.uplink(n) = LinkParams{8e6, 0, 0.0};
    topo.downlink(n) = LinkParams{8e6, 0, 0.0};
    for (NodeId d = 0; d < 4; ++d) {
      topo.core(n, d) = LinkParams{8e6, MsToSim(1), 0.0};
    }
  }
  Network net(std::move(topo), NetworkConfig{}, 13);
  std::vector<ConnId> conns;
  for (NodeId d = 1; d < 4; ++d) {
    conns.push_back(net.Connect(0, d));
    conns.push_back(net.Connect(d, (d + 1) % 4 == 0 ? 1 : d + 1));
  }
  net.Run(SecToSim(1.0));  // establish; network is idle (no traffic at all)
  ASSERT_EQ(net.open_conn_entries(), conns.size());

  net.Close(conns[0]);
  net.Close(conns[3]);
  EXPECT_FALSE(net.IsOpen(conns[0]));
  // Entries may persist only until the next quantum boundary.
  net.Run(net.now() + MsToSim(10));
  EXPECT_EQ(net.open_conn_entries(), conns.size() - 2);

  // Idle network, closes only — still compacted, never accumulated.
  for (size_t i = 1; i < conns.size(); ++i) {
    if (i != 3) {
      net.Close(conns[i]);
    }
  }
  net.Run(net.now() + MsToSim(10));
  EXPECT_EQ(net.open_conn_entries(), 0u);
}

TEST(Network, CloseCompactsUnderSkipIdleTicks) {
  // Same regression with idle tick events elided entirely: the Close() must
  // wake the ticker so the compaction pass still runs within one quantum.
  MeshTopology topo(3);
  for (NodeId n = 0; n < 3; ++n) {
    topo.uplink(n) = LinkParams{8e6, 0, 0.0};
    topo.downlink(n) = LinkParams{8e6, 0, 0.0};
    for (NodeId d = 0; d < 3; ++d) {
      topo.core(n, d) = LinkParams{8e6, MsToSim(1), 0.0};
    }
  }
  NetworkConfig config;
  config.skip_idle_ticks = true;
  Network net(std::move(topo), config, 17);
  const ConnId a = net.Connect(0, 1);
  const ConnId b = net.Connect(1, 2);
  net.Run(SecToSim(5.0));  // long idle stretch with ticks paused
  ASSERT_EQ(net.open_conn_entries(), 2u);
  net.Close(a);
  net.Run(net.now() + MsToSim(10));
  EXPECT_EQ(net.open_conn_entries(), 1u);
  EXPECT_TRUE(net.IsOpen(b));
}

TEST(Network, ActiveDirectionAccountingAcrossLifecycle) {
  Network net = MakeTwoNodeNet();
  Recorder h0(&net);
  Recorder h1(&net);
  net.SetHandler(0, &h0);
  net.SetHandler(1, &h1);
  const ConnId conn = net.Connect(0, 1);
  EXPECT_EQ(net.active_directions(), 0u);
  // Queued before establishment: becomes active at establishment time.
  net.Send(conn, 0, std::make_unique<TestMsg>(1, 64 * 1024));
  EXPECT_EQ(net.active_directions(), 0u);
  net.Run(SecToSim(0.05));  // established, still transmitting
  EXPECT_EQ(net.active_directions(), 1u);
  net.Run(SecToSim(2.0));  // drained
  EXPECT_EQ(net.active_directions(), 0u);
  net.Send(conn, 0, std::make_unique<TestMsg>(2, 8 * 1024 * 1024));
  EXPECT_EQ(net.active_directions(), 1u);
  net.Close(conn);  // closing a busy direction must release it
  EXPECT_EQ(net.active_directions(), 0u);
  net.Run(SecToSim(3.0));
  EXPECT_EQ(net.active_directions(), 0u);
  EXPECT_EQ(net.open_conn_entries(), 0u);
}

TEST(Dynamics, PeriodicHalvingIsCumulative) {
  MeshTopology topo(4);
  for (NodeId n = 0; n < 4; ++n) {
    topo.uplink(n) = LinkParams{6e6, 0, 0.0};
    topo.downlink(n) = LinkParams{6e6, 0, 0.0};
    for (NodeId d = 0; d < 4; ++d) {
      topo.core(n, d) = LinkParams{2e6, MsToSim(1), 0.0};
    }
  }
  Network net(std::move(topo), NetworkConfig{}, 5);
  BandwidthDynamicsParams params;
  params.period = SecToSim(1.0);
  params.node_fraction = 1.0;
  params.sender_fraction = 1.0;
  StartPeriodicBandwidthChanges(net, params);
  net.Run(SecToSim(3.5));  // 3 firings
  for (NodeId s = 0; s < 4; ++s) {
    for (NodeId d = 0; d < 4; ++d) {
      if (s != d) {
        EXPECT_NEAR(net.topology().AsMesh()->core(s, d).bandwidth_bps, 2e6 / 8.0, 1.0);
      }
    }
  }
}

TEST(Dynamics, CascadeIsSequential) {
  MeshTopology topo(4);
  for (NodeId n = 0; n < 4; ++n) {
    topo.uplink(n) = LinkParams{6e6, 0, 0.0};
    topo.downlink(n) = LinkParams{6e6, 0, 0.0};
    for (NodeId d = 0; d < 4; ++d) {
      topo.core(n, d) = LinkParams{5e6, MsToSim(1), 0.0};
    }
  }
  Network net(std::move(topo), NetworkConfig{}, 5);
  StartCascade(net, /*target=*/3, {0, 1, 2}, SecToSim(1.0), 100e3);
  net.Run(SecToSim(1.5));
  EXPECT_DOUBLE_EQ(net.topology().AsMesh()->core(0, 3).bandwidth_bps, 100e3);
  EXPECT_DOUBLE_EQ(net.topology().AsMesh()->core(1, 3).bandwidth_bps, 5e6);
  net.Run(SecToSim(3.5));
  EXPECT_DOUBLE_EQ(net.topology().AsMesh()->core(1, 3).bandwidth_bps, 100e3);
  EXPECT_DOUBLE_EQ(net.topology().AsMesh()->core(2, 3).bandwidth_bps, 100e3);
  // Reverse directions untouched.
  EXPECT_DOUBLE_EQ(net.topology().AsMesh()->core(3, 0).bandwidth_bps, 5e6);
}

}  // namespace
}  // namespace bullet
