#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "src/common/cdf.h"
#include "src/common/options.h"

namespace bullet {
namespace {

TEST(Cdf, PrintCdfMonotone) {
  CdfSeries s;
  s.name = "test";
  for (int i = 100; i >= 1; --i) {
    s.samples.push_back(static_cast<double>(i));
  }
  std::ostringstream os;
  PrintCdf(os, {s}, 10);
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "# test");
  double prev_frac = -1.0;
  double prev_val = -1.0;
  while (std::getline(is, line)) {
    double frac = 0.0;
    double val = 0.0;
    ASSERT_EQ(std::sscanf(line.c_str(), "%lf %lf", &frac, &val), 2) << line;
    EXPECT_GE(frac, prev_frac);
    EXPECT_GE(val, prev_val);
    prev_frac = frac;
    prev_val = val;
  }
  EXPECT_DOUBLE_EQ(prev_frac, 1.0);
  EXPECT_DOUBLE_EQ(prev_val, 100.0);
}

TEST(Cdf, EmptySeries) {
  std::ostringstream os;
  PrintCdf(os, {CdfSeries{"empty", {}}}, 10);
  EXPECT_NE(os.str().find("(no samples)"), std::string::npos);
}

TEST(Cdf, SummaryTableColumns) {
  CdfSeries s;
  s.name = "sys";
  s.samples = {10.0, 20.0, 30.0};
  std::ostringstream os;
  PrintSummaryTable(os, {s});
  EXPECT_NE(os.str().find("sys"), std::string::npos);
  EXPECT_NE(os.str().find("20.00"), std::string::npos);  // p50
  EXPECT_NE(os.str().find("30.00"), std::string::npos);  // max
}

TEST(Options, DefaultIsCi) {
  unsetenv("REPRO_SCALE");
  const ReproScale scale = GetReproScale();
  EXPECT_FALSE(scale.full);
  EXPECT_LT(scale.file_scale, 1.0);
  EXPECT_GT(scale.file_scale, 0.0);
}

TEST(Options, FullScale) {
  setenv("REPRO_SCALE", "full", 1);
  const ReproScale scale = GetReproScale();
  EXPECT_TRUE(scale.full);
  EXPECT_DOUBLE_EQ(scale.file_scale, 1.0);
  unsetenv("REPRO_SCALE");
}

TEST(Options, UnknownValueFallsBackToCi) {
  setenv("REPRO_SCALE", "banana", 1);
  EXPECT_FALSE(GetReproScale().full);
  unsetenv("REPRO_SCALE");
}

TEST(Options, ScaledFileBytesWholeBlocks) {
  unsetenv("REPRO_SCALE");
  const int64_t block = 16 * 1024;
  const int64_t bytes = ScaledFileBytes(100 * 1024 * 1024, block);
  EXPECT_EQ(bytes % block, 0);
  EXPECT_GT(bytes, 0);
  // Tiny requests still produce a usable number of blocks.
  EXPECT_GE(ScaledFileBytes(1024, block) / block, 16);
}

}  // namespace
}  // namespace bullet
