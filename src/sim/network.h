// The emulated network: reliable, ordered, byte-accounted connections between overlay
// nodes, with bandwidth shared max-min across all concurrently active flows and TCP
// behaviour approximated per flow (see tcp_model.h).
//
// Protocols interact with the network exclusively through:
//   Connect / Close  — connection lifecycle (establishment costs 1.5 RTT, like TCP
//                      handshake plus first application write),
//   Send             — enqueue a typed message on a connection,
//   NetHandler       — callbacks for connection up/down and message delivery.
//
// Every `quantum` of simulated time the network recomputes flow rates (a flow is a
// connection direction with queued bytes) and advances transmissions. Completed
// messages are delivered after the path's propagation delay, plus a retransmission
// penalty drawn from the path loss rate; deliveries on one direction are in order.
//
// Topology generality (PR 4). A flow crosses its sender's uplink, its receiver's
// downlink, and the interior links of the topology's s->d path — one private
// core link on the legacy mesh, a shared multi-hop route on RoutedTopology.
// Interior routes are snapshotted per direction at Connect() (propagation delay
// and loss are static; only link bandwidth is dynamic), and interior link ids
// are mapped to dense allocator ids per allocation epoch in first-use order —
// on the mesh this reproduces the historical dense core-link-id scheme exactly,
// so mesh results are bit-identical to the pre-routed implementation.
//
// Hot-path architecture (PR 3). The tick is event-driven in its *work*, not its
// schedule: a tick event still fires every quantum (keeping the event-sequence
// numbering — and therefore same-time tie-breaking — identical to the original
// fixed-quantum loop), but the expensive stages only run when something changed:
//
//   * compaction of closed connections runs only on quanta that saw a Close();
//   * the flow set is rebuilt and re-water-filled only when dirty — a direction
//     became busy or idle, a connection closed, a flow's TCP cap is still ramping,
//     or a link capacity changed (detected by comparing the capacities the last
//     allocation used against the topology);
//   * on clean quanta the cached rates are reused — by determinism they are
//     exactly what a recompute would produce — and only transmission advancement
//     runs;
//   * a fully idle network (no queued bytes anywhere) ticks in O(1).
//
// Per-flow TCP caps are cached once the slow-start ramp reaches its steady ceiling
// (tcp_model.h), message queues are ring buffers that recycle their storage, and
// delivery events capture their message directly in the event-queue closure, so
// steady-state message handling performs no per-message allocation.
//
// NetworkConfig::allocator_mode selects the legacy full-recompute-every-quantum
// tick (the pre-PR behaviour, kept as a reference and for A/B benchmarking);
// NetworkConfig::skip_idle_ticks additionally elides idle tick events entirely and
// schedules the next tick on the quantum grid when a flow wakes — fastest for
// workloads with long quiet phases, but same-time event tie-breaking can differ
// from the reference modes, so identical-seed runs are only reproducible against
// the same mode, not across modes.
//
// Parallel engine (this PR). NetworkConfig::num_threads > 1 on a transit-stub
// RoutedTopology runs a partitioned conservative-synchronization engine:
//
//   * Nodes are partitioned by transit-stub domain (each stub domain maps to
//     its transit router; transit routers are grouped contiguously into
//     num_threads partitions). Every partition owns a private EventQueue that
//     carries its nodes' protocol timers and message deliveries.
//   * All partitions advance in lockstep over windows of one quantum. Within a
//     window, workers execute only partition-local state transitions; every
//     observable shared structure (connection table, open-connection list,
//     busy masks, the global queue, the topology's route caches) is read-only.
//     Worker-context Network calls that would mutate shared state — Send,
//     Close, Connect registration, ScheduleGlobal — are appended to the
//     partition's staged-command log with their issue-time timestamps.
//   * At the window barrier the coordinator drains the staged logs in the
//     documented deterministic merge order — ascending partition id, then
//     staging order (which is the source partition's event order) — then runs
//     the global queue up to the barrier (establishment and conn-down
//     notifications, joins, departures, dynamics), then executes the
//     allocator tick: one global IncrementalMaxMin epoch whose TCP-cap
//     evaluation is sharded across the workers and whose water-fill runs
//     AllocateParallel (see bandwidth_allocator.h). Transmissions advance and
//     deliveries are scheduled onto the receiver partitions' queues exactly as
//     the serial tick would.
//   * The partition plan is validated against the conservative-sync lookahead:
//     the minimum cross-partition path delay (derived from the router graph)
//     must cover one quantum, so a message sent in window k physically cannot
//     be delivered before the k+1 barrier at which the engine schedules it.
//     If the lookahead is too small the engine reduces the partition count and
//     rechecks; mesh topologies, kFullRecompute mode, and plans that collapse
//     to one partition all fall back to the serial engine.
//
// num_threads == 1 *is* the serial engine — bit-identical behaviour and BENCH
// output to previous releases. num_threads > 1 is run-to-run deterministic for
// a fixed thread count (merge order and worker-order reductions never depend
// on thread scheduling) but diverges from the serial schedule in documented,
// deterministic ways: staged worker commands apply at the barrier (a
// cross-partition Close becomes visible to IsOpen at the next barrier; a Send
// issued after its connection established in the same window anchors its TCP
// ramp at the establishment instant); worker Connects register in merge order
// rather than global time order; Stop() takes effect at the next barrier;
// skip_idle_ticks is ignored (the barrier cadence is the quantum).
//
// Thread-safety contract: Network's public API may be called from protocol
// code in worker context (the engine routes such calls through the staging
// paths) and from the coordinator between windows. It must never be called
// from threads outside the engine while Run() executes. RunCounters are
// published only by the thread calling Run().

#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/bandwidth_allocator.h"
#include "src/sim/engine_parallel.h"
#include "src/sim/event_queue.h"
#include "src/sim/scale/arena.h"
#include "src/sim/scale/flow_aggregation.h"
#include "src/sim/tcp_model.h"
#include "src/sim/time.h"
#include "src/sim/topology.h"

namespace bullet {

using ConnId = int64_t;

// Base class for all protocol messages. `wire_bytes` must include the protocol's own
// header estimate; the network charges exactly this many bytes of link bandwidth.
struct Message {
  virtual ~Message() = default;
  int type = 0;
  int64_t wire_bytes = 0;
};

class NetHandler {
 public:
  virtual ~NetHandler() = default;
  // `initiator` is true at the node that called Connect().
  virtual void OnConnUp(ConnId /*conn*/, NodeId /*peer*/, bool /*initiator*/) {}
  virtual void OnConnDown(ConnId /*conn*/, NodeId /*peer*/) {}
  virtual void OnMessage(ConnId conn, NodeId from, std::unique_ptr<Message> msg) = 0;
};

struct NetworkConfig {
  SimTime quantum = MsToSim(10);
  TcpModelParams tcp;
  // Model the extra delivery latency of messages that suffer packet loss (TCP
  // retransmission + head-of-line blocking). Throughput loss is modelled separately
  // via the Mathis cap; this term affects message latency, which is what makes
  // availability information stale on lossy paths (Section 4.3).
  bool loss_latency = true;

  enum class AllocatorMode {
    kIncremental,    // dirty-tracked allocation with cached rates (default)
    kFullRecompute,  // pre-PR behaviour: rebuild + water-fill every quantum
  };
  AllocatorMode allocator_mode = AllocatorMode::kIncremental;

  // Elide tick events while no direction has queued bytes and no close is pending
  // compaction; the next tick is scheduled on the quantum grid when a flow wakes.
  // Not bit-reproducible against the non-skipping modes (see header comment).
  bool skip_idle_ticks = false;

  // > 1 requests the partitioned parallel engine (see the header comment).
  // Effective only on transit-stub routed topologies in kIncremental mode; the
  // engine may use fewer threads than requested (at most one per transit
  // router, fewer if the lookahead check demands it) and silently falls back
  // to the serial engine when no valid multi-partition plan exists.
  int num_threads = 1;

  // Mega-swarm mode: water-fill *bundles* of flows sharing an identical
  // interior route instead of individual flows (src/sim/scale/
  // flow_aggregation.h). Epoch cost scales with bundles (bounded by ordered
  // router pairs on a transit-stub graph) rather than live flows. NOT
  // bit-identical to the exact allocator — access links are treated as
  // locally fair (capacity/k member caps) and intra-bundle competition at the
  // interior bottleneck is replaced by the bounded split — but conservation
  // and link feasibility hold exactly (allocator_invariants tests pin the
  // deviation). Default off: the exact path is untouched and byte-identical.
  // Requires kIncremental mode.
  bool aggregate_flows = false;
};

class Network {
 public:
  Network(std::unique_ptr<Topology> topology, NetworkConfig config, uint64_t seed);
  // Convenience: wrap a concrete topology value (MeshTopology, RoutedTopology).
  template <typename TopologyType,
            typename = std::enable_if_t<std::is_base_of_v<Topology, std::decay_t<TopologyType>>>>
  Network(TopologyType topology, NetworkConfig config, uint64_t seed)
      : Network(std::make_unique<std::decay_t<TopologyType>>(std::move(topology)), config, seed) {
  }

  EventQueue& queue() { return queue_; }
  // The queue protocol code on `n` should schedule its timers on: the node's
  // partition queue under the parallel engine, the global queue otherwise.
  EventQueue& node_queue(NodeId n) {
    if (parallel_) {
      return partitions_[static_cast<size_t>(node_partition_[static_cast<size_t>(n)])]->queue;
    }
    return queue_;
  }
  // Context-aware simulated time: the executing partition's clock inside a
  // worker window, the global clock otherwise. In serial mode this is always
  // the global clock.
  SimTime now() const {
    if (parallel_) {
      const int p = CurrentPartitionIndex();
      if (p >= 0) {
        return partitions_[static_cast<size_t>(p)]->queue.now();
      }
    }
    return queue_.now();
  }
  Topology& topology() { return *topology_; }
  Rng& rng() { return rng_; }
  int num_nodes() const { return topology_->num_nodes(); }

  void SetHandler(NodeId node, NetHandler* handler);
  // True once SetHandler installed a protocol for the node — i.e. the node has
  // joined its session. Messages delivered before that are silently dropped,
  // so membership-aware overlays (SplitStream's static stripe forest) defer
  // handshakes to not-yet-joined peers instead of losing them.
  bool NodeJoined(NodeId node) const { return handlers_[static_cast<size_t>(node)] != nullptr; }

  // Opens a connection from `from` to `to`. Both ends receive OnConnUp after
  // establishment. Messages may be sent immediately; they queue until established.
  ConnId Connect(NodeId from, NodeId to);

  // Closes the connection. The remote end receives OnConnDown after one path delay;
  // all queued and in-flight messages are dropped.
  void Close(ConnId conn);
  bool IsOpen(ConnId conn) const;

  // Enqueues a message from `from` on the connection. Returns false (and drops) if
  // the connection is closed or `from` is not an endpoint.
  bool Send(ConnId conn, NodeId from, std::unique_ptr<Message> msg);

  // Fails the node: every connection touching it closes (peers learn through
  // OnConnDown after the usual delay) and future Connect() calls involving it are
  // refused. Used by churn experiments; a failed node's protocol object survives but
  // is cut off. Idempotent.
  void FailNode(NodeId node);
  bool IsNodeFailed(NodeId node) const { return failed_[static_cast<size_t>(node)] != 0; }

  // Introspection used by protocol flow control (Bullet' measures its send queue to
  // report `in_front` and `wasted`, Section 3.3.3).
  size_t QueuedMessages(ConnId conn, NodeId from) const;
  int64_t QueuedBytes(ConnId conn, NodeId from) const;
  // Time since this direction last transmitted its final queued byte; 0 if busy.
  SimTime IdleTime(ConnId conn, NodeId from) const;
  // Most recent allocated rate for this direction, bits/second.
  double CurrentRateBps(ConnId conn, NodeId from) const;

  // Per-node totals (all message kinds), counted at transmission completion.
  int64_t node_bytes_sent(NodeId n) const { return tx_bytes_[static_cast<size_t>(n)]; }
  int64_t node_bytes_received(NodeId n) const { return rx_bytes_[static_cast<size_t>(n)]; }

  // Entries in the open-connection list. Closed connections are compacted out on
  // the next quantum boundary after their Close(), so this may transiently exceed
  // the number of live connections by the closes of the current quantum (tests
  // use it to pin down that bound; see network_test.cc).
  size_t open_conn_entries() const { return open_conns_.size(); }
  // Directions currently holding queued bytes on established connections.
  size_t active_directions() const { return active_dirs_; }
  // Peak number of flows the allocator saw sharing one interior link in any
  // allocation epoch so far. On the mesh an interior link is private to an
  // ordered pair (its two-or-more flows are parallel connections of that pair);
  // on routed topologies this is the shared-bottleneck width — the
  // fig16_shared_bottleneck scenario asserts it exceeds 1.
  int32_t max_interior_link_flows() const { return max_interior_link_flows_; }

  // Live probes over one interior link (a topology link id, e.g. a transit-stub
  // gateway uplink): the number of busy established flows currently routed
  // across it, and the total bandwidth the last allocation granted them. Rates
  // reflect the most recent allocation epoch (at most one quantum stale), which
  // is exactly the sampling granularity the emulator allocates at anyway.
  int CountFlowsOnInteriorLink(int32_t link_id) const;
  double InteriorLinkAllocatedBps(int32_t link_id) const;

  // Deterministic run counters (always on, seed-reproducible; the perf gate
  // normalizes them by wall time — see docs/PERFORMANCE.md). Run() also adds
  // the same deltas to the thread-locally installed RunCounters, if any, so a
  // harness can total them across the several networks one scenario may build.
  uint64_t events_executed() const { return events_executed_; }   // queue callbacks fired
  uint64_t allocator_epochs() const { return allocator_epochs_; } // water-fill recomputes
  int64_t total_bytes_sent() const;  // wire bytes transmitted, all nodes

  // --- mega-swarm memory telemetry (deterministic byte counters; see
  // docs/ARCHITECTURE.md "Mega-swarm memory model"). The harness surfaces
  // these per run and the megaswarm sweep gates them against a committed
  // ceiling baseline (bytes <= baseline; bench_check bullet-ceilings-v1).
  // Routing state held by the topology (0 on mesh topologies).
  size_t route_cache_bytes() const;
  // Pooled per-connection interior-route slices, every store (main +
  // partition pools).
  size_t path_pool_bytes() const;
  // Protocol node-state arenas registered via arena_counter(): live bytes now
  // and the run's peak.
  int64_t arena_current_bytes() const { return arena_counter_.current_bytes(); }
  int64_t arena_peak_bytes() const { return arena_counter_.peak_bytes(); }
  // The counter protocol node-state containers (StableFlatMap) register with.
  ArenaCounter* arena_counter() { return &arena_counter_; }

  // Runs the simulation until `until` or Stop().
  void Run(SimTime until);
  // Serial engine: stops after the current event. Parallel engine: stops at
  // the next superstep barrier (window granularity; see the header comment).
  void Stop();

  // Schedules a callback on the global queue from any engine context. Worker
  // context stages the request into the partition's command log (applied in
  // merge order at the barrier); elsewhere this is queue().Schedule. Harness
  // code whose callbacks may fire from protocol context (e.g. completion
  // observers) must use this instead of queue().Schedule.
  void ScheduleGlobal(SimTime at, EventQueue::Callback fn);

  // Partition count of the active parallel plan; 0 when the serial engine
  // runs. The plan is fixed at construction.
  int parallel_partitions() const { return parallel_ ? static_cast<int>(partitions_.size()) : 0; }
  // Minimum cross-partition path delay the active plan was validated against
  // (>= quantum); 0 in serial mode.
  SimTime parallel_lookahead() const { return lookahead_; }

 private:
  struct QueuedMsg {
    std::unique_ptr<Message> msg;
    double remaining_bytes = 0.0;
  };

  // FIFO of queued messages backed by a recycled power-of-two ring, replacing a
  // per-direction std::deque: no node allocations per message, and the buffer is
  // released when the connection closes.
  class MsgRing {
   public:
    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }
    QueuedMsg& front() { return buf_[head_]; }
    void push_back(QueuedMsg qm);
    void pop_front();
    void clear_and_release();

   private:
    std::vector<QueuedMsg> buf_;  // power-of-two capacity, index masked
    size_t head_ = 0;
    size_t size_ = 0;
  };

  struct Direction {
    MsgRing queue;
    int64_t queued_bytes = 0;
    double rate_bps = 0.0;
    TcpFlowState tcp;
    SimTime delivery_floor = 0;  // enforces in-order delivery
    SimTime idle_since = 0;      // valid when queue is empty

    // TCP-cap cache for the incremental tick. Once `cap_steady`, `cap_cache` is
    // the exact value TcpRateCapBps would return for the rest of the busy
    // period, so the rebuild skips the transcendental-heavy recomputation.
    double cap_cache = 0.0;
    bool cap_steady = false;
  };

  // Per-direction path parameters snapshotted at Connect(). Propagation delay,
  // loss and the interior route are static during a run (only link *bandwidth*
  // is dynamic — see dynamics.h), so these are the exact values the per-message
  // topology lookups would produce, without re-walking the topology per message
  // or per allocation epoch.
  //
  // The interior route lives as an (offset, length) slice of path_pool_ rather
  // than a per-direction vector: the allocator rebuild walks every busy
  // direction's route each epoch, and one contiguous pool turns those walks
  // into sequential reads instead of a heap-pointer chase per direction (and
  // drops two vector allocations per Connect). The pool only grows — conns_
  // never erases — so slices stay valid for the connection's lifetime.
  struct PathCache {
    SimTime path_delay = 0;
    SimTime rtt = 0;
    double loss = 0.0;
    uint32_t interior_off = 0;  // slice of path_pool_: interior link ids, path order
    uint32_t interior_len = 0;
  };

  struct Conn {
    ConnId id = -1;
    NodeId node[2] = {-1, -1};
    Direction dir[2];   // dir[i] carries node[i] -> node[1-i]
    PathCache path[2];  // path[i] describes node[i] -> node[1-i]
    bool established = false;
    bool closed = false;
    // Which backing store holds this connection: 0 = the main conns_ table,
    // p + 1 = partition p's ConnStore (worker-opened under the parallel
    // engine). Selects the path pool and the busy-byte location.
    int32_t store = 0;
    // Busy-direction bits for store != 0 connections (the conn_busy_mask_
    // flat vector only spans the main table). Mutated only at barriers.
    uint8_t busy = 0;
  };

  // Stable-address growable Conn storage for worker-opened connections. The
  // owning worker appends mid-window while other threads may concurrently read
  // previously published entries (a peer learns the id via OnConnUp after a
  // barrier), so growth must never move existing Conns: storage is a fixed
  // table of chunk slots filled on demand. Single-writer (the owning worker
  // mid-window, the coordinator at barriers); NewSlot() returns the next slot
  // without publishing it, Publish() release-stores the new size after the
  // caller finished writing fields, and readers acquire-load `size` before
  // indexing — the release/acquire pair makes the fields visible.
  class ConnStore {
   public:
    static constexpr int kChunkBits = 10;  // 1024 conns per chunk
    static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
    static constexpr size_t kMaxChunks = 4096;  // 4M conns per partition

    ConnStore() : chunks_(kMaxChunks) {}

    size_t size_acquire() const { return size_.load(std::memory_order_acquire); }
    size_t size_relaxed() const { return size_.load(std::memory_order_relaxed); }
    Conn& at(size_t i) {
      return chunks_[i >> kChunkBits][i & (kChunkSize - 1)];
    }
    const Conn& at(size_t i) const {
      return chunks_[i >> kChunkBits][i & (kChunkSize - 1)];
    }
    // Slot for index size_relaxed(); allocates its chunk if needed. The slot is
    // invisible to readers until Publish().
    Conn& NewSlot() {
      const size_t i = size_relaxed();
      auto& chunk = chunks_[i >> kChunkBits];
      if (!chunk) {
        chunk = std::make_unique<Conn[]>(kChunkSize);
      }
      return chunk[i & (kChunkSize - 1)];
    }
    void Publish() { size_.fetch_add(1, std::memory_order_release); }

   private:
    std::vector<std::unique_ptr<Conn[]>> chunks_;  // fixed-size slot table
    std::atomic<size_t> size_{0};
  };

  // One worker-context Network call recorded mid-window, applied by the
  // coordinator at the barrier. Logs are drained in ascending partition id,
  // then staging order — the engine's documented deterministic merge order.
  struct StagedCmd {
    enum class Kind : uint8_t { kSend, kClose, kConnect, kGlobal };
    Kind kind;
    SimTime at = 0;            // partition-local issue time
    ConnId conn = -1;          // kSend / kClose / kConnect
    NodeId from = -1;          // kSend
    std::unique_ptr<Message> msg;  // kSend
    EventQueue::Callback fn;       // kGlobal
  };

  struct Partition {
    EventQueue queue;
    std::vector<NodeId> nodes;      // members, ascending
    ConnStore conns;                // worker-opened connections
    std::vector<int32_t> path_pool; // interior routes of those connections
    std::vector<StagedCmd> staged;  // drained at each barrier
    uint64_t window_events = 0;     // events the last window executed
  };

  // Encoded ConnId layout: low 40 bits index into the store, bits above select
  // it (0 = conns_, p + 1 = partition p). Store-0 ids are numerically the
  // plain index, so serial-mode ids — and their serialized appearance in BENCH
  // output — are unchanged.
  static constexpr int kConnStoreShift = 40;
  static constexpr ConnId kConnIndexMask = (ConnId{1} << kConnStoreShift) - 1;

  Conn* GetConn(ConnId id);
  const Conn* GetConn(ConnId id) const;
  // Returns 0 or 1: which endpoint `node` is; -1 if neither.
  static int EndpointIndex(const Conn& c, NodeId node);

  // Pool holding the interior-route slices of `c`'s PathCaches: the main
  // path_pool_ for store-0 connections, the owning partition's pool otherwise.
  const std::vector<int32_t>& PathPoolOf(const Conn& c) const {
    return c.store == 0 ? path_pool_ : partitions_[static_cast<size_t>(c.store - 1)]->path_pool;
  }
  // First interior link id of the path's pooled route slice. `path` must be
  // one of `c`'s two PathCaches.
  const int32_t* PathInteriorBegin(const Conn& c, const PathCache& path) const {
    return PathPoolOf(c).data() + path.interior_off;
  }
  const int32_t* PathInteriorEnd(const Conn& c, const PathCache& path) const {
    return PathPoolOf(c).data() + path.interior_off + path.interior_len;
  }

  // Busy-direction bits of the connection: the flat conn_busy_mask_ entry for
  // main-table connections (serial layout unchanged), the Conn's own busy byte
  // for partition-store ones.
  uint8_t& BusyByte(Conn& c) {
    return c.store == 0 ? conn_busy_mask_[static_cast<size_t>(c.id & kConnIndexMask)] : c.busy;
  }

  void ScheduleFirstTick();
  void ScheduleNextTick();
  void WakeTicksIfPaused();
  SimTime NextGridTickTime() const;
  void Tick();
  void TickFullRecompute(double dt_sec);
  void CompactOpenConns();
  bool CapacitiesUnchanged() const;
  void RebuildAndAllocate(bool base_caps_unchanged);
  void AdvanceTransmissions(double dt_sec);

  // --- parallel engine (see the header comment) ---
  // Computes the partition plan at construction; leaves parallel_ false when
  // no valid multi-partition plan exists.
  void BuildPartitions();
  // Lazily builds the worker pool on the first parallel Run().
  void EnsurePool();
  // The superstep loop: window / merge / global-queue / allocator-tick.
  void ParallelRun(SimTime until);
  // Drains staged command logs in merge order at a barrier.
  void MergeStaged();
  // The barrier-time counterpart of Tick(): compaction, allocation, advance.
  void TickParallel();
  // RebuildAndAllocate with TCP-cap evaluation sharded over the pool and the
  // water-fill run through IncrementalMaxMin::AllocateParallel.
  void RebuildAndAllocateParallel(bool base_caps_unchanged);
  // Worker-context Connect: allocates the conn in the partition store and
  // stages a kConnect for the coordinator to complete at the barrier.
  ConnId ConnectInWorker(int partition, NodeId from, NodeId to);
  // Establishment instant of connection `id`: flips established, activates
  // queued directions, fires OnConnUp. Shared by serial Connect and the merge.
  void RunEstablishment(ConnId id);
  // Snapshots direction `i`'s path parameters and interior route into `pool`.
  void FillPathCache(Conn& c, int i, std::vector<int32_t>& pool);
  // Send/Close bodies parameterized on the action's simulated time; the public
  // entry points pass now(), the merge passes the staged timestamps.
  bool SendAt(ConnId conn, NodeId from, std::unique_ptr<Message> msg, SimTime at);
  void CloseAt(ConnId conn, SimTime at);
  int32_t InteriorLinkIdForEpoch(int32_t interior_id);
  void ActivateDirection(Conn& c, int dir_idx);
  void DeliverMessage(ConnId conn_id, int receiver_idx, std::unique_ptr<Message> msg);
  void EnqueueDelivery(ConnId conn_id, Conn& c, int sender_idx, std::unique_ptr<Message> msg);

  std::unique_ptr<Topology> topology_;
  NetworkConfig config_;
  Rng rng_;
  EventQueue queue_;

  std::vector<NetHandler*> handlers_;
  std::vector<std::unique_ptr<Conn>> conns_;  // indexed by ConnId, never reused
  // Pooled PathCache interior routes (see PathCache); append-only.
  std::vector<int32_t> path_pool_;
  std::vector<ConnId> open_conns_;            // compacted on quantum boundaries
  // Bit i set when conn->dir[i] is established with queued bytes. Lets the
  // rebuild scan skip idle connections with one flat byte load instead of a
  // pointer chase (most connections are idle in any given quantum).
  std::vector<uint8_t> conn_busy_mask_;  // indexed by ConnId

  std::vector<int64_t> tx_bytes_;
  std::vector<int64_t> rx_bytes_;
  std::vector<char> failed_;

  // --- incremental tick state ---
  IncrementalMaxMin alloc_;
  // Aggregated water-fill engine (config_.aggregate_flows) and the rate
  // vector AdvanceTransmissions reads: alloc_.rates() on the exact path,
  // aggregator_.rates() on the aggregated one. The indirection is set by every
  // rebuild and never dangles (both vectors live as long as the network).
  FlowAggregator aggregator_;
  const std::vector<double>* current_rates_ = nullptr;
  // Live/peak bytes of protocol node-state arenas (see arena_counter()).
  ArenaCounter arena_counter_;
  // (conn, direction) per allocated flow, in allocation order; parallel to
  // alloc_.rates(). Valid until the next rebuild. Conn objects are heap-pinned
  // (conns_ holds unique_ptrs and never erases), so raw pointers stay valid.
  struct CachedFlow {
    Conn* conn;
    int dir_idx;
  };
  std::vector<CachedFlow> cached_flows_;
  // Capacities the last allocation was computed from, for change detection:
  // all access links (uplinks then downlinks, legacy id order) ...
  std::vector<double> base_caps_;
  // ... plus every interior link a flow used, as (topology id, capacity).
  struct InteriorCap {
    int32_t id;
    double cap;
  };
  std::vector<InteriorCap> interior_caps_;
  // Per-topology-interior-link dense allocator id for the current allocation
  // epoch (stamped). On the mesh the topology id is src*N+dst, reproducing the
  // historical per-ordered-pair core-id table.
  std::vector<uint32_t> interior_epoch_;
  std::vector<int32_t> interior_link_id_;
  uint32_t epoch_counter_ = 0;
  // Per-flow allocator link-id assembly buffer (uplink, downlink, interior...).
  std::vector<int32_t> flow_link_scratch_;

  size_t active_dirs_ = 0;    // established directions with queued bytes
  size_t pending_close_ = 0;  // closes since the last compaction pass
  bool alloc_dirty_ = true;   // cached rates/flows invalid; rebuild on next tick
  size_t ramping_flows_ = 0;  // flows whose TCP cap was not yet steady at rebuild
  int32_t max_interior_link_flows_ = 0;

  // Always-on deterministic counters (see the public accessors). Run() pushes
  // deltas into the installed RunCounters; published_* track what was pushed.
  uint64_t events_executed_ = 0;
  uint64_t allocator_epochs_ = 0;
  uint64_t rc_published_events_ = 0;
  uint64_t published_epochs_ = 0;
  int64_t published_bytes_ = 0;

  SimTime last_tick_ = 0;
  SimTime tick_anchor_ = 0;  // time of the first tick; the grid is anchor + k*quantum
  bool tick_scheduled_ = false;
  bool tick_paused_ = false;    // skip_idle_ticks mode: no tick event pending
  bool tick_resumed_ = false;   // next tick woke from a pause; clamp its dt

  // --- parallel engine state (empty/unused in serial mode) ---
  bool parallel_ = false;
  SimTime lookahead_ = 0;  // validated min cross-partition path delay
  std::vector<std::unique_ptr<Partition>> partitions_;
  std::vector<int32_t> node_partition_;  // node -> partition index
  std::atomic<bool> stop_flag_{false};   // Stop() under the parallel engine
  std::vector<size_t> shard_ramping_;    // per-worker ramping-flow counts
  // Declared last: the destructor joins the workers while every structure
  // they may still reference (partitions, allocator scratch) is alive.
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace bullet

#endif  // SRC_SIM_NETWORK_H_
