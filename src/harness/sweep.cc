#include "src/harness/sweep.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/harness/flag_parse.h"
#include "src/harness/json_writer.h"

namespace bullet {
namespace {

// Resolves a sweep key against the scenario option table; writes the standard
// unknown-key message (listing the sweepable keys) when it does not resolve.
const ScenarioOptionDef* FindSweepableOption(const std::string& key, std::string* error) {
  const ScenarioOptionDef* def = FindScenarioOptionByKey(key);
  if (def == nullptr || !def->sweepable) {
    *error = "unknown sweep key '" + key + "' (supported: " + SweepableOptionKeys() + ")";
    return nullptr;
  }
  return def;
}

// Validates one numeric axis value against the same ranges the CLI enforces,
// so a sweep cannot construct configurations a single run would reject.
bool ValidateParam(const ScenarioOptionDef& def, double value, std::string* error) {
  if (def.kind != ScenarioOptionDef::Kind::kNumber || !def.validate_number(value)) {
    *error = def.axis_error;
    return false;
  }
  return true;
}

bool IsIntegral(double v) { return v == std::floor(v); }

}  // namespace

uint64_t DeriveSweepSeed(uint64_t base_seed, int point_index, int repeat) {
  // Mix the three coordinates through SplitMix64 twice so that adjacent indices
  // (and adjacent base seeds) land on decorrelated streams. The +1 offsets keep
  // (point 0, repeat 0) from collapsing onto the raw base seed.
  uint64_t state = base_seed;
  state ^= 0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(point_index) + 1);
  state ^= 0xbf58476d1ce4e5b9ull * (static_cast<uint64_t>(repeat) + 1);
  SplitMix64(state);
  return SplitMix64(state);
}

bool ParseSweepAxisSpec(const std::string& text, SweepAxis* axis, std::string* error) {
  const size_t eq = text.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= text.size()) {
    *error = "sweep axis must look like key=v1,v2,... (got '" + text + "')";
    return false;
  }
  SweepAxis parsed;
  parsed.key = text.substr(0, eq);
  const ScenarioOptionDef* def = FindSweepableOption(parsed.key, error);
  if (def == nullptr) {
    return false;
  }
  const bool is_string = def->kind == ScenarioOptionDef::Kind::kString;

  std::string values = text.substr(eq + 1);
  size_t start = 0;
  while (start <= values.size()) {
    const size_t comma = values.find(',', start);
    const std::string item =
        values.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (is_string) {
      ScenarioOptions dummy;
      std::string parse_error;
      if (item.empty() || !def->parse(item, &dummy, &parse_error)) {
        *error = def->axis_error;
        return false;
      }
      // A repeated value would silently run the same grid point twice under
      // two point indices (distinct derived seeds) — almost always a typo.
      for (const std::string& prev : parsed.text_values) {
        if (prev == item) {
          *error = "duplicate value '" + item + "' in sweep axis '" + parsed.key + "'";
          return false;
        }
      }
      parsed.text_values.push_back(item);
    } else {
      double v = 0.0;
      if (!ParseStrictDouble(item, &v)) {
        *error = "bad value '" + item + "' for sweep axis '" + parsed.key + "'";
        return false;
      }
      if (!ValidateParam(*def, v, error)) {
        return false;
      }
      for (const double prev : parsed.values) {
        if (prev == v) {
          *error = "duplicate value '" + item + "' in sweep axis '" + parsed.key + "'";
          return false;
        }
      }
      parsed.values.push_back(v);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  if (parsed.size() == 0) {
    *error = "sweep axis '" + parsed.key + "' has no values";
    return false;
  }
  *axis = std::move(parsed);
  return true;
}

bool ParseSweepFile(std::istream& in, SweepSpec* spec, std::string* error) {
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream tokens(line);
    std::string directive;
    if (!(tokens >> directive)) {
      continue;  // blank / comment-only line
    }
    std::string rest;
    tokens >> rest;
    std::string extra;
    if (tokens >> extra) {
      *error = "line " + std::to_string(lineno) + ": trailing text after '" + rest + "'";
      return false;
    }
    const auto fail = [&](const std::string& what) {
      *error = "line " + std::to_string(lineno) + ": " + what;
      return false;
    };
    if (directive == "scenario") {
      if (rest.empty()) {
        return fail("scenario needs a name");
      }
      spec->scenario = rest;
    } else if (directive == "name") {
      if (rest.empty()) {
        return fail("name needs a value");
      }
      spec->name = rest;
    } else if (directive == "repeats") {
      double v = 0.0;
      if (!ParseStrictDouble(rest, &v) || !IsIntegral(v) || v < 1 || v > 10000) {
        return fail("repeats needs an integer in [1, 10000]");
      }
      spec->repeats = static_cast<int>(v);
    } else if (directive == "seed") {
      // Exact 64-bit parse, matching --seed: a double round-trip would corrupt
      // seeds above 2^53 and silently diverge file specs from CLI specs.
      uint64_t v = 0;
      if (!ParseStrictUint64(rest, &v)) {
        return fail("seed needs a non-negative integer");
      }
      spec->base_seed = v;
    } else if (directive == "set") {
      SweepAxis axis;
      std::string axis_error;
      if (!ParseSweepAxisSpec(rest, &axis, &axis_error) || axis.size() != 1) {
        return fail(axis_error.empty() ? "set needs exactly one key=value" : axis_error);
      }
      if (axis.is_string()) {
        ApplySweepParamText(axis.key, axis.text_values[0], &spec->base);
      } else {
        ApplySweepParam(axis.key, axis.values[0], &spec->base);
      }
    } else if (directive == "sweep") {
      SweepAxis axis;
      std::string axis_error;
      if (!ParseSweepAxisSpec(rest, &axis, &axis_error)) {
        return fail(axis_error);
      }
      for (const SweepAxis& existing : spec->axes) {
        if (existing.key == axis.key) {
          return fail("duplicate sweep axis '" + axis.key + "'");
        }
      }
      spec->axes.push_back(std::move(axis));
    } else {
      return fail("unknown directive '" + directive + "'");
    }
  }
  return true;
}

bool ApplySweepParam(const std::string& key, double value, ScenarioOptions* options) {
  const ScenarioOptionDef* def = FindScenarioOptionByKey(key);
  if (def == nullptr || !def->sweepable || def->apply_number == nullptr) {
    return false;
  }
  def->apply_number(value, options);
  return true;
}

bool ApplySweepParamText(const std::string& key, const std::string& value,
                         ScenarioOptions* options) {
  const ScenarioOptionDef* def = FindScenarioOptionByKey(key);
  if (def == nullptr || !def->sweepable || def->kind != ScenarioOptionDef::Kind::kString) {
    return false;
  }
  std::string error;
  return def->parse(value, options, &error);
}

bool FindDuplicateAxisKey(const std::vector<SweepAxis>& axes, std::string* key) {
  for (size_t a = 0; a < axes.size(); ++a) {
    for (size_t b = a + 1; b < axes.size(); ++b) {
      if (axes[a].key == axes[b].key) {
        *key = axes[a].key;
        return true;
      }
    }
  }
  return false;
}

std::vector<SweepPoint> ExpandSweepGrid(const SweepSpec& spec) {
  size_t grid = 1;
  for (const SweepAxis& axis : spec.axes) {
    grid *= axis.size();
  }
  std::vector<SweepPoint> points;
  points.reserve(grid * static_cast<size_t>(spec.repeats));
  std::vector<size_t> idx(spec.axes.size(), 0);
  for (size_t cell = 0; cell < grid; ++cell) {
    // Decode `cell` into per-axis indices, axis 0 slowest (row-major).
    size_t rem = cell;
    for (size_t a = spec.axes.size(); a-- > 0;) {
      idx[a] = rem % spec.axes[a].size();
      rem /= spec.axes[a].size();
    }
    for (int r = 0; r < spec.repeats; ++r) {
      SweepPoint p;
      p.point_index = static_cast<int>(cell);
      p.repeat = r;
      p.seed = DeriveSweepSeed(spec.base_seed, p.point_index, r);
      p.options = spec.base;
      for (size_t a = 0; a < spec.axes.size(); ++a) {
        const SweepAxis& axis = spec.axes[a];
        SweepParamValue value;
        if (axis.is_string()) {
          value.is_string = true;
          value.text = axis.text_values[idx[a]];
          ApplySweepParamText(axis.key, value.text, &p.options);
        } else {
          value.number = axis.values[idx[a]];
          ApplySweepParam(axis.key, value.number, &p.options);
        }
        p.params.emplace_back(axis.key, std::move(value));
      }
      p.options.seed = p.seed;
      points.push_back(std::move(p));
    }
  }
  return points;
}

SweepRunOutcome RunSweep(const SweepSpec& spec, const ScenarioRegistry& registry, int jobs) {
  SweepRunOutcome outcome;
  outcome.spec = spec;
  if (spec.scenario.empty()) {
    outcome.error = "sweep has no scenario";
    return outcome;
  }
  const ScenarioRegistry::Entry* entry = registry.Find(spec.scenario);
  if (entry == nullptr) {
    outcome.error = "unknown scenario '" + spec.scenario + "'";
    return outcome;
  }
  if (spec.repeats < 1) {
    outcome.error = "repeats must be >= 1";
    return outcome;
  }
  std::string duplicate;
  if (FindDuplicateAxisKey(spec.axes, &duplicate)) {
    outcome.error = "duplicate sweep axis '" + duplicate + "'";
    return outcome;
  }

  std::vector<SweepPoint> points = ExpandSweepGrid(spec);
  outcome.runs.resize(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    outcome.runs[i].point = std::move(points[i]);
  }

  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) {
      jobs = 1;
    }
  }
  jobs = std::min<int>(jobs, static_cast<int>(outcome.runs.size()));
  jobs = std::max(jobs, 1);
  outcome.jobs_used = jobs;

  const auto start = std::chrono::steady_clock::now();
  // Each worker claims runs off a shared counter and writes only into its own
  // claimed ScenarioContext slots, so the result layout (and therefore the
  // aggregate JSON) is independent of scheduling.
  std::atomic<size_t> next{0};
  const auto worker = [&]() {
    for (size_t i = next.fetch_add(1); i < outcome.runs.size(); i = next.fetch_add(1)) {
      ScenarioContext& ctx = outcome.runs[i];
      // Per-run counter/profiler installs: each worker thread observes only the
      // run it is executing (thread-local current pointers), so counters and
      // wall times attribute cleanly no matter how runs are scheduled.
      PhaseProfiler profiler;
      const auto run_start = std::chrono::steady_clock::now();
      try {
        ScopedRunCounters install_counters(&ctx.counters);
        ScopedProfilerInstall install_profiler(&profiler);
        ctx.report = entry->fn(ctx.point.options);
      } catch (const std::exception& e) {
        ctx.error = e.what();
      } catch (...) {
        ctx.error = "unknown exception";
      }
      ctx.wall_sec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start).count();
      ctx.profile = SnapshotPhases(profiler);
    }
  };
  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(jobs));
    for (int t = 0; t < jobs; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  outcome.wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  for (const ScenarioContext& ctx : outcome.runs) {
    if (!ctx.error.empty()) {
      outcome.error = "point " + std::to_string(ctx.point.point_index) + " repeat " +
                      std::to_string(ctx.point.repeat) + " failed: " + ctx.error;
      return outcome;
    }
  }
  outcome.ok = true;
  return outcome;
}

std::map<std::string, double> FlattenReportMetrics(const ScenarioReport& report) {
  std::map<std::string, double> flat;
  for (const auto& [key, value] : report.scalars()) {
    flat[key] = value;
  }
  for (const SeriesReport& s : report.series()) {
    std::vector<double> sorted = s.samples;
    std::sort(sorted.begin(), sorted.end());
    flat[s.name + ".count"] = static_cast<double>(sorted.size());
    flat[s.name + ".p05_s"] = PercentileSorted(sorted, 0.05);
    flat[s.name + ".p50_s"] = PercentileSorted(sorted, 0.50);
    flat[s.name + ".p90_s"] = PercentileSorted(sorted, 0.90);
    flat[s.name + ".max_s"] = PercentileSorted(sorted, 1.0);
    for (const auto& [key, value] : s.metrics) {
      flat[s.name + "." + key] = value;
    }
  }
  return flat;
}

void WriteSweepJson(std::ostream& os, const SweepRunOutcome& outcome) {
  const SweepSpec& spec = outcome.spec;
  JsonWriter json(os);
  json.BeginObject();
  json.Field("schema", "bullet-bench-v3");
  json.Field("sweep", spec.OutputName());
  json.Field("scenario", spec.scenario);
  json.Field("base_seed", spec.base_seed);
  json.Field("repeats", static_cast<int64_t>(spec.repeats));
  json.Field("repro_scale", GetReproScale().file_scale);

  json.Key("axes").BeginArray();
  for (const SweepAxis& axis : spec.axes) {
    json.BeginObject();
    json.Field("key", axis.key);
    json.Key("values").BeginArray();
    if (axis.is_string()) {
      for (const std::string& v : axis.text_values) {
        json.String(v);
      }
    } else {
      for (const double v : axis.values) {
        json.Number(v);
      }
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();

  json.Key("points").BeginArray();
  // Runs are grid-major / repeat-minor, so each point's repeats are contiguous.
  for (size_t i = 0; i < outcome.runs.size(); i += static_cast<size_t>(spec.repeats)) {
    const ScenarioContext& first = outcome.runs[i];
    json.BeginObject();
    json.Field("point_index", static_cast<int64_t>(first.point.point_index));
    json.Key("params").BeginObject();
    for (const auto& [key, value] : first.point.params) {
      if (value.is_string) {
        json.Field(key, value.text);
      } else {
        json.Field(key, value.number);
      }
    }
    json.EndObject();
    json.Key("seeds").BeginArray();
    for (int r = 0; r < spec.repeats; ++r) {
      json.Uint(outcome.runs[i + static_cast<size_t>(r)].point.seed);
    }
    json.EndArray();

    // metric name -> one value per repeat (sorted map ⇒ stable emission order).
    std::map<std::string, std::vector<double>> samples;
    for (int r = 0; r < spec.repeats; ++r) {
      const ScenarioContext& ctx = outcome.runs[i + static_cast<size_t>(r)];
      if (!ctx.report) {
        continue;
      }
      for (const auto& [key, value] : FlattenReportMetrics(*ctx.report)) {
        samples[key].push_back(value);
      }
    }
    json.Key("metrics").BeginObject();
    for (auto& [key, values] : samples) {
      std::sort(values.begin(), values.end());
      json.Key(key).BeginObject();
      json.Field("median", PercentileSorted(values, 0.50));
      json.Field("p10", PercentileSorted(values, 0.10));
      json.Field("p90", PercentileSorted(values, 0.90));
      json.EndObject();
    }
    json.EndObject();
    // Median per-phase *counts* across the point's repeats. Counts derive from
    // the seed alone, so this block keeps the aggregate --jobs-invariant;
    // phase nanoseconds are wall-clock data and stay out of this document.
    if (PhaseProfiler::kCompiledIn) {
      json.Key("profile").BeginObject();
      for (int p = 0; p < kProfilePhaseCount; ++p) {
        std::vector<double> counts;
        counts.reserve(static_cast<size_t>(spec.repeats));
        for (int r = 0; r < spec.repeats; ++r) {
          counts.push_back(static_cast<double>(
              outcome.runs[i + static_cast<size_t>(r)].profile.phases[p].count));
        }
        std::sort(counts.begin(), counts.end());
        json.Field(ProfilePhaseName(static_cast<ProfilePhase>(p)),
                   PercentileSorted(counts, 0.50));
      }
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndArray();

  json.EndObject();
  os << "\n";
}

void WriteSweepFloorsJson(std::ostream& os, const SweepRunOutcome& outcome) {
  const SweepSpec& spec = outcome.spec;
  JsonWriter json(os);
  json.BeginObject();
  json.Field("schema", "bullet-floors-v1");
  json.Field("sweep", spec.OutputName());
  json.Field("scenario", spec.scenario);
  json.Field("base_seed", spec.base_seed);
  json.Field("repeats", static_cast<int64_t>(spec.repeats));
  json.Field("repro_scale", GetReproScale().file_scale);

  const auto median_of = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return PercentileSorted(v, 0.50);
  };

  json.Key("points").BeginArray();
  for (size_t i = 0; i < outcome.runs.size(); i += static_cast<size_t>(spec.repeats)) {
    const ScenarioContext& first = outcome.runs[i];
    json.BeginObject();
    json.Field("point_index", static_cast<int64_t>(first.point.point_index));
    json.Key("params").BeginObject();
    for (const auto& [key, value] : first.point.params) {
      if (value.is_string) {
        json.Field(key, value.text);
      } else {
        json.Field(key, value.number);
      }
    }
    json.EndObject();

    std::vector<double> wall;
    std::vector<double> events;
    std::vector<double> bytes;
    for (int r = 0; r < spec.repeats; ++r) {
      const ScenarioContext& ctx = outcome.runs[i + static_cast<size_t>(r)];
      wall.push_back(ctx.wall_sec);
      events.push_back(static_cast<double>(ctx.counters.events_executed));
      bytes.push_back(static_cast<double>(ctx.counters.sim_bytes_sent));
    }
    const double wall_median = median_of(wall);
    json.Field("wall_sec_median", wall_median);
    json.Field("events_executed_median", median_of(events));
    json.Field("sim_bytes_sent_median", median_of(bytes));
    // The gated metrics. Division by a tiny wall time would make the floors
    // meaninglessly huge, so sub-millisecond medians are clamped.
    const double denom = wall_median > 1e-3 ? wall_median : 1e-3;
    json.Key("floors").BeginObject();
    json.Field("events_per_wall_sec", median_of(events) / denom);
    json.Field("sim_bytes_per_wall_sec", median_of(bytes) / denom);
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();

  json.EndObject();
  os << "\n";
}

namespace {

// The deterministic memory-byte scalars the ceilings gate understands, in
// emission order. Scenarios opt in by AddScalar-ing them (fig24_megaswarm).
constexpr const char* kCeilingMetrics[] = {"arena_peak_bytes", "path_pool_bytes",
                                           "route_cache_bytes"};

}  // namespace

bool SweepHasCeilingMetrics(const SweepRunOutcome& outcome) {
  for (const ScenarioContext& ctx : outcome.runs) {
    if (!ctx.report) {
      continue;
    }
    for (const auto& [key, value] : ctx.report->scalars()) {
      for (const char* name : kCeilingMetrics) {
        if (key == name) {
          return true;
        }
      }
    }
  }
  return false;
}

void WriteSweepCeilingsJson(std::ostream& os, const SweepRunOutcome& outcome) {
  const SweepSpec& spec = outcome.spec;
  JsonWriter json(os);
  json.BeginObject();
  json.Field("schema", "bullet-ceilings-v1");
  json.Field("sweep", spec.OutputName());
  json.Field("scenario", spec.scenario);
  json.Field("base_seed", spec.base_seed);
  json.Field("repeats", static_cast<int64_t>(spec.repeats));
  json.Field("repro_scale", GetReproScale().file_scale);

  json.Key("points").BeginArray();
  for (size_t i = 0; i < outcome.runs.size(); i += static_cast<size_t>(spec.repeats)) {
    const ScenarioContext& first = outcome.runs[i];
    json.BeginObject();
    json.Field("point_index", static_cast<int64_t>(first.point.point_index));
    json.Key("params").BeginObject();
    for (const auto& [key, value] : first.point.params) {
      if (value.is_string) {
        json.Field(key, value.text);
      } else {
        json.Field(key, value.number);
      }
    }
    json.EndObject();

    json.Key("ceilings").BeginObject();
    for (const char* name : kCeilingMetrics) {
      std::vector<double> values;
      for (int r = 0; r < spec.repeats; ++r) {
        const ScenarioContext& ctx = outcome.runs[i + static_cast<size_t>(r)];
        if (!ctx.report) {
          continue;
        }
        for (const auto& [key, value] : ctx.report->scalars()) {
          if (key == name) {
            values.push_back(value);
          }
        }
      }
      if (!values.empty()) {
        std::sort(values.begin(), values.end());
        json.Field(name, PercentileSorted(values, 0.50));
      }
    }
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();

  json.EndObject();
  os << "\n";
}

}  // namespace bullet
