// Dynamic network condition drivers (Section 4.1 of the paper).
//
// The paper's bandwidth-change scenario "models changes in the network bandwidth that
// correspond to correlated and cumulative decreases in bandwidth from a large set of
// sources from any vantage point": every 20 seconds, choose 50% of the overlay
// participants uniformly at random; for each, choose 50% of the other participants
// and halve the core-link bandwidth from those nodes toward the chosen one (the
// reverse direction is unaffected; decreases are cumulative).
//
// Topology mapping: on the mesh, "the bandwidth from s toward r" is the private
// core(s, r) link, so each decrease touches exactly one pair — the paper's
// setup, bit for bit. On a RoutedTopology the same driver halves every interior
// link of the s->r route (Topology::ScalePathBandwidth): a shared transit or
// stub-gateway link sampled via several receivers in one firing degrades once
// per sampled (s, r) pair that routes across it, so decreases are *correlated*
// across flows sharing the link and *cumulative* across firings — the
// sparse-graph reading of the paper's process. The RNG draw sequence depends
// only on (node_fraction, sender_fraction, n), never on the topology class, so
// mesh and routed runs with equal seeds sample identical (s, r) sets.

#ifndef SRC_SIM_DYNAMICS_H_
#define SRC_SIM_DYNAMICS_H_

#include <vector>

#include "src/sim/network.h"

namespace bullet {

struct BandwidthDynamicsParams {
  SimTime period = SecToSim(20.0);
  double node_fraction = 0.5;   // fraction of nodes whose inbound links degrade
  double sender_fraction = 0.5; // fraction of other nodes whose links toward it degrade
  double factor = 0.5;          // multiplicative decrease, cumulative
};

// Schedules the periodic correlated bandwidth decrease on `net`'s topology. Runs for
// the lifetime of the simulation (each firing reschedules the next).
void StartPeriodicBandwidthChanges(Network& net, const BandwidthDynamicsParams& params);

// The Section 4.5 cascading scenario (Fig. 12): every `interval`, pick the next node
// from `senders` (in order) and set the core bandwidth from it toward `target` to
// `new_bps`. Changes are permanent and cumulative across senders.
void StartCascade(Network& net, NodeId target, std::vector<NodeId> senders, SimTime interval,
                  double new_bps);

// Periodically samples the bandwidth the allocator granted across each of
// `link_ids` (topology interior link ids, e.g. transit-stub gateway uplinks).
// Every `period`, starting at `start`, one sample time is appended to
// *out_time_sec and one row — allocated bits/second per link, parallel to
// `link_ids` — is appended to *out_bps. Runs for the simulation lifetime; the
// output vectors must outlive the run. Used by the correlated-failure scenario
// to show shared-link utilization collapsing and recovering around an outage.
void StartInteriorLinkSampling(Network& net, std::vector<int32_t> link_ids, SimTime start,
                               SimTime period, std::vector<double>* out_time_sec,
                               std::vector<std::vector<double>>* out_bps);

}  // namespace bullet

#endif  // SRC_SIM_DYNAMICS_H_
