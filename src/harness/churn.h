// Failure injection for resilience experiments.
//
// The paper's core argument for meshes (Section 1) is that losing one of n peers
// costs roughly 1/n of a node's bandwidth and triggers no reconnection storm,
// whereas losing an interior tree node cuts off a whole subtree. The paper's own
// experiments run without churn; this driver is the reproduction's extension for
// exercising that claim (tests/integration/churn_test.cc, bench_churn_resilience).
//
// Failures target leaves of the control tree: Bullet' repairs its *mesh* around
// failures (RanSub stops advertising dead peers once their summaries age out, and
// ManageSenders replaces them), but control-tree repair is out of scope here as it
// was in the paper, so killing interior tree nodes would conflate the two effects.

#ifndef SRC_HARNESS_CHURN_H_
#define SRC_HARNESS_CHURN_H_

#include <string>
#include <vector>

#include "src/overlay/control_tree.h"
#include "src/sim/network.h"

namespace bullet {

struct ChurnPlan {
  std::vector<NodeId> victims;  // in kill order
  SimTime first_kill = SecToSim(15.0);
  SimTime interval = SecToSim(10.0);
};

// Picks up to `count` control-tree leaves (never the source), uniformly at random.
ChurnPlan PlanLeafFailures(const ControlTree& tree, NodeId source, int count, Rng& rng);

// Schedules the failures on the network's event queue.
void ScheduleChurn(Network& net, const ChurnPlan& plan);

// --- generator interface (workload_gen.h family) ---
//
// A ChurnModel turns the assembled workload (topology + per-session trees and
// member sets) into a failure schedule, drawn deterministically from the rng
// stream the harness derives from the workload seed. WorkloadExperiment routes
// every event through its departure path: Network::FailNode plus the owning
// session's completion-policy credit, so churned sessions still terminate.

struct ChurnEvent {
  NodeId node = -1;
  SimTime at = 0;  // absolute simulation time
};

// Read-only view of the workload a churn model schedules over.
struct ChurnContext {
  struct SessionView {
    const ControlTree* tree = nullptr;
    NodeId source = -1;
    const std::vector<NodeId>* members = nullptr;  // normalized member list
  };
  const Topology* topology = nullptr;
  std::vector<SessionView> sessions;
};

class ChurnModel {
 public:
  virtual ~ChurnModel() = default;
  // Reporting label ("leaf", "stub", "gateway").
  virtual std::string name() const = 0;
  // The failure schedule. Implementations must never target a session source.
  virtual std::vector<ChurnEvent> Schedule(const ChurnContext& ctx, Rng& rng) const = 0;
};

// PlanLeafFailures/ScheduleChurn as a generator: per session (in order), up to
// `count` control-tree leaves die, one every `interval` starting at
// `first_kill` (the kill clock is shared across sessions).
class LeafFailureChurn final : public ChurnModel {
 public:
  explicit LeafFailureChurn(int count, SimTime first_kill = SecToSim(15.0),
                           SimTime interval = SecToSim(10.0));
  std::string name() const override { return "leaf"; }
  std::vector<ChurnEvent> Schedule(const ChurnContext& ctx, Rng& rng) const override;

 private:
  int count_;
  SimTime first_kill_;
  SimTime interval_;
};

// Topology-correlated outage over a transit-stub RoutedTopology: at `at`, every
// session member attached under one stub domain (kStubDomain) — or under every
// stub domain of one transit router (kGatewayRouter) — fails at once. The
// victim domain is chosen uniformly among domains that contain at least one
// member and no session source. Requires a TransitStub-built topology.
class CorrelatedFailureChurn final : public ChurnModel {
 public:
  enum class Scope { kStubDomain, kGatewayRouter };
  CorrelatedFailureChurn(Scope scope, SimTime at);
  std::string name() const override;
  std::vector<ChurnEvent> Schedule(const ChurnContext& ctx, Rng& rng) const override;

 private:
  Scope scope_;
  SimTime at_;
};

}  // namespace bullet

#endif  // SRC_HARNESS_CHURN_H_
