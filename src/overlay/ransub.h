// RanSub (Kostic et al., USITS'03): epoch-based distribution of changing, uniformly
// random subsets of per-node state over a control tree.
//
// Implementation notes. The original protocol alternates strict collect and
// distribute phases. We implement a continuously-pipelined variant that avoids
// cross-epoch synchronization: every node keeps, per child, the most recent
// *collect pool* — a bounded weighted sample of summaries from that child's subtree.
// When a distribute message passes through a node it (a) hands the protocol its
// random subset, (b) forwards freshly re-randomized subsets to each child, and (c)
// sends its own collect pool (merged from self + child pools) up the tree. Child
// pools are therefore one epoch stale, which only delays summary freshness by one
// epoch — membership information is unaffected. Weighted reservoir merging keeps the
// distributed subsets near-uniform over all nodes; tests/overlay/ransub_test.cc
// checks uniformity with a chi-square bound.

#ifndef SRC_OVERLAY_RANSUB_H_
#define SRC_OVERLAY_RANSUB_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/overlay/control_tree.h"
#include "src/sim/event_queue.h"
#include "src/sim/network.h"

namespace bullet {

// One node's advertised state. Carried in collect pools and distribute subsets.
struct PeerSummary {
  NodeId node = -1;
  uint32_t block_count = 0;  // distinct blocks held
  uint64_t sketch_bits = 0;  // AvailabilitySketch of held blocks
  float incoming_mbps = 0;   // advertised inbound rate (informational)

  static constexpr size_t kWireBytes = 24;
};

struct RanSubDistributeMsg : Message {
  static constexpr int kType = 9001;
  int epoch = 0;
  std::vector<PeerSummary> subset;
};

struct RanSubCollectMsg : Message {
  static constexpr int kType = 9002;
  int epoch = 0;
  // Bounded weighted sample of the sender's subtree; weight[i] counts how many
  // subtree nodes entry i represents (weights sum to the subtree size).
  std::vector<PeerSummary> pool;
  std::vector<float> weights;
};

class RanSubAgent {
 public:
  struct Config {
    size_t subset_size = 10;
    size_t pool_size = 32;
    SimTime epoch_period = SecToSim(5.0);  // the paper's setting (Section 3.2.2)
  };

  // `summarize` produces this node's current summary. `on_distribute` fires once per
  // epoch with the node's random subset. `send_to_peer` must route a message to the
  // given tree neighbor (parent or child).
  RanSubAgent(const ControlTree* tree, NodeId self, Config config, Rng rng,
              std::function<PeerSummary()> summarize,
              std::function<void(const std::vector<PeerSummary>&)> on_distribute,
              std::function<void(NodeId, std::unique_ptr<Message>)> send_to_peer,
              EventQueue* queue);

  // Roots start the epoch timer; non-roots are driven by incoming distributes.
  void Start();

  // Returns true if the message type belongs to RanSub and was consumed.
  bool HandleMessage(NodeId from, Message& msg);

  int epochs_seen() const { return epochs_seen_; }

 private:
  void RootEpoch();
  void OnDistribute(const RanSubDistributeMsg& msg);
  void OnCollect(NodeId from, RanSubCollectMsg& msg);
  // Weighted sample (without replacement) of k summaries from the given pools.
  std::vector<PeerSummary> SampleFrom(const std::vector<const RanSubCollectMsg*>& pools,
                                      const std::vector<PeerSummary>& extra,
                                      const std::vector<float>& extra_weights, size_t k,
                                      NodeId exclude);
  // Builds this node's upward pool from self + current child pools.
  RanSubCollectMsg BuildCollect();
  void SendSubsetsToChildren(const std::vector<PeerSummary>& parent_subset, int epoch);

  const ControlTree* tree_;
  NodeId self_;
  Config config_;
  Rng rng_;
  std::function<PeerSummary()> summarize_;
  std::function<void(const std::vector<PeerSummary>&)> on_distribute_;
  std::function<void(NodeId, std::unique_ptr<Message>)> send_;
  EventQueue* queue_;

  // Most recent collect pool per child (index into tree children order).
  std::vector<std::unique_ptr<RanSubCollectMsg>> child_pools_;
  int epoch_ = 0;
  int epochs_seen_ = 0;
};

}  // namespace bullet

#endif  // SRC_OVERLAY_RANSUB_H_
