// StableFlatMap — an arena-backed ordered map for per-node protocol state.
//
// Drop-in for the std::map peer tables in Bullet'/BitTorrent node state, built
// for the mega-swarm regime (100k nodes x tens of peers): entries live in a
// PooledArena (chunked slabs, stable addresses, LIFO slot reuse), membership
// is an open-addressing hash table (splitmix64-mixed keys, linear probing,
// tombstone deletion), and iteration walks a sorted pointer index so the
// traversal order is ascending by key — byte-identical to the std::map order
// the protocols' determinism contract depends on.
//
// Iterator semantics match what the protocol code actually does with its
// std::map iterators: dereference to pair<const Key, Value>&, hold an
// iterator across a read-only scan and erase it afterwards, structured
// bindings in range-for. Inserting or erasing invalidates iterators (the
// sorted index is a vector); entry *addresses* stay stable for the entry's
// lifetime.

#ifndef SRC_SIM_SCALE_STABLE_FLAT_MAP_H_
#define SRC_SIM_SCALE_STABLE_FLAT_MAP_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/sim/scale/arena.h"

namespace bullet {

template <typename Key, typename Value>
class StableFlatMap {
 public:
  using Entry = std::pair<const Key, Value>;

  class iterator {
   public:
    iterator() = default;
    Entry& operator*() const { return **p_; }
    Entry* operator->() const { return *p_; }
    iterator& operator++() {
      ++p_;
      return *this;
    }
    bool operator==(const iterator& o) const { return p_ == o.p_; }
    bool operator!=(const iterator& o) const { return p_ != o.p_; }

   private:
    friend class StableFlatMap;
    explicit iterator(Entry** p) : p_(p) {}
    Entry** p_ = nullptr;
  };

  class const_iterator {
   public:
    const_iterator() = default;
    const_iterator(iterator it) : p_(it.p_) {}  // NOLINT: implicit like std::map
    const Entry& operator*() const { return **p_; }
    const Entry* operator->() const { return *p_; }
    const_iterator& operator++() {
      ++p_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return p_ == o.p_; }
    bool operator!=(const const_iterator& o) const { return p_ != o.p_; }

   private:
    friend class StableFlatMap;
    explicit const_iterator(Entry* const* p) : p_(p) {}
    Entry* const* p_ = nullptr;
  };

  explicit StableFlatMap(ArenaCounter* counter = nullptr)
      : counter_(counter), arena_(counter) {}
  StableFlatMap(StableFlatMap&&) = default;
  StableFlatMap& operator=(StableFlatMap&&) = default;
  ~StableFlatMap() {
    clear();
    if (counter_ != nullptr) {
      counter_->Add(-SideBytes());
    }
  }

  size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

  iterator begin() { return iterator(index_.data()); }
  iterator end() { return iterator(index_.data() + index_.size()); }
  const_iterator begin() const { return const_iterator(index_.data()); }
  const_iterator end() const { return const_iterator(index_.data() + index_.size()); }

  iterator find(const Key& key) {
    return Probe(key) != nullptr ? iterator(index_.data() + IndexPos(key)) : end();
  }
  const_iterator find(const Key& key) const {
    return Probe(key) != nullptr ? const_iterator(index_.data() + IndexPos(key)) : end();
  }

  size_t count(const Key& key) const { return Probe(key) != nullptr ? 1 : 0; }

  Value& at(const Key& key) {
    Entry* e = Probe(key);
    BULLET_CHECK(e != nullptr && "StableFlatMap::at: missing key");
    return e->second;
  }
  const Value& at(const Key& key) const {
    return const_cast<StableFlatMap*>(this)->at(key);
  }

  template <typename V>
  std::pair<iterator, bool> emplace(const Key& key, V&& value) {
    if (Probe(key) != nullptr) {
      return {iterator(index_.data() + IndexPos(key)), false};
    }
    const int64_t before = SideBytes();
    Entry* e = arena_.New(key, std::forward<V>(value));
    InsertTable(e);
    const size_t pos = IndexPos(key);
    index_.insert(index_.begin() + static_cast<ptrdiff_t>(pos), e);
    if (counter_ != nullptr) {
      counter_->Add(SideBytes() - before);
    }
    return {iterator(index_.data() + pos), true};
  }

  iterator erase(iterator it) {
    Entry* e = *it.p_;
    const size_t pos = static_cast<size_t>(it.p_ - index_.data());
    EraseTable(e->first);
    index_.erase(index_.begin() + static_cast<ptrdiff_t>(pos));
    arena_.Delete(e);
    return iterator(index_.data() + pos);
  }

  size_t erase(const Key& key) {
    if (Probe(key) == nullptr) {
      return 0;
    }
    erase(iterator(index_.data() + IndexPos(key)));
    return 1;
  }

  void clear() {
    for (Entry* e : index_) {
      arena_.Delete(e);
    }
    index_.clear();
    std::fill(table_.begin(), table_.end(), nullptr);
    table_used_ = 0;
  }

  // Bytes held beyond the entries themselves (arena slabs are counted by the
  // arena); exposed for tests pinning the telemetry.
  int64_t SideBytes() const {
    return static_cast<int64_t>(index_.capacity() * sizeof(Entry*) +
                                table_.capacity() * sizeof(Entry*));
  }

 private:
  static Entry* Tombstone() { return reinterpret_cast<Entry*>(alignof(Entry)); }

  static uint64_t Mix(uint64_t x) {
    // splitmix64 finalizer — ConnIds carry structure in high bits (partition
    // store ids), so identity hashing would cluster under a power-of-2 mask.
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  Entry* Probe(const Key& key) const {
    if (table_.empty()) {
      return nullptr;
    }
    const size_t mask = table_.size() - 1;
    size_t i = static_cast<size_t>(Mix(static_cast<uint64_t>(key))) & mask;
    while (true) {
      Entry* e = table_[i];
      if (e == nullptr) {
        return nullptr;
      }
      if (e != Tombstone() && e->first == key) {
        return e;
      }
      i = (i + 1) & mask;
    }
  }

  // Position of `key` (or its insertion point) in the sorted index.
  size_t IndexPos(const Key& key) const {
    const auto it = std::lower_bound(
        index_.begin(), index_.end(), key,
        [](const Entry* e, const Key& k) { return e->first < k; });
    return static_cast<size_t>(it - index_.begin());
  }

  void InsertTable(Entry* e) {
    if (table_.empty() || (table_used_ + 1) * 10 >= table_.size() * 7) {
      // Size off the *live* count, not the slot count: under churn most used
      // slots are tombstones, and doubling blindly would ratchet forever.
      size_t target = 16;
      while ((index_.size() + 1) * 2 >= target) {
        target *= 2;
      }
      Rehash(target);
    }
    const size_t mask = table_.size() - 1;
    size_t i = static_cast<size_t>(Mix(static_cast<uint64_t>(e->first))) & mask;
    while (table_[i] != nullptr && table_[i] != Tombstone()) {
      i = (i + 1) & mask;
    }
    if (table_[i] == nullptr) {
      ++table_used_;
    }
    table_[i] = e;
  }

  void EraseTable(const Key& key) {
    const size_t mask = table_.size() - 1;
    size_t i = static_cast<size_t>(Mix(static_cast<uint64_t>(key))) & mask;
    while (true) {
      Entry* e = table_[i];
      BULLET_CHECK(e != nullptr && "StableFlatMap: erasing a key not in the table");
      if (e != Tombstone() && e->first == key) {
        table_[i] = Tombstone();  // stays counted in table_used_
        return;
      }
      i = (i + 1) & mask;
    }
  }

  void Rehash(size_t new_size) {
    std::vector<Entry*> old = std::move(table_);
    table_.assign(new_size, nullptr);
    table_used_ = 0;
    for (Entry* e : old) {
      if (e != nullptr && e != Tombstone()) {
        const size_t mask = table_.size() - 1;
        size_t i = static_cast<size_t>(Mix(static_cast<uint64_t>(e->first))) & mask;
        while (table_[i] != nullptr) {
          i = (i + 1) & mask;
        }
        table_[i] = e;
        ++table_used_;
      }
    }
  }

  ArenaCounter* counter_ = nullptr;
  PooledArena<Entry> arena_;
  std::vector<Entry*> index_;  // sorted ascending by key: the iteration order
  std::vector<Entry*> table_;  // open addressing; power-of-2, linear probing
  size_t table_used_ = 0;      // occupied slots including tombstones
};

}  // namespace bullet

#endif  // SRC_SIM_SCALE_STABLE_FLAT_MAP_H_
