#include "src/harness/sweep.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

namespace bullet {
namespace {

TEST(ParseSweepAxisSpecTest, ParsesKeyAndValues) {
  SweepAxis axis;
  std::string error;
  ASSERT_TRUE(ParseSweepAxisSpec("nodes=20,50,100", &axis, &error)) << error;
  EXPECT_EQ(axis.key, "nodes");
  EXPECT_EQ(axis.values, (std::vector<double>{20, 50, 100}));

  ASSERT_TRUE(ParseSweepAxisSpec("loss=0,0.01", &axis, &error)) << error;
  EXPECT_EQ(axis.key, "loss");
  EXPECT_EQ(axis.values, (std::vector<double>{0.0, 0.01}));
}

TEST(ParseSweepAxisSpecTest, RejectsBadInput) {
  SweepAxis axis;
  std::string error;
  EXPECT_FALSE(ParseSweepAxisSpec("nodes", &axis, &error));          // no '='
  EXPECT_FALSE(ParseSweepAxisSpec("=1,2", &axis, &error));           // no key
  EXPECT_FALSE(ParseSweepAxisSpec("nodes=", &axis, &error));         // no values
  EXPECT_FALSE(ParseSweepAxisSpec("nodes=20,,50", &axis, &error));   // empty value
  EXPECT_FALSE(ParseSweepAxisSpec("nodes=20,abc", &axis, &error));   // not a number
  EXPECT_FALSE(ParseSweepAxisSpec("nodes=20.5", &axis, &error));     // fractional int
  EXPECT_FALSE(ParseSweepAxisSpec("nodes=1", &axis, &error));        // below range
  EXPECT_FALSE(ParseSweepAxisSpec("loss=1.5", &axis, &error));       // above range
  EXPECT_FALSE(ParseSweepAxisSpec("warp=9", &axis, &error));         // unknown key
  EXPECT_NE(error.find("warp"), std::string::npos);
}

TEST(ExpandSweepGridTest, CartesianProductWithRepeats) {
  SweepSpec spec;
  spec.scenario = "s";
  spec.repeats = 2;
  spec.base_seed = 7;
  SweepAxis nodes{"nodes", {20, 50}};
  SweepAxis loss{"loss", {0.0, 0.01, 0.03}};
  spec.axes = {nodes, loss};

  const std::vector<SweepPoint> points = ExpandSweepGrid(spec);
  ASSERT_EQ(points.size(), 2u * 3u * 2u);

  // Grid-major (axis 0 slowest), repeat-minor ordering.
  EXPECT_EQ(points[0].point_index, 0);
  EXPECT_EQ(points[0].repeat, 0);
  EXPECT_EQ(points[1].point_index, 0);
  EXPECT_EQ(points[1].repeat, 1);
  EXPECT_EQ(points[2].point_index, 1);

  // Cell 0: (nodes=20, loss=0); cell 3: (nodes=50, loss=0); cell 5: (50, 0.03).
  EXPECT_EQ(points[0].params[0].first, "nodes");
  EXPECT_EQ(points[0].params[0].second.number, 20.0);
  EXPECT_EQ(points[0].params[1].first, "loss");
  EXPECT_EQ(points[0].params[1].second.number, 0.0);
  EXPECT_EQ(points[6].params[0].second.number, 50.0);
  EXPECT_EQ(points[6].params[1].second.number, 0.0);
  EXPECT_EQ(points[10].params[1].second.number, 0.03);

  // Options carry the per-point assignment and the derived seed.
  ASSERT_TRUE(points[6].options.nodes.has_value());
  EXPECT_EQ(*points[6].options.nodes, 50);
  ASSERT_TRUE(points[6].options.loss.has_value());
  EXPECT_DOUBLE_EQ(*points[6].options.loss, 0.0);
  ASSERT_TRUE(points[6].options.seed.has_value());
  EXPECT_EQ(*points[6].options.seed, points[6].seed);
}

TEST(ExpandSweepGridTest, AxisFreeSpecYieldsRepeatsOfBasePoint) {
  SweepSpec spec;
  spec.scenario = "s";
  spec.repeats = 3;
  spec.base.nodes = 10;
  const std::vector<SweepPoint> points = ExpandSweepGrid(spec);
  ASSERT_EQ(points.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(points[static_cast<size_t>(r)].point_index, 0);
    EXPECT_EQ(points[static_cast<size_t>(r)].repeat, r);
    EXPECT_EQ(*points[static_cast<size_t>(r)].options.nodes, 10);
  }
}

TEST(DeriveSweepSeedTest, DeterministicAndDecorrelated) {
  EXPECT_EQ(DeriveSweepSeed(41, 3, 1), DeriveSweepSeed(41, 3, 1));
  std::set<uint64_t> seen;
  for (uint64_t base : {0ull, 1ull, 41ull}) {
    for (int point = 0; point < 8; ++point) {
      for (int repeat = 0; repeat < 4; ++repeat) {
        seen.insert(DeriveSweepSeed(base, point, repeat));
      }
    }
  }
  // All (base, point, repeat) combinations map to distinct streams.
  EXPECT_EQ(seen.size(), 3u * 8u * 4u);
}

TEST(ParseSweepFileTest, ParsesDirectivesAndComments) {
  std::istringstream in(
      "# sweep for the peerset family\n"
      "scenario fig07_peerset_static\n"
      "name fig07  # trailing comment\n"
      "repeats 3\n"
      "seed 700\n"
      "set block-bytes=8192\n"
      "\n"
      "sweep nodes=50,100\n"
      "sweep loss=0,0.01\n");
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseSweepFile(in, &spec, &error)) << error;
  EXPECT_EQ(spec.scenario, "fig07_peerset_static");
  EXPECT_EQ(spec.name, "fig07");
  EXPECT_EQ(spec.repeats, 3);
  EXPECT_EQ(spec.base_seed, 700u);
  ASSERT_TRUE(spec.base.block_bytes.has_value());
  EXPECT_EQ(*spec.base.block_bytes, 8192);
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].key, "nodes");
  EXPECT_EQ(spec.axes[1].key, "loss");
}

TEST(ParseSweepFileTest, SeedParsesExactlyAbove2Pow53) {
  std::istringstream in("scenario s\nseed 9007199254740993\n");
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseSweepFile(in, &spec, &error)) << error;
  // A double round-trip would collapse 2^53+1 onto 2^53.
  EXPECT_EQ(spec.base_seed, 9007199254740993ull);
}

TEST(ParseSweepFileTest, RejectsDuplicateAxis) {
  std::istringstream in("scenario s\nsweep nodes=20,50\nsweep nodes=100\n");
  SweepSpec spec;
  std::string error;
  EXPECT_FALSE(ParseSweepFile(in, &spec, &error));
  EXPECT_NE(error.find("duplicate sweep axis 'nodes'"), std::string::npos);
}

TEST(FindDuplicateAxisKeyTest, DetectsRepeatedKeys) {
  std::string key;
  EXPECT_FALSE(FindDuplicateAxisKey({SweepAxis{"nodes", {2}}, SweepAxis{"loss", {0}}}, &key));
  EXPECT_TRUE(FindDuplicateAxisKey(
      {SweepAxis{"nodes", {2}}, SweepAxis{"loss", {0}}, SweepAxis{"nodes", {4}}}, &key));
  EXPECT_EQ(key, "nodes");
}

TEST(ParseSweepFileTest, RejectsBadDirectives) {
  SweepSpec spec;
  std::string error;
  {
    std::istringstream in("teleport nodes=3\n");
    EXPECT_FALSE(ParseSweepFile(in, &spec, &error));
    EXPECT_NE(error.find("line 1"), std::string::npos);
  }
  {
    std::istringstream in("repeats zero\n");
    EXPECT_FALSE(ParseSweepFile(in, &spec, &error));
  }
  {
    std::istringstream in("sweep nodes=50 extra\n");
    EXPECT_FALSE(ParseSweepFile(in, &spec, &error));
  }
  {
    std::istringstream in("sweep warp=1\n");
    EXPECT_FALSE(ParseSweepFile(in, &spec, &error));
  }
}

// A registry whose scenario derives every reported value from its options, so
// sweep results are predictable and any cross-run state sharing would show up.
ScenarioRegistry MakeFakeRegistry() {
  ScenarioRegistry registry;
  registry.Register("fake", "options-echoing scenario", [](const ScenarioOptions& opts) {
    ScenarioReport report("fake");
    report.AddScalar("nodes", static_cast<double>(opts.nodes.value_or(-1)));
    report.AddScalar("seed_lo", static_cast<double>(opts.seed.value_or(0) % 1000000));
    ScenarioResult result;
    result.name = "Sys";
    const double base = static_cast<double>(opts.nodes.value_or(0));
    result.completion_sec = {base + 1.0, base + 2.0, base + 3.0};
    result.completed = 3;
    result.receivers = 3;
    report.AddCompletion(result);
    return report;
  });
  return registry;
}

std::string SweepJsonFor(const ScenarioRegistry& registry, int jobs, uint64_t base_seed) {
  SweepSpec spec;
  spec.scenario = "fake";
  spec.name = "t";
  spec.repeats = 3;
  spec.base_seed = base_seed;
  spec.axes = {SweepAxis{"nodes", {10, 20, 30}}, SweepAxis{"loss", {0.0, 0.01}}};
  const SweepRunOutcome outcome = RunSweep(spec, registry, jobs);
  EXPECT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.runs.size(), 3u * 2u * 3u);
  std::ostringstream os;
  WriteSweepJson(os, outcome);
  return os.str();
}

TEST(RunSweepTest, AggregateJsonIsByteIdenticalAcrossJobsAndRuns) {
  const ScenarioRegistry registry = MakeFakeRegistry();
  const std::string serial = SweepJsonFor(registry, 1, 41);
  const std::string parallel = SweepJsonFor(registry, 4, 41);
  const std::string again = SweepJsonFor(registry, 4, 41);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(parallel, again);
  // A different base seed must change the derived streams (and so the JSON).
  EXPECT_NE(serial, SweepJsonFor(registry, 1, 42));
}

TEST(RunSweepTest, ReportsUnknownScenario) {
  const ScenarioRegistry registry = MakeFakeRegistry();
  SweepSpec spec;
  spec.scenario = "missing";
  const SweepRunOutcome outcome = RunSweep(spec, registry, 1);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("missing"), std::string::npos);
}

TEST(RunSweepTest, RejectsDuplicateAxisKeys) {
  const ScenarioRegistry registry = MakeFakeRegistry();
  SweepSpec spec;
  spec.scenario = "fake";
  spec.axes = {SweepAxis{"nodes", {10, 20}}, SweepAxis{"nodes", {30}}};
  const SweepRunOutcome outcome = RunSweep(spec, registry, 1);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("duplicate sweep axis"), std::string::npos);
}

TEST(RunSweepTest, PropagatesScenarioExceptions) {
  ScenarioRegistry registry;
  registry.Register("boom", "throws", [](const ScenarioOptions&) -> ScenarioReport {
    throw std::runtime_error("kaboom");
  });
  SweepSpec spec;
  spec.scenario = "boom";
  const SweepRunOutcome outcome = RunSweep(spec, registry, 2);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("kaboom"), std::string::npos);
}

TEST(FlattenReportMetricsTest, NamespacesSeriesAndScalars) {
  ScenarioReport report("x");
  report.AddScalar("optimal_s", 4.5);
  ScenarioResult result;
  result.name = "Sys";
  result.completion_sec = {1.0, 2.0, 3.0, 4.0};
  result.completed = 4;
  result.receivers = 4;
  report.AddCompletion(result);

  const std::map<std::string, double> flat = FlattenReportMetrics(report);
  EXPECT_DOUBLE_EQ(flat.at("optimal_s"), 4.5);
  EXPECT_DOUBLE_EQ(flat.at("Sys.count"), 4.0);
  EXPECT_DOUBLE_EQ(flat.at("Sys.p50_s"), 2.5);
  EXPECT_DOUBLE_EQ(flat.at("Sys.max_s"), 4.0);
  EXPECT_DOUBLE_EQ(flat.at("Sys.completed"), 4.0);
}

TEST(WriteSweepJsonTest, AggregatesMedianAcrossRepeats) {
  // Hand-built outcome: one point, three repeats with scalar v = 1, 5, 3.
  SweepSpec spec;
  spec.scenario = "s";
  spec.name = "agg";
  spec.repeats = 3;
  SweepRunOutcome outcome;
  outcome.ok = true;
  outcome.spec = spec;
  for (int r = 0; r < 3; ++r) {
    ScenarioContext ctx;
    ctx.point.point_index = 0;
    ctx.point.repeat = r;
    ctx.point.seed = DeriveSweepSeed(1, 0, r);
    ScenarioReport report("s");
    report.AddScalar("v", r == 0 ? 1.0 : (r == 1 ? 5.0 : 3.0));
    ctx.report = std::move(report);
    outcome.runs.push_back(std::move(ctx));
  }
  std::ostringstream os;
  WriteSweepJson(os, outcome);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\":\"bullet-bench-v3\""), std::string::npos);
  EXPECT_NE(json.find("\"sweep\":\"agg\""), std::string::npos);
  EXPECT_NE(json.find("\"v\":{\"median\":3,"), std::string::npos);
  // Profile counts appear in the aggregate only for profiled builds (counts
  // are deterministic, so either way the document stays --jobs-invariant).
  EXPECT_EQ(json.find("\"profile\"") != std::string::npos, PhaseProfiler::kCompiledIn);
}

TEST(WriteSweepFloorsJsonTest, EmitsMedianWallAndNormalizedThroughput) {
  // One point, two repeats: wall 2s/4s with 600/600 events and 1200/1200 sim
  // bytes -> median wall 3s, floors 200 events/s and 400 bytes/s.
  SweepSpec spec;
  spec.scenario = "s";
  spec.name = "fl";
  spec.repeats = 2;
  SweepRunOutcome outcome;
  outcome.ok = true;
  outcome.spec = spec;
  for (int r = 0; r < 2; ++r) {
    ScenarioContext ctx;
    ctx.point.point_index = 0;
    ctx.point.repeat = r;
    ctx.wall_sec = r == 0 ? 2.0 : 4.0;
    ctx.counters.events_executed = 600;
    ctx.counters.sim_bytes_sent = 1200;
    ctx.report = ScenarioReport("s");
    outcome.runs.push_back(std::move(ctx));
  }
  std::ostringstream os;
  WriteSweepFloorsJson(os, outcome);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\":\"bullet-floors-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_sec_median\":3,"), std::string::npos);
  EXPECT_NE(json.find("\"events_executed_median\":600,"), std::string::npos);
  EXPECT_NE(json.find("\"floors\":{\"events_per_wall_sec\":200,\"sim_bytes_per_wall_sec\":400}"),
            std::string::npos);
}

}  // namespace
}  // namespace bullet
