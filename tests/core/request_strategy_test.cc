#include "src/core/request_strategy.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace bullet {
namespace {

const CandidateSet::ValidFn kAlwaysValid = [](uint32_t) { return true; };
const CandidateSet::RarityFn kFlatRarity = [](uint32_t) { return 1; };

TEST(CandidateSet, EmptyPicksNothing) {
  CandidateSet cs;
  Rng rng(1);
  for (const auto strategy :
       {RequestStrategy::kFirstEncountered, RequestStrategy::kRandom, RequestStrategy::kRarest,
        RequestStrategy::kRarestRandom}) {
    EXPECT_FALSE(cs.Pick(strategy, kAlwaysValid, kFlatRarity, rng).has_value());
  }
}

TEST(CandidateSet, FirstEncounteredPreservesDiscoveryOrder) {
  CandidateSet cs;
  Rng rng(2);
  for (const uint32_t id : {5u, 3u, 9u, 1u}) {
    cs.Add(id);
  }
  EXPECT_EQ(cs.Pick(RequestStrategy::kFirstEncountered, kAlwaysValid, kFlatRarity, rng), 5u);
  EXPECT_EQ(cs.Pick(RequestStrategy::kFirstEncountered, kAlwaysValid, kFlatRarity, rng), 3u);
  EXPECT_EQ(cs.Pick(RequestStrategy::kFirstEncountered, kAlwaysValid, kFlatRarity, rng), 9u);
  EXPECT_EQ(cs.Pick(RequestStrategy::kFirstEncountered, kAlwaysValid, kFlatRarity, rng), 1u);
}

TEST(CandidateSet, FirstEncounteredSkipsInvalid) {
  CandidateSet cs;
  Rng rng(3);
  for (uint32_t id = 0; id < 10; ++id) {
    cs.Add(id);
  }
  const auto odd_only = [](uint32_t id) { return id % 2 == 1; };
  EXPECT_EQ(cs.Pick(RequestStrategy::kFirstEncountered, odd_only, kFlatRarity, rng), 1u);
  EXPECT_EQ(cs.Pick(RequestStrategy::kFirstEncountered, odd_only, kFlatRarity, rng), 3u);
}

TEST(CandidateSet, RandomCoversAllCandidates) {
  CandidateSet cs;
  Rng rng(4);
  std::set<uint32_t> expected;
  for (uint32_t id = 0; id < 20; ++id) {
    cs.Add(id);
    expected.insert(id);
  }
  std::set<uint32_t> picked;
  while (true) {
    const auto p = cs.Pick(RequestStrategy::kRandom, kAlwaysValid, kFlatRarity, rng);
    if (!p.has_value()) {
      break;
    }
    EXPECT_TRUE(picked.insert(*p).second) << "duplicate pick";
  }
  EXPECT_EQ(picked, expected);
}

TEST(CandidateSet, RandomIsActuallyRandom) {
  // First pick across many fresh sets should not always be the same id.
  std::map<uint32_t, int> first_pick;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    CandidateSet cs;
    Rng rng(seed);
    for (uint32_t id = 0; id < 10; ++id) {
      cs.Add(id);
    }
    first_pick[*cs.Pick(RequestStrategy::kRandom, kAlwaysValid, kFlatRarity, rng)]++;
  }
  EXPECT_GT(first_pick.size(), 3u);
}

TEST(CandidateSet, RarestPicksMinimumRarity) {
  CandidateSet cs;
  Rng rng(5);
  for (uint32_t id = 0; id < 30; ++id) {
    cs.Add(id);
  }
  const auto rarity = [](uint32_t id) { return id == 17 ? 1 : 5; };
  EXPECT_EQ(cs.Pick(RequestStrategy::kRarest, kAlwaysValid, rarity, rng), 17u);
}

TEST(CandidateSet, RarestBreaksTiesDeterministically) {
  // All equal rarity: plain rarest always picks the lowest id — the deterministic
  // herd behaviour the paper calls out as a flaw.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    CandidateSet cs;
    Rng rng(seed);
    for (const uint32_t id : {7u, 3u, 12u, 9u}) {
      cs.Add(id);
    }
    EXPECT_EQ(cs.Pick(RequestStrategy::kRarest, kAlwaysValid, kFlatRarity, rng), 3u);
  }
}

TEST(CandidateSet, RarestRandomBreaksTiesRandomly) {
  std::map<uint32_t, int> first_pick;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    CandidateSet cs;
    Rng rng(seed);
    for (uint32_t id = 0; id < 10; ++id) {
      cs.Add(id);
    }
    first_pick[*cs.Pick(RequestStrategy::kRarestRandom, kAlwaysValid, kFlatRarity, rng)]++;
  }
  EXPECT_GT(first_pick.size(), 3u);
}

TEST(CandidateSet, RarestRandomStillPrefersRarity) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    CandidateSet cs;
    Rng rng(seed);
    for (uint32_t id = 0; id < 50; ++id) {
      cs.Add(id);
    }
    const auto rarity = [](uint32_t id) { return id == 23 || id == 31 ? 1 : 4; };
    const auto pick = cs.Pick(RequestStrategy::kRarestRandom, kAlwaysValid, rarity, rng);
    ASSERT_TRUE(pick.has_value());
    EXPECT_TRUE(*pick == 23 || *pick == 31) << *pick;
  }
}

TEST(CandidateSet, StaleEntriesEventuallyCompacted) {
  CandidateSet cs;
  Rng rng(6);
  for (uint32_t id = 0; id < 500; ++id) {
    cs.Add(id);
  }
  // Invalidate everything except one needle; the sampled strategies must find it.
  const auto only_250 = [](uint32_t id) { return id == 250; };
  const auto pick = cs.Pick(RequestStrategy::kRarestRandom, only_250, kFlatRarity, rng);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 250u);
  EXPECT_FALSE(cs.Pick(RequestStrategy::kRarestRandom, only_250, kFlatRarity, rng).has_value());
}

TEST(CandidateSet, RunningDry) {
  CandidateSet cs;
  EXPECT_TRUE(cs.RunningDry(1, kAlwaysValid));
  for (uint32_t id = 0; id < 5; ++id) {
    cs.Add(id);
  }
  EXPECT_FALSE(cs.RunningDry(5, kAlwaysValid));
  EXPECT_TRUE(cs.RunningDry(6, kAlwaysValid));
  const auto none_valid = [](uint32_t) { return false; };
  EXPECT_TRUE(cs.RunningDry(1, none_valid));
}

TEST(CandidateSet, ReaddMakesPickableAgain) {
  CandidateSet cs;
  Rng rng(7);
  cs.Add(42);
  EXPECT_EQ(cs.Pick(RequestStrategy::kRandom, kAlwaysValid, kFlatRarity, rng), 42u);
  EXPECT_FALSE(cs.Pick(RequestStrategy::kRandom, kAlwaysValid, kFlatRarity, rng).has_value());
  cs.Readd(42);
  EXPECT_EQ(cs.Pick(RequestStrategy::kRandom, kAlwaysValid, kFlatRarity, rng), 42u);
}

TEST(CandidateSet, LargeSetSampledRarestFindsRareBlocks) {
  // With 10k candidates the sampled strategies still find low-rarity blocks with
  // high probability when they are not vanishingly rare.
  CandidateSet cs;
  Rng rng(8);
  for (uint32_t id = 0; id < 10000; ++id) {
    cs.Add(id);
  }
  // 5% of blocks are rare.
  const auto rarity = [](uint32_t id) { return id % 20 == 0 ? 1 : 9; };
  int rare_hits = 0;
  for (int i = 0; i < 100; ++i) {
    const auto pick = cs.Pick(RequestStrategy::kRarestRandom, kAlwaysValid, rarity, rng);
    ASSERT_TRUE(pick.has_value());
    if (*pick % 20 == 0) {
      ++rare_hits;
    }
  }
  EXPECT_GT(rare_hits, 90);
}

}  // namespace
}  // namespace bullet
