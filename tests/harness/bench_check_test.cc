#include "src/harness/bench_check.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace bullet {
namespace {

// A two-point bullet-bench-v2 document with one metric band per point.
std::string Doc(double p0_median, double p1_median, const char* schema = "bullet-bench-v2",
                const char* scenario = "fig04") {
  std::ostringstream os;
  os << R"({"schema":")" << schema << R"(","sweep":"ci","scenario":")" << scenario
     << R"(","base_seed":41,"repeats":2,"points":[)"
     << R"({"point_index":0,"params":{"nodes":20},"metrics":{"Sys.p50_s":{"median":)"
     << p0_median << R"(,"p10":1,"p90":2}}},)"
     << R"({"point_index":1,"params":{"nodes":50},"metrics":{"Sys.p50_s":{"median":)"
     << p1_median << R"(,"p10":1,"p90":2}}}]})";
  return os.str();
}

JsonValue Parse(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(ParseJson(text, &value, &error)) << error;
  return value;
}

int Compare(const std::string& baseline, const std::string& current,
            const BenchCheckOptions& opts, std::string* log_out = nullptr) {
  std::ostringstream log;
  const int rc = CompareSweepDocs(Parse(baseline), Parse(current), opts, log);
  if (log_out != nullptr) {
    *log_out = log.str();
  }
  return rc;
}

TEST(BenchCheckTest, PassesWithinTolerance) {
  BenchCheckOptions opts;
  opts.rel_tol = 0.25;
  // 10% drift on both points: inside the 25% band.
  EXPECT_EQ(Compare(Doc(10.0, 20.0), Doc(11.0, 22.0), opts), kBenchCheckOk);
  // Identical documents always pass.
  EXPECT_EQ(Compare(Doc(10.0, 20.0), Doc(10.0, 20.0), opts), kBenchCheckOk);
}

TEST(BenchCheckTest, FailsOutsideTolerance) {
  BenchCheckOptions opts;
  opts.rel_tol = 0.25;
  std::string log;
  EXPECT_EQ(Compare(Doc(10.0, 20.0), Doc(13.0, 20.0), opts, &log), kBenchCheckRegression);
  EXPECT_NE(log.find("FAIL point {nodes=20} Sys.p50_s"), std::string::npos);
  EXPECT_NE(log.find("1 out of tolerance"), std::string::npos);
  // Regressions in either direction count: a suspiciously faster run still trips
  // the gate (it usually means the workload silently shrank).
  EXPECT_EQ(Compare(Doc(10.0, 20.0), Doc(7.0, 20.0), opts), kBenchCheckRegression);
}

TEST(BenchCheckTest, PerMetricToleranceOverride) {
  BenchCheckOptions opts;
  opts.rel_tol = 0.05;
  EXPECT_EQ(Compare(Doc(10.0, 20.0), Doc(12.0, 20.0), opts), kBenchCheckRegression);
  opts.metric_rel_tol["Sys.p50_s"] = 0.5;
  EXPECT_EQ(Compare(Doc(10.0, 20.0), Doc(12.0, 20.0), opts), kBenchCheckOk);
}

TEST(BenchCheckTest, AbsoluteFloorForTinyBaselines) {
  BenchCheckOptions opts;
  opts.rel_tol = 0.25;
  opts.abs_tol = 0.5;
  // Relative band on a 0.0 baseline is empty; the absolute floor keeps noise-level
  // metrics from flapping.
  EXPECT_EQ(Compare(Doc(0.0, 20.0), Doc(0.4, 20.0), opts), kBenchCheckOk);
  EXPECT_EQ(Compare(Doc(0.0, 20.0), Doc(0.6, 20.0), opts), kBenchCheckRegression);
}

TEST(BenchCheckTest, MissingMetricIsRegression) {
  BenchCheckOptions opts;
  const std::string current =
      R"({"schema":"bullet-bench-v2","scenario":"fig04","points":[)"
      R"({"point_index":0,"params":{"nodes":20},"metrics":{}},)"
      R"({"point_index":1,"params":{"nodes":50},"metrics":{"Sys.p50_s":{"median":20}}}]})";
  std::string log;
  EXPECT_EQ(Compare(Doc(10.0, 20.0), current, opts, &log), kBenchCheckRegression);
  EXPECT_NE(log.find("metric missing"), std::string::npos);
}

TEST(BenchCheckTest, MissingPointIsRegression) {
  BenchCheckOptions opts;
  const std::string current =
      R"({"schema":"bullet-bench-v2","scenario":"fig04","points":[)"
      R"({"point_index":0,"params":{"nodes":20},"metrics":{"Sys.p50_s":{"median":10}}}]})";
  std::string log;
  EXPECT_EQ(Compare(Doc(10.0, 20.0), current, opts, &log), kBenchCheckRegression);
  EXPECT_NE(log.find("missing from current sweep"), std::string::npos);
}

TEST(BenchCheckTest, ExtraCurrentMetricsAndPointsAreIgnored) {
  BenchCheckOptions opts;
  const std::string current =
      R"({"schema":"bullet-bench-v2","scenario":"fig04","points":[)"
      R"({"point_index":0,"params":{"nodes":20},)"
      R"("metrics":{"Sys.p50_s":{"median":10},"New.p50_s":{"median":99}}},)"
      R"({"point_index":1,"params":{"nodes":50},"metrics":{"Sys.p50_s":{"median":20}}},)"
      R"({"point_index":2,"params":{"nodes":80},"metrics":{"Sys.p50_s":{"median":77}}}]})";
  EXPECT_EQ(Compare(Doc(10.0, 20.0), current, opts), kBenchCheckOk);
}

TEST(BenchCheckTest, IncomparableSweepParametersAreBadInput) {
  BenchCheckOptions opts;
  const auto doc = [](const char* preamble) {
    return std::string(R"({"schema":"bullet-bench-v2","scenario":"fig04",)") + preamble +
           R"("points":[{"point_index":0,"params":{"nodes":20},)"
           R"("metrics":{"Sys.p50_s":{"median":10}}}]})";
  };
  const std::string base = doc(R"("base_seed":41,"repeats":2,"repro_scale":0.2,)");
  // Differing seed, repeats, or REPRO_SCALE means the sweeps measured different
  // things — diagnose, don't report tolerance failures.
  std::string log;
  EXPECT_EQ(Compare(base, doc(R"("base_seed":42,"repeats":2,"repro_scale":0.2,)"), opts, &log),
            kBenchCheckBadInput);
  EXPECT_NE(log.find("base_seed mismatch"), std::string::npos);
  EXPECT_EQ(Compare(base, doc(R"("base_seed":41,"repeats":3,"repro_scale":0.2,)"), opts),
            kBenchCheckBadInput);
  EXPECT_EQ(Compare(base, doc(R"("base_seed":41,"repeats":2,"repro_scale":1,)"), opts),
            kBenchCheckBadInput);
  EXPECT_EQ(Compare(base, doc(R"("base_seed":41,"repeats":2,"repro_scale":0.2,)"), opts),
            kBenchCheckOk);
}

TEST(BenchCheckTest, SchemaOrScenarioMismatchIsBadInput) {
  BenchCheckOptions opts;
  EXPECT_EQ(Compare(Doc(10, 20, "bullet-bench-v1"), Doc(10, 20), opts), kBenchCheckBadInput);
  EXPECT_EQ(Compare(Doc(10, 20), Doc(10, 20, "bullet-bench-v1"), opts), kBenchCheckBadInput);
  EXPECT_EQ(Compare(Doc(10, 20), Doc(10, 20, "bullet-bench-v2", "fig05"), opts),
            kBenchCheckBadInput);
  EXPECT_EQ(Compare("[1,2,3]", Doc(10, 20), opts), kBenchCheckBadInput);
}

TEST(BenchCheckTest, AcceptsEitherAggregateSchemaVersion) {
  BenchCheckOptions opts;
  // Committed v2 baselines keep gating freshly generated v3 sweeps (and the
  // reverse): the band comparison is schema-version-agnostic across v2/v3.
  EXPECT_EQ(Compare(Doc(10, 20, "bullet-bench-v2"), Doc(10, 20, "bullet-bench-v3"), opts),
            kBenchCheckOk);
  EXPECT_EQ(Compare(Doc(10, 20, "bullet-bench-v3"), Doc(10, 20, "bullet-bench-v2"), opts),
            kBenchCheckOk);
  EXPECT_EQ(Compare(Doc(10, 20, "bullet-bench-v3"), Doc(13, 20, "bullet-bench-v3"), opts),
            kBenchCheckRegression);
}

// A two-point bullet-floors-v1 document with the two gated throughput metrics.
std::string FloorsDoc(double p0_events, double p1_events, double bytes = 1e6,
                      const char* schema = "bullet-floors-v1") {
  std::ostringstream os;
  os << R"({"schema":")" << schema
     << R"(","sweep":"ci","scenario":"fig04","base_seed":41,"repeats":2,"points":[)"
     << R"({"point_index":0,"params":{"nodes":20},"wall_sec_median":1,)"
     << R"("floors":{"events_per_wall_sec":)" << p0_events << R"(,"sim_bytes_per_wall_sec":)"
     << bytes << R"(}},)"
     << R"({"point_index":1,"params":{"nodes":50},"wall_sec_median":1,)"
     << R"("floors":{"events_per_wall_sec":)" << p1_events << R"(,"sim_bytes_per_wall_sec":)"
     << bytes << R"(}}]})";
  return os.str();
}

TEST(BenchCheckFloorsTest, OneSidedGate) {
  BenchCheckOptions opts;
  // Meeting or beating every floor passes; faster is never a failure.
  EXPECT_EQ(Compare(FloorsDoc(1000, 2000), FloorsDoc(1000, 2000), opts), kBenchCheckOk);
  EXPECT_EQ(Compare(FloorsDoc(1000, 2000), FloorsDoc(9999, 99999), opts), kBenchCheckOk);
  // One point below its events/sec floor fails, and the log names it.
  std::string log;
  EXPECT_EQ(Compare(FloorsDoc(1000, 2000), FloorsDoc(900, 2000), opts, &log),
            kBenchCheckRegression);
  EXPECT_NE(log.find("FAIL point {nodes=20} events_per_wall_sec"), std::string::npos);
  EXPECT_NE(log.find("below floor"), std::string::npos);
}

TEST(BenchCheckFloorsTest, TolerancesDoNotApply) {
  BenchCheckOptions opts;
  opts.rel_tol = 10.0;  // huge band in the two-sided mode...
  // ...but the floor gate stays strict: 900 < 1000 fails regardless.
  EXPECT_EQ(Compare(FloorsDoc(1000, 2000), FloorsDoc(900, 2000), opts), kBenchCheckRegression);
}

TEST(BenchCheckFloorsTest, MixedSchemasAreBadInput) {
  BenchCheckOptions opts;
  // A floors baseline demands a floors current, and vice versa.
  EXPECT_EQ(Compare(FloorsDoc(1000, 2000), Doc(10, 20), opts), kBenchCheckBadInput);
  EXPECT_EQ(Compare(Doc(10, 20), FloorsDoc(1000, 2000), opts), kBenchCheckBadInput);
  EXPECT_EQ(Compare(FloorsDoc(1000, 2000), FloorsDoc(1000, 2000, 1e6, "bullet-floors-v0"),
                    opts),
            kBenchCheckBadInput);
}

TEST(BenchCheckFloorsTest, MissingPointOrFloorIsRegression) {
  BenchCheckOptions opts;
  const std::string current =
      R"({"schema":"bullet-floors-v1","scenario":"fig04","points":[)"
      R"({"point_index":0,"params":{"nodes":20},)"
      R"("floors":{"events_per_wall_sec":5000}}]})";
  std::string log;
  // Point {nodes=50} is absent and {nodes=20} lacks sim_bytes_per_wall_sec.
  EXPECT_EQ(Compare(FloorsDoc(1000, 2000), current, opts, &log), kBenchCheckRegression);
  EXPECT_NE(log.find("missing from current floors"), std::string::npos);
}

// A two-point bullet-ceilings-v1 document with the gated memory byte counters.
std::string CeilingsDoc(double p0_arena, double p1_arena, double route = 5e5,
                        const char* schema = "bullet-ceilings-v1") {
  std::ostringstream os;
  os << R"({"schema":")" << schema
     << R"(","sweep":"megaswarm","scenario":"fig24_megaswarm","base_seed":2401,"repeats":1,)"
     << R"("points":[)"
     << R"({"point_index":0,"params":{"nodes":2000},)"
     << R"("ceilings":{"arena_peak_bytes":)" << p0_arena << R"(,"route_cache_bytes":)"
     << route << R"(}},)"
     << R"({"point_index":1,"params":{"nodes":5000},)"
     << R"("ceilings":{"arena_peak_bytes":)" << p1_arena << R"(,"route_cache_bytes":)"
     << route << R"(}}]})";
  return os.str();
}

TEST(BenchCheckCeilingsTest, OneSidedGateInverted) {
  BenchCheckOptions opts;
  // Meeting or undercutting every ceiling passes; using less memory is never a
  // failure (the floors gate, mirrored).
  EXPECT_EQ(Compare(CeilingsDoc(1e6, 2e6), CeilingsDoc(1e6, 2e6), opts), kBenchCheckOk);
  EXPECT_EQ(Compare(CeilingsDoc(1e6, 2e6), CeilingsDoc(5e5, 1e6), opts), kBenchCheckOk);
  // One point above its arena ceiling fails, and the log names it.
  std::string log;
  EXPECT_EQ(Compare(CeilingsDoc(1e6, 2e6), CeilingsDoc(1.5e6, 2e6), opts, &log),
            kBenchCheckRegression);
  EXPECT_NE(log.find("FAIL point {nodes=2000} arena_peak_bytes"), std::string::npos);
  EXPECT_NE(log.find("above ceiling"), std::string::npos);
}

TEST(BenchCheckCeilingsTest, TolerancesDoNotApply) {
  BenchCheckOptions opts;
  opts.rel_tol = 10.0;  // irrelevant: the memory gate is strict
  // Even a 0.01% breach fails; there is no tolerance band on memory.
  EXPECT_EQ(Compare(CeilingsDoc(1e6, 2e6), CeilingsDoc(1.0001e6, 2e6), opts),
            kBenchCheckRegression);
}

TEST(BenchCheckCeilingsTest, MixedSchemasAreBadInput) {
  BenchCheckOptions opts;
  // Ceilings baselines demand ceilings currents — no silent cross-gating with
  // band aggregates or floors docs.
  EXPECT_EQ(Compare(CeilingsDoc(1e6, 2e6), Doc(10, 20), opts), kBenchCheckBadInput);
  EXPECT_EQ(Compare(Doc(10, 20), CeilingsDoc(1e6, 2e6), opts), kBenchCheckBadInput);
  EXPECT_EQ(Compare(CeilingsDoc(1e6, 2e6), FloorsDoc(1000, 2000), opts), kBenchCheckBadInput);
  EXPECT_EQ(Compare(CeilingsDoc(1e6, 2e6), CeilingsDoc(1e6, 2e6, 5e5, "bullet-ceilings-v0"),
                    opts),
            kBenchCheckBadInput);
}

TEST(BenchCheckCeilingsTest, MissingPointOrMetricIsRegression) {
  BenchCheckOptions opts;
  const std::string current =
      R"({"schema":"bullet-ceilings-v1","scenario":"fig24_megaswarm","points":[)"
      R"({"point_index":0,"params":{"nodes":2000},)"
      R"("ceilings":{"arena_peak_bytes":1000}}]})";
  std::string log;
  // Point {nodes=5000} is absent and {nodes=2000} lacks route_cache_bytes.
  EXPECT_EQ(Compare(CeilingsDoc(1e6, 2e6), current, opts, &log), kBenchCheckRegression);
  EXPECT_NE(log.find("missing from current ceilings"), std::string::npos);
}

TEST(BenchCheckTest, PointMatchingIgnoresAxisDeclarationOrder) {
  BenchCheckOptions opts;
  const auto doc = [](const char* params) {
    return std::string(R"({"schema":"bullet-bench-v2","scenario":"fig04","points":[)") +
           R"({"point_index":0,"params":)" + params +
           R"(,"metrics":{"Sys.p50_s":{"median":10}}}]})";
  };
  // Same point identity whether params were written nodes-first or loss-first.
  EXPECT_EQ(Compare(doc(R"({"nodes":20,"loss":0.01})"), doc(R"({"loss":0.01,"nodes":20})"),
                    opts),
            kBenchCheckOk);
}

}  // namespace
}  // namespace bullet
