// Conformance layer for the mega-swarm scale subsystem (ctest label `routed`):
// segment-compressed route composition must be *bitwise* identical to the
// direct per-pair Dijkstra routes on transit-stub graphs (so any scenario can
// enable compression without perturbing results), the compressed route cache
// must stay flat in the number of queried pairs while the per-pair cache
// grows, and misuse (non-transit-stub graphs, enabling after routes were
// built, composing through transit-attached nodes) must die loudly.

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/sim/topology.h"

namespace bullet {
namespace {

RoutedTopology::TransitStubParams MultiDomainShape(int nodes) {
  RoutedTopology::TransitStubParams p;
  p.num_nodes = nodes;
  p.transit_domains = 2;
  p.routers_per_transit = 3;
  p.stub_domains_per_transit_router = 2;
  p.routers_per_stub = 3;
  return p;
}

// Two builds from the same seed are identical graphs; one composes, one runs
// plain per-pair Dijkstra.
std::pair<RoutedTopology, RoutedTopology> TwinTopologies(int nodes, uint64_t seed,
                                                         bool prewarm_compressed) {
  Rng rng_a(seed);
  Rng rng_b(seed);
  RoutedTopology plain = RoutedTopology::TransitStub(MultiDomainShape(nodes), rng_a);
  RoutedTopology compressed = RoutedTopology::TransitStub(MultiDomainShape(nodes), rng_b);
  compressed.EnableSegmentCompression();
  if (prewarm_compressed) {
    compressed.PrewarmRoutes();
  }
  return {std::move(plain), std::move(compressed)};
}

void ExpectAllPairsBitwiseEqual(const RoutedTopology& plain, const RoutedTopology& compressed,
                                int nodes) {
  for (NodeId s = 0; s < nodes; ++s) {
    for (NodeId d = 0; d < nodes; ++d) {
      if (s == d) {
        continue;
      }
      const Topology::PathView reference = plain.InteriorPath(s, d);
      const std::vector<int32_t> ids(reference.begin(), reference.end());
      const Topology::PathView composed = compressed.InteriorPath(s, d);
      ASSERT_EQ(composed.size, ids.size()) << s << "->" << d;
      for (uint32_t i = 0; i < composed.size; ++i) {
        ASSERT_EQ(composed.ids[i], ids[i]) << s << "->" << d << " hop " << i;
      }
      // Derived metrics are computed from the same link lists, so they must
      // match to the last bit, not within a tolerance.
      EXPECT_EQ(plain.PathDelay(s, d), compressed.PathDelay(s, d));
      EXPECT_EQ(plain.PathLoss(s, d), compressed.PathLoss(s, d));
    }
  }
}

TEST(SegmentCompression, ComposedRoutesAreBitwiseIdenticalToDirectDijkstra) {
  auto [plain, compressed] = TwinTopologies(48, 515, /*prewarm_compressed=*/false);
  ExpectAllPairsBitwiseEqual(plain, compressed, 48);
}

TEST(SegmentCompression, PrewarmedComposedRoutesStayBitwiseIdentical) {
  // PrewarmRoutes in compressed mode warms transit trees + segments up front
  // (the parallel engine's startup contract); answers must not change.
  auto [plain, compressed] = TwinTopologies(48, 929, /*prewarm_compressed=*/true);
  ExpectAllPairsBitwiseEqual(plain, compressed, 48);
}

TEST(SegmentCompression, ComposedRoutesAreValidRouterWalks) {
  Rng rng(303);
  RoutedTopology topo = RoutedTopology::TransitStub(MultiDomainShape(36), rng);
  topo.EnableSegmentCompression();
  for (NodeId s = 0; s < 36; ++s) {
    for (NodeId d = 0; d < 36; ++d) {
      if (s == d) {
        continue;
      }
      const Topology::PathView path = topo.InteriorPath(s, d);
      int32_t at = topo.attach(s);
      for (const int32_t edge : path) {
        ASSERT_EQ(topo.edge_from(edge), at) << s << "->" << d;
        at = topo.edge_to(edge);
      }
      EXPECT_EQ(at, topo.attach(d)) << s << "->" << d;
    }
  }
}

// --- memory scaling: the point of the subsystem ---

TEST(SegmentCompression, CompressedCacheStaysFlatWhilePerPairCacheGrows) {
  Rng rng_a(777);
  Rng rng_b(777);
  RoutedTopology plain = RoutedTopology::TransitStub(MultiDomainShape(64), rng_a);
  RoutedTopology compressed = RoutedTopology::TransitStub(MultiDomainShape(64), rng_b);
  compressed.EnableSegmentCompression();
  compressed.PrewarmRoutes();
  const size_t compressed_warm = compressed.route_cache_bytes();

  size_t plain_last = plain.route_cache_bytes();
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 16; d < 64; ++d) {
      plain.InteriorPath(s, d);
      compressed.InteriorPath(s, d);
    }
    // The per-pair cache grows with every fresh source; the segment store is
    // already fully warmed and must not grow at all.
    const size_t plain_now = plain.route_cache_bytes();
    EXPECT_GT(plain_now, plain_last) << "source " << s;
    plain_last = plain_now;
    EXPECT_EQ(compressed.route_cache_bytes(), compressed_warm) << "source " << s;
  }
  EXPECT_LT(compressed_warm, plain_last);
}

// Satellite fix: route_cache_bytes must account the per-pair map entries
// (node + bucket overhead), so routing a brand-new pair strictly grows it.
TEST(SegmentCompression, RouteCacheBytesGrowWithEveryNewPair) {
  Rng rng(888);
  RoutedTopology topo = RoutedTopology::TransitStub(MultiDomainShape(48), rng);
  size_t last = topo.route_cache_bytes();
  // Nodes land on distinct routers round-robin in this shape, so successive
  // destinations are genuinely new (router-pair) routes.
  for (NodeId d = 12; d < 24; ++d) {
    topo.InteriorPath(0, d);
    const size_t now = topo.route_cache_bytes();
    EXPECT_GT(now, last) << "pair 0->" << d;
    last = now;
  }
  // Re-querying cached pairs allocates nothing.
  for (NodeId d = 12; d < 24; ++d) {
    topo.InteriorPath(0, d);
  }
  EXPECT_EQ(topo.route_cache_bytes(), last);
}

// --- misuse dies loudly ---

TEST(SegmentCompressionDeathTest, RequiresTransitStubBuiltTopology) {
  RoutedTopology topo(4, 4);
  EXPECT_DEATH(topo.EnableSegmentCompression(), "BULLET_CHECK");
}

TEST(SegmentCompressionDeathTest, MustBeEnabledBeforeFirstRouteQuery) {
  Rng rng(99);
  RoutedTopology topo = RoutedTopology::TransitStub(MultiDomainShape(24), rng);
  topo.InteriorPath(0, 1);  // builds the adjacency and route state
  EXPECT_DEATH(topo.EnableSegmentCompression(), "BULLET_CHECK");
}

TEST(SegmentCompressionDeathTest, RefusesNodesAttachedOutsideStubDomains) {
  Rng rng(100);
  RoutedTopology topo = RoutedTopology::TransitStub(MultiDomainShape(24), rng);
  topo.EnableSegmentCompression();
  // Re-attach node 0 to a transit router (router 0 in the TransitStub layout):
  // composition is defined for stub-attached nodes only and must die, not
  // fabricate a route.
  topo.AttachNode(0, 0);
  EXPECT_DEATH(topo.InteriorPath(0, 1), "BULLET_CHECK");
}

}  // namespace
}  // namespace bullet
