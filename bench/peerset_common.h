// Shared sweep for the Fig. 7/8/9 peer-set scenarios: run Bullet' with each fixed
// sender/receiver set size (0 = the paper's dynamic sizing) on the given config.

#ifndef BENCH_PEERSET_COMMON_H_
#define BENCH_PEERSET_COMMON_H_

#include <string>
#include <vector>

#include "src/harness/scenario_registry.h"

namespace bullet {
namespace bench {

inline void RunPeerSetSweep(const ScenarioConfig& cfg, const std::vector<int>& peer_counts,
                            ScenarioReport* report) {
  for (const int peers : peer_counts) {
    BulletPrimeConfig bp;
    std::string name;
    if (peers == 0) {
      name = "BulletPrime dynamic peer sets";
    } else {
      bp.dynamic_peer_sets = false;
      bp.initial_senders = peers;
      bp.initial_receivers = peers;
      name = "BulletPrime " + std::to_string(peers) + " senders/receivers";
    }
    report->AddCompletion(name, RunScenario("bullet-prime", cfg, bp));
  }
}

}  // namespace bench
}  // namespace bullet

#endif  // BENCH_PEERSET_COMMON_H_
