// Diagnostic example: runs Bullet' and samples one receiver's adaptive state every
// 5 seconds — sender count, MAX_SENDERS, per-sender outstanding windows, and
// aggregate inbound rate — the live view of Sections 3.3.1 and 3.3.3 at work.
//
// Usage: inspect [num_nodes] [file_mb] [probe_node]

#include <cstdio>
#include <cstdlib>

#include "src/core/bullet_prime.h"
#include "src/harness/experiment.h"
#include "src/harness/scenarios.h"

int main(int argc, char** argv) {
  const int num_nodes = argc > 1 ? std::atoi(argv[1]) : 50;
  const double file_mb = argc > 2 ? std::atof(argv[2]) : 5.0;
  const bullet::NodeId probe = argc > 3 ? std::atoi(argv[3]) : num_nodes / 2;

  bullet::ScenarioConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.file_mb = file_mb;
  cfg.seed = 21;

  bullet::ExperimentParams params;
  params.seed = cfg.seed;
  params.file.block_bytes = cfg.block_bytes;
  params.file.num_blocks = static_cast<uint32_t>(cfg.file_mb * 1024 * 1024 / cfg.block_bytes);
  params.deadline = bullet::SecToSim(3600.0);

  bullet::Experiment exp(bullet::BuildScenarioTopology(cfg), params);
  bullet::BulletPrimeConfig bp_config;

  bullet::BulletPrime* probe_proto = nullptr;
  std::vector<int64_t> last_rx(static_cast<size_t>(num_nodes), 0);

  // Periodic probe of the protocol state.
  std::function<void()> sample = [&] {
    if (probe_proto != nullptr) {
      const double t = bullet::SimToSec(exp.net().now());
      int64_t total_rx = 0;
      for (int n = 0; n < num_nodes; ++n) {
        total_rx += exp.net().node_bytes_received(n);
      }
      static int64_t prev_total = 0;
      const double agg_mbps = static_cast<double>(total_rx - prev_total) * 8.0 / 5.0 / 1e6;
      prev_total = total_rx;
      std::printf("t=%6.1fs probe: senders=%d max_senders=%d blocks=%zu/%u agg_rx=%.1f Mbps\n", t,
                  probe_proto->num_senders(), probe_proto->max_senders(),
                  probe_proto->have().count(), params.file.num_blocks, agg_mbps);
    }
    exp.net().queue().ScheduleAfter(bullet::SecToSim(5.0), sample);
  };
  exp.net().queue().ScheduleAfter(bullet::SecToSim(5.0), sample);

  bullet::RunMetrics metrics =
      exp.Run([&](const bullet::Protocol::Context& ctx, const bullet::ControlTree* tree) {
        auto p = std::make_unique<bullet::BulletPrime>(ctx, params.file, params.source, tree,
                                                       bp_config);
        if (ctx.self == probe) {
          probe_proto = p.get();
        }
        return p;
      });

  std::printf("completed %d/%d\n", metrics.completed(), num_nodes - 1);
  return 0;
}
