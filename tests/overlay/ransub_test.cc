// RanSub runs over the real emulated network here: a full overlay of RanSub-only
// protocols, asserting epoch delivery, subset sizes, freshness of summaries, and
// approximate uniformity of subset membership (chi-square).

#include "src/overlay/ransub.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/overlay/tree_overlay.h"
#include "src/harness/experiment.h"

namespace bullet {
namespace {

// Minimal protocol that only exercises the tree + RanSub machinery.
class RanSubOnly : public TreeOverlayProtocol {
 public:
  RanSubOnly(const Context& ctx, const FileParams& file, const ControlTree* tree)
      : TreeOverlayProtocol(ctx, file, /*source=*/0, tree, RanSubAgent::Config{}) {}

  void OnProtocolMessage(ConnId /*conn*/, NodeId /*from*/,
                         std::unique_ptr<Message> /*msg*/) override {}
  void OnRanSubEpoch(const std::vector<PeerSummary>& subset) override {
    ++epochs;
    last_subset = subset;
    for (const auto& s : subset) {
      ++appearances[s.node];
    }
  }
  PeerSummary MakeSummary() override {
    PeerSummary s = TreeOverlayProtocol::MakeSummary();
    s.block_count = static_cast<uint32_t>(self()) + 1;  // distinctive payload
    return s;
  }

  int epochs = 0;
  std::vector<PeerSummary> last_subset;
  std::map<NodeId, int> appearances;
};

class RanSubFixture : public ::testing::Test {
 protected:
  void Run(int num_nodes, double run_sec, uint64_t seed = 33) {
    Rng topo_rng(seed);
    MeshTopology::MeshParams mesh;
    mesh.num_nodes = num_nodes;
    mesh.core_loss_max = 0.0;
    MeshTopology topo = MeshTopology::FullMesh(mesh, topo_rng);
    ExperimentParams params;
    params.seed = seed;
    params.file.num_blocks = 16;
    params.deadline = SecToSim(run_sec);
    exp_ = std::make_unique<Experiment>(std::move(topo), params);
    protos_.clear();
    exp_->Run([&](const Protocol::Context& ctx, const ControlTree* tree) {
      auto p = std::make_unique<RanSubOnly>(ctx, params.file, tree);
      protos_.push_back(p.get());
      return p;
    });
  }

  std::unique_ptr<Experiment> exp_;
  std::vector<RanSubOnly*> protos_;
};

TEST_F(RanSubFixture, EverianNodeSeesEpochs) {
  Run(30, 31.0);
  for (const auto* p : protos_) {
    // ~6 epochs in 31 s at the paper's 5 s period (minus startup).
    EXPECT_GE(p->epochs, 4) << "node saw too few epochs";
    EXPECT_LE(p->epochs, 7);
  }
}

TEST_F(RanSubFixture, SubsetsHaveConfiguredSize) {
  Run(30, 21.0);
  for (const auto* p : protos_) {
    EXPECT_EQ(p->last_subset.size(), RanSubAgent::Config{}.subset_size);
  }
}

TEST_F(RanSubFixture, SubsetsExcludeSelfAndCarrySummaries) {
  Run(30, 21.0);
  for (size_t n = 0; n < protos_.size(); ++n) {
    for (const auto& s : protos_[n]->last_subset) {
      EXPECT_NE(s.node, static_cast<NodeId>(n));
      EXPECT_GE(s.node, 0);
      EXPECT_LT(s.node, 30);
      // Summaries carry the distinctive payload set in MakeSummary.
      EXPECT_EQ(s.block_count, static_cast<uint32_t>(s.node) + 1);
    }
  }
}

TEST_F(RanSubFixture, MembershipApproximatelyUniform) {
  Run(25, 90.0);
  // Pool appearances across all nodes and epochs.
  std::map<NodeId, int> total;
  int64_t samples = 0;
  for (const auto* p : protos_) {
    for (const auto& [node, count] : p->appearances) {
      total[node] += count;
      samples += count;
    }
  }
  ASSERT_GT(samples, 1000);
  const double expected = static_cast<double>(samples) / 25.0;
  double chi2 = 0.0;
  for (NodeId n = 0; n < 25; ++n) {
    const double c = total.count(n) > 0 ? total[n] : 0.0;
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 24 dof. The pipelined approximation is not perfectly uniform, so allow a
  // generous bound — this still catches gross bias (e.g. only tree neighbors ever
  // appearing), which would show chi2 in the thousands.
  EXPECT_LT(chi2 / samples, 0.5);
  // Every node must appear somewhere.
  EXPECT_EQ(total.size(), 25u);
}

}  // namespace
}  // namespace bullet
