// Fig. 5: the Fig. 4 comparison under the paper's synthetic bandwidth changes
// (every 20 s, half the nodes see the core links from half the other nodes halved,
// cumulatively) on top of random core losses.
//
// Expected shape (paper): Bullet' degrades least; it finishes 32-70% faster than
// Bullet/BitTorrent/SplitStream, whose tails stretch toward ~1000 s.

#include "bench/bench_util.h"

namespace bullet {
namespace {

void BM_System(benchmark::State& state) {
  const System system = static_cast<System>(state.range(0));
  ScenarioConfig cfg;
  cfg.num_nodes = 100;
  cfg.file_mb = bench::ScaledFileMb(100.0);
  cfg.dynamic_bw = true;
  cfg.seed = 501;
  for (auto _ : state) {
    const ScenarioResult r = RunScenario(system, cfg);
    bench::ReportCompletion(state, r.name, r);
  }
}
BENCHMARK(BM_System)
    ->Arg(static_cast<int>(System::kBulletPrime))
    ->Arg(static_cast<int>(System::kBulletLegacy))
    ->Arg(static_cast<int>(System::kBitTorrent))
    ->Arg(static_cast<int>(System::kSplitStream))
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bullet

BULLET_BENCH_MAIN("Fig. 5 — overall performance, dynamic bandwidth changes")
