// The emulated network: reliable, ordered, byte-accounted connections between overlay
// nodes, with bandwidth shared max-min across all concurrently active flows and TCP
// behaviour approximated per flow (see tcp_model.h).
//
// Protocols interact with the network exclusively through:
//   Connect / Close  — connection lifecycle (establishment costs 1.5 RTT, like TCP
//                      handshake plus first application write),
//   Send             — enqueue a typed message on a connection,
//   NetHandler       — callbacks for connection up/down and message delivery.
//
// Every `quantum` of simulated time the network recomputes flow rates (a flow is a
// connection direction with queued bytes) and advances transmissions. Completed
// messages are delivered after the path's propagation delay, plus a retransmission
// penalty drawn from the path loss rate; deliveries on one direction are in order.
//
// Topology generality (PR 4). A flow crosses its sender's uplink, its receiver's
// downlink, and the interior links of the topology's s->d path — one private
// core link on the legacy mesh, a shared multi-hop route on RoutedTopology.
// Interior routes are snapshotted per direction at Connect() (propagation delay
// and loss are static; only link bandwidth is dynamic), and interior link ids
// are mapped to dense allocator ids per allocation epoch in first-use order —
// on the mesh this reproduces the historical dense core-link-id scheme exactly,
// so mesh results are bit-identical to the pre-routed implementation.
//
// Hot-path architecture (PR 3). The tick is event-driven in its *work*, not its
// schedule: a tick event still fires every quantum (keeping the event-sequence
// numbering — and therefore same-time tie-breaking — identical to the original
// fixed-quantum loop), but the expensive stages only run when something changed:
//
//   * compaction of closed connections runs only on quanta that saw a Close();
//   * the flow set is rebuilt and re-water-filled only when dirty — a direction
//     became busy or idle, a connection closed, a flow's TCP cap is still ramping,
//     or a link capacity changed (detected by comparing the capacities the last
//     allocation used against the topology);
//   * on clean quanta the cached rates are reused — by determinism they are
//     exactly what a recompute would produce — and only transmission advancement
//     runs;
//   * a fully idle network (no queued bytes anywhere) ticks in O(1).
//
// Per-flow TCP caps are cached once the slow-start ramp reaches its steady ceiling
// (tcp_model.h), message queues are ring buffers that recycle their storage, and
// delivery events capture their message directly in the event-queue closure, so
// steady-state message handling performs no per-message allocation.
//
// NetworkConfig::allocator_mode selects the legacy full-recompute-every-quantum
// tick (the pre-PR behaviour, kept as a reference and for A/B benchmarking);
// NetworkConfig::skip_idle_ticks additionally elides idle tick events entirely and
// schedules the next tick on the quantum grid when a flow wakes — fastest for
// workloads with long quiet phases, but same-time event tie-breaking can differ
// from the reference modes, so identical-seed runs are only reproducible against
// the same mode, not across modes.

#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/bandwidth_allocator.h"
#include "src/sim/event_queue.h"
#include "src/sim/tcp_model.h"
#include "src/sim/time.h"
#include "src/sim/topology.h"

namespace bullet {

using ConnId = int64_t;

// Base class for all protocol messages. `wire_bytes` must include the protocol's own
// header estimate; the network charges exactly this many bytes of link bandwidth.
struct Message {
  virtual ~Message() = default;
  int type = 0;
  int64_t wire_bytes = 0;
};

class NetHandler {
 public:
  virtual ~NetHandler() = default;
  // `initiator` is true at the node that called Connect().
  virtual void OnConnUp(ConnId /*conn*/, NodeId /*peer*/, bool /*initiator*/) {}
  virtual void OnConnDown(ConnId /*conn*/, NodeId /*peer*/) {}
  virtual void OnMessage(ConnId conn, NodeId from, std::unique_ptr<Message> msg) = 0;
};

struct NetworkConfig {
  SimTime quantum = MsToSim(10);
  TcpModelParams tcp;
  // Model the extra delivery latency of messages that suffer packet loss (TCP
  // retransmission + head-of-line blocking). Throughput loss is modelled separately
  // via the Mathis cap; this term affects message latency, which is what makes
  // availability information stale on lossy paths (Section 4.3).
  bool loss_latency = true;

  enum class AllocatorMode {
    kIncremental,    // dirty-tracked allocation with cached rates (default)
    kFullRecompute,  // pre-PR behaviour: rebuild + water-fill every quantum
  };
  AllocatorMode allocator_mode = AllocatorMode::kIncremental;

  // Elide tick events while no direction has queued bytes and no close is pending
  // compaction; the next tick is scheduled on the quantum grid when a flow wakes.
  // Not bit-reproducible against the non-skipping modes (see header comment).
  bool skip_idle_ticks = false;
};

class Network {
 public:
  Network(std::unique_ptr<Topology> topology, NetworkConfig config, uint64_t seed);
  // Convenience: wrap a concrete topology value (MeshTopology, RoutedTopology).
  template <typename TopologyType,
            typename = std::enable_if_t<std::is_base_of_v<Topology, std::decay_t<TopologyType>>>>
  Network(TopologyType topology, NetworkConfig config, uint64_t seed)
      : Network(std::make_unique<std::decay_t<TopologyType>>(std::move(topology)), config, seed) {
  }

  EventQueue& queue() { return queue_; }
  SimTime now() const { return queue_.now(); }
  Topology& topology() { return *topology_; }
  Rng& rng() { return rng_; }
  int num_nodes() const { return topology_->num_nodes(); }

  void SetHandler(NodeId node, NetHandler* handler);
  // True once SetHandler installed a protocol for the node — i.e. the node has
  // joined its session. Messages delivered before that are silently dropped,
  // so membership-aware overlays (SplitStream's static stripe forest) defer
  // handshakes to not-yet-joined peers instead of losing them.
  bool NodeJoined(NodeId node) const { return handlers_[static_cast<size_t>(node)] != nullptr; }

  // Opens a connection from `from` to `to`. Both ends receive OnConnUp after
  // establishment. Messages may be sent immediately; they queue until established.
  ConnId Connect(NodeId from, NodeId to);

  // Closes the connection. The remote end receives OnConnDown after one path delay;
  // all queued and in-flight messages are dropped.
  void Close(ConnId conn);
  bool IsOpen(ConnId conn) const;

  // Enqueues a message from `from` on the connection. Returns false (and drops) if
  // the connection is closed or `from` is not an endpoint.
  bool Send(ConnId conn, NodeId from, std::unique_ptr<Message> msg);

  // Fails the node: every connection touching it closes (peers learn through
  // OnConnDown after the usual delay) and future Connect() calls involving it are
  // refused. Used by churn experiments; a failed node's protocol object survives but
  // is cut off. Idempotent.
  void FailNode(NodeId node);
  bool IsNodeFailed(NodeId node) const { return failed_[static_cast<size_t>(node)] != 0; }

  // Introspection used by protocol flow control (Bullet' measures its send queue to
  // report `in_front` and `wasted`, Section 3.3.3).
  size_t QueuedMessages(ConnId conn, NodeId from) const;
  int64_t QueuedBytes(ConnId conn, NodeId from) const;
  // Time since this direction last transmitted its final queued byte; 0 if busy.
  SimTime IdleTime(ConnId conn, NodeId from) const;
  // Most recent allocated rate for this direction, bits/second.
  double CurrentRateBps(ConnId conn, NodeId from) const;

  // Per-node totals (all message kinds), counted at transmission completion.
  int64_t node_bytes_sent(NodeId n) const { return tx_bytes_[static_cast<size_t>(n)]; }
  int64_t node_bytes_received(NodeId n) const { return rx_bytes_[static_cast<size_t>(n)]; }

  // Entries in the open-connection list. Closed connections are compacted out on
  // the next quantum boundary after their Close(), so this may transiently exceed
  // the number of live connections by the closes of the current quantum (tests
  // use it to pin down that bound; see network_test.cc).
  size_t open_conn_entries() const { return open_conns_.size(); }
  // Directions currently holding queued bytes on established connections.
  size_t active_directions() const { return active_dirs_; }
  // Peak number of flows the allocator saw sharing one interior link in any
  // allocation epoch so far. On the mesh an interior link is private to an
  // ordered pair (its two-or-more flows are parallel connections of that pair);
  // on routed topologies this is the shared-bottleneck width — the
  // fig16_shared_bottleneck scenario asserts it exceeds 1.
  int32_t max_interior_link_flows() const { return max_interior_link_flows_; }

  // Live probes over one interior link (a topology link id, e.g. a transit-stub
  // gateway uplink): the number of busy established flows currently routed
  // across it, and the total bandwidth the last allocation granted them. Rates
  // reflect the most recent allocation epoch (at most one quantum stale), which
  // is exactly the sampling granularity the emulator allocates at anyway.
  int CountFlowsOnInteriorLink(int32_t link_id) const;
  double InteriorLinkAllocatedBps(int32_t link_id) const;

  // Deterministic run counters (always on, seed-reproducible; the perf gate
  // normalizes them by wall time — see docs/PERFORMANCE.md). Run() also adds
  // the same deltas to the thread-locally installed RunCounters, if any, so a
  // harness can total them across the several networks one scenario may build.
  uint64_t events_executed() const { return events_executed_; }   // queue callbacks fired
  uint64_t allocator_epochs() const { return allocator_epochs_; } // water-fill recomputes
  int64_t total_bytes_sent() const;  // wire bytes transmitted, all nodes

  // Runs the simulation until `until` or Stop().
  void Run(SimTime until);
  void Stop() { queue_.Stop(); }

 private:
  struct QueuedMsg {
    std::unique_ptr<Message> msg;
    double remaining_bytes = 0.0;
  };

  // FIFO of queued messages backed by a recycled power-of-two ring, replacing a
  // per-direction std::deque: no node allocations per message, and the buffer is
  // released when the connection closes.
  class MsgRing {
   public:
    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }
    QueuedMsg& front() { return buf_[head_]; }
    void push_back(QueuedMsg qm);
    void pop_front();
    void clear_and_release();

   private:
    std::vector<QueuedMsg> buf_;  // power-of-two capacity, index masked
    size_t head_ = 0;
    size_t size_ = 0;
  };

  struct Direction {
    MsgRing queue;
    int64_t queued_bytes = 0;
    double rate_bps = 0.0;
    TcpFlowState tcp;
    SimTime delivery_floor = 0;  // enforces in-order delivery
    SimTime idle_since = 0;      // valid when queue is empty

    // TCP-cap cache for the incremental tick. Once `cap_steady`, `cap_cache` is
    // the exact value TcpRateCapBps would return for the rest of the busy
    // period, so the rebuild skips the transcendental-heavy recomputation.
    double cap_cache = 0.0;
    bool cap_steady = false;
  };

  // Per-direction path parameters snapshotted at Connect(). Propagation delay,
  // loss and the interior route are static during a run (only link *bandwidth*
  // is dynamic — see dynamics.h), so these are the exact values the per-message
  // topology lookups would produce, without re-walking the topology per message
  // or per allocation epoch.
  //
  // The interior route lives as an (offset, length) slice of path_pool_ rather
  // than a per-direction vector: the allocator rebuild walks every busy
  // direction's route each epoch, and one contiguous pool turns those walks
  // into sequential reads instead of a heap-pointer chase per direction (and
  // drops two vector allocations per Connect). The pool only grows — conns_
  // never erases — so slices stay valid for the connection's lifetime.
  struct PathCache {
    SimTime path_delay = 0;
    SimTime rtt = 0;
    double loss = 0.0;
    uint32_t interior_off = 0;  // slice of path_pool_: interior link ids, path order
    uint32_t interior_len = 0;
  };

  struct Conn {
    ConnId id = -1;
    NodeId node[2] = {-1, -1};
    Direction dir[2];   // dir[i] carries node[i] -> node[1-i]
    PathCache path[2];  // path[i] describes node[i] -> node[1-i]
    bool established = false;
    bool closed = false;
  };

  Conn* GetConn(ConnId id);
  const Conn* GetConn(ConnId id) const;
  // Returns 0 or 1: which endpoint `node` is; -1 if neither.
  static int EndpointIndex(const Conn& c, NodeId node);

  // First interior link id of the path's pooled route slice.
  const int32_t* PathInteriorBegin(const PathCache& path) const {
    return path_pool_.data() + path.interior_off;
  }
  const int32_t* PathInteriorEnd(const PathCache& path) const {
    return path_pool_.data() + path.interior_off + path.interior_len;
  }

  void ScheduleFirstTick();
  void ScheduleNextTick();
  void WakeTicksIfPaused();
  SimTime NextGridTickTime() const;
  void Tick();
  void TickFullRecompute(double dt_sec);
  void CompactOpenConns();
  bool CapacitiesUnchanged() const;
  void RebuildAndAllocate(bool base_caps_unchanged);
  void AdvanceTransmissions(double dt_sec);
  int32_t InteriorLinkIdForEpoch(int32_t interior_id);
  void ActivateDirection(Conn& c, int dir_idx);
  void DeliverMessage(ConnId conn_id, int receiver_idx, std::unique_ptr<Message> msg);
  void EnqueueDelivery(ConnId conn_id, Conn& c, int sender_idx, std::unique_ptr<Message> msg);

  std::unique_ptr<Topology> topology_;
  NetworkConfig config_;
  Rng rng_;
  EventQueue queue_;

  std::vector<NetHandler*> handlers_;
  std::vector<std::unique_ptr<Conn>> conns_;  // indexed by ConnId, never reused
  // Pooled PathCache interior routes (see PathCache); append-only.
  std::vector<int32_t> path_pool_;
  std::vector<ConnId> open_conns_;            // compacted on quantum boundaries
  // Bit i set when conn->dir[i] is established with queued bytes. Lets the
  // rebuild scan skip idle connections with one flat byte load instead of a
  // pointer chase (most connections are idle in any given quantum).
  std::vector<uint8_t> conn_busy_mask_;  // indexed by ConnId

  std::vector<int64_t> tx_bytes_;
  std::vector<int64_t> rx_bytes_;
  std::vector<char> failed_;

  // --- incremental tick state ---
  IncrementalMaxMin alloc_;
  // (conn, direction) per allocated flow, in allocation order; parallel to
  // alloc_.rates(). Valid until the next rebuild. Conn objects are heap-pinned
  // (conns_ holds unique_ptrs and never erases), so raw pointers stay valid.
  struct CachedFlow {
    Conn* conn;
    int dir_idx;
  };
  std::vector<CachedFlow> cached_flows_;
  // Capacities the last allocation was computed from, for change detection:
  // all access links (uplinks then downlinks, legacy id order) ...
  std::vector<double> base_caps_;
  // ... plus every interior link a flow used, as (topology id, capacity).
  struct InteriorCap {
    int32_t id;
    double cap;
  };
  std::vector<InteriorCap> interior_caps_;
  // Per-topology-interior-link dense allocator id for the current allocation
  // epoch (stamped). On the mesh the topology id is src*N+dst, reproducing the
  // historical per-ordered-pair core-id table.
  std::vector<uint32_t> interior_epoch_;
  std::vector<int32_t> interior_link_id_;
  uint32_t epoch_counter_ = 0;
  // Per-flow allocator link-id assembly buffer (uplink, downlink, interior...).
  std::vector<int32_t> flow_link_scratch_;

  size_t active_dirs_ = 0;    // established directions with queued bytes
  size_t pending_close_ = 0;  // closes since the last compaction pass
  bool alloc_dirty_ = true;   // cached rates/flows invalid; rebuild on next tick
  size_t ramping_flows_ = 0;  // flows whose TCP cap was not yet steady at rebuild
  int32_t max_interior_link_flows_ = 0;

  // Always-on deterministic counters (see the public accessors). Run() pushes
  // deltas into the installed RunCounters; published_* track what was pushed.
  uint64_t events_executed_ = 0;
  uint64_t allocator_epochs_ = 0;
  uint64_t rc_published_events_ = 0;
  uint64_t published_epochs_ = 0;
  int64_t published_bytes_ = 0;

  SimTime last_tick_ = 0;
  SimTime tick_anchor_ = 0;  // time of the first tick; the grid is anchor + k*quantum
  bool tick_scheduled_ = false;
  bool tick_paused_ = false;    // skip_idle_ticks mode: no tick event pending
  bool tick_resumed_ = false;   // next tick woke from a pause; clamp its dt
};

}  // namespace bullet

#endif  // SRC_SIM_NETWORK_H_
