#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "src/common/profiler.h"

namespace bullet {

EventId EventQueue::Schedule(SimTime at, Callback cb) {
  BULLET_PROFILE_COUNT(ProfilePhase::kEventSchedule);
  if (at < now_) {
    at = now_;
  }
  const EventId id = next_seq_ + 1;
  heap_.push_back(Entry{at, next_seq_, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<Entry>());
  state_.push_back(EventState::kPending);
  ++next_seq_;
  ++live_;
  return id;
}

void EventQueue::Cancel(EventId id) {
  if (id == 0 || id > state_.size()) {
    return;  // never scheduled
  }
  EventState& st = state_[static_cast<size_t>(id - 1)];
  if (st == EventState::kPending) {
    st = EventState::kDone;
    --live_;
  }
}

uint64_t EventQueue::RunUntil(SimTime until) {
  stopped_ = false;
  uint64_t executed = 0;
  while (!stopped_ && !heap_.empty()) {
    // Cancelled entries are popped lazily whenever they reach the top, even past
    // `until` (mirrors the previous implementation's drain of dead entries).
    EventState& st = state_[static_cast<size_t>(heap_.front().seq)];
    if (st == EventState::kDone) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<Entry>());
      heap_.pop_back();
      continue;
    }
    if (heap_.front().at > until) {
      break;
    }
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<Entry>());
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    now_ = entry.at;
    st = EventState::kDone;
    --live_;
    {
      BULLET_PROFILE_SCOPE(ProfilePhase::kEventDispatch);
      entry.fn();
    }
    ++executed;
  }
  if (now_ < until && heap_.empty()) {
    now_ = until;
  }
  return executed;
}

uint64_t EventQueue::RunWindow(SimTime end) {
  stopped_ = false;
  uint64_t executed = 0;
  while (!stopped_ && !heap_.empty()) {
    EventState& st = state_[static_cast<size_t>(heap_.front().seq)];
    if (st == EventState::kDone) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<Entry>());
      heap_.pop_back();
      continue;
    }
    if (heap_.front().at >= end) {
      break;
    }
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<Entry>());
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    now_ = entry.at;
    st = EventState::kDone;
    --live_;
    {
      BULLET_PROFILE_SCOPE(ProfilePhase::kEventDispatch);
      entry.fn();
    }
    ++executed;
  }
  if (now_ < end) {
    now_ = end;
  }
  return executed;
}

}  // namespace bullet
