#include "src/harness/scenario_runner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "src/harness/bench_check.h"
#include "src/harness/json_reader.h"

namespace bullet {
namespace {

RunnerArgs Parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "bullet_run");
  return ParseRunnerArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(ParseRunnerArgsTest, ListFlag) {
  const RunnerArgs args = Parse({"--list"});
  EXPECT_TRUE(args.ok);
  EXPECT_TRUE(args.list);
}

TEST(ParseRunnerArgsTest, ScenarioWithOverrides) {
  const RunnerArgs args = Parse({"--scenario", "fig04_overall_static", "--nodes", "20",
                                 "--file-mb=2.5", "--seed=42", "--block-bytes", "8192",
                                 "--deadline-sec", "600", "--out", "x.json", "--quiet"});
  ASSERT_TRUE(args.ok) << args.error;
  EXPECT_EQ(args.scenario, "fig04_overall_static");
  ASSERT_TRUE(args.options.nodes.has_value());
  EXPECT_EQ(*args.options.nodes, 20);
  ASSERT_TRUE(args.options.file_mb.has_value());
  EXPECT_DOUBLE_EQ(*args.options.file_mb, 2.5);
  ASSERT_TRUE(args.options.seed.has_value());
  EXPECT_EQ(*args.options.seed, 42u);
  ASSERT_TRUE(args.options.block_bytes.has_value());
  EXPECT_EQ(*args.options.block_bytes, 8192);
  ASSERT_TRUE(args.options.deadline_sec.has_value());
  EXPECT_DOUBLE_EQ(*args.options.deadline_sec, 600.0);
  EXPECT_EQ(args.out_path, "x.json");
  EXPECT_TRUE(args.quiet);
}

TEST(ParseRunnerArgsTest, SweepFlags) {
  const RunnerArgs args =
      Parse({"--scenario", "fig04_overall_static", "--sweep", "nodes=20,50,100",
             "--sweep=loss=0,0.01", "--repeats", "2", "--jobs", "4", "--sweep-name", "ci",
             "--out-dir", "artifacts", "--loss", "0.02"});
  ASSERT_TRUE(args.ok) << args.error;
  EXPECT_TRUE(args.sweep_mode());
  ASSERT_EQ(args.sweep_axes.size(), 2u);
  EXPECT_EQ(args.sweep_axes[0].key, "nodes");
  EXPECT_EQ(args.sweep_axes[0].values, (std::vector<double>{20, 50, 100}));
  EXPECT_EQ(args.sweep_axes[1].key, "loss");
  ASSERT_TRUE(args.repeats.has_value());
  EXPECT_EQ(*args.repeats, 2);
  EXPECT_EQ(args.jobs, 4);
  ASSERT_TRUE(args.sweep_name.has_value());
  EXPECT_EQ(*args.sweep_name, "ci");
  EXPECT_EQ(args.out_dir, "artifacts");
  ASSERT_TRUE(args.options.loss.has_value());
  EXPECT_DOUBLE_EQ(*args.options.loss, 0.02);
}

TEST(ParseRunnerArgsTest, SingleRunIsNotSweepMode) {
  const RunnerArgs args = Parse({"--scenario", "x", "--nodes", "20"});
  ASSERT_TRUE(args.ok) << args.error;
  EXPECT_FALSE(args.sweep_mode());
}

TEST(ParseRunnerArgsTest, SweepFileAloneSufficesAsMode) {
  const RunnerArgs args = Parse({"--sweep-file", "spec.sweep"});
  ASSERT_TRUE(args.ok) << args.error;  // scenario may come from the file
  EXPECT_TRUE(args.sweep_mode());
}

TEST(ParseRunnerArgsTest, RejectsBadSweepValues) {
  EXPECT_FALSE(Parse({"--scenario", "x", "--sweep", "warp=1"}).ok);
  EXPECT_FALSE(Parse({"--scenario", "x", "--sweep", "nodes"}).ok);
  EXPECT_FALSE(Parse({"--scenario", "x", "--repeats", "0"}).ok);
  EXPECT_FALSE(Parse({"--scenario", "x", "--jobs", "-1"}).ok);
  EXPECT_FALSE(Parse({"--scenario", "x", "--loss", "1.5"}).ok);
}

TEST(ParseRunnerArgsTest, SystemFlag) {
  const RunnerArgs args = Parse({"--scenario", "x", "--system", "bittorrent"});
  ASSERT_TRUE(args.ok) << args.error;
  ASSERT_TRUE(args.options.system.has_value());
  EXPECT_EQ(*args.options.system, "bittorrent");
  for (const char* key : {"bullet-prime", "bullet", "splitstream"}) {
    EXPECT_TRUE(Parse({"--scenario", "x", "--system", key}).ok) << key;
  }
  EXPECT_FALSE(Parse({"--scenario", "x", "--system"}).ok);  // missing value
  const RunnerArgs unknown = Parse({"--scenario", "x", "--system", "gnutella"});
  EXPECT_FALSE(unknown.ok);  // unknown names are usage errors (exit 2 below)
  EXPECT_NE(unknown.error.find("registered protocol"), std::string::npos) << unknown.error;
}

TEST(ParseRunnerArgsTest, JoinFractionFlag) {
  const RunnerArgs args = Parse({"--scenario", "x", "--join-fraction", "0.5"});
  ASSERT_TRUE(args.ok) << args.error;
  ASSERT_TRUE(args.options.join_fraction.has_value());
  EXPECT_DOUBLE_EQ(*args.options.join_fraction, 0.5);
  EXPECT_TRUE(Parse({"--scenario", "x", "--join-fraction", "0"}).ok);
  EXPECT_TRUE(Parse({"--scenario", "x", "--join-fraction", "1"}).ok);
  EXPECT_FALSE(Parse({"--scenario", "x", "--join-fraction", "1.5"}).ok);
  EXPECT_FALSE(Parse({"--scenario", "x", "--join-fraction", "-0.1"}).ok);
  EXPECT_FALSE(Parse({"--scenario", "x", "--join-fraction", "abc"}).ok);
}

TEST(ParseRunnerArgsTest, RejectsUnknownFlag) {
  const RunnerArgs args = Parse({"--scenario", "x", "--frobnicate"});
  EXPECT_FALSE(args.ok);
  EXPECT_NE(args.error.find("--frobnicate"), std::string::npos);
}

TEST(ParseRunnerArgsTest, RejectsBadValues) {
  EXPECT_FALSE(Parse({"--scenario", "x", "--nodes", "1"}).ok);       // < 2
  EXPECT_FALSE(Parse({"--scenario", "x", "--nodes", "abc"}).ok);     // not a number
  EXPECT_FALSE(Parse({"--scenario", "x", "--nodes", "20.7"}).ok);    // fractional
  EXPECT_FALSE(Parse({"--scenario", "x", "--seed", "-1"}).ok);       // negative unsigned
  EXPECT_FALSE(Parse({"--scenario", "x", "--seed", " -1"}).ok);      // whitespace-masked sign
  EXPECT_FALSE(Parse({"--scenario", "x", "--block-bytes", "1e19"}).ok);  // not plain int
  EXPECT_FALSE(Parse({"--scenario", "x", "--file-mb", "nan"}).ok);   // non-finite
  EXPECT_FALSE(Parse({"--scenario", "x", "--file-mb", "inf"}).ok);   // non-finite
  EXPECT_FALSE(Parse({"--scenario", "x", "--file-mb", "-3"}).ok);    // negative
  EXPECT_FALSE(Parse({"--scenario", "x", "--nodes"}).ok);            // missing value
  EXPECT_FALSE(Parse({}).ok);                                        // no mode at all

  // Large seeds must round-trip exactly (no float precision loss).
  const RunnerArgs big = Parse({"--scenario", "x", "--seed", "18446744073709551615"});
  ASSERT_TRUE(big.ok) << big.error;
  EXPECT_EQ(*big.options.seed, 18446744073709551615ull);
}

class RunnerMainTest : public ::testing::Test {
 protected:
  RunnerMainTest() {
    registry_.Register("tiny", "a tiny test scenario", [](const ScenarioOptions& opts) {
      ScenarioReport report("tiny");
      report.AddScalar("nodes", opts.nodes.value_or(-1));
      ScenarioResult result;
      result.name = "SystemX";
      result.completion_sec = {1.0, 2.0};
      result.completed = 2;
      result.receivers = 2;
      report.AddCompletion(result);
      return report;
    });
  }

  int Run(std::vector<const char*> argv) {
    argv.insert(argv.begin(), "bullet_run");
    return RunnerMain(static_cast<int>(argv.size()), argv.data(), registry_, out_, err_);
  }

  ScenarioRegistry registry_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(RunnerMainTest, ListPrintsRegisteredScenarios) {
  EXPECT_EQ(Run({"--list"}), 0);
  EXPECT_NE(out_.str().find("tiny\ta tiny test scenario"), std::string::npos);
}

TEST_F(RunnerMainTest, UnknownScenarioIsUsageError) {
  // Usage-class failures exit 2 with nothing on stdout, so shell pipelines and CI
  // log scraping keep working.
  EXPECT_EQ(Run({"--scenario", "missing"}), 2);
  EXPECT_NE(err_.str().find("unknown scenario 'missing'"), std::string::npos);
  EXPECT_TRUE(out_.str().empty());
}

TEST_F(RunnerMainTest, BadFlagFailsWithUsage) {
  EXPECT_EQ(Run({"--bogus"}), 2);
  EXPECT_NE(err_.str().find("unknown argument"), std::string::npos);
  EXPECT_TRUE(out_.str().empty());
}

TEST_F(RunnerMainTest, UnknownSystemIsUsageError) {
  EXPECT_EQ(Run({"--scenario", "tiny", "--system", "gnutella"}), 2);
  EXPECT_NE(err_.str().find("registered protocol"), std::string::npos);
  EXPECT_TRUE(out_.str().empty());
}

TEST_F(RunnerMainTest, SystemAndJoinFractionEchoInRequestedOptions) {
  const std::string path = ::testing::TempDir() + "/bullet_runner_system_test.json";
  std::remove(path.c_str());
  EXPECT_EQ(Run({"--scenario", "tiny", "--system", "bittorrent", "--join-fraction", "0.5",
                 "--out", path.c_str(), "--quiet"}),
            0);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  const std::string json = content.str();
  EXPECT_NE(json.find("\"system\":\"bittorrent\""), std::string::npos);
  EXPECT_NE(json.find("\"join_fraction\":0.5"), std::string::npos);
}

TEST_F(RunnerMainTest, ListWritesOnlyToStdout) {
  EXPECT_EQ(Run({"--list"}), 0);
  EXPECT_TRUE(err_.str().empty());
  EXPECT_FALSE(out_.str().empty());
}

TEST_F(RunnerMainTest, RunWritesJson) {
  const std::string path = ::testing::TempDir() + "/bullet_runner_test.json";
  std::remove(path.c_str());
  EXPECT_EQ(Run({"--scenario", "tiny", "--nodes", "20", "--out", path.c_str(), "--quiet"}), 0);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  const std::string json = content.str();
  EXPECT_NE(json.find("\"schema\":\"bullet-bench-v3\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\":\"tiny\""), std::string::npos);
  EXPECT_NE(json.find("\"requested_options\":{\"nodes\":20}"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"SystemX\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\":[1,2]"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(RunnerMainTest, SweepModeWritesAggregateAndPerRunFiles) {
  const std::string dir = ::testing::TempDir() + "/bullet_sweep_runner_test";
  std::filesystem::remove_all(dir);
  EXPECT_EQ(Run({"--scenario", "tiny", "--sweep", "nodes=4,8", "--repeats", "2", "--seed",
                 "41", "--sweep-name", "t", "--jobs", "2", "--out-dir", dir.c_str(),
                 "--quiet"}),
            0);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream content;
    content << in.rdbuf();
    return content.str();
  };
  const std::string aggregate = slurp(dir + "/BENCH_sweep_t.json");
  EXPECT_NE(aggregate.find("\"schema\":\"bullet-bench-v3\""), std::string::npos);
  EXPECT_NE(aggregate.find("\"sweep\":\"t\""), std::string::npos);
  EXPECT_NE(aggregate.find("\"nodes\":8"), std::string::npos);
  for (const char* leaf : {"/BENCH_sweep_t_p0_r0.json", "/BENCH_sweep_t_p0_r1.json",
                           "/BENCH_sweep_t_p1_r0.json", "/BENCH_sweep_t_p1_r1.json"}) {
    EXPECT_NE(slurp(dir + leaf).find("\"schema\":\"bullet-bench-v3\""), std::string::npos);
  }

  // Same spec again (different jobs count) must reproduce the aggregate byte for
  // byte — the determinism contract the CI gate relies on.
  const std::string dir2 = dir + "_again";
  std::filesystem::remove_all(dir2);
  EXPECT_EQ(Run({"--scenario", "tiny", "--sweep", "nodes=4,8", "--repeats", "2", "--seed",
                 "41", "--sweep-name", "t", "--jobs", "1", "--out-dir", dir2.c_str(),
                 "--quiet"}),
            0);
  EXPECT_EQ(aggregate, slurp(dir2 + "/BENCH_sweep_t.json"));
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(dir2);
}

TEST_F(RunnerMainTest, SweepWritesFloorsFileThatRoundTripsThroughBenchCheck) {
  const std::string dir = ::testing::TempDir() + "/bullet_sweep_floors_test";
  std::filesystem::remove_all(dir);
  EXPECT_EQ(Run({"--scenario", "tiny", "--sweep", "nodes=4,8", "--repeats", "2", "--seed",
                 "41", "--sweep-name", "t", "--out-dir", dir.c_str(), "--quiet"}),
            0);

  const auto parse = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream content;
    content << in.rdbuf();
    JsonValue doc;
    std::string error;
    EXPECT_TRUE(ParseJson(content.str(), &doc, &error)) << path << ": " << error;
    return doc;
  };

  // The v3 aggregate round-trips through json_reader and self-gates clean.
  const JsonValue aggregate = parse(dir + "/BENCH_sweep_t.json");
  EXPECT_EQ(aggregate.StringOr("schema", ""), "bullet-bench-v3");
  std::ostringstream log;
  EXPECT_EQ(CompareSweepDocs(aggregate, aggregate, BenchCheckOptions{}, log), kBenchCheckOk);

  // The floors companion parses, carries both gated metrics per point, and a
  // floors baseline compared against itself passes the one-sided gate.
  const JsonValue floors = parse(dir + "/BENCH_sweep_t_floors.json");
  EXPECT_EQ(floors.StringOr("schema", ""), "bullet-floors-v1");
  const JsonValue* points = floors.Find("points");
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->array().size(), 2u);
  for (const JsonValue& point : points->array()) {
    const JsonValue* floor_metrics = point.Find("floors");
    ASSERT_NE(floor_metrics, nullptr);
    EXPECT_NE(floor_metrics->Find("events_per_wall_sec"), nullptr);
    EXPECT_NE(floor_metrics->Find("sim_bytes_per_wall_sec"), nullptr);
  }
  std::ostringstream floors_log;
  EXPECT_EQ(CompareSweepDocs(floors, floors, BenchCheckOptions{}, floors_log), kBenchCheckOk);
  std::filesystem::remove_all(dir);
}

TEST_F(RunnerMainTest, ProfileFlagPrintsCounterSummary) {
  const std::string path = ::testing::TempDir() + "/bullet_runner_profile_test.json";
  std::remove(path.c_str());
  EXPECT_EQ(Run({"--scenario", "tiny", "--profile", "--out", path.c_str(), "--quiet"}), 0);
  EXPECT_NE(out_.str().find("### profile"), std::string::npos);
  EXPECT_NE(out_.str().find("events_executed"), std::string::npos);
  if (!PhaseProfiler::kCompiledIn) {
    EXPECT_NE(out_.str().find("rebuild with -DBULLET_PROFILE=ON"), std::string::npos);
  } else {
    EXPECT_NE(out_.str().find("event_dispatch"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST_F(RunnerMainTest, ProfileFlagRejectedInSweepMode) {
  EXPECT_EQ(Run({"--scenario", "tiny", "--profile", "--sweep", "nodes=4,8"}), 2);
  EXPECT_NE(err_.str().find("--profile applies to single runs only"), std::string::npos);
}

TEST_F(RunnerMainTest, SweepDuplicateAxisIsUsageError) {
  EXPECT_EQ(Run({"--scenario", "tiny", "--sweep", "nodes=4,8", "--sweep", "nodes=16"}), 2);
  EXPECT_NE(err_.str().find("duplicate sweep axis 'nodes'"), std::string::npos);
}

TEST_F(RunnerMainTest, SweepUnknownScenarioIsUsageError) {
  EXPECT_EQ(Run({"--scenario", "missing", "--sweep", "nodes=4,8"}), 2);
  EXPECT_NE(err_.str().find("unknown scenario"), std::string::npos);
}

TEST_F(RunnerMainTest, SweepMissingSpecFileIsUsageError) {
  EXPECT_EQ(Run({"--sweep-file", "/nonexistent/sweep.spec"}), 2);
  EXPECT_NE(err_.str().find("cannot read sweep file"), std::string::npos);
}

TEST(WriteReportJsonTest, EscapesAndNonFinite) {
  ScenarioReport report("esc");
  report.AddScalar("inf", std::numeric_limits<double>::infinity());
  report.AddSeries("quote\"name", {1.5});

  std::ostringstream os;
  WriteReportJson(os, report, ScenarioOptions{});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"inf\":null"), std::string::npos);
  EXPECT_NE(json.find("quote\\\"name"), std::string::npos);
}

}  // namespace
}  // namespace bullet
