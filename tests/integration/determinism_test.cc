// Simulation-determinism layer: golden checks that the reworked simulator core
// is exactly reproducible.
//
//  * Two in-process runs of the Fig. 4 static-mesh scenario (nodes=20, same
//    seed) must serialize to byte-identical metrics.
//  * The incremental allocator path and the pre-PR full-recompute path must
//    agree flow-for-flow: identical delivery timelines on a scripted
//    network-level scenario (including dynamics-driven capacity changes), and
//    identical completion times on a full protocol run.
//  * The skip-idle-ticks mode must produce the same timeline as the default
//    mode when wakeups do not collide with other same-time events.
//  * All of the above hold on the routed transit-stub topology too, where the
//    script's churn and periodic bandwidth halving land on genuinely shared
//    interior links (lossy transit tier, so the delivery RNG stream is
//    exercised along multi-hop routes).
//
// Run standalone with `ctest -L invariants`.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/profiler.h"
#include "src/harness/churn.h"
#include "src/harness/scenario_runner.h"
#include "src/harness/scenarios.h"
#include "src/harness/workload.h"
#include "src/harness/workload_gen.h"
#include "src/sim/dynamics.h"
#include "src/sim/network.h"

namespace bullet {
namespace {

ScenarioConfig Fig04Config() {
  // Mirrors bench_fig04_overall_static.cc at nodes=20 with a test-sized file.
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kMesh;
  cfg.num_nodes = 20;
  cfg.file_mb = 5.0;
  cfg.block_bytes = 16 * 1024;
  cfg.seed = 401;
  return cfg;
}

std::string SerializedRun(const ScenarioConfig& cfg) {
  ScenarioReport report("determinism");
  report.AddCompletion(RunScenario("bullet-prime", cfg));
  std::ostringstream os;
  WriteReportJson(os, report, ScenarioOptions{});
  return os.str();
}

TEST(Determinism, Fig04RepeatedRunsSerializeIdentically) {
  const ScenarioConfig cfg = Fig04Config();
  const std::string first = SerializedRun(cfg);
  const std::string second = SerializedRun(cfg);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Determinism, IncrementalMatchesFullRecomputeOnProtocolRun) {
  ScenarioConfig cfg = Fig04Config();
  cfg.num_nodes = 12;
  cfg.file_mb = 2.0;

  cfg.full_recompute_allocator = false;
  const ScenarioResult incremental = RunScenario("bullet-prime", cfg);
  cfg.full_recompute_allocator = true;
  const ScenarioResult full = RunScenario("bullet-prime", cfg);

  ASSERT_EQ(incremental.completion_sec.size(), full.completion_sec.size());
  for (size_t i = 0; i < incremental.completion_sec.size(); ++i) {
    // Bitwise equality, not approximate: the incremental path must be exactly
    // the full recomputation, or identical-seed runs would drift.
    EXPECT_EQ(incremental.completion_sec[i], full.completion_sec[i]) << "receiver " << i;
  }
  EXPECT_EQ(incremental.completed, full.completed);
  EXPECT_EQ(incremental.duplicate_fraction, full.duplicate_fraction);
  EXPECT_EQ(incremental.control_overhead, full.control_overhead);
}

// --- scripted network-level comparison ---

struct ScriptMsg : Message {
  int id;
  explicit ScriptMsg(int i, int64_t bytes) : id(i) {
    type = 1;
    wire_bytes = bytes;
  }
};

class TimelineRecorder : public NetHandler {
 public:
  explicit TimelineRecorder(Network* net) : net_(net) {}
  void OnConnUp(ConnId conn, NodeId peer, bool initiator) override {
    Record("up", conn, peer, initiator ? 1 : 0);
  }
  void OnConnDown(ConnId conn, NodeId peer) override { Record("down", conn, peer, 0); }
  void OnMessage(ConnId conn, NodeId from, std::unique_ptr<Message> msg) override {
    Record("msg", conn, from, static_cast<ScriptMsg&>(*msg).id);
  }

  std::vector<std::string> events;

 private:
  void Record(const char* kind, ConnId conn, NodeId peer, int extra) {
    std::ostringstream os;
    os << net_->now() << " " << kind << " c" << conn << " p" << peer << " x" << extra;
    events.push_back(os.str());
  }
  Network* net_;
};

std::unique_ptr<Topology> ScriptTopology() {
  Rng rng(99);
  // Lossy mesh so the delivery-time RNG stream is exercised too.
  MeshTopology::MeshParams mesh;
  mesh.num_nodes = 6;
  mesh.core_loss_min = 0.0;
  mesh.core_loss_max = 0.02;
  return std::make_unique<MeshTopology>(MeshTopology::FullMesh(mesh, rng));
}

std::unique_ptr<Topology> RoutedScriptTopology() {
  Rng rng(98);
  // Small lossy transit-stub graph: 6 overlay nodes over 12 routers, so the
  // script's flows cross shared gateway and transit links.
  RoutedTopology::TransitStubParams params;
  params.num_nodes = 6;
  params.transit_domains = 2;
  params.routers_per_transit = 2;
  params.stub_domains_per_transit_router = 1;
  params.routers_per_stub = 2;
  params.transit_stub_bps = 3e6;  // shared bottleneck below the access rate
  params.transit_loss_max = 0.02;
  return std::make_unique<RoutedTopology>(RoutedTopology::TransitStub(params, rng));
}

// A fixed traffic script: connects, staggered sends (several per quantum,
// some idle gaps), a mid-run close, a node failure, and periodic correlated
// bandwidth halving. Returns every handler event of every node, in order.
std::vector<std::string> RunScript(const NetworkConfig& config,
                                   std::unique_ptr<Topology> topo = ScriptTopology()) {
  Network net(std::move(topo), config, 4242);
  std::vector<std::unique_ptr<TimelineRecorder>> handlers;
  for (NodeId n = 0; n < 6; ++n) {
    handlers.push_back(std::make_unique<TimelineRecorder>(&net));
    net.SetHandler(n, handlers.back().get());
  }
  BandwidthDynamicsParams dyn;
  dyn.period = SecToSim(2.0);
  StartPeriodicBandwidthChanges(net, dyn);

  const ConnId c01 = net.Connect(0, 1);
  const ConnId c02 = net.Connect(0, 2);
  const ConnId c12 = net.Connect(1, 2);
  const ConnId c34 = net.Connect(3, 4);
  int next_id = 0;
  for (int burst = 0; burst < 6; ++burst) {
    net.queue().Schedule(SecToSim(0.3) + burst * SecToSim(1.1) + MsToSim(3), [&, burst] {
      net.Send(c01, 0, std::make_unique<ScriptMsg>(next_id++, 200 * 1024));
      net.Send(c02, 0, std::make_unique<ScriptMsg>(next_id++, 64 * 1024));
      if (burst % 2 == 0) {
        net.Send(c12, 2, std::make_unique<ScriptMsg>(next_id++, 16 * 1024));
        net.Send(c34, 3, std::make_unique<ScriptMsg>(next_id++, 512 * 1024));
      }
    });
  }
  net.queue().Schedule(SecToSim(3.7) + MsToSim(1), [&] { net.Close(c12); });
  net.queue().Schedule(SecToSim(5.2) + MsToSim(7), [&] { net.FailNode(4); });
  net.Run(SecToSim(12.0));

  std::vector<std::string> all;
  for (auto& h : handlers) {
    for (auto& e : h->events) {
      all.push_back(std::move(e));
    }
  }
  return all;
}

TEST(Determinism, IncrementalMatchesFullRecomputeFlowForFlow) {
  NetworkConfig incremental;
  incremental.allocator_mode = NetworkConfig::AllocatorMode::kIncremental;
  NetworkConfig full;
  full.allocator_mode = NetworkConfig::AllocatorMode::kFullRecompute;

  const std::vector<std::string> a = RunScript(incremental);
  const std::vector<std::string> b = RunScript(full);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "event " << i;
  }
}

// --- routed transit-stub goldens ---

ScenarioConfig TransitStubConfig() {
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kTransitStub;
  cfg.num_nodes = 18;
  cfg.file_mb = 2.0;
  cfg.block_bytes = 16 * 1024;
  cfg.seed = 1702;
  return cfg;
}

TEST(Determinism, TransitStubRepeatedRunsSerializeIdentically) {
  const ScenarioConfig cfg = TransitStubConfig();
  const std::string first = SerializedRun(cfg);
  const std::string second = SerializedRun(cfg);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Determinism, TransitStubIncrementalMatchesFullRecomputeOnProtocolRun) {
  ScenarioConfig cfg = TransitStubConfig();
  cfg.num_nodes = 12;

  cfg.full_recompute_allocator = false;
  const ScenarioResult incremental = RunScenario("bullet-prime", cfg);
  cfg.full_recompute_allocator = true;
  const ScenarioResult full = RunScenario("bullet-prime", cfg);

  ASSERT_EQ(incremental.completion_sec.size(), full.completion_sec.size());
  for (size_t i = 0; i < incremental.completion_sec.size(); ++i) {
    EXPECT_EQ(incremental.completion_sec[i], full.completion_sec[i]) << "receiver " << i;
  }
  EXPECT_EQ(incremental.completed, full.completed);
  EXPECT_EQ(incremental.max_shared_link_flows, full.max_shared_link_flows);
  // The routed net must actually exercise shared links, or this golden is
  // testing nothing new over the mesh variant above.
  EXPECT_GE(incremental.max_shared_link_flows, 2);
}

TEST(Determinism, TransitStubScriptIncrementalMatchesFullFlowForFlow) {
  // Churn (FailNode), a close, and periodic correlated bandwidth halving on
  // shared interior links: the incremental and full-recompute cores must agree
  // on every delivery.
  NetworkConfig incremental;
  incremental.allocator_mode = NetworkConfig::AllocatorMode::kIncremental;
  NetworkConfig full;
  full.allocator_mode = NetworkConfig::AllocatorMode::kFullRecompute;

  const std::vector<std::string> a = RunScript(incremental, RoutedScriptTopology());
  const std::vector<std::string> b = RunScript(full, RoutedScriptTopology());
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "event " << i;
  }
}

TEST(Determinism, TransitStubScriptRepeatedRunsIdentical) {
  const std::vector<std::string> a = RunScript(NetworkConfig{}, RoutedScriptTopology());
  const std::vector<std::string> b = RunScript(NetworkConfig{}, RoutedScriptTopology());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// --- session-workload goldens (staggered joins + churn) ---

// A flash-crowd-with-churn workload: half the receivers join at t=12 s, and
// two control-tree leaves are killed mid-run, so the session can never fully
// complete and the run ends at the deadline. Exercises event-queue-driven
// joins, the staged tree, session-scoped completion accounting and FailNode
// racing in-flight joins/deliveries — all of it must be exactly reproducible.
WorkloadResult RunLateJoinChurnWorkload(bool full_recompute) {
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kMesh;
  cfg.num_nodes = 14;
  cfg.file_mb = 1.5;
  cfg.seed = 1805;

  WorkloadParams params;
  params.seed = cfg.seed;
  params.deadline = SecToSim(150.0);
  params.full_recompute_allocator = full_recompute;
  WorkloadExperiment exp(BuildScenarioTopology(cfg), params);

  SessionSpec spec;
  spec.protocol = "bullet-prime";
  spec.file.block_bytes = cfg.block_bytes;
  spec.file.num_blocks = static_cast<uint32_t>(cfg.file_mb * 1024.0 * 1024.0 /
                                               static_cast<double>(cfg.block_bytes));
  spec.seed = cfg.seed;
  for (NodeId n = 0; n < cfg.num_nodes; ++n) {
    spec.members.push_back(n);
    spec.join_offsets.push_back(n >= 7 ? SecToSim(12.0) : 0);
  }
  exp.AddSession(spec);

  Rng churn_rng(777);
  ChurnPlan plan = PlanLeafFailures(exp.session_tree(0), /*source=*/0, /*count=*/2, churn_rng);
  plan.first_kill = SecToSim(15.0);
  ScheduleChurn(exp.net(), plan);
  return exp.Run();
}

std::string SerializeWorkload(const WorkloadResult& result) {
  ScenarioReport report("workload_determinism");
  for (const SessionResult& session : result.sessions) {
    report.AddCompletion(session.name, ToScenarioResult(session, result));
    report.AddSeries(session.name + " download", session.download_sec);
  }
  report.AddScalar("sessions_completed", result.sessions_completed);
  std::ostringstream os;
  WriteReportJson(os, report, ScenarioOptions{});
  return os.str();
}

TEST(Determinism, LateJoinChurnWorkloadRepeatedRunsSerializeIdentically) {
  const std::string first = SerializeWorkload(RunLateJoinChurnWorkload(false));
  const std::string second = SerializeWorkload(RunLateJoinChurnWorkload(false));
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Determinism, LateJoinChurnWorkloadIncrementalMatchesFullRecompute) {
  const WorkloadResult incremental = RunLateJoinChurnWorkload(false);
  const WorkloadResult full = RunLateJoinChurnWorkload(true);
  ASSERT_EQ(incremental.sessions.size(), full.sessions.size());
  const SessionResult& a = incremental.sessions[0];
  const SessionResult& b = full.sessions[0];
  ASSERT_EQ(a.completion_sec.size(), b.completion_sec.size());
  for (size_t i = 0; i < a.completion_sec.size(); ++i) {
    // Bitwise equality: the incremental tick must be exactly the full
    // recomputation even across event-driven joins and churn.
    EXPECT_EQ(a.completion_sec[i], b.completion_sec[i]) << "receiver " << i;
    EXPECT_EQ(a.download_sec[i], b.download_sec[i]) << "receiver " << i;
  }
  EXPECT_EQ(a.completed, b.completed);
  // The killed leaves keep the session from completing; both modes must agree
  // the deadline, not a session stop, ended the run.
  EXPECT_LT(a.completed, a.receivers);
  EXPECT_EQ(incremental.sessions_completed, 0);
  EXPECT_EQ(full.sessions_completed, 0);
}

TEST(Determinism, SkipIdleTicksMatchesDefaultOnCollisionFreeScript) {
  // The script's sends/closes land off the 10 ms tick grid, so eliding idle
  // tick events cannot reorder same-time events and the timeline must match
  // the default mode exactly (the mode's documented contract).
  NetworkConfig heartbeat;
  NetworkConfig skipping;
  skipping.skip_idle_ticks = true;

  const std::vector<std::string> a = RunScript(heartbeat);
  const std::vector<std::string> b = RunScript(skipping);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "event " << i;
  }
}

// The full generator stack — diurnal arrivals, Pareto lifetimes with seeder
// departure, DSL access-link cohorts, and a correlated stub outage — must be
// exactly reproducible: two in-process runs of the same spec serialize to the
// same bytes, including the drawn churn schedule.
TEST(Determinism, GeneratorDrivenChurnWorkloadSerializesIdentically) {
  const auto run = [] {
    ScenarioConfig cfg;
    cfg.topo = ScenarioConfig::Topo::kTransitStub;
    cfg.num_nodes = 18;
    cfg.file_mb = 1.0;
    cfg.block_bytes = 16 * 1024;
    cfg.seed = 2203;
    WorkloadSpec workload;
    workload.access_links = std::make_shared<DslAccessLinks>(0.25, 4e6, 1e6);
    workload.churn = std::make_shared<CorrelatedFailureChurn>(
        CorrelatedFailureChurn::Scope::kStubDomain, SecToSim(4.0));
    SessionSpec session;
    session.protocol = "bullet-prime";
    session.source = 0;
    session.arrivals = std::make_shared<DiurnalArrivals>(2.0, 0.8, SecToSim(20.0));
    session.lifetimes =
        std::make_shared<ParetoLifetime>(1.5, SecToSim(30.0), /*depart_after_completion=*/true,
                                         /*linger=*/SecToSim(5.0));
    workload.sessions.push_back(std::move(session));
    const WorkloadResult wl = RunScenarioWorkload(cfg, workload);

    std::ostringstream os;
    os << wl.sessions_completed << '|' << wl.total_departures << '|' << wl.max_shared_link_flows;
    for (const ChurnEvent& ev : wl.churn_events) {
      os << '|' << ev.node << '@' << ev.at;
    }
    const SessionResult& r = wl.sessions[0];
    os << '|' << r.completed << '|' << r.departed << '|' << r.departed_incomplete;
    for (const double t : r.completion_sec) {
      os << '|' << t;
    }
    return os.str();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The spec actually produced dynamics, or this golden pins a static run.
  EXPECT_NE(first.find('@'), std::string::npos);
}

// --- parallel engine goldens (partitioned multi-threaded core) ---

std::unique_ptr<Topology> ParallelScriptTopology() {
  Rng rng(97);
  RoutedTopology::TransitStubParams params;
  params.num_nodes = 16;
  params.transit_domains = 2;
  params.routers_per_transit = 2;
  params.stub_domains_per_transit_router = 1;
  params.routers_per_stub = 2;
  // Exact power-of-two capacities: the regime where AllocateParallel is
  // documented to agree bitwise with Allocate() (see bandwidth_allocator.h),
  // so 1-thread and N-thread runs can be compared flow for flow.
  params.transit_bps = 134217728.0;      // 2^27
  params.transit_stub_bps = 33554432.0;  // 2^25
  params.stub_bps = 67108864.0;          // 2^26
  params.access_bps = 8388608.0;         // 2^23
  // Fixed 20 ms transit tier: the minimum cross-partition path delay (the
  // lookahead) comfortably clears the 10 ms quantum, so BuildPartitions
  // accepts the 2- and 4-way plans instead of falling back to serial.
  params.transit_delay_min = MsToSim(20);
  params.transit_delay_max = MsToSim(20);
  return std::make_unique<RoutedTopology>(RoutedTopology::TransitStub(params, rng));
}

// A connect-and-send script over the 16-node transit-stub net above: conns
// span partitions, sends stagger across the run in bursts. Deliberately no
// closes and no failures — teardown landing in the same superstep window as
// in-flight deliveries is the one documented behavioral divergence of the
// parallel engine, so excluding it makes the serial and parallel timelines
// comparable event for event. Counters from the run land in *counters.
std::vector<std::string> RunParallelScript(int num_threads, RunCounters* counters = nullptr) {
  NetworkConfig config;
  config.num_threads = num_threads;
  Network net(ParallelScriptTopology(), config, 777);
  if (num_threads > 1) {
    // The plan must actually engage, or this compares serial against serial.
    EXPECT_GE(net.parallel_partitions(), 2) << num_threads << " threads";
  }
  std::vector<std::unique_ptr<TimelineRecorder>> handlers;
  for (NodeId n = 0; n < 16; ++n) {
    handlers.push_back(std::make_unique<TimelineRecorder>(&net));
    net.SetHandler(n, handlers.back().get());
  }
  const NodeId pairs[][2] = {{0, 8}, {1, 9}, {2, 12}, {3, 13}, {4, 10},
                             {0, 1}, {8, 9}, {5, 14}, {6, 11}, {7, 15}};
  constexpr size_t kNumPairs = sizeof(pairs) / sizeof(pairs[0]);
  std::vector<ConnId> conns;
  for (const auto& p : pairs) {
    conns.push_back(net.Connect(p[0], p[1]));
  }
  int next_id = 0;
  for (int burst = 0; burst < 5; ++burst) {
    // Off-grid send times, well past the ~84 ms establishment handshakes.
    net.queue().Schedule(SecToSim(0.4) + burst * SecToSim(1.3) + MsToSim(7), [&, burst] {
      for (size_t c = 0; c < kNumPairs; ++c) {
        if ((burst + static_cast<int>(c)) % 3 == 0) {
          net.Send(conns[c], pairs[c][0], std::make_unique<ScriptMsg>(next_id++, 384 * 1024));
        }
        if ((burst + static_cast<int>(c)) % 4 == 1) {
          net.Send(conns[c], pairs[c][1], std::make_unique<ScriptMsg>(next_id++, 96 * 1024));
        }
      }
    });
  }
  RunCounters local;
  {
    ScopedRunCounters install(&local);
    net.Run(SecToSim(12.0));
  }
  if (counters) {
    *counters = local;
  }
  std::vector<std::string> all;
  for (auto& h : handlers) {
    for (auto& e : h->events) {
      all.push_back(std::move(e));
    }
  }
  return all;
}

TEST(Determinism, ParallelEngineMatchesSerialFlowForFlow) {
  const std::vector<std::string> serial = RunParallelScript(1);
  const std::vector<std::string> parallel = RunParallelScript(4);
  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "event " << i;
  }
}

TEST(Determinism, ParallelRunCountersMatchSerialBitwise) {
  RunCounters serial;
  RunCounters parallel;
  RunParallelScript(1, &serial);
  RunParallelScript(4, &parallel);
  EXPECT_GT(serial.events_executed, 0u);
  EXPECT_EQ(serial.events_executed, parallel.events_executed);
  EXPECT_EQ(serial.allocator_epochs, parallel.allocator_epochs);
  EXPECT_EQ(serial.sim_bytes_sent, parallel.sim_bytes_sent);
}

TEST(Determinism, ParallelScriptRepeatedRunsIdentical) {
  for (int threads : {2, 4}) {
    const std::vector<std::string> a = RunParallelScript(threads);
    const std::vector<std::string> b = RunParallelScript(threads);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << threads << " threads";
  }
}

// Staggered joins, leaf churn, and periodic correlated bandwidth halving on
// the parallel engine. Only run-to-run determinism is asserted — that is the
// parallel contract; protocol runs are NOT expected to match the serial engine
// flow for flow (staged commands apply at superstep barriers, which shifts
// protocol-visible interleavings; see network.h).
WorkloadResult RunParallelChurnWorkload(int num_threads) {
  WorkloadParams params;
  params.seed = 2601;
  params.deadline = SecToSim(120.0);
  params.num_threads = num_threads;
  WorkloadExperiment exp(ParallelScriptTopology(), params);
  if (num_threads > 1) {
    EXPECT_GE(exp.net().parallel_partitions(), 2) << num_threads << " threads";
  }

  SessionSpec spec;
  spec.protocol = "bullet-prime";
  spec.file.block_bytes = 16 * 1024;
  spec.file.num_blocks = 64;  // 1 MB
  spec.seed = 2601;
  for (NodeId n = 0; n < 16; ++n) {
    spec.members.push_back(n);
    spec.join_offsets.push_back(n >= 8 ? SecToSim(8.0) : 0);
  }
  exp.AddSession(spec);

  Rng churn_rng(778);
  ChurnPlan plan = PlanLeafFailures(exp.session_tree(0), /*source=*/0, /*count=*/2, churn_rng);
  plan.first_kill = SecToSim(12.0);
  ScheduleChurn(exp.net(), plan);
  BandwidthDynamicsParams dyn;
  dyn.period = SecToSim(5.0);
  StartPeriodicBandwidthChanges(exp.net(), dyn);
  return exp.Run();
}

TEST(Determinism, ParallelWorkloadDoubleRunSerializesIdentically) {
  for (int threads : {2, 4}) {
    const std::string first = SerializeWorkload(RunParallelChurnWorkload(threads));
    const std::string second = SerializeWorkload(RunParallelChurnWorkload(threads));
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second) << threads << " threads";
  }
}

}  // namespace
}  // namespace bullet
