// Mirror synchronization with Shotgun (Section 4.8): end-to-end on real bytes.
//
// Builds version 1 of a software image (a tree of files), evolves it to version 2,
// runs shotgun_sync at the source (rsync deltas -> one versioned bundle), ships the
// bundle's exact bytes through Bullet' on an emulated wide-area overlay, and applies
// the parsed bundle at a client — verifying byte-for-byte equality with version 2.
//
// Usage: mirror_sync [num_nodes] [image_mb]

#include <cstdio>
#include <cstdlib>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/harness/scenarios.h"
#include "src/shotgun/shotgun.h"

namespace {

bullet::Bytes RandomBytes(size_t n, bullet::Rng& rng) {
  bullet::Bytes out(n);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_nodes = argc > 1 ? std::atoi(argv[1]) : 20;
  const double image_mb = argc > 2 ? std::atof(argv[2]) : 8.0;
  bullet::Rng rng(2026);

  // --- Version 1: a tree of binaries, libraries and data files ---
  bullet::FileTree v1;
  const size_t file_bytes = static_cast<size_t>(image_mb * 1024 * 1024 / 8);
  for (int f = 0; f < 8; ++f) {
    v1["image/file" + std::to_string(f)] = RandomBytes(file_bytes, rng);
  }

  // --- Version 2: edits, one rewrite, one addition, one removal ---
  bullet::FileTree v2 = v1;
  for (int f = 0; f < 6; ++f) {
    auto& bytes = v2["image/file" + std::to_string(f)];
    // A handful of localized edits per file (patch-sized changes, not a rewrite).
    for (int e = 0; e < 12; ++e) {
      const size_t pos =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 512));
      for (size_t i = 0; i < 400; ++i) {
        bytes[pos + i] ^= static_cast<uint8_t>(rng.Next());
      }
    }
  }
  v2["image/file6"] = RandomBytes(file_bytes, rng);  // full rewrite
  v2["image/new_tool"] = RandomBytes(file_bytes / 4, rng);
  v2.erase("image/file7");

  // --- shotgun_sync at the source ---
  const bullet::SyncBundle bundle = bullet::MakeBundle(v1, v2, 4 * 1024, 1, 2);
  const bullet::Bytes wire = bullet::SerializeBundle(bundle);
  std::printf("image: %.1f MB in %zu files; bundle: %.2f MB (%.1f%% of image), replay %.2f MB\n",
              image_mb, v2.size(), wire.size() / 1048576.0,
              100.0 * static_cast<double>(wire.size()) / (image_mb * 1048576.0),
              static_cast<double>(bundle.ReplayBytes()) / 1048576.0);

  // --- Disseminate the bundle bytes over Bullet' ---
  bullet::ScenarioConfig cfg;
  cfg.topo = bullet::ScenarioConfig::Topo::kWideArea;
  cfg.num_nodes = num_nodes;
  cfg.file_mb = static_cast<double>(wire.size()) / 1048576.0;
  cfg.seed = 7;
  const bullet::ScenarioResult r = bullet::RunScenario("bullet-prime", cfg);
  std::printf("disseminated to %d/%d nodes: median %.1f s, slowest %.1f s\n", r.completed,
              r.receivers, bullet::Percentile(r.completion_sec, 0.5),
              bullet::Percentile(r.completion_sec, 1.0));

  // --- shotgund at a client: parse + apply + verify ---
  const auto parsed = bullet::ParseBundle(wire);
  if (!parsed.has_value()) {
    std::printf("FAIL: bundle did not parse\n");
    return 1;
  }
  bullet::FileTree client = v1;  // the client held version 1
  if (!bullet::ApplyBundle(client, *parsed)) {
    std::printf("FAIL: bundle did not apply\n");
    return 1;
  }
  if (client != v2) {
    std::printf("FAIL: applied tree differs from version 2\n");
    return 1;
  }
  std::printf("verified: every client byte-identical to version 2\n");
  return 0;
}
