#include "src/sim/network.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "src/common/logging.h"
#include "src/common/profiler.h"

namespace bullet {

void Network::MsgRing::push_back(QueuedMsg qm) {
  if (size_ == buf_.size()) {
    // Grow to the next power of two, unrolling the ring into natural order.
    const size_t new_cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<QueuedMsg> grown;
    grown.reserve(new_cap);
    for (size_t i = 0; i < size_; ++i) {
      grown.push_back(std::move(buf_[(head_ + i) & (buf_.size() - 1)]));
    }
    grown.resize(new_cap);
    buf_ = std::move(grown);
    head_ = 0;
  }
  buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(qm);
  ++size_;
}

void Network::MsgRing::pop_front() {
  buf_[head_] = QueuedMsg{};  // release the message now, not at overwrite time
  head_ = (head_ + 1) & (buf_.size() - 1);
  --size_;
}

void Network::MsgRing::clear_and_release() {
  buf_.clear();
  buf_.shrink_to_fit();
  head_ = 0;
  size_ = 0;
}

Network::Network(std::unique_ptr<Topology> topology, NetworkConfig config, uint64_t seed)
    : topology_(std::move(topology)),
      config_(config),
      rng_(seed),
      handlers_(static_cast<size_t>(topology_->num_nodes()), nullptr),
      tx_bytes_(static_cast<size_t>(topology_->num_nodes()), 0),
      rx_bytes_(static_cast<size_t>(topology_->num_nodes()), 0),
      failed_(static_cast<size_t>(topology_->num_nodes()), 0) {
  const size_t interior_ids = static_cast<size_t>(topology_->interior_id_limit());
  interior_epoch_.assign(interior_ids, 0);
  interior_link_id_.assign(interior_ids, -1);
}

void Network::SetHandler(NodeId node, NetHandler* handler) {
  handlers_[static_cast<size_t>(node)] = handler;
}

Network::Conn* Network::GetConn(ConnId id) {
  if (id < 0 || static_cast<size_t>(id) >= conns_.size()) {
    return nullptr;
  }
  return conns_[static_cast<size_t>(id)].get();
}

const Network::Conn* Network::GetConn(ConnId id) const {
  if (id < 0 || static_cast<size_t>(id) >= conns_.size()) {
    return nullptr;
  }
  return conns_[static_cast<size_t>(id)].get();
}

int Network::EndpointIndex(const Conn& c, NodeId node) {
  if (c.node[0] == node) {
    return 0;
  }
  if (c.node[1] == node) {
    return 1;
  }
  return -1;
}

ConnId Network::Connect(NodeId from, NodeId to) {
  if (from == to || IsNodeFailed(from) || IsNodeFailed(to)) {
    return -1;
  }
  const ConnId id = static_cast<ConnId>(conns_.size());
  auto conn = std::make_unique<Conn>();
  conn->id = id;
  conn->node[0] = from;
  conn->node[1] = to;
  for (int i = 0; i < 2; ++i) {
    const NodeId src = conn->node[i];
    const NodeId dst = conn->node[1 - i];
    {
      BULLET_PROFILE_SCOPE(ProfilePhase::kTopologyMetrics);
      conn->path[i].path_delay = topology_->PathDelay(src, dst);
      conn->path[i].rtt = topology_->Rtt(src, dst);
      conn->path[i].loss = topology_->PathLoss(src, dst);
    }
    {
      BULLET_PROFILE_SCOPE(ProfilePhase::kPathLookup);
      const Topology::PathView route = topology_->InteriorPath(src, dst);
      conn->path[i].interior_off = static_cast<uint32_t>(path_pool_.size());
      conn->path[i].interior_len = route.size;
      path_pool_.insert(path_pool_.end(), route.begin(), route.end());
    }
  }
  conns_.push_back(std::move(conn));
  conn_busy_mask_.push_back(0);
  open_conns_.push_back(id);

  // TCP three-way handshake plus the first application-level write.
  const SimTime established_at = now() + topology_->Rtt(from, to) * 3 / 2;
  queue_.Schedule(established_at, [this, id] {
    Conn* c = GetConn(id);
    if (c == nullptr || c->closed) {
      return;
    }
    c->established = true;
    for (int i = 0; i < 2; ++i) {
      if (!c->dir[i].queue.empty()) {
        c->dir[i].tcp.OnBecameActive(now(), config_.tcp);
        ActivateDirection(*c, i);
      } else {
        c->dir[i].idle_since = now();
      }
    }
    for (int i = 0; i < 2; ++i) {
      NetHandler* h = handlers_[static_cast<size_t>(c->node[i])];
      if (h != nullptr) {
        h->OnConnUp(id, c->node[1 - i], /*initiator=*/i == 0);
      }
    }
  });
  return id;
}

void Network::Close(ConnId conn_id) {
  Conn* c = GetConn(conn_id);
  if (c == nullptr || c->closed) {
    return;
  }
  c->closed = true;
  for (auto& dir : c->dir) {
    if (c->established && !dir.queue.empty()) {
      --active_dirs_;
    }
    dir.queue.clear_and_release();
    dir.queued_bytes = 0;
    dir.rate_bps = 0.0;
  }
  conn_busy_mask_[static_cast<size_t>(conn_id)] = 0;
  // The next quantum boundary compacts this entry out of open_conns_ (doing it
  // right here would reorder the list differently from one batched pass and
  // change max-min tie-breaking; see RebuildAndAllocate).
  ++pending_close_;
  alloc_dirty_ = true;
  WakeTicksIfPaused();
  // Notify both ends asynchronously; the remote end hears after one path delay.
  for (int i = 0; i < 2; ++i) {
    const NodeId endpoint = c->node[i];
    const NodeId peer = c->node[1 - i];
    const SimTime at = i == 0 ? now() : now() + topology_->PathDelay(c->node[0], c->node[1]);
    queue_.Schedule(at, [this, conn_id, endpoint, peer] {
      NetHandler* h = handlers_[static_cast<size_t>(endpoint)];
      if (h != nullptr) {
        h->OnConnDown(conn_id, peer);
      }
    });
  }
}

bool Network::IsOpen(ConnId conn_id) const {
  const Conn* c = GetConn(conn_id);
  return c != nullptr && !c->closed;
}

bool Network::Send(ConnId conn_id, NodeId from, std::unique_ptr<Message> msg) {
  Conn* c = GetConn(conn_id);
  if (c == nullptr || c->closed || msg == nullptr) {
    return false;
  }
  const int idx = EndpointIndex(*c, from);
  if (idx < 0) {
    return false;
  }
  Direction& dir = c->dir[idx];
  if (dir.queue.empty() && c->established) {
    dir.tcp.OnBecameActive(now(), config_.tcp);
    ActivateDirection(*c, idx);
  }
  dir.queued_bytes += msg->wire_bytes;
  const double bytes = static_cast<double>(std::max<int64_t>(msg->wire_bytes, 1));
  dir.queue.push_back(QueuedMsg{std::move(msg), bytes});
  return true;
}

// Idle -> busy transition of an established direction: restart cap tracking and
// mark the flow set dirty so the next quantum re-water-fills.
void Network::ActivateDirection(Conn& c, int dir_idx) {
  c.dir[dir_idx].cap_steady = false;
  conn_busy_mask_[static_cast<size_t>(c.id)] |= static_cast<uint8_t>(1 << dir_idx);
  ++active_dirs_;
  alloc_dirty_ = true;
  WakeTicksIfPaused();
}

size_t Network::QueuedMessages(ConnId conn_id, NodeId from) const {
  const Conn* c = GetConn(conn_id);
  if (c == nullptr) {
    return 0;
  }
  const int idx = EndpointIndex(*c, from);
  return idx < 0 ? 0 : c->dir[idx].queue.size();
}

int64_t Network::QueuedBytes(ConnId conn_id, NodeId from) const {
  const Conn* c = GetConn(conn_id);
  if (c == nullptr) {
    return 0;
  }
  const int idx = EndpointIndex(*c, from);
  return idx < 0 ? 0 : c->dir[idx].queued_bytes;
}

SimTime Network::IdleTime(ConnId conn_id, NodeId from) const {
  const Conn* c = GetConn(conn_id);
  if (c == nullptr) {
    return 0;
  }
  const int idx = EndpointIndex(*c, from);
  if (idx < 0 || !c->dir[idx].queue.empty()) {
    return 0;
  }
  return now() - c->dir[idx].idle_since;
}

double Network::CurrentRateBps(ConnId conn_id, NodeId from) const {
  const Conn* c = GetConn(conn_id);
  if (c == nullptr) {
    return 0.0;
  }
  const int idx = EndpointIndex(*c, from);
  return idx < 0 ? 0.0 : c->dir[idx].rate_bps;
}

int Network::CountFlowsOnInteriorLink(int32_t link_id) const {
  int flows = 0;
  for (const ConnId id : open_conns_) {
    const Conn* c = GetConn(id);
    if (c == nullptr || !c->established || c->closed) {
      continue;
    }
    for (int i = 0; i < 2; ++i) {
      if (c->dir[i].queued_bytes <= 0) {
        continue;
      }
      for (const int32_t* it = PathInteriorBegin(c->path[i]); it != PathInteriorEnd(c->path[i]);
           ++it) {
        if (*it == link_id) {
          ++flows;
          break;
        }
      }
    }
  }
  return flows;
}

double Network::InteriorLinkAllocatedBps(int32_t link_id) const {
  double bps = 0.0;
  for (const ConnId id : open_conns_) {
    const Conn* c = GetConn(id);
    if (c == nullptr || !c->established || c->closed) {
      continue;
    }
    for (int i = 0; i < 2; ++i) {
      if (c->dir[i].queued_bytes <= 0) {
        continue;
      }
      for (const int32_t* it = PathInteriorBegin(c->path[i]); it != PathInteriorEnd(c->path[i]);
           ++it) {
        if (*it == link_id) {
          bps += c->dir[i].rate_bps;
          break;
        }
      }
    }
  }
  return bps;
}

void Network::FailNode(NodeId node) {
  if (IsNodeFailed(node)) {
    return;
  }
  failed_[static_cast<size_t>(node)] = 1;
  for (const ConnId id : open_conns_) {
    const Conn* c = GetConn(id);
    if (c != nullptr && !c->closed && (c->node[0] == node || c->node[1] == node)) {
      Close(id);
    }
  }
}

void Network::ScheduleFirstTick() {
  tick_scheduled_ = true;
  tick_anchor_ = now() + config_.quantum;
  queue_.ScheduleAfter(config_.quantum, [this] { Tick(); });
}

void Network::ScheduleNextTick() {
  if (config_.skip_idle_ticks && active_dirs_ == 0 && pending_close_ == 0) {
    tick_paused_ = true;
    return;
  }
  queue_.ScheduleAfter(config_.quantum, [this] { Tick(); });
}

void Network::WakeTicksIfPaused() {
  if (!tick_paused_) {
    return;
  }
  tick_paused_ = false;
  tick_resumed_ = true;
  queue_.Schedule(NextGridTickTime(), [this] { Tick(); });
}

SimTime Network::NextGridTickTime() const {
  if (now() < tick_anchor_) {
    return tick_anchor_;
  }
  return tick_anchor_ + ((now() - tick_anchor_) / config_.quantum + 1) * config_.quantum;
}

// Removes closed connections in one ascending-position swap-with-back pass — the
// exact pass the pre-PR tick ran every quantum. Batch shape matters: the
// resulting permutation feeds the allocator, whose FP tie-breaking depends on
// flow order, so closes are compacted per quantum boundary rather than one by
// one at Close() time.
void Network::CompactOpenConns() {
  for (size_t i = 0; i < open_conns_.size();) {
    const Conn* c = GetConn(open_conns_[i]);
    if (c == nullptr || c->closed) {
      open_conns_[i] = open_conns_.back();
      open_conns_.pop_back();
    } else {
      ++i;
    }
  }
  pending_close_ = 0;
}

void Network::Tick() {
  SimTime dt = now() - last_tick_;
  if (tick_resumed_) {
    // Waking from an idle pause: the interval since the last executed tick
    // carried no transmissions, so the advance budget covers one quantum.
    dt = config_.quantum;
    tick_resumed_ = false;
  }
  last_tick_ = now();
  const double dt_sec = SimToSec(dt);

  if (pending_close_ > 0) {
    CompactOpenConns();
  }

  if (config_.allocator_mode == NetworkConfig::AllocatorMode::kFullRecompute) {
    TickFullRecompute(dt_sec);
    ScheduleNextTick();
    return;
  }

  if (active_dirs_ > 0) {
    const bool caps_same = CapacitiesUnchanged();
    if (alloc_dirty_ || !caps_same) {
      RebuildAndAllocate(caps_same);
    }
    AdvanceTransmissions(dt_sec);
  }

  ScheduleNextTick();
}

// True when every link capacity the last allocation used is unchanged, so the
// cached rates are still exact. Covers all access links plus the interior links
// that carried flows; links without flows cannot influence the allocation.
bool Network::CapacitiesUnchanged() const {
  const int n = topology_->num_nodes();
  if (base_caps_.size() != static_cast<size_t>(2 * n)) {
    return false;  // never allocated yet
  }
  for (NodeId i = 0; i < n; ++i) {
    if (topology_->uplink(i).bandwidth_bps != base_caps_[static_cast<size_t>(i)] ||
        topology_->downlink(i).bandwidth_bps != base_caps_[static_cast<size_t>(n + i)]) {
      return false;
    }
  }
  for (const InteriorCap& ic : interior_caps_) {
    if (topology_->interior_link(ic.id).bandwidth_bps != ic.cap) {
      return false;
    }
  }
  return true;
}

int32_t Network::InteriorLinkIdForEpoch(int32_t interior_id) {
  const size_t key = static_cast<size_t>(interior_id);
  // The epoch tables were sized from interior_id_limit() at construction; a
  // topology that grew interior links afterwards would index past them.
  BULLET_CHECK(key < interior_epoch_.size() &&
               "topology gained interior links after the network was built");
  if (interior_epoch_[key] != epoch_counter_) {
    interior_epoch_[key] = epoch_counter_;
    const double cap = topology_->interior_link(interior_id).bandwidth_bps;
    interior_link_id_[key] = alloc_.AddLink(cap);
    interior_caps_.push_back(InteriorCap{interior_id, cap});
  }
  return interior_link_id_[key];
}

// Rebuilds the active flow set and re-runs water-filling. Link ids and flow
// order replicate the pre-routed tick exactly: uplink(i) = i, downlink(i) = n + i,
// interior links assigned densely in first-use order while scanning open_conns_ —
// the allocator's FP results depend on these orders (see bandwidth_allocator.h).
void Network::RebuildAndAllocate(bool base_caps_unchanged) {
  BULLET_PROFILE_SCOPE(ProfilePhase::kAllocatorEpoch);
  ++allocator_epochs_;
  const int n = topology_->num_nodes();
  if (base_caps_unchanged && base_caps_.size() == static_cast<size_t>(2 * n)) {
    // Access-link capacities are verified unchanged; keep them in place.
    alloc_.BeginEpoch(static_cast<size_t>(2 * n));
  } else {
    alloc_.BeginEpoch(0);
    base_caps_.resize(static_cast<size_t>(2 * n));
    for (NodeId i = 0; i < n; ++i) {
      const double up = topology_->uplink(i).bandwidth_bps;
      alloc_.AddLink(up);
      base_caps_[static_cast<size_t>(i)] = up;
    }
    for (NodeId i = 0; i < n; ++i) {
      const double down = topology_->downlink(i).bandwidth_bps;
      alloc_.AddLink(down);
      base_caps_[static_cast<size_t>(n + i)] = down;
    }
  }
  ++epoch_counter_;
  interior_caps_.clear();
  cached_flows_.clear();
  ramping_flows_ = 0;

  for (const ConnId id : open_conns_) {
    const uint8_t busy = conn_busy_mask_[static_cast<size_t>(id)];
    if (busy == 0) {
      continue;  // no established direction with queued bytes
    }
    Conn* c = conns_[static_cast<size_t>(id)].get();
    for (int i = 0; i < 2; ++i) {
      if ((busy & (1 << i)) == 0) {
        continue;
      }
      Direction& dir = c->dir[i];
      const NodeId src = c->node[i];
      const NodeId dst = c->node[1 - i];
      // Allocator link list: uplink, downlink, then the interior links — the
      // historical (src, n+dst, core) order generalized to routed paths.
      flow_link_scratch_.clear();
      flow_link_scratch_.push_back(src);
      flow_link_scratch_.push_back(static_cast<int32_t>(n) + dst);
      for (const int32_t* it = PathInteriorBegin(c->path[i]); it != PathInteriorEnd(c->path[i]);
           ++it) {
        flow_link_scratch_.push_back(InteriorLinkIdForEpoch(*it));
      }
      if (!dir.cap_steady) {
        bool steady = false;
        dir.cap_cache = TcpRateCapDetail(dir.tcp, now(), c->path[i].rtt, c->path[i].loss,
                                         config_.tcp, &steady);
        dir.cap_steady = steady;
        if (!steady) {
          ++ramping_flows_;
        }
      }
      alloc_.AddFlowPath(flow_link_scratch_.data(), flow_link_scratch_.size(), dir.cap_cache);
      cached_flows_.push_back(CachedFlow{c, i});
    }
  }

  alloc_.Allocate();
  // Shared-bottleneck introspection: widest interior link of this epoch (links
  // below 2n are access links). The CSR row widths are valid after Allocate().
  for (size_t l = static_cast<size_t>(2 * n); l < alloc_.num_links(); ++l) {
    max_interior_link_flows_ = std::max(max_interior_link_flows_, alloc_.flows_on_link(l));
  }
  // Ramping caps change next quantum, which changes the allocation; otherwise the
  // cached result stays exact until an activation/drain/close/capacity change.
  alloc_dirty_ = ramping_flows_ > 0;
}

void Network::AdvanceTransmissions(double dt_sec) {
  for (size_t fi = 0; fi < cached_flows_.size(); ++fi) {
    Conn* c = cached_flows_[fi].conn;
    const int dir_idx = cached_flows_[fi].dir_idx;
    if (c->closed) {
      continue;
    }
    Direction& dir = c->dir[dir_idx];
    if (dir.queue.empty()) {
      continue;
    }
    dir.rate_bps = alloc_.rate(fi);
    dir.tcp.last_busy = now();
    double budget = dir.rate_bps / 8.0 * dt_sec;
    while (!dir.queue.empty() && budget >= dir.queue.front().remaining_bytes) {
      QueuedMsg qm = std::move(dir.queue.front());
      dir.queue.pop_front();
      budget -= qm.remaining_bytes;
      dir.queued_bytes -= qm.msg->wire_bytes;
      tx_bytes_[static_cast<size_t>(c->node[dir_idx])] += qm.msg->wire_bytes;
      // Delivery is scheduled, not synchronous, so no reentrancy happens here.
      EnqueueDelivery(c->id, *c, dir_idx, std::move(qm.msg));
    }
    if (!dir.queue.empty()) {
      dir.queue.front().remaining_bytes -= budget;
    } else {
      dir.idle_since = now();
      dir.rate_bps = 0.0;
      conn_busy_mask_[static_cast<size_t>(c->id)] &= static_cast<uint8_t>(~(1 << dir_idx));
      --active_dirs_;
      alloc_dirty_ = true;
    }
  }
}

// The pre-PR tick body: rebuild every auxiliary structure and recompute all
// rates each quantum. Kept as the A/B reference for the perf_core_scale
// benchmark and the determinism tests.
void Network::TickFullRecompute(double dt_sec) {
  // Build the active flow set. Link ids: uplink(n) = n, downlink(n) = N + n,
  // interior links assigned densely on demand.
  const int n = topology_->num_nodes();
  std::vector<PathFlowSpec> flows;
  std::vector<std::pair<ConnId, int>> flow_dirs;
  std::vector<double> capacities(static_cast<size_t>(2 * n));
  for (NodeId i = 0; i < n; ++i) {
    capacities[static_cast<size_t>(i)] = topology_->uplink(i).bandwidth_bps;
    capacities[static_cast<size_t>(n + i)] = topology_->downlink(i).bandwidth_bps;
  }
  std::unordered_map<int32_t, int32_t> interior_ids;
  for (const ConnId id : open_conns_) {
    Conn* c = GetConn(id);
    if (!c->established) {
      continue;
    }
    for (int i = 0; i < 2; ++i) {
      Direction& dir = c->dir[i];
      if (dir.queue.empty()) {
        dir.rate_bps = 0.0;
        continue;
      }
      const NodeId src = c->node[i];
      const NodeId dst = c->node[1 - i];
      PathFlowSpec flow;
      flow.links.reserve(2 + c->path[i].interior_len);
      flow.links.push_back(src);
      flow.links.push_back(static_cast<int32_t>(n) + dst);
      for (const int32_t* pi = PathInteriorBegin(c->path[i]); pi != PathInteriorEnd(c->path[i]);
           ++pi) {
        auto [it, inserted] = interior_ids.emplace(*pi, static_cast<int32_t>(capacities.size()));
        if (inserted) {
          capacities.push_back(topology_->interior_link(*pi).bandwidth_bps);
        }
        flow.links.push_back(it->second);
      }
      // The PathCache snapshot equals the live Rtt/PathLoss lookups the pre-PR
      // code performed here: delay and loss are static for a run's lifetime.
      flow.cap_bps = TcpRateCapBps(dir.tcp, now(), c->path[i].rtt, c->path[i].loss, config_.tcp);
      flows.push_back(std::move(flow));
      flow_dirs.emplace_back(id, i);
    }
  }

  ++allocator_epochs_;
  {
    BULLET_PROFILE_SCOPE(ProfilePhase::kAllocatorEpoch);
    AllocateMaxMinPaths(flows, capacities);
  }
  // Shared-bottleneck introspection, mirroring RebuildAndAllocate: interior
  // link ids start at 2n; count per-link flows directly from the flow lists.
  if (capacities.size() > static_cast<size_t>(2 * n)) {
    std::vector<int32_t> interior_flow_counts(capacities.size() - static_cast<size_t>(2 * n), 0);
    for (const PathFlowSpec& flow : flows) {
      for (const int32_t l : flow.links) {
        if (l >= 2 * n) {
          ++interior_flow_counts[static_cast<size_t>(l - 2 * n)];
        }
      }
    }
    for (const int32_t count : interior_flow_counts) {
      max_interior_link_flows_ = std::max(max_interior_link_flows_, count);
    }
  }

  // Advance transmissions.
  for (size_t fi = 0; fi < flows.size(); ++fi) {
    const auto [conn_id, dir_idx] = flow_dirs[fi];
    Conn* c = GetConn(conn_id);
    if (c == nullptr || c->closed) {
      continue;
    }
    Direction& dir = c->dir[dir_idx];
    dir.rate_bps = flows[fi].rate_bps;
    dir.tcp.last_busy = now();
    double budget = dir.rate_bps / 8.0 * dt_sec;
    while (!dir.queue.empty() && budget >= dir.queue.front().remaining_bytes) {
      QueuedMsg qm = std::move(dir.queue.front());
      dir.queue.pop_front();
      budget -= qm.remaining_bytes;
      dir.queued_bytes -= qm.msg->wire_bytes;
      tx_bytes_[static_cast<size_t>(c->node[dir_idx])] += qm.msg->wire_bytes;
      EnqueueDelivery(conn_id, *c, dir_idx, std::move(qm.msg));
    }
    if (!dir.queue.empty()) {
      dir.queue.front().remaining_bytes -= budget;
    } else {
      dir.idle_since = now();
      dir.rate_bps = 0.0;
      conn_busy_mask_[static_cast<size_t>(conn_id)] &= static_cast<uint8_t>(~(1 << dir_idx));
      --active_dirs_;
      alloc_dirty_ = true;
    }
  }
}

void Network::EnqueueDelivery(ConnId conn_id, Conn& c, int sender_idx, std::unique_ptr<Message> msg) {
  const PathCache& path = c.path[sender_idx];
  Direction& dir = c.dir[sender_idx];

  SimTime delivered_at = now() + path.path_delay;
  if (config_.loss_latency) {
    const double p = path.loss;
    if (p > 0.0) {
      const double packets =
          std::max(1.0, std::ceil(static_cast<double>(msg->wire_bytes) / config_.tcp.mss_bytes));
      const double p_msg = 1.0 - std::pow(1.0 - p, packets);
      if (rng_.Bernoulli(p_msg)) {
        // Fast retransmit in the common case; occasionally a full RTO.
        const SimTime rtt = path.rtt;
        SimTime penalty = rtt + rtt / 2;
        if (rng_.Bernoulli(0.2)) {
          penalty = std::max<SimTime>(MsToSim(200), 2 * rtt);
        }
        delivered_at += penalty;
      }
    }
  }
  delivered_at = std::max(delivered_at, dir.delivery_floor);
  dir.delivery_floor = delivered_at;

  const int receiver_idx = 1 - sender_idx;
  queue_.Schedule(delivered_at,
                  [this, conn_id, receiver_idx, msg = std::move(msg)]() mutable {
                    DeliverMessage(conn_id, receiver_idx, std::move(msg));
                  });
}

void Network::DeliverMessage(ConnId conn_id, int receiver_idx, std::unique_ptr<Message> msg) {
  Conn* c = GetConn(conn_id);
  if (c == nullptr || c->closed || msg == nullptr) {
    return;
  }
  const NodeId receiver = c->node[receiver_idx];
  const NodeId sender = c->node[1 - receiver_idx];
  rx_bytes_[static_cast<size_t>(receiver)] += msg->wire_bytes;
  NetHandler* h = handlers_[static_cast<size_t>(receiver)];
  if (h != nullptr) {
    BULLET_PROFILE_SCOPE(ProfilePhase::kProtocolLogic);
    h->OnMessage(conn_id, sender, std::move(msg));
  }
}

int64_t Network::total_bytes_sent() const {
  int64_t total = 0;
  for (const int64_t b : tx_bytes_) {
    total += b;
  }
  return total;
}

void Network::Run(SimTime until) {
  if (!tick_scheduled_) {
    ScheduleFirstTick();
  }
  events_executed_ += queue_.RunUntil(until);
  // Publish the deltas since the last publication into the harness's installed
  // per-run counters (if any); several networks may feed one run's totals.
  if (RunCounters* rc = RunCounters::Current()) {
    rc->events_executed += events_executed_ - rc_published_events_;
    rc->allocator_epochs += allocator_epochs_ - published_epochs_;
    const int64_t bytes = total_bytes_sent();
    rc->sim_bytes_sent += static_cast<uint64_t>(bytes - published_bytes_);
    rc_published_events_ = events_executed_;
    published_epochs_ = allocator_epochs_;
    published_bytes_ = bytes;
  }
}

}  // namespace bullet
