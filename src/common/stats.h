// Small statistics helpers used by protocol logic (bandwidth trimming) and by the
// experiment harness (CDFs, percentiles).

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bullet {

// Welford-style running mean / variance with min and max tracking.
class RunningStats {
 public:
  void Add(double x);
  void Reset();

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Population variance / standard deviation (the Bullet' trimming rule compares
  // individual senders against the set they belong to, so population form is right).
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile with linear interpolation; q in [0, 1]. Sorts a copy. Returns 0 for
// empty input.
double Percentile(std::vector<double> values, double q);

// Same, for input the caller already sorted ascending — use when reading several
// percentiles off one series to sort once instead of per call.
double PercentileSorted(const std::vector<double>& sorted, double q);

// Exponentially weighted moving average with a configurable gain.
class Ewma {
 public:
  explicit Ewma(double gain) : gain_(gain) {}

  void Add(double x);
  void Reset();
  double value() const { return value_; }
  bool has_value() const { return initialized_; }

 private:
  double gain_;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Bandwidth meter: accumulates byte counts and reports the average rate over the
// window since the last Reset(). Times are in microseconds (SimTime convention).
class RateMeter {
 public:
  void AddBytes(int64_t bytes) { bytes_ += bytes; }
  // Rate in bytes/second over [window_start, now]; 0 for an empty window.
  double RateBps(int64_t window_start_us, int64_t now_us) const;
  void Reset() { bytes_ = 0; }
  int64_t bytes() const { return bytes_; }

 private:
  int64_t bytes_ = 0;
};

}  // namespace bullet

#endif  // SRC_COMMON_STATS_H_
