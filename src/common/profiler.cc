#include "src/common/profiler.h"

namespace bullet {
namespace {

thread_local RunCounters* g_run_counters = nullptr;
thread_local PhaseProfiler* g_phase_profiler = nullptr;

}  // namespace

RunCounters* RunCounters::Current() { return g_run_counters; }

RunCounters* RunCounters::Swap(RunCounters* c) {
  RunCounters* prev = g_run_counters;
  g_run_counters = c;
  return prev;
}

const char* ProfilePhaseName(ProfilePhase phase) {
  switch (phase) {
    case ProfilePhase::kEventDispatch:
      return "event_dispatch";
    case ProfilePhase::kEventSchedule:
      return "event_schedule";
    case ProfilePhase::kAllocatorEpoch:
      return "allocator_epoch";
    case ProfilePhase::kWaterFill:
      return "water_fill";
    case ProfilePhase::kProtocolLogic:
      return "protocol_logic";
    case ProfilePhase::kRequestStrategy:
      return "request_strategy";
    case ProfilePhase::kPathLookup:
      return "path_lookup";
    case ProfilePhase::kTopologyMetrics:
      return "topology_metrics";
    case ProfilePhase::kBarrierWait:
      return "barrier_wait";
    case ProfilePhase::kMerge:
      return "merge";
    case ProfilePhase::kCount:
      break;
  }
  return "unknown";
}

void PhaseProfiler::Reset() {
  for (Slot& s : slots_) {
    s.count.store(0, std::memory_order_relaxed);
    s.ns.store(0, std::memory_order_relaxed);
  }
}

PhaseProfiler* PhaseProfiler::Current() { return g_phase_profiler; }

PhaseProfiler* PhaseProfiler::Swap(PhaseProfiler* p) {
  PhaseProfiler* prev = g_phase_profiler;
  g_phase_profiler = p;
  return prev;
}

}  // namespace bullet
