// Shared helpers for the per-figure benchmark binaries.
//
// Each figure bench registers one google-benchmark entry per system/configuration
// (one iteration each: these are deterministic emulation runs, not microbenchmarks),
// reports the distribution via counters, and queues the full CDF series, which the
// custom main prints after the benchmark table — the same rows the paper plots.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "src/common/cdf.h"
#include "src/common/options.h"
#include "src/common/stats.h"
#include "src/harness/scenarios.h"

namespace bullet {
namespace bench {

inline std::vector<CdfSeries>& CollectedSeries() {
  static std::vector<CdfSeries> series;
  return series;
}

// Standard reporting: counters on the benchmark row + CDF collection.
inline void ReportCompletion(benchmark::State& state, const std::string& name,
                             const ScenarioResult& r) {
  state.counters["p05_s"] = Percentile(r.completion_sec, 0.05);
  state.counters["p50_s"] = Percentile(r.completion_sec, 0.50);
  state.counters["p90_s"] = Percentile(r.completion_sec, 0.90);
  state.counters["max_s"] = Percentile(r.completion_sec, 1.0);
  state.counters["dup_pct"] = r.duplicate_fraction * 100.0;
  state.counters["ctrl_pct"] = r.control_overhead * 100.0;
  state.counters["done"] = r.completed;
  CollectedSeries().push_back(CdfSeries{name, r.completion_sec});
}

inline void ReportSamples(benchmark::State& state, const std::string& name,
                          const std::vector<double>& samples) {
  state.counters["p50_s"] = Percentile(samples, 0.50);
  state.counters["p90_s"] = Percentile(samples, 0.90);
  state.counters["max_s"] = Percentile(samples, 1.0);
  CollectedSeries().push_back(CdfSeries{name, samples});
}

// Paper file size scaled by REPRO_SCALE (ci: 10%, full: 100%).
inline double ScaledFileMb(double paper_mb) { return paper_mb * GetReproScale().file_scale; }

inline void PrintCollected(const char* title) {
  std::cout << "\n### " << title << " — completion-time distributions\n";
  PrintSummaryTable(std::cout, CollectedSeries());
  std::cout << "\n### CDF series (fraction, seconds)\n";
  PrintCdf(std::cout, CollectedSeries(), 20);
}

}  // namespace bench
}  // namespace bullet

#define BULLET_BENCH_MAIN(title)                                    \
  int main(int argc, char** argv) {                                 \
    ::benchmark::Initialize(&argc, argv);                           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {     \
      return 1;                                                     \
    }                                                               \
    ::benchmark::RunSpecifiedBenchmarks();                          \
    ::benchmark::Shutdown();                                        \
    ::bullet::bench::PrintCollected(title);                         \
    return 0;                                                       \
  }

#endif  // BENCH_BENCH_UTIL_H_
