#include "src/harness/scenario_registry.h"

#include <gtest/gtest.h>

namespace bullet {
namespace {

ScenarioReport MakeReport(const ScenarioOptions& opts) {
  ScenarioReport report("dummy");
  report.AddScalar("nodes", opts.nodes.value_or(-1));
  report.AddSeries("samples", {1.0, 2.0, 3.0});
  return report;
}

TEST(ScenarioRegistryTest, RegisterFindRun) {
  ScenarioRegistry registry;
  ASSERT_TRUE(registry.Register("dummy", "a test scenario", MakeReport));
  ASSERT_EQ(registry.size(), 1u);

  const ScenarioRegistry::Entry* entry = registry.Find("dummy");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->name, "dummy");
  EXPECT_EQ(entry->description, "a test scenario");

  ScenarioOptions opts;
  opts.nodes = 20;
  const ScenarioReport report = entry->fn(opts);
  EXPECT_EQ(report.scenario(), "dummy");
  ASSERT_EQ(report.scalars().size(), 1u);
  EXPECT_EQ(report.scalars()[0].first, "nodes");
  EXPECT_DOUBLE_EQ(report.scalars()[0].second, 20.0);
  ASSERT_EQ(report.series().size(), 1u);
  EXPECT_EQ(report.series()[0].samples.size(), 3u);
}

TEST(ScenarioRegistryTest, RejectsDuplicateName) {
  ScenarioRegistry registry;
  ASSERT_TRUE(registry.Register("dummy", "first", MakeReport));
  EXPECT_FALSE(registry.Register("dummy", "second", MakeReport));
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Find("dummy")->description, "first");
}

TEST(ScenarioRegistryTest, UnknownNameReturnsNull) {
  ScenarioRegistry registry;
  registry.Register("dummy", "a test scenario", MakeReport);
  EXPECT_EQ(registry.Find("nope"), nullptr);
  EXPECT_EQ(registry.Find(""), nullptr);
}

TEST(ScenarioRegistryTest, ListIsSortedByName) {
  ScenarioRegistry registry;
  registry.Register("zeta", "", MakeReport);
  registry.Register("alpha", "", MakeReport);
  registry.Register("mid", "", MakeReport);
  const auto list = registry.List();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0]->name, "alpha");
  EXPECT_EQ(list[1]->name, "mid");
  EXPECT_EQ(list[2]->name, "zeta");
}

TEST(ScenarioRegistryTest, ApplyScenarioOptionsOverridesOnlySetFields) {
  ScenarioConfig cfg;
  cfg.num_nodes = 100;
  cfg.file_mb = 50.0;
  cfg.seed = 7;

  ScenarioOptions opts;
  opts.nodes = 20;
  opts.deadline_sec = 123.0;
  ApplyScenarioOptions(opts, &cfg);

  EXPECT_EQ(cfg.num_nodes, 20);
  EXPECT_DOUBLE_EQ(cfg.file_mb, 50.0);   // untouched
  EXPECT_EQ(cfg.seed, 7u);               // untouched
  EXPECT_EQ(cfg.deadline, SecToSim(123.0));
}

TEST(ScenarioReportTest, AddCompletionAttachesStandardMetrics) {
  ScenarioResult result;
  result.name = "SystemX";
  result.completion_sec = {1.0, 2.0, 4.0};
  result.duplicate_fraction = 0.125;
  result.control_overhead = 0.01;
  result.completed = 3;
  result.receivers = 3;

  ScenarioReport report("t");
  report.AddCompletion(result);
  ASSERT_EQ(report.series().size(), 1u);
  const SeriesReport& s = report.series()[0];
  EXPECT_EQ(s.name, "SystemX");
  ASSERT_EQ(s.metrics.size(), 7u);
  EXPECT_EQ(s.metrics[0].first, "dup_pct");
  EXPECT_DOUBLE_EQ(s.metrics[0].second, 12.5);
  EXPECT_EQ(s.metrics[4].first, "net_events_executed");
  EXPECT_EQ(s.metrics[5].first, "net_allocator_epochs");
  EXPECT_EQ(s.metrics[6].first, "net_sim_bytes_sent");
}

}  // namespace
}  // namespace bullet
