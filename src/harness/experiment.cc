#include "src/harness/experiment.h"

namespace bullet {

Experiment::Experiment(std::unique_ptr<Topology> topology, const ExperimentParams& params)
    : params_(params) {
  NetworkConfig net_config;
  net_config.quantum = params.quantum;
  net_config.allocator_mode = params.full_recompute_allocator
                                  ? NetworkConfig::AllocatorMode::kFullRecompute
                                  : NetworkConfig::AllocatorMode::kIncremental;
  net_config.skip_idle_ticks = params.skip_idle_ticks;
  net_ = std::make_unique<Network>(std::move(topology), net_config, params.seed ^ 0x9e3779b9ULL);
  Rng tree_rng(params.seed ^ 0x7f4a7c15ULL);
  tree_ = ControlTree::Random(net_->num_nodes(), params.tree_fanout, tree_rng);
  metrics_ = std::make_unique<RunMetrics>(net_->num_nodes());
  metrics_->record_arrivals = params.record_arrivals;
}

RunMetrics Experiment::Run(const ProtocolFactory& factory) {
  const int n = net_->num_nodes();
  protocols_.clear();
  protocols_.reserve(static_cast<size_t>(n));
  for (NodeId node = 0; node < n; ++node) {
    Protocol::Context ctx;
    ctx.self = node;
    ctx.net = net_.get();
    ctx.metrics = metrics_.get();
    ctx.seed = params_.seed * 0x100000001b3ULL + static_cast<uint64_t>(node) + 1;
    protocols_.push_back(factory(ctx, &tree_));
    net_->SetHandler(node, protocols_.back().get());
  }
  for (auto& p : protocols_) {
    p->Start();
  }
  net_->Run(params_.deadline);
  return *metrics_;
}

}  // namespace bullet
