#include "src/shotgun/shotgun.h"

#include <cstring>

namespace bullet {

namespace {

void PutU32(Bytes& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(Bytes& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data) {}
  bool ok() const { return ok_; }

  uint32_t U32() {
    uint32_t v = 0;
    if (pos_ + 4 > data_.size()) {
      ok_ = false;
      return 0;
    }
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }

  uint64_t U64() {
    uint64_t v = 0;
    if (pos_ + 8 > data_.size()) {
      ok_ = false;
      return 0;
    }
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }

  Bytes Blob(size_t len) {
    if (pos_ + len > data_.size()) {
      ok_ = false;
      return {};
    }
    Bytes out(data_.begin() + static_cast<long>(pos_), data_.begin() + static_cast<long>(pos_ + len));
    pos_ += len;
    return out;
  }

 private:
  const Bytes& data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

int64_t SyncBundle::WireBytes() const {
  int64_t n = 20;  // versions, block size, entry count
  for (const auto& e : entries) {
    n += 8 + static_cast<int64_t>(e.path.size());
    switch (e.op) {
      case BundleEntry::Op::kPatch:
        n += e.delta.WireBytes();
        break;
      case BundleEntry::Op::kAdd:
        n += 8 + static_cast<int64_t>(e.contents.size());
        break;
      case BundleEntry::Op::kDelete:
        break;
    }
  }
  return n;
}

int64_t SyncBundle::ReplayBytes() const {
  int64_t n = 0;
  for (const auto& e : entries) {
    switch (e.op) {
      case BundleEntry::Op::kPatch:
        // Patching rewrites the whole new file (copy commands read the old file,
        // literals come from the bundle).
        n += static_cast<int64_t>(e.delta.new_size) * 2;  // read old + write new
        break;
      case BundleEntry::Op::kAdd:
        n += static_cast<int64_t>(e.contents.size());
        break;
      case BundleEntry::Op::kDelete:
        break;
    }
  }
  return n;
}

SyncBundle MakeBundle(const FileTree& old_tree, const FileTree& new_tree, size_t block_size,
                      uint32_t from_version, uint32_t to_version) {
  SyncBundle bundle;
  bundle.from_version = from_version;
  bundle.to_version = to_version;
  bundle.block_size = block_size;

  for (const auto& [path, new_bytes] : new_tree) {
    const auto it = old_tree.find(path);
    if (it == old_tree.end()) {
      BundleEntry e;
      e.op = BundleEntry::Op::kAdd;
      e.path = path;
      e.contents = new_bytes;
      bundle.entries.push_back(std::move(e));
      continue;
    }
    if (it->second == new_bytes) {
      continue;  // unchanged
    }
    BundleEntry e;
    e.op = BundleEntry::Op::kPatch;
    e.path = path;
    e.delta = ComputeDelta(new_bytes, ComputeSignature(it->second, block_size));
    bundle.entries.push_back(std::move(e));
  }
  for (const auto& [path, old_bytes] : old_tree) {
    if (new_tree.find(path) == new_tree.end()) {
      BundleEntry e;
      e.op = BundleEntry::Op::kDelete;
      e.path = path;
      bundle.entries.push_back(std::move(e));
    }
  }
  return bundle;
}

bool ApplyBundle(FileTree& tree, const SyncBundle& bundle) {
  FileTree next = tree;
  for (const auto& e : bundle.entries) {
    switch (e.op) {
      case BundleEntry::Op::kAdd:
        next[e.path] = e.contents;
        break;
      case BundleEntry::Op::kDelete:
        next.erase(e.path);
        break;
      case BundleEntry::Op::kPatch: {
        const auto it = next.find(e.path);
        if (it == next.end()) {
          return false;
        }
        Bytes patched = ApplyDelta(it->second, e.delta);
        if (patched.size() != e.delta.new_size) {
          return false;
        }
        it->second = std::move(patched);
        break;
      }
    }
  }
  tree = std::move(next);
  return true;
}

Bytes SerializeBundle(const SyncBundle& bundle) {
  Bytes out;
  PutU32(out, bundle.from_version);
  PutU32(out, bundle.to_version);
  PutU64(out, bundle.block_size);
  PutU32(out, static_cast<uint32_t>(bundle.entries.size()));
  for (const auto& e : bundle.entries) {
    out.push_back(static_cast<uint8_t>(e.op));
    PutU32(out, static_cast<uint32_t>(e.path.size()));
    out.insert(out.end(), e.path.begin(), e.path.end());
    switch (e.op) {
      case BundleEntry::Op::kAdd:
        PutU64(out, e.contents.size());
        out.insert(out.end(), e.contents.begin(), e.contents.end());
        break;
      case BundleEntry::Op::kDelete:
        break;
      case BundleEntry::Op::kPatch: {
        PutU64(out, e.delta.block_size);
        PutU64(out, e.delta.new_size);
        PutU32(out, static_cast<uint32_t>(e.delta.commands.size()));
        for (const auto& cmd : e.delta.commands) {
          out.push_back(cmd.kind == DeltaCommand::Kind::kCopy ? 1 : 0);
          if (cmd.kind == DeltaCommand::Kind::kCopy) {
            PutU32(out, cmd.block_index);
            PutU32(out, cmd.count);
          } else {
            PutU64(out, cmd.literal.size());
            out.insert(out.end(), cmd.literal.begin(), cmd.literal.end());
          }
        }
        break;
      }
    }
  }
  return out;
}

std::optional<SyncBundle> ParseBundle(const Bytes& data) {
  Reader r(data);
  SyncBundle bundle;
  bundle.from_version = r.U32();
  bundle.to_version = r.U32();
  bundle.block_size = static_cast<size_t>(r.U64());
  const uint32_t entries = r.U32();
  for (uint32_t i = 0; i < entries && r.ok(); ++i) {
    BundleEntry e;
    const Bytes op = r.Blob(1);
    if (!r.ok()) {
      break;
    }
    e.op = static_cast<BundleEntry::Op>(op[0]);
    const uint32_t path_len = r.U32();
    const Bytes path = r.Blob(path_len);
    e.path.assign(path.begin(), path.end());
    switch (e.op) {
      case BundleEntry::Op::kAdd: {
        const uint64_t len = r.U64();
        e.contents = r.Blob(static_cast<size_t>(len));
        break;
      }
      case BundleEntry::Op::kDelete:
        break;
      case BundleEntry::Op::kPatch: {
        e.delta.block_size = static_cast<size_t>(r.U64());
        e.delta.new_size = r.U64();
        const uint32_t commands = r.U32();
        for (uint32_t c = 0; c < commands && r.ok(); ++c) {
          DeltaCommand cmd;
          const Bytes kind = r.Blob(1);
          if (!r.ok()) {
            break;
          }
          if (kind[0] == 1) {
            cmd.kind = DeltaCommand::Kind::kCopy;
            cmd.block_index = r.U32();
            cmd.count = r.U32();
          } else {
            cmd.kind = DeltaCommand::Kind::kLiteral;
            const uint64_t len = r.U64();
            cmd.literal = r.Blob(static_cast<size_t>(len));
          }
          e.delta.commands.push_back(std::move(cmd));
        }
        break;
      }
      default:
        return std::nullopt;
    }
    bundle.entries.push_back(std::move(e));
  }
  if (!r.ok()) {
    return std::nullopt;
  }
  return bundle;
}

}  // namespace bullet
