// Fig. 4: CDF of 100 MB download times across 100 nodes on the Section 4.1 topology
// (6 Mbps access, 2 Mbps core, 0-3% random core loss), static conditions, for
// Bullet', Bullet, BitTorrent and SplitStream, plus the two analytic reference lines
// (access-link optimal and MACEDON-on-TCP feasible).
//
// Expected shape (paper): optimal < TCP-feasible < Bullet' < Bullet ~ BitTorrent <
// SplitStream; Bullet' leads by ~25% and its slowest node by ~37%.

#include "src/harness/scenario_registry.h"

namespace bullet {
namespace {

BULLET_SCENARIO(fig04_overall_static, "Fig. 4 — overall performance, static conditions") {
  ScenarioConfig cfg;
  cfg.num_nodes = 100;
  cfg.file_mb = ScaledFileMb(100.0);
  cfg.seed = 401;
  ApplyScenarioOptions(opts, &cfg);

  ScenarioReport report(kScenarioName);
  for (const char* system : {"bullet-prime", "bullet", "bittorrent", "splitstream"}) {
    report.AddCompletion(RunScenario(system, cfg));
  }

  const double optimal = OptimalAccessLinkSeconds(cfg.file_mb, 6e6);
  // Startup: tree join + first RanSub epochs before the mesh fills pipes.
  const double feasible = TcpFeasibleSeconds(cfg.file_mb, 6e6, /*startup_sec=*/12.0);
  report.AddScalar("optimal_s", optimal);
  report.AddScalar("tcp_feasible_s", feasible);
  report.AddSeries("PhysicalLinkOptimal", {optimal});
  report.AddSeries("MacedonTcpFeasible", {feasible});
  return report;
}

}  // namespace
}  // namespace bullet
