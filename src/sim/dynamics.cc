#include "src/sim/dynamics.h"

#include <memory>

namespace bullet {

namespace {

void FireBandwidthChange(Network& net, const BandwidthDynamicsParams& params) {
  Topology& topo = net.topology();
  const int n = topo.num_nodes();
  std::vector<NodeId> all(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    all[static_cast<size_t>(i)] = i;
  }
  const auto receivers =
      net.rng().Sample(all, static_cast<size_t>(params.node_fraction * n + 0.5));
  for (const NodeId r : receivers) {
    std::vector<NodeId> others;
    others.reserve(static_cast<size_t>(n) - 1);
    for (NodeId s = 0; s < n; ++s) {
      if (s != r) {
        others.push_back(s);
      }
    }
    const auto senders =
        net.rng().Sample(others, static_cast<size_t>(params.sender_fraction * others.size() + 0.5));
    for (const NodeId s : senders) {
      // A failed node's links carry no flows and never will again (Connect() is
      // refused), so degrading them must be a no-op. The sampling above still
      // consumes the same RNG draws regardless of failures, keeping identical
      // seeds reproducible whether or not churn is active.
      if (net.IsNodeFailed(s) || net.IsNodeFailed(r)) {
        continue;
      }
      // Mesh: exactly the private core(s, r) link, as in the paper. Routed:
      // every interior link of the s->r route, so decreases aimed at different
      // receivers compound on shared links (see topology.h).
      topo.ScalePathBandwidth(s, r, params.factor);
    }
  }
}

void ScheduleNextChange(Network& net, BandwidthDynamicsParams params) {
  net.queue().ScheduleAfter(params.period, [&net, params] {
    FireBandwidthChange(net, params);
    ScheduleNextChange(net, params);
  });
}

}  // namespace

void StartPeriodicBandwidthChanges(Network& net, const BandwidthDynamicsParams& params) {
  ScheduleNextChange(net, params);
}

namespace {

// The id list is shared by every firing of the self-rescheduling chain, so each
// event closure keeps it alive through a shared_ptr.
void SampleLinksAndReschedule(Network& net, std::shared_ptr<const std::vector<int32_t>> link_ids,
                              SimTime period, std::vector<double>* out_time_sec,
                              std::vector<std::vector<double>>* out_bps) {
  out_time_sec->push_back(SimToSec(net.now()));
  std::vector<double> row;
  row.reserve(link_ids->size());
  for (const int32_t link : *link_ids) {
    row.push_back(net.InteriorLinkAllocatedBps(link));
  }
  out_bps->push_back(std::move(row));
  net.queue().ScheduleAfter(period, [&net, link_ids, period, out_time_sec, out_bps] {
    SampleLinksAndReschedule(net, link_ids, period, out_time_sec, out_bps);
  });
}

}  // namespace

void StartInteriorLinkSampling(Network& net, std::vector<int32_t> link_ids, SimTime start,
                               SimTime period, std::vector<double>* out_time_sec,
                               std::vector<std::vector<double>>* out_bps) {
  auto ids = std::make_shared<const std::vector<int32_t>>(std::move(link_ids));
  net.queue().Schedule(start, [&net, ids, period, out_time_sec, out_bps] {
    SampleLinksAndReschedule(net, ids, period, out_time_sec, out_bps);
  });
}

void StartCascade(Network& net, NodeId target, std::vector<NodeId> senders, SimTime interval,
                  double new_bps) {
  // One event per sender, scheduled up front; changes are permanent, so the effect is
  // the cumulative cascade the paper describes.
  for (size_t i = 0; i < senders.size(); ++i) {
    const NodeId s = senders[i];
    net.queue().ScheduleAfter(interval * static_cast<SimTime>(i + 1),
                              [&net, s, target, new_bps] {
                                if (net.IsNodeFailed(s) || net.IsNodeFailed(target)) {
                                  return;  // dead links: collapsing them is a no-op
                                }
                                net.topology().SetPathBandwidth(s, target, new_bps);
                              });
  }
}

}  // namespace bullet
