// Experiment scale knobs.
//
// The paper runs 100-node / 100 MB experiments on a ModelNet cluster; those parameters
// are faithful but slow for CI. REPRO_SCALE selects between:
//   ci   (default) — same topologies, smaller files; minutes for the whole suite.
//   full           — paper-scale file sizes.
// Individual benches read the struct and scale their file size only; topology sizes,
// loss processes and dynamics stay at paper values in both modes so that the *shape*
// of every result is preserved.

#ifndef SRC_COMMON_OPTIONS_H_
#define SRC_COMMON_OPTIONS_H_

#include <cstdint>

namespace bullet {

struct ReproScale {
  // Multiplier applied to the paper's file sizes (1.0 == paper scale).
  double file_scale = 1.0;
  bool full = false;
};

// Reads REPRO_SCALE from the environment ("ci" or "full"; unknown values mean ci).
ReproScale GetReproScale();

// Convenience: paper file size in bytes scaled for this run, rounded to a whole number
// of blocks.
int64_t ScaledFileBytes(int64_t paper_bytes, int64_t block_bytes);

}  // namespace bullet

#endif  // SRC_COMMON_OPTIONS_H_
