#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace bullet {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double RunningStats::variance() const {
  if (count_ == 0) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return PercentileSorted(values, q);
}

double PercentileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void Ewma::Add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = gain_ * x + (1.0 - gain_) * value_;
  }
}

void Ewma::Reset() {
  value_ = 0.0;
  initialized_ = false;
}

double RateMeter::RateBps(int64_t window_start_us, int64_t now_us) const {
  const int64_t span = now_us - window_start_us;
  if (span <= 0) {
    return 0.0;
  }
  return static_cast<double>(bytes_) * 1e6 / static_cast<double>(span);
}

}  // namespace bullet
