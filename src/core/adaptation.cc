#include "src/core/adaptation.h"

#include <algorithm>
#include <cmath>

#include "src/common/stats.h"

namespace bullet {

int ManageMaxPeers(PeerSetState& state, int cur_size, double bw, int hard_min, int hard_max) {
  // Fig. 2: only adjust when the peer set has actually filled to its target; until
  // then the node is still ramping up and bandwidth comparisons are meaningless.
  if (cur_size == state.max_peers) {
    if (state.num_prev == 0) {
      // Try to add a new peer by default.
      ++state.max_peers;
    } else if (cur_size > state.num_prev) {
      if (bw > state.prev_bw) {
        ++state.max_peers;  // Bandwidth went up; try adding a sender.
      } else {
        --state.max_peers;  // Adding a new sender was bad.
      }
    } else if (cur_size < state.num_prev) {
      if (bw > state.prev_bw) {
        --state.max_peers;  // Losing a sender made us faster; try losing another.
      } else {
        ++state.max_peers;  // Losing a sender was bad.
      }
    }
    state.max_peers = std::clamp(state.max_peers, hard_min, hard_max);
  }
  state.num_prev = cur_size;
  state.prev_bw = bw;
  return state.max_peers;
}

std::vector<size_t> TrimIndices(const std::vector<double>& metric, double stddevs,
                                size_t min_keep) {
  std::vector<size_t> out;
  if (metric.size() <= min_keep) {
    return out;
  }
  RunningStats stats;
  for (const double m : metric) {
    stats.Add(m);
  }
  const double cutoff = stats.mean() - stddevs * stats.stddev();
  if (stats.stddev() <= 0.0) {
    return out;
  }
  std::vector<size_t> order(metric.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return metric[a] < metric[b]; });
  for (const size_t i : order) {
    if (metric[i] >= cutoff || metric.size() - out.size() <= min_keep) {
      break;
    }
    out.push_back(i);
  }
  return out;
}

double ManageOutstanding(double requested, double in_front, double wasted_sec,
                         double bandwidth_Bps, double block_bytes,
                         const OutstandingParams& params) {
  // Fig. 3: start with the current value; the target keeps exactly one block queued
  // in front of the sender's socket buffer.
  double desired = requested + 1.0;
  if (wasted_sec <= 0.0 || in_front <= 1.0) {
    desired -= params.alpha * wasted_sec * bandwidth_Bps / block_bytes;
  }
  if (wasted_sec <= 0.0 && in_front > 1.0) {
    desired -= params.beta * (in_front - 1.0);
  }
  if (desired > requested) {
    // Matching the request rate to the sending rate would not saturate the TCP
    // connection; take the ceiling whenever we increase.
    desired = std::ceil(desired);
  }
  return std::clamp(desired, params.min_outstanding, params.max_outstanding);
}

}  // namespace bullet
