#include "src/common/rng.h"

#include <cmath>

namespace bullet {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {
    // Full 64-bit range requested.
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t x = Next();
  while (x >= limit) {
    x = Next();
  }
  return lo + static_cast<int64_t>(x % range);
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) { return lo + (hi - lo) * UniformDouble(); }

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformDouble() < p;
}

double Rng::Exponential(double mean) {
  double u = UniformDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

Rng Rng::Fork(uint64_t stream) {
  uint64_t seed = Next() ^ (stream * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL);
  return Rng(seed);
}

}  // namespace bullet
