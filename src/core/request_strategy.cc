#include "src/core/request_strategy.h"

#include <algorithm>

namespace bullet {

void CandidateSet::Add(uint32_t id) {
  fifo_.push_back(id);
  vec_.push_back(id);
}

std::optional<uint32_t> CandidateSet::Pick(RequestStrategy strategy, const ValidFn& valid,
                                           const RarityFn& rarity, Rng& rng) {
  switch (strategy) {
    case RequestStrategy::kFirstEncountered:
      return PickFirst(valid);
    case RequestStrategy::kRandom:
      return PickRandom(valid, rng);
    case RequestStrategy::kRarest:
      return PickRarest(valid, rarity, rng, /*random_tie=*/false);
    case RequestStrategy::kRarestRandom:
      return PickRarest(valid, rarity, rng, /*random_tie=*/true);
  }
  return std::nullopt;
}

std::optional<uint32_t> CandidateSet::PickWindowed(RequestStrategy strategy, const ValidFn& valid,
                                                   const ValidFn& eligible, const RarityFn& rarity,
                                                   Rng& rng) {
  if (strategy == RequestStrategy::kFirstEncountered) {
    // Walk discovery order: drop invalid entries, retain ineligible ones, take
    // the first valid + eligible candidate.
    for (auto it = fifo_.begin(); it != fifo_.end();) {
      const uint32_t id = *it;
      if (!valid(id)) {
        it = fifo_.erase(it);
        continue;
      }
      if (eligible(id)) {
        fifo_.erase(it);
        return id;
      }
      ++it;
    }
    return std::nullopt;
  }

  // One pass over vec_: invalid entries are compacted away, ineligible ones
  // kept for a later window, and the best eligible entry picked under the
  // strategy (uniform reservoir for kRandom; rarity with deterministic or
  // reservoir tie-break for the rarest strategies).
  size_t write = 0;
  size_t best_index = SIZE_MAX;
  uint32_t best_id = 0;
  int best_rarity = INT32_MAX;
  int ties = 0;
  for (size_t read = 0; read < vec_.size(); ++read) {
    const uint32_t id = vec_[read];
    if (!valid(id)) {
      continue;
    }
    vec_[write] = id;
    const size_t index = write++;
    if (!eligible(id)) {
      continue;
    }
    bool better = false;
    if (strategy == RequestStrategy::kRandom) {
      ++ties;
      better = rng.UniformInt(1, ties) == 1;
    } else {
      const int r = rarity(id);
      if (r < best_rarity) {
        better = true;
        best_rarity = r;
        ties = 1;
      } else if (r == best_rarity) {
        ++ties;
        better = strategy == RequestStrategy::kRarestRandom ? rng.UniformInt(1, ties) == 1
                                                            : id < best_id;
      }
    }
    if (better) {
      best_index = index;
      best_id = id;
    }
  }
  vec_.resize(write);
  if (best_index == SIZE_MAX) {
    return std::nullopt;
  }
  const uint32_t id = vec_[best_index];
  RemoveAt(best_index);
  return id;
}

std::optional<uint32_t> CandidateSet::PickFirst(const ValidFn& valid) {
  while (!fifo_.empty()) {
    const uint32_t id = fifo_.front();
    fifo_.pop_front();
    if (valid(id)) {
      return id;
    }
  }
  return std::nullopt;
}

std::optional<uint32_t> CandidateSet::PickRandom(const ValidFn& valid, Rng& rng) {
  while (!vec_.empty()) {
    const size_t i = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(vec_.size()) - 1));
    const uint32_t id = vec_[i];
    RemoveAt(i);
    if (valid(id)) {
      return id;
    }
  }
  return std::nullopt;
}

std::optional<uint32_t> CandidateSet::PickRarest(const ValidFn& valid, const RarityFn& rarity,
                                                 Rng& rng, bool random_tie) {
  while (!vec_.empty()) {
    // Examine a bounded random sample (or everything, if small).
    const size_t sample = std::min(vec_.size(), kRaritySample);
    int best_rarity = INT32_MAX;
    size_t best_index = SIZE_MAX;
    uint32_t best_id = 0;
    int ties = 0;
    bool found_stale = false;
    const bool exhaustive = vec_.size() <= kRaritySample;
    // Non-exhaustive sampling draws indices with replacement; a re-drawn index
    // must not be *selectable* twice — its second reservoir win chance biased
    // the tie-break toward duplicated entries. The dedup is draw-preserving:
    // a duplicate keeps consuming the exact RNG draws it did pre-fix (its
    // index draw and, on a rarity tie, its reservoir draw), so every other
    // sampled candidate sees an identical random sequence; only the
    // duplicate's own second win is discarded.
    size_t sampled[kRaritySample];
    size_t num_sampled = 0;
    for (size_t s = 0; s < sample; ++s) {
      const size_t i =
          exhaustive
              ? s
              : static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(vec_.size()) - 1));
      bool duplicate = false;
      if (!exhaustive) {
        for (size_t k = 0; k < num_sampled; ++k) {
          if (sampled[k] == i) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) {
          sampled[num_sampled++] = i;
        }
      }
      const uint32_t id = vec_[i];
      if (!valid(id)) {
        found_stale = true;
        continue;
      }
      const int r = rarity(id);
      bool better = false;
      if (r < best_rarity) {
        better = true;
        ties = 1;
      } else if (r == best_rarity) {
        ++ties;
        if (random_tie) {
          // Reservoir sampling among ties.
          better = rng.UniformInt(1, ties) == 1;
        } else {
          better = id < best_id;  // Deterministic tie-break: the plain-rarest flaw.
        }
      }
      // A duplicate never re-wins: its first examination already competed.
      // (Under the deterministic tie-break this is a no-op — `id < best_id`
      // can only fail for an id that already won — so only the reservoir
      // path changes, and only where a duplicate's second draw had won.)
      if (better && !duplicate) {
        best_rarity = r;
        best_index = i;
        best_id = id;
      }
    }
    if (best_index != SIZE_MAX) {
      const uint32_t id = vec_[best_index];
      RemoveAt(best_index);
      return id;
    }
    if (!exhaustive && found_stale) {
      // The sample hit only stale entries; compact and retry on the cleaned set.
      Compact(valid);
      continue;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

bool CandidateSet::RunningDry(size_t threshold, const ValidFn& valid) const {
  size_t found = 0;
  // Scan from the back (most recently discovered, most likely still valid).
  for (size_t i = vec_.size(); i-- > 0;) {
    if (valid(vec_[i])) {
      ++found;
      if (found >= threshold) {
        return false;
      }
    }
  }
  return true;
}

void CandidateSet::RemoveAt(size_t index) {
  vec_[index] = vec_.back();
  vec_.pop_back();
}

void CandidateSet::Compact(const ValidFn& valid) {
  vec_.erase(std::remove_if(vec_.begin(), vec_.end(), [&](uint32_t id) { return !valid(id); }),
             vec_.end());
}

}  // namespace bullet
