// Simulated time. All emulator timestamps are int64 microseconds from simulation
// start. Conversions are explicit to keep units visible at call sites.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace bullet {

using SimTime = int64_t;  // microseconds

constexpr SimTime kMicrosPerMilli = 1000;
constexpr SimTime kMicrosPerSec = 1000 * 1000;

constexpr SimTime MsToSim(int64_t ms) { return ms * kMicrosPerMilli; }
constexpr SimTime SecToSim(double sec) { return static_cast<SimTime>(sec * 1e6); }
constexpr double SimToSec(SimTime t) { return static_cast<double>(t) / 1e6; }

}  // namespace bullet

#endif  // SRC_SIM_TIME_H_
