// Per-run metrics filled in by protocols. The experiment harness turns these into the
// CDFs and tables reported by the paper.

#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"
#include "src/sim/topology.h"

namespace bullet {

struct NodeMetrics {
  SimTime completion = -1;  // -1 until the node holds the full file
  int64_t useful_blocks = 0;
  int64_t duplicate_blocks = 0;  // blocks received that were already held
  int64_t data_bytes_in = 0;
  int64_t dup_bytes_in = 0;
  int64_t ctrl_bytes_in = 0;
  int64_t ctrl_bytes_out = 0;
  // Arrival time of every accepted block, recorded when RunMetrics::record_arrivals
  // is set (Fig. 13 inter-arrival analysis).
  std::vector<SimTime> block_arrivals;
};

class RunMetrics {
 public:
  explicit RunMetrics(int num_nodes) : nodes_(static_cast<size_t>(num_nodes)) {}

  NodeMetrics& node(NodeId n) { return nodes_[static_cast<size_t>(n)]; }
  const NodeMetrics& node(NodeId n) const { return nodes_[static_cast<size_t>(n)]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  void RecordCompletion(NodeId n, SimTime t) {
    NodeMetrics& m = node(n);
    if (m.completion < 0) {
      m.completion = t;
      ++completed_;
    }
  }
  int completed() const { return completed_; }

  // Completion times in seconds for all nodes except `exclude` (the source). Nodes
  // that never completed are reported at `incomplete_value` seconds if >= 0.
  std::vector<double> CompletionSeconds(NodeId exclude, double incomplete_value = -1.0) const;

  // duplicate_blocks / (useful + duplicate) over all nodes.
  double DuplicateFraction() const;
  // control bytes / total bytes received, over all nodes.
  double ControlOverheadFraction() const;

  bool record_arrivals = false;

 private:
  std::vector<NodeMetrics> nodes_;
  int completed_ = 0;
};

}  // namespace bullet

#endif  // SRC_SIM_METRICS_H_
