// The Fig. 15 baseline: N clients synchronizing against one central rsync server
// with at most K simultaneous sessions (the paper's "staggered approach").
//
// Session shape mirrors rsync's receiver-computes-signature protocol: the client
// uploads per-file block signatures; the server walks its new image (disk read),
// computes the delta, and streams it back; the client replays the delta against its
// local disk. The server's disk is a single shared FIFO resource — the paper found
// the disk, not the network, to be the constraint on PlanetLab — and its uplink is
// shared by every concurrent delta stream, which the emulator's max-min allocator
// handles naturally.

#ifndef SRC_SHOTGUN_RSYNC_BASELINE_H_
#define SRC_SHOTGUN_RSYNC_BASELINE_H_

#include <deque>

#include "src/overlay/protocol.h"

namespace bullet {

struct RsyncFleetConfig {
  int max_parallel = 4;       // concurrent sessions admitted by the server
  int64_t sig_bytes = 0;      // signature upload per client
  int64_t delta_bytes = 0;    // delta download per client
  int64_t server_scan_bytes = 0;  // image bytes the server reads per session
  int64_t replay_bytes = 0;   // bytes the client's disk replays on apply
  double server_disk_Bps = 30e6;
  double client_disk_Bps = 15e6;
};

namespace rs {

struct SessionRequestMsg : Message {
  static constexpr int kType = 501;
  SessionRequestMsg() {
    type = kType;
    wire_bytes = 64;
  }
};

struct SessionGrantMsg : Message {
  static constexpr int kType = 502;
  SessionGrantMsg() {
    type = kType;
    wire_bytes = 16;
  }
};

struct SignatureMsg : Message {
  static constexpr int kType = 503;
};

struct DeltaStreamMsg : Message {
  static constexpr int kType = 504;
};

struct SessionDoneMsg : Message {
  static constexpr int kType = 505;
  SessionDoneMsg() {
    type = kType;
    wire_bytes = 16;
  }
};

}  // namespace rs

class RsyncServer : public Protocol {
 public:
  RsyncServer(const Context& ctx, const RsyncFleetConfig& config)
      : Protocol(ctx), config_(config) {}

  void Start() override {}
  void OnMessage(ConnId conn, NodeId from, std::unique_ptr<Message> msg) override;
  void OnConnDown(ConnId conn, NodeId peer) override;

 private:
  void Grant(ConnId conn);
  void FinishSession();

  RsyncFleetConfig config_;
  int active_sessions_ = 0;
  std::deque<ConnId> waiting_;
  SimTime disk_busy_until_ = 0;
};

class RsyncClient : public Protocol {
 public:
  RsyncClient(const Context& ctx, NodeId server, const RsyncFleetConfig& config)
      : Protocol(ctx), server_(server), config_(config) {}

  void Start() override;
  void OnConnUp(ConnId conn, NodeId peer, bool initiator) override;
  void OnMessage(ConnId conn, NodeId from, std::unique_ptr<Message> msg) override;

  SimTime download_done_at() const { return download_done_at_; }

 private:
  NodeId server_;
  RsyncFleetConfig config_;
  ConnId conn_ = -1;
  SimTime download_done_at_ = -1;
};

}  // namespace bullet

#endif  // SRC_SHOTGUN_RSYNC_BASELINE_H_
