// 64-bit availability sketch carried in RanSub summaries.
//
// A RanSub summary must stay small (it is merged and shipped up and down the control
// tree every epoch), yet a Bullet' receiver wants to estimate how many *useful* blocks
// a candidate sender holds. We map each block id to one of 64 buckets and set the
// bucket bit when any block in it is held. The receiver estimates overlap by comparing
// the candidate's sketch with its own: buckets set by the candidate but not by the
// receiver definitely contain blocks the receiver misses.

#ifndef SRC_COMMON_SKETCH_H_
#define SRC_COMMON_SKETCH_H_

#include <cstddef>
#include <cstdint>

#include "src/common/bitmap.h"

namespace bullet {

class AvailabilitySketch {
 public:
  AvailabilitySketch() = default;

  void AddBlock(uint32_t block_id);
  static AvailabilitySketch FromBitmap(const Bitmap& bitmap);

  uint64_t bits() const { return bits_; }
  void set_bits(uint64_t b) { bits_ = b; }

  // Number of buckets the candidate covers that `mine` does not. Higher means the
  // candidate likely holds more blocks useful to the holder of `mine`.
  int NovelBucketsVs(const AvailabilitySketch& mine) const;

  // Wire size of the sketch inside a summary.
  static constexpr size_t kWireBytes = 8;

 private:
  uint64_t bits_ = 0;
};

}  // namespace bullet

#endif  // SRC_COMMON_SKETCH_H_
