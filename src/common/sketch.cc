#include "src/common/sketch.h"

#include <bit>

#include "src/common/hash.h"

namespace bullet {

void AvailabilitySketch::AddBlock(uint32_t block_id) {
  bits_ |= uint64_t{1} << (Mix64(block_id) & 63u);
}

AvailabilitySketch AvailabilitySketch::FromBitmap(const Bitmap& bitmap) {
  AvailabilitySketch s;
  for (uint32_t b : bitmap.SetBits()) {
    s.AddBlock(b);
    if (s.bits_ == ~uint64_t{0}) {
      break;  // Saturated; no further information to add.
    }
  }
  return s;
}

int AvailabilitySketch::NovelBucketsVs(const AvailabilitySketch& mine) const {
  return std::popcount(bits_ & ~mine.bits_);
}

}  // namespace bullet
