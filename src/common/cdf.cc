#include "src/common/cdf.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "src/common/stats.h"

namespace bullet {

void PrintCdf(std::ostream& os, const std::vector<CdfSeries>& series, int points) {
  for (const auto& s : series) {
    os << "# " << s.name << "\n";
    if (s.samples.empty()) {
      os << "# (no samples)\n";
      continue;
    }
    std::vector<double> sorted = s.samples;
    std::sort(sorted.begin(), sorted.end());
    char buf[64];
    for (int i = 0; i <= points; ++i) {
      const double frac = static_cast<double>(i) / points;
      size_t idx = 0;
      if (i > 0) {
        idx = std::min(sorted.size() - 1,
                       static_cast<size_t>(frac * static_cast<double>(sorted.size())) -
                           (i == points ? 0 : 1));
        idx = std::min(idx, sorted.size() - 1);
      }
      std::snprintf(buf, sizeof(buf), "%.3f %.2f", frac, sorted[idx]);
      os << buf << "\n";
    }
  }
}

void PrintSummaryTable(std::ostream& os, const std::vector<CdfSeries>& series) {
  os << "# series                              p05      p50      p90      max     mean\n";
  char buf[160];
  for (const auto& s : series) {
    double mean = 0.0;
    if (!s.samples.empty()) {
      mean = std::accumulate(s.samples.begin(), s.samples.end(), 0.0) /
             static_cast<double>(s.samples.size());
    }
    std::snprintf(buf, sizeof(buf), "%-34s %8.2f %8.2f %8.2f %8.2f %8.2f", s.name.c_str(),
                  Percentile(s.samples, 0.05), Percentile(s.samples, 0.50),
                  Percentile(s.samples, 0.90), Percentile(s.samples, 1.0), mean);
    os << buf << "\n";
  }
}

}  // namespace bullet
