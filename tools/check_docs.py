#!/usr/bin/env python3
"""Docs consistency checker for the CI docs job.

Two checks, both against the working tree (no build needed):

 1. Scenario-table consistency: every scenario registered via
    BULLET_SCENARIO(...) in bench/*.cc must have a row in the README's
    "Scenarios" table, and every row must name a registered scenario.

 2. Internal markdown links: every relative link target in README.md and
    docs/*.md must exist on disk (anchors are stripped; external URLs and
    badge images are ignored).

Exit 0 when both pass, 1 with a FAIL line per violation otherwise.

Usage: tools/check_docs.py [repo-root]
"""

import os
import re
import sys


def registered_scenarios(root):
    names = set()
    bench = os.path.join(root, "bench")
    pat = re.compile(r"BULLET_SCENARIO\(\s*(\w+)")
    for fn in sorted(os.listdir(bench)):
        if not fn.endswith(".cc"):
            continue
        with open(os.path.join(bench, fn), encoding="utf-8") as fh:
            for m in pat.finditer(fh.read()):
                names.add(m.group(1))
    return names


def readme_table_scenarios(root):
    """Scenario names from rows of the README table whose first cell is
    a backquoted identifier, e.g. `| `fig04_overall_static` | ... |`."""
    names = set()
    pat = re.compile(r"^\|\s*`(\w+)`\s*\|")
    with open(os.path.join(root, "README.md"), encoding="utf-8") as fh:
        for line in fh:
            m = pat.match(line)
            if m:
                names.add(m.group(1))
    return names


def markdown_files(root):
    files = [os.path.join(root, "README.md")]
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        files += [os.path.join(docs, f) for f in sorted(os.listdir(docs)) if f.endswith(".md")]
    return files


LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_links(root):
    failures = []
    for path in markdown_files(root):
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        for target in LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:  # pure in-page anchor
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                rel = os.path.relpath(path, root)
                failures.append(f"FAIL {rel}: broken link -> {target}")
    return failures


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    failures = []

    registered = registered_scenarios(root)
    documented = readme_table_scenarios(root)
    # The README also has backquoted-first-cell tables for the protocol
    # registry; only compare names that look like scenario rows, i.e. the
    # registered set must be a subset of documented and any documented name
    # containing "fig"/"ablation"/"churn"/"perf" must be registered.
    for name in sorted(registered - documented):
        failures.append(f"FAIL README.md: scenario `{name}` registered in bench/ but missing from the scenario table")
    scenario_like = re.compile(r"^(fig\d+_|ablation_|churn_|perf_)")
    for name in sorted(documented - registered):
        if scenario_like.match(name):
            failures.append(f"FAIL README.md: scenario table row `{name}` has no BULLET_SCENARIO registration")

    failures += check_links(root)

    for f in failures:
        print(f)
    if failures:
        return 1
    print(f"OK: {len(registered)} scenarios documented, links resolve in {len(markdown_files(root))} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
