// BitTorrent baseline, faithful to the circa-2005 client the paper measured against:
// a centralized tracker (co-located with the seed, node 0), random peer lists,
// piece-level rarest-first selection with strict priority for partial pieces,
// block-granularity (sub-piece, 16 KB) requests with a fixed outstanding window of 5,
// and tit-for-tat choking: 4 regular unchoke slots ranked by rate (download rate at
// leechers, upload rate at the seed), re-evaluated every 10 s, plus one optimistic
// unchoke rotated every 30 s. Peers advertise completed pieces via HAVE broadcasts.
//
// Deliberate simplifications, documented in DESIGN.md: no endgame mode (the paper's
// BitTorrent exhibits the last-block tail this would partially mask) and no snubbing.

#ifndef SRC_BASELINES_BITTORRENT_H_
#define SRC_BASELINES_BITTORRENT_H_

#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"
#include "src/core/request_strategy.h"
#include "src/overlay/dissemination.h"
#include "src/sim/scale/stable_flat_map.h"

namespace bullet {

struct BitTorrentConfig {
  int piece_blocks = 16;        // 16 x 16 KB = 256 KB pieces
  int peer_list_size = 40;      // peers returned by the tracker
  int max_connections = 40;
  int unchoke_slots = 4;
  SimTime rechoke_period = SecToSim(10.0);
  SimTime optimistic_period = SecToSim(30.0);
  int outstanding_per_peer = 5;  // BitTorrent's fixed pipeline (Section 4.5)
};

namespace bt {

constexpr int64_t kSmallHeader = 16;

struct TrackerRequestMsg : Message {
  static constexpr int kType = 201;
  TrackerRequestMsg() {
    type = kType;
    wire_bytes = 64;  // HTTP announce-sized
  }
};

struct TrackerResponseMsg : Message {
  static constexpr int kType = 202;
  std::vector<NodeId> peers;
  void Finalize() {
    type = kType;
    wire_bytes = kSmallHeader + static_cast<int64_t>(peers.size()) * 6;
  }
};

struct BitfieldMsg : Message {
  static constexpr int kType = 203;
  std::vector<uint32_t> pieces;  // completed pieces
  void Finalize(uint32_t total_pieces) {
    type = kType;
    wire_bytes = kSmallHeader + (total_pieces + 7) / 8;
  }
};

struct HaveMsg : Message {
  static constexpr int kType = 204;
  uint32_t piece = 0;
  HaveMsg() {
    type = kType;
    wire_bytes = 9;
  }
};

struct InterestMsg : Message {
  static constexpr int kType = 205;
  bool interested = false;
  InterestMsg() {
    type = kType;
    wire_bytes = 5;
  }
};

struct ChokeMsg : Message {
  static constexpr int kType = 206;
  bool choked = false;
  ChokeMsg() {
    type = kType;
    wire_bytes = 5;
  }
};

struct RequestMsg : Message {
  static constexpr int kType = 207;
  uint32_t block = 0;
  RequestMsg() {
    type = kType;
    wire_bytes = 17;
  }
};

struct PieceMsg : Message {
  static constexpr int kType = 208;
  uint32_t block = 0;
  void Finalize(int64_t block_bytes) {
    type = kType;
    wire_bytes = block_bytes + 13;
  }
};

}  // namespace bt

class BitTorrent : public DisseminationProtocol {
 public:
  BitTorrent(const Context& ctx, const FileParams& file, NodeId source,
             const BitTorrentConfig& config);

  void Start() override;
  void OnConnUp(ConnId conn, NodeId peer, bool initiator) override;
  void OnConnDown(ConnId conn, NodeId peer) override;
  void OnMessage(ConnId conn, NodeId from, std::unique_ptr<Message> msg) override;

  int num_unchoked() const;

 private:
  struct Peer {
    NodeId node = -1;
    ConnId conn = -1;
    Bitmap pieces;          // completed pieces at the peer
    bool am_interested = false;
    bool peer_interested = false;
    bool am_choking = true;
    bool peer_choking = true;
    bool optimistic = false;
    int outstanding = 0;
    int64_t bytes_in_window = 0;   // received from peer since last rechoke
    int64_t bytes_out_window = 0;  // sent to peer since last rechoke
  };

  uint32_t NumPieces() const;
  uint32_t PieceOf(uint32_t block) const {
    return block / static_cast<uint32_t>(config_.piece_blocks);
  }
  bool PieceComplete(uint32_t piece) const;
  // Blocks of `piece` we still need and have not requested.
  std::vector<uint32_t> MissingBlocksOf(uint32_t piece) const;
  // As MissingBlocksOf; streaming mode additionally restricts to blocks inside
  // the sliding playback window (required, released, not yet held).
  std::vector<uint32_t> RequestableBlocksOf(uint32_t piece) const;
  void StreamRequestTick();

  void HandleTrackerRequest(ConnId conn, NodeId from);
  void ConnectToPeers(const std::vector<NodeId>& list);
  void UpdateInterest(Peer& p);
  void IssueRequests(Peer& p);
  // Rarest-first piece selection among pieces available at `p`.
  int SelectPiece(const Peer& p);
  void Rechoke();
  void RotateOptimistic();
  void BroadcastHave(uint32_t piece);
  void OnPieceMsg(Peer& p, bt::PieceMsg& msg);

  BitTorrentConfig config_;

  // Arena-backed (mega-swarm): same ascending-ConnId iteration order as the
  // std::map it replaced, so results stay byte-identical.
  StableFlatMap<ConnId, Peer> peers_;
  std::set<NodeId> peer_nodes_;
  std::unordered_map<uint32_t, ConnId> requested_;  // block -> conn
  std::vector<int> piece_rarity_;                   // per piece: peers holding it
  std::vector<int> piece_blocks_held_;              // per piece: blocks we hold
  std::vector<uint32_t> partial_pieces_;            // strict-priority queue

  // Tracker state (only used at node 0).
  std::vector<NodeId> swarm_;

  ConnId tracker_conn_ = -1;
  bool have_first_piece_ = false;
};

// Registers "bittorrent" in ProtocolRegistry::Global(). Idempotent.
void RegisterBitTorrentProtocol();

}  // namespace bullet

#endif  // SRC_BASELINES_BITTORRENT_H_
