#include "src/core/request_strategy.h"

#include <algorithm>

namespace bullet {

void CandidateSet::Add(uint32_t id) {
  fifo_.push_back(id);
  vec_.push_back(id);
}

std::optional<uint32_t> CandidateSet::Pick(RequestStrategy strategy, const ValidFn& valid,
                                           const RarityFn& rarity, Rng& rng) {
  switch (strategy) {
    case RequestStrategy::kFirstEncountered:
      return PickFirst(valid);
    case RequestStrategy::kRandom:
      return PickRandom(valid, rng);
    case RequestStrategy::kRarest:
      return PickRarest(valid, rarity, rng, /*random_tie=*/false);
    case RequestStrategy::kRarestRandom:
      return PickRarest(valid, rarity, rng, /*random_tie=*/true);
  }
  return std::nullopt;
}

std::optional<uint32_t> CandidateSet::PickFirst(const ValidFn& valid) {
  while (!fifo_.empty()) {
    const uint32_t id = fifo_.front();
    fifo_.pop_front();
    if (valid(id)) {
      return id;
    }
  }
  return std::nullopt;
}

std::optional<uint32_t> CandidateSet::PickRandom(const ValidFn& valid, Rng& rng) {
  while (!vec_.empty()) {
    const size_t i = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(vec_.size()) - 1));
    const uint32_t id = vec_[i];
    RemoveAt(i);
    if (valid(id)) {
      return id;
    }
  }
  return std::nullopt;
}

std::optional<uint32_t> CandidateSet::PickRarest(const ValidFn& valid, const RarityFn& rarity,
                                                 Rng& rng, bool random_tie) {
  while (!vec_.empty()) {
    // Examine a bounded random sample (or everything, if small).
    const size_t sample = std::min(vec_.size(), kRaritySample);
    int best_rarity = INT32_MAX;
    size_t best_index = SIZE_MAX;
    uint32_t best_id = 0;
    int ties = 0;
    bool found_stale = false;
    const bool exhaustive = vec_.size() <= kRaritySample;
    for (size_t s = 0; s < sample; ++s) {
      const size_t i =
          exhaustive
              ? s
              : static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(vec_.size()) - 1));
      const uint32_t id = vec_[i];
      if (!valid(id)) {
        found_stale = true;
        continue;
      }
      const int r = rarity(id);
      bool better = false;
      if (r < best_rarity) {
        better = true;
        ties = 1;
      } else if (r == best_rarity) {
        ++ties;
        if (random_tie) {
          // Reservoir sampling among ties.
          better = rng.UniformInt(1, ties) == 1;
        } else {
          better = id < best_id;  // Deterministic tie-break: the plain-rarest flaw.
        }
      }
      if (better) {
        best_rarity = r;
        best_index = i;
        best_id = id;
      }
    }
    if (best_index != SIZE_MAX) {
      const uint32_t id = vec_[best_index];
      RemoveAt(best_index);
      return id;
    }
    if (!exhaustive && found_stale) {
      // The sample hit only stale entries; compact and retry on the cleaned set.
      Compact(valid);
      continue;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

bool CandidateSet::RunningDry(size_t threshold, const ValidFn& valid) const {
  size_t found = 0;
  // Scan from the back (most recently discovered, most likely still valid).
  for (size_t i = vec_.size(); i-- > 0;) {
    if (valid(vec_[i])) {
      ++found;
      if (found >= threshold) {
        return false;
      }
    }
  }
  return true;
}

void CandidateSet::RemoveAt(size_t index) {
  vec_[index] = vec_.back();
  vec_.pop_back();
}

void CandidateSet::Compact(const ValidFn& valid) {
  vec_.erase(std::remove_if(vec_.begin(), vec_.end(), [&](uint32_t id) { return !valid(id); }),
             vec_.end());
}

}  // namespace bullet
