// Robust soliton degree distribution for LT/rateless codes (Luby, FOCS'02; the paper
// cites Maymounkov's rateless codes [17], which share the same peeling-decoder
// structure). The distribution governs how many source blocks are XOR-ed into each
// encoded block; the "robust" correction concentrates mass near degree k/R so the
// decoder's ripple stays alive, and adds mass at degree 1 so decoding can start —
// the paper's Section 2.2 discusses exactly this sensitivity to recovered degree-1
// blocks.

#ifndef SRC_CODEC_DEGREE_DISTRIBUTION_H_
#define SRC_CODEC_DEGREE_DISTRIBUTION_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace bullet {

class RobustSoliton {
 public:
  // `num_blocks` is the number of source blocks n; `c` and `delta` are the usual
  // robust-soliton parameters (c ~ 0.03-0.1, delta = decoder failure bound).
  RobustSoliton(uint32_t num_blocks, double c = 0.05, double delta = 0.05);

  // Samples a degree in [1, num_blocks].
  uint32_t Sample(Rng& rng) const;

  // Probability mass at a given degree (for tests).
  double pmf(uint32_t degree) const;

  double expected_degree() const { return expected_degree_; }

 private:
  std::vector<double> cdf_;  // cdf_[d-1] = P(degree <= d)
  double expected_degree_ = 0.0;
};

}  // namespace bullet

#endif  // SRC_CODEC_DEGREE_DISTRIBUTION_H_
