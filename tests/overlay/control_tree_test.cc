#include "src/overlay/control_tree.h"

#include <gtest/gtest.h>

#include <set>

namespace bullet {
namespace {

TEST(ControlTree, SingleNode) {
  Rng rng(1);
  ControlTree tree = ControlTree::Random(1, 4, rng);
  EXPECT_TRUE(tree.IsRoot(0));
  EXPECT_EQ(tree.subtree_size[0], 1);
  EXPECT_TRUE(tree.children[0].empty());
}

TEST(ControlTree, AllNodesAttached) {
  Rng rng(2);
  ControlTree tree = ControlTree::Random(100, 4, rng);
  int roots = 0;
  for (NodeId n = 0; n < 100; ++n) {
    if (tree.parent[static_cast<size_t>(n)] < 0) {
      ++roots;
      EXPECT_EQ(n, 0);
    }
  }
  EXPECT_EQ(roots, 1);
  EXPECT_EQ(tree.subtree_size[0], 100);
}

TEST(ControlTree, FanoutBound) {
  Rng rng(3);
  const int fanout = 4;
  ControlTree tree = ControlTree::Random(200, fanout, rng);
  for (NodeId n = 0; n < 200; ++n) {
    EXPECT_LE(tree.children[static_cast<size_t>(n)].size(), static_cast<size_t>(fanout));
  }
}

TEST(ControlTree, ParentChildConsistency) {
  Rng rng(4);
  ControlTree tree = ControlTree::Random(60, 3, rng);
  for (NodeId n = 0; n < 60; ++n) {
    for (const NodeId c : tree.children[static_cast<size_t>(n)]) {
      EXPECT_EQ(tree.parent[static_cast<size_t>(c)], n);
    }
  }
}

TEST(ControlTree, SubtreeSizesConsistent) {
  Rng rng(5);
  ControlTree tree = ControlTree::Random(80, 4, rng);
  for (NodeId n = 0; n < 80; ++n) {
    int sum = 1;
    for (const NodeId c : tree.children[static_cast<size_t>(n)]) {
      sum += tree.subtree_size[static_cast<size_t>(c)];
    }
    EXPECT_EQ(tree.subtree_size[static_cast<size_t>(n)], sum);
  }
}

TEST(ControlTree, NoCycles) {
  Rng rng(6);
  ControlTree tree = ControlTree::Random(150, 4, rng);
  for (NodeId n = 0; n < 150; ++n) {
    std::set<NodeId> seen;
    NodeId cur = n;
    while (cur >= 0) {
      EXPECT_TRUE(seen.insert(cur).second) << "cycle at node " << n;
      cur = tree.parent[static_cast<size_t>(cur)];
    }
    EXPECT_TRUE(seen.count(0) == 1);  // all paths reach the root
  }
}

TEST(ControlTree, DepthIsLogarithmicish) {
  Rng rng(7);
  ControlTree tree = ControlTree::Random(100, 4, rng);
  int max_depth = 0;
  for (NodeId n = 0; n < 100; ++n) {
    max_depth = std::max(max_depth, tree.depth(n));
  }
  // A random tree with fanout 4 on 100 nodes should not degenerate into a chain.
  EXPECT_LE(max_depth, 20);
  EXPECT_GE(max_depth, 3);
}

TEST(ControlTree, DeterministicGivenSeed) {
  Rng rng1(9);
  Rng rng2(9);
  ControlTree a = ControlTree::Random(50, 4, rng1);
  ControlTree b = ControlTree::Random(50, 4, rng2);
  EXPECT_EQ(a.parent, b.parent);
}

TEST(ControlTree, RandomStagedWithOneStageMatchesRandomBitwise) {
  // Random() is specified as the one-stage special case; legacy runs rely on
  // the two consuming the RNG identically.
  Rng rng1(77);
  Rng rng2(77);
  ControlTree a = ControlTree::Random(60, 6, rng1);
  std::vector<NodeId> joiners;
  for (NodeId n = 1; n < 60; ++n) {
    joiners.push_back(n);
  }
  ControlTree b = ControlTree::RandomStaged(60, 0, {joiners}, 6, rng2);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.children, b.children);
  EXPECT_EQ(a.subtree_size, b.subtree_size);
}

TEST(ControlTree, RandomStagedParentsJoinNoLaterThanChildren) {
  // Three join waves; every node's parent must be in an earlier-or-same wave,
  // so a staggered-join session can always connect child -> parent.
  Rng rng(31);
  std::vector<std::vector<NodeId>> stages = {{1, 2, 3}, {4, 5, 6, 7, 8}, {9, 10, 11}};
  std::vector<int> wave(12, 0);  // root 0 in wave 0
  for (size_t w = 0; w < stages.size(); ++w) {
    for (const NodeId n : stages[w]) {
      wave[static_cast<size_t>(n)] = static_cast<int>(w) + 1;
    }
  }
  ControlTree tree = ControlTree::RandomStaged(12, 0, stages, 3, rng);
  for (NodeId n = 1; n < 12; ++n) {
    const NodeId p = tree.parent[static_cast<size_t>(n)];
    ASSERT_GE(p, 0) << "node " << n << " unattached";
    EXPECT_LE(wave[static_cast<size_t>(p)], wave[static_cast<size_t>(n)])
        << "parent " << p << " of " << n << " joins later";
  }
  EXPECT_EQ(tree.subtree_size[0], 12);
}

TEST(ControlTree, RandomStagedSubsetLeavesNonMembersIsolated) {
  // A session over a member subset: the tree spans only root + stage members;
  // everyone else stays parentless with no children, and the root is the
  // session source (not node 0).
  Rng rng(13);
  ControlTree tree = ControlTree::RandomStaged(10, 4, {{2, 6}, {8}}, 4, rng);
  EXPECT_TRUE(tree.IsRoot(4));
  EXPECT_EQ(tree.subtree_size[4], 4);
  for (const NodeId member : {2, 6, 8}) {
    EXPECT_GE(tree.parent[static_cast<size_t>(member)], 0);
  }
  for (const NodeId outsider : {0, 1, 3, 5, 7, 9}) {
    EXPECT_LT(tree.parent[static_cast<size_t>(outsider)], 0);
    EXPECT_TRUE(tree.children[static_cast<size_t>(outsider)].empty());
  }
}

}  // namespace
}  // namespace bullet
