#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace bullet {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(42, 42), 42);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.UniformInt(0, 9));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntUnbiased) {
  // Chi-square over 16 buckets at 3 sigma-ish tolerance.
  Rng rng(99);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[static_cast<size_t>(rng.UniformInt(0, kBuckets - 1))];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  double chi2 = 0.0;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 15 degrees of freedom; P(chi2 > 37.7) ~ 0.001.
  EXPECT_LT(chi2, 37.7);
}

TEST(Rng, UniformDoubleRange) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliRate) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.Exponential(2.5);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kSamples, 2.5, 0.05);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, SampleSizeAndMembership) {
  Rng rng(17);
  std::vector<int> v;
  for (int i = 0; i < 50; ++i) {
    v.push_back(i);
  }
  const auto sample = rng.Sample(v, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<int> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 10u);
  for (const int x : sample) {
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 50);
  }
}

TEST(Rng, SampleLargerThanInput) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3};
  const auto sample = rng.Sample(v, 10);
  EXPECT_EQ(sample.size(), 3u);
}

TEST(Rng, ForkIndependence) {
  Rng parent(23);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.Next() == child2.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix, KnownSequenceAdvancesState) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64(state);
  const uint64_t second = SplitMix64(state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 0u);
}

}  // namespace
}  // namespace bullet
