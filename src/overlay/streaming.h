// Playback-deadline (streaming) dissemination mode.
//
// A streaming session gives every block a *position* in a playback schedule:
// position p of an n-position stream is released by the source at
// `session_start + p * block_duration`, where block_duration derives from the
// stream bitrate. Encoded streams (SplitStream, forced-encoded Bullet) wrap
// their larger id space onto positions (`id mod n`), so a continuing encoded
// stream refills positions a receiver missed. Receivers play positions in
// order after a startup buffer; the metric of interest becomes rebuffer/stall
// time and blocks missing their playback deadline rather than download time.
//
// Late joiners catch up from the live edge backwards: a receiver joining at
// time J starts its playback at the position the source is releasing at J
// (earlier positions are not required), mirroring a viewer tuning into a live
// stream. Request eligibility is a sliding window of `window_blocks` positions
// starting at the receiver's next unplayed position — only blocks inside the
// window (and already released at the source) are requestable, and the
// configured request strategy (rarest-random for Bullet') applies within it.

#ifndef SRC_OVERLAY_STREAMING_H_
#define SRC_OVERLAY_STREAMING_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"

namespace bullet {

// Per-session streaming policy (SessionSpec::streaming). Unset = bulk mode.
struct StreamingSpec {
  double bitrate_mbps = 2.0;      // playback consumption rate
  int window_blocks = 64;         // sliding request-window size, in positions
  double startup_buffer_sec = 5.0;  // delay between join and playback start
};

// Playback state for one receiver (or the source's pacing clock): position
// math, the live edge, the sliding request window, and held-position tracking.
// Constructed at the node's join time; deterministic and allocation-light.
class StreamPlayback {
 public:
  StreamPlayback(const StreamingSpec& spec, uint32_t num_positions, int64_t block_bytes,
                 SimTime session_start, SimTime join_time);

  uint32_t num_positions() const { return num_positions_; }
  SimTime block_duration() const { return block_duration_; }
  const StreamingSpec& spec() const { return spec_; }
  SimTime join_time() const { return join_time_; }

  // Playback position of a block id; encoded id spaces wrap (`id mod n`).
  uint32_t PositionOf(uint32_t id) const { return id % num_positions_; }

  // Positions fully released by the source at `t` (position p is released
  // during [start + p*d, start + (p+1)*d)); capped at num_positions.
  uint32_t LiveEdge(SimTime t) const;
  // Blocks the source may have minted by `t` — the release cadence without the
  // num_positions cap (encoded sources keep streaming past one file pass).
  uint64_t BlocksReleasable(SimTime t) const;

  // First position this receiver must play: the live edge at its join time
  // (clamped so every receiver needs at least the final position).
  uint32_t start_position() const { return start_position_; }
  // Next unplayed (not yet held) position; num_positions() once complete.
  uint32_t next_needed() const { return next_needed_; }
  // All required positions [start_position, num_positions) are held.
  bool Complete() const { return next_needed_ >= num_positions_; }

  // Marks a position held; returns true on the first time. Advances the
  // window past the contiguous held prefix.
  bool MarkHeld(uint32_t position);
  bool Held(uint32_t position) const { return held_[position] != 0; }

  // Required: position inside this receiver's playback range.
  bool Required(uint32_t id) const { return PositionOf(id) >= start_position_; }
  // Sliding-window eligibility at time `t`: the block's position is required,
  // inside [next_needed, next_needed + window_blocks), not yet held, and
  // released (or being released) at the source.
  bool Eligible(uint32_t id, SimTime t) const;

 private:
  StreamingSpec spec_;
  uint32_t num_positions_ = 0;
  SimTime block_duration_ = 0;
  SimTime session_start_ = 0;
  SimTime join_time_ = 0;
  uint32_t start_position_ = 0;
  uint32_t next_needed_ = 0;
  std::vector<char> held_;
};

// Post-run playback accounting for one receiver (AssembleSessionResult).
struct PlaybackStats {
  double stall_sec = 0.0;      // total rebuffer time (initial buffer excluded)
  int missed_deadline = 0;     // positions late against the *fixed* schedule
  bool finished = false;       // playback consumed every required position
};

// Simulates playback over the recorded first-arrival times (`position_arrival`,
// indexed by position, -1 = never arrived; an empty vector means no block ever
// arrived). Playback starts at `join + startup_buffer`; a missing position
// stalls playback until it arrives (or `run_deadline`, after which playback
// abandons). Missed-deadline counts are taken against the fixed non-stall-
// shifted schedule `join + buffer + (p - p0) * block_duration`, so one long
// stall early on does not absolve every later block.
PlaybackStats ComputePlaybackStats(const StreamingSpec& spec, uint32_t num_positions,
                                   int64_t block_bytes, SimTime session_start, SimTime join_time,
                                   const std::vector<SimTime>& position_arrival,
                                   SimTime run_deadline);

}  // namespace bullet

#endif  // SRC_OVERLAY_STREAMING_H_
