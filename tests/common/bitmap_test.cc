#include "src/common/bitmap.h"

#include <gtest/gtest.h>

namespace bullet {
namespace {

TEST(Bitmap, EmptyDefaults) {
  Bitmap b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.full());  // vacuously: count == size == 0
  EXPECT_FALSE(b.Test(0));
}

TEST(Bitmap, SetAndTest) {
  Bitmap b(100);
  EXPECT_TRUE(b.Set(5));
  EXPECT_TRUE(b.Test(5));
  EXPECT_FALSE(b.Set(5));  // already set
  EXPECT_EQ(b.count(), 1u);
  EXPECT_FALSE(b.Test(6));
}

TEST(Bitmap, OutOfRangeIsSafe) {
  Bitmap b(10);
  EXPECT_FALSE(b.Set(10));
  EXPECT_FALSE(b.Set(1000));
  EXPECT_FALSE(b.Test(1000));
  b.Clear(1000);  // no-op
  EXPECT_EQ(b.count(), 0u);
}

TEST(Bitmap, ClearAndCount) {
  Bitmap b(64);
  for (size_t i = 0; i < 64; i += 2) {
    b.Set(i);
  }
  EXPECT_EQ(b.count(), 32u);
  b.Clear(0);
  b.Clear(2);
  b.Clear(3);  // not set; no effect
  EXPECT_EQ(b.count(), 30u);
  b.ClearAll();
  EXPECT_EQ(b.count(), 0u);
  EXPECT_FALSE(b.Test(4));
}

TEST(Bitmap, WordBoundaries) {
  for (const size_t size : {1u, 63u, 64u, 65u, 128u, 129u}) {
    Bitmap b(size);
    for (size_t i = 0; i < size; ++i) {
      EXPECT_TRUE(b.Set(i)) << size << ":" << i;
    }
    EXPECT_TRUE(b.full());
    EXPECT_EQ(b.FirstClear(), size);
  }
}

TEST(Bitmap, FirstClear) {
  Bitmap b(130);
  EXPECT_EQ(b.FirstClear(), 0u);
  for (size_t i = 0; i < 70; ++i) {
    b.Set(i);
  }
  EXPECT_EQ(b.FirstClear(), 70u);
  b.Clear(3);
  EXPECT_EQ(b.FirstClear(), 3u);
}

TEST(Bitmap, SetBits) {
  Bitmap b(200);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(199);
  const auto bits = b.SetBits();
  EXPECT_EQ(bits, (std::vector<uint32_t>{0, 63, 64, 199}));
}

TEST(Bitmap, DiffFrom) {
  Bitmap a(100);
  Bitmap b(100);
  a.Set(1);
  a.Set(50);
  a.Set(99);
  b.Set(50);
  const auto diff = a.DiffFrom(b);
  EXPECT_EQ(diff, (std::vector<uint32_t>{1, 99}));
  EXPECT_TRUE(b.DiffFrom(a).empty());
}

TEST(Bitmap, DiffFromDifferentSizes) {
  Bitmap a(128);
  Bitmap b(64);
  a.Set(100);
  a.Set(10);
  b.Set(10);
  const auto diff = a.DiffFrom(b);
  EXPECT_EQ(diff, (std::vector<uint32_t>{100}));
}

TEST(Bitmap, IntersectCount) {
  Bitmap a(100);
  Bitmap b(100);
  for (size_t i = 0; i < 100; i += 3) {
    a.Set(i);
  }
  for (size_t i = 0; i < 100; i += 5) {
    b.Set(i);
  }
  size_t expected = 0;
  for (size_t i = 0; i < 100; i += 15) {
    ++expected;
  }
  EXPECT_EQ(a.IntersectCount(b), expected);
}

TEST(Bitmap, WireBytes) {
  EXPECT_EQ(Bitmap(0).WireBytes(), 8u);
  EXPECT_EQ(Bitmap(8).WireBytes(), 9u);
  EXPECT_EQ(Bitmap(6400).WireBytes(), 8u + 800u);
}

TEST(Bitmap, ResizeResets) {
  Bitmap b(10);
  b.Set(3);
  b.Resize(20);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_FALSE(b.Test(3));
  EXPECT_EQ(b.size(), 20u);
}

}  // namespace
}  // namespace bullet
