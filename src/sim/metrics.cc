#include "src/sim/metrics.h"

namespace bullet {

std::vector<double> RunMetrics::CompletionSeconds(NodeId exclude, double incomplete_value) const {
  std::vector<double> out;
  const auto append = [&](size_t i) {
    if (static_cast<NodeId>(i) == exclude) {
      return;
    }
    const NodeMetrics& m = nodes_[i];
    if (m.completion >= 0) {
      out.push_back(SimToSec(m.completion));
    } else if (incomplete_value >= 0.0) {
      out.push_back(incomplete_value);
    }
  };
  if (members_.empty()) {
    out.reserve(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
      append(i);
    }
  } else {
    out.reserve(members_.size());
    for (const NodeId n : members_) {
      append(static_cast<size_t>(n));
    }
  }
  return out;
}

double RunMetrics::DuplicateFraction() const {
  int64_t useful = 0;
  int64_t dup = 0;
  for (const auto& m : nodes_) {
    useful += m.useful_blocks;
    dup += m.duplicate_blocks;
  }
  const int64_t total = useful + dup;
  return total > 0 ? static_cast<double>(dup) / static_cast<double>(total) : 0.0;
}

double RunMetrics::ControlOverheadFraction() const {
  int64_t ctrl = 0;
  int64_t total = 0;
  for (const auto& m : nodes_) {
    ctrl += m.ctrl_bytes_in;
    total += m.ctrl_bytes_in + m.data_bytes_in + m.dup_bytes_in;
  }
  return total > 0 ? static_cast<double>(ctrl) / static_cast<double>(total) : 0.0;
}

}  // namespace bullet
