// Fig. 5: the Fig. 4 comparison under the paper's synthetic bandwidth changes
// (every 20 s, half the nodes see the core links from half the other nodes halved,
// cumulatively) on top of random core losses.
//
// Expected shape (paper): Bullet' degrades least; it finishes 32-70% faster than
// Bullet/BitTorrent/SplitStream, whose tails stretch toward ~1000 s.

#include "src/harness/scenario_registry.h"

namespace bullet {
namespace {

BULLET_SCENARIO(fig05_overall_dynamic, "Fig. 5 — overall performance, dynamic bandwidth") {
  ScenarioConfig cfg;
  cfg.num_nodes = 100;
  cfg.file_mb = ScaledFileMb(100.0);
  cfg.dynamic_bw = true;
  cfg.seed = 501;
  ApplyScenarioOptions(opts, &cfg);

  ScenarioReport report(kScenarioName);
  for (const char* system : {"bullet-prime", "bullet", "bittorrent", "splitstream"}) {
    report.AddCompletion(RunScenario(system, cfg));
  }
  return report;
}

}  // namespace
}  // namespace bullet
