// Quickstart: disseminate a file from one source to 99 receivers with Bullet' on the
// paper's emulated topology (Section 4.1) and print the completion-time CDF.
//
// Usage: quickstart [num_nodes] [file_mb] [loss_max_percent]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/common/cdf.h"
#include "src/core/bullet_prime.h"
#include "src/harness/experiment.h"

int main(int argc, char** argv) {
  const int num_nodes = argc > 1 ? std::atoi(argv[1]) : 100;
  const double file_mb = argc > 2 ? std::atof(argv[2]) : 10.0;
  const double loss_max = argc > 3 ? std::atof(argv[3]) / 100.0 : 0.03;

  bullet::Rng topo_rng(2026);
  bullet::MeshTopology::MeshParams mesh;
  mesh.num_nodes = num_nodes;
  mesh.core_loss_max = loss_max;
  bullet::MeshTopology topo = bullet::MeshTopology::FullMesh(mesh, topo_rng);

  bullet::ExperimentParams params;
  params.seed = 11;
  params.file.block_bytes = 16 * 1024;
  params.file.num_blocks = static_cast<uint32_t>(file_mb * 1024 * 1024 / params.file.block_bytes);
  params.deadline = bullet::SecToSim(3600.0);

  std::printf("bullet' quickstart: %d nodes, %.1f MB file (%u blocks), loss 0-%.1f%%\n", num_nodes,
              file_mb, params.file.num_blocks, loss_max * 100.0);

  bullet::Experiment exp(std::move(topo), params);
  bullet::BulletPrimeConfig config;
  bullet::RunMetrics metrics =
      exp.Run([&](const bullet::Protocol::Context& ctx, const bullet::ControlTree* tree) {
        return std::make_unique<bullet::BulletPrime>(ctx, params.file, params.source, tree, config);
      });

  bullet::CdfSeries series;
  series.name = "bullet_prime download time (s)";
  series.samples = metrics.CompletionSeconds(params.source);
  std::printf("completed: %d/%d receivers, duplicate data: %.2f%%, control overhead: %.2f%%\n",
              metrics.completed(), num_nodes - 1, metrics.DuplicateFraction() * 100.0,
              metrics.ControlOverheadFraction() * 100.0);
  bullet::PrintSummaryTable(std::cout, {series});
  bullet::PrintCdf(std::cout, {series}, 10);
  return 0;
}
