// Registry of named, parameterized scenarios. Every paper figure, churn sweep and
// ablation registers itself here (see bench/*.cc); the bullet_run CLI lists and runs
// them by name and serializes the resulting report to a BENCH_*.json metrics file.

#ifndef SRC_HARNESS_SCENARIO_REGISTRY_H_
#define SRC_HARNESS_SCENARIO_REGISTRY_H_

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/cdf.h"
#include "src/common/options.h"
#include "src/harness/scenarios.h"

namespace bullet {

// Caller-supplied overrides; anything unset keeps the scenario's registered default.
struct ScenarioOptions {
  std::optional<int> nodes;
  std::optional<double> file_mb;
  std::optional<uint64_t> seed;
  std::optional<int64_t> block_bytes;
  std::optional<double> deadline_sec;
  // Per-link loss rates become uniform in [0, loss] (the Section 4.1 process with
  // a caller-chosen ceiling); 0 disables loss entirely.
  std::optional<double> loss;
  // Topology selector ("mesh" or "transit-stub", see ParseTopologyName).
  // Fixed-topology scenarios (fig12, fig15, fig16, fig17) ignore it like any
  // other override that does not apply.
  std::optional<std::string> topology;
  // Protocol selector — a ProtocolRegistry key ("bullet-prime", "bullet",
  // "bittorrent", "splitstream"). The CLI validates it against the registry;
  // scenarios with a fixed system roster (the multi-system comparison
  // figures) ignore it like any other override that does not apply.
  std::optional<std::string> system;
  // Fraction of receivers that join late in staggered-join scenarios
  // (fig18_flash_crowd); ignored by everyone-at-t0 scenarios.
  std::optional<double> join_fraction;
  // Pareto tail index for lifetime-churn scenarios (fig21_churn_lifetimes);
  // ignored by scenarios without lifetime generators.
  std::optional<double> lifetime_pareto_alpha;
  // Churn model selector ("none", "leaf", "stub", "gateway") for scenarios
  // that honor it (fig22_correlated_failures); others ignore it.
  std::optional<std::string> churn_model;
  // Streaming (playback-deadline) overrides for scenarios that honor them
  // (fig23_streaming_deadlines); bulk scenarios ignore them.
  std::optional<double> stream_bitrate_mbps;
  std::optional<int> stream_window_blocks;
  // Engine worker threads (--threads). Values > 1 select the partitioned
  // parallel engine and are only valid with a transit-stub topology; the
  // runner validates the combination up front (exit-2 usage error).
  std::optional<int> threads;
  // Mega-swarm scale knobs, 0/1 (--compress-routes / --aggregate-flows; see
  // ScenarioConfig). Scenarios on non-transit-stub topologies ignore
  // compress_routes like any other inapplicable override.
  std::optional<int> compress_routes;
  std::optional<int> aggregate_flows;
};

class JsonWriter;

// One row per generic scenario option. The bullet_run flag parser, the sweep
// engine's axis validation/application and the requested_options JSON echo all
// walk this table, so registering an option here is the single step that makes
// it a CLI flag, a sweep axis (when sweepable) and a serialized override.
struct ScenarioOptionDef {
  enum class Kind { kNumber, kString };

  const char* flag;      // CLI flag, e.g. "--nodes"
  const char* key;       // canonical sweep/set key, e.g. "nodes"
  // requested_options field name; nullptr = parsed but never echoed (--loss
  // has always been omitted from the echo and committed baselines pin that).
  const char* json_key;
  Kind kind = Kind::kNumber;
  bool sweepable = false;
  // CLI parse/validation failure message ("--nodes requires an integer ...").
  const char* flag_error;
  // Sweep-axis validation failure message ("nodes values must be ...");
  // nullptr for non-sweepable options.
  const char* axis_error;
  // Parses raw flag text, validates, stores into *opts. May write a dynamic
  // message to *error (e.g. --system listing the live protocol registry);
  // callers fall back to flag_error when *error stays empty.
  bool (*parse)(const std::string& text, ScenarioOptions* opts, std::string* error);
  // Numeric sweep axes: range check and application. Null for string/non-
  // sweepable options.
  bool (*validate_number)(double value);
  void (*apply_number)(double value, ScenarioOptions* opts);
  // Applies the stored option onto a scenario config (the ApplyScenarioOptions
  // step); no-ops when the option is unset.
  void (*apply_config)(const ScenarioOptions& opts, ScenarioConfig* cfg);
  // Emits the option into the requested_options object when set; null for
  // never-echoed options (json_key == nullptr).
  void (*echo)(const ScenarioOptions& opts, JsonWriter* json);
};

// The table, in requested_options emission order.
const std::vector<ScenarioOptionDef>& ScenarioOptionTable();
// nullptr when no row has that canonical key.
const ScenarioOptionDef* FindScenarioOptionByKey(const std::string& key);
// Comma-joined canonical keys of the sweepable rows (for error messages).
std::string SweepableOptionKeys();

// Applies the generic overrides onto a scenario's default config (walks the
// option table's apply_config hooks).
void ApplyScenarioOptions(const ScenarioOptions& opts, ScenarioConfig* cfg);

// Paper file size scaled by REPRO_SCALE (ci: 20%, full: 100%).
inline double ScaledFileMb(double paper_mb) { return paper_mb * GetReproScale().file_scale; }

// One named series of samples plus its side metrics (duplicate %, control %, ...).
struct SeriesReport {
  std::string name;
  std::vector<double> samples;
  std::vector<std::pair<std::string, double>> metrics;
};

// Everything a scenario run produced; the runner turns this into JSON and tables.
class ScenarioReport {
 public:
  explicit ScenarioReport(std::string scenario) : scenario_(std::move(scenario)) {}

  // Adds a completion-time series with the standard per-system metrics attached.
  void AddCompletion(const ScenarioResult& result);
  void AddCompletion(const std::string& name, const ScenarioResult& result);
  // Adds a bare sample series (e.g. inter-arrival gaps, survivor times). The
  // returned reference stays valid across later Add* calls (deque storage).
  SeriesReport& AddSeries(const std::string& name, std::vector<double> samples);
  // Adds a top-level scalar (e.g. an analytic reference line).
  void AddScalar(const std::string& key, double value);

  const std::string& scenario() const { return scenario_; }
  const std::deque<SeriesReport>& series() const { return series_; }
  const std::vector<std::pair<std::string, double>>& scalars() const { return scalars_; }

  // The series as CdfSeries rows for the human-readable summary table / CDF dump.
  std::vector<CdfSeries> AsCdfSeries() const;

 private:
  std::string scenario_;
  std::deque<SeriesReport> series_;
  std::vector<std::pair<std::string, double>> scalars_;
};

// Registered scenario functions must be self-contained: everything a run touches
// (RNG, topology, network, metrics) is owned by the run and seeded from its
// options. The sweep engine relies on this to execute many runs concurrently —
// the registry itself is only mutated by static initializers before main() and is
// read-only afterwards, so concurrent Find/List need no locking.
class ScenarioRegistry {
 public:
  using RunFn = std::function<ScenarioReport(const ScenarioOptions&)>;

  struct Entry {
    std::string name;
    std::string description;
    RunFn fn;
  };

  // The process-wide registry that BULLET_SCENARIO registers into.
  static ScenarioRegistry& Global();

  // Returns false (and leaves the registry unchanged) on a duplicate name.
  bool Register(const std::string& name, const std::string& description, RunFn fn);

  // nullptr when no scenario has that name.
  const Entry* Find(const std::string& name) const;
  // Sorted by name.
  std::vector<const Entry*> List() const;
  size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, Entry> entries_;
};

// Side registry of scenarios whose *default* topology is the routed
// transit-stub graph (tagged with BULLET_SCENARIO_TRANSIT_STUB_DEFAULT next to
// their BULLET_SCENARIO body). The runner's --threads validation consults it:
// threads > 1 needs a transit-stub topology, and without a --topology override
// only the scenario itself knows its default. Like the scenario registry,
// mutated only by static initializers and read-only after main() starts.
bool ScenarioDefaultsToTransitStub(const std::string& name);

namespace harness_internal {

struct ScenarioRegistrar {
  ScenarioRegistrar(const char* name, const char* description, ScenarioRegistry::RunFn fn);
};

struct TransitStubDefaultRegistrar {
  explicit TransitStubDefaultRegistrar(const char* name);
};

}  // namespace harness_internal

}  // namespace bullet

// Defines and registers a scenario:
//
//   BULLET_SCENARIO(fig04_overall_static, "Fig. 4 — ...") {
//     ScenarioReport report(kScenarioName);
//     ...
//     return report;
//   }
//
// The body receives `const ScenarioOptions& opts` and `kScenarioName`.
#define BULLET_SCENARIO(scenario_name, description)                                         \
  static ::bullet::ScenarioReport BulletScenarioRun_##scenario_name(                        \
      const ::bullet::ScenarioOptions& opts, const char* kScenarioName);                    \
  static const ::bullet::harness_internal::ScenarioRegistrar                                \
      bullet_scenario_registrar_##scenario_name(                                            \
          #scenario_name, description, [](const ::bullet::ScenarioOptions& opts) {          \
            return BulletScenarioRun_##scenario_name(opts, #scenario_name);                 \
          });                                                                               \
  static ::bullet::ScenarioReport BulletScenarioRun_##scenario_name(                        \
      [[maybe_unused]] const ::bullet::ScenarioOptions& opts,                               \
      [[maybe_unused]] const char* kScenarioName)

// Tags a scenario (registered separately via BULLET_SCENARIO) as defaulting
// to the transit-stub topology, enabling --threads > 1 without an explicit
// --topology transit-stub override.
#define BULLET_SCENARIO_TRANSIT_STUB_DEFAULT(scenario_name)          \
  static const ::bullet::harness_internal::TransitStubDefaultRegistrar \
      bullet_scenario_ts_default_##scenario_name(#scenario_name)

#endif  // SRC_HARNESS_SCENARIO_REGISTRY_H_
