// End-to-end contract of the mega-swarm scale subsystem (ctest label
// `routed`): enabling route compression must not move a single bit of any
// scenario result (serial or partitioned engine), the aggregated allocator
// must still complete transfers, and the memory telemetry must flow through
// ScenarioResult so the megaswarm ceilings gate has real numbers to check.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/harness/scenarios.h"

namespace bullet {
namespace {

ScenarioConfig SmallMegaswarmConfig() {
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kTransitStub;
  cfg.num_nodes = 24;
  cfg.file_mb = 1.0;
  cfg.block_bytes = 16 * 1024;
  cfg.seed = 2401;
  return cfg;
}

void ExpectBitwiseEqualResults(const ScenarioResult& a, const ScenarioResult& b) {
  ASSERT_EQ(a.completion_sec.size(), b.completion_sec.size());
  for (size_t i = 0; i < a.completion_sec.size(); ++i) {
    EXPECT_EQ(a.completion_sec[i], b.completion_sec[i]) << "receiver " << i;
  }
  ASSERT_EQ(a.download_sec.size(), b.download_sec.size());
  for (size_t i = 0; i < a.download_sec.size(); ++i) {
    EXPECT_EQ(a.download_sec[i], b.download_sec[i]) << "receiver " << i;
  }
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.duplicate_fraction, b.duplicate_fraction);
  EXPECT_EQ(a.control_overhead, b.control_overhead);
  EXPECT_EQ(a.max_shared_link_flows, b.max_shared_link_flows);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.allocator_epochs, b.allocator_epochs);
  EXPECT_EQ(a.sim_bytes_sent, b.sim_bytes_sent);
}

TEST(MegaswarmScale, CompressedRoutesDoNotPerturbScenarioResults) {
  ScenarioConfig cfg = SmallMegaswarmConfig();
  cfg.compress_routes = false;
  const ScenarioResult plain = RunScenario("bullet-prime", cfg);
  cfg.compress_routes = true;
  const ScenarioResult compressed = RunScenario("bullet-prime", cfg);
  EXPECT_EQ(plain.completed, plain.receivers);
  ExpectBitwiseEqualResults(plain, compressed);
}

TEST(MegaswarmScale, CompressedRoutesDoNotPerturbParallelEngineRuns) {
  // Fixed 20 ms transit tier so the 2-way partition plan's lookahead clears
  // the 10 ms quantum (same trick as determinism_test) instead of silently
  // falling back to the serial engine.
  ScenarioConfig cfg = SmallMegaswarmConfig();
  cfg.transit_stub.transit_delay_min = MsToSim(20);
  cfg.transit_stub.transit_delay_max = MsToSim(20);
  cfg.num_threads = 2;
  cfg.compress_routes = false;
  const ScenarioResult plain = RunScenario("bullet-prime", cfg);
  cfg.compress_routes = true;
  const ScenarioResult compressed = RunScenario("bullet-prime", cfg);
  EXPECT_EQ(plain.completed, plain.receivers);
  ExpectBitwiseEqualResults(plain, compressed);
}

TEST(MegaswarmScale, AggregatedAllocatorCompletesTransfers) {
  // Aggregated mode is NOT bit-identical to the exact allocator, but it must
  // remain a working network: every receiver finishes, and the completion
  // times stay in the same regime as the exact run (feasibility means rates
  // can only be redistributed, not conjured).
  ScenarioConfig cfg = SmallMegaswarmConfig();
  const ScenarioResult exact = RunScenario("bullet-prime", cfg);
  cfg.aggregate_flows = true;
  cfg.compress_routes = true;
  const ScenarioResult aggregated = RunScenario("bullet-prime", cfg);
  EXPECT_EQ(aggregated.completed, aggregated.receivers);
  ASSERT_FALSE(aggregated.completion_sec.empty());
  const double exact_max = *std::max_element(exact.completion_sec.begin(),
                                             exact.completion_sec.end());
  const double agg_max = *std::max_element(aggregated.completion_sec.begin(),
                                           aggregated.completion_sec.end());
  EXPECT_LT(agg_max, exact_max * 3.0);
  EXPECT_GT(agg_max, exact_max / 3.0);
}

TEST(MegaswarmScale, MemoryTelemetryFlowsThroughScenarioResult) {
  ScenarioConfig cfg = SmallMegaswarmConfig();
  const ScenarioResult r = RunScenario("bullet-prime", cfg);
  // Transit-stub routing populates the per-pair route cache and the PathCache
  // arena; Bullet' peer tables live on the counted protocol arenas.
  EXPECT_GT(r.route_cache_bytes, 0u);
  EXPECT_GT(r.path_pool_bytes, 0u);
  EXPECT_GT(r.arena_peak_bytes, 0u);

  // BitTorrent's peer table is arena-backed too.
  const ScenarioResult bt = RunScenario("bittorrent", cfg);
  EXPECT_GT(bt.arena_peak_bytes, 0u);
}

TEST(MegaswarmScale, MeshTopologyReportsNoRouteCache) {
  ScenarioConfig cfg = SmallMegaswarmConfig();
  cfg.topo = ScenarioConfig::Topo::kMesh;
  const ScenarioResult r = RunScenario("bullet-prime", cfg);
  // Dense mesh paths are computed from the matrix, not a route cache.
  EXPECT_EQ(r.route_cache_bytes, 0u);
  EXPECT_GT(r.arena_peak_bytes, 0u);
}

}  // namespace
}  // namespace bullet
