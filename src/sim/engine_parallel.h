// Worker pool and thread-context plumbing for the partitioned parallel engine.
//
// The parallel engine (network.cc) is a conservative-synchronization simulator:
// nodes are partitioned by transit-stub domain, each partition owns a private
// EventQueue, and all partitions advance in lockstep over windows of one
// quantum (the lookahead — the minimum inter-domain delivery delay — is
// verified to cover the quantum at partition time). Everything that crosses
// partitions happens at the barrier between windows, on the coordinator
// thread, in a documented deterministic order. The pool below is the only
// piece of actual threading machinery: a fixed set of persistent workers that
// execute one closure per superstep (or per sharded allocator round) and then
// spin on a barrier.
//
// Determinism contract: the pool never introduces ordering decisions. Workers
// run disjoint index ranges; every reduction of worker-produced data is done
// by the caller in worker-index order. Results therefore depend on the number
// of workers, never on thread scheduling.
//
// Thread-safety: RunOnAll may only be called from the thread that constructed
// the pool. The release/acquire pair on the epoch and done counters gives the
// closure a synchronizes-with edge on both entry and exit, so callers can hand
// plain (unsynchronized) data structures to workers across a RunOnAll call
// without additional fences.

#ifndef SRC_SIM_ENGINE_PARALLEL_H_
#define SRC_SIM_ENGINE_PARALLEL_H_

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

namespace bullet {

class PhaseProfiler;

// Index of the partition whose window the calling thread is currently
// executing, or -1 on the coordinator / in serial mode. Network::now() and the
// staging paths in Network use this to decide between partition-local and
// global behavior.
int CurrentPartitionIndex();

// RAII setter for CurrentPartitionIndex(); the engine wraps each partition
// window task in one of these.
class PartitionScope {
 public:
  explicit PartitionScope(int index);
  ~PartitionScope();

  PartitionScope(const PartitionScope&) = delete;
  PartitionScope& operator=(const PartitionScope&) = delete;

 private:
  int prev_;
};

class WorkerPool {
 public:
  // Spawns `num_threads - 1` persistent workers; the constructing thread is
  // participant 0. `profiler` (may be null) is installed as each worker's
  // thread-local PhaseProfiler so barrier/merge/water-fill time spent on
  // workers lands in the same report as the coordinator's (PhaseProfiler
  // accumulates with relaxed atomics, so sharing one instance is safe).
  // Workers never get a RunCounters installation: counters are published only
  // by the coordinator.
  WorkerPool(int num_threads, PhaseProfiler* profiler);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(i) for every i in [0, num_threads): i == 0 on the calling thread,
  // the rest on the pool's workers. Returns once every invocation has
  // finished. The caller's wait is attributed to the barrier_wait profile
  // phase. Must be called from the constructing thread only.
  void RunOnAll(const std::function<void(int)>& fn);

 private:
  void WorkerMain(int index);

  const int num_threads_;
  PhaseProfiler* const profiler_;
  std::atomic<uint64_t> epoch_{0};     // incremented per RunOnAll; release-published work
  std::atomic<int> done_{0};           // workers completed in the current epoch
  std::atomic<bool> shutdown_{false};
  const std::function<void(int)>* task_ = nullptr;  // valid while an epoch is open
  std::vector<std::thread> threads_;
};

}  // namespace bullet

#endif  // SRC_SIM_ENGINE_PARALLEL_H_
