// Fig. 15: Shotgun vs staggered parallel rsync — aggregate completion time for an
// update with ~24 MB of deltas pushed to 40 wide-area nodes.
//
// The pipeline is real end to end: two synthetic software images are diffed with the
// rsync library (rolling + strong checksums), the resulting bundle's exact byte
// counts drive both sides, Shotgun disseminates the bundle over Bullet' on the
// wide-area topology, and the baseline runs N rsync sessions against one server
// with K parallel slots, a shared disk, and a shared uplink.
//
// Expected shape (paper): Shotgun beats parallel rsync by around two orders of
// magnitude; client-side replay roughly doubles Shotgun's download-only time (the
// disk, not the network, is the constraint).

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/core/bullet_prime.h"
#include "src/harness/scenario_registry.h"
#include "src/shotgun/rsync_baseline.h"
#include "src/shotgun/shotgun.h"

namespace bullet {
namespace {

constexpr int kNodes = 41;  // server/source + 40 clients
constexpr uint64_t kSeed = 1501;
constexpr double kDiskBps = 15e6;  // PlanetLab-era client disk throughput

Bytes RandomBytes(size_t n, Rng& rng) {
  Bytes out(n);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return out;
}

// Builds the old/new software images. Sized so the bundle carries ~24 MB of deltas
// at paper scale (REPRO_SCALE shrinks it proportionally).
struct Update {
  FileTree old_tree;
  FileTree new_tree;
  SyncBundle bundle;
  int64_t image_bytes = 0;
  int64_t signature_bytes = 0;
};

const Update& GetUpdate() {
  static const Update update = [] {
    Update u;
    Rng rng(kSeed);
    const double scale = GetReproScale().file_scale;
    const size_t num_files = 24;
    const size_t file_bytes = static_cast<size_t>(2.0 * 1024 * 1024 * scale);
    constexpr size_t kBlock = 4 * 1024;
    for (size_t f = 0; f < num_files; ++f) {
      const std::string path = "image/part" + std::to_string(f);
      u.old_tree[path] = RandomBytes(file_bytes, rng);
      Bytes next = u.old_tree[path];
      // Half the files change almost entirely; the rest get small edits. Net delta
      // ~ half the image: the paper's "24 MB of deltas" against a ~48 MB image.
      if (f % 2 == 0) {
        next = RandomBytes(file_bytes, rng);
      } else {
        for (size_t i = 0; i < file_bytes / 50; ++i) {
          next[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(file_bytes) - 1))] ^= 1;
        }
      }
      u.new_tree[path] = std::move(next);
    }
    u.bundle = MakeBundle(u.old_tree, u.new_tree, kBlock, 1, 2);
    for (const auto& [path, bytes] : u.old_tree) {
      u.image_bytes += static_cast<int64_t>(bytes.size());
      u.signature_bytes += ComputeSignature(bytes, kBlock).WireBytes();
    }
    return u;
  }();
  return update;
}

BULLET_SCENARIO(fig15_shotgun, "Fig. 15 — Shotgun vs staggered parallel rsync") {
  const Update& u = GetUpdate();
  const uint64_t seed = opts.seed.value_or(kSeed);
  const int nodes = opts.nodes.value_or(kNodes);
  ScenarioReport report(kScenarioName);

  // Shotgun: disseminate the bundle over Bullet' on the wide-area topology.
  {
    ScenarioConfig cfg;
    cfg.topo = ScenarioConfig::Topo::kWideArea;
    cfg.num_nodes = nodes;
    cfg.file_mb = static_cast<double>(u.bundle.WireBytes()) / (1024.0 * 1024.0);
    cfg.seed = seed;
    const ScenarioResult r = RunScenario("bullet-prime", cfg);

    const double apply_sec = static_cast<double>(u.bundle.ReplayBytes()) / kDiskBps;
    std::vector<double> with_update;
    for (const double t : r.completion_sec) {
      with_update.push_back(t + apply_sec);
    }
    report.AddScalar("bundle_mb", static_cast<double>(u.bundle.WireBytes()) / (1024.0 * 1024.0));
    report.AddScalar("apply_s", apply_sec);
    report.AddSeries("Shotgun (download only)", r.completion_sec);
    report.AddSeries("Shotgun (download + update)", with_update);
  }

  // Baseline: N rsync clients against one server with K parallel slots.
  for (const int parallel : {2, 4, 8, 16}) {
    Rng topo_rng(seed ^ 0x74d3c2e1b5a69788ULL);  // same topology as the Shotgun run
    MeshTopology topo = MeshTopology::WideArea(nodes, topo_rng);

    NetworkConfig net_config;
    Network net(std::move(topo), net_config, seed);
    RunMetrics metrics(nodes);

    RsyncFleetConfig fleet;
    fleet.max_parallel = parallel;
    fleet.sig_bytes = u.signature_bytes;
    fleet.delta_bytes = u.bundle.WireBytes();
    fleet.server_scan_bytes = u.image_bytes * 2;  // server reads old + new images
    fleet.replay_bytes = u.bundle.ReplayBytes();
    fleet.client_disk_Bps = kDiskBps;

    std::vector<std::unique_ptr<Protocol>> protos;
    for (NodeId n = 0; n < nodes; ++n) {
      Protocol::Context ctx;
      ctx.self = n;
      ctx.net = &net;
      ctx.metrics = &metrics;
      ctx.seed = seed + static_cast<uint64_t>(n);
      if (n == 0) {
        protos.push_back(std::make_unique<RsyncServer>(ctx, fleet));
      } else {
        protos.push_back(std::make_unique<RsyncClient>(ctx, 0, fleet));
      }
      net.SetHandler(n, protos.back().get());
    }
    for (auto& p : protos) {
      p->Start();
    }
    net.Run(SecToSim(4 * 3600.0));

    const auto times = metrics.CompletionSeconds(0, 4 * 3600.0);
    SeriesReport& s = report.AddSeries(std::to_string(parallel) + " parallel rsync", times);
    s.metrics.emplace_back("done", static_cast<double>(metrics.completed()));
  }
  return report;
}

}  // namespace
}  // namespace bullet
