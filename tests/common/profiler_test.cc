// Tests for the two-layer profiling harness (src/common/profiler.h):
// always-on RunCounters install/accumulate semantics, PhaseProfiler totals,
// and — crucially — that profiling never perturbs simulation results. The
// determinism assertions run in every build; the macro-liveness assertions
// branch on PhaseProfiler::kCompiledIn so one test source covers both the
// default and the -DBULLET_PROFILE=ON CI configurations.

#include "src/common/profiler.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/harness/scenarios.h"

namespace bullet {
namespace {

TEST(RunCountersTest, SwapInstallsAndRestores) {
  EXPECT_EQ(RunCounters::Current(), nullptr);
  RunCounters outer;
  {
    ScopedRunCounters install(&outer);
    EXPECT_EQ(RunCounters::Current(), &outer);
    RunCounters inner;
    {
      ScopedRunCounters nested(&inner);
      EXPECT_EQ(RunCounters::Current(), &inner);
    }
    EXPECT_EQ(RunCounters::Current(), &outer);
  }
  EXPECT_EQ(RunCounters::Current(), nullptr);
}

TEST(RunCountersTest, InstallIsThreadLocal) {
  RunCounters mine;
  ScopedRunCounters install(&mine);
  RunCounters* seen_in_thread = &mine;
  std::thread([&seen_in_thread] { seen_in_thread = RunCounters::Current(); }).join();
  EXPECT_EQ(seen_in_thread, nullptr);
  EXPECT_EQ(RunCounters::Current(), &mine);
}

TEST(PhaseProfilerTest, PhaseNamesAreUniqueJsonKeys) {
  for (int p = 0; p < kProfilePhaseCount; ++p) {
    const char* name = ProfilePhaseName(static_cast<ProfilePhase>(p));
    EXPECT_STRNE(name, "unknown");
    for (int q = p + 1; q < kProfilePhaseCount; ++q) {
      EXPECT_STRNE(name, ProfilePhaseName(static_cast<ProfilePhase>(q)));
    }
  }
}

TEST(PhaseProfilerTest, AddAndResetTotals) {
  PhaseProfiler profiler;
  profiler.AddCount(ProfilePhase::kEventSchedule, 3);
  profiler.AddTimed(ProfilePhase::kEventDispatch, 250);
  EXPECT_EQ(profiler.totals(ProfilePhase::kEventSchedule).count, 3u);
  EXPECT_EQ(profiler.totals(ProfilePhase::kEventDispatch).count, 1u);
  EXPECT_EQ(profiler.totals(ProfilePhase::kEventDispatch).ns, 250u);

  const PhaseSnapshot snap = SnapshotPhases(profiler);
  EXPECT_EQ(snap.total_count(), 4u);

  profiler.Reset();
  EXPECT_EQ(profiler.totals(ProfilePhase::kEventDispatch).count, 0u);
  EXPECT_EQ(SnapshotPhases(profiler).total_count(), 0u);
}

ScenarioConfig TinyConfig() {
  ScenarioConfig cfg;
  cfg.num_nodes = 8;
  cfg.file_mb = 0.25;
  cfg.seed = 7;
  return cfg;
}

// One small scenario, three ways: bare, with counters installed, with counters
// and a profiler installed. All three must produce identical results (the
// determinism contract in profiler.h), and the counters must match the
// network totals the scenario reports.
TEST(ProfilerDeterminismTest, InstrumentationDoesNotPerturbResults) {
  const ScenarioConfig cfg = TinyConfig();
  const ScenarioResult bare = RunScenario("bullet-prime", cfg);

  RunCounters counters;
  PhaseProfiler profiler;
  ScenarioResult instrumented;
  {
    ScopedRunCounters install_counters(&counters);
    ScopedProfilerInstall install_profiler(&profiler);
    instrumented = RunScenario("bullet-prime", cfg);
  }

  EXPECT_EQ(bare.completion_sec, instrumented.completion_sec);
  EXPECT_EQ(bare.download_sec, instrumented.download_sec);
  EXPECT_EQ(bare.duplicate_fraction, instrumented.duplicate_fraction);
  EXPECT_EQ(bare.control_overhead, instrumented.control_overhead);
  EXPECT_EQ(bare.completed, instrumented.completed);
  EXPECT_EQ(bare.events_executed, instrumented.events_executed);
  EXPECT_EQ(bare.allocator_epochs, instrumented.allocator_epochs);
  EXPECT_EQ(bare.sim_bytes_sent, instrumented.sim_bytes_sent);

  // The installed RunCounters saw exactly what the network published.
  EXPECT_EQ(counters.events_executed, instrumented.events_executed);
  EXPECT_EQ(counters.allocator_epochs, instrumented.allocator_epochs);
  EXPECT_EQ(counters.sim_bytes_sent, instrumented.sim_bytes_sent);
  EXPECT_GT(counters.events_executed, 0u);
  EXPECT_GT(counters.allocator_epochs, 0u);
  EXPECT_GT(counters.sim_bytes_sent, 0u);
}

// The BULLET_PROFILE_* macros are live exactly in profiled builds: a real run
// records per-phase data iff kCompiledIn. Keeps the flag wiring honest in both
// CI configurations without duplicating the test source.
TEST(ProfilerDeterminismTest, PhaseRecordingMatchesBuildFlag) {
  PhaseProfiler profiler;
  {
    ScopedProfilerInstall install(&profiler);
    (void)RunScenario("bullet-prime", TinyConfig());
  }
  const PhaseSnapshot snap = SnapshotPhases(profiler);
  if (PhaseProfiler::kCompiledIn) {
    EXPECT_GT(snap.phases[static_cast<int>(ProfilePhase::kEventDispatch)].count, 0u);
    EXPECT_GT(snap.phases[static_cast<int>(ProfilePhase::kEventSchedule)].count, 0u);
    EXPECT_GT(snap.phases[static_cast<int>(ProfilePhase::kAllocatorEpoch)].count, 0u);
    EXPECT_GT(snap.phases[static_cast<int>(ProfilePhase::kWaterFill)].count, 0u);
    EXPECT_GT(snap.phases[static_cast<int>(ProfilePhase::kProtocolLogic)].count, 0u);
    EXPECT_GT(snap.phases[static_cast<int>(ProfilePhase::kRequestStrategy)].count, 0u);
    EXPECT_GT(snap.phases[static_cast<int>(ProfilePhase::kPathLookup)].count, 0u);
    EXPECT_GT(snap.phases[static_cast<int>(ProfilePhase::kTopologyMetrics)].count, 0u);
    // The water-fill runs inside (and so at most as often as) allocator epochs.
    EXPECT_EQ(snap.phases[static_cast<int>(ProfilePhase::kWaterFill)].count,
              snap.phases[static_cast<int>(ProfilePhase::kAllocatorEpoch)].count);
  } else {
    EXPECT_EQ(snap.total_count(), 0u);
  }
}

// Counter accounting at the network level: a run's events_executed matches the
// event queue's executed count, and repeated Run() calls on one network never
// double-publish into the installed RunCounters.
TEST(RunCountersTest, NetworkPublishesDeltasNotTotals) {
  RunCounters counters;
  uint64_t first_events = 0;
  {
    ScopedRunCounters install(&counters);
    const ScenarioResult r = RunScenario("bittorrent", TinyConfig());
    first_events = r.events_executed;
  }
  EXPECT_EQ(counters.events_executed, first_events);

  // A second, separate run accumulates on top (the sweep engine installs a
  // fresh RunCounters per run; accumulation across runs must still be exact).
  {
    ScopedRunCounters install(&counters);
    (void)RunScenario("bittorrent", TinyConfig());
  }
  EXPECT_EQ(counters.events_executed, 2 * first_events);
}

}  // namespace
}  // namespace bullet
