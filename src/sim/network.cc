#include "src/sim/network.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "src/common/logging.h"
#include "src/sim/bandwidth_allocator.h"

namespace bullet {

Network::Network(Topology topology, NetworkConfig config, uint64_t seed)
    : topology_(std::move(topology)),
      config_(config),
      rng_(seed),
      handlers_(static_cast<size_t>(topology_.num_nodes()), nullptr),
      tx_bytes_(static_cast<size_t>(topology_.num_nodes()), 0),
      rx_bytes_(static_cast<size_t>(topology_.num_nodes()), 0),
      failed_(static_cast<size_t>(topology_.num_nodes()), 0) {}

void Network::SetHandler(NodeId node, NetHandler* handler) {
  handlers_[static_cast<size_t>(node)] = handler;
}

Network::Conn* Network::GetConn(ConnId id) {
  if (id < 0 || static_cast<size_t>(id) >= conns_.size()) {
    return nullptr;
  }
  return conns_[static_cast<size_t>(id)].get();
}

const Network::Conn* Network::GetConn(ConnId id) const {
  if (id < 0 || static_cast<size_t>(id) >= conns_.size()) {
    return nullptr;
  }
  return conns_[static_cast<size_t>(id)].get();
}

int Network::EndpointIndex(const Conn& c, NodeId node) {
  if (c.node[0] == node) {
    return 0;
  }
  if (c.node[1] == node) {
    return 1;
  }
  return -1;
}

ConnId Network::Connect(NodeId from, NodeId to) {
  if (from == to || IsNodeFailed(from) || IsNodeFailed(to)) {
    return -1;
  }
  const ConnId id = static_cast<ConnId>(conns_.size());
  auto conn = std::make_unique<Conn>();
  conn->node[0] = from;
  conn->node[1] = to;
  conns_.push_back(std::move(conn));
  open_conns_.push_back(id);

  // TCP three-way handshake plus the first application-level write.
  const SimTime established_at = now() + topology_.Rtt(from, to) * 3 / 2;
  queue_.Schedule(established_at, [this, id] {
    Conn* c = GetConn(id);
    if (c == nullptr || c->closed) {
      return;
    }
    c->established = true;
    for (int i = 0; i < 2; ++i) {
      if (!c->dir[i].queue.empty()) {
        c->dir[i].tcp.OnBecameActive(now(), config_.tcp);
      } else {
        c->dir[i].idle_since = now();
      }
    }
    for (int i = 0; i < 2; ++i) {
      NetHandler* h = handlers_[static_cast<size_t>(c->node[i])];
      if (h != nullptr) {
        h->OnConnUp(id, c->node[1 - i], /*initiator=*/i == 0);
      }
    }
  });
  return id;
}

void Network::Close(ConnId conn_id) {
  Conn* c = GetConn(conn_id);
  if (c == nullptr || c->closed) {
    return;
  }
  c->closed = true;
  for (auto& dir : c->dir) {
    dir.queue.clear();
    dir.queued_bytes = 0;
    dir.rate_bps = 0.0;
  }
  // Notify both ends asynchronously; the remote end hears after one path delay.
  for (int i = 0; i < 2; ++i) {
    const NodeId endpoint = c->node[i];
    const NodeId peer = c->node[1 - i];
    const SimTime at = i == 0 ? now() : now() + topology_.PathDelay(c->node[0], c->node[1]);
    queue_.Schedule(at, [this, conn_id, endpoint, peer] {
      NetHandler* h = handlers_[static_cast<size_t>(endpoint)];
      if (h != nullptr) {
        h->OnConnDown(conn_id, peer);
      }
    });
  }
}

bool Network::IsOpen(ConnId conn_id) const {
  const Conn* c = GetConn(conn_id);
  return c != nullptr && !c->closed;
}

bool Network::Send(ConnId conn_id, NodeId from, std::unique_ptr<Message> msg) {
  Conn* c = GetConn(conn_id);
  if (c == nullptr || c->closed || msg == nullptr) {
    return false;
  }
  const int idx = EndpointIndex(*c, from);
  if (idx < 0) {
    return false;
  }
  Direction& dir = c->dir[idx];
  if (dir.queue.empty() && c->established) {
    dir.tcp.OnBecameActive(now(), config_.tcp);
  }
  dir.queued_bytes += msg->wire_bytes;
  const double bytes = static_cast<double>(std::max<int64_t>(msg->wire_bytes, 1));
  dir.queue.push_back(QueuedMsg{std::move(msg), bytes});
  return true;
}

size_t Network::QueuedMessages(ConnId conn_id, NodeId from) const {
  const Conn* c = GetConn(conn_id);
  if (c == nullptr) {
    return 0;
  }
  const int idx = EndpointIndex(*c, from);
  return idx < 0 ? 0 : c->dir[idx].queue.size();
}

int64_t Network::QueuedBytes(ConnId conn_id, NodeId from) const {
  const Conn* c = GetConn(conn_id);
  if (c == nullptr) {
    return 0;
  }
  const int idx = EndpointIndex(*c, from);
  return idx < 0 ? 0 : c->dir[idx].queued_bytes;
}

SimTime Network::IdleTime(ConnId conn_id, NodeId from) const {
  const Conn* c = GetConn(conn_id);
  if (c == nullptr) {
    return 0;
  }
  const int idx = EndpointIndex(*c, from);
  if (idx < 0 || !c->dir[idx].queue.empty()) {
    return 0;
  }
  return now() - c->dir[idx].idle_since;
}

double Network::CurrentRateBps(ConnId conn_id, NodeId from) const {
  const Conn* c = GetConn(conn_id);
  if (c == nullptr) {
    return 0.0;
  }
  const int idx = EndpointIndex(*c, from);
  return idx < 0 ? 0.0 : c->dir[idx].rate_bps;
}

void Network::FailNode(NodeId node) {
  if (IsNodeFailed(node)) {
    return;
  }
  failed_[static_cast<size_t>(node)] = 1;
  for (const ConnId id : open_conns_) {
    const Conn* c = GetConn(id);
    if (c != nullptr && !c->closed && (c->node[0] == node || c->node[1] == node)) {
      Close(id);
    }
  }
}

void Network::ScheduleTick() {
  tick_scheduled_ = true;
  queue_.ScheduleAfter(config_.quantum, [this] { Tick(); });
}

void Network::Tick() {
  const SimTime dt = now() - last_tick_;
  last_tick_ = now();
  const double dt_sec = SimToSec(dt);

  // Compact closed connections out of the open list.
  for (size_t i = 0; i < open_conns_.size();) {
    const Conn* c = GetConn(open_conns_[i]);
    if (c == nullptr || c->closed) {
      open_conns_[i] = open_conns_.back();
      open_conns_.pop_back();
    } else {
      ++i;
    }
  }

  // Build the active flow set. Link ids: uplink(n) = n, downlink(n) = N + n, core
  // links assigned densely on demand.
  const int n = topology_.num_nodes();
  std::vector<FlowSpec> flows;
  std::vector<std::pair<ConnId, int>> flow_dirs;
  std::vector<double> capacities(static_cast<size_t>(2 * n));
  for (NodeId i = 0; i < n; ++i) {
    capacities[static_cast<size_t>(i)] = topology_.uplink(i).bandwidth_bps;
    capacities[static_cast<size_t>(n + i)] = topology_.downlink(i).bandwidth_bps;
  }
  std::unordered_map<int64_t, int32_t> core_ids;
  for (const ConnId id : open_conns_) {
    Conn* c = GetConn(id);
    if (!c->established) {
      continue;
    }
    for (int i = 0; i < 2; ++i) {
      Direction& dir = c->dir[i];
      if (dir.queue.empty()) {
        dir.rate_bps = 0.0;
        continue;
      }
      const NodeId src = c->node[i];
      const NodeId dst = c->node[1 - i];
      const int64_t key = static_cast<int64_t>(src) * n + dst;
      auto [it, inserted] = core_ids.emplace(key, static_cast<int32_t>(capacities.size()));
      if (inserted) {
        capacities.push_back(topology_.core(src, dst).bandwidth_bps);
      }
      FlowSpec flow;
      flow.links[0] = src;
      flow.links[1] = static_cast<int32_t>(n) + dst;
      flow.links[2] = it->second;
      flow.cap_bps = TcpRateCapBps(dir.tcp, now(), topology_.Rtt(src, dst),
                                   topology_.PathLoss(src, dst), config_.tcp);
      flows.push_back(flow);
      flow_dirs.emplace_back(id, i);
    }
  }

  AllocateMaxMin(flows, capacities);

  // Advance transmissions.
  for (size_t fi = 0; fi < flows.size(); ++fi) {
    const auto [conn_id, dir_idx] = flow_dirs[fi];
    Conn* c = GetConn(conn_id);
    if (c == nullptr || c->closed) {
      continue;
    }
    Direction& dir = c->dir[dir_idx];
    dir.rate_bps = flows[fi].rate_bps;
    dir.tcp.last_busy = now();
    double budget = dir.rate_bps / 8.0 * dt_sec;
    while (!dir.queue.empty() && budget >= dir.queue.front().remaining_bytes) {
      QueuedMsg qm = std::move(dir.queue.front());
      dir.queue.pop_front();
      budget -= qm.remaining_bytes;
      dir.queued_bytes -= qm.msg->wire_bytes;
      tx_bytes_[static_cast<size_t>(c->node[dir_idx])] += qm.msg->wire_bytes;
      EnqueueDelivery(conn_id, *c, dir_idx, std::move(qm.msg));
      // `c` may have been invalidated by conns_ growth inside callbacks? Delivery is
      // scheduled, not synchronous, so no reentrancy happens here.
    }
    if (!dir.queue.empty()) {
      dir.queue.front().remaining_bytes -= budget;
    } else {
      dir.idle_since = now();
      dir.rate_bps = 0.0;
    }
  }

  ScheduleTick();
}

void Network::EnqueueDelivery(ConnId conn_id, Conn& c, int sender_idx, std::unique_ptr<Message> msg) {
  const NodeId src = c.node[sender_idx];
  const NodeId dst = c.node[1 - sender_idx];
  Direction& dir = c.dir[sender_idx];

  SimTime delivered_at = now() + topology_.PathDelay(src, dst);
  if (config_.loss_latency) {
    const double p = topology_.PathLoss(src, dst);
    if (p > 0.0) {
      const double packets =
          std::max(1.0, std::ceil(static_cast<double>(msg->wire_bytes) / config_.tcp.mss_bytes));
      const double p_msg = 1.0 - std::pow(1.0 - p, packets);
      if (rng_.Bernoulli(p_msg)) {
        // Fast retransmit in the common case; occasionally a full RTO.
        const SimTime rtt = topology_.Rtt(src, dst);
        SimTime penalty = rtt + rtt / 2;
        if (rng_.Bernoulli(0.2)) {
          penalty = std::max<SimTime>(MsToSim(200), 2 * rtt);
        }
        delivered_at += penalty;
      }
    }
  }
  delivered_at = std::max(delivered_at, dir.delivery_floor);
  dir.delivery_floor = delivered_at;

  auto holder = std::make_shared<std::unique_ptr<Message>>(std::move(msg));
  const int receiver_idx = 1 - sender_idx;
  queue_.Schedule(delivered_at, [this, conn_id, receiver_idx, holder] {
    DeliverMessage(conn_id, receiver_idx, std::move(*holder));
  });
}

void Network::DeliverMessage(ConnId conn_id, int receiver_idx, std::unique_ptr<Message> msg) {
  Conn* c = GetConn(conn_id);
  if (c == nullptr || c->closed || msg == nullptr) {
    return;
  }
  const NodeId receiver = c->node[receiver_idx];
  const NodeId sender = c->node[1 - receiver_idx];
  rx_bytes_[static_cast<size_t>(receiver)] += msg->wire_bytes;
  NetHandler* h = handlers_[static_cast<size_t>(receiver)];
  if (h != nullptr) {
    h->OnMessage(conn_id, sender, std::move(msg));
  }
}

void Network::Run(SimTime until) {
  if (!tick_scheduled_) {
    ScheduleTick();
  }
  queue_.RunUntil(until);
}

}  // namespace bullet
