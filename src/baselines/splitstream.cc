#include "src/baselines/splitstream.h"

#include "src/common/logging.h"
#include "src/overlay/protocol_registry.h"

namespace bullet {

SplitStream::SplitStream(const Context& ctx, const FileParams& file, NodeId source,
                         const StripeForest* forest, const SplitStreamConfig& config)
    : DisseminationProtocol(ctx, file, source),
      config_(config),
      forest_(forest),
      stripe_children_(static_cast<size_t>(config.num_stripes)) {}

void SplitStream::Start() {
  // Group our stripe parents: one connection per distinct parent node, announcing
  // every stripe it feeds us on.
  std::map<NodeId, std::vector<int>> by_parent;
  for (int stripe = 0; stripe < config_.num_stripes; ++stripe) {
    const NodeId p = forest_->trees[static_cast<size_t>(stripe)].parent[static_cast<size_t>(self())];
    if (p >= 0) {
      by_parent[p].push_back(stripe);
    }
  }
  for (const auto& [parent, stripes] : by_parent) {
    const ConnId conn = net().Connect(self(), parent);
    if (conn >= 0) {
      parent_conns_[parent] = conn;
    }
  }
  if (is_source()) {
    queue().ScheduleAfter(SecToSim(1.0), [this] { SourcePushTick(); });
  }
}

void SplitStream::OnConnUp(ConnId conn, NodeId peer, bool initiator) {
  if (!initiator) {
    return;
  }
  auto it = parent_conns_.find(peer);
  if (it == parent_conns_.end() || it->second != conn) {
    return;
  }
  auto hello = std::make_unique<ss::StripeHelloMsg>();
  for (int stripe = 0; stripe < config_.num_stripes; ++stripe) {
    if (forest_->trees[static_cast<size_t>(stripe)].parent[static_cast<size_t>(self())] == peer) {
      hello->stripes.push_back(stripe);
    }
  }
  hello->Finalize();
  AccountControlOut(hello->wire_bytes);
  net().Send(conn, self(), std::move(hello));
}

void SplitStream::OnConnDown(ConnId conn, NodeId peer) {
  parent_conns_.erase(peer);
  pending_.erase(conn);
  for (auto& kids : stripe_children_) {
    for (size_t i = 0; i < kids.size();) {
      if (kids[i] == conn) {
        kids[i] = kids.back();
        kids.pop_back();
      } else {
        ++i;
      }
    }
  }
}

void SplitStream::OnMessage(ConnId conn, NodeId /*from*/, std::unique_ptr<Message> msg) {
  switch (msg->type) {
    case ss::StripeHelloMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      for (const int stripe : static_cast<ss::StripeHelloMsg&>(*msg).stripes) {
        if (stripe >= 0 && stripe < config_.num_stripes) {
          stripe_children_[static_cast<size_t>(stripe)].push_back(conn);
        }
      }
      return;
    }
    case ss::StripeBlockMsg::kType: {
      const auto& block = static_cast<ss::StripeBlockMsg&>(*msg);
      AcceptBlock(block.block_id, block.wire_bytes);
      Forward(static_cast<int>(block.block_id) % config_.num_stripes, block.block_id);
      return;
    }
    default:
      return;
  }
}

void SplitStream::SourcePushTick() {
  const uint32_t total = file_.encoded ? file_.BlockSpace() : file_.num_blocks;
  while (next_push_block_ < total) {
    const int stripe = static_cast<int>(next_push_block_) % config_.num_stripes;
    // Pace generation: only mint the next block when at least one child of this
    // stripe has a fully drained pipe; otherwise retry shortly. Slow children build
    // a backpressured pending queue instead of missing blocks.
    bool any_room = false;
    for (const ConnId conn : stripe_children_[static_cast<size_t>(stripe)]) {
      const auto pit = pending_.find(conn);
      const bool backlog = pit != pending_.end() && !pit->second.empty();
      if (!backlog && net().QueuedBytes(conn, self()) <
                          config_.forward_queue_blocks * file_.block_bytes) {
        any_room = true;
        break;
      }
    }
    if (!any_room) {
      break;
    }
    if (file_.encoded) {
      have_.Set(next_push_block_);
      sketch_.AddBlock(next_push_block_);
    }
    Forward(stripe, next_push_block_);
    ++next_push_block_;
  }
  if (next_push_block_ < total && !net().queue().stopped()) {
    queue().ScheduleAfter(config_.source_push_retry, [this] { SourcePushTick(); });
  }
}

void SplitStream::Forward(int stripe, uint32_t id) {
  for (const ConnId conn : stripe_children_[static_cast<size_t>(stripe)]) {
    pending_[conn].push_back(id);
  }
  DrainPending();
}

void SplitStream::DrainPending() {
  bool backlog = false;
  for (auto& [conn, q] : pending_) {
    while (!q.empty() &&
           net().QueuedBytes(conn, self()) < config_.forward_queue_blocks * file_.block_bytes) {
      auto msg = std::make_unique<ss::StripeBlockMsg>();
      msg->block_id = q.front();
      q.pop_front();
      msg->Finalize(file_.block_bytes);
      net().Send(conn, self(), std::move(msg));
    }
    backlog |= !q.empty();
  }
  if (backlog && !drain_scheduled_ && !net().queue().stopped()) {
    drain_scheduled_ = true;
    queue().ScheduleAfter(config_.drain_retry, [this] {
      drain_scheduled_ = false;
      DrainPending();
    });
  }
}

}  // namespace bullet

namespace bullet {

void RegisterSplitStreamProtocol() {
  ProtocolRegistry::Entry entry;
  entry.key = "splitstream";
  entry.display_name = "SplitStream";
  entry.description = "SplitStream baseline: k interior-node-disjoint stripe trees over "
                      "a source-encoded stream";
  entry.encoded_stream = true;
  entry.requires_full_span = true;
  entry.config_type = &typeid(SplitStreamConfig);
  entry.make = [](const ProtocolRegistry::SessionEnv& env) -> ProtocolRegistry::NodeFactory {
    SplitStreamConfig config;
    if (const auto* c = std::any_cast<SplitStreamConfig>(&env.spec->protocol_config)) {
      config = *c;
    }
    // The stripe forest is interior-disjoint over the *whole* node-id space
    // (node v is interior only in stripe v mod k); a session over a subset
    // would route stripes through nodes that never instantiate a protocol.
    BULLET_CHECK(static_cast<int>(env.spec->members.size()) == env.num_nodes &&
                 "splitstream sessions must span every node in the network");
    Rng forest_rng(env.seed ^ 0x517cc1b727220a95ULL);
    auto forest = std::make_shared<StripeForest>(
        StripeForest::Build(env.num_nodes, config.num_stripes, env.spec->source, forest_rng));
    const FileParams file = env.spec->file;
    const NodeId source = env.spec->source;
    return [config, file, source, forest](const Protocol::Context& ctx) {
      return std::unique_ptr<Protocol>(new SplitStream(ctx, file, source, forest.get(), config));
    };
  };
  ProtocolRegistry::Global().Register(std::move(entry));
}

}  // namespace bullet
