// Cross-system integration tests asserting the paper's qualitative results at a
// scale small enough for CI: completion everywhere, bounded waste, and the headline
// orderings (Bullet' fastest; SplitStream's tree tail slowest).

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/core/bullet_prime.h"
#include "src/harness/scenarios.h"

namespace bullet {
namespace {

ScenarioConfig MediumScenario(bool dynamic) {
  ScenarioConfig cfg;
  cfg.num_nodes = 40;
  // Large enough that transfer rate, not overlay formation, separates the systems
  // (below ~15 MB every mesh system tracks the source-injection frontier equally).
  cfg.file_mb = 20.0;
  cfg.dynamic_bw = dynamic;
  cfg.seed = 91;
  cfg.deadline = SecToSim(1800.0);
  return cfg;
}

TEST(Systems, AllCompleteOnPaperTopology) {
  const ScenarioConfig cfg = MediumScenario(false);
  for (const char* system : {"bullet-prime", "bullet", "bittorrent", "splitstream"}) {
    const ScenarioResult r = RunScenario(system, cfg);
    EXPECT_EQ(r.completed, r.receivers) << r.name;
    EXPECT_LT(r.duplicate_fraction, 0.05) << r.name;
    EXPECT_LT(r.control_overhead, 0.05) << r.name;
  }
}

TEST(Systems, BulletPrimeBeatsBaselinesStatic) {
  const ScenarioConfig cfg = MediumScenario(false);
  const double bp = Percentile(RunScenario("bullet-prime", cfg).completion_sec, 0.5);
  const double bullet = Percentile(RunScenario("bullet", cfg).completion_sec, 0.5);
  const double bt = Percentile(RunScenario("bittorrent", cfg).completion_sec, 0.5);
  const double ss = Percentile(RunScenario("splitstream", cfg).completion_sec, 0.5);
  // Fig. 4's ordering. CI scale shrinks margins; the BP-vs-SplitStream gap needs a
  // longer transfer to open up (SplitStreamSlowestAtScale covers it), so allow a
  // near-tie there.
  EXPECT_LT(bp, bullet);
  EXPECT_LT(bp, bt);
  EXPECT_LT(bp, ss * 1.1);
}

TEST(Systems, SplitStreamSlowestAtScale) {
  // The tree-delivery penalty (Fig. 4's rightmost CDF) needs a transfer long enough
  // that streaming rate, not startup, dominates; use the Fig. 4 topology with a
  // 20 MB file. At full paper scale the gap widens to ~2x (see EXPERIMENTS.md).
  ScenarioConfig cfg;
  cfg.num_nodes = 100;
  cfg.file_mb = 40.0;
  cfg.seed = 401;
  cfg.deadline = SecToSim(3600.0);
  const auto bp = RunScenario("bullet-prime", cfg).completion_sec;
  const auto ss = RunScenario("splitstream", cfg).completion_sec;
  EXPECT_GT(Percentile(ss, 0.5), Percentile(bp, 0.5) * 1.2);
  EXPECT_GT(Percentile(ss, 1.0), Percentile(bp, 1.0) * 1.1);
}

TEST(Systems, DynamicConditionsHurtBitTorrentMoreThanBulletPrime) {
  const ScenarioConfig stat = MediumScenario(false);
  const ScenarioConfig dyn = MediumScenario(true);
  const double bp_static = Percentile(RunScenario("bullet-prime", stat).completion_sec, 0.9);
  const double bp_dyn = Percentile(RunScenario("bullet-prime", dyn).completion_sec, 0.9);
  const double bt_static = Percentile(RunScenario("bittorrent", stat).completion_sec, 0.9);
  const double bt_dyn = Percentile(RunScenario("bittorrent", dyn).completion_sec, 0.9);
  const double bp_hit = bp_dyn / bp_static;
  const double bt_hit = bt_dyn / bt_static;
  EXPECT_LT(bp_hit, bt_hit + 0.10);  // Bullet' absorbs the changes at least as well
}

TEST(Systems, EncodedBulletPrimeCompletes) {
  ScenarioConfig cfg = MediumScenario(false);
  cfg.num_nodes = 20;
  cfg.file_mb = 4.0;
  cfg.force_encoded = true;
  const ScenarioResult r = RunScenario("bullet-prime", cfg);
  EXPECT_EQ(r.completed, r.receivers);
}

TEST(Systems, WideAreaScenarioRuns) {
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kWideArea;
  cfg.num_nodes = 25;
  cfg.file_mb = 5.0;
  cfg.block_bytes = 100 * 1024;  // the PlanetLab experiment's block size
  cfg.seed = 92;
  cfg.deadline = SecToSim(1800.0);
  const ScenarioResult r = RunScenario("bullet-prime", cfg);
  EXPECT_EQ(r.completed, r.receivers);
}

TEST(Systems, ConstrainedAccessScenarioRuns) {
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kConstrained;
  cfg.num_nodes = 30;
  cfg.file_mb = 2.0;
  cfg.seed = 93;
  cfg.deadline = SecToSim(1800.0);
  const ScenarioResult r = RunScenario("bullet-prime", cfg);
  EXPECT_EQ(r.completed, r.receivers);
}

TEST(BulletPrimeBehaviour, StaticPeerSetsStayFixed) {
  ScenarioConfig cfg = MediumScenario(false);
  cfg.num_nodes = 25;
  cfg.file_mb = 4.0;
  BulletPrimeConfig bp;
  bp.dynamic_peer_sets = false;
  bp.initial_senders = 6;
  bp.initial_receivers = 6;
  const ScenarioResult r = RunScenario("bullet-prime", cfg, bp);
  EXPECT_EQ(r.completed, r.receivers);
}

TEST(BulletPrimeBehaviour, DynamicOutstandingBeatsTinyFixedWindowOnFatPipes) {
  // Fig. 10's essence: on 10 Mbps / 100 ms links, 3 outstanding 16 KB blocks cannot
  // fill the BDP; the dynamic controller must.
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kUniform;
  cfg.num_nodes = 15;
  cfg.file_mb = 48.0;  // long enough that the transfer dominates mesh formation
  cfg.uniform_bps = 10e6;
  cfg.uniform_delay = MsToSim(100);
  cfg.loss_max = 0.0;  // Fig. 10 runs without loss: windows, not Mathis, must bind
  cfg.seed = 94;
  cfg.deadline = SecToSim(1800.0);

  BulletPrimeConfig fixed3;
  fixed3.dynamic_outstanding = false;
  fixed3.fixed_outstanding = 3;
  BulletPrimeConfig dynamic;

  const double t_fixed =
      Percentile(RunScenario("bullet-prime", cfg, fixed3).completion_sec, 0.5);
  const double t_dyn =
      Percentile(RunScenario("bullet-prime", cfg, dynamic).completion_sec, 0.5);
  EXPECT_LT(t_dyn, t_fixed * 0.8);
}

}  // namespace
}  // namespace bullet
