// Fig. 11: the Fig. 10 windows under 0-1.5% random core losses.
//
// Expected shape (paper): TCP now achieves lower rates, so less data in flight
// suffices; hoarding 50 outstanding blocks on a connection that slows down strands
// requests, and the dynamic controller beats every static choice.

#include "bench/bench_util.h"

namespace bullet {
namespace {

void BM_Outstanding(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));  // 0 = dynamic
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kUniform;
  cfg.num_nodes = 25;
  cfg.file_mb = bench::ScaledFileMb(100.0);
  cfg.block_bytes = 8 * 1024;
  cfg.uniform_bps = 10e6;
  cfg.uniform_delay = MsToSim(100);
  cfg.loss_min = 0.0;
  cfg.loss_max = 0.015;
  cfg.seed = 1101;
  BulletPrimeConfig bp;
  bp.dynamic_peer_sets = false;
  bp.initial_senders = 5;
  bp.initial_receivers = 5;
  std::string name;
  if (window == 0) {
    name = "BulletPrime dyn outstanding";
  } else {
    bp.dynamic_outstanding = false;
    bp.fixed_outstanding = window;
    name = "BulletPrime " + std::to_string(window) + " outstanding";
  }
  for (auto _ : state) {
    const ScenarioResult r = RunScenario(System::kBulletPrime, cfg, bp);
    bench::ReportCompletion(state, name, r);
  }
}
BENCHMARK(BM_Outstanding)
    ->Arg(0)
    ->Arg(15)
    ->Arg(50)
    ->Arg(9)
    ->Arg(6)
    ->Arg(3)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bullet

BULLET_BENCH_MAIN("Fig. 11 — outstanding windows under random losses")
