// Fig. 9: peer-set sizes on the constrained-access topology (ample 10 Mbps / 1 ms
// core, 800 Kbps access links, no loss), 10 MB file.
//
// Expected shape (paper): the ranking INVERTS relative to Fig. 7 — 14 peers performs
// worse than 10 because extra maximizing TCP flows fight over the narrow access
// links and extra control traffic eats goodput. The dynamic approach tracks (and
// sometimes exceeds) the better static setup. This inversion is the paper's central
// argument that no static peer-set size works everywhere.

#include "bench/bench_util.h"

namespace bullet {
namespace {

void BM_PeerSet(benchmark::State& state) {
  const int peers = static_cast<int>(state.range(0));  // 0 = dynamic
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kConstrained;
  cfg.num_nodes = 100;
  cfg.file_mb = bench::ScaledFileMb(10.0);
  cfg.seed = 901;
  BulletPrimeConfig bp;
  std::string name;
  if (peers == 0) {
    name = "BulletPrime dynamic peer sets";
  } else {
    bp.dynamic_peer_sets = false;
    bp.initial_senders = peers;
    bp.initial_receivers = peers;
    name = "BulletPrime " + std::to_string(peers) + " senders/receivers";
  }
  for (auto _ : state) {
    const ScenarioResult r = RunScenario(System::kBulletPrime, cfg, bp);
    bench::ReportCompletion(state, name, r);
  }
}
BENCHMARK(BM_PeerSet)->Arg(10)->Arg(0)->Arg(14)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bullet

BULLET_BENCH_MAIN("Fig. 9 — peer-set size with constrained access links")
