#include "src/baselines/bittorrent.h"

#include <algorithm>

#include "src/common/profiler.h"
#include "src/overlay/protocol_registry.h"

namespace bullet {

BitTorrent::BitTorrent(const Context& ctx, const FileParams& file, NodeId source,
                       const BitTorrentConfig& config)
    : DisseminationProtocol(ctx, file, source),
      config_(config),
      peers_(ctx.net->arena_counter()) {
  piece_rarity_.assign(NumPieces(), 0);
  piece_blocks_held_.assign(NumPieces(), 0);
  if (is_source()) {
    for (uint32_t piece = 0; piece < NumPieces(); ++piece) {
      const uint32_t first = piece * static_cast<uint32_t>(config_.piece_blocks);
      const uint32_t last =
          std::min(file_.num_blocks, first + static_cast<uint32_t>(config_.piece_blocks));
      piece_blocks_held_[piece] = static_cast<int>(last - first);
    }
  }
}

uint32_t BitTorrent::NumPieces() const {
  return (file_.num_blocks + static_cast<uint32_t>(config_.piece_blocks) - 1) /
         static_cast<uint32_t>(config_.piece_blocks);
}

bool BitTorrent::PieceComplete(uint32_t piece) const {
  const uint32_t first = piece * static_cast<uint32_t>(config_.piece_blocks);
  const uint32_t last =
      std::min(file_.num_blocks, first + static_cast<uint32_t>(config_.piece_blocks));
  return piece_blocks_held_[piece] >= static_cast<int>(last - first);
}

std::vector<uint32_t> BitTorrent::MissingBlocksOf(uint32_t piece) const {
  std::vector<uint32_t> out;
  const uint32_t first = piece * static_cast<uint32_t>(config_.piece_blocks);
  const uint32_t last =
      std::min(file_.num_blocks, first + static_cast<uint32_t>(config_.piece_blocks));
  for (uint32_t b = first; b < last; ++b) {
    if (!have_.Test(b) && requested_.find(b) == requested_.end()) {
      out.push_back(b);
    }
  }
  return out;
}

void BitTorrent::Start() {
  if (is_source()) {
    swarm_.push_back(self());
  } else {
    tracker_conn_ = net().Connect(self(), source_);
  }
  // Choking timers run at every node.
  queue().ScheduleAfter(config_.rechoke_period, [this] { Rechoke(); });
  queue().ScheduleAfter(config_.optimistic_period, [this] { RotateOptimistic(); });
  if (stream() != nullptr && !is_source()) {
    // Streaming mode: the window also slides with the source's release clock,
    // which no peer message announces — poll at the block cadence.
    queue().ScheduleAfter(stream()->block_duration(), [this] { StreamRequestTick(); });
  }
}

void BitTorrent::StreamRequestTick() {
  if (complete() || net().queue().stopped()) {
    return;
  }
  for (auto& [conn, p] : peers_) {
    if (!p.peer_choking && p.am_interested) {
      IssueRequests(p);
    }
  }
  queue().ScheduleAfter(stream()->block_duration(), [this] { StreamRequestTick(); });
}

std::vector<uint32_t> BitTorrent::RequestableBlocksOf(uint32_t piece) const {
  std::vector<uint32_t> out = MissingBlocksOf(piece);
  if (stream() == nullptr) {
    return out;
  }
  std::vector<uint32_t> windowed;
  windowed.reserve(out.size());
  for (const uint32_t b : out) {
    if (stream()->Eligible(b, now())) {
      windowed.push_back(b);
    }
  }
  return windowed;
}

void BitTorrent::OnConnUp(ConnId conn, NodeId /*peer*/, bool initiator) {
  if (conn == tracker_conn_) {
    auto req = std::make_unique<bt::TrackerRequestMsg>();
    AccountControlOut(req->wire_bytes);
    net().Send(conn, self(), std::move(req));
    return;
  }
  if (initiator) {
    // We initiated a peering: introduce ourselves with our bitfield.
    auto it = peers_.find(conn);
    if (it != peers_.end()) {
      auto bf = std::make_unique<bt::BitfieldMsg>();
      for (uint32_t piece = 0; piece < NumPieces(); ++piece) {
        if (PieceComplete(piece)) {
          bf->pieces.push_back(piece);
        }
      }
      bf->Finalize(NumPieces());
      AccountControlOut(bf->wire_bytes);
      net().Send(conn, self(), std::move(bf));
    }
  }
}

void BitTorrent::OnConnDown(ConnId conn, NodeId /*peer*/) {
  auto it = peers_.find(conn);
  if (it == peers_.end()) {
    return;
  }
  Peer& p = it->second;
  for (const uint32_t piece : p.pieces.SetBits()) {
    --piece_rarity_[piece];
  }
  std::vector<uint32_t> requeue;
  for (const auto& [block, c] : requested_) {
    if (c == conn) {
      requeue.push_back(block);
    }
  }
  for (const uint32_t b : requeue) {
    requested_.erase(b);
  }
  peer_nodes_.erase(p.node);
  peers_.erase(it);
}

void BitTorrent::OnMessage(ConnId conn, NodeId from, std::unique_ptr<Message> msg) {
  switch (msg->type) {
    case bt::TrackerRequestMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      HandleTrackerRequest(conn, from);
      return;
    }
    case bt::TrackerResponseMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      ConnectToPeers(static_cast<bt::TrackerResponseMsg&>(*msg).peers);
      // The tracker connection doubles as a peering with the seed.
      if (peers_.find(conn) == peers_.end() && peer_nodes_.count(from) == 0 &&
          static_cast<int>(peers_.size()) < config_.max_connections) {
        Peer p;
        p.node = from;
        p.conn = conn;
        p.pieces.Resize(NumPieces());
        peers_.emplace(conn, std::move(p));
        peer_nodes_.insert(from);
        auto bf = std::make_unique<bt::BitfieldMsg>();
        for (uint32_t piece = 0; piece < NumPieces(); ++piece) {
          if (PieceComplete(piece)) {
            bf->pieces.push_back(piece);
          }
        }
        bf->Finalize(NumPieces());
        AccountControlOut(bf->wire_bytes);
        net().Send(conn, self(), std::move(bf));
      }
      return;
    }
    case bt::BitfieldMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      auto& bf = static_cast<bt::BitfieldMsg&>(*msg);
      auto it = peers_.find(conn);
      if (it == peers_.end()) {
        // Inbound peering: create state and reply with our bitfield.
        if (static_cast<int>(peers_.size()) >= config_.max_connections) {
          net().Close(conn);
          return;
        }
        Peer p;
        p.node = from;
        p.conn = conn;
        p.pieces.Resize(NumPieces());
        it = peers_.emplace(conn, std::move(p)).first;
        peer_nodes_.insert(from);
        auto reply = std::make_unique<bt::BitfieldMsg>();
        for (uint32_t piece = 0; piece < NumPieces(); ++piece) {
          if (PieceComplete(piece)) {
            reply->pieces.push_back(piece);
          }
        }
        reply->Finalize(NumPieces());
        AccountControlOut(reply->wire_bytes);
        net().Send(conn, self(), std::move(reply));
      }
      for (const uint32_t piece : bf.pieces) {
        if (piece < NumPieces() && !it->second.pieces.Test(piece)) {
          it->second.pieces.Set(piece);
          ++piece_rarity_[piece];
        }
      }
      UpdateInterest(it->second);
      return;
    }
    case bt::HaveMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      auto it = peers_.find(conn);
      if (it == peers_.end()) {
        return;
      }
      const uint32_t piece = static_cast<bt::HaveMsg&>(*msg).piece;
      if (piece < NumPieces() && !it->second.pieces.Test(piece)) {
        it->second.pieces.Set(piece);
        ++piece_rarity_[piece];
      }
      UpdateInterest(it->second);
      IssueRequests(it->second);
      return;
    }
    case bt::InterestMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      auto it = peers_.find(conn);
      if (it != peers_.end()) {
        it->second.peer_interested = static_cast<bt::InterestMsg&>(*msg).interested;
      }
      return;
    }
    case bt::ChokeMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      auto it = peers_.find(conn);
      if (it == peers_.end()) {
        return;
      }
      Peer& p = it->second;
      p.peer_choking = static_cast<bt::ChokeMsg&>(*msg).choked;
      if (p.peer_choking) {
        // A choke discards our pending requests; re-request elsewhere.
        std::vector<uint32_t> requeue;
        for (const auto& [block, c] : requested_) {
          if (c == conn) {
            requeue.push_back(block);
          }
        }
        for (const uint32_t b : requeue) {
          requested_.erase(b);
        }
        p.outstanding = 0;
        for (auto& [c2, p2] : peers_) {
          if (!p2.peer_choking) {
            IssueRequests(p2);
          }
        }
      } else {
        IssueRequests(p);
      }
      return;
    }
    case bt::RequestMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      auto it = peers_.find(conn);
      if (it == peers_.end() || it->second.am_choking) {
        return;
      }
      const uint32_t block = static_cast<bt::RequestMsg&>(*msg).block;
      if (block >= file_.num_blocks || !have_.Test(block)) {
        return;
      }
      auto piece = std::make_unique<bt::PieceMsg>();
      piece->block = block;
      piece->Finalize(file_.block_bytes);
      it->second.bytes_out_window += piece->wire_bytes;
      net().Send(conn, self(), std::move(piece));
      return;
    }
    case bt::PieceMsg::kType: {
      auto it = peers_.find(conn);
      if (it != peers_.end()) {
        OnPieceMsg(it->second, static_cast<bt::PieceMsg&>(*msg));
      }
      return;
    }
    default:
      return;
  }
}

void BitTorrent::HandleTrackerRequest(ConnId conn, NodeId from) {
  if (std::find(swarm_.begin(), swarm_.end(), from) == swarm_.end()) {
    swarm_.push_back(from);
  }
  auto resp = std::make_unique<bt::TrackerResponseMsg>();
  std::vector<NodeId> others;
  for (const NodeId n : swarm_) {
    if (n != from) {
      others.push_back(n);
    }
  }
  resp->peers = rng().Sample(others, static_cast<size_t>(config_.peer_list_size));
  resp->Finalize();
  AccountControlOut(resp->wire_bytes);
  net().Send(conn, self(), std::move(resp));
}

void BitTorrent::ConnectToPeers(const std::vector<NodeId>& list) {
  for (const NodeId n : list) {
    if (n == self() || peer_nodes_.count(n) > 0 ||
        static_cast<int>(peers_.size()) >= config_.max_connections) {
      continue;
    }
    const ConnId conn = net().Connect(self(), n);
    if (conn < 0) {
      continue;
    }
    Peer p;
    p.node = n;
    p.conn = conn;
    p.pieces.Resize(NumPieces());
    peers_.emplace(conn, std::move(p));
    peer_nodes_.insert(n);
  }
}

void BitTorrent::UpdateInterest(Peer& p) {
  bool interested = false;
  if (!complete()) {
    for (const uint32_t piece : p.pieces.SetBits()) {
      if (!PieceComplete(piece)) {
        interested = true;
        break;
      }
    }
  }
  if (interested != p.am_interested) {
    p.am_interested = interested;
    auto msg = std::make_unique<bt::InterestMsg>();
    msg->interested = interested;
    AccountControlOut(msg->wire_bytes);
    net().Send(p.conn, self(), std::move(msg));
  }
}

int BitTorrent::SelectPiece(const Peer& p) {
  // Strict priority pass 1: pieces already started; pass 2: any piece. Rarest-first
  // with random tie-break in both passes.
  for (const bool partial_only : {true, false}) {
    int best = -1;
    int best_rarity = INT32_MAX;
    int ties = 0;
    for (uint32_t piece = 0; piece < NumPieces(); ++piece) {
      if (!p.pieces.Test(piece) || PieceComplete(piece)) {
        continue;
      }
      if (partial_only && piece_blocks_held_[piece] == 0) {
        continue;
      }
      if (RequestableBlocksOf(piece).empty()) {
        continue;
      }
      const int r = piece_rarity_[piece];
      if (r < best_rarity) {
        best_rarity = r;
        best = static_cast<int>(piece);
        ties = 1;
      } else if (r == best_rarity) {
        ++ties;
        if (rng().UniformInt(1, ties) == 1) {
          best = static_cast<int>(piece);
        }
      }
    }
    if (best >= 0) {
      return best;
    }
  }
  return -1;
}

void BitTorrent::IssueRequests(Peer& p) {
  BULLET_PROFILE_SCOPE(ProfilePhase::kRequestStrategy);
  if (p.peer_choking || !p.am_interested || complete()) {
    return;
  }
  while (p.outstanding < config_.outstanding_per_peer) {
    // Continue a partial piece if possible, otherwise pick a new one.
    int piece = SelectPiece(p);
    if (piece < 0) {
      UpdateInterest(p);
      return;
    }
    const auto missing = RequestableBlocksOf(static_cast<uint32_t>(piece));
    if (missing.empty()) {
      return;
    }
    for (const uint32_t block : missing) {
      if (p.outstanding >= config_.outstanding_per_peer) {
        break;
      }
      auto req = std::make_unique<bt::RequestMsg>();
      req->block = block;
      AccountControlOut(req->wire_bytes);
      requested_.emplace(block, p.conn);
      ++p.outstanding;
      net().Send(p.conn, self(), std::move(req));
    }
  }
}

void BitTorrent::OnPieceMsg(Peer& p, bt::PieceMsg& msg) {
  p.outstanding = std::max(0, p.outstanding - 1);
  requested_.erase(msg.block);
  p.bytes_in_window += msg.wire_bytes;

  const uint32_t piece = PieceOf(msg.block);
  const bool fresh = AcceptBlock(msg.block, msg.wire_bytes);
  if (fresh) {
    ++piece_blocks_held_[piece];
    if (PieceComplete(piece)) {
      BroadcastHave(piece);
    }
  }
  if (complete()) {
    for (auto& [conn, peer] : peers_) {
      UpdateInterest(peer);
    }
    return;
  }
  IssueRequests(p);
}

void BitTorrent::BroadcastHave(uint32_t piece) {
  for (auto& [conn, p] : peers_) {
    auto msg = std::make_unique<bt::HaveMsg>();
    msg->piece = piece;
    AccountControlOut(msg->wire_bytes);
    net().Send(conn, self(), std::move(msg));
  }
}

void BitTorrent::Rechoke() {
  // Rank interested peers: leechers reciprocate download rate; the seed rewards
  // peers that drain its uplink fastest.
  std::vector<std::pair<int64_t, ConnId>> ranked;
  for (const auto& [conn, p] : peers_) {
    if (p.peer_interested) {
      const int64_t rate = complete() || is_source() ? p.bytes_out_window : p.bytes_in_window;
      ranked.emplace_back(rate, conn);
    }
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first > b.first;
  });

  std::set<ConnId> unchoke;
  for (size_t i = 0; i < ranked.size() && static_cast<int>(unchoke.size()) < config_.unchoke_slots;
       ++i) {
    unchoke.insert(ranked[i].second);
  }
  for (auto& [conn, p] : peers_) {
    if (p.optimistic && p.peer_interested) {
      unchoke.insert(conn);  // The optimistic slot rides on top of the regular slots.
    }
  }

  for (auto& [conn, p] : peers_) {
    const bool should_choke = unchoke.count(conn) == 0;
    if (should_choke != p.am_choking) {
      p.am_choking = should_choke;
      auto msg = std::make_unique<bt::ChokeMsg>();
      msg->choked = should_choke;
      AccountControlOut(msg->wire_bytes);
      net().Send(conn, self(), std::move(msg));
    }
    p.bytes_in_window = 0;
    p.bytes_out_window = 0;
  }
  queue().ScheduleAfter(config_.rechoke_period, [this] { Rechoke(); });
}

void BitTorrent::RotateOptimistic() {
  std::vector<ConnId> candidates;
  for (auto& [conn, p] : peers_) {
    p.optimistic = false;
    if (p.peer_interested && p.am_choking) {
      candidates.push_back(conn);
    }
  }
  if (!candidates.empty()) {
    const ConnId pick = rng().Choice(candidates);
    Peer& p = peers_.at(pick);
    p.optimistic = true;
    if (p.am_choking) {
      p.am_choking = false;
      auto msg = std::make_unique<bt::ChokeMsg>();
      msg->choked = false;
      AccountControlOut(msg->wire_bytes);
      net().Send(pick, self(), std::move(msg));
    }
  }
  queue().ScheduleAfter(config_.optimistic_period, [this] { RotateOptimistic(); });
}

int BitTorrent::num_unchoked() const {
  int n = 0;
  for (const auto& [conn, p] : peers_) {
    if (!p.am_choking) {
      ++n;
    }
  }
  return n;
}

}  // namespace bullet

namespace bullet {

void RegisterBitTorrentProtocol() {
  ProtocolRegistry::Entry entry;
  entry.key = "bittorrent";
  entry.display_name = "BitTorrent";
  entry.description = "BitTorrent baseline: tracker peer lists, rarest-first pieces, "
                      "tit-for-tat choking";
  entry.encoded_stream = false;
  entry.config_type = &typeid(BitTorrentConfig);
  entry.make = [](const ProtocolRegistry::SessionEnv& env) -> ProtocolRegistry::NodeFactory {
    BitTorrentConfig config;
    if (const auto* c = std::any_cast<BitTorrentConfig>(&env.spec->protocol_config)) {
      config = *c;
    }
    const FileParams file = env.spec->file;
    const NodeId source = env.spec->source;
    const std::optional<StreamingSpec> streaming = env.spec->streaming;
    const SimTime session_start = env.spec->start;
    return [config, file, source, streaming, session_start](const Protocol::Context& ctx) {
      auto p = std::make_unique<BitTorrent>(ctx, file, source, config);
      if (streaming.has_value()) {
        p->ConfigureStreaming(*streaming, session_start);
      }
      return std::unique_ptr<Protocol>(std::move(p));
    };
  };
  ProtocolRegistry::Global().Register(std::move(entry));
}

}  // namespace bullet
