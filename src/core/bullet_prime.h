// Bullet' (Bullet prime) — the paper's primary contribution (Section 3).
//
// Architecture recap (Fig. 1): an overlay tree carries control traffic and RanSub
// epochs; the source pushes file blocks round-robin to its tree children; every other
// node pulls blocks over an adaptive mesh of peers discovered through RanSub. Nodes
// adapt (a) how many peers to receive from and send to (Fig. 2 pseudocode plus the
// 1.5-sigma trim), and (b) how many requests to keep outstanding per sender (Fig. 3,
// the XCP-derived controller). Availability spreads through incremental diffs that
// are self-clocking: piggybacked on served blocks, pushed when a receiver goes idle,
// and pulled explicitly when a receiver is about to run dry.

#ifndef SRC_CORE_BULLET_PRIME_H_
#define SRC_CORE_BULLET_PRIME_H_

#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"
#include "src/core/adaptation.h"
#include "src/core/config.h"
#include "src/core/messages.h"
#include "src/core/request_strategy.h"
#include "src/overlay/tree_overlay.h"
#include "src/sim/scale/stable_flat_map.h"

namespace bullet {

class BulletPrime : public TreeOverlayProtocol {
 public:
  BulletPrime(const Context& ctx, const FileParams& file, NodeId source, const ControlTree* tree,
              const BulletPrimeConfig& config);

  void Start() override;

  // Introspection for tests.
  int num_senders() const;
  int num_receivers() const { return static_cast<int>(receivers_.size()); }
  int max_senders() const { return max_senders_; }
  double desired_outstanding(NodeId sender) const;
  int outstanding_to(NodeId sender) const;

  // Diagnostic snapshot of one peering (tests and the inspect example).
  struct SenderDebug {
    NodeId node = -1;
    bool active = false;
    size_t has_count = 0;        // blocks known available at the sender
    size_t raw_candidates = 0;   // candidate entries (including stale)
    size_t valid_candidates = 0; // not held, not requested elsewhere
    int outstanding = 0;
    double desired = 0;
    bool diff_request_inflight = false;
  };
  std::vector<SenderDebug> DebugSenders() const;
  bool push_done() const { return push_done_; }

 protected:
  void OnProtocolMessage(ConnId conn, NodeId from, std::unique_ptr<Message> msg) override;
  void OnPeerConnUp(ConnId conn, NodeId peer, bool initiator) override;
  void OnPeerConnDown(ConnId conn, NodeId peer) override;
  void OnRanSubEpoch(const std::vector<PeerSummary>& subset) override;
  PeerSummary MakeSummary() override;
  void OnFileComplete() override;

 private:
  // ---------- receiving role ----------
  struct Sender {
    NodeId node = -1;
    ConnId conn = -1;
    bool active = false;  // peering accepted
    Bitmap has;           // blocks known available at this sender
    CandidateSet candidates;
    int outstanding = 0;
    double desired = 3.0;
    bool mark_inflight = false;
    bool diff_request_inflight = false;
    // Set when a diff request came back empty; cleared by any fresh availability.
    // Prevents a dry receiver from polling an empty-handed sender at RTT rate — the
    // sender's idle-diff push (Section 3.3.4) is the wake-up channel instead.
    bool diff_request_exhausted = false;
    Ewma rate_Bps{0.3};  // receiver-measured bandwidth from this sender
    SimTime last_arrival = -1;
    SimTime connected_at = 0;
    int64_t epoch_bytes = 0;
  };

  // ---------- sending role ----------
  struct Receiver {
    NodeId node = -1;
    ConnId conn = -1;
    Bitmap told;  // blocks this receiver has been told about (or requested)
    bool diff_dirty = false;
    float reported_total_in_bps = 0;
    int64_t epoch_bytes = 0;
    SimTime connected_at = 0;
  };

  void SourcePushTick();
  void StreamRequestTick();
  void ConnectToSender(NodeId node);
  void DisconnectSender(ConnId conn, Sender& s);
  void IssueRequests(Sender& s);
  int OutstandingLimit(const Sender& s) const;
  void HandleAvailability(Sender& s, const std::vector<uint32_t>& ids);
  void OnBlockMsg(ConnId conn, NodeId from, bp::BlockMsg& msg);
  void OnBlockRequest(ConnId conn, bp::BlockRequestMsg& msg);
  void ServeBlock(Receiver& r, uint32_t id, bool marked);
  void SendFullDiff(Receiver& r);
  void MarkReceiversDirtyOnNewBlock();
  void FlushDirtyDiffs();
  void ManageSenderSet(double epoch_sec, const std::vector<PeerSummary>& subset);
  void ManageReceiverSet(double epoch_sec);
  double TotalIncomingBps() const;

  BulletPrimeConfig config_;

  // Arena-backed (mega-swarm): same ascending-ConnId iteration order as the
  // std::map it replaced, so results stay byte-identical.
  StableFlatMap<ConnId, Sender> senders_;
  std::set<NodeId> sender_nodes_;  // active + pending, to avoid duplicate peering
  std::unordered_map<uint32_t, ConnId> requested_;  // block id -> sender conn
  std::vector<int> rarity_;                         // per block id: senders holding it

  StableFlatMap<ConnId, Receiver> receivers_;

  PeerSetState sender_adapt_;
  PeerSetState receiver_adapt_;
  int max_senders_ = 10;
  int max_receivers_ = 10;
  SimTime last_epoch_at_ = 0;

  // Source push state.
  uint32_t next_push_block_ = 0;
  size_t next_push_child_ = 0;
  bool push_done_ = false;
  bool push_scheduled_ = false;

  bool diff_flush_scheduled_ = false;
  Ewma incoming_total_Bps_{0.3};
};

// Registers "bullet-prime" in ProtocolRegistry::Global(). Idempotent; the
// workload harness calls it once (EnsureBuiltinProtocolsRegistered).
void RegisterBulletPrimeProtocol();

}  // namespace bullet

#endif  // SRC_CORE_BULLET_PRIME_H_
