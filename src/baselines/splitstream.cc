#include "src/baselines/splitstream.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/overlay/protocol_registry.h"

namespace bullet {

SplitStream::SplitStream(const Context& ctx, const FileParams& file, NodeId source,
                         const StripeForest* forest, const SplitStreamConfig& config)
    : DisseminationProtocol(ctx, file, source),
      config_(config),
      forest_(forest),
      stripe_children_(static_cast<size_t>(config.num_stripes)) {}

void SplitStream::Start() {
  // Group our stripe parents: one connection per distinct parent node, announcing
  // every stripe it feeds us on.
  stripe_parent_.assign(static_cast<size_t>(config_.num_stripes), -1);
  std::map<NodeId, std::vector<int>> by_parent;
  for (int stripe = 0; stripe < config_.num_stripes; ++stripe) {
    const NodeId p = forest_->trees[static_cast<size_t>(stripe)].parent[static_cast<size_t>(self())];
    if (p >= 0) {
      stripe_parent_[static_cast<size_t>(stripe)] = p;
      by_parent[p].push_back(stripe);
    }
  }
  for (const auto& [parent, stripes] : by_parent) {
    LinkParent(parent);
  }
  if (is_source()) {
    queue().ScheduleAfter(SecToSim(1.0), [this] { SourcePushTick(); });
  }
}

void SplitStream::LinkParent(NodeId parent) {
  if (parent_conns_.count(parent) != 0) {
    return;
  }
  if (net().IsNodeFailed(parent)) {
    RepairStripes(parent);  // reassigns its stripes and links the survivors
    return;
  }
  if (!net().NodeJoined(parent)) {
    // The forest spans the full member set, but this parent joins later; a
    // hello sent now would reach a node without a protocol and be lost.
    awaiting_join_.insert(parent);
    if (!join_retry_scheduled_) {
      join_retry_scheduled_ = true;
      queue().ScheduleAfter(config_.join_retry, [this] { JoinRetryTick(); });
    }
    return;
  }
  const ConnId conn = net().Connect(self(), parent);
  if (conn >= 0) {
    parent_conns_[parent] = conn;  // OnConnUp announces the assigned stripes.
  }
}

void SplitStream::JoinRetryTick() {
  join_retry_scheduled_ = false;
  if (net().queue().stopped() || net().IsNodeFailed(self())) {
    return;
  }
  std::vector<NodeId> ready;
  for (const NodeId p : awaiting_join_) {
    if (net().NodeJoined(p) || net().IsNodeFailed(p)) {
      ready.push_back(p);
    }
  }
  for (const NodeId p : ready) {
    awaiting_join_.erase(p);
    // Only link parents that still feed us a stripe (repair may have moved
    // every orphaned stripe elsewhere while we waited).
    bool feeds_us = false;
    for (int stripe = 0; stripe < config_.num_stripes; ++stripe) {
      if (stripe_parent_[static_cast<size_t>(stripe)] == p) {
        feeds_us = true;
        break;
      }
    }
    if (feeds_us) {
      LinkParent(p);
    }
  }
  if (!awaiting_join_.empty() && !join_retry_scheduled_) {
    join_retry_scheduled_ = true;
    queue().ScheduleAfter(config_.join_retry, [this] { JoinRetryTick(); });
  }
}

void SplitStream::OnConnUp(ConnId conn, NodeId peer, bool initiator) {
  if (!initiator) {
    return;
  }
  auto it = parent_conns_.find(peer);
  if (it == parent_conns_.end() || it->second != conn) {
    return;
  }
  up_parent_conns_.insert(conn);
  // Announce every stripe currently assigned to this parent — the forest
  // parents at start, plus any stripes regrafted here while the handshake
  // was in flight.
  auto hello = std::make_unique<ss::StripeHelloMsg>();
  for (int stripe = 0; stripe < config_.num_stripes; ++stripe) {
    if (stripe_parent_[static_cast<size_t>(stripe)] == peer) {
      hello->stripes.push_back(stripe);
    }
  }
  hello->Finalize();
  AccountControlOut(hello->wire_bytes);
  net().Send(conn, self(), std::move(hello));
}

void SplitStream::OnConnDown(ConnId conn, NodeId peer) {
  up_parent_conns_.erase(conn);
  const auto pit = parent_conns_.find(peer);
  const bool was_parent = pit != parent_conns_.end() && pit->second == conn;
  if (was_parent) {
    parent_conns_.erase(pit);
  }
  pending_.erase(conn);
  for (auto& kids : stripe_children_) {
    for (size_t i = 0; i < kids.size();) {
      if (kids[i] == conn) {
        kids[i] = kids.back();
        kids.pop_back();
      } else {
        ++i;
      }
    }
  }
  if (was_parent && !net().IsNodeFailed(self()) && !net().queue().stopped()) {
    RepairStripes(peer);
  }
}

void SplitStream::RepairStripes(NodeId failed) {
  // Deterministic reparenting: each orphaned stripe climbs its original tree's
  // ancestor chain from the departed parent, skipping failed nodes. The source
  // roots every stripe tree and never departs, so the climb terminates.
  std::map<NodeId, std::vector<int>> regraft;
  for (int stripe = 0; stripe < config_.num_stripes; ++stripe) {
    if (stripe_parent_[static_cast<size_t>(stripe)] != failed) {
      continue;
    }
    NodeId q = failed;
    while (q >= 0 && net().IsNodeFailed(q)) {
      q = forest_->trees[static_cast<size_t>(stripe)].parent[static_cast<size_t>(q)];
    }
    if (q < 0) {
      q = source_;
    }
    stripe_parent_[static_cast<size_t>(stripe)] = q;
    regraft[q].push_back(stripe);
  }
  for (const auto& [parent, stripes] : regraft) {
    auto it = parent_conns_.find(parent);
    if (it == parent_conns_.end()) {
      LinkParent(parent);  // OnConnUp (or the join poll) announces the stripes.
      continue;
    }
    if (up_parent_conns_.count(it->second) == 0) {
      continue;  // Handshake in flight; OnConnUp will announce these stripes too.
    }
    auto hello = std::make_unique<ss::StripeHelloMsg>();
    hello->stripes = stripes;
    hello->Finalize();
    AccountControlOut(hello->wire_bytes);
    net().Send(it->second, self(), std::move(hello));
  }
}

void SplitStream::OnMessage(ConnId conn, NodeId /*from*/, std::unique_ptr<Message> msg) {
  switch (msg->type) {
    case ss::StripeHelloMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      for (const int stripe : static_cast<ss::StripeHelloMsg&>(*msg).stripes) {
        if (stripe >= 0 && stripe < config_.num_stripes) {
          stripe_children_[static_cast<size_t>(stripe)].push_back(conn);
        }
      }
      return;
    }
    case ss::StripeBlockMsg::kType: {
      const auto& block = static_cast<ss::StripeBlockMsg&>(*msg);
      AcceptBlock(block.block_id, block.wire_bytes);
      Forward(static_cast<int>(block.block_id) % config_.num_stripes, block.block_id);
      return;
    }
    default:
      return;
  }
}

void SplitStream::SourcePushTick() {
  const uint32_t total = file_.encoded ? file_.BlockSpace() : file_.num_blocks;
  // Streaming mode: the source mints at the stream bitrate, not line rate. The
  // encoded id space wraps onto playback positions (id mod n), so the paced
  // stream keeps refilling positions a subtree missed during an outage.
  const uint32_t released =
      stream() == nullptr
          ? total
          : static_cast<uint32_t>(std::min<uint64_t>(total, stream()->BlocksReleasable(now())));
  while (next_push_block_ < released) {
    const int stripe = static_cast<int>(next_push_block_) % config_.num_stripes;
    // Pace generation: only mint the next block when at least one child of this
    // stripe has a fully drained pipe; otherwise retry shortly. Slow children build
    // a backpressured pending queue instead of missing blocks.
    bool any_room = false;
    for (const ConnId conn : stripe_children_[static_cast<size_t>(stripe)]) {
      const auto pit = pending_.find(conn);
      const bool backlog = pit != pending_.end() && !pit->second.empty();
      if (!backlog && net().QueuedBytes(conn, self()) <
                          config_.forward_queue_blocks * file_.block_bytes) {
        any_room = true;
        break;
      }
    }
    if (!any_room) {
      break;
    }
    if (file_.encoded) {
      have_.Set(next_push_block_);
      sketch_.AddBlock(next_push_block_);
    }
    Forward(stripe, next_push_block_);
    ++next_push_block_;
  }
  if (next_push_block_ < total && !net().queue().stopped()) {
    queue().ScheduleAfter(config_.source_push_retry, [this] { SourcePushTick(); });
  }
}

void SplitStream::Forward(int stripe, uint32_t id) {
  for (const ConnId conn : stripe_children_[static_cast<size_t>(stripe)]) {
    pending_[conn].push_back(id);
  }
  DrainPending();
}

void SplitStream::DrainPending() {
  bool backlog = false;
  for (auto& [conn, q] : pending_) {
    while (!q.empty() &&
           net().QueuedBytes(conn, self()) < config_.forward_queue_blocks * file_.block_bytes) {
      auto msg = std::make_unique<ss::StripeBlockMsg>();
      msg->block_id = q.front();
      q.pop_front();
      msg->Finalize(file_.block_bytes);
      net().Send(conn, self(), std::move(msg));
    }
    backlog |= !q.empty();
  }
  if (backlog && !drain_scheduled_ && !net().queue().stopped()) {
    drain_scheduled_ = true;
    queue().ScheduleAfter(config_.drain_retry, [this] {
      drain_scheduled_ = false;
      DrainPending();
    });
  }
}

}  // namespace bullet

namespace bullet {

void RegisterSplitStreamProtocol() {
  ProtocolRegistry::Entry entry;
  entry.key = "splitstream";
  entry.display_name = "SplitStream";
  entry.description = "SplitStream baseline: k interior-node-disjoint stripe trees over "
                      "a source-encoded stream";
  entry.encoded_stream = true;
  entry.requires_full_span = true;
  entry.config_type = &typeid(SplitStreamConfig);
  entry.make = [](const ProtocolRegistry::SessionEnv& env) -> ProtocolRegistry::NodeFactory {
    SplitStreamConfig config;
    if (const auto* c = std::any_cast<SplitStreamConfig>(&env.spec->protocol_config)) {
      config = *c;
    }
    // The stripe forest is interior-disjoint over the *whole* node-id space
    // (node v is interior only in stripe v mod k); a session over a subset
    // would route stripes through nodes that never instantiate a protocol.
    BULLET_CHECK(static_cast<int>(env.spec->members.size()) == env.num_nodes &&
                 "splitstream sessions must span every node in the network");
    Rng forest_rng(env.seed ^ 0x517cc1b727220a95ULL);
    auto forest = std::make_shared<StripeForest>(
        StripeForest::Build(env.num_nodes, config.num_stripes, env.spec->source, forest_rng));
    const FileParams file = env.spec->file;
    const NodeId source = env.spec->source;
    const std::optional<StreamingSpec> streaming = env.spec->streaming;
    const SimTime session_start = env.spec->start;
    return [config, file, source, forest, streaming,
            session_start](const Protocol::Context& ctx) {
      auto p = std::make_unique<SplitStream>(ctx, file, source, forest.get(), config);
      if (streaming.has_value()) {
        p->ConfigureStreaming(*streaming, session_start);
      }
      return std::unique_ptr<Protocol>(std::move(p));
    };
  };
  ProtocolRegistry::Global().Register(std::move(entry));
}

}  // namespace bullet
