#include "src/harness/scenarios.h"

#include <memory>
#include <utility>

#include "src/harness/workload_gen.h"

namespace bullet {

std::string ScenarioSystemOr(const ScenarioConfig& cfg, const std::string& fallback) {
  return cfg.system.empty() ? fallback : cfg.system;
}

std::string ScenarioSubsetSystemOr(const ScenarioConfig& cfg, const std::string& fallback) {
  if (cfg.system.empty()) {
    return fallback;
  }
  EnsureBuiltinProtocolsRegistered();
  const ProtocolRegistry::Entry* entry = ProtocolRegistry::Global().Find(cfg.system);
  if (entry == nullptr || entry->requires_full_span) {
    return fallback;
  }
  return cfg.system;
}

std::unique_ptr<Topology> BuildScenarioTopology(const ScenarioConfig& cfg) {
  Rng rng(cfg.seed ^ 0x74d3c2e1b5a69788ULL);
  switch (cfg.topo) {
    case ScenarioConfig::Topo::kMesh: {
      MeshTopology::MeshParams mesh;
      mesh.num_nodes = cfg.num_nodes;
      mesh.core_loss_min = cfg.loss_min;
      mesh.core_loss_max = cfg.loss_max;
      return std::make_unique<MeshTopology>(MeshTopology::FullMesh(mesh, rng));
    }
    case ScenarioConfig::Topo::kConstrained:
      return std::make_unique<MeshTopology>(MeshTopology::ConstrainedAccess(cfg.num_nodes, rng));
    case ScenarioConfig::Topo::kUniform:
      return std::make_unique<MeshTopology>(MeshTopology::Uniform(
          cfg.num_nodes, cfg.uniform_bps, cfg.uniform_delay, cfg.loss_min, cfg.loss_max, rng));
    case ScenarioConfig::Topo::kWideArea:
      return std::make_unique<MeshTopology>(MeshTopology::WideArea(cfg.num_nodes, rng));
    case ScenarioConfig::Topo::kTransitStub: {
      RoutedTopology::TransitStubParams params = cfg.transit_stub;
      params.num_nodes = cfg.num_nodes;
      params.transit_loss_min = cfg.loss_min;
      params.transit_loss_max = cfg.loss_max;
      auto topo = std::make_unique<RoutedTopology>(RoutedTopology::TransitStub(params, rng));
      if (cfg.compress_routes) {
        topo->EnableSegmentCompression();
      }
      return topo;
    }
  }
  MeshTopology::MeshParams mesh;
  mesh.num_nodes = cfg.num_nodes;
  return std::make_unique<MeshTopology>(MeshTopology::FullMesh(mesh, rng));
}

bool ParseTopologyName(const std::string& name, ScenarioConfig::Topo* topo) {
  if (name == "mesh") {
    *topo = ScenarioConfig::Topo::kMesh;
    return true;
  }
  if (name == "transit-stub") {
    *topo = ScenarioConfig::Topo::kTransitStub;
    return true;
  }
  return false;
}

WorkloadResult RunScenarioWorkload(const ScenarioConfig& cfg, const WorkloadSpec& workload) {
  EnsureBuiltinProtocolsRegistered();
  WorkloadParams params;
  params.seed = cfg.seed;
  params.deadline = cfg.deadline;
  params.record_arrivals = cfg.record_arrivals;
  params.full_recompute_allocator = cfg.full_recompute_allocator;
  params.skip_idle_ticks = cfg.skip_idle_ticks;
  params.quantum = cfg.quantum;
  params.num_threads = cfg.num_threads;
  params.aggregate_flows = cfg.aggregate_flows;

  std::unique_ptr<Topology> topology = BuildScenarioTopology(cfg);
  if (workload.access_links != nullptr) {
    // Access-link cohorts rewrite per-node link parameters before the network
    // snapshots the topology; the stream is decorrelated from the topology
    // builder's (same base seed, different salt).
    Rng access_rng(cfg.seed ^ 0xa0761d6478bd642fULL);
    workload.access_links->Apply(*topology, access_rng);
  }
  WorkloadExperiment exp(std::move(topology), params);
  if (workload.churn != nullptr) {
    exp.SetChurnModel(workload.churn);
  }
  if (cfg.dynamic_bw) {
    StartPeriodicBandwidthChanges(exp.net(), BandwidthDynamicsParams{});
  }
  for (SessionSpec session : workload.sessions) {
    if (session.file.num_blocks == 0) {
      // Inherit the scenario's file sizing (the legacy single-session rule).
      session.file.block_bytes = cfg.block_bytes;
      session.file.num_blocks = static_cast<uint32_t>(cfg.file_mb * 1024.0 * 1024.0 /
                                                      static_cast<double>(cfg.block_bytes));
    }
    if (cfg.force_encoded) {
      session.file.encoded = true;
    }
    if (!session.streaming.has_value() &&
        (cfg.stream_bitrate_mbps > 0 || cfg.stream_window_blocks > 0)) {
      StreamingSpec stream;
      if (cfg.stream_bitrate_mbps > 0) {
        stream.bitrate_mbps = cfg.stream_bitrate_mbps;
      }
      if (cfg.stream_window_blocks > 0) {
        stream.window_blocks = cfg.stream_window_blocks;
      }
      session.streaming = stream;
    }
    exp.AddSession(session);
  }
  return exp.Run();
}

ScenarioResult ToScenarioResult(const SessionResult& session, const WorkloadResult& run) {
  ScenarioResult result;
  result.name = session.name;
  result.completion_sec = session.completion_sec;
  result.download_sec = session.download_sec;
  result.duplicate_fraction = session.duplicate_fraction;
  result.control_overhead = session.control_overhead;
  result.completed = session.completed;
  result.receivers = session.receivers;
  result.max_shared_link_flows = run.max_shared_link_flows;
  result.events_executed = run.events_executed;
  result.allocator_epochs = run.allocator_epochs;
  result.sim_bytes_sent = run.sim_bytes_sent;
  result.route_cache_bytes = run.route_cache_bytes;
  result.path_pool_bytes = run.path_pool_bytes;
  result.arena_peak_bytes = run.arena_peak_bytes;
  return result;
}

ScenarioResult RunScenario(const std::string& protocol, const ScenarioConfig& cfg,
                           const BulletPrimeConfig& bp) {
  EnsureBuiltinProtocolsRegistered();
  WorkloadSpec workload;
  SessionSpec session;
  session.protocol = protocol;
  session.source = 0;
  session.seed = cfg.seed;
  // `bp` applies only when the protocol actually takes a BulletPrimeConfig —
  // the registry now declares each protocol's config type and the harness
  // rejects mismatches, so attaching it unconditionally would abort for the
  // baselines (the historical enum dispatch just let them ignore it).
  const ProtocolRegistry::Entry* entry = ProtocolRegistry::Global().Find(protocol);
  if (entry != nullptr && entry->config_type != nullptr &&
      *entry->config_type == typeid(BulletPrimeConfig)) {
    session.protocol_config = bp;
  }
  workload.sessions.push_back(std::move(session));
  const WorkloadResult r = RunScenarioWorkload(cfg, workload);
  return ToScenarioResult(r.sessions.front(), r);
}

double OptimalAccessLinkSeconds(double file_mb, double access_bps) {
  return file_mb * 1024.0 * 1024.0 * 8.0 / access_bps;
}

double TcpFeasibleSeconds(double file_mb, double access_bps, double startup_sec) {
  // Protocol efficiency: TCP/IP header overhead on 1460-byte segments plus block
  // headers (~0.2%), and a sustained-utilization factor for congestion avoidance.
  constexpr double kHeaderEfficiency = 1460.0 / 1500.0;
  constexpr double kTcpUtilization = 0.95;
  const double goodput = access_bps * kHeaderEfficiency * kTcpUtilization;
  return startup_sec + file_mb * 1024.0 * 1024.0 * 8.0 / goodput;
}

}  // namespace bullet
