#include "src/common/bitmap.h"

#include <bit>

namespace bullet {

namespace {
constexpr size_t kWordBits = 64;
constexpr size_t kDiffHeaderBytes = 8;
}  // namespace

Bitmap::Bitmap(size_t size) { Resize(size); }

void Bitmap::Resize(size_t size) {
  size_ = size;
  words_.assign((size + kWordBits - 1) / kWordBits, 0);
  count_ = 0;
}

bool Bitmap::Test(size_t i) const {
  if (i >= size_) {
    return false;
  }
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

bool Bitmap::Set(size_t i) {
  if (i >= size_) {
    return false;
  }
  uint64_t& w = words_[i / kWordBits];
  const uint64_t mask = uint64_t{1} << (i % kWordBits);
  if (w & mask) {
    return false;
  }
  w |= mask;
  ++count_;
  return true;
}

void Bitmap::Clear(size_t i) {
  if (i >= size_) {
    return;
  }
  uint64_t& w = words_[i / kWordBits];
  const uint64_t mask = uint64_t{1} << (i % kWordBits);
  if (w & mask) {
    w &= ~mask;
    --count_;
  }
}

void Bitmap::ClearAll() {
  words_.assign(words_.size(), 0);
  count_ = 0;
}

size_t Bitmap::FirstClear() const {
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    if (words_[wi] != ~uint64_t{0}) {
      const size_t bit = static_cast<size_t>(std::countr_one(words_[wi]));
      const size_t idx = wi * kWordBits + bit;
      if (idx < size_) {
        return idx;
      }
    }
  }
  return size_;
}

std::vector<uint32_t> Bitmap::SetBits() const {
  std::vector<uint32_t> out;
  out.reserve(count_);
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.push_back(static_cast<uint32_t>(wi * kWordBits + static_cast<size_t>(bit)));
      w &= w - 1;
    }
  }
  return out;
}

std::vector<uint32_t> Bitmap::DiffFrom(const Bitmap& other) const {
  std::vector<uint32_t> out;
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    const uint64_t theirs = wi < other.words_.size() ? other.words_[wi] : 0;
    uint64_t w = words_[wi] & ~theirs;
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.push_back(static_cast<uint32_t>(wi * kWordBits + static_cast<size_t>(bit)));
      w &= w - 1;
    }
  }
  return out;
}

size_t Bitmap::IntersectCount(const Bitmap& other) const {
  size_t n = 0;
  const size_t words = words_.size() < other.words_.size() ? words_.size() : other.words_.size();
  for (size_t wi = 0; wi < words; ++wi) {
    n += static_cast<size_t>(std::popcount(words_[wi] & other.words_[wi]));
  }
  return n;
}

size_t Bitmap::WireBytes() const { return kDiffHeaderBytes + (size_ + 7) / 8; }

}  // namespace bullet
