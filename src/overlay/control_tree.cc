#include "src/overlay/control_tree.h"

namespace bullet {

int ControlTree::depth(NodeId n) const {
  int d = 0;
  while (parent[static_cast<size_t>(n)] >= 0) {
    n = parent[static_cast<size_t>(n)];
    ++d;
  }
  return d;
}

ControlTree ControlTree::Random(int num_nodes, int max_fanout, Rng& rng) {
  std::vector<NodeId> joiners;
  joiners.reserve(static_cast<size_t>(num_nodes) - 1);
  for (NodeId n = 1; n < num_nodes; ++n) {
    joiners.push_back(n);
  }
  return RandomStaged(num_nodes, 0, {joiners}, max_fanout, rng);
}

ControlTree ControlTree::RandomStaged(int num_nodes, NodeId root,
                                      const std::vector<std::vector<NodeId>>& stages,
                                      int max_fanout, Rng& rng) {
  ControlTree tree;
  tree.parent.assign(static_cast<size_t>(num_nodes), -1);
  tree.children.resize(static_cast<size_t>(num_nodes));
  tree.subtree_size.assign(static_cast<size_t>(num_nodes), 1);

  // Nodes join at the root and descend (Overcast/Bullet-style): the source fills its
  // fanout first — it is the only node that pushes fresh blocks, so its degree sets
  // the system's injection capacity — and later joiners attach uniformly at random
  // among nodes with spare capacity. Stages keep the join schedule: a stage only
  // attaches to nodes from earlier stages (or earlier in its own shuffle).
  std::vector<NodeId> open = {root};
  for (const std::vector<NodeId>& stage : stages) {
    std::vector<NodeId> joiners = stage;
    rng.Shuffle(joiners);
    for (const NodeId n : joiners) {
      size_t pick = 0;
      if (static_cast<int>(tree.children[static_cast<size_t>(root)].size()) >= max_fanout ||
          open[0] != root) {
        pick = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(open.size()) - 1));
      }
      const NodeId p = open[pick];
      tree.parent[static_cast<size_t>(n)] = p;
      tree.children[static_cast<size_t>(p)].push_back(n);
      if (static_cast<int>(tree.children[static_cast<size_t>(p)].size()) >= max_fanout) {
        open[pick] = open.back();
        open.pop_back();
      }
      open.push_back(n);
    }
  }

  // Subtree sizes bottom-up: process nodes by decreasing depth.
  std::vector<NodeId> order;
  order.reserve(open.size());
  order.push_back(root);
  for (size_t i = 0; i < order.size(); ++i) {
    for (const NodeId c : tree.children[static_cast<size_t>(order[i])]) {
      order.push_back(c);
    }
  }
  for (size_t i = order.size(); i-- > 0;) {
    const NodeId n = order[i];
    const NodeId p = tree.parent[static_cast<size_t>(n)];
    if (p >= 0) {
      tree.subtree_size[static_cast<size_t>(p)] += tree.subtree_size[static_cast<size_t>(n)];
    }
  }
  return tree;
}

}  // namespace bullet
