#include "src/overlay/control_tree.h"

#include <gtest/gtest.h>

#include <set>

namespace bullet {
namespace {

TEST(ControlTree, SingleNode) {
  Rng rng(1);
  ControlTree tree = ControlTree::Random(1, 4, rng);
  EXPECT_TRUE(tree.IsRoot(0));
  EXPECT_EQ(tree.subtree_size[0], 1);
  EXPECT_TRUE(tree.children[0].empty());
}

TEST(ControlTree, AllNodesAttached) {
  Rng rng(2);
  ControlTree tree = ControlTree::Random(100, 4, rng);
  int roots = 0;
  for (NodeId n = 0; n < 100; ++n) {
    if (tree.parent[static_cast<size_t>(n)] < 0) {
      ++roots;
      EXPECT_EQ(n, 0);
    }
  }
  EXPECT_EQ(roots, 1);
  EXPECT_EQ(tree.subtree_size[0], 100);
}

TEST(ControlTree, FanoutBound) {
  Rng rng(3);
  const int fanout = 4;
  ControlTree tree = ControlTree::Random(200, fanout, rng);
  for (NodeId n = 0; n < 200; ++n) {
    EXPECT_LE(tree.children[static_cast<size_t>(n)].size(), static_cast<size_t>(fanout));
  }
}

TEST(ControlTree, ParentChildConsistency) {
  Rng rng(4);
  ControlTree tree = ControlTree::Random(60, 3, rng);
  for (NodeId n = 0; n < 60; ++n) {
    for (const NodeId c : tree.children[static_cast<size_t>(n)]) {
      EXPECT_EQ(tree.parent[static_cast<size_t>(c)], n);
    }
  }
}

TEST(ControlTree, SubtreeSizesConsistent) {
  Rng rng(5);
  ControlTree tree = ControlTree::Random(80, 4, rng);
  for (NodeId n = 0; n < 80; ++n) {
    int sum = 1;
    for (const NodeId c : tree.children[static_cast<size_t>(n)]) {
      sum += tree.subtree_size[static_cast<size_t>(c)];
    }
    EXPECT_EQ(tree.subtree_size[static_cast<size_t>(n)], sum);
  }
}

TEST(ControlTree, NoCycles) {
  Rng rng(6);
  ControlTree tree = ControlTree::Random(150, 4, rng);
  for (NodeId n = 0; n < 150; ++n) {
    std::set<NodeId> seen;
    NodeId cur = n;
    while (cur >= 0) {
      EXPECT_TRUE(seen.insert(cur).second) << "cycle at node " << n;
      cur = tree.parent[static_cast<size_t>(cur)];
    }
    EXPECT_TRUE(seen.count(0) == 1);  // all paths reach the root
  }
}

TEST(ControlTree, DepthIsLogarithmicish) {
  Rng rng(7);
  ControlTree tree = ControlTree::Random(100, 4, rng);
  int max_depth = 0;
  for (NodeId n = 0; n < 100; ++n) {
    max_depth = std::max(max_depth, tree.depth(n));
  }
  // A random tree with fanout 4 on 100 nodes should not degenerate into a chain.
  EXPECT_LE(max_depth, 20);
  EXPECT_GE(max_depth, 3);
}

TEST(ControlTree, DeterministicGivenSeed) {
  Rng rng1(9);
  Rng rng2(9);
  ControlTree a = ControlTree::Random(50, 4, rng1);
  ControlTree b = ControlTree::Random(50, 4, rng2);
  EXPECT_EQ(a.parent, b.parent);
}

}  // namespace
}  // namespace bullet
