#include "src/harness/workload_gen.h"

#include <cmath>

#include "src/common/logging.h"

namespace bullet {

FixedOffsetArrivals::FixedOffsetArrivals(SimTime offset) : offset_(offset) {
  BULLET_CHECK(offset >= 0 && "arrival offsets must be non-negative");
}

std::vector<SimTime> FixedOffsetArrivals::Offsets(size_t receivers, Rng& /*rng*/) const {
  return std::vector<SimTime>(receivers, offset_);
}

FlashCrowdArrivals::FlashCrowdArrivals(double late_fraction, SimTime late_offset)
    : late_fraction_(late_fraction), late_offset_(late_offset) {
  BULLET_CHECK(late_fraction >= 0.0 && late_fraction <= 1.0 &&
               "flash-crowd late_fraction must be in [0, 1]");
  BULLET_CHECK(late_offset >= 0 && "arrival offsets must be non-negative");
}

std::vector<SimTime> FlashCrowdArrivals::Offsets(size_t receivers, Rng& rng) const {
  std::vector<SimTime> offsets(receivers, 0);
  std::vector<size_t> slots(receivers);
  for (size_t i = 0; i < receivers; ++i) {
    slots[i] = i;
  }
  const size_t late =
      static_cast<size_t>(late_fraction_ * static_cast<double>(receivers) + 0.5);
  for (const size_t i : rng.Sample(slots, late)) {
    offsets[i] = late_offset_;
  }
  return offsets;
}

DiurnalArrivals::DiurnalArrivals(double base_rate_per_sec, double amplitude, SimTime period,
                                 double phase)
    : base_rate_per_sec_(base_rate_per_sec),
      amplitude_(amplitude),
      period_(period),
      phase_(phase) {
  BULLET_CHECK(base_rate_per_sec > 0.0 && "diurnal base rate must be positive");
  BULLET_CHECK(amplitude >= 0.0 && amplitude <= 1.0 && "diurnal amplitude must be in [0, 1]");
  BULLET_CHECK(period > 0 && "diurnal period must be positive");
}

std::vector<SimTime> DiurnalArrivals::Offsets(size_t receivers, Rng& rng) const {
  // Thinning (Lewis & Shedler): draw candidate gaps from a homogeneous process
  // at the peak rate, accept each candidate with probability lambda(t)/peak.
  // Exact for any horizon, and every draw comes from the caller's stream.
  const double peak = base_rate_per_sec_ * (1.0 + amplitude_);
  const double period_sec = SimToSec(period_);
  std::vector<SimTime> offsets;
  offsets.reserve(receivers);
  double t_sec = 0.0;
  while (offsets.size() < receivers) {
    t_sec += rng.Exponential(1.0 / peak);
    const double lambda =
        base_rate_per_sec_ *
        (1.0 + amplitude_ * std::sin(2.0 * M_PI * t_sec / period_sec + phase_));
    if (rng.UniformDouble() * peak < lambda) {
      offsets.push_back(SecToSim(t_sec));
    }
  }
  return offsets;
}

SimTime InfiniteLifetime::Draw(size_t /*member_index*/, Rng& /*rng*/) const { return -1; }

ParetoLifetime::ParetoLifetime(double alpha, SimTime xm, bool depart_after_completion,
                               SimTime linger)
    : alpha_(alpha), xm_(xm), depart_after_completion_(depart_after_completion), linger_(linger) {
  BULLET_CHECK(alpha > 0.0 && "Pareto alpha must be positive");
  BULLET_CHECK(xm > 0 && "Pareto minimum lifetime must be positive");
  BULLET_CHECK(linger >= 0 && "post-completion linger must be non-negative");
}

SimTime ParetoLifetime::Draw(size_t /*member_index*/, Rng& rng) const {
  // Inverse CDF: L = xm * U^(-1/alpha) with U in (0, 1]. UniformDouble() is
  // [0, 1), so flip it — U = 0 would be an infinite draw.
  const double u = 1.0 - rng.UniformDouble();
  return static_cast<SimTime>(static_cast<double>(xm_) * std::pow(u, -1.0 / alpha_));
}

SeederDepartureLifetime::SeederDepartureLifetime(SimTime linger) : linger_(linger) {
  BULLET_CHECK(linger >= 0 && "post-completion linger must be non-negative");
}

SimTime SeederDepartureLifetime::Draw(size_t /*member_index*/, Rng& /*rng*/) const { return -1; }

UniformAccessLinks::UniformAccessLinks(double bps) : bps_(bps) {
  BULLET_CHECK(bps > 0.0 && "access bandwidth must be positive");
}

void UniformAccessLinks::Apply(Topology& topology, Rng& /*rng*/) const {
  for (NodeId n = 0; n < topology.num_nodes(); ++n) {
    topology.uplink(n).bandwidth_bps = bps_;
    topology.downlink(n).bandwidth_bps = bps_;
  }
}

DslAccessLinks::DslAccessLinks(double fraction, double down_bps, double up_bps)
    : fraction_(fraction), down_bps_(down_bps), up_bps_(up_bps) {
  BULLET_CHECK(fraction >= 0.0 && fraction <= 1.0 && "DSL cohort fraction must be in [0, 1]");
  BULLET_CHECK(down_bps > 0.0 && up_bps > 0.0 && "access bandwidth must be positive");
  BULLET_CHECK(down_bps >= up_bps && "a DSL cohort is down >> up; use down_bps >= up_bps");
}

void DslAccessLinks::Apply(Topology& topology, Rng& rng) const {
  std::vector<NodeId> candidates;
  candidates.reserve(static_cast<size_t>(topology.num_nodes()));
  for (NodeId n = 1; n < topology.num_nodes(); ++n) {
    candidates.push_back(n);
  }
  const size_t count =
      static_cast<size_t>(fraction_ * static_cast<double>(topology.num_nodes()) + 0.5);
  for (const NodeId n : rng.Sample(candidates, count)) {
    topology.downlink(n).bandwidth_bps = down_bps_;
    topology.uplink(n).bandwidth_bps = up_bps_;
  }
}

}  // namespace bullet
