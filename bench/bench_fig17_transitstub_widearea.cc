// Fig. 17 (extension, no paper figure): dissemination over a routed transit-stub
// graph. Stub domains hang off transit routers through 30 Mbps gateway links that
// every node in the domain shares, so cross-domain traffic is constrained by a
// handful of genuinely shared interior links instead of the mesh's per-pair
// private cores. Reports Bullet' vs BitTorrent completions plus the allocator's
// peak shared-link flow count.
//
// The scenario also measures what the routed representation costs to *build*:
// MemoryFootprintBytes() for transit-stub graphs at 500/1000/2000 overlay nodes
// (the shape scales stub domains with the node count), against the analytic
// dense-mesh core matrix for 2000 nodes. The committed baseline
// (bench/baselines/routed_topo_baseline.json) gates the growth ratio: doubling
// the nodes must grow the footprint ~linearly (ratio ~2; the dense mesh would
// be 4), which is what clears the ROADMAP's path past ~1000 nodes.

#include <algorithm>
#include <memory>
#include <string>

#include "bench/session_common.h"
#include "src/harness/scenario_registry.h"

namespace bullet {
namespace {

BULLET_SCENARIO_TRANSIT_STUB_DEFAULT(fig17_transitstub_widearea);

BULLET_SCENARIO(fig17_transitstub_widearea,
                "Extension — routed transit-stub wide-area dissemination") {
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kTransitStub;
  cfg.num_nodes = 60;
  cfg.file_mb = ScaledFileMb(20.0);
  cfg.block_bytes = 100 * 1024;  // the wide-area deployment's block size (Section 4.7)
  cfg.seed = 1701;
  ApplyScenarioOptions(opts, &cfg);
  // The scenario *is* the routed graph: series labels and the memory scalars
  // below all describe transit-stub, so a --topology override is ignored here
  // (like any other fixed-topology scenario).
  cfg.topo = ScenarioConfig::Topo::kTransitStub;
  cfg.transit_stub = ScaledTransitStub(cfg.num_nodes);

  ScenarioReport report(kScenarioName);
  int32_t shared_flows = 0;
  for (const char* system : {"bullet-prime", "bittorrent"}) {
    const ScenarioResult r = RunScenario(system, cfg);
    report.AddCompletion(r.name + " (transit-stub)", r);
    shared_flows = std::max(shared_flows, r.max_shared_link_flows);
  }
  report.AddScalar("max_flows_on_shared_link", shared_flows);

  // Topology-build memory scaling (no simulation, deterministic byte counts).
  double bytes_at[3] = {0.0, 0.0, 0.0};
  const int scales[3] = {500, 1000, 2000};
  for (int i = 0; i < 3; ++i) {
    Rng rng(cfg.seed ^ 0x74d3c2e1b5a69788ULL);
    const RoutedTopology topo = RoutedTopology::TransitStub(ScaledTransitStub(scales[i]), rng);
    bytes_at[i] = static_cast<double>(topo.MemoryFootprintBytes());
    report.AddScalar("routed_build_bytes_n" + std::to_string(scales[i]), bytes_at[i]);
  }
  report.AddScalar("routed_build_growth_2000_over_1000", bytes_at[2] / bytes_at[1]);
  // The dense mesh holds N^2 core LinkParams for 2000 nodes — the quadratic
  // wall the routed representation avoids.
  report.AddScalar("mesh_core_bytes_n2000", 2000.0 * 2000.0 * sizeof(LinkParams));
  return report;
}

}  // namespace
}  // namespace bullet
