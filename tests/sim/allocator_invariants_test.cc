// Property-style invariant layer over the max-min allocator pair (reference
// AllocateMaxMin vs hot-path IncrementalMaxMin), randomized over ~200 seeded
// instances. Locks down the contracts the network's incremental tick relies on:
//
//  1. feasibility      — no link oversubscribed, no flow above its cap;
//  2. max-min justice  — every flow is cap-limited or crosses a saturated link
//                        on which it has a maximal rate;
//  3. monotonicity     — removing a flow never decreases a survivor's rate;
//  4. bit-exactness    — IncrementalMaxMin (with its scratch reused across many
//                        epochs, including tie-heavy uniform instances) produces
//                        rates bit-identical to a fresh AllocateMaxMin.
//
// Run standalone with `ctest -L invariants`.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/bandwidth_allocator.h"

namespace bullet {
namespace {

constexpr double kUnlimited = 1e12;

struct Instance {
  std::vector<double> capacity;
  std::vector<FlowSpec> flows;
};

// Uniform instances produce exact FP ties (equal capacities, equal shares) —
// the adversarial case for bit-exactness; mixed instances cover the general
// case. Flows cross 1-3 links; ~30% are cap-limited.
Instance MakeInstance(Rng& rng, bool uniform) {
  Instance inst;
  const int num_links = static_cast<int>(rng.UniformInt(1, 40));
  const int num_flows = static_cast<int>(rng.UniformInt(1, 120));
  const double uniform_cap = rng.UniformDouble(0.5e6, 20e6);
  for (int l = 0; l < num_links; ++l) {
    inst.capacity.push_back(uniform ? uniform_cap : rng.UniformDouble(0.5e6, 20e6));
  }
  for (int i = 0; i < num_flows; ++i) {
    FlowSpec f;
    const int nlinks = static_cast<int>(rng.UniformInt(1, 3));
    for (int l = 0; l < nlinks; ++l) {
      f.links[l] = static_cast<int32_t>(rng.UniformInt(0, num_links - 1));
    }
    if (rng.Bernoulli(0.3)) {
      // Duplicate cap values (uniform case) stress equal-cap tie handling.
      f.cap_bps = uniform ? uniform_cap / 4.0 : rng.UniformDouble(0.1e6, 5e6);
    } else {
      f.cap_bps = kUnlimited;
    }
    inst.flows.push_back(f);
  }
  return inst;
}

std::vector<double> ReferenceRates(const Instance& inst) {
  std::vector<FlowSpec> flows = inst.flows;
  AllocateMaxMin(flows, inst.capacity);
  std::vector<double> rates;
  rates.reserve(flows.size());
  for (const FlowSpec& f : flows) {
    rates.push_back(f.rate_bps);
  }
  return rates;
}

std::vector<double> IncrementalRates(IncrementalMaxMin& alloc, const Instance& inst) {
  alloc.BeginEpoch();
  for (const double c : inst.capacity) {
    alloc.AddLink(c);
  }
  for (const FlowSpec& f : inst.flows) {
    alloc.AddFlow(f.links[0], f.links[1], f.links[2], f.cap_bps);
  }
  alloc.Allocate();
  return alloc.rates();
}

void CheckFeasibilityAndJustice(const Instance& inst, const std::vector<double>& rates) {
  const size_t num_links = inst.capacity.size();
  std::vector<double> used(num_links, 0.0);
  for (size_t i = 0; i < inst.flows.size(); ++i) {
    EXPECT_GE(rates[i], 0.0);
    EXPECT_LE(rates[i], inst.flows[i].cap_bps * (1.0 + 1e-9));
    for (const int32_t l : inst.flows[i].links) {
      if (l >= 0) {
        used[static_cast<size_t>(l)] += rates[i];
      }
    }
  }
  for (size_t l = 0; l < num_links; ++l) {
    EXPECT_LE(used[l], inst.capacity[l] * (1.0 + 1e-6)) << "link " << l << " oversubscribed";
  }

  // Max-min justice: a flow below its cap must cross a saturated link on which
  // no other flow holds a strictly higher rate (else its rate could be raised).
  constexpr double kTol = 1.0;  // 1 bps
  for (size_t i = 0; i < inst.flows.size(); ++i) {
    if (rates[i] >= inst.flows[i].cap_bps - kTol) {
      continue;  // cap-limited
    }
    bool justified = false;
    for (const int32_t l : inst.flows[i].links) {
      if (l < 0 || justified) {
        continue;
      }
      const size_t li = static_cast<size_t>(l);
      if (used[li] < inst.capacity[li] - kTol) {
        continue;  // not saturated
      }
      bool is_max = true;
      for (size_t j = 0; j < inst.flows.size(); ++j) {
        bool on_link = false;
        for (const int32_t gl : inst.flows[j].links) {
          on_link |= gl == l;
        }
        if (on_link && rates[j] > rates[i] + kTol) {
          is_max = false;
          break;
        }
      }
      justified = is_max;
    }
    EXPECT_TRUE(justified) << "flow " << i << " (rate " << rates[i]
                           << ") is neither cap-limited nor bottleneck-justified";
  }
}

class AllocatorInvariants : public ::testing::TestWithParam<int> {};

TEST_P(AllocatorInvariants, RandomizedEpochs) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 0x9e3779b97f4a7c15ULL + 1);
  const bool uniform = seed % 3 == 0;

  // One allocator across all epochs of the case: scratch reuse is part of what
  // is under test (stale state from epoch k must not leak into epoch k+1).
  IncrementalMaxMin alloc;

  Instance inst = MakeInstance(rng, uniform);
  for (int epoch = 0; epoch < 4; ++epoch) {
    const std::vector<double> reference = ReferenceRates(inst);
    const std::vector<double> incremental = IncrementalRates(alloc, inst);
    ASSERT_EQ(reference.size(), incremental.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      // Bit-exact, not approximate: the network reuses cached rates across
      // quanta, which is only sound if recomputation is exactly reproducible.
      EXPECT_EQ(reference[i], incremental[i]) << "flow " << i << " epoch " << epoch;
    }
    CheckFeasibilityAndJustice(inst, reference);

    // Mutate into the next epoch: drop a flow, add a flow, or change a capacity
    // (the three kinds of change the network's dirty-tracking reacts to).
    switch (rng.UniformInt(0, 2)) {
      case 0:
        if (inst.flows.size() > 1) {
          inst.flows.erase(inst.flows.begin() +
                           static_cast<long>(rng.UniformInt(0, static_cast<int64_t>(
                                                                   inst.flows.size() - 1))));
        }
        break;
      case 1: {
        FlowSpec f;
        f.links[0] =
            static_cast<int32_t>(rng.UniformInt(0, static_cast<int64_t>(inst.capacity.size()) - 1));
        f.cap_bps = rng.Bernoulli(0.5) ? rng.UniformDouble(0.1e6, 5e6) : kUnlimited;
        inst.flows.push_back(f);
        break;
      }
      default: {
        const size_t l =
            static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(inst.capacity.size()) - 1));
        inst.capacity[l] *= rng.Bernoulli(0.5) ? 0.5 : 2.0;
        break;
      }
    }
  }
}

TEST_P(AllocatorInvariants, RemovingAFlowNeverHurtsSurvivorsLexicographically) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 7919 + 17);
  Instance inst = MakeInstance(rng, seed % 4 == 0);
  const std::vector<double> before = ReferenceRates(inst);

  // Departure monotonicity. Note the naive per-survivor claim ("no survivor's
  // rate decreases") is FALSE for multi-link max-min: with L1=10 shared by
  // {A, B} and L2=4 shared by {B, C}, rates are A=8, B=2, C=2 — removing C
  // lifts B to 4 on L2, which costs A on L1 (A drops to 6). The true theorem:
  // the old survivor allocation stays feasible after a departure, and max-min
  // lexicographically maximizes the sorted rate vector over feasible
  // allocations, so the sorted survivor rates never decrease lexicographically
  // (in particular, the worst-off survivor never gets worse).
  const size_t removed =
      static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(inst.flows.size()) - 1));
  Instance reduced = inst;
  reduced.flows.erase(reduced.flows.begin() + static_cast<long>(removed));
  const std::vector<double> after = ReferenceRates(reduced);

  std::vector<double> old_sorted;
  for (size_t i = 0; i < before.size(); ++i) {
    if (i != removed) {
      old_sorted.push_back(before[i]);
    }
  }
  std::vector<double> new_sorted = after;
  std::sort(old_sorted.begin(), old_sorted.end());
  std::sort(new_sorted.begin(), new_sorted.end());
  ASSERT_EQ(old_sorted.size(), new_sorted.size());
  constexpr double kTol = 1.0;  // 1 bps, covers FP re-association
  for (size_t k = 0; k < new_sorted.size(); ++k) {
    if (std::abs(new_sorted[k] - old_sorted[k]) <= kTol) {
      continue;  // tied at this position; compare the next one
    }
    EXPECT_GT(new_sorted[k], old_sorted[k])
        << "sorted survivor rates decreased lexicographically at position " << k;
    break;
  }
  EXPECT_GE(new_sorted.front(), old_sorted.front() - kTol) << "worst-off survivor got worse";
}

INSTANTIATE_TEST_SUITE_P(RandomizedInstances, AllocatorInvariants, ::testing::Range(0, 100));

}  // namespace
}  // namespace bullet
