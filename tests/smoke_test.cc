// End-to-end smoke test: a small Bullet' swarm on the paper's mesh topology must
// deliver the full file to every node with bounded duplicate traffic.

#include <gtest/gtest.h>

#include "src/core/bullet_prime.h"
#include "src/harness/experiment.h"

namespace bullet {
namespace {

TEST(Smoke, BulletPrimeSmallMeshCompletes) {
  Rng topo_rng(42);
  MeshTopology::MeshParams mesh;
  mesh.num_nodes = 20;
  mesh.core_loss_max = 0.0;  // lossless for the smoke test
  MeshTopology topo = MeshTopology::FullMesh(mesh, topo_rng);

  ExperimentParams params;
  params.seed = 7;
  params.file.block_bytes = 16 * 1024;
  params.file.num_blocks = 128;  // 2 MB
  params.deadline = SecToSim(300.0);

  Experiment exp(std::move(topo), params);
  BulletPrimeConfig config;
  RunMetrics metrics = exp.Run([&](const Protocol::Context& ctx, const ControlTree* tree) {
    return std::make_unique<BulletPrime>(ctx, params.file, params.source, tree, config);
  });

  EXPECT_EQ(metrics.completed(), 19);
  const auto times = metrics.CompletionSeconds(params.source);
  ASSERT_EQ(times.size(), 19u);
  for (const double t : times) {
    EXPECT_GT(t, 2.0);    // can't beat the file transfer time
    EXPECT_LT(t, 300.0);  // and must finish before the deadline
  }
  EXPECT_LT(metrics.DuplicateFraction(), 0.05);
}

}  // namespace
}  // namespace bullet
