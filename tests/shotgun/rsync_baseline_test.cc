// Tests for the Fig. 15 baseline: N rsync clients against one server with K
// admission slots, a shared server disk, and a shared uplink.

#include "src/shotgun/rsync_baseline.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/stats.h"
#include "src/sim/metrics.h"

namespace bullet {
namespace {

struct Fleet {
  std::unique_ptr<Network> net;
  std::unique_ptr<RunMetrics> metrics;
  std::vector<std::unique_ptr<Protocol>> protos;
};

Fleet RunFleet(int nodes, const RsyncFleetConfig& config, double deadline_sec,
               uint64_t seed = 61) {
  Fleet fleet;
  Rng topo_rng(seed);
  MeshTopology topo = MeshTopology::WideArea(nodes, topo_rng);
  fleet.net = std::make_unique<Network>(std::move(topo), NetworkConfig{}, seed);
  fleet.metrics = std::make_unique<RunMetrics>(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    Protocol::Context ctx;
    ctx.self = n;
    ctx.net = fleet.net.get();
    ctx.metrics = fleet.metrics.get();
    ctx.seed = seed + static_cast<uint64_t>(n);
    if (n == 0) {
      fleet.protos.push_back(std::make_unique<RsyncServer>(ctx, config));
    } else {
      fleet.protos.push_back(std::make_unique<RsyncClient>(ctx, 0, config));
    }
    fleet.net->SetHandler(n, fleet.protos.back().get());
  }
  for (auto& p : fleet.protos) {
    p->Start();
  }
  fleet.net->Run(SecToSim(deadline_sec));
  return fleet;
}

RsyncFleetConfig SmallUpdate() {
  RsyncFleetConfig config;
  config.max_parallel = 4;
  config.sig_bytes = 200 * 1024;
  config.delta_bytes = 2 * 1024 * 1024;
  config.server_scan_bytes = 16 * 1024 * 1024;
  config.replay_bytes = 4 * 1024 * 1024;
  return config;
}

TEST(RsyncBaseline, AllClientsComplete) {
  Fleet fleet = RunFleet(11, SmallUpdate(), 3600.0);
  EXPECT_EQ(fleet.metrics->completed(), 10);
}

TEST(RsyncBaseline, AdmissionStaggersCompletions) {
  // With 1 slot, completions serialize: the spread between first and last finisher
  // must be roughly (N-1) * per-session time, far wider than with 8 slots.
  RsyncFleetConfig config = SmallUpdate();
  config.max_parallel = 1;
  Fleet serial = RunFleet(9, config, 7200.0);
  ASSERT_EQ(serial.metrics->completed(), 8);
  const auto serial_times = serial.metrics->CompletionSeconds(0);

  config.max_parallel = 8;
  Fleet parallel = RunFleet(9, config, 7200.0);
  ASSERT_EQ(parallel.metrics->completed(), 8);
  const auto parallel_times = parallel.metrics->CompletionSeconds(0);

  const double serial_spread =
      Percentile(serial_times, 1.0) - Percentile(serial_times, 0.0);
  const double parallel_spread =
      Percentile(parallel_times, 1.0) - Percentile(parallel_times, 0.0);
  EXPECT_GT(serial_spread, parallel_spread * 2.0);
}

TEST(RsyncBaseline, MoreParallelismHelpsUntilDiskSaturates) {
  // 2 -> 8 slots should cut the last finisher's time; the shared disk prevents
  // perfect scaling (the paper's observation that the disk is the constraint).
  RsyncFleetConfig config = SmallUpdate();
  config.max_parallel = 2;
  Fleet two = RunFleet(17, config, 7200.0);
  config.max_parallel = 8;
  Fleet eight = RunFleet(17, config, 7200.0);
  ASSERT_EQ(two.metrics->completed(), 16);
  ASSERT_EQ(eight.metrics->completed(), 16);
  const double last_two = Percentile(two.metrics->CompletionSeconds(0), 1.0);
  const double last_eight = Percentile(eight.metrics->CompletionSeconds(0), 1.0);
  EXPECT_LT(last_eight, last_two);
  // Not a 4x speedup: the disk's FIFO serializes the scan phase.
  EXPECT_GT(last_eight, last_two / 4.0);
}

TEST(RsyncBaseline, ReplayDelaysCompletionAfterDownload) {
  RsyncFleetConfig config = SmallUpdate();
  config.replay_bytes = 64 * 1024 * 1024;  // heavy replay
  config.client_disk_Bps = 15e6;
  Fleet fleet = RunFleet(5, config, 7200.0);
  ASSERT_EQ(fleet.metrics->completed(), 4);
  for (NodeId n = 1; n < 5; ++n) {
    const auto* client = static_cast<RsyncClient*>(fleet.protos[static_cast<size_t>(n)].get());
    ASSERT_GE(client->download_done_at(), 0);
    const double gap_sec =
        SimToSec(fleet.metrics->node(n).completion - client->download_done_at());
    EXPECT_NEAR(gap_sec, 64.0 * 1024 * 1024 / 15e6, 0.5) << "node " << n;
  }
}

}  // namespace
}  // namespace bullet
