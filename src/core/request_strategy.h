// Per-sender candidate tracking and the four request-ordering strategies of
// Section 3.3.2. A candidate is a block id known to be available at a sender and not
// yet held or requested by us; validity is checked lazily at pick time through a
// caller-supplied predicate, so a block obtained from another peer silently
// invalidates stale candidates everywhere.
//
// The rarest strategies examine either the full candidate set (exact mode) or a
// bounded random sample (default, sample size 128): with thousands of candidates the
// sampled minimum is statistically indistinguishable from the true minimum while
// keeping per-request cost constant. kRarest breaks ties deterministically (lowest
// block id); kRarestRandom breaks them uniformly at random — exactly the distinction
// the paper evaluates in Fig. 6.

#ifndef SRC_CORE_REQUEST_STRATEGY_H_
#define SRC_CORE_REQUEST_STRATEGY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/core/config.h"

namespace bullet {

class CandidateSet {
 public:
  using ValidFn = std::function<bool(uint32_t)>;
  using RarityFn = std::function<int(uint32_t)>;

  // Discovery-order append (duplicates allowed; validity filtering handles them).
  void Add(uint32_t id);
  // Re-adds an id (e.g. a request re-queued after a sender failed).
  void Readd(uint32_t id) { Add(id); }

  size_t RawSize() const { return vec_.size(); }
  bool RawEmpty() const { return vec_.empty(); }

  // Picks the next block to request under `strategy`, or nullopt if no valid
  // candidate remains. Picked and stale entries are removed as encountered.
  std::optional<uint32_t> Pick(RequestStrategy strategy, const ValidFn& valid,
                               const RarityFn& rarity, Rng& rng);

  // Sliding-window pick (streaming mode): as Pick, but candidates failing
  // `eligible` are *skipped and retained* — a block outside the playback
  // window becomes requestable once the window slides over it, so it must not
  // be dropped the way invalid (held/requested) entries are. The configured
  // strategy applies within the eligible subset (rarest-random for Bullet').
  // Scans the whole set (no sampling): eligibility partitions the candidates,
  // and the window bounds how many entries can be eligible at once.
  std::optional<uint32_t> PickWindowed(RequestStrategy strategy, const ValidFn& valid,
                                       const ValidFn& eligible, const RarityFn& rarity, Rng& rng);

  // True if fewer than `threshold` valid candidates remain (used to trigger diff
  // requests). May scan up to threshold entries.
  bool RunningDry(size_t threshold, const ValidFn& valid) const;

  static constexpr size_t kRaritySample = 128;

 private:
  std::optional<uint32_t> PickFirst(const ValidFn& valid);
  std::optional<uint32_t> PickRandom(const ValidFn& valid, Rng& rng);
  std::optional<uint32_t> PickRarest(const ValidFn& valid, const RarityFn& rarity, Rng& rng,
                                     bool random_tie);
  void RemoveAt(size_t index);
  void Compact(const ValidFn& valid);

  // `fifo_` preserves discovery order for kFirstEncountered; `vec_` provides O(1)
  // random access for the sampled strategies. Both may contain stale entries.
  std::deque<uint32_t> fifo_;
  std::vector<uint32_t> vec_;
};

}  // namespace bullet

#endif  // SRC_CORE_REQUEST_STRATEGY_H_
