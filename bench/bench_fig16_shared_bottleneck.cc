// Fig. 16 (extension, no paper figure): shared-bottleneck dissemination on a
// routed dumbbell. Two stub routers joined by one duplex core link; the source
// and half the overlay sit on the left, the other half on the right, so every
// left-to-right flow competes max-min for the same interior link — the regime
// the dense mesh (one private core link per ordered pair) cannot express.
//
// The scenario runs the identical workload twice: once on the routed dumbbell
// and once on a mesh whose per-pair core links each carry the full bottleneck
// bandwidth. The completion gap is the cost of actually sharing the pipe, and
// `max_flows_on_shared_link` (the allocator's peak per-interior-link flow
// count) demonstrates that >= 2 flows were constrained by one shared core link
// — asserted in tests/sim/routed_topology_test.cc and visible in the BENCH
// output here.

#include <memory>

#include "src/core/bullet_prime.h"
#include "src/harness/experiment.h"
#include "src/harness/scenario_registry.h"

namespace bullet {
namespace {

constexpr double kBottleneckBps = 10e6;
constexpr SimTime kBottleneckDelay = MsToSim(20);

RoutedTopology DumbbellTopology(int nodes) {
  RoutedTopology topo(nodes, /*num_routers=*/2);
  for (NodeId n = 0; n < nodes; ++n) {
    topo.uplink(n) = LinkParams{6e6, MsToSim(1), 0.0};
    topo.downlink(n) = LinkParams{6e6, MsToSim(1), 0.0};
    topo.AttachNode(n, n < nodes / 2 ? 0 : 1);
  }
  topo.AddDuplexEdge(0, 1, LinkParams{kBottleneckBps, kBottleneckDelay, 0.0});
  return topo;
}

// The private-core control: same access links and delay, but every ordered pair
// gets its own kBottleneckBps core link, so cross traffic never shares capacity.
MeshTopology PrivateCoreTopology(int nodes) {
  MeshTopology topo(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    topo.uplink(n) = LinkParams{6e6, MsToSim(1), 0.0};
    topo.downlink(n) = LinkParams{6e6, MsToSim(1), 0.0};
  }
  for (NodeId s = 0; s < nodes; ++s) {
    for (NodeId d = 0; d < nodes; ++d) {
      if (s != d) {
        topo.core(s, d) = LinkParams{kBottleneckBps, kBottleneckDelay, 0.0};
      }
    }
  }
  return topo;
}

BULLET_SCENARIO(fig16_shared_bottleneck,
                "Extension — routed dumbbell: flows share one bottleneck core link") {
  const int nodes = opts.nodes.value_or(16);
  ExperimentParams params;
  params.seed = opts.seed.value_or(1601);
  params.file.block_bytes = opts.block_bytes.value_or(16 * 1024);
  params.file.num_blocks = static_cast<uint32_t>(
      opts.file_mb.value_or(ScaledFileMb(10.0)) * 1024.0 * 1024.0 /
      static_cast<double>(params.file.block_bytes));
  params.deadline = SecToSim(opts.deadline_sec.value_or(7200.0));

  ScenarioReport report(kScenarioName);
  int32_t shared_flows = 0;
  int32_t private_flows = 0;
  for (const bool shared : {true, false}) {
    Experiment exp = shared ? Experiment(DumbbellTopology(nodes), params)
                            : Experiment(PrivateCoreTopology(nodes), params);
    RunMetrics metrics = exp.Run([&](const Protocol::Context& ctx, const ControlTree* tree) {
      return std::make_unique<BulletPrime>(ctx, params.file, params.source, tree,
                                           BulletPrimeConfig{});
    });
    report.AddSeries(shared ? "BulletPrime (shared dumbbell core)"
                            : "BulletPrime (private per-pair cores)",
                     metrics.CompletionSeconds(params.source, SimToSec(params.deadline)));
    (shared ? shared_flows : private_flows) = exp.net().max_interior_link_flows();
  }

  report.AddScalar("bottleneck_mbps", kBottleneckBps / 1e6);
  // >= 2 on the dumbbell: the shared-bottleneck acceptance signal.
  report.AddScalar("max_flows_on_shared_link", shared_flows);
  report.AddScalar("max_flows_on_private_link", private_flows);
  return report;
}

}  // namespace
}  // namespace bullet
