// Bench-regression gate: diffs a freshly produced sweep aggregate
// (bullet-bench-v2 or -v3) against a committed baseline, with per-metric
// tolerance bands. When both documents carry the bullet-floors-v1 schema the
// comparison switches to the one-sided throughput-floor mode instead (current
// must meet or beat every committed floor). CI runs this via tools/bench_check
// and fails the build on any out-of-band metric.

#ifndef SRC_HARNESS_BENCH_CHECK_H_
#define SRC_HARNESS_BENCH_CHECK_H_

#include <map>
#include <ostream>
#include <string>

#include "src/harness/json_reader.h"

namespace bullet {

// Exit codes shared by CompareSweepDocs and the bench_check CLI.
enum BenchCheckStatus {
  kBenchCheckOk = 0,          // every baseline metric within tolerance
  kBenchCheckRegression = 1,  // at least one metric out of band / missing
  kBenchCheckBadInput = 2,    // unreadable / wrong-schema / mismatched documents
};

struct BenchCheckOptions {
  // Default relative band. A metric passes when
  //   |current - baseline| <= max(abs_tol, tol * |baseline|)
  // where tol is the per-metric override when present, else rel_tol.
  double rel_tol = 0.25;
  double abs_tol = 1e-9;
  std::map<std::string, double> metric_rel_tol;  // exact metric name -> rel tol
};

// Compares only point medians: they are what the repeats exist to stabilize, and
// p10/p90 of a 2-repeat CI sweep would gate on the noisier extremes. Every
// baseline point and metric must exist in `current`; extra points/metrics in
// `current` are ignored so new instrumentation never breaks the gate. Verdict
// lines (PASS/FAIL per comparison plus a summary) go to `log`.
//
// Accepts baselines in either aggregate schema (v2 from before the counter
// instrumentation, v3 with it); the two documents need not match schemas, so
// pre-existing committed baselines keep gating v3 currents unchanged.
int CompareSweepDocs(const JsonValue& baseline, const JsonValue& current,
                     const BenchCheckOptions& opts, std::ostream& log);

// Throughput-floor mode (schema bullet-floors-v1 on both sides): for every
// baseline point, each metric under its `floors` object must satisfy
// current >= floor. One-sided on purpose — faster is never a failure — and
// tolerance-free: the committed floor itself embeds the safety margin (see
// docs/PERFORMANCE.md for how floors are derived and updated). Tolerances in
// `opts` are ignored here. CompareSweepDocs dispatches to this automatically
// when the baseline carries the floors schema.
int CompareFloorDocs(const JsonValue& baseline, const JsonValue& current, std::ostream& log);

// Memory-ceiling mode (schema bullet-ceilings-v1 on both sides): the floors
// mechanism inverted. For every baseline point, each metric under its
// `ceilings` object must satisfy current <= ceiling — using *less* memory is
// never a failure. Ceilings gate deterministic byte counters (route cache,
// path pools, arena peak), never RSS, so the comparison is machine-independent.
// CompareSweepDocs dispatches here automatically on a ceilings baseline.
int CompareCeilingDocs(const JsonValue& baseline, const JsonValue& current, std::ostream& log);

// File-based wrapper: parses both paths then delegates to CompareSweepDocs.
int CompareSweepFiles(const std::string& baseline_path, const std::string& current_path,
                      const BenchCheckOptions& opts, std::ostream& log, std::ostream& err);

}  // namespace bullet

#endif  // SRC_HARNESS_BENCH_CHECK_H_
