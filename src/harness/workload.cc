#include "src/harness/workload.h"

#include <algorithm>
#include <mutex>

#include "src/baselines/bittorrent.h"
#include "src/baselines/bullet_legacy.h"
#include "src/baselines/splitstream.h"
#include "src/common/logging.h"
#include "src/core/bullet_prime.h"
#include "src/harness/workload_gen.h"

namespace bullet {

void EnsureBuiltinProtocolsRegistered() {
  // Explicit calls (not static initializers in the libraries): a registration
  // living only in a static-library object file would be dropped by the linker
  // once nothing else references that object.
  static std::once_flag once;
  std::call_once(once, [] {
    RegisterBulletPrimeProtocol();
    RegisterBulletLegacyProtocol();
    RegisterBitTorrentProtocol();
    RegisterSplitStreamProtocol();
  });
}

namespace {

// Decorrelated per-session seed stream (SplitMix64 over base + index), used
// when a SessionSpec does not pin its own seed.
uint64_t DeriveSessionSeed(uint64_t base, int index) {
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

WorkloadExperiment::WorkloadExperiment(std::unique_ptr<Topology> topology,
                                       const WorkloadParams& params)
    : params_(params) {
  NetworkConfig net_config;
  net_config.quantum = params.quantum;
  net_config.allocator_mode = params.full_recompute_allocator
                                  ? NetworkConfig::AllocatorMode::kFullRecompute
                                  : NetworkConfig::AllocatorMode::kIncremental;
  net_config.skip_idle_ticks = params.skip_idle_ticks;
  net_config.num_threads = params.num_threads;
  net_config.aggregate_flows = params.aggregate_flows;
  net_ = std::make_unique<Network>(std::move(topology), net_config, params.seed ^ 0x9e3779b9ULL);
  member_claimed_.assign(static_cast<size_t>(net_->num_nodes()), 0);
}

int WorkloadExperiment::AddSession(const SessionSpec& spec) {
  EnsureBuiltinProtocolsRegistered();
  const ProtocolRegistry::Entry* entry = ProtocolRegistry::Global().Find(spec.protocol);
  BULLET_CHECK(entry != nullptr && "unknown protocol name (see ProtocolRegistry)");
  return AddSessionImpl(spec, entry, nullptr);
}

int WorkloadExperiment::AddSession(const SessionSpec& spec,
                                   ProtocolRegistry::NodeFactory factory) {
  return AddSessionImpl(spec, nullptr, std::move(factory));
}

void WorkloadExperiment::SetSessionFactory(int session, ProtocolRegistry::NodeFactory factory) {
  BULLET_CHECK(!ran_ && "factories must be installed before Run()");
  at(session).factory = std::move(factory);
}

int WorkloadExperiment::AddSessionImpl(SessionSpec spec, const ProtocolRegistry::Entry* entry,
                                       ProtocolRegistry::NodeFactory factory) {
  BULLET_CHECK(!ran_ && "sessions must be added before Run()");
  const int n = net_->num_nodes();
  const int index = static_cast<int>(sessions_.size());

  // --- normalize the spec ---
  if (spec.members.empty()) {
    spec.members.reserve(static_cast<size_t>(n));
    for (NodeId node = 0; node < n; ++node) {
      spec.members.push_back(node);
    }
  }
  const size_t num_members = spec.members.size();
  BULLET_CHECK(num_members >= 2 && "a session needs a source and at least one receiver");
  // Resolved before arrivals expansion so the generator stream derives from
  // the same value the session would have been assigned anyway.
  const uint64_t session_seed = spec.seed ? *spec.seed : DeriveSessionSeed(params_.seed, index);
  if (spec.arrivals != nullptr) {
    BULLET_CHECK(spec.join_offsets.empty() &&
                 "an arrivals generator and explicit join_offsets are mutually exclusive");
    Rng arrivals_rng(session_seed ^ 0x5bd1e995a1b2c3d4ULL);
    const std::vector<SimTime> offsets =
        spec.arrivals->Offsets(num_members - 1, arrivals_rng);
    BULLET_CHECK(offsets.size() == num_members - 1 &&
                 "ArrivalProcess::Offsets must return one offset per receiver");
    spec.join_offsets.assign(num_members, 0);
    size_t r = 0;
    for (size_t i = 0; i < num_members; ++i) {
      if (spec.members[i] == spec.source) {
        continue;  // the source keeps offset zero (validated as a member below)
      }
      BULLET_CHECK(r < offsets.size() && "the source must be a session member");
      BULLET_CHECK(offsets[r] >= 0 && "arrival offsets must be non-negative");
      spec.join_offsets[i] = offsets[r++];
    }
  }
  if (spec.join_offsets.empty()) {
    spec.join_offsets.assign(num_members, 0);
  }
  BULLET_CHECK(spec.join_offsets.size() == num_members &&
               "join_offsets must parallel members (or be empty)");
  BULLET_CHECK(spec.start >= 0 && "session start must be non-negative");
  if (entry != nullptr && entry->encoded_stream) {
    // Section 4.2 methodology: this system always runs over an encoded stream.
    spec.file.encoded = true;
  }
  if (entry != nullptr && spec.protocol_config.has_value()) {
    // Catch config mismatches here with the registry's declared type instead
    // of a bad_any_cast (or a silent default) deep inside the factory.
    BULLET_CHECK(entry->config_type != nullptr &&
                 "this protocol takes no config but protocol_config is set");
    BULLET_CHECK(spec.protocol_config.type() == *entry->config_type &&
                 "protocol_config holds the wrong type for this protocol");
  }

  sessions_.emplace_back();
  Session& s = sessions_.back();
  s.seed = session_seed;
  spec.seed = s.seed;
  s.spec = std::move(spec);
  const SessionSpec& sp = s.spec;

  // --- membership bookkeeping and validation ---
  s.member_slot.assign(static_cast<size_t>(n), -1);
  s.join_at.resize(num_members);
  int source_slot = -1;
  for (size_t i = 0; i < num_members; ++i) {
    const NodeId node = sp.members[i];
    BULLET_CHECK(node >= 0 && node < n && "session member out of range");
    BULLET_CHECK(s.member_slot[static_cast<size_t>(node)] < 0 &&
                 "duplicate member within a session");
    BULLET_CHECK(!member_claimed_[static_cast<size_t>(node)] &&
                 "sessions must have disjoint member sets");
    s.member_slot[static_cast<size_t>(node)] = static_cast<int>(i);
    BULLET_CHECK(sp.join_offsets[i] >= 0 && "join offsets must be non-negative");
    s.join_at[i] = sp.start + sp.join_offsets[i];
    if (node == sp.source) {
      source_slot = static_cast<int>(i);
    }
  }
  for (const NodeId node : sp.members) {
    member_claimed_[static_cast<size_t>(node)] = 1;
  }
  BULLET_CHECK(source_slot >= 0 && "the source must be a session member");
  const SimTime earliest = *std::min_element(s.join_at.begin(), s.join_at.end());
  BULLET_CHECK(s.join_at[static_cast<size_t>(source_slot)] == earliest &&
               "the source must join no later than any other member");

  // --- lifetime departures ---
  // One draw per receiver in member order (deterministic in the session seed);
  // the source never departs — it anchors the session.
  s.depart_at.assign(num_members, -1);
  if (sp.lifetimes != nullptr) {
    Rng life_rng(s.seed ^ 0x27d4eb2f165667c5ULL);
    for (size_t i = 0; i < num_members; ++i) {
      if (sp.members[i] == sp.source) {
        continue;
      }
      const SimTime life = sp.lifetimes->Draw(i, life_rng);
      BULLET_CHECK(life != 0 && "lifetime draws must be positive or negative (infinite)");
      if (life > 0) {
        s.depart_at[i] = s.join_at[i] + life;
      }
    }
  }

  // --- join buckets: one per distinct join time, member order within ---
  std::vector<size_t> order(num_members);
  for (size_t i = 0; i < num_members; ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&s](size_t a, size_t b) { return s.join_at[a] < s.join_at[b]; });
  for (const size_t i : order) {
    if (s.buckets.empty() || s.buckets.back().at != s.join_at[i]) {
      s.buckets.push_back(JoinBucket{s.join_at[i], {}});
    }
    s.buckets.back().member_idx.push_back(i);
  }

  // --- control tree ---
  // The legacy shape (every node, zero offsets, source 0) keeps the historical
  // ControlTree::Random call so all single-session runs stay byte-identical.
  // Everything else builds a join-staged tree rooted at the source: parents
  // always join no later than their children, so a joiner can connect upward
  // immediately.
  Rng tree_rng(s.seed ^ 0x7f4a7c15ULL);
  const bool legacy_shape = static_cast<int>(num_members) == n && sp.source == 0 &&
                            s.buckets.size() == 1 && s.buckets.front().at == 0 &&
                            [&] {
                              for (size_t i = 0; i < num_members; ++i) {
                                if (sp.members[i] != static_cast<NodeId>(i)) {
                                  return false;
                                }
                              }
                              return true;
                            }();
  if (legacy_shape) {
    s.tree = ControlTree::Random(n, sp.tree_fanout, tree_rng);
  } else {
    std::vector<std::vector<NodeId>> stages;
    for (const JoinBucket& bucket : s.buckets) {
      std::vector<NodeId> stage;
      stage.reserve(bucket.member_idx.size());
      for (const size_t i : bucket.member_idx) {
        if (sp.members[i] != sp.source) {
          stage.push_back(sp.members[i]);
        }
      }
      if (!stage.empty()) {
        stages.push_back(std::move(stage));
      }
    }
    s.tree = ControlTree::RandomStaged(n, sp.source, stages, sp.tree_fanout, tree_rng);
  }

  // --- metrics, completion policy, factory ---
  s.metrics = std::make_unique<RunMetrics>(n);
  s.metrics->record_arrivals = params_.record_arrivals;
  s.metrics->SetMembers(sp.members);
  s.metrics->SetCompletionPolicy(static_cast<int>(num_members) - 1,
                                 [this, index] { OnSessionComplete(index); });
  if (sp.lifetimes != nullptr && sp.lifetimes->departs_after_completion()) {
    // The "seeder departs" regime: a completed receiver stops serving `linger`
    // after it finishes (a departure event on the queue, not an inline kill —
    // the observer fires mid-delivery inside the protocol).
    const SimTime linger = sp.lifetimes->post_completion_linger();
    s.metrics->SetCompletionObserver([this, index, linger](NodeId node, SimTime t) {
      if (node == at(index).spec.source) {
        return;
      }
      // ScheduleGlobal, not queue().Schedule: the observer fires from protocol
      // context, which under the parallel engine is a worker thread — the
      // departure must be staged to the global queue at the barrier (departures
      // fail the node network-wide, a cross-partition effect).
      net_->ScheduleGlobal(t + linger, [this, index, node] { DepartNode(index, node); });
    });
  }
  s.protocols.resize(num_members);

  if (entry != nullptr) {
    s.display_name = entry->display_name;
    s.protocol_key = entry->key;
    ProtocolRegistry::SessionEnv env;
    env.spec = &s.spec;
    env.tree = &s.tree;
    env.seed = s.seed;
    env.num_nodes = n;
    s.factory = entry->make(env);
    BULLET_CHECK(s.factory != nullptr && "protocol factory construction failed");
  } else {
    s.display_name = sp.name.empty() ? "session" + std::to_string(index) : sp.name;
    s.factory = std::move(factory);
  }
  return index;
}

void WorkloadExperiment::ExecuteJoinBucket(int session, size_t bucket) {
  Session& s = at(session);
  const JoinBucket& b = s.buckets[bucket];
  // Two-phase, like the historical start loop: every member of the bucket is
  // constructed and registered before any of them Start()s, so same-instant
  // joiners can connect to each other.
  for (const size_t i : b.member_idx) {
    const NodeId node = s.spec.members[i];
    Protocol::Context ctx;
    ctx.self = node;
    ctx.net = net_.get();
    ctx.metrics = s.metrics.get();
    ctx.seed = s.seed * 0x100000001b3ULL + static_cast<uint64_t>(node) + 1;
    s.protocols[i] = s.factory(ctx);
    net_->SetHandler(node, s.protocols[i].get());
  }
  for (const size_t i : b.member_idx) {
    s.protocols[i]->Start();
  }
}

void WorkloadExperiment::SetChurnModel(std::shared_ptr<const ChurnModel> churn) {
  BULLET_CHECK(!ran_ && "the churn model must be installed before Run()");
  churn_ = std::move(churn);
}

void WorkloadExperiment::DepartNode(int session, NodeId node) {
  if (net_->IsNodeFailed(node)) {
    return;  // lifetime expiry and churn may race; first event wins
  }
  Session& s = at(session);
  if (node == s.spec.source) {
    return;
  }
  net_->FailNode(node);
  s.metrics->RecordDeparture(node, net_->now());
  ++total_departures_;
  // A departed straggler counts toward the target, so the session (and the
  // run) still terminates once everyone left standing has finished.
  s.metrics->NotifyIfAllComplete();
}

void WorkloadExperiment::ScheduleDynamics() {
  for (int si = 0; si < static_cast<int>(sessions_.size()); ++si) {
    Session& s = at(si);
    for (size_t i = 0; i < s.depart_at.size(); ++i) {
      if (s.depart_at[i] < 0) {
        continue;
      }
      const NodeId node = s.spec.members[i];
      net_->queue().Schedule(s.depart_at[i], [this, si, node] { DepartNode(si, node); });
    }
  }
  if (churn_ == nullptr) {
    return;
  }
  ChurnContext ctx;
  ctx.topology = &net_->topology();
  ctx.sessions.reserve(sessions_.size());
  for (const Session& s : sessions_) {
    ChurnContext::SessionView view;
    view.tree = &s.tree;
    view.source = s.spec.source;
    view.members = &s.spec.members;
    ctx.sessions.push_back(view);
  }
  Rng churn_rng(params_.seed ^ 0x94d049bb133111ebULL);
  churn_events_ = churn_->Schedule(ctx, churn_rng);
  for (const ChurnEvent& ev : churn_events_) {
    BULLET_CHECK(ev.node >= 0 && ev.node < net_->num_nodes() && ev.at > 0 &&
                 "churn model produced an invalid event");
    int owner = -1;
    for (int si = 0; si < static_cast<int>(sessions_.size()); ++si) {
      if (at(si).member_slot[static_cast<size_t>(ev.node)] >= 0) {
        owner = si;
        break;
      }
    }
    if (owner >= 0) {
      const NodeId node = ev.node;
      const int si = owner;
      BULLET_CHECK(node != at(si).spec.source && "churn models must never kill a source");
      net_->queue().Schedule(ev.at, [this, si, node] { DepartNode(si, node); });
    } else {
      // Not in any session: fail the node on the network only (background
      // population on shared infrastructure).
      const NodeId node = ev.node;
      net_->queue().Schedule(ev.at, [this, node] { net_->FailNode(node); });
    }
  }
}

// Fires from RunMetrics::NotifyIfAllComplete — protocol context, which under
// the parallel engine may be any worker thread (whichever partition recorded
// the session's last completion). The mutex makes the flag/counter updates
// atomic; the outcome is value-deterministic regardless of firing thread, and
// Stop() is itself safe from worker context.
void WorkloadExperiment::OnSessionComplete(int session) {
  Session& s = at(session);
  bool all_done = false;
  {
    std::lock_guard<std::mutex> lock(complete_mu_);
    if (s.complete) {
      return;
    }
    s.complete = true;
    ++sessions_completed_;
    all_done = sessions_completed_ == static_cast<int>(sessions_.size());
  }
  if (all_done) {
    net_->Stop();
  }
}

WorkloadResult WorkloadExperiment::Run() {
  BULLET_CHECK(!ran_ && "WorkloadExperiment::Run may only be called once");
  BULLET_CHECK(!sessions_.empty() && "no sessions added");
  for (const Session& s : sessions_) {
    BULLET_CHECK(s.factory != nullptr && "session has no protocol factory");
  }
  ran_ = true;

  // Time-zero buckets run before the event loop starts — this is the legacy
  // Experiment::Run start loop, so pre-existing runs keep their exact event
  // numbering. Later buckets are event-queue-driven joins.
  for (int si = 0; si < static_cast<int>(sessions_.size()); ++si) {
    Session& s = at(si);
    for (size_t bi = 0; bi < s.buckets.size(); ++bi) {
      if (s.buckets[bi].at <= 0) {
        ExecuteJoinBucket(si, bi);
      } else {
        net_->queue().Schedule(s.buckets[bi].at,
                               [this, si, bi] { ExecuteJoinBucket(si, bi); });
      }
    }
  }
  ScheduleDynamics();

  net_->Run(params_.deadline);

  WorkloadResult result;
  result.sessions.reserve(sessions_.size());
  for (const Session& s : sessions_) {
    result.sessions.push_back(AssembleSessionResult(s));
  }
  result.sessions_completed = sessions_completed_;
  result.max_shared_link_flows = net_->max_interior_link_flows();
  result.total_departures = total_departures_;
  result.churn_events = churn_events_;
  result.events_executed = net_->events_executed();
  result.allocator_epochs = net_->allocator_epochs();
  result.sim_bytes_sent = static_cast<uint64_t>(net_->total_bytes_sent());
  result.route_cache_bytes = static_cast<uint64_t>(net_->route_cache_bytes());
  result.path_pool_bytes = static_cast<uint64_t>(net_->path_pool_bytes());
  result.arena_peak_bytes = static_cast<uint64_t>(net_->arena_peak_bytes());
  return result;
}

SessionResult WorkloadExperiment::AssembleSessionResult(const Session& s) const {
  SessionResult r;
  r.name = s.spec.name.empty() ? s.display_name : s.spec.name;
  r.protocol = s.protocol_key;
  r.duplicate_fraction = s.metrics->DuplicateFraction();
  r.control_overhead = s.metrics->ControlOverheadFraction();
  r.completed = s.metrics->completed();
  r.receivers = static_cast<int>(s.spec.members.size()) - 1;
  r.departed_incomplete = s.metrics->departed_incomplete();
  for (const NodeId m : s.spec.members) {
    if (s.metrics->node(m).departed >= 0) {
      ++r.departed;
    }
  }
  r.start_sec = SimToSec(s.spec.start);
  const double deadline_sec = SimToSec(params_.deadline);
  SimTime last_join = 0;
  SimTime last_completion = -1;
  for (size_t i = 0; i < s.spec.members.size(); ++i) {
    last_join = std::max(last_join, s.join_at[i]);
    if (s.spec.members[i] == s.spec.source) {
      continue;
    }
    const NodeMetrics& nm = s.metrics->node(s.spec.members[i]);
    const SimTime done = nm.completion;
    const double join_sec = SimToSec(s.join_at[i]);
    if (done >= 0) {
      r.completion_sec.push_back(SimToSec(done));
      r.download_sec.push_back(SimToSec(done) - join_sec);
      last_completion = std::max(last_completion, done);
    } else if (nm.departed >= 0) {
      // Departed without completing: excluded from the completion/download
      // series (it would report the run deadline and skew the CDF tail); the
      // departure is still visible through departed/departed_incomplete.
      continue;
    } else {
      r.completion_sec.push_back(deadline_sec);
      // Clamped at zero: a join time at or past the deadline means the member
      // never joined at all — a negative "download time" would silently skew
      // the series percentiles.
      r.download_sec.push_back(std::max(0.0, deadline_sec - join_sec));
    }
    if (s.spec.streaming.has_value()) {
      const PlaybackStats ps = ComputePlaybackStats(
          *s.spec.streaming, s.spec.file.num_blocks, s.spec.file.block_bytes, s.spec.start,
          s.join_at[i], nm.position_arrivals, params_.deadline);
      r.stall_sec.push_back(ps.stall_sec);
      r.missed_deadline.push_back(ps.missed_deadline);
      r.total_stall_sec += ps.stall_sec;
      r.total_missed_deadline += ps.missed_deadline;
      r.playback_finished += ps.finished ? 1 : 0;
    }
  }
  r.last_join_sec = SimToSec(last_join);
  if (s.complete && last_completion >= 0) {
    r.completed_at_sec = SimToSec(last_completion);
  }
  return r;
}

Protocol* WorkloadExperiment::session_protocol(int session, NodeId node) {
  const Session& s = at(session);
  const int slot = s.member_slot.at(static_cast<size_t>(node));
  return slot < 0 ? nullptr : at(session).protocols[static_cast<size_t>(slot)].get();
}

SimTime WorkloadExperiment::session_join_time(int session, NodeId node) const {
  const Session& s = at(session);
  const int slot = s.member_slot.at(static_cast<size_t>(node));
  return slot < 0 ? -1 : s.join_at[static_cast<size_t>(slot)];
}

}  // namespace bullet
