#include "src/harness/scenario_registry.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace bullet {

void ApplyScenarioOptions(const ScenarioOptions& opts, ScenarioConfig* cfg) {
  if (opts.nodes) {
    cfg->num_nodes = *opts.nodes;
  }
  if (opts.file_mb) {
    cfg->file_mb = *opts.file_mb;
  }
  if (opts.seed) {
    cfg->seed = *opts.seed;
  }
  if (opts.block_bytes) {
    cfg->block_bytes = *opts.block_bytes;
  }
  if (opts.deadline_sec) {
    cfg->deadline = SecToSim(*opts.deadline_sec);
  }
  if (opts.loss) {
    cfg->loss_min = 0.0;
    cfg->loss_max = *opts.loss;
  }
  if (opts.topology) {
    // Unknown names were already rejected by the CLI parser; a stale string
    // reaching this point keeps the scenario's registered topology.
    ParseTopologyName(*opts.topology, &cfg->topo);
  }
  if (opts.system) {
    // Also CLI-validated (against ProtocolRegistry::Global()).
    cfg->system = *opts.system;
  }
  if (opts.join_fraction) {
    cfg->join_fraction = *opts.join_fraction;
  }
}

void ScenarioReport::AddCompletion(const ScenarioResult& result) {
  AddCompletion(result.name, result);
}

void ScenarioReport::AddCompletion(const std::string& name, const ScenarioResult& result) {
  SeriesReport& s = AddSeries(name, result.completion_sec);
  s.metrics.emplace_back("dup_pct", result.duplicate_fraction * 100.0);
  s.metrics.emplace_back("ctrl_pct", result.control_overhead * 100.0);
  s.metrics.emplace_back("completed", static_cast<double>(result.completed));
  s.metrics.emplace_back("receivers", static_cast<double>(result.receivers));
}

SeriesReport& ScenarioReport::AddSeries(const std::string& name, std::vector<double> samples) {
  series_.push_back(SeriesReport{name, std::move(samples), {}});
  return series_.back();
}

void ScenarioReport::AddScalar(const std::string& key, double value) {
  scalars_.emplace_back(key, value);
}

std::vector<CdfSeries> ScenarioReport::AsCdfSeries() const {
  std::vector<CdfSeries> out;
  out.reserve(series_.size());
  for (const SeriesReport& s : series_) {
    out.push_back(CdfSeries{s.name, s.samples});
  }
  return out;
}

ScenarioRegistry& ScenarioRegistry::Global() {
  static ScenarioRegistry* registry = new ScenarioRegistry();
  return *registry;
}

bool ScenarioRegistry::Register(const std::string& name, const std::string& description,
                                RunFn fn) {
  return entries_.emplace(name, Entry{name, description, std::move(fn)}).second;
}

const ScenarioRegistry::Entry* ScenarioRegistry::Find(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<const ScenarioRegistry::Entry*> ScenarioRegistry::List() const {
  std::vector<const Entry*> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(&entry);
  }
  return out;
}

namespace harness_internal {

ScenarioRegistrar::ScenarioRegistrar(const char* name, const char* description,
                                     ScenarioRegistry::RunFn fn) {
  if (!ScenarioRegistry::Global().Register(name, description, std::move(fn))) {
    std::fprintf(stderr, "duplicate scenario registration: %s\n", name);
    std::abort();
  }
}

}  // namespace harness_internal

}  // namespace bullet
