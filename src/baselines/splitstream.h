// SplitStream baseline (Castro et al., SOSP'03), as the paper's "MACEDON SplitStream
// MS" comparison point: the content is split into k stripes, stripe i carrying blocks
// with id mod k == i, and each stripe is pushed down its own interior-node-disjoint
// tree. There is no pull path; resilience comes from the source-encoded stream —
// receivers complete once they hold (1 + eps) * n distinct blocks regardless of
// which stripes delivered them. A slow interior link starves only that stripe's
// subtree, which is exactly the monotonic-bandwidth-decrease tail the paper's CDFs
// show for tree-based systems.

#ifndef SRC_BASELINES_SPLITSTREAM_H_
#define SRC_BASELINES_SPLITSTREAM_H_

#include <deque>
#include <map>
#include <set>
#include <vector>

#include "src/baselines/stripe_forest.h"
#include "src/overlay/dissemination.h"

namespace bullet {

struct SplitStreamConfig {
  int num_stripes = 8;
  // Per-child connection-queue cap. Blocks beyond it wait in an application-level
  // pending queue (TCP backpressure): a slow link slows its whole subtree — the
  // monotonic bandwidth decrease inherent to tree delivery — but loses nothing.
  int forward_queue_blocks = 4;
  SimTime drain_retry = MsToSim(20);
  SimTime source_push_retry = MsToSim(20);
  // Poll interval while a stripe parent has not joined its session yet (the
  // forest is built over the full member set, but members join staggered).
  SimTime join_retry = MsToSim(500);
};

namespace ss {

struct StripeHelloMsg : Message {
  static constexpr int kType = 401;
  std::vector<int> stripes;  // stripes for which the sender is our child
  void Finalize() {
    type = kType;
    wire_bytes = 12 + static_cast<int64_t>(stripes.size());
  }
};

struct StripeBlockMsg : Message {
  static constexpr int kType = 402;
  uint32_t block_id = 0;
  void Finalize(int64_t block_bytes) {
    type = kType;
    wire_bytes = block_bytes + 16;
  }
};

}  // namespace ss

class SplitStream : public DisseminationProtocol {
 public:
  // `forest` must be shared by all nodes of the run (built from the same seed).
  SplitStream(const Context& ctx, const FileParams& file, NodeId source,
              const StripeForest* forest, const SplitStreamConfig& config);

  void Start() override;
  void OnConnUp(ConnId conn, NodeId peer, bool initiator) override;
  void OnConnDown(ConnId conn, NodeId peer) override;
  void OnMessage(ConnId conn, NodeId from, std::unique_ptr<Message> msg) override;

  // Introspection for tests: the node currently feeding us `stripe` (-1 at
  // the stripe root, or before Start).
  NodeId stripe_parent(int stripe) const {
    const size_t s = static_cast<size_t>(stripe);
    return s < stripe_parent_.size() ? stripe_parent_[s] : -1;
  }

 private:
  void SourcePushTick();
  void Forward(int stripe, uint32_t id);
  void DrainPending();
  // Reparents every stripe `failed` was feeding us: climb the original stripe
  // tree's ancestor chain past failed nodes and graft onto the first survivor.
  void RepairStripes(NodeId failed);
  // Connects to `parent` if it has joined; otherwise queues it for the join
  // poll (a StripeHello sent before the peer installs its protocol is lost).
  void LinkParent(NodeId parent);
  void JoinRetryTick();

  SplitStreamConfig config_;
  const StripeForest* forest_;

  // Child connections per stripe (filled from StripeHello messages).
  std::vector<std::vector<ConnId>> stripe_children_;
  // Current parent node per stripe (-1 at the stripe root). Starts as the
  // forest parent and moves up the ancestor chain as parents depart.
  std::vector<NodeId> stripe_parent_;
  // Our parent connections, and which of them have completed their handshake.
  std::map<NodeId, ConnId> parent_conns_;
  std::set<ConnId> up_parent_conns_;
  // Backpressured per-child forwarding queues (block ids awaiting connection space).
  std::map<ConnId, std::deque<uint32_t>> pending_;
  bool drain_scheduled_ = false;
  // Stripe parents that had not joined their session at link time.
  std::set<NodeId> awaiting_join_;
  bool join_retry_scheduled_ = false;

  uint32_t next_push_block_ = 0;
};

// Registers "splitstream" in ProtocolRegistry::Global(). Idempotent. The
// stripe forest spans every node, so splitstream sessions must too.
void RegisterSplitStreamProtocol();

}  // namespace bullet

#endif  // SRC_BASELINES_SPLITSTREAM_H_
