// Shared state and bookkeeping for every file-dissemination protocol in this repo:
// file parameters, the local block map, completion detection, and metrics accounting.

#ifndef SRC_OVERLAY_DISSEMINATION_H_
#define SRC_OVERLAY_DISSEMINATION_H_

#include <cmath>
#include <memory>

#include "src/common/bitmap.h"
#include "src/common/sketch.h"
#include "src/overlay/protocol.h"
#include "src/overlay/streaming.h"

namespace bullet {

struct FileParams {
  int64_t block_bytes = 16 * 1024;  // the paper's transfer block size (Section 4.2)
  uint32_t num_blocks = 0;          // original file blocks n
  // Source-encoded (rateless) mode: the source emits a stream of distinct encoded
  // blocks; a receiver completes once it holds (1 + overhead) * n distinct blocks.
  bool encoded = false;
  double encoding_overhead = 0.04;  // the paper's measured reception overhead
  // Encoded sources keep minting fresh blocks while receivers lag; this bounds the
  // id space (and thus bitmap sizes). Push-only systems (SplitStream) need headroom:
  // a subtree behind a slow interior link misses a share of every stripe and only
  // completes because the stream keeps going.
  uint32_t encoded_space_factor = 8;

  int64_t file_bytes() const { return block_bytes * num_blocks; }
  // Size of the block-id space (encoded sources may emit beyond n).
  uint32_t BlockSpace() const { return encoded ? num_blocks * encoded_space_factor : num_blocks; }
  uint32_t DistinctNeeded() const {
    if (!encoded) {
      return num_blocks;
    }
    return static_cast<uint32_t>(std::ceil((1.0 + encoding_overhead) * num_blocks));
  }
};

class DisseminationProtocol : public Protocol {
 public:
  DisseminationProtocol(const Context& ctx, const FileParams& file, NodeId source)
      : Protocol(ctx), file_(file), source_(source), have_(file.BlockSpace()) {
    if (ctx.self == source && !file.encoded) {
      for (uint32_t b = 0; b < file.num_blocks; ++b) {
        have_.Set(b);
        sketch_.AddBlock(b);
      }
    }
  }

  bool complete() const {
    if (stream_ != nullptr) {
      // Streaming mode: done once every required position is held — an
      // encoded id space wraps onto positions, so distinct-block counting
      // does not apply.
      return self() == source_ || stream_->Complete();
    }
    return self() == source_ || have_.count() >= file_.DistinctNeeded();
  }
  const Bitmap& have() const { return have_; }
  const FileParams& file() const { return file_; }
  NodeId source() const { return source_; }
  bool is_source() const { return self() == source_; }

  // Switches this node into playback-deadline mode (SessionSpec::streaming).
  // Must be called before Start() — the protocol factory invokes it at the
  // member's join time, which anchors the late-joiner live-edge position.
  void ConfigureStreaming(const StreamingSpec& spec, SimTime session_start) {
    stream_ = std::make_unique<StreamPlayback>(spec, file_.num_blocks, file_.block_bytes,
                                               session_start, now());
    metrics().EnableStreaming(file_.num_blocks);
  }
  // Null in bulk mode.
  const StreamPlayback* stream() const { return stream_.get(); }

 protected:
  // Records an arriving block. Returns true if the block was new. Handles metrics
  // and completion recording. Completion is *session-scoped*: the metrics object
  // carries the session's receiver target and a harness-installed callback (see
  // RunMetrics::SetCompletionPolicy) — this node finishing only ends the run if
  // the workload layer decides every session is done. Without an installed
  // policy (a bare protocol wired to a raw RunMetrics) the historical
  // one-session rule applies: stop the network once every receiver is done.
  bool AcceptBlock(uint32_t id, int64_t wire_bytes) {
    NodeMetrics& m = metrics().node(self());
    // Snapshot before mutating: the completing block must see was_complete=false.
    const bool was_complete = complete();
    if (!have_.Set(id)) {
      ++m.duplicate_blocks;
      m.dup_bytes_in += wire_bytes;
      return false;
    }
    sketch_.AddBlock(id);
    ++m.useful_blocks;
    m.data_bytes_in += wire_bytes;
    if (metrics().record_arrivals) {
      m.block_arrivals.push_back(now());
    }
    if (stream_ != nullptr && stream_->MarkHeld(stream_->PositionOf(id))) {
      metrics().RecordPositionArrival(self(), stream_->PositionOf(id), now());
    }
    if (!is_source() && !was_complete && complete()) {
      metrics().RecordCompletion(self(), now());
      OnFileComplete();
      if (metrics().has_completion_policy()) {
        metrics().NotifyIfAllComplete();
      } else if (metrics().completed() >= metrics().num_nodes() - 1) {
        net().Stop();
      }
    }
    return true;
  }

  void AccountControlIn(int64_t bytes) { metrics().node(self()).ctrl_bytes_in += bytes; }
  void AccountControlOut(int64_t bytes) { metrics().node(self()).ctrl_bytes_out += bytes; }

  virtual void OnFileComplete() {}

  const AvailabilitySketch& sketch() const { return sketch_; }

  FileParams file_;
  NodeId source_;
  Bitmap have_;
  AvailabilitySketch sketch_;
  // Playback state when streaming mode is configured; null in bulk mode.
  std::unique_ptr<StreamPlayback> stream_;
};

}  // namespace bullet

#endif  // SRC_OVERLAY_DISSEMINATION_H_
