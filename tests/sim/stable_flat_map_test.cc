// StableFlatMap must be observationally identical to the std::map peer tables
// it replaced in the protocols: same ascending-key iteration order, same
// find/erase/emplace results, iterators that survive the protocols' usage
// patterns (held-iterator erase, conns snapshots), plus the arena properties
// std::map cannot give — stable entry addresses and exact live/peak byte
// telemetry that balances to zero at teardown and does not ratchet under
// churn.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/scale/stable_flat_map.h"

namespace bullet {
namespace {

void ExpectSameContents(StableFlatMap<uint64_t, int>& map,
                        const std::map<uint64_t, int>& reference) {
  ASSERT_EQ(map.size(), reference.size());
  auto it = map.begin();
  for (const auto& [key, value] : reference) {
    ASSERT_NE(it, map.end());
    EXPECT_EQ(it->first, key);
    EXPECT_EQ(it->second, value);
    ++it;
  }
  EXPECT_EQ(it, map.end());
}

TEST(StableFlatMap, RandomizedOpsMatchStdMap) {
  Rng rng(4242);
  ArenaCounter counter;
  StableFlatMap<uint64_t, int> map(&counter);
  std::map<uint64_t, int> reference;
  for (int op = 0; op < 20000; ++op) {
    // Structured keys on purpose: high bits carry a "partition id" the way
    // ConnIds do, stressing the hash mix rather than identity-friendly keys.
    const uint64_t key = (static_cast<uint64_t>(rng.UniformInt(0, 7)) << 56) |
                         static_cast<uint64_t>(rng.UniformInt(0, 400));
    const int kind = static_cast<int>(rng.UniformInt(0, 9));
    if (kind < 5) {
      const auto [it, inserted] = map.emplace(key, op);
      const auto [ref_it, ref_inserted] = reference.emplace(key, op);
      EXPECT_EQ(inserted, ref_inserted);
      EXPECT_EQ(it->first, ref_it->first);
      EXPECT_EQ(it->second, ref_it->second);
    } else if (kind < 8) {
      EXPECT_EQ(map.erase(key), reference.erase(key));
    } else {
      const auto it = map.find(key);
      const auto ref_it = reference.find(key);
      ASSERT_EQ(it == map.end(), ref_it == reference.end()) << key;
      if (ref_it != reference.end()) {
        EXPECT_EQ(it->second, ref_it->second);
        EXPECT_EQ(map.at(key), ref_it->second);
      }
      EXPECT_EQ(map.count(key), reference.count(key));
    }
    if (op % 1000 == 0) {
      ExpectSameContents(map, reference);
    }
  }
  ExpectSameContents(map, reference);
}

TEST(StableFlatMap, IterationIsAscendingByKey) {
  StableFlatMap<uint64_t, std::string> map;
  for (const uint64_t key : {9u, 2u, 14u, 5u, 0u, 7u}) {
    map.emplace(key, std::to_string(key));
  }
  std::vector<uint64_t> keys;
  for (const auto& [key, value] : map) {
    keys.push_back(key);
    EXPECT_EQ(value, std::to_string(key));
  }
  EXPECT_EQ(keys, (std::vector<uint64_t>{0, 2, 5, 7, 9, 14}));
}

TEST(StableFlatMap, HeldIteratorEraseAndReturnValue) {
  // The protocols scan for a victim, hold the iterator, then erase it
  // (DisconnectSender); erase must return the successor like std::map.
  StableFlatMap<uint64_t, int> map;
  for (uint64_t key = 0; key < 10; ++key) {
    map.emplace(key, static_cast<int>(key * key));
  }
  auto it = map.begin();
  while (it != map.end() && it->first != 4) {
    ++it;
  }
  ASSERT_NE(it, map.end());
  it = map.erase(it);
  ASSERT_NE(it, map.end());
  EXPECT_EQ(it->first, 5u);
  EXPECT_EQ(map.size(), 9u);
  EXPECT_EQ(map.count(4), 0u);
}

TEST(StableFlatMap, EntryAddressesAreStableAcrossGrowth) {
  StableFlatMap<uint64_t, int> map;
  map.emplace(1, 100);
  int* first = &map.at(1);
  for (uint64_t key = 2; key < 600; ++key) {
    map.emplace(key, static_cast<int>(key));
  }
  // Hundreds of inserts later (several slab and table growths), the original
  // entry has not moved.
  EXPECT_EQ(&map.at(1), first);
  EXPECT_EQ(*first, 100);
}

TEST(StableFlatMap, CounterTracksGrowthAndBalancesToZero) {
  ArenaCounter counter;
  {
    StableFlatMap<uint64_t, int> a(&counter);
    StableFlatMap<uint64_t, int> b(&counter);
    EXPECT_EQ(counter.current_bytes(), 0);
    for (uint64_t key = 0; key < 200; ++key) {
      a.emplace(key, 1);
      b.emplace(key * 3, 2);
    }
    EXPECT_GT(counter.current_bytes(), 0);
    EXPECT_GE(counter.peak_bytes(), counter.current_bytes());
    const int64_t peak = counter.peak_bytes();
    for (uint64_t key = 0; key < 200; ++key) {
      a.erase(key);
    }
    a.clear();
    EXPECT_GE(counter.peak_bytes(), peak);  // peak never decays
  }
  // Every byte the two maps charged was returned at destruction.
  EXPECT_EQ(counter.current_bytes(), 0);
  EXPECT_GT(counter.peak_bytes(), 0);
}

TEST(StableFlatMap, ChurnDoesNotRatchetMemory) {
  // Steady-state churn (the mega-swarm peer tables' life story): repeatedly
  // filling and draining the same working set must converge — tombstone
  // pressure triggers same-size rehashes, not doubling.
  ArenaCounter counter;
  StableFlatMap<uint64_t, int> map(&counter);
  Rng rng(99);
  int64_t settled = 0;
  for (int cycle = 0; cycle < 60; ++cycle) {
    for (int i = 0; i < 64; ++i) {
      map.emplace(static_cast<uint64_t>(rng.UniformInt(0, 1u << 20)), i);
    }
    while (!map.empty()) {
      map.erase(map.begin());
    }
    if (cycle == 5) {
      settled = counter.current_bytes() + map.SideBytes();
    }
  }
  EXPECT_EQ(counter.current_bytes() + map.SideBytes(), settled);
}

}  // namespace
}  // namespace bullet
