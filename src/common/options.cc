#include "src/common/options.h"

#include <cstdlib>
#include <cstring>

namespace bullet {

ReproScale GetReproScale() {
  // Pure read of the environment, re-evaluated per call so tests can setenv
  // between runs. getenv is safe from concurrent sweep workers as long as nothing
  // mutates the environment mid-sweep, which no library code does.
  ReproScale scale;
  const char* env = std::getenv("REPRO_SCALE");
  if (env != nullptr && std::strcmp(env, "full") == 0) {
    scale.file_scale = 1.0;
    scale.full = true;
  } else {
    // CI default: 20% of the paper's file sizes — large enough that transfer time,
    // not overlay formation, dominates, so orderings and rough factors match the
    // full-scale runs; small enough that the whole bench suite takes minutes.
    scale.file_scale = 0.20;
    scale.full = false;
  }
  return scale;
}

int64_t ScaledFileBytes(int64_t paper_bytes, int64_t block_bytes) {
  const ReproScale scale = GetReproScale();
  int64_t bytes = static_cast<int64_t>(static_cast<double>(paper_bytes) * scale.file_scale);
  int64_t blocks = bytes / block_bytes;
  if (blocks < 16) {
    blocks = 16;
  }
  return blocks * block_bytes;
}

}  // namespace bullet
