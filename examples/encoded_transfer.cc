// Source-encoded dissemination (Section 2.2 / 4.6): encodes a real file with the
// rateless LT codec, runs Bullet' in encoded mode (receivers complete at (1+eps)n
// distinct blocks), then decodes the same encoded-id stream locally to demonstrate
// the full path and the decode-progress cliff the paper describes ("even with n
// received blocks, only ~30% of the file content can be reconstructed").
//
// Usage: encoded_transfer [num_nodes] [file_mb]

#include <cstdio>
#include <cstdlib>

#include "src/codec/lt_codec.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/harness/scenarios.h"

int main(int argc, char** argv) {
  const int num_nodes = argc > 1 ? std::atoi(argv[1]) : 20;
  const double file_mb = argc > 2 ? std::atof(argv[2]) : 2.0;

  // --- Encode a real file ---
  bullet::Rng rng(99);
  std::vector<uint8_t> file(static_cast<size_t>(file_mb * 1024 * 1024));
  for (auto& b : file) {
    b = static_cast<uint8_t>(rng.Next());
  }
  constexpr size_t kBlock = 16 * 1024;
  bullet::LtEncoder encoder(file, kBlock);
  std::printf("file: %.1f MB -> %u source blocks of %zu KB\n", file_mb, encoder.num_blocks(),
              kBlock / 1024);

  // --- Disseminate in encoded mode ---
  bullet::ScenarioConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.file_mb = file_mb;
  cfg.force_encoded = true;
  cfg.seed = 31;
  const bullet::ScenarioResult r = bullet::RunScenario("bullet-prime", cfg);
  std::printf("encoded dissemination: %d/%d nodes complete, median %.1f s (4%% overhead rule)\n",
              r.completed, r.receivers, bullet::Percentile(r.completion_sec, 0.5));

  // --- Decode the same stream locally ---
  bullet::LtDecoder decoder(encoder.num_blocks(), kBlock);
  uint32_t sent = 0;
  uint32_t at_n = 0;
  while (!decoder.complete() && sent < encoder.num_blocks() * 3) {
    decoder.AddEncoded(sent, encoder.Encode(sent));
    ++sent;
    if (sent == encoder.num_blocks()) {
      at_n = decoder.recovered_count();
    }
  }
  if (!decoder.complete()) {
    std::printf("FAIL: decode did not complete\n");
    return 1;
  }
  const auto recovered = decoder.Reconstruct(static_cast<int64_t>(file.size()));
  std::printf("decode: %u encoded blocks used (%.1f%% reception overhead); at n blocks only "
              "%.0f%% of the file was reconstructable\n",
              sent, 100.0 * (static_cast<double>(sent) / encoder.num_blocks() - 1.0),
              100.0 * at_n / encoder.num_blocks());
  std::printf("%s\n", recovered == file ? "verified: decoded file is byte-identical"
                                        : "FAIL: decoded file differs");
  return recovered == file ? 0 : 1;
}
