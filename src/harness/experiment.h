// Single-session experiment harness — the legacy entry point, kept as a thin
// wrapper over the session/workload API (workload.h): one session spanning
// every node, all joining at t=0, driven by a caller-supplied protocol factory.
// Runs through WorkloadExperiment's time-zero join path, which executes the
// historical create-all-then-start-all loop before the event loop begins, so
// all pre-existing runs are byte-identical to the pre-workload harness.
//
// New code that needs staggered joins, member subsets, concurrent sessions or
// registry-named protocols should use WorkloadExperiment directly.

#ifndef SRC_HARNESS_EXPERIMENT_H_
#define SRC_HARNESS_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/harness/workload.h"
#include "src/overlay/control_tree.h"
#include "src/overlay/dissemination.h"
#include "src/overlay/protocol.h"
#include "src/sim/metrics.h"
#include "src/sim/network.h"

namespace bullet {

struct ExperimentParams {
  uint64_t seed = 1;
  FileParams file;
  NodeId source = 0;
  // Control-tree fanout. The source pushes fresh blocks only to its tree children,
  // so its fanout determines how many (randomly drawn, possibly lossy) core paths
  // carry fresh data into the overlay; 8 keeps injection robust to bad draws.
  int tree_fanout = 8;
  SimTime quantum = MsToSim(10);
  SimTime deadline = SecToSim(3600.0);
  bool record_arrivals = false;
  // Run the network's pre-PR tick loop (full flow rebuild + water-fill every
  // quantum) instead of the incremental allocator. A/B reference for the
  // perf_core_scale benchmark and the determinism tests.
  bool full_recompute_allocator = false;
  // Elide idle tick events entirely (see NetworkConfig::skip_idle_ticks; not
  // bit-reproducible against the default mode).
  bool skip_idle_ticks = false;
};

class Experiment {
 public:
  using ProtocolFactory =
      std::function<std::unique_ptr<Protocol>(const Protocol::Context&, const ControlTree*)>;

  Experiment(std::unique_ptr<Topology> topology, const ExperimentParams& params);
  // Convenience: wrap a concrete topology value (MeshTopology, RoutedTopology).
  template <typename TopologyType,
            typename = std::enable_if_t<std::is_base_of_v<Topology, std::decay_t<TopologyType>>>>
  Experiment(TopologyType topology, const ExperimentParams& params)
      : Experiment(std::make_unique<std::decay_t<TopologyType>>(std::move(topology)), params) {}

  Network& net() { return workload_->net(); }
  const ControlTree& tree() const { return workload_->session_tree(0); }
  RunMetrics& metrics() { return workload_->session_metrics(0); }
  const ExperimentParams& params() const { return params_; }
  WorkloadExperiment& workload() { return *workload_; }

  // Instantiates one protocol per node via `factory`, starts them all, runs until
  // every receiver completes or the deadline passes, and returns the metrics.
  RunMetrics Run(const ProtocolFactory& factory);

  // Access to a protocol instance after/during a run (for tests).
  Protocol* protocol(NodeId n) { return workload_->session_protocol(0, n); }

 private:
  ExperimentParams params_;
  std::unique_ptr<WorkloadExperiment> workload_;
};

}  // namespace bullet

#endif  // SRC_HARNESS_EXPERIMENT_H_
