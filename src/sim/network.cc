#include "src/sim/network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "src/common/logging.h"
#include "src/common/profiler.h"

namespace bullet {

void Network::MsgRing::push_back(QueuedMsg qm) {
  if (size_ == buf_.size()) {
    // Grow to the next power of two, unrolling the ring into natural order.
    const size_t new_cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<QueuedMsg> grown;
    grown.reserve(new_cap);
    for (size_t i = 0; i < size_; ++i) {
      grown.push_back(std::move(buf_[(head_ + i) & (buf_.size() - 1)]));
    }
    grown.resize(new_cap);
    buf_ = std::move(grown);
    head_ = 0;
  }
  buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(qm);
  ++size_;
}

void Network::MsgRing::pop_front() {
  buf_[head_] = QueuedMsg{};  // release the message now, not at overwrite time
  head_ = (head_ + 1) & (buf_.size() - 1);
  --size_;
}

void Network::MsgRing::clear_and_release() {
  buf_.clear();
  buf_.shrink_to_fit();
  head_ = 0;
  size_ = 0;
}

Network::Network(std::unique_ptr<Topology> topology, NetworkConfig config, uint64_t seed)
    : topology_(std::move(topology)),
      config_(config),
      rng_(seed),
      handlers_(static_cast<size_t>(topology_->num_nodes()), nullptr),
      tx_bytes_(static_cast<size_t>(topology_->num_nodes()), 0),
      rx_bytes_(static_cast<size_t>(topology_->num_nodes()), 0),
      failed_(static_cast<size_t>(topology_->num_nodes()), 0) {
  const size_t interior_ids = static_cast<size_t>(topology_->interior_id_limit());
  interior_epoch_.assign(interior_ids, 0);
  interior_link_id_.assign(interior_ids, -1);
  BULLET_CHECK((!config_.aggregate_flows ||
                config_.allocator_mode == NetworkConfig::AllocatorMode::kIncremental) &&
               "aggregate_flows requires the incremental allocator mode");
  current_rates_ = &alloc_.rates();
  BuildPartitions();
}

void Network::SetHandler(NodeId node, NetHandler* handler) {
  handlers_[static_cast<size_t>(node)] = handler;
}

Network::Conn* Network::GetConn(ConnId id) {
  if (id < 0) {
    return nullptr;
  }
  const int32_t store = static_cast<int32_t>(id >> kConnStoreShift);
  if (store == 0) {
    if (static_cast<size_t>(id) >= conns_.size()) {
      return nullptr;
    }
    return conns_[static_cast<size_t>(id)].get();
  }
  if (static_cast<size_t>(store) > partitions_.size()) {
    return nullptr;
  }
  ConnStore& cs = partitions_[static_cast<size_t>(store - 1)]->conns;
  const size_t idx = static_cast<size_t>(id & kConnIndexMask);
  if (idx >= cs.size_acquire()) {
    return nullptr;
  }
  return &cs.at(idx);
}

const Network::Conn* Network::GetConn(ConnId id) const {
  return const_cast<Network*>(this)->GetConn(id);
}

int Network::EndpointIndex(const Conn& c, NodeId node) {
  if (c.node[0] == node) {
    return 0;
  }
  if (c.node[1] == node) {
    return 1;
  }
  return -1;
}

// Fills one direction's PathCache from the topology and appends its interior
// route to `pool`. Coordinator-context only (topology queries).
void Network::FillPathCache(Conn& c, int i, std::vector<int32_t>& pool) {
  const NodeId src = c.node[i];
  const NodeId dst = c.node[1 - i];
  {
    BULLET_PROFILE_SCOPE(ProfilePhase::kTopologyMetrics);
    c.path[i].path_delay = topology_->PathDelay(src, dst);
    c.path[i].rtt = topology_->Rtt(src, dst);
    c.path[i].loss = topology_->PathLoss(src, dst);
  }
  {
    BULLET_PROFILE_SCOPE(ProfilePhase::kPathLookup);
    const Topology::PathView route = topology_->InteriorPath(src, dst);
    c.path[i].interior_off = static_cast<uint32_t>(pool.size());
    c.path[i].interior_len = route.size;
    pool.insert(pool.end(), route.begin(), route.end());
  }
}

// Establishment instant: TCP handshake done, directions with queued bytes go
// busy, both handlers hear OnConnUp. Runs on the global queue.
void Network::RunEstablishment(ConnId id) {
  Conn* c = GetConn(id);
  if (c == nullptr || c->closed) {
    return;
  }
  c->established = true;
  for (int i = 0; i < 2; ++i) {
    if (!c->dir[i].queue.empty()) {
      c->dir[i].tcp.OnBecameActive(now(), config_.tcp);
      ActivateDirection(*c, i);
    } else {
      c->dir[i].idle_since = now();
    }
  }
  for (int i = 0; i < 2; ++i) {
    NetHandler* h = handlers_[static_cast<size_t>(c->node[i])];
    if (h != nullptr) {
      h->OnConnUp(id, c->node[1 - i], /*initiator=*/i == 0);
    }
  }
}

ConnId Network::Connect(NodeId from, NodeId to) {
  if (from == to || IsNodeFailed(from) || IsNodeFailed(to)) {
    return -1;
  }
  if (parallel_) {
    const int p = CurrentPartitionIndex();
    if (p >= 0) {
      return ConnectInWorker(p, from, to);
    }
  }
  const ConnId id = static_cast<ConnId>(conns_.size());
  auto conn = std::make_unique<Conn>();
  conn->id = id;
  conn->node[0] = from;
  conn->node[1] = to;
  for (int i = 0; i < 2; ++i) {
    FillPathCache(*conn, i, path_pool_);
  }
  conns_.push_back(std::move(conn));
  conn_busy_mask_.push_back(0);
  open_conns_.push_back(id);

  // TCP three-way handshake plus the first application-level write.
  const SimTime established_at = now() + topology_->Rtt(from, to) * 3 / 2;
  queue_.Schedule(established_at, [this, id] { RunEstablishment(id); });
  return id;
}

// Worker-context Connect: allocate the connection in the partition's stable
// store so the caller gets a usable id immediately (it can Send right away —
// the bytes queue, exactly as on a not-yet-established serial connection), and
// stage a kConnect; the coordinator fills the path caches, registers the
// connection, and schedules establishment at the barrier.
ConnId Network::ConnectInWorker(int partition, NodeId from, NodeId to) {
  Partition& part = *partitions_[static_cast<size_t>(partition)];
  const size_t idx = part.conns.size_relaxed();
  const ConnId id =
      (static_cast<ConnId>(partition + 1) << kConnStoreShift) | static_cast<ConnId>(idx);
  Conn& c = part.conns.NewSlot();
  c.id = id;
  c.store = partition + 1;
  c.node[0] = from;
  c.node[1] = to;
  part.conns.Publish();
  StagedCmd cmd;
  cmd.kind = StagedCmd::Kind::kConnect;
  cmd.at = part.queue.now();
  cmd.conn = id;
  part.staged.push_back(std::move(cmd));
  return id;
}

void Network::Close(ConnId conn_id) {
  if (parallel_) {
    const int p = CurrentPartitionIndex();
    if (p >= 0) {
      Partition& part = *partitions_[static_cast<size_t>(p)];
      StagedCmd cmd;
      cmd.kind = StagedCmd::Kind::kClose;
      cmd.at = part.queue.now();
      cmd.conn = conn_id;
      part.staged.push_back(std::move(cmd));
      return;
    }
  }
  CloseAt(conn_id, queue_.now());
}

void Network::CloseAt(ConnId conn_id, SimTime at) {
  Conn* c = GetConn(conn_id);
  if (c == nullptr || c->closed) {
    return;
  }
  c->closed = true;
  for (auto& dir : c->dir) {
    if (c->established && !dir.queue.empty()) {
      --active_dirs_;
    }
    dir.queue.clear_and_release();
    dir.queued_bytes = 0;
    dir.rate_bps = 0.0;
  }
  BusyByte(*c) = 0;
  // The next quantum boundary compacts this entry out of open_conns_ (doing it
  // right here would reorder the list differently from one batched pass and
  // change max-min tie-breaking; see RebuildAndAllocate).
  ++pending_close_;
  alloc_dirty_ = true;
  WakeTicksIfPaused();
  // Notify both ends asynchronously; the remote end hears after one path delay.
  // CloseAt runs only in coordinator context, so the topology query is safe.
  for (int i = 0; i < 2; ++i) {
    const NodeId endpoint = c->node[i];
    const NodeId peer = c->node[1 - i];
    const SimTime t = i == 0 ? at : at + topology_->PathDelay(c->node[0], c->node[1]);
    queue_.Schedule(t, [this, conn_id, endpoint, peer] {
      NetHandler* h = handlers_[static_cast<size_t>(endpoint)];
      if (h != nullptr) {
        h->OnConnDown(conn_id, peer);
      }
    });
  }
}

bool Network::IsOpen(ConnId conn_id) const {
  const Conn* c = GetConn(conn_id);
  return c != nullptr && !c->closed;
}

bool Network::Send(ConnId conn_id, NodeId from, std::unique_ptr<Message> msg) {
  if (parallel_) {
    const int p = CurrentPartitionIndex();
    if (p >= 0) {
      // Validate against barrier-stable state (closes and endpoint identity
      // only change at barriers), then stage. A connection closed by another
      // partition in the same window still accepts the send here; the merge
      // drops it, exactly as a serial send racing a close would.
      Conn* c = GetConn(conn_id);
      if (c == nullptr || c->closed || msg == nullptr || EndpointIndex(*c, from) < 0) {
        return false;
      }
      Partition& part = *partitions_[static_cast<size_t>(p)];
      StagedCmd cmd;
      cmd.kind = StagedCmd::Kind::kSend;
      cmd.at = part.queue.now();
      cmd.conn = conn_id;
      cmd.from = from;
      cmd.msg = std::move(msg);
      part.staged.push_back(std::move(cmd));
      return true;
    }
  }
  return SendAt(conn_id, from, std::move(msg), queue_.now());
}

bool Network::SendAt(ConnId conn_id, NodeId from, std::unique_ptr<Message> msg, SimTime at) {
  Conn* c = GetConn(conn_id);
  if (c == nullptr || c->closed || msg == nullptr) {
    return false;
  }
  const int idx = EndpointIndex(*c, from);
  if (idx < 0) {
    return false;
  }
  Direction& dir = c->dir[idx];
  if (dir.queue.empty() && c->established) {
    dir.tcp.OnBecameActive(at, config_.tcp);
    ActivateDirection(*c, idx);
  }
  dir.queued_bytes += msg->wire_bytes;
  const double bytes = static_cast<double>(std::max<int64_t>(msg->wire_bytes, 1));
  dir.queue.push_back(QueuedMsg{std::move(msg), bytes});
  return true;
}

// Idle -> busy transition of an established direction: restart cap tracking and
// mark the flow set dirty so the next quantum re-water-fills.
void Network::ActivateDirection(Conn& c, int dir_idx) {
  c.dir[dir_idx].cap_steady = false;
  BusyByte(c) |= static_cast<uint8_t>(1 << dir_idx);
  ++active_dirs_;
  alloc_dirty_ = true;
  WakeTicksIfPaused();
}

size_t Network::QueuedMessages(ConnId conn_id, NodeId from) const {
  const Conn* c = GetConn(conn_id);
  if (c == nullptr) {
    return 0;
  }
  const int idx = EndpointIndex(*c, from);
  return idx < 0 ? 0 : c->dir[idx].queue.size();
}

int64_t Network::QueuedBytes(ConnId conn_id, NodeId from) const {
  const Conn* c = GetConn(conn_id);
  if (c == nullptr) {
    return 0;
  }
  const int idx = EndpointIndex(*c, from);
  return idx < 0 ? 0 : c->dir[idx].queued_bytes;
}

SimTime Network::IdleTime(ConnId conn_id, NodeId from) const {
  const Conn* c = GetConn(conn_id);
  if (c == nullptr) {
    return 0;
  }
  const int idx = EndpointIndex(*c, from);
  if (idx < 0 || !c->dir[idx].queue.empty()) {
    return 0;
  }
  return now() - c->dir[idx].idle_since;
}

double Network::CurrentRateBps(ConnId conn_id, NodeId from) const {
  const Conn* c = GetConn(conn_id);
  if (c == nullptr) {
    return 0.0;
  }
  const int idx = EndpointIndex(*c, from);
  return idx < 0 ? 0.0 : c->dir[idx].rate_bps;
}

int Network::CountFlowsOnInteriorLink(int32_t link_id) const {
  int flows = 0;
  for (const ConnId id : open_conns_) {
    const Conn* c = GetConn(id);
    if (c == nullptr || !c->established || c->closed) {
      continue;
    }
    for (int i = 0; i < 2; ++i) {
      if (c->dir[i].queued_bytes <= 0) {
        continue;
      }
      for (const int32_t* it = PathInteriorBegin(*c, c->path[i]);
           it != PathInteriorEnd(*c, c->path[i]); ++it) {
        if (*it == link_id) {
          ++flows;
          break;
        }
      }
    }
  }
  return flows;
}

double Network::InteriorLinkAllocatedBps(int32_t link_id) const {
  double bps = 0.0;
  for (const ConnId id : open_conns_) {
    const Conn* c = GetConn(id);
    if (c == nullptr || !c->established || c->closed) {
      continue;
    }
    for (int i = 0; i < 2; ++i) {
      if (c->dir[i].queued_bytes <= 0) {
        continue;
      }
      for (const int32_t* it = PathInteriorBegin(*c, c->path[i]);
           it != PathInteriorEnd(*c, c->path[i]); ++it) {
        if (*it == link_id) {
          bps += c->dir[i].rate_bps;
          break;
        }
      }
    }
  }
  return bps;
}

void Network::FailNode(NodeId node) {
  if (IsNodeFailed(node)) {
    return;
  }
  failed_[static_cast<size_t>(node)] = 1;
  for (const ConnId id : open_conns_) {
    const Conn* c = GetConn(id);
    if (c != nullptr && !c->closed && (c->node[0] == node || c->node[1] == node)) {
      Close(id);
    }
  }
}

void Network::ScheduleFirstTick() {
  tick_scheduled_ = true;
  tick_anchor_ = now() + config_.quantum;
  queue_.ScheduleAfter(config_.quantum, [this] { Tick(); });
}

void Network::ScheduleNextTick() {
  if (config_.skip_idle_ticks && active_dirs_ == 0 && pending_close_ == 0) {
    tick_paused_ = true;
    return;
  }
  queue_.ScheduleAfter(config_.quantum, [this] { Tick(); });
}

void Network::WakeTicksIfPaused() {
  if (!tick_paused_) {
    return;
  }
  tick_paused_ = false;
  tick_resumed_ = true;
  queue_.Schedule(NextGridTickTime(), [this] { Tick(); });
}

SimTime Network::NextGridTickTime() const {
  if (now() < tick_anchor_) {
    return tick_anchor_;
  }
  return tick_anchor_ + ((now() - tick_anchor_) / config_.quantum + 1) * config_.quantum;
}

// Removes closed connections in one ascending-position swap-with-back pass — the
// exact pass the pre-PR tick ran every quantum. Batch shape matters: the
// resulting permutation feeds the allocator, whose FP tie-breaking depends on
// flow order, so closes are compacted per quantum boundary rather than one by
// one at Close() time.
void Network::CompactOpenConns() {
  for (size_t i = 0; i < open_conns_.size();) {
    const Conn* c = GetConn(open_conns_[i]);
    if (c == nullptr || c->closed) {
      open_conns_[i] = open_conns_.back();
      open_conns_.pop_back();
    } else {
      ++i;
    }
  }
  pending_close_ = 0;
}

void Network::Tick() {
  SimTime dt = now() - last_tick_;
  if (tick_resumed_) {
    // Waking from an idle pause: the interval since the last executed tick
    // carried no transmissions, so the advance budget covers one quantum.
    dt = config_.quantum;
    tick_resumed_ = false;
  }
  last_tick_ = now();
  const double dt_sec = SimToSec(dt);

  if (pending_close_ > 0) {
    CompactOpenConns();
  }

  if (config_.allocator_mode == NetworkConfig::AllocatorMode::kFullRecompute) {
    TickFullRecompute(dt_sec);
    ScheduleNextTick();
    return;
  }

  if (active_dirs_ > 0) {
    const bool caps_same = CapacitiesUnchanged();
    if (alloc_dirty_ || !caps_same) {
      RebuildAndAllocate(caps_same);
    }
    AdvanceTransmissions(dt_sec);
  }

  ScheduleNextTick();
}

// True when every link capacity the last allocation used is unchanged, so the
// cached rates are still exact. Covers all access links plus the interior links
// that carried flows; links without flows cannot influence the allocation.
bool Network::CapacitiesUnchanged() const {
  const int n = topology_->num_nodes();
  if (base_caps_.size() != static_cast<size_t>(2 * n)) {
    return false;  // never allocated yet
  }
  for (NodeId i = 0; i < n; ++i) {
    if (topology_->uplink(i).bandwidth_bps != base_caps_[static_cast<size_t>(i)] ||
        topology_->downlink(i).bandwidth_bps != base_caps_[static_cast<size_t>(n + i)]) {
      return false;
    }
  }
  for (const InteriorCap& ic : interior_caps_) {
    if (topology_->interior_link(ic.id).bandwidth_bps != ic.cap) {
      return false;
    }
  }
  return true;
}

int32_t Network::InteriorLinkIdForEpoch(int32_t interior_id) {
  const size_t key = static_cast<size_t>(interior_id);
  // The epoch tables were sized from interior_id_limit() at construction; a
  // topology that grew interior links afterwards would index past them.
  BULLET_CHECK(key < interior_epoch_.size() &&
               "topology gained interior links after the network was built");
  if (interior_epoch_[key] != epoch_counter_) {
    interior_epoch_[key] = epoch_counter_;
    const double cap = topology_->interior_link(interior_id).bandwidth_bps;
    interior_link_id_[key] = alloc_.AddLink(cap);
    interior_caps_.push_back(InteriorCap{interior_id, cap});
  }
  return interior_link_id_[key];
}

// Rebuilds the active flow set and re-runs water-filling. Link ids and flow
// order replicate the pre-routed tick exactly: uplink(i) = i, downlink(i) = n + i,
// interior links assigned densely in first-use order while scanning open_conns_ —
// the allocator's FP results depend on these orders (see bandwidth_allocator.h).
void Network::RebuildAndAllocate(bool base_caps_unchanged) {
  BULLET_PROFILE_SCOPE(ProfilePhase::kAllocatorEpoch);
  ++allocator_epochs_;
  const int n = topology_->num_nodes();
  if (base_caps_unchanged && base_caps_.size() == static_cast<size_t>(2 * n)) {
    // Access-link capacities are verified unchanged; keep them in place.
    alloc_.BeginEpoch(static_cast<size_t>(2 * n));
  } else {
    alloc_.BeginEpoch(0);
    base_caps_.resize(static_cast<size_t>(2 * n));
    for (NodeId i = 0; i < n; ++i) {
      const double up = topology_->uplink(i).bandwidth_bps;
      alloc_.AddLink(up);
      base_caps_[static_cast<size_t>(i)] = up;
    }
    for (NodeId i = 0; i < n; ++i) {
      const double down = topology_->downlink(i).bandwidth_bps;
      alloc_.AddLink(down);
      base_caps_[static_cast<size_t>(n + i)] = down;
    }
  }
  ++epoch_counter_;
  interior_caps_.clear();
  cached_flows_.clear();
  ramping_flows_ = 0;

  for (const ConnId id : open_conns_) {
    const uint8_t busy = conn_busy_mask_[static_cast<size_t>(id)];
    if (busy == 0) {
      continue;  // no established direction with queued bytes
    }
    Conn* c = conns_[static_cast<size_t>(id)].get();
    for (int i = 0; i < 2; ++i) {
      if ((busy & (1 << i)) == 0) {
        continue;
      }
      Direction& dir = c->dir[i];
      const NodeId src = c->node[i];
      const NodeId dst = c->node[1 - i];
      // Allocator link list: uplink, downlink, then the interior links — the
      // historical (src, n+dst, core) order generalized to routed paths.
      flow_link_scratch_.clear();
      flow_link_scratch_.push_back(src);
      flow_link_scratch_.push_back(static_cast<int32_t>(n) + dst);
      for (const int32_t* it = PathInteriorBegin(*c, c->path[i]);
           it != PathInteriorEnd(*c, c->path[i]); ++it) {
        flow_link_scratch_.push_back(InteriorLinkIdForEpoch(*it));
      }
      if (!dir.cap_steady) {
        bool steady = false;
        dir.cap_cache = TcpRateCapDetail(dir.tcp, now(), c->path[i].rtt, c->path[i].loss,
                                         config_.tcp, &steady);
        dir.cap_steady = steady;
        if (!steady) {
          ++ramping_flows_;
        }
      }
      alloc_.AddFlowPath(flow_link_scratch_.data(), flow_link_scratch_.size(), dir.cap_cache);
      cached_flows_.push_back(CachedFlow{c, i});
    }
  }

  if (config_.aggregate_flows) {
    // Aggregated water-fill: bundles over the interior links only; the member
    // split and access-link bounds happen inside the aggregator.
    aggregator_.Allocate(alloc_, static_cast<size_t>(2 * n));
    current_rates_ = &aggregator_.rates();
    max_interior_link_flows_ =
        std::max(max_interior_link_flows_, aggregator_.max_interior_link_flows());
  } else {
    alloc_.Allocate();
    current_rates_ = &alloc_.rates();
    // Shared-bottleneck introspection: widest interior link of this epoch (links
    // below 2n are access links). The CSR row widths are valid after Allocate().
    for (size_t l = static_cast<size_t>(2 * n); l < alloc_.num_links(); ++l) {
      max_interior_link_flows_ = std::max(max_interior_link_flows_, alloc_.flows_on_link(l));
    }
  }
  // Ramping caps change next quantum, which changes the allocation; otherwise the
  // cached result stays exact until an activation/drain/close/capacity change.
  alloc_dirty_ = ramping_flows_ > 0;
}

void Network::AdvanceTransmissions(double dt_sec) {
  for (size_t fi = 0; fi < cached_flows_.size(); ++fi) {
    Conn* c = cached_flows_[fi].conn;
    const int dir_idx = cached_flows_[fi].dir_idx;
    if (c->closed) {
      continue;
    }
    Direction& dir = c->dir[dir_idx];
    if (dir.queue.empty()) {
      continue;
    }
    dir.rate_bps = (*current_rates_)[fi];
    dir.tcp.last_busy = now();
    double budget = dir.rate_bps / 8.0 * dt_sec;
    while (!dir.queue.empty() && budget >= dir.queue.front().remaining_bytes) {
      QueuedMsg qm = std::move(dir.queue.front());
      dir.queue.pop_front();
      budget -= qm.remaining_bytes;
      dir.queued_bytes -= qm.msg->wire_bytes;
      tx_bytes_[static_cast<size_t>(c->node[dir_idx])] += qm.msg->wire_bytes;
      // Delivery is scheduled, not synchronous, so no reentrancy happens here.
      EnqueueDelivery(c->id, *c, dir_idx, std::move(qm.msg));
    }
    if (!dir.queue.empty()) {
      dir.queue.front().remaining_bytes -= budget;
    } else {
      dir.idle_since = now();
      dir.rate_bps = 0.0;
      BusyByte(*c) &= static_cast<uint8_t>(~(1 << dir_idx));
      --active_dirs_;
      alloc_dirty_ = true;
    }
  }
}

// The pre-PR tick body: rebuild every auxiliary structure and recompute all
// rates each quantum. Kept as the A/B reference for the perf_core_scale
// benchmark and the determinism tests.
void Network::TickFullRecompute(double dt_sec) {
  // Build the active flow set. Link ids: uplink(n) = n, downlink(n) = N + n,
  // interior links assigned densely on demand.
  const int n = topology_->num_nodes();
  std::vector<PathFlowSpec> flows;
  std::vector<std::pair<ConnId, int>> flow_dirs;
  std::vector<double> capacities(static_cast<size_t>(2 * n));
  for (NodeId i = 0; i < n; ++i) {
    capacities[static_cast<size_t>(i)] = topology_->uplink(i).bandwidth_bps;
    capacities[static_cast<size_t>(n + i)] = topology_->downlink(i).bandwidth_bps;
  }
  std::unordered_map<int32_t, int32_t> interior_ids;
  for (const ConnId id : open_conns_) {
    Conn* c = GetConn(id);
    if (!c->established) {
      continue;
    }
    for (int i = 0; i < 2; ++i) {
      Direction& dir = c->dir[i];
      if (dir.queue.empty()) {
        dir.rate_bps = 0.0;
        continue;
      }
      const NodeId src = c->node[i];
      const NodeId dst = c->node[1 - i];
      PathFlowSpec flow;
      flow.links.reserve(2 + c->path[i].interior_len);
      flow.links.push_back(src);
      flow.links.push_back(static_cast<int32_t>(n) + dst);
      for (const int32_t* pi = PathInteriorBegin(*c, c->path[i]);
           pi != PathInteriorEnd(*c, c->path[i]); ++pi) {
        auto [it, inserted] = interior_ids.emplace(*pi, static_cast<int32_t>(capacities.size()));
        if (inserted) {
          capacities.push_back(topology_->interior_link(*pi).bandwidth_bps);
        }
        flow.links.push_back(it->second);
      }
      // The PathCache snapshot equals the live Rtt/PathLoss lookups the pre-PR
      // code performed here: delay and loss are static for a run's lifetime.
      flow.cap_bps = TcpRateCapBps(dir.tcp, now(), c->path[i].rtt, c->path[i].loss, config_.tcp);
      flows.push_back(std::move(flow));
      flow_dirs.emplace_back(id, i);
    }
  }

  ++allocator_epochs_;
  {
    BULLET_PROFILE_SCOPE(ProfilePhase::kAllocatorEpoch);
    AllocateMaxMinPaths(flows, capacities);
  }
  // Shared-bottleneck introspection, mirroring RebuildAndAllocate: interior
  // link ids start at 2n; count per-link flows directly from the flow lists.
  if (capacities.size() > static_cast<size_t>(2 * n)) {
    std::vector<int32_t> interior_flow_counts(capacities.size() - static_cast<size_t>(2 * n), 0);
    for (const PathFlowSpec& flow : flows) {
      for (const int32_t l : flow.links) {
        if (l >= 2 * n) {
          ++interior_flow_counts[static_cast<size_t>(l - 2 * n)];
        }
      }
    }
    for (const int32_t count : interior_flow_counts) {
      max_interior_link_flows_ = std::max(max_interior_link_flows_, count);
    }
  }

  // Advance transmissions.
  for (size_t fi = 0; fi < flows.size(); ++fi) {
    const auto [conn_id, dir_idx] = flow_dirs[fi];
    Conn* c = GetConn(conn_id);
    if (c == nullptr || c->closed) {
      continue;
    }
    Direction& dir = c->dir[dir_idx];
    dir.rate_bps = flows[fi].rate_bps;
    dir.tcp.last_busy = now();
    double budget = dir.rate_bps / 8.0 * dt_sec;
    while (!dir.queue.empty() && budget >= dir.queue.front().remaining_bytes) {
      QueuedMsg qm = std::move(dir.queue.front());
      dir.queue.pop_front();
      budget -= qm.remaining_bytes;
      dir.queued_bytes -= qm.msg->wire_bytes;
      tx_bytes_[static_cast<size_t>(c->node[dir_idx])] += qm.msg->wire_bytes;
      EnqueueDelivery(conn_id, *c, dir_idx, std::move(qm.msg));
    }
    if (!dir.queue.empty()) {
      dir.queue.front().remaining_bytes -= budget;
    } else {
      dir.idle_since = now();
      dir.rate_bps = 0.0;
      conn_busy_mask_[static_cast<size_t>(conn_id)] &= static_cast<uint8_t>(~(1 << dir_idx));
      --active_dirs_;
      alloc_dirty_ = true;
    }
  }
}

void Network::EnqueueDelivery(ConnId conn_id, Conn& c, int sender_idx, std::unique_ptr<Message> msg) {
  const PathCache& path = c.path[sender_idx];
  Direction& dir = c.dir[sender_idx];

  SimTime delivered_at = now() + path.path_delay;
  if (config_.loss_latency) {
    const double p = path.loss;
    if (p > 0.0) {
      const double packets =
          std::max(1.0, std::ceil(static_cast<double>(msg->wire_bytes) / config_.tcp.mss_bytes));
      const double p_msg = 1.0 - std::pow(1.0 - p, packets);
      if (rng_.Bernoulli(p_msg)) {
        // Fast retransmit in the common case; occasionally a full RTO.
        const SimTime rtt = path.rtt;
        SimTime penalty = rtt + rtt / 2;
        if (rng_.Bernoulli(0.2)) {
          penalty = std::max<SimTime>(MsToSim(200), 2 * rtt);
        }
        delivered_at += penalty;
      }
    }
  }
  delivered_at = std::max(delivered_at, dir.delivery_floor);
  dir.delivery_floor = delivered_at;

  const int receiver_idx = 1 - sender_idx;
  // Delivery executes on the receiver's queue: the node's partition queue
  // under the parallel engine (delivered_at is past the current barrier, since
  // this runs at barrier time and path delays are positive), the global queue
  // otherwise — where node_queue() is exactly queue_.
  node_queue(c.node[receiver_idx])
      .Schedule(delivered_at, [this, conn_id, receiver_idx, msg = std::move(msg)]() mutable {
        DeliverMessage(conn_id, receiver_idx, std::move(msg));
      });
}

void Network::DeliverMessage(ConnId conn_id, int receiver_idx, std::unique_ptr<Message> msg) {
  Conn* c = GetConn(conn_id);
  if (c == nullptr || c->closed || msg == nullptr) {
    return;
  }
  const NodeId receiver = c->node[receiver_idx];
  const NodeId sender = c->node[1 - receiver_idx];
  rx_bytes_[static_cast<size_t>(receiver)] += msg->wire_bytes;
  NetHandler* h = handlers_[static_cast<size_t>(receiver)];
  if (h != nullptr) {
    BULLET_PROFILE_SCOPE(ProfilePhase::kProtocolLogic);
    h->OnMessage(conn_id, sender, std::move(msg));
  }
}

int64_t Network::total_bytes_sent() const {
  int64_t total = 0;
  for (const int64_t b : tx_bytes_) {
    total += b;
  }
  return total;
}

size_t Network::route_cache_bytes() const {
  const RoutedTopology* routed = topology_->AsRouted();
  return routed != nullptr ? routed->route_cache_bytes() : 0;
}

size_t Network::path_pool_bytes() const {
  size_t bytes = path_pool_.capacity() * sizeof(int32_t);
  for (const auto& part : partitions_) {
    bytes += part->path_pool.capacity() * sizeof(int32_t);
  }
  return bytes;
}

void Network::Stop() {
  if (parallel_) {
    stop_flag_.store(true, std::memory_order_relaxed);
    const int p = CurrentPartitionIndex();
    if (p >= 0) {
      // Stop the caller's own window early (its remaining window events are
      // deterministically elided); the engine exits at the barrier.
      partitions_[static_cast<size_t>(p)]->queue.Stop();
      return;
    }
  }
  queue_.Stop();
}

void Network::ScheduleGlobal(SimTime at, EventQueue::Callback fn) {
  if (parallel_) {
    const int p = CurrentPartitionIndex();
    if (p >= 0) {
      Partition& part = *partitions_[static_cast<size_t>(p)];
      StagedCmd cmd;
      cmd.kind = StagedCmd::Kind::kGlobal;
      cmd.at = at;
      cmd.fn = std::move(fn);
      part.staged.push_back(std::move(cmd));
      return;
    }
  }
  queue_.Schedule(at, std::move(fn));
}

// Computes the partition plan: nodes grouped by their stub domain's transit
// router, transit routers grouped contiguously into partitions, the whole plan
// validated against the conservative-sync lookahead (minimum cross-partition
// path delay must cover one quantum). Falls back to the serial engine — by
// leaving parallel_ false — whenever the preconditions fail.
void Network::BuildPartitions() {
  if (config_.num_threads <= 1 ||
      config_.allocator_mode != NetworkConfig::AllocatorMode::kIncremental) {
    return;
  }
  const RoutedTopology* routed = topology_->AsRouted();
  if (routed == nullptr) {
    return;
  }
  const RoutedTopology::TransitStubInfo* ts = routed->transit_stub_info();
  if (ts == nullptr || ts->num_transit_routers < 2) {
    return;
  }
  const int n = topology_->num_nodes();
  if (n == 0) {
    return;
  }

  // Access-link delay floors (every overlay path crosses one uplink and one
  // downlink), shared by every candidate plan.
  SimTime min_up = std::numeric_limits<SimTime>::max();
  SimTime min_down = std::numeric_limits<SimTime>::max();
  for (NodeId i = 0; i < n; ++i) {
    min_up = std::min(min_up, topology_->uplink(i).delay);
    min_down = std::min(min_down, topology_->downlink(i).delay);
  }

  // Node -> transit router, via attach router -> stub domain.
  std::vector<int32_t> node_transit(static_cast<size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    const int domain = ts->stub_domain_of_router(routed->attach(i));
    BULLET_CHECK(domain >= 0 && "overlay node attached to a transit router");
    node_transit[static_cast<size_t>(i)] = ts->transit_router(domain);
  }

  int np = std::min(config_.num_threads, ts->num_transit_routers);
  std::vector<int32_t> plan;  // node -> partition for the candidate np
  while (np > 1) {
    plan.resize(static_cast<size_t>(n));
    // Per-partition attach-router sets for the lookahead Dijkstras.
    std::vector<std::vector<int32_t>> part_routers(static_cast<size_t>(np));
    std::vector<char> seen(static_cast<size_t>(routed->num_routers()) * static_cast<size_t>(np),
                           0);
    for (NodeId i = 0; i < n; ++i) {
      const int p = node_transit[static_cast<size_t>(i)] * np / ts->num_transit_routers;
      plan[static_cast<size_t>(i)] = p;
      const int32_t r = routed->attach(i);
      char& s = seen[static_cast<size_t>(p) * static_cast<size_t>(routed->num_routers()) +
                     static_cast<size_t>(r)];
      if (s == 0) {
        s = 1;
        part_routers[static_cast<size_t>(p)].push_back(r);
      }
    }
    // Minimum cross-partition interior delay: from each partition's attach
    // routers (multi-source) to every other partition's attach routers.
    SimTime min_interior = std::numeric_limits<SimTime>::max();
    bool nonempty = true;
    for (int p = 0; p < np; ++p) {
      if (part_routers[static_cast<size_t>(p)].empty()) {
        nonempty = false;
        break;
      }
    }
    if (nonempty) {
      for (int p = 0; p < np; ++p) {
        const std::vector<SimTime> dist =
            routed->RouterDistancesFrom(part_routers[static_cast<size_t>(p)]);
        for (int q = 0; q < np; ++q) {
          if (q == p) {
            continue;
          }
          for (const int32_t r : part_routers[static_cast<size_t>(q)]) {
            const SimTime d = dist[static_cast<size_t>(r)];
            if (d >= 0) {
              min_interior = std::min(min_interior, d);
            }
          }
        }
      }
      if (min_interior != std::numeric_limits<SimTime>::max()) {
        const SimTime lookahead = min_up + min_interior + min_down;
        if (lookahead >= config_.quantum) {
          lookahead_ = lookahead;
          break;  // plan accepted
        }
      }
    }
    --np;  // fewer partitions merge the closest domains; retry
  }
  if (np <= 1) {
    return;  // no multi-partition plan covers the quantum: serial engine
  }

  node_partition_ = std::move(plan);
  partitions_.reserve(static_cast<size_t>(np));
  for (int p = 0; p < np; ++p) {
    partitions_.push_back(std::make_unique<Partition>());
  }
  for (NodeId i = 0; i < n; ++i) {
    partitions_[static_cast<size_t>(node_partition_[static_cast<size_t>(i)])]->nodes.push_back(i);
  }
  // All route state the coordinator will query is built up front; after this,
  // workers never touch the topology (see topology.h's thread-safety note).
  routed->PrewarmRoutes();
  parallel_ = true;
}

void Network::EnsurePool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<WorkerPool>(static_cast<int>(partitions_.size()),
                                         PhaseProfiler::Current());
  }
}

// Applies every staged worker command in the documented deterministic merge
// order: ascending partition id, then staging order (the source partition's
// own event order). Runs at the barrier, before the global queue catches up,
// so queue_.now() (the previous barrier) never exceeds any staged timestamp
// and Schedule's past-clamp stays inert.
void Network::MergeStaged() {
  BULLET_PROFILE_SCOPE(ProfilePhase::kMerge);
  for (auto& part_ptr : partitions_) {
    Partition& part = *part_ptr;
    for (StagedCmd& cmd : part.staged) {
      switch (cmd.kind) {
        case StagedCmd::Kind::kSend:
          SendAt(cmd.conn, cmd.from, std::move(cmd.msg), cmd.at);
          break;
        case StagedCmd::Kind::kClose:
          CloseAt(cmd.conn, cmd.at);
          break;
        case StagedCmd::Kind::kConnect: {
          Conn* c = GetConn(cmd.conn);
          for (int i = 0; i < 2; ++i) {
            FillPathCache(*c, i, part.path_pool);
          }
          open_conns_.push_back(cmd.conn);
          const ConnId id = cmd.conn;
          queue_.Schedule(cmd.at + c->path[0].rtt * 3 / 2, [this, id] { RunEstablishment(id); });
          break;
        }
        case StagedCmd::Kind::kGlobal:
          queue_.Schedule(cmd.at, std::move(cmd.fn));
          break;
      }
    }
    part.staged.clear();
  }
}

// The barrier-time counterpart of Tick(). The parallel engine has no tick
// *event*: the allocator runs here, at each anchor + k*quantum barrier, which
// is the identical cadence (skip_idle_ticks is ignored — the windows
// themselves are the clock).
void Network::TickParallel() {
  const SimTime dt = queue_.now() - last_tick_;
  last_tick_ = queue_.now();
  if (pending_close_ > 0) {
    CompactOpenConns();
  }
  if (active_dirs_ > 0) {
    const bool caps_same = CapacitiesUnchanged();
    if (alloc_dirty_ || !caps_same) {
      RebuildAndAllocateParallel(caps_same);
    }
    AdvanceTransmissions(SimToSec(dt));
  }
}

// RebuildAndAllocate, restructured for the pool: the flow scan, CSR assembly
// and link numbering stay serial (they define allocation order, which the
// max-min arithmetic depends on), while the TCP-cap evaluation — the
// transcendental-heavy part — shards across workers over disjoint flow
// ranges, and the water-fill itself runs AllocateParallel.
void Network::RebuildAndAllocateParallel(bool base_caps_unchanged) {
  BULLET_PROFILE_SCOPE(ProfilePhase::kAllocatorEpoch);
  ++allocator_epochs_;
  const int n = topology_->num_nodes();
  if (base_caps_unchanged && base_caps_.size() == static_cast<size_t>(2 * n)) {
    alloc_.BeginEpoch(static_cast<size_t>(2 * n));
  } else {
    alloc_.BeginEpoch(0);
    base_caps_.resize(static_cast<size_t>(2 * n));
    for (NodeId i = 0; i < n; ++i) {
      const double up = topology_->uplink(i).bandwidth_bps;
      alloc_.AddLink(up);
      base_caps_[static_cast<size_t>(i)] = up;
    }
    for (NodeId i = 0; i < n; ++i) {
      const double down = topology_->downlink(i).bandwidth_bps;
      alloc_.AddLink(down);
      base_caps_[static_cast<size_t>(n + i)] = down;
    }
  }
  ++epoch_counter_;
  interior_caps_.clear();
  cached_flows_.clear();
  ramping_flows_ = 0;

  // Pass 1 (serial): the canonical busy-flow scan, defining flow order.
  for (const ConnId id : open_conns_) {
    Conn* c = GetConn(id);
    const uint8_t busy = BusyByte(*c);
    if (busy == 0) {
      continue;
    }
    for (int i = 0; i < 2; ++i) {
      if ((busy & (1 << i)) != 0) {
        cached_flows_.push_back(CachedFlow{c, i});
      }
    }
  }

  // Pass 2 (sharded): TCP-cap evaluation. Each worker owns a contiguous flow
  // range — disjoint cap_cache/cap_steady writes — and counts its ramping
  // flows into its own slot; the fold below is in worker-index order. The
  // evaluation itself is identical either way (same per-flow writes, same
  // ramping total), so the shard threshold is pure scheduling: below it the
  // pool's dispatch+join costs more than the cap math it would spread.
  constexpr size_t kCapShardMinFlows = 2048;
  const size_t nf = cached_flows_.size();
  const SimTime tick_now = queue_.now();
  auto eval_caps = [this, tick_now](size_t lo, size_t hi) {
    size_t ramping = 0;
    for (size_t fi = lo; fi < hi; ++fi) {
      Conn* c = cached_flows_[fi].conn;
      const int i = cached_flows_[fi].dir_idx;
      Direction& dir = c->dir[i];
      if (!dir.cap_steady) {
        bool steady = false;
        dir.cap_cache = TcpRateCapDetail(dir.tcp, tick_now, c->path[i].rtt, c->path[i].loss,
                                         config_.tcp, &steady);
        dir.cap_steady = steady;
        if (!steady) {
          ++ramping;
        }
      }
    }
    return ramping;
  };
  if (nf >= kCapShardMinFlows) {
    const size_t nw = static_cast<size_t>(pool_->num_threads());
    shard_ramping_.assign(nw, 0);
    pool_->RunOnAll([this, nf, nw, &eval_caps](int w) {
      shard_ramping_[static_cast<size_t>(w)] =
          eval_caps(nf * static_cast<size_t>(w) / nw, nf * (static_cast<size_t>(w) + 1) / nw);
    });
    for (const size_t r : shard_ramping_) {
      ramping_flows_ += r;
    }
  } else {
    ramping_flows_ += eval_caps(0, nf);
  }

  // Pass 3 (serial): CSR assembly and interior-link numbering in flow order —
  // identical numbering to the serial rebuild over the same flow sequence.
  for (const CachedFlow& cf : cached_flows_) {
    Conn* c = cf.conn;
    const int i = cf.dir_idx;
    flow_link_scratch_.clear();
    flow_link_scratch_.push_back(c->node[i]);
    flow_link_scratch_.push_back(static_cast<int32_t>(n) + c->node[1 - i]);
    for (const int32_t* it = PathInteriorBegin(*c, c->path[i]);
         it != PathInteriorEnd(*c, c->path[i]); ++it) {
      flow_link_scratch_.push_back(InteriorLinkIdForEpoch(*it));
    }
    alloc_.AddFlowPath(flow_link_scratch_.data(), flow_link_scratch_.size(),
                       c->dir[i].cap_cache);
  }

  if (config_.aggregate_flows) {
    // The aggregated water-fill runs serially at the barrier: the bundle
    // count it allocates over is far below the flow count that makes the
    // sharded fill worthwhile, and serial execution keeps it deterministic
    // and identical to the serial engine's aggregated epoch.
    aggregator_.Allocate(alloc_, static_cast<size_t>(2 * n));
    current_rates_ = &aggregator_.rates();
    max_interior_link_flows_ =
        std::max(max_interior_link_flows_, aggregator_.max_interior_link_flows());
  } else {
    alloc_.AllocateParallel(pool_.get());
    current_rates_ = &alloc_.rates();
    for (size_t l = static_cast<size_t>(2 * n); l < alloc_.num_links(); ++l) {
      max_interior_link_flows_ = std::max(max_interior_link_flows_, alloc_.flows_on_link(l));
    }
  }
  alloc_dirty_ = ramping_flows_ > 0;
}

// The superstep loop. Each iteration: run every partition's window in
// parallel up to the next quantum-grid barrier, merge staged commands, catch
// the global queue up, then execute the allocator tick at the barrier.
void Network::ParallelRun(SimTime until) {
  EnsurePool();
  if (!tick_scheduled_) {
    // No tick event exists under the parallel engine; the barriers fire on the
    // same anchor + k*quantum grid the serial tick would.
    tick_scheduled_ = true;
    tick_anchor_ = queue_.now() + config_.quantum;
    last_tick_ = queue_.now();
  }
  stop_flag_.store(false, std::memory_order_relaxed);
  while (queue_.now() < until) {
    const SimTime t = queue_.now();
    const SimTime grid =
        t < tick_anchor_
            ? tick_anchor_
            : tick_anchor_ + ((t - tick_anchor_) / config_.quantum + 1) * config_.quantum;
    const SimTime window_end = std::min(grid, until);
    pool_->RunOnAll([this, window_end](int w) {
      PartitionScope scope(w);
      Partition& part = *partitions_[static_cast<size_t>(w)];
      part.window_events = part.queue.RunWindow(window_end);
    });
    for (const auto& part : partitions_) {
      events_executed_ += part->window_events;
    }
    MergeStaged();
    events_executed_ += queue_.RunUntil(window_end);
    if (queue_.stopped() || stop_flag_.load(std::memory_order_relaxed)) {
      // Mirror the serial engine: Stop() leaves the clock at the last executed
      // event rather than advancing to the barrier.
      break;
    }
    queue_.SyncNow(window_end);
    if (window_end == grid) {
      TickParallel();
      ++events_executed_;  // the serial engine's tick event, executed inline
    }
  }
}

void Network::Run(SimTime until) {
  if (parallel_) {
    ParallelRun(until);
  } else {
    if (!tick_scheduled_) {
      ScheduleFirstTick();
    }
    events_executed_ += queue_.RunUntil(until);
  }
  // Publish the deltas since the last publication into the harness's installed
  // per-run counters (if any); several networks may feed one run's totals.
  // Parallel mode publishes here too — on the coordinator, after the final
  // barrier — so counters are only ever written by the thread calling Run().
  if (RunCounters* rc = RunCounters::Current()) {
    rc->events_executed += events_executed_ - rc_published_events_;
    rc->allocator_epochs += allocator_epochs_ - published_epochs_;
    const int64_t bytes = total_bytes_sent();
    rc->sim_bytes_sent += static_cast<uint64_t>(bytes - published_bytes_);
    rc_published_events_ = events_executed_;
    published_epochs_ = allocator_epochs_;
    published_bytes_ = bytes;
  }
}

}  // namespace bullet
