// Bullet' configuration. Defaults reproduce the released configuration described in
// Section 3.3 of the paper; the alternative settings exist to reproduce the design-
// space experiments (Sections 4.3-4.5).

#ifndef SRC_CORE_CONFIG_H_
#define SRC_CORE_CONFIG_H_

#include "src/sim/time.h"

namespace bullet {

enum class RequestStrategy {
  kFirstEncountered,  // request in discovery order
  kRandom,            // uniformly random among known-available
  kRarest,            // least-represented first, deterministic ties
  kRarestRandom,      // least-represented first, random ties (the Bullet' default)
};

struct BulletPrimeConfig {
  RequestStrategy request_strategy = RequestStrategy::kRarestRandom;

  // --- Peering (Section 3.3.1) ---
  bool dynamic_peer_sets = true;  // false: keep initial_* fixed (Figs. 7-9)
  int initial_senders = 10;
  int initial_receivers = 10;
  int min_peers = 6;    // hard minimum for senders and receivers
  int max_peers = 25;   // hard maximum for senders and receivers
  double trim_stddevs = 1.5;  // disconnect peers more than this many sigma below mean

  // --- Flow control (Section 3.3.3) ---
  bool dynamic_outstanding = true;  // false: keep fixed_outstanding (Figs. 10-12)
  int fixed_outstanding = 5;
  double initial_outstanding = 3.0;  // the paper's starting pipeline of 3 blocks
  double xcp_alpha = 0.4;            // XCP efficiency-controller gains
  double xcp_beta = 0.226;

  // --- Availability diffs (Section 3.3.4) ---
  int piggyback_limit = 32;          // new block-ids carried per data block
  SimTime diff_flush_delay = MsToSim(100);  // coalescing window for idle receivers

  // --- Source (Section 3.3.5) ---
  // The source's per-child queue threshold: skip a child whose pipe already holds
  // this many unsent blocks (so the source never forces a block on a busy child).
  int source_child_queue_blocks = 2;
  SimTime source_push_retry = MsToSim(20);
  // Ablation: pick a random non-busy child per block instead of round-robin. The
  // paper's source iterates round-robin so every block enters the overlay exactly
  // once before any repeats; random selection keeps that property but skews how
  // evenly fresh blocks spread across subtrees.
  bool source_random_push = false;
};

}  // namespace bullet

#endif  // SRC_CORE_CONFIG_H_
