#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bullet {

namespace {

LogLevel ParseEnvLevel() {
  const char* env = std::getenv("BULLET_LOG");
  if (env == nullptr) {
    return LogLevel::kOff;
  }
  if (std::strcmp(env, "debug") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(env, "info") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(env, "warn") == 0) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(env, "error") == 0) {
    return LogLevel::kError;
  }
  return LogLevel::kOff;
}

// Atomic so concurrent sweep workers can consult the level while a test (or a
// future admin surface) flips it; relaxed ordering is enough for a threshold.
std::atomic<LogLevel> g_level{ParseEnvLevel()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel GlobalLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetGlobalLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(GlobalLogLevel());
}

void LogLine(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
}

namespace log_internal {

void CheckFail(const char* condition, const char* file, int line) {
  std::fprintf(stderr, "BULLET_CHECK failed: %s (%s:%d)\n", condition, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace log_internal

}  // namespace bullet
