#include "src/rsyncx/delta.h"

#include <gtest/gtest.h>

#include <tuple>

#include "src/common/rng.h"
#include "src/rsyncx/rolling_checksum.h"

namespace bullet {
namespace {

Bytes RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return out;
}

TEST(RollingChecksum, RollMatchesRecompute) {
  const Bytes data = RandomBytes(4096, 1);
  constexpr size_t kWindow = 256;
  RollingChecksum rc;
  rc.Init(data.data(), kWindow);
  for (size_t pos = 0; pos + kWindow < data.size(); ++pos) {
    EXPECT_EQ(rc.value(), RollingChecksum::Compute(data.data() + pos, kWindow)) << pos;
    rc.Roll(data[pos], data[pos + kWindow]);
  }
}

TEST(RollingChecksum, SensitiveToOrder) {
  const Bytes a = {1, 2, 3, 4};
  const Bytes b = {4, 3, 2, 1};
  EXPECT_NE(RollingChecksum::Compute(a.data(), 4), RollingChecksum::Compute(b.data(), 4));
}

TEST(Signature, BlocksAndSizes) {
  const Bytes data = RandomBytes(1000, 2);
  const FileSignature sig = ComputeSignature(data, 256);
  EXPECT_EQ(sig.blocks.size(), 4u);  // 256*3 + 232
  EXPECT_EQ(sig.file_size, 1000u);
  EXPECT_GT(sig.WireBytes(), 0);
}

TEST(Delta, IdenticalFilesAreAllCopies) {
  const Bytes data = RandomBytes(8192, 3);
  const FileDelta delta = ComputeDelta(data, ComputeSignature(data, 512));
  EXPECT_EQ(delta.LiteralBytes(), 0);
  ASSERT_EQ(delta.commands.size(), 1u);  // one coalesced copy run
  EXPECT_EQ(delta.commands[0].kind, DeltaCommand::Kind::kCopy);
  EXPECT_EQ(delta.commands[0].count, 16u);
  EXPECT_EQ(ApplyDelta(data, delta), data);
}

TEST(Delta, CompletelyDifferentFilesAreLiteral) {
  const Bytes old_data = RandomBytes(4096, 4);
  const Bytes new_data = RandomBytes(4096, 5);
  const FileDelta delta = ComputeDelta(new_data, ComputeSignature(old_data, 512));
  EXPECT_EQ(delta.LiteralBytes(), 4096);
  EXPECT_EQ(ApplyDelta(old_data, delta), new_data);
}

TEST(Delta, EmptyFiles) {
  const Bytes empty;
  const Bytes data = RandomBytes(100, 6);
  EXPECT_EQ(ApplyDelta(empty, ComputeDelta(data, ComputeSignature(empty, 64))), data);
  EXPECT_EQ(ApplyDelta(data, ComputeDelta(empty, ComputeSignature(data, 64))), empty);
}

TEST(Delta, ShortTailBlockMatches) {
  // Old file ends with a short block; unchanged content must still be a copy.
  Bytes data = RandomBytes(1000, 7);  // 3 full 256-blocks + 232 tail
  const FileDelta delta = ComputeDelta(data, ComputeSignature(data, 256));
  EXPECT_EQ(delta.LiteralBytes(), 0);
  EXPECT_EQ(ApplyDelta(data, delta), data);
}

TEST(Delta, InsertionShiftsAreHandled) {
  // rsync's raison d'etre: an insertion early in the file must not force literals
  // for the entire shifted remainder.
  const Bytes old_data = RandomBytes(64 * 1024, 8);
  Bytes new_data = old_data;
  const Bytes inserted = RandomBytes(100, 9);
  new_data.insert(new_data.begin() + 1000, inserted.begin(), inserted.end());

  const FileDelta delta = ComputeDelta(new_data, ComputeSignature(old_data, 1024));
  EXPECT_EQ(ApplyDelta(old_data, delta), new_data);
  EXPECT_LT(delta.LiteralBytes(), 3 * 1024);  // ~1 block of literals, not 63 KB
}

TEST(Delta, CorruptCopyIndexReturnsEmpty) {
  const Bytes old_data = RandomBytes(1024, 10);
  FileDelta delta;
  delta.block_size = 256;
  delta.new_size = 256;
  DeltaCommand cmd;
  cmd.kind = DeltaCommand::Kind::kCopy;
  cmd.block_index = 99;  // way past the old file
  cmd.count = 1;
  delta.commands.push_back(cmd);
  EXPECT_TRUE(ApplyDelta(old_data, delta).empty());
}

// Property sweep: random mutations of random files must roundtrip exactly, and small
// mutations must produce small deltas.
class DeltaMutationTest : public ::testing::TestWithParam<int> {};

TEST_P(DeltaMutationTest, RoundtripAndEfficiency) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  const size_t file_size = static_cast<size_t>(rng.UniformInt(10 * 1024, 200 * 1024));
  const size_t block_size = static_cast<size_t>(rng.UniformInt(128, 2048));
  const Bytes old_data = RandomBytes(file_size, rng.Next());

  // Apply a handful of random edits.
  Bytes new_data = old_data;
  const int edits = static_cast<int>(rng.UniformInt(1, 8));
  int64_t edited_bytes = 0;
  for (int e = 0; e < edits; ++e) {
    const int kind = static_cast<int>(rng.UniformInt(0, 2));
    const size_t len = static_cast<size_t>(rng.UniformInt(1, 2000));
    const size_t pos =
        new_data.empty() ? 0 : static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(new_data.size()) - 1));
    if (kind == 0) {  // insert
      const Bytes ins = RandomBytes(len, rng.Next());
      new_data.insert(new_data.begin() + static_cast<long>(pos), ins.begin(), ins.end());
      edited_bytes += static_cast<int64_t>(len);
    } else if (kind == 1 && pos + len <= new_data.size()) {  // overwrite
      const Bytes over = RandomBytes(len, rng.Next());
      std::copy(over.begin(), over.end(), new_data.begin() + static_cast<long>(pos));
      edited_bytes += static_cast<int64_t>(len);
    } else {  // delete
      const size_t dlen = std::min(len, new_data.size() - pos);
      new_data.erase(new_data.begin() + static_cast<long>(pos),
                     new_data.begin() + static_cast<long>(pos + dlen));
    }
  }

  const FileSignature sig = ComputeSignature(old_data, block_size);
  const FileDelta delta = ComputeDelta(new_data, sig);
  ASSERT_EQ(ApplyDelta(old_data, delta), new_data);

  // Efficiency: literals bounded by edited bytes plus one block of spill per edit.
  EXPECT_LE(delta.LiteralBytes(),
            edited_bytes + static_cast<int64_t>((edits + 1) * 2 * block_size))
      << "file=" << file_size << " block=" << block_size << " edits=" << edits;
}

INSTANTIATE_TEST_SUITE_P(RandomMutations, DeltaMutationTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace bullet
