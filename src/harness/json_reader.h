// Minimal JSON parser for the bench tooling (bench_check reads BENCH_*.json files
// back). Full JSON grammar: \uXXXX escapes decode to UTF-8, including surrogate
// pairs for astral code points (lone or mismatched surrogates are errors).
// Numbers parse as double, matching the writer. Containers may nest at most
// 256 deep (hostile inputs fail cleanly instead of exhausting the stack);
// duplicate object keys keep the first occurrence.

#ifndef SRC_HARNESS_JSON_READER_H_
#define SRC_HARNESS_JSON_READER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace bullet {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  double number() const { return number_; }
  bool boolean() const { return bool_; }
  const std::string& str() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  // Object member lookup; returns nullptr when absent or when this is not an
  // object, so chained lookups degrade gracefully.
  const JsonValue* Find(const std::string& key) const;

  // Convenience accessors with defaults for optional members.
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key, const std::string& fallback) const;

  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(std::vector<JsonValue> v);
  static JsonValue MakeObject(std::map<std::string, JsonValue> v);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Parses one complete JSON document (trailing garbage is an error). On failure
// returns false and describes the problem (with offset) in *error.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

}  // namespace bullet

#endif  // SRC_HARNESS_JSON_READER_H_
