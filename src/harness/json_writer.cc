#include "src/harness/json_writer.h"

#include <cmath>
#include <cstdio>

namespace bullet {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) {
      os_ << ',';
    }
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  os_ << '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_element_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  os_ << '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_element_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  if (!has_element_.empty() && has_element_.back()) {
    os_ << ',';
  }
  if (!has_element_.empty()) {
    has_element_.back() = true;
  }
  os_ << '"' << JsonEscape(key) << "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  os_ << '"' << JsonEscape(value) << '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  if (!std::isfinite(value)) {
    return Null();
  }
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  os_ << value;
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  os_ << value;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  os_ << (value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  os_ << "null";
  return *this;
}

}  // namespace bullet
