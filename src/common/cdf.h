// CDF and table emission for the experiment harness. Every figure in the paper is a
// CDF of per-node completion times (or a series); benches print the same rows.

#ifndef SRC_COMMON_CDF_H_
#define SRC_COMMON_CDF_H_

#include <ostream>
#include <string>
#include <vector>

namespace bullet {

// A named series of samples (e.g. download completion times of one system).
struct CdfSeries {
  std::string name;
  std::vector<double> samples;
};

// Prints, for each series, rows "fraction value" at the given number of evenly spaced
// quantiles (plus min and max), in a gnuplot-friendly layout:
//
//   # <name>
//   0.010 102.4
//   ...
void PrintCdf(std::ostream& os, const std::vector<CdfSeries>& series, int points = 20);

// Prints a compact one-line-per-series summary table: name, p05, p50, p90, max, mean.
void PrintSummaryTable(std::ostream& os, const std::vector<CdfSeries>& series);

}  // namespace bullet

#endif  // SRC_COMMON_CDF_H_
