#include "src/sim/bandwidth_allocator.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace bullet {

namespace {

struct HeapEntry {
  double share;
  int32_t link;
  uint32_t stamp;
  bool operator>(const HeapEntry& o) const { return share > o.share; }
};

}  // namespace

void AllocateMaxMin(std::vector<FlowSpec>& flows, const std::vector<double>& link_capacity_bps) {
  const size_t num_links = link_capacity_bps.size();
  std::vector<double> remaining(link_capacity_bps);
  std::vector<int32_t> nflows(num_links, 0);
  std::vector<uint32_t> stamp(num_links, 0);

  std::vector<std::vector<uint32_t>> link_flows(num_links);
  for (size_t i = 0; i < flows.size(); ++i) {
    flows[i].rate_bps = 0.0;
    for (int32_t l : flows[i].links) {
      if (l >= 0) {
        ++nflows[static_cast<size_t>(l)];
        link_flows[static_cast<size_t>(l)].push_back(static_cast<uint32_t>(i));
      }
    }
  }

  // Flow indices ordered by ascending cap, so cap-limited flows freeze cheaply.
  std::vector<size_t> by_cap(flows.size());
  for (size_t i = 0; i < flows.size(); ++i) {
    by_cap[i] = i;
  }
  std::sort(by_cap.begin(), by_cap.end(),
            [&](size_t a, size_t b) { return flows[a].cap_bps < flows[b].cap_bps; });
  size_t cap_cursor = 0;

  std::vector<char> frozen(flows.size(), 0);
  size_t frozen_count = 0;

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>> heap;
  auto push_link = [&](int32_t l) {
    const size_t li = static_cast<size_t>(l);
    if (nflows[li] > 0) {
      heap.push(HeapEntry{remaining[li] / nflows[li], l, stamp[li]});
    }
  };
  for (size_t l = 0; l < num_links; ++l) {
    push_link(static_cast<int32_t>(l));
  }

  // Freeze one flow at `rate`, removing its demand from its links.
  auto freeze = [&](size_t fi, double rate) {
    FlowSpec& f = flows[fi];
    f.rate_bps = std::max(rate, 0.0);
    frozen[fi] = 1;
    ++frozen_count;
    for (int32_t l : f.links) {
      if (l < 0) {
        continue;
      }
      const size_t li = static_cast<size_t>(l);
      remaining[li] = std::max(0.0, remaining[li] - f.rate_bps);
      --nflows[li];
      ++stamp[li];
      push_link(l);
    }
  };

  // Flows that traverse no links are bounded only by their cap.
  for (size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].links[0] < 0 && flows[i].links[1] < 0 && flows[i].links[2] < 0 && !frozen[i]) {
      frozen[i] = 1;
      ++frozen_count;
      flows[i].rate_bps = flows[i].cap_bps;
    }
  }

  while (frozen_count < flows.size()) {
    // Find the currently most constrained link (skip stale heap entries).
    double min_share = -1.0;
    int32_t min_link = -1;
    while (!heap.empty()) {
      const HeapEntry top = heap.top();
      const size_t li = static_cast<size_t>(top.link);
      if (top.stamp != stamp[li] || nflows[li] <= 0) {
        heap.pop();
        continue;
      }
      min_share = top.share;
      min_link = top.link;
      break;
    }
    if (min_link < 0) {
      // No constrained link remains; all unfrozen flows get their caps.
      for (size_t i = 0; i < flows.size(); ++i) {
        if (!frozen[i]) {
          frozen[i] = 1;
          ++frozen_count;
          flows[i].rate_bps = flows[i].cap_bps;
        }
      }
      break;
    }

    // First freeze any flow whose cap is at or below the water level: it cannot use
    // a full fair share anywhere (min_share is the global minimum share).
    bool froze_capped = false;
    while (cap_cursor < by_cap.size()) {
      const size_t fi = by_cap[cap_cursor];
      if (frozen[fi]) {
        ++cap_cursor;
        continue;
      }
      if (flows[fi].cap_bps <= min_share) {
        freeze(fi, flows[fi].cap_bps);
        ++cap_cursor;
        froze_capped = true;
      } else {
        break;
      }
    }
    if (froze_capped) {
      continue;  // Water level may have risen; recompute.
    }

    // Saturate the bottleneck link: freeze all its unfrozen flows at the fair share.
    const size_t li = static_cast<size_t>(min_link);
    for (uint32_t fi : link_flows[li]) {
      if (!frozen[fi]) {
        freeze(fi, min_share);
      }
    }
    ++stamp[li];  // Invalidate stale entries for the saturated link.
  }
}

void IncrementalMaxMin::BeginEpoch(size_t keep_links) {
  capacity_.resize(keep_links);
  flow_links_.clear();
  cap_.clear();
  rate_.clear();
}

int32_t IncrementalMaxMin::AddLink(double capacity_bps) {
  const int32_t id = static_cast<int32_t>(capacity_.size());
  capacity_.push_back(capacity_bps);
  return id;
}

void IncrementalMaxMin::AddFlow(int32_t l0, int32_t l1, int32_t l2, double cap_bps) {
  flow_links_.push_back(l0);
  flow_links_.push_back(l1);
  flow_links_.push_back(l2);
  cap_.push_back(cap_bps);
}

// The reference algorithm (AllocateMaxMin above) with every auxiliary structure
// replaced by a persistent, allocation-free equivalent:
//   link_flows (vector of vectors)  ->  CSR arrays rebuilt with two linear passes
//   priority_queue                  ->  the same priority_queue over a reused vector
//   remaining/nflows/stamp/frozen   ->  assign() into retained capacity
// Every comparison and arithmetic update mirrors the reference line for line, in
// the same order, so the produced rates are bit-identical (see header contract).
void IncrementalMaxMin::Allocate() {
  const size_t num_links = capacity_.size();
  const size_t num_flows = cap_.size();

  remaining_.assign(capacity_.begin(), capacity_.end());
  nflows_.assign(num_links, 0);
  stamp_.assign(num_links, 0);
  rate_.assign(num_flows, 0.0);

  // CSR build: count per-link flows, prefix-sum, then fill in flow order so each
  // link's flow sequence matches the reference's push_back order.
  for (size_t i = 0; i < 3 * num_flows; ++i) {
    const int32_t l = flow_links_[i];
    if (l >= 0) {
      ++nflows_[static_cast<size_t>(l)];
    }
  }
  link_off_.assign(num_links + 1, 0);
  for (size_t l = 0; l < num_links; ++l) {
    link_off_[l + 1] = link_off_[l] + static_cast<uint32_t>(nflows_[l]);
  }
  link_flow_.resize(link_off_[num_links]);
  fill_cursor_.assign(link_off_.begin(), link_off_.end() - 1);
  for (size_t i = 0; i < num_flows; ++i) {
    for (int k = 0; k < 3; ++k) {
      const int32_t l = flow_links_[3 * i + k];
      if (l >= 0) {
        link_flow_[fill_cursor_[static_cast<size_t>(l)]++] = static_cast<uint32_t>(i);
      }
    }
  }

  // Ascending-cap order. Sorting (cap, index) pairs beats sorting indices with a
  // gathered comparator (no indirection per comparison). The relative order of
  // equal caps is whatever the sort produces: equal-cap flows freeze at equal
  // rates, and subtracting equal values commutes bitwise, so any permutation of
  // an equal-cap run yields bit-identical results (the reference implementation
  // sorts indices instead and may order such runs differently — harmlessly).
  sort_buf_.resize(num_flows);
  for (size_t i = 0; i < num_flows; ++i) {
    sort_buf_[i] = {cap_[i], static_cast<uint32_t>(i)};
  }
  std::sort(sort_buf_.begin(), sort_buf_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  by_cap_.resize(num_flows);
  for (size_t i = 0; i < num_flows; ++i) {
    by_cap_[i] = sort_buf_[i].second;
  }
  size_t cap_cursor = 0;

  frozen_.assign(num_flows, 0);
  size_t frozen_count = 0;

  heap_.clear();
  auto push_link = [&](int32_t l) {
    const size_t li = static_cast<size_t>(l);
    if (nflows_[li] > 0) {
      heap_.push(HeapEntry{remaining_[li] / nflows_[li], l, stamp_[li]});
    }
  };
  for (size_t l = 0; l < num_links; ++l) {
    push_link(static_cast<int32_t>(l));
  }

  auto freeze = [&](size_t fi, double rate) {
    rate_[fi] = std::max(rate, 0.0);
    frozen_[fi] = 1;
    ++frozen_count;
    for (int k = 0; k < 3; ++k) {
      const int32_t l = flow_links_[3 * fi + k];
      if (l < 0) {
        continue;
      }
      const size_t li = static_cast<size_t>(l);
      remaining_[li] = std::max(0.0, remaining_[li] - rate_[fi]);
      --nflows_[li];
      ++stamp_[li];
      push_link(l);
    }
  };

  for (size_t i = 0; i < num_flows; ++i) {
    if (flow_links_[3 * i] < 0 && flow_links_[3 * i + 1] < 0 && flow_links_[3 * i + 2] < 0 &&
        !frozen_[i]) {
      frozen_[i] = 1;
      ++frozen_count;
      rate_[i] = cap_[i];
    }
  }

  while (frozen_count < num_flows) {
    double min_share = -1.0;
    int32_t min_link = -1;
    while (!heap_.empty()) {
      const HeapEntry top = heap_.top();
      const size_t li = static_cast<size_t>(top.link);
      if (top.stamp != stamp_[li] || nflows_[li] <= 0) {
        heap_.pop();
        continue;
      }
      min_share = top.share;
      min_link = top.link;
      break;
    }
    if (min_link < 0) {
      for (size_t i = 0; i < num_flows; ++i) {
        if (!frozen_[i]) {
          frozen_[i] = 1;
          ++frozen_count;
          rate_[i] = cap_[i];
        }
      }
      break;
    }

    bool froze_capped = false;
    while (cap_cursor < by_cap_.size()) {
      const size_t fi = by_cap_[cap_cursor];
      if (frozen_[fi]) {
        ++cap_cursor;
        continue;
      }
      if (cap_[fi] <= min_share) {
        freeze(fi, cap_[fi]);
        ++cap_cursor;
        froze_capped = true;
      } else {
        break;
      }
    }
    if (froze_capped) {
      continue;
    }

    const size_t li = static_cast<size_t>(min_link);
    for (uint32_t off = link_off_[li]; off < link_off_[li + 1]; ++off) {
      const uint32_t fi = link_flow_[off];
      if (!frozen_[fi]) {
        freeze(fi, min_share);
      }
    }
    ++stamp_[li];
  }
}

}  // namespace bullet
