// SplitStream's forest of k interior-node-disjoint stripe trees.
//
// SplitStream (SOSP'03) builds the forest over Pastry/Scribe: a node is interior in
// exactly the one stripe whose identifier shares its node-id digit, and a leaf in all
// others, so any node failure or slow uplink affects the interior of only one stripe.
// Pastry itself is orthogonal to the dissemination behaviour the 2005 paper measures,
// so we construct the forest directly with the same invariant: node v may be interior
// only in stripe v mod k. Interior nodes take up to k children each (mirroring
// SplitStream's outdegree budget of one full stream), so per-stripe capacity is
// (n/k) * k >= n - 1 and every node finds a parent. See DESIGN.md, substitutions.

#ifndef SRC_BASELINES_STRIPE_FOREST_H_
#define SRC_BASELINES_STRIPE_FOREST_H_

#include <vector>

#include "src/common/rng.h"
#include "src/overlay/control_tree.h"

namespace bullet {

struct StripeForest {
  int num_stripes = 8;
  std::vector<ControlTree> trees;  // one per stripe, all rooted at the source

  // Max depth across stripes (diagnostics / tests).
  int MaxDepth() const;
  // Verifies the interior-disjointness invariant; returns false on violation.
  bool InteriorDisjoint(NodeId root) const;

  static StripeForest Build(int num_nodes, int num_stripes, NodeId root, Rng& rng);
};

}  // namespace bullet

#endif  // SRC_BASELINES_STRIPE_FOREST_H_
