#include "src/harness/churn.h"

namespace bullet {

ChurnPlan PlanLeafFailures(const ControlTree& tree, NodeId source, int count, Rng& rng) {
  ChurnPlan plan;
  std::vector<NodeId> leaves;
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    if (n != source && tree.children[static_cast<size_t>(n)].empty()) {
      leaves.push_back(n);
    }
  }
  plan.victims = rng.Sample(leaves, static_cast<size_t>(count));
  return plan;
}

void ScheduleChurn(Network& net, const ChurnPlan& plan) {
  SimTime at = plan.first_kill;
  for (const NodeId victim : plan.victims) {
    net.queue().Schedule(at, [&net, victim] { net.FailNode(victim); });
    at += plan.interval;
  }
}

}  // namespace bullet
