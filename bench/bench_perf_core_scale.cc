// perf_core_scale — simulator-core scaling benchmark (no paper figure).
//
// Runs the same Bullet' workload over the Fig. 14 wide-area topology twice: once
// under the default incremental tick (dirty-tracked allocation, cached TCP caps,
// O(1) idle quanta) and once under the pre-PR tick loop (full flow rebuild +
// max-min recompute every quantum), and reports both wall clocks plus their
// ratio. The two paths must agree flow-for-flow: `paths_match` is 1.0 only when
// every receiver's completion time is bit-identical across the two runs, which
// makes this scenario a large-scale determinism check as well as a speed gate.
//
// The committed baseline (bench/baselines/perf_core_baseline.json) pins the
// speedup; bench_check enforces it in CI with a wide band for the wall-clock
// metrics (machine-dependent) and a tight band for the behavioural ones.

#include <chrono>

#include "src/harness/scenario_registry.h"

namespace bullet {
namespace {

double WallSeconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

BULLET_SCENARIO(perf_core_scale,
                "Perf — incremental vs full-recompute simulator core, wide-area topology") {
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kWideArea;
  cfg.num_nodes = 200;
  cfg.file_mb = ScaledFileMb(50.0);  // the Fig. 14 file size
  cfg.block_bytes = 100 * 1024;  // the wide-area deployment's block size (Section 4.7)
  cfg.seed = 3001;
  cfg.deadline = SecToSim(3600.0);
  // Finer-grained emulation than the paper's 10 ms: per-quantum cost is what this
  // benchmark scales, and production-fidelity quanta are where the tick loop
  // must be event-driven rather than O(flows x links) every quantum.
  cfg.quantum = MsToSim(2);
  ApplyScenarioOptions(opts, &cfg);

  ScenarioReport report(kScenarioName);

  cfg.full_recompute_allocator = false;
  const auto t_inc = std::chrono::steady_clock::now();
  const ScenarioResult inc = RunScenario("bullet-prime", cfg);
  const double wall_inc = WallSeconds(t_inc);

  cfg.full_recompute_allocator = true;
  const auto t_full = std::chrono::steady_clock::now();
  const ScenarioResult full = RunScenario("bullet-prime", cfg);
  const double wall_full = WallSeconds(t_full);

  report.AddCompletion("BulletPrime (incremental core)", inc);
  report.AddCompletion("BulletPrime (full-recompute core)", full);
  report.AddScalar("wall_sec_incremental", wall_inc);
  report.AddScalar("wall_sec_full_recompute", wall_full);
  report.AddScalar("speedup_full_over_incremental", wall_inc > 0.0 ? wall_full / wall_inc : 0.0);
  report.AddScalar("paths_match", inc.completion_sec == full.completion_sec ? 1.0 : 0.0);
  return report;
}

}  // namespace
}  // namespace bullet
