// Fig. 14: the wide-area (PlanetLab) comparison — 41 heterogeneous sites, 50 MB
// file, 100 KB blocks, Bullet' vs Bullet vs BitTorrent vs SplitStream.
//
// The PlanetLab testbed is replaced by the synthetic wide-area topology described in
// DESIGN.md (heterogeneous 1-20 Mbps uplinks, 10-400 ms RTTs, light random loss).
//
// Expected shape (paper): Bullet' consistently fastest; its slowest node finishes
// several hundred seconds before BitTorrent's slowest.

#include "bench/bench_util.h"

namespace bullet {
namespace {

void BM_System(benchmark::State& state) {
  const System system = static_cast<System>(state.range(0));
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kWideArea;
  cfg.num_nodes = 41;
  cfg.file_mb = bench::ScaledFileMb(50.0);
  cfg.block_bytes = 100 * 1024;  // the deployment's block size (Section 4.7)
  cfg.seed = 1401;
  for (auto _ : state) {
    const ScenarioResult r = RunScenario(system, cfg);
    bench::ReportCompletion(state, r.name + " (wide-area)", r);
  }
}
BENCHMARK(BM_System)
    ->Arg(static_cast<int>(System::kBulletPrime))
    ->Arg(static_cast<int>(System::kBulletLegacy))
    ->Arg(static_cast<int>(System::kBitTorrent))
    ->Arg(static_cast<int>(System::kSplitStream))
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bullet

BULLET_BENCH_MAIN("Fig. 14 — wide-area (PlanetLab stand-in) comparison")
