#include "src/harness/churn.h"

#include <algorithm>
#include <map>

#include "src/common/logging.h"

namespace bullet {

ChurnPlan PlanLeafFailures(const ControlTree& tree, NodeId source, int count, Rng& rng) {
  ChurnPlan plan;
  std::vector<NodeId> leaves;
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    if (n != source && tree.children[static_cast<size_t>(n)].empty()) {
      leaves.push_back(n);
    }
  }
  plan.victims = rng.Sample(leaves, static_cast<size_t>(count));
  return plan;
}

void ScheduleChurn(Network& net, const ChurnPlan& plan) {
  SimTime at = plan.first_kill;
  for (const NodeId victim : plan.victims) {
    net.queue().Schedule(at, [&net, victim] { net.FailNode(victim); });
    at += plan.interval;
  }
}

LeafFailureChurn::LeafFailureChurn(int count, SimTime first_kill, SimTime interval)
    : count_(count), first_kill_(first_kill), interval_(interval) {
  BULLET_CHECK(count > 0 && "leaf churn needs a positive victim count");
  BULLET_CHECK(first_kill > 0 && "churn first_kill must be positive");
  BULLET_CHECK(interval > 0 && "churn interval must be positive");
}

std::vector<ChurnEvent> LeafFailureChurn::Schedule(const ChurnContext& ctx, Rng& rng) const {
  std::vector<ChurnEvent> events;
  SimTime at = first_kill_;
  for (const ChurnContext::SessionView& s : ctx.sessions) {
    BULLET_CHECK(s.tree != nullptr && "leaf churn needs session control trees");
    // Trees span global NodeIds; for subset sessions, non-members are also
    // childless, so select leaves from the member list rather than reusing
    // PlanLeafFailures's whole-tree scan.
    std::vector<NodeId> leaves;
    for (const NodeId m : *s.members) {
      if (m != s.source && s.tree->children[static_cast<size_t>(m)].empty()) {
        leaves.push_back(m);
      }
    }
    for (const NodeId victim : rng.Sample(leaves, static_cast<size_t>(count_))) {
      events.push_back({victim, at});
      at += interval_;
    }
  }
  return events;
}

CorrelatedFailureChurn::CorrelatedFailureChurn(Scope scope, SimTime at)
    : scope_(scope), at_(at) {
  BULLET_CHECK(at > 0 && "correlated failure time must be positive");
}

std::string CorrelatedFailureChurn::name() const {
  return scope_ == Scope::kStubDomain ? "stub" : "gateway";
}

std::vector<ChurnEvent> CorrelatedFailureChurn::Schedule(const ChurnContext& ctx,
                                                         Rng& rng) const {
  const RoutedTopology* topo = ctx.topology ? ctx.topology->AsRouted() : nullptr;
  BULLET_CHECK(topo != nullptr && "correlated failures need a routed topology");
  const RoutedTopology::TransitStubInfo* info = topo->transit_stub_info();
  BULLET_CHECK(info != nullptr && "correlated failures need a transit-stub topology");

  // Group session members by outage domain: the stub domain their attachment
  // router belongs to, or (gateway scope) the transit router above it.
  std::map<int, std::vector<NodeId>> groups;
  std::vector<char> is_source;
  for (const ChurnContext::SessionView& s : ctx.sessions) {
    for (const NodeId m : *s.members) {
      if (static_cast<size_t>(m) >= is_source.size()) {
        is_source.resize(static_cast<size_t>(m) + 1, 0);
      }
      if (m == s.source) is_source[static_cast<size_t>(m)] = 1;
      const int stub = info->stub_domain_of_router(topo->attach(m));
      BULLET_CHECK(stub >= 0 && "session member attached to a transit router");
      const int key = scope_ == Scope::kStubDomain ? stub : info->transit_router(stub);
      groups[key].push_back(m);
    }
  }

  // Candidates: domains holding at least one member and no source (the source
  // anchors the session; killing it measures nothing about peer churn).
  std::vector<const std::vector<NodeId>*> candidates;
  for (const auto& [key, members] : groups) {
    const bool holds_source =
        std::any_of(members.begin(), members.end(), [&](NodeId m) {
          return is_source[static_cast<size_t>(m)] != 0;
        });
    if (!holds_source) candidates.push_back(&members);
  }
  BULLET_CHECK(!candidates.empty() &&
               "no outage domain without a session source; too few stub domains?");

  const std::vector<NodeId>& victims =
      *candidates[static_cast<size_t>(rng.UniformInt(0, static_cast<int>(candidates.size()) - 1))];
  std::vector<ChurnEvent> events;
  events.reserve(victims.size());
  std::vector<NodeId> ordered = victims;
  std::sort(ordered.begin(), ordered.end());
  for (const NodeId v : ordered) {
    events.push_back({v, at_});
  }
  return events;
}

}  // namespace bullet
