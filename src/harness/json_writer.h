// Minimal streaming JSON writer used by the scenario runner to emit BENCH_*.json
// metric files. Handles commas/nesting, string escaping, and non-finite doubles
// (emitted as null so the output stays valid JSON).

#ifndef SRC_HARNESS_JSON_WRITER_H_
#define SRC_HARNESS_JSON_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace bullet {

std::string JsonEscape(const std::string& s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Writes the key of the next object member.
  JsonWriter& Key(const std::string& key);

  JsonWriter& String(const std::string& value);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // Convenience for "key": value pairs. The const char* overload is load-bearing:
  // without it, string literals convert to bool (a standard conversion, which beats
  // the user-defined conversion to std::string) and emit true/false.
  JsonWriter& Field(const std::string& key, const std::string& value) {
    return Key(key).String(value);
  }
  JsonWriter& Field(const std::string& key, const char* value) {
    return Key(key).String(value);
  }
  JsonWriter& Field(const std::string& key, double value) { return Key(key).Number(value); }
  JsonWriter& Field(const std::string& key, int64_t value) { return Key(key).Int(value); }
  JsonWriter& Field(const std::string& key, uint64_t value) { return Key(key).Uint(value); }
  JsonWriter& Field(const std::string& key, int value) {
    return Key(key).Int(static_cast<int64_t>(value));
  }
  JsonWriter& Field(const std::string& key, bool value) { return Key(key).Bool(value); }

 private:
  void BeforeValue();

  std::ostream& os_;
  // One entry per open scope: true once the scope holds at least one element.
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

}  // namespace bullet

#endif  // SRC_HARNESS_JSON_WRITER_H_
