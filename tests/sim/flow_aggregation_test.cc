// Invariants of the aggregated (bundle-level) allocator, ctest label
// `invariants`: conservation — each bundle's member rates sum back to the
// bundle rate; feasibility — no access or interior link is oversubscribed;
// determinism — identical epochs aggregate to identical bits. The aggregated
// mode is opt-in and explicitly NOT bit-identical to the exact allocator
// (see flow_aggregation.h), so these tests pin its own contract rather than
// comparing against IncrementalMaxMin::Allocate.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/bandwidth_allocator.h"
#include "src/sim/scale/flow_aggregation.h"

namespace bullet {
namespace {

// Epochs register the network's fixed access links first (ids
// [0, num_access)), then dense interior ids; each flow's link list is
// (uplink, downlink, interior...) like Network does it.
struct EpochBuilder {
  explicit EpochBuilder(size_t num_access) : num_access_links(num_access) {
    epoch.BeginEpoch(0);
  }

  void AddAccessLinks(const std::vector<double>& caps) {
    for (const double c : caps) {
      epoch.AddLink(c);
    }
  }

  int32_t AddInteriorLink(double cap) { return epoch.AddLink(cap); }

  void AddFlow(int32_t up, int32_t down, std::vector<int32_t> interior, double tcp_cap) {
    std::vector<int32_t> ids;
    ids.push_back(up);
    ids.push_back(down);
    ids.insert(ids.end(), interior.begin(), interior.end());
    epoch.AddFlowPath(ids.data(), ids.size(), tcp_cap);
    flow_paths.push_back(std::move(ids));
  }

  IncrementalMaxMin epoch;
  size_t num_access_links;
  std::vector<std::vector<int32_t>> flow_paths;
};

// Sum of each link's member rates must not exceed its capacity. The split is
// computed in double arithmetic, so allow a relative epsilon on the compare.
void ExpectFeasible(const EpochBuilder& b, const FlowAggregator& agg) {
  const auto view = b.epoch.epoch_view();
  const std::vector<double>& link_cap = *view.capacity;
  std::vector<double> load(link_cap.size(), 0.0);
  for (size_t i = 0; i < b.flow_paths.size(); ++i) {
    for (const int32_t l : b.flow_paths[i]) {
      if (l >= 0) {
        load[static_cast<size_t>(l)] += agg.rates()[i];
      }
    }
  }
  for (size_t l = 0; l < link_cap.size(); ++l) {
    EXPECT_LE(load[l], link_cap[l] * (1.0 + 1e-9))
        << (l < b.num_access_links ? "access" : "interior") << " link " << l;
  }
}

// Member rates of every bundle must sum to the bundle's water-filled rate.
void ExpectBundleConservation(const EpochBuilder& b, const FlowAggregator& agg) {
  std::vector<double> member_sum(agg.num_bundles(), 0.0);
  for (size_t i = 0; i < b.flow_paths.size(); ++i) {
    const int32_t bd = agg.bundle_of_flow(i);
    if (bd >= 0) {
      member_sum[static_cast<size_t>(bd)] += agg.rates()[i];
    }
  }
  for (size_t bd = 0; bd < agg.num_bundles(); ++bd) {
    const double rate = agg.bundle_rate(bd);
    EXPECT_NEAR(member_sum[bd], rate, 1e-9 * std::max(1.0, rate)) << "bundle " << bd;
  }
}

TEST(FlowAggregation, BundlesFlowsWithIdenticalInteriorSlices) {
  // 3 member nodes (6 access links) around one shared interior hop. Flows 0/1
  // ride the same interior slice -> one bundle; flow 2 rides a different slice.
  EpochBuilder b(6);
  b.AddAccessLinks({10e6, 10e6, 10e6, 10e6, 10e6, 10e6});
  const int32_t core_a = b.AddInteriorLink(4e6);
  const int32_t core_b = b.AddInteriorLink(50e6);
  b.AddFlow(0, 4, {core_a}, 100e6);
  b.AddFlow(1, 5, {core_a}, 100e6);
  b.AddFlow(2, 3, {core_b}, 100e6);

  FlowAggregator agg;
  agg.Allocate(b.epoch, b.num_access_links);

  EXPECT_EQ(agg.num_bundles(), 2u);
  EXPECT_EQ(agg.bundle_of_flow(0), agg.bundle_of_flow(1));
  EXPECT_NE(agg.bundle_of_flow(0), agg.bundle_of_flow(2));
  // Flows 0 and 1 share the 4 Mbps interior bottleneck: 2 Mbps each. Flow 2 is
  // limited by its private 10 Mbps access links.
  EXPECT_NEAR(agg.rates()[0], 2e6, 1.0);
  EXPECT_NEAR(agg.rates()[1], 2e6, 1.0);
  EXPECT_NEAR(agg.rates()[2], 10e6, 1.0);
  EXPECT_EQ(agg.max_interior_link_flows(), 2);
  ExpectFeasible(b, agg);
  ExpectBundleConservation(b, agg);
}

TEST(FlowAggregation, EmptyInteriorFlowGetsMemberCapDirectly) {
  // Two flows share node 0's uplink (2 busy flows -> 5 Mbps member share each);
  // neither crosses an interior link, so each is granted its member cap and
  // carries no bundle.
  EpochBuilder b(4);
  b.AddAccessLinks({10e6, 40e6, 40e6, 40e6});
  b.AddFlow(0, 3, {}, 100e6);
  b.AddFlow(0, 2, {}, 3e6);  // tcp-capped below the 5 Mbps share

  FlowAggregator agg;
  agg.Allocate(b.epoch, b.num_access_links);

  EXPECT_EQ(agg.num_bundles(), 0u);
  EXPECT_EQ(agg.bundle_of_flow(0), -1);
  EXPECT_EQ(agg.bundle_of_flow(1), -1);
  EXPECT_DOUBLE_EQ(agg.rates()[0], 5e6);
  EXPECT_DOUBLE_EQ(agg.rates()[1], 3e6);
  ExpectFeasible(b, agg);
}

TEST(FlowAggregation, SplitRespectsHeterogeneousMemberCaps) {
  // One bundle over a 9 Mbps interior link; member caps 1 / 4 / 100 Mbps. The
  // bounded split grants the 1 Mbps member its cap and water-fills the rest
  // (4 Mbps each), leaving the residue on the widest member.
  EpochBuilder b(8);
  b.AddAccessLinks({1e6, 4e6, 100e6, 100e6, 100e6, 100e6, 100e6, 100e6});
  const int32_t core = b.AddInteriorLink(9e6);
  b.AddFlow(0, 5, {core}, 1e9);
  b.AddFlow(1, 6, {core}, 1e9);
  b.AddFlow(2, 7, {core}, 1e9);

  FlowAggregator agg;
  agg.Allocate(b.epoch, b.num_access_links);

  ASSERT_EQ(agg.num_bundles(), 1u);
  EXPECT_NEAR(agg.bundle_rate(0), 9e6, 1.0);
  EXPECT_NEAR(agg.rates()[0], 1e6, 1.0);
  EXPECT_NEAR(agg.rates()[1], 4e6, 1.0);
  EXPECT_NEAR(agg.rates()[2], 4e6, 1.0);
  ExpectFeasible(b, agg);
  ExpectBundleConservation(b, agg);
}

TEST(FlowAggregation, IdenticalEpochsAllocateIdenticalBits) {
  auto build = [](EpochBuilder* b) {
    b->AddAccessLinks({10e6, 10e6, 10e6, 10e6, 20e6, 20e6});
    const int32_t c0 = b->AddInteriorLink(6e6);
    const int32_t c1 = b->AddInteriorLink(8e6);
    b->AddFlow(0, 4, {c0, c1}, 100e6);
    b->AddFlow(1, 5, {c0, c1}, 100e6);
    b->AddFlow(2, 4, {c1}, 100e6);
    b->AddFlow(3, 5, {}, 100e6);
  };
  EpochBuilder b1(6), b2(6);
  build(&b1);
  build(&b2);
  FlowAggregator agg1, agg2;
  agg1.Allocate(b1.epoch, 6);
  agg2.Allocate(b2.epoch, 6);
  ASSERT_EQ(agg1.rates().size(), agg2.rates().size());
  for (size_t i = 0; i < agg1.rates().size(); ++i) {
    EXPECT_EQ(agg1.rates()[i], agg2.rates()[i]) << "flow " << i;
  }
  EXPECT_EQ(agg1.num_bundles(), agg2.num_bundles());
}

// Randomized sweep: many shapes of epoch, always conserving and feasible.
TEST(FlowAggregation, RandomizedEpochsConserveAndStayFeasible) {
  Rng rng(0x5eed);
  for (int iter = 0; iter < 200; ++iter) {
    const int nodes = static_cast<int>(rng.UniformInt(2, 15));
    const size_t num_access = static_cast<size_t>(2 * nodes);
    const int num_interior = static_cast<int>(rng.UniformInt(1, 6));
    EpochBuilder b(num_access);
    std::vector<double> access_caps;
    for (size_t l = 0; l < num_access; ++l) {
      access_caps.push_back(1e6 * rng.UniformDouble(1.0, 41.0));
    }
    b.AddAccessLinks(access_caps);
    std::vector<int32_t> interior;
    for (int l = 0; l < num_interior; ++l) {
      interior.push_back(b.AddInteriorLink(1e6 * rng.UniformDouble(1.0, 61.0)));
    }
    const int num_flows = static_cast<int>(rng.UniformInt(1, 40));
    for (int f = 0; f < num_flows; ++f) {
      const int32_t src = static_cast<int32_t>(rng.UniformInt(0, nodes - 1));
      const int32_t dst = static_cast<int32_t>(rng.UniformInt(0, nodes - 1));
      // Interior route: a contiguous run of the interior link list (possibly
      // empty), which mimics shared segments and produces bundle collisions.
      const int len = static_cast<int>(rng.UniformInt(0, num_interior));
      const int start =
          len == 0 ? 0 : static_cast<int>(rng.UniformInt(0, num_interior - len));
      std::vector<int32_t> route(interior.begin() + start, interior.begin() + start + len);
      const double tcp = 1e6 * rng.UniformDouble(0.5, 100.5);
      b.AddFlow(src, static_cast<int32_t>(nodes) + dst, std::move(route), tcp);
    }
    FlowAggregator agg;
    agg.Allocate(b.epoch, num_access);
    ASSERT_EQ(agg.rates().size(), static_cast<size_t>(num_flows));
    for (const double r : agg.rates()) {
      EXPECT_GE(r, 0.0);
      EXPECT_TRUE(std::isfinite(r));
    }
    ExpectFeasible(b, agg);
    ExpectBundleConservation(b, agg);
  }
}

}  // namespace
}  // namespace bullet
