// Extension bench (no paper figure): mesh resilience under node failures — the
// Section 1 argument that losing one of n peers costs ~1/n of a node's bandwidth.
// Sweeps the number of failed leaves on the Fig. 4 topology and reports survivor
// completion times; the dual sweep runs legacy Bullet, whose receivers depend partly
// on tree forwarding, for contrast.

#include "bench/bench_util.h"

#include "src/baselines/bullet_legacy.h"
#include "src/core/bullet_prime.h"
#include "src/harness/churn.h"
#include "src/harness/experiment.h"

namespace bullet {
namespace {

std::vector<double> RunChurn(System system, int kills, uint64_t seed) {
  ScenarioConfig cfg;
  cfg.num_nodes = 100;
  cfg.file_mb = bench::ScaledFileMb(100.0);
  cfg.seed = seed;

  ExperimentParams params;
  params.seed = cfg.seed;
  params.file.block_bytes = cfg.block_bytes;
  params.file.num_blocks =
      static_cast<uint32_t>(cfg.file_mb * 1024.0 * 1024.0 / static_cast<double>(cfg.block_bytes));
  params.file.encoded = system == System::kBulletLegacy;
  params.deadline = SecToSim(7200.0);
  Experiment exp(BuildScenarioTopology(cfg), params);

  std::vector<char> is_victim(static_cast<size_t>(cfg.num_nodes), 0);
  if (kills > 0) {
    Rng churn_rng(seed ^ 0xc0ffee);
    const ChurnPlan plan = PlanLeafFailures(exp.tree(), params.source, kills, churn_rng);
    for (const NodeId v : plan.victims) {
      is_victim[static_cast<size_t>(v)] = 1;
    }
    ScheduleChurn(exp.net(), plan);
  }
  BulletPrimeConfig bp;
  RunMetrics metrics = exp.Run([&](const Protocol::Context& ctx, const ControlTree* tree)
                                   -> std::unique_ptr<Protocol> {
    if (system == System::kBulletLegacy) {
      return std::make_unique<BulletLegacy>(ctx, params.file, params.source, tree,
                                            BulletLegacyConfig{});
    }
    return std::make_unique<BulletPrime>(ctx, params.file, params.source, tree, bp);
  });

  std::vector<double> survivor_times;
  for (NodeId n = 1; n < cfg.num_nodes; ++n) {
    if (is_victim[static_cast<size_t>(n)]) {
      continue;
    }
    survivor_times.push_back(metrics.node(n).completion >= 0
                                 ? SimToSec(metrics.node(n).completion)
                                 : SimToSec(params.deadline));
  }
  return survivor_times;
}

void BM_Churn(benchmark::State& state) {
  const System system = static_cast<System>(state.range(0));
  const int kills = static_cast<int>(state.range(1));
  for (auto _ : state) {
    const auto times = RunChurn(system, kills, 3001);
    bench::ReportSamples(state, std::string(SystemName(system)) + " survivors, " +
                                    std::to_string(kills) + " failures",
                         times);
  }
}
BENCHMARK(BM_Churn)
    ->Args({static_cast<int>(System::kBulletPrime), 0})
    ->Args({static_cast<int>(System::kBulletPrime), 10})
    ->Args({static_cast<int>(System::kBulletPrime), 25})
    ->Args({static_cast<int>(System::kBulletLegacy), 0})
    ->Args({static_cast<int>(System::kBulletLegacy), 25})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bullet

BULLET_BENCH_MAIN("Extension — survivor completion under leaf-node failures")
