// Failure injection for resilience experiments.
//
// The paper's core argument for meshes (Section 1) is that losing one of n peers
// costs roughly 1/n of a node's bandwidth and triggers no reconnection storm,
// whereas losing an interior tree node cuts off a whole subtree. The paper's own
// experiments run without churn; this driver is the reproduction's extension for
// exercising that claim (tests/integration/churn_test.cc, bench_churn_resilience).
//
// Failures target leaves of the control tree: Bullet' repairs its *mesh* around
// failures (RanSub stops advertising dead peers once their summaries age out, and
// ManageSenders replaces them), but control-tree repair is out of scope here as it
// was in the paper, so killing interior tree nodes would conflate the two effects.

#ifndef SRC_HARNESS_CHURN_H_
#define SRC_HARNESS_CHURN_H_

#include <vector>

#include "src/overlay/control_tree.h"
#include "src/sim/network.h"

namespace bullet {

struct ChurnPlan {
  std::vector<NodeId> victims;  // in kill order
  SimTime first_kill = SecToSim(15.0);
  SimTime interval = SecToSim(10.0);
};

// Picks up to `count` control-tree leaves (never the source), uniformly at random.
ChurnPlan PlanLeafFailures(const ControlTree& tree, NodeId source, int count, Rng& rng);

// Schedules the failures on the network's event queue.
void ScheduleChurn(Network& net, const ChurnPlan& plan);

}  // namespace bullet

#endif  // SRC_HARNESS_CHURN_H_
