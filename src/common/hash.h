// Hashing primitives shared by the erasure codec (seeded block selection), the rsync
// library (strong block digests), and the availability sketch.

#ifndef SRC_COMMON_HASH_H_
#define SRC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace bullet {

// FNV-1a over a byte range.
uint64_t Fnv1a64(const void* data, size_t len);
uint64_t Fnv1a64(const std::string& s);

// Single-shot 64-bit mix (SplitMix64 finalizer). Good for deriving hash values from
// integers (block ids, node ids).
uint64_t Mix64(uint64_t x);

// 128-bit strong digest built from two independently-seeded FNV/mix passes. This is
// not cryptographic; it plays the role MD4/MD5 plays in rsync — a collision
// probability low enough that delta reconstruction is reliable.
struct Digest128 {
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool operator==(const Digest128& o) const { return lo == o.lo && hi == o.hi; }
};

Digest128 StrongDigest(const void* data, size_t len);

}  // namespace bullet

#endif  // SRC_COMMON_HASH_H_
