#include "src/harness/json_reader.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/harness/json_writer.h"

namespace bullet {
namespace {

JsonValue MustParse(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(ParseJson(text, &value, &error)) << text << ": " << error;
  return value;
}

TEST(JsonReaderTest, ParsesScalars) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_TRUE(MustParse("true").boolean());
  EXPECT_FALSE(MustParse("false").boolean());
  EXPECT_DOUBLE_EQ(MustParse("42").number(), 42.0);
  EXPECT_DOUBLE_EQ(MustParse("-3.5e2").number(), -350.0);
  EXPECT_EQ(MustParse("\"hi\"").str(), "hi");
}

TEST(JsonReaderTest, ParsesNestedStructures) {
  const JsonValue doc = MustParse(
      R"({"schema":"bullet-bench-v2","points":[{"params":{"nodes":20},)"
      R"("metrics":{"Sys.p50_s":{"median":1.25,"p10":1,"p90":2}}}],"empty":[],"none":{}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.StringOr("schema", ""), "bullet-bench-v2");
  const JsonValue* points = doc.Find("points");
  ASSERT_TRUE(points != nullptr && points->is_array());
  ASSERT_EQ(points->array().size(), 1u);
  const JsonValue& point = points->array()[0];
  EXPECT_DOUBLE_EQ(point.Find("params")->NumberOr("nodes", -1), 20.0);
  const JsonValue* band = point.Find("metrics")->Find("Sys.p50_s");
  ASSERT_NE(band, nullptr);
  EXPECT_DOUBLE_EQ(band->NumberOr("median", -1), 1.25);
  EXPECT_TRUE(doc.Find("empty")->array().empty());
  EXPECT_TRUE(doc.Find("none")->object().empty());
}

TEST(JsonReaderTest, DecodesEscapes) {
  const JsonValue v = MustParse(R"("a\"b\\c\n\tA")");
  EXPECT_EQ(v.str(), "a\"b\\c\n\tA");
}

TEST(JsonReaderTest, RejectsMalformedInput) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(ParseJson("", &value, &error));
  EXPECT_FALSE(ParseJson("{", &value, &error));
  EXPECT_FALSE(ParseJson("{\"a\":}", &value, &error));
  EXPECT_FALSE(ParseJson("[1,]", &value, &error));
  EXPECT_FALSE(ParseJson("[1 2]", &value, &error));
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing", &value, &error));
  EXPECT_FALSE(ParseJson("\"unterminated", &value, &error));
  EXPECT_FALSE(ParseJson("nul", &value, &error));
  EXPECT_FALSE(ParseJson("01x", &value, &error));
  EXPECT_NE(error.find("offset"), std::string::npos);
}

TEST(JsonReaderTest, RoundTripsWriterOutput) {
  std::ostringstream os;
  JsonWriter writer(os);
  writer.BeginObject();
  writer.Field("name", "quote\"and\\slash");
  writer.Field("value", 1.5);
  writer.Key("list").BeginArray().Int(1).Number(2.5).EndArray();
  writer.EndObject();

  const JsonValue doc = MustParse(os.str());
  EXPECT_EQ(doc.StringOr("name", ""), "quote\"and\\slash");
  EXPECT_DOUBLE_EQ(doc.NumberOr("value", 0), 1.5);
  ASSERT_EQ(doc.Find("list")->array().size(), 2u);
  EXPECT_DOUBLE_EQ(doc.Find("list")->array()[1].number(), 2.5);
}

}  // namespace
}  // namespace bullet
