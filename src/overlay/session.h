// Session and workload specifications — the unit of experiment wiring.
//
// A *session* is one file dissemination: file parameters, a source, the member
// set that participates, and a join schedule (per-member offsets from the
// session start). A *workload* is a set of sessions sharing one emulated
// network; sessions may start staggered (flash crowds, late joiners) and run
// concurrently over shared links, each with its own protocol chosen by name
// from the ProtocolRegistry. The legacy single-session shape — one file, one
// source, every node joining at t=0 — is the degenerate workload with one
// session spanning all nodes with zero offsets.

#ifndef SRC_OVERLAY_SESSION_H_
#define SRC_OVERLAY_SESSION_H_

#include <any>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/overlay/dissemination.h"
#include "src/overlay/streaming.h"
#include "src/sim/time.h"

namespace bullet {

// Workload generators (src/harness/workload_gen.h, src/harness/churn.h). Specs
// hold them as shared_ptr-to-const so a spec stays a cheap value type; the
// harness is the only layer that constructs or invokes them.
class ArrivalProcess;
class LifetimeModel;
class AccessLinkDistribution;
class ChurnModel;

struct SessionSpec {
  // Reporting label; defaults to the protocol's display name when empty.
  std::string name;
  // ProtocolRegistry key ("bullet-prime", "bullet", "bittorrent",
  // "splitstream", or any custom registration). Ignored when the session is
  // added with an explicit caller-supplied factory.
  std::string protocol = "bullet-prime";
  FileParams file;
  NodeId source = 0;
  // Participating nodes (global NodeIds). Empty means every node in the
  // network. Sessions within one workload must have pairwise-disjoint member
  // sets: one node runs at most one protocol instance.
  std::vector<NodeId> members;
  // Session epoch, relative to simulation start. Member join times are
  // `start + join_offsets[i]`.
  SimTime start = 0;
  // Per-member join offsets, parallel to `members` (after the empty-members
  // default is expanded, parallel to 0..n-1). Empty means all zero. The
  // source's join time must be the session's earliest (it roots the control
  // tree, and the tree only attaches joiners to already-joined parents).
  std::vector<SimTime> join_offsets;
  // Session seed; unset derives a per-session stream from the workload seed
  // and the session index. The control tree, the per-node protocol RNGs and
  // any protocol-level structures (e.g. SplitStream's forest) all derive from
  // this value with the same constants the single-session harness always used.
  std::optional<uint64_t> seed;
  // Control-tree fanout (see ExperimentParams::tree_fanout for the rationale).
  int tree_fanout = 8;
  // Optional protocol-specific configuration. Must be empty or hold exactly
  // the registered Entry::config_type (e.g. BulletPrimeConfig); the harness
  // validates the type at AddSession time.
  std::any protocol_config;
  // Generator-driven join schedule: synthesizes join_offsets from a
  // seed-derived stream (mutually exclusive with explicit join_offsets; the
  // source keeps offset zero). See workload_gen.h.
  std::shared_ptr<const ArrivalProcess> arrivals;
  // Playback-deadline (streaming) mode: blocks acquire positions and playback
  // deadlines derived from the bitrate, completion means "held every required
  // position" instead of "holds the full file", and the harness reports
  // rebuffer/stall seconds and blocks-missed-deadline per receiver. Unset (the
  // default) keeps the bulk-transfer semantics. See overlay/streaming.h.
  std::optional<StreamingSpec> streaming;
  // Generator-driven member lifetimes: receivers drawing a finite lifetime
  // depart mid-run (network failure + completion-policy credit), and models
  // with departs_after_completion() also leave shortly after finishing — the
  // "seeder departs" regime. See workload_gen.h.
  std::shared_ptr<const LifetimeModel> lifetimes;
};

struct WorkloadSpec {
  std::vector<SessionSpec> sessions;
  // Workload-level generators: an access-link cohort distribution applied to
  // the topology before the network is built (RunScenarioWorkload), and a
  // churn model whose failure schedule is drawn at Run() over every session.
  std::shared_ptr<const AccessLinkDistribution> access_links;
  std::shared_ptr<const ChurnModel> churn;
};

}  // namespace bullet

#endif  // SRC_OVERLAY_SESSION_H_
