#include "src/sim/tcp_model.h"

#include <algorithm>
#include <cmath>

namespace bullet {

namespace {
constexpr double kUnlimitedBps = 1e12;
}

void TcpFlowState::OnBecameActive(SimTime now, const TcpModelParams& params) {
  if (!ever_active || now - last_busy > params.idle_restart) {
    active_since = now;  // Fresh slow start.
  }
  ever_active = true;
  last_busy = now;
}

double MathisCapBps(SimTime rtt, double loss, double mss_bytes) {
  if (loss <= 0.0) {
    return kUnlimitedBps;
  }
  const double rtt_sec = std::max(SimToSec(rtt), 1e-4);
  return mss_bytes * 8.0 / (rtt_sec * std::sqrt(2.0 * loss / 3.0));
}

double TcpRateCapDetail(const TcpFlowState& state, SimTime now, SimTime rtt, double loss,
                        const TcpModelParams& params, bool* steady) {
  const double rtt_sec = std::max(SimToSec(rtt), 1e-4);
  // Slow-start ramp: cwnd doubles every RTT starting from the initial window, so the
  // achievable rate after t seconds of activity is IW * 2^(t/RTT) segments per RTT.
  const double active_sec = std::max(0.0, SimToSec(now - state.active_since));
  const double doublings = std::min(active_sec / rtt_sec, 40.0);
  const double ramp_bps =
      params.initial_window_segments * params.mss_bytes * 8.0 / rtt_sec * std::exp2(doublings);
  const double mathis_bps = MathisCapBps(rtt, loss, params.mss_bytes);
  if (steady != nullptr) {
    // The ramp is nondecreasing in `now` (active_since fixed while busy), so once
    // it reaches the constant ceiling — or its doubling count saturates — the cap
    // can never change again during this busy period.
    *steady = doublings >= 40.0 || ramp_bps >= std::min(mathis_bps, kUnlimitedBps);
  }
  return std::min(std::min(ramp_bps, mathis_bps), kUnlimitedBps);
}

double TcpRateCapBps(const TcpFlowState& state, SimTime now, SimTime rtt, double loss,
                     const TcpModelParams& params) {
  return TcpRateCapDetail(state, now, rtt, loss, params, nullptr);
}

}  // namespace bullet
