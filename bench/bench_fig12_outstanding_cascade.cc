// Fig. 12: cascading bandwidth changes. 8 participants: the source and 6 receivers
// reconcile over 10 Mbps / 1 ms links; the 8th node downloads from the 6 peers over
// dedicated 5 Mbps / 100 ms links; every 25 s another of those links collapses to
// 100 Kbps, cumulatively, until all are slow. 8 KB blocks, peer management disabled.
//
// Expected shape (paper): too many outstanding blocks (15/50) strand requests on
// collapsed links and delay the 8th node; the dynamic controller beats every fixed
// choice by 7-22% on the slowest node (3 and 6 outstanding are far slower still).

#include <memory>
#include <string>

#include "src/core/bullet_prime.h"
#include "src/harness/experiment.h"
#include "src/harness/scenario_registry.h"
#include "src/sim/dynamics.h"

namespace bullet {
namespace {

constexpr int kNodes = 8;
constexpr NodeId kSlowNode = 7;

MeshTopology Fig12Topology() {
  MeshTopology topo(kNodes);
  for (NodeId n = 0; n < kNodes; ++n) {
    topo.uplink(n) = LinkParams{100e6, MsToSim(0), 0.0};
    topo.downlink(n) = LinkParams{100e6, MsToSim(0), 0.0};
  }
  for (NodeId s = 0; s < kNodes; ++s) {
    for (NodeId d = 0; d < kNodes; ++d) {
      if (s == d) {
        continue;
      }
      if (s == kSlowNode || d == kSlowNode) {
        topo.core(s, d) = LinkParams{5e6, MsToSim(100), 0.0};
      } else {
        topo.core(s, d) = LinkParams{10e6, MsToSim(1), 0.0};
      }
    }
  }
  return topo;
}

// The topology is fixed at 8 nodes, so only the file/seed/deadline overrides apply.
BULLET_SCENARIO(fig12_outstanding_cascade, "Fig. 12 — cascading bandwidth collapses") {
  ExperimentParams params;
  params.seed = opts.seed.value_or(1201);
  params.file.block_bytes = opts.block_bytes.value_or(8 * 1024);
  params.file.num_blocks = static_cast<uint32_t>(
      opts.file_mb.value_or(ScaledFileMb(100.0)) * 1024.0 * 1024.0 /
      static_cast<double>(params.file.block_bytes));
  params.deadline = SecToSim(opts.deadline_sec.value_or(7200.0));

  ScenarioReport report(kScenarioName);
  for (const int window : {0, 9, 15, 50, 6, 3}) {
    BulletPrimeConfig bp;
    bp.dynamic_peer_sets = false;  // the paper disables peer management here
    bp.initial_senders = 6;
    bp.initial_receivers = 7;
    std::string name;
    if (window == 0) {
      name = "BulletPrime dyn outstanding";
    } else {
      bp.dynamic_outstanding = false;
      bp.fixed_outstanding = window;
      name = "BulletPrime " + std::to_string(window) + " outstanding";
    }

    Experiment exp(Fig12Topology(), params);
    // Every 25 s another peer's dedicated link toward the 8th node collapses.
    StartCascade(exp.net(), kSlowNode, {1, 2, 3, 4, 5, 6}, SecToSim(25.0), 100e3);
    RunMetrics metrics = exp.Run([&](const Protocol::Context& ctx, const ControlTree* tree) {
      return std::make_unique<BulletPrime>(ctx, params.file, params.source, tree, bp);
    });

    const auto all = metrics.CompletionSeconds(params.source, SimToSec(params.deadline));
    SeriesReport& s = report.AddSeries(name, all);
    s.metrics.emplace_back("slow_node_s", metrics.node(kSlowNode).completion >= 0
                                              ? SimToSec(metrics.node(kSlowNode).completion)
                                              : SimToSec(params.deadline));
  }
  return report;
}

}  // namespace
}  // namespace bullet
