// The control tree used for joining the overlay and for RanSub epochs (Fig. 1 of the
// paper, step 1). Bullet' uses a basic random tree; the source is always the root.

#ifndef SRC_OVERLAY_CONTROL_TREE_H_
#define SRC_OVERLAY_CONTROL_TREE_H_

#include <vector>

#include "src/common/rng.h"
#include "src/sim/topology.h"

namespace bullet {

struct ControlTree {
  std::vector<NodeId> parent;                 // parent[root] == -1
  std::vector<std::vector<NodeId>> children;  // children[n] in attach order
  std::vector<int> subtree_size;              // including the node itself

  int num_nodes() const { return static_cast<int>(parent.size()); }
  bool IsRoot(NodeId n) const { return parent[static_cast<size_t>(n)] < 0; }
  int depth(NodeId n) const;

  // Random tree rooted at node 0: nodes join in random order and attach to a random
  // node that still has fanout capacity. Equivalent to RandomStaged with every
  // other node in one stage (bit-for-bit: it consumes the RNG identically).
  static ControlTree Random(int num_nodes, int max_fanout, Rng& rng);

  // Random tree over a member subset with a join schedule: `stages` lists the
  // non-root members grouped by join time, earliest first. Each stage is
  // shuffled, then its members attach one by one to a random already-attached
  // node with spare fanout — so every parent joins no later than its children,
  // which is what lets staggered-join sessions connect child-to-parent at join
  // time. Nodes outside root/stages stay isolated (parent -1, no children);
  // tree vectors are always sized num_nodes so global NodeIds index directly.
  static ControlTree RandomStaged(int num_nodes, NodeId root,
                                  const std::vector<std::vector<NodeId>>& stages, int max_fanout,
                                  Rng& rng);
};

}  // namespace bullet

#endif  // SRC_OVERLAY_CONTROL_TREE_H_
