// Max-min fair bandwidth allocation with per-flow rate caps.
//
// Each active flow traverses an arbitrary list of links — on the legacy mesh that
// is (sender uplink, receiver downlink, core link); on a routed topology it is the
// access links plus every interior link of the flow's route — and may additionally
// be capped by its TCP model. Progressive filling computes the unique max-min
// allocation: repeatedly find the most constrained link, freeze its flows at the
// fair share, and redistribute. Flows whose cap is below the current water level
// are frozen at their cap first.
//
// Two implementations share the algorithm:
//
//  * AllocateMaxMin / AllocateMaxMinPaths — the stateless reference. Builds every
//    auxiliary structure per call; kept as the ground truth the property tests
//    compare against and as the pre-PR "full recompute every quantum" network
//    mode. AllocateMaxMin is the historical fixed-3-link entry point; Paths takes
//    a variable-length link list per flow. Both funnel into one reference body,
//    and a 3-link flow performs the identical arithmetic through either.
//
//  * IncrementalMaxMin — the hot-path engine. All scratch (per-link flow lists as
//    a CSR array, the saturation heap, the cap-sorted index, freeze flags)
//    persists across allocation epochs, so a recompute performs zero heap
//    allocations after warm-up. Callers dirty-track their flow set and simply
//    skip Allocate() when nothing changed: the previous rates are, by
//    determinism, exactly what a recompute would produce.
//
// Bit-exactness contract: for the same sequence of links and flows (same link
// ids, same per-flow link order), IncrementalMaxMin::Allocate() produces rates
// bit-identical to the reference. This is load-bearing — the max-min water level
// is a chain of FP subtractions whose low-order bits depend on freeze order, and
// freeze order depends on flow and link numbering (sort and heap tie-breaks).
// Both implementations therefore perform the identical operation sequence (same
// sort call, same heap algorithm, same update arithmetic), and the network feeds
// them flows in the identical order. Equal-cap flows may be permuted by the sort:
// they freeze at equal rates, and subtracting equal values commutes bitwise, so
// such permutations are harmless. Partial recomputation of "affected bottleneck
// groups" cannot meet this contract (restricting the heap to a subgraph changes
// tie resolution), which is why incrementality here means exact result reuse
// plus allocation-free rebuild rather than subgraph water-filling.
//
// Thread-safety: the free functions are safe to call concurrently on disjoint
// arguments (they touch only their parameters); an IncrementalMaxMin instance
// is single-threaded — its persistent scratch belongs to one Network.
// AllocateParallel() is still driven from that single owning thread; it only
// fans work out through a WorkerPool whose barrier brackets every shared
// access, so no concurrent calls into the instance ever occur.
//
// AllocateParallel() determinism: results depend on the pool's worker count
// but never on thread scheduling — workers fill disjoint flow ranges and the
// coordinator merges their per-link deltas in worker-index order. It is NOT
// bit-identical to Allocate() in general: freezes within a saturation round
// are subtracted from each link as per-worker partial sums rather than one at
// a time, and the reduced heap traffic can resolve exact FP share ties between
// different links in a different order. On capacity sets where the arithmetic
// is exact (e.g. power-of-two capacities) and ties are between equal shares,
// both effects vanish and the two entry points agree bitwise — the invariants
// tests pin this on such a network.
//
// Profiling: the water-filling body runs under a `water_fill` timed scope
// (src/common/profiler.h) — distinct from the network's enclosing
// `allocator_epoch` phase so nesting never double-counts. The scope is a no-op
// unless built with -DBULLET_PROFILE=ON and never affects the computed rates.

#ifndef SRC_SIM_BANDWIDTH_ALLOCATOR_H_
#define SRC_SIM_BANDWIDTH_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

namespace bullet {

class WorkerPool;

struct FlowSpec {
  // Link indices into the capacity vector; -1 means unused slot.
  int32_t links[3] = {-1, -1, -1};
  // Per-flow rate cap in bits/second (TCP model); use a large value for "unlimited".
  double cap_bps = 0.0;
  // Output: allocated rate in bits/second.
  double rate_bps = 0.0;
};

// Variable-length counterpart of FlowSpec for routed paths: a flow crosses every
// link id in `links` (negative entries are ignored, mirroring FlowSpec's -1).
struct PathFlowSpec {
  std::vector<int32_t> links;
  double cap_bps = 0.0;
  double rate_bps = 0.0;  // output
};

// Computes the allocation in place. `link_capacity_bps[i]` is the capacity of link i.
// Runs in O(F log F + saturation events * log L).
void AllocateMaxMin(std::vector<FlowSpec>& flows, const std::vector<double>& link_capacity_bps);

// As AllocateMaxMin, for flows that cross arbitrary-length link lists. A flow
// whose `links` holds exactly three entries allocates bit-identically to the
// same flow through AllocateMaxMin.
void AllocateMaxMinPaths(std::vector<PathFlowSpec>& flows,
                         const std::vector<double>& link_capacity_bps);

// Reusable-scratch max-min engine. Usage per allocation epoch:
//
//   alloc.BeginEpoch();
//   for each link (fixed ids first, discovered ones after): alloc.AddLink(capacity);
//   for each flow in the caller's canonical order:
//     alloc.AddFlow(l0, l1, l2, cap);            // legacy fixed-3 form, or
//     alloc.AddFlowPath(ids, num_ids, cap);      // routed variable-length form
//   alloc.Allocate();
//   ... alloc.rate(i) ...
//
// Results stay valid until the next BeginEpoch(), which lets callers reuse rates
// across quanta in which the flow set, caps, and capacities are all unchanged.
class IncrementalMaxMin {
 public:
  // Resets the flow/link set for a new epoch; previously returned rates are
  // invalidated. Scratch capacity is retained. The first `keep_links` link
  // capacities survive into the new epoch (callers pass the count of fixed
  // access links when they verified those capacities did not change, skipping
  // 2n AddLink calls per epoch); pass 0 to start from an empty link set.
  void BeginEpoch(size_t keep_links = 0);

  // Registers the next link; ids are assigned densely in call order.
  int32_t AddLink(double capacity_bps);

  // Registers the next flow (index = number of AddFlow* calls so far this epoch).
  // Unused link slots are -1.
  void AddFlow(int32_t l0, int32_t l1, int32_t l2, double cap_bps);

  // Registers the next flow crossing `num_ids` links (negative ids are ignored).
  void AddFlowPath(const int32_t* ids, size_t num_ids, double cap_bps);

  // Water-fills the current epoch. Bit-identical to the stateless reference over
  // the same links/flows sequence.
  void Allocate();

  // Water-fills the current epoch with the parallel engine's variant: heap
  // pushes are batched per saturation round (one push per touched link instead
  // of one per freeze), and rounds whose bottleneck row is wide are sharded
  // across `pool`'s workers (disjoint rate writes; per-link demand deltas
  // reduced in worker-index order). `pool` may be null, which keeps every
  // round on the calling thread but retains the batched-push arithmetic. See
  // the header comment for the determinism contract relative to Allocate().
  void AllocateParallel(WorkerPool* pool);

  size_t num_flows() const { return cap_.size(); }
  size_t num_links() const { return capacity_.size(); }
  double rate(size_t flow_index) const { return rate_[flow_index]; }
  const std::vector<double>& rates() const { return rate_; }

  // Read-only view of the current epoch's inputs (link capacities, per-flow
  // link CSR, per-flow caps), for the aggregated water-fill in
  // src/sim/scale/flow_aggregation.h. Valid from the last AddFlow* call until
  // the next BeginEpoch(). Flow i crosses (*flow_links)[(*flow_off)[i] ..
  // (*flow_off)[i+1]); negative entries are unused slots.
  struct EpochView {
    const std::vector<double>* capacity;
    const std::vector<int32_t>* flow_links;
    const std::vector<uint32_t>* flow_off;
    const std::vector<double>* cap;
  };
  EpochView epoch_view() const { return EpochView{&capacity_, &flow_links_, &flow_off_, &cap_}; }

  // Number of flows the last Allocate() saw on `link` (CSR row width). Valid
  // until the next BeginEpoch(); used by the network's shared-bottleneck
  // introspection.
  int32_t flows_on_link(size_t link) const {
    return static_cast<int32_t>(link_off_[link + 1] - link_off_[link]);
  }

 private:
  // Rebuilds the per-epoch scratch (remaining capacities, CSR link->flow rows,
  // ascending-cap order, frozen flags, zeroed rates) from the epoch inputs.
  // Pure data movement shared by Allocate() and AllocateParallel().
  void BuildEpochScratch();

  struct HeapEntry {
    double share;
    int32_t link;
    uint32_t stamp;
    bool operator>(const HeapEntry& o) const { return share > o.share; }
  };
  // std::priority_queue with a drainable underlying container, so the heap's
  // storage survives across epochs. Same element order semantics as the
  // reference implementation's priority_queue.
  struct ReusableHeap
      : std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>> {
    void clear() { c.clear(); }
    void reserve(size_t n) { c.reserve(n); }
  };

  // Epoch inputs. Flows are stored CSR-style: flow i crosses
  // flow_links_[flow_off_[i] .. flow_off_[i+1]).
  std::vector<double> capacity_;     // per link
  std::vector<int32_t> flow_links_;  // CSR payload (may contain negative = unused)
  std::vector<uint32_t> flow_off_;   // CSR offsets, size F+1
  std::vector<double> cap_;          // per flow
  std::vector<double> rate_;         // per flow (output)

  // Scratch reused across epochs.
  std::vector<double> remaining_;
  std::vector<int32_t> nflows_;
  std::vector<uint32_t> stamp_;
  std::vector<uint32_t> link_off_;    // CSR offsets, size L+1
  std::vector<uint32_t> link_flow_;   // CSR payload: flow indices per link, flow order
  std::vector<uint32_t> fill_cursor_;
  std::vector<std::pair<double, uint32_t>> sort_buf_;  // (cap, flow) pairs
  std::vector<size_t> by_cap_;
  std::vector<char> frozen_;
  ReusableHeap heap_;

  // AllocateParallel scratch. round_id_ is monotonically increasing across
  // epochs and never reset, so the stamp arrays need no per-epoch clearing:
  // a stale stamp from any earlier round or epoch simply compares unequal.
  uint64_t round_id_ = 1;
  std::vector<uint64_t> round_stamp_;   // per link: round that last touched it
  std::vector<int32_t> round_touched_;  // links touched this round, first-touch order
  struct ShardScratch {
    std::vector<uint64_t> stamp;   // per link: round of last accumulation
    std::vector<double> delta;     // per link: demand frozen by this worker
    std::vector<int32_t> dcount;   // per link: flows frozen by this worker
    std::vector<int32_t> touched;  // links this worker accumulated into
    size_t frozen = 0;
  };
  std::vector<ShardScratch> shards_;
};

}  // namespace bullet

#endif  // SRC_SIM_BANDWIDTH_ALLOCATOR_H_
