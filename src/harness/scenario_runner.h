// Command-line driver behind the bullet_run binary. Split from main() so the arg
// parsing, JSON emission and exit codes are unit-testable.

#ifndef SRC_HARNESS_SCENARIO_RUNNER_H_
#define SRC_HARNESS_SCENARIO_RUNNER_H_

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "src/harness/scenario_registry.h"
#include "src/harness/sweep.h"

namespace bullet {

struct RunnerArgs {
  bool ok = true;          // false => `error` says what was wrong
  std::string error;
  bool help = false;
  bool list = false;
  bool quiet = false;      // suppress the human-readable tables on stdout
  bool profile = false;    // print the per-phase profile summary (single runs)
  std::string scenario;
  std::string out_path;    // empty => BENCH_<scenario>.json in the working directory
  ScenarioOptions options;

  // Sweep mode (any of --sweep/--sweep-file/--repeats engages it): the scenario
  // runs over a parameter grid on a worker pool instead of once.
  std::vector<SweepAxis> sweep_axes;       // parsed --sweep arguments, in order
  std::string sweep_file;                  // --sweep-file PATH
  std::optional<int> repeats;              // --repeats N
  std::optional<std::string> sweep_name;   // --sweep-name TAG
  int jobs = 0;                            // --jobs N; 0 = hardware concurrency
  std::string out_dir = ".";               // --out-dir for sweep artifacts

  bool sweep_mode() const {
    return !sweep_axes.empty() || !sweep_file.empty() || repeats.has_value();
  }
};

// Parses bullet_run flags: --list, --scenario NAME, --nodes N, --file-mb F,
// --seed S, --block-bytes B, --deadline-sec D, --loss L, --out PATH, --quiet,
// --help, and the sweep flags --sweep key=v1,v2 (repeatable), --sweep-file PATH,
// --repeats N, --jobs N, --sweep-name TAG, --out-dir DIR.
// Both "--flag value" and "--flag=value" forms are accepted.
RunnerArgs ParseRunnerArgs(int argc, const char* const* argv);

// Serializes a finished report (plus the options that produced it) as JSON
// (schema bullet-bench-v3). A non-null `profile` with recorded phases adds a
// `profile` block of per-phase {count, ns} totals — per-run documents may
// carry wall-clock data; sweep *aggregates* may not (see WriteSweepJson).
void WriteReportJson(std::ostream& os, const ScenarioReport& report,
                     const ScenarioOptions& options, const PhaseSnapshot* profile = nullptr);

// Human-readable table behind `bullet_run --profile`: the deterministic run
// counters plus, in profiled builds, per-phase count/total/mean timings.
void PrintProfileSummary(std::ostream& os, const RunCounters& counters,
                         const PhaseSnapshot& profile, double wall_sec);

void PrintScenarioList(std::ostream& os, const ScenarioRegistry& registry);
void PrintRunnerUsage(std::ostream& os);

// Full CLI flow against `registry`; returns the process exit code.
int RunnerMain(int argc, const char* const* argv, const ScenarioRegistry& registry,
               std::ostream& out, std::ostream& err);

// Convenience overload used by the bullet_run main(): global registry, std streams.
int RunnerMain(int argc, const char* const* argv);

}  // namespace bullet

#endif  // SRC_HARNESS_SCENARIO_RUNNER_H_
