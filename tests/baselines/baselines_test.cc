// Unit and small-integration tests for the three comparison systems.

#include <gtest/gtest.h>

#include "src/baselines/bittorrent.h"
#include "src/baselines/bullet_legacy.h"
#include "src/baselines/splitstream.h"
#include "src/baselines/stripe_forest.h"
#include "src/harness/experiment.h"

namespace bullet {
namespace {

MeshTopology SmallMesh(int n, uint64_t seed, double loss_max = 0.0) {
  Rng rng(seed);
  MeshTopology::MeshParams mesh;
  mesh.num_nodes = n;
  mesh.core_loss_max = loss_max;
  return MeshTopology::FullMesh(mesh, rng);
}

// ---------------- StripeForest ----------------

TEST(StripeForest, InteriorDisjointInvariant) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    const StripeForest forest = StripeForest::Build(100, 8, 0, rng);
    EXPECT_TRUE(forest.InteriorDisjoint(0)) << "seed " << seed;
  }
}

TEST(StripeForest, EveryNodeAttachedInEveryStripe) {
  Rng rng(4);
  const StripeForest forest = StripeForest::Build(64, 8, 0, rng);
  for (const auto& tree : forest.trees) {
    int attached = 0;
    for (NodeId n = 0; n < 64; ++n) {
      if (tree.parent[static_cast<size_t>(n)] >= 0 || n == 0) {
        ++attached;
      }
    }
    EXPECT_EQ(attached, 64);
    EXPECT_EQ(tree.subtree_size[0], 64);
  }
}

TEST(StripeForest, BoundedDepth) {
  Rng rng(5);
  const StripeForest forest = StripeForest::Build(100, 8, 0, rng);
  EXPECT_LE(forest.MaxDepth(), 6);
}

TEST(StripeForest, SmallSwarm) {
  Rng rng(6);
  const StripeForest forest = StripeForest::Build(4, 8, 0, rng);
  EXPECT_TRUE(forest.InteriorDisjoint(0));
  for (const auto& tree : forest.trees) {
    EXPECT_EQ(tree.subtree_size[0], 4);
  }
}

// ---------------- end-to-end completion ----------------

FileParams SmallFile(bool encoded) {
  FileParams file;
  file.block_bytes = 16 * 1024;
  file.num_blocks = 64;  // 1 MB
  file.encoded = encoded;
  return file;
}

TEST(BitTorrentSystem, SwarmCompletes) {
  ExperimentParams params;
  params.seed = 31;
  params.file = SmallFile(false);
  params.deadline = SecToSim(600.0);
  Experiment exp(SmallMesh(16, 31), params);
  RunMetrics metrics = exp.Run([&](const Protocol::Context& ctx, const ControlTree*) {
    return std::make_unique<BitTorrent>(ctx, params.file, params.source, BitTorrentConfig{});
  });
  EXPECT_EQ(metrics.completed(), 15);
  EXPECT_LT(metrics.DuplicateFraction(), 0.02);
}

TEST(BitTorrentSystem, UnchokeSlotsBounded) {
  ExperimentParams params;
  params.seed = 32;
  params.file = SmallFile(false);
  params.deadline = SecToSim(45.0);  // stop mid-download
  Experiment exp(SmallMesh(20, 32), params);
  std::vector<BitTorrent*> protos;
  exp.Run([&](const Protocol::Context& ctx, const ControlTree*) {
    auto p = std::make_unique<BitTorrent>(ctx, params.file, params.source, BitTorrentConfig{});
    protos.push_back(p.get());
    return p;
  });
  const BitTorrentConfig config;
  for (const auto* p : protos) {
    EXPECT_LE(p->num_unchoked(), config.unchoke_slots + 1);  // + optimistic
  }
}

TEST(BulletLegacySystem, SwarmCompletesEncoded) {
  ExperimentParams params;
  params.seed = 33;
  params.file = SmallFile(true);  // the paper runs Bullet as source-encoded
  params.deadline = SecToSim(600.0);
  Experiment exp(SmallMesh(16, 33), params);
  RunMetrics metrics = exp.Run([&](const Protocol::Context& ctx, const ControlTree* tree) {
    return std::make_unique<BulletLegacy>(ctx, params.file, params.source, tree,
                                          BulletLegacyConfig{});
  });
  EXPECT_EQ(metrics.completed(), 15);
}

TEST(SplitStreamSystem, SwarmCompletesEncoded) {
  ExperimentParams params;
  params.seed = 34;
  params.file = SmallFile(true);
  params.deadline = SecToSim(900.0);
  Experiment exp(SmallMesh(16, 34), params);
  Rng forest_rng(34);
  const StripeForest forest = StripeForest::Build(16, 8, 0, forest_rng);
  RunMetrics metrics = exp.Run([&](const Protocol::Context& ctx, const ControlTree*) {
    return std::make_unique<SplitStream>(ctx, params.file, params.source, &forest,
                                         SplitStreamConfig{});
  });
  EXPECT_EQ(metrics.completed(), 15);
  // Push-only trees generate no request/diff traffic at all.
  EXPECT_LT(metrics.ControlOverheadFraction(), 0.01);
}

TEST(SplitStreamSystem, SlowInteriorStarvesOnlyItsStripe) {
  // Throttle every core link out of one interior node; receivers still complete
  // because the other stripes keep flowing (the encoded stream needs any 1.04n).
  ExperimentParams params;
  params.seed = 35;
  params.file = SmallFile(true);
  params.deadline = SecToSim(1800.0);
  MeshTopology topo = SmallMesh(16, 35);
  for (NodeId d = 0; d < 16; ++d) {
    if (d != 1) {
      topo.core(1, d).bandwidth_bps = 50e3;  // node 1 is interior in one stripe only
    }
  }
  Experiment exp(std::move(topo), params);
  Rng forest_rng(35);
  const StripeForest forest = StripeForest::Build(16, 8, 0, forest_rng);
  RunMetrics metrics = exp.Run([&](const Protocol::Context& ctx, const ControlTree*) {
    return std::make_unique<SplitStream>(ctx, params.file, params.source, &forest,
                                         SplitStreamConfig{});
  });
  EXPECT_EQ(metrics.completed(), 15);
}

}  // namespace
}  // namespace bullet
