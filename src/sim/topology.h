// Emulated topologies.
//
// The paper's ModelNet setup is a fully interconnected mesh: every overlay node has a
// dedicated inbound and outbound access link, and every ordered node pair has its own
// core link with independently chosen bandwidth, propagation delay and loss rate. We
// model exactly that: a flow from s to d traverses s's uplink, core(s, d), and d's
// downlink. Builders cover every topology used in the evaluation (Sections 4.1-4.7).

#ifndef SRC_SIM_TOPOLOGY_H_
#define SRC_SIM_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/time.h"

namespace bullet {

using NodeId = int32_t;

struct LinkParams {
  double bandwidth_bps = 0.0;  // capacity in bits/second
  SimTime delay = 0;           // one-way propagation delay
  double loss_rate = 0.0;      // independent packet loss probability
};

class Topology {
 public:
  Topology(int num_nodes);

  int num_nodes() const { return num_nodes_; }

  LinkParams& uplink(NodeId n) { return uplinks_[static_cast<size_t>(n)]; }
  LinkParams& downlink(NodeId n) { return downlinks_[static_cast<size_t>(n)]; }
  LinkParams& core(NodeId src, NodeId dst) {
    return core_[static_cast<size_t>(src) * static_cast<size_t>(num_nodes_) +
                 static_cast<size_t>(dst)];
  }
  const LinkParams& uplink(NodeId n) const { return uplinks_[static_cast<size_t>(n)]; }
  const LinkParams& downlink(NodeId n) const { return downlinks_[static_cast<size_t>(n)]; }
  const LinkParams& core(NodeId src, NodeId dst) const {
    return core_[static_cast<size_t>(src) * static_cast<size_t>(num_nodes_) +
                 static_cast<size_t>(dst)];
  }

  // One-way path delay s->d and round-trip time s->d->s.
  SimTime PathDelay(NodeId src, NodeId dst) const;
  SimTime Rtt(NodeId src, NodeId dst) const;
  // End-to-end loss probability on the s->d path (access links are lossless in the
  // paper's setup; loss lives on core links).
  double PathLoss(NodeId src, NodeId dst) const;

  // --- Builders for the paper's experimental topologies ---

  struct MeshParams {
    int num_nodes = 100;
    double access_bps = 6e6;        // 6 Mbps access links (Section 4.1)
    double core_bps = 2e6;          // 2 Mbps nominal core links
    SimTime access_delay = MsToSim(1);
    SimTime core_delay_min = MsToSim(5);
    SimTime core_delay_max = MsToSim(200);
    double core_loss_min = 0.0;     // loss chosen uniformly per core link
    double core_loss_max = 0.03;    // 0-3% (Section 4.1)
  };
  // The Section 4.1 topology: full mesh, randomized core delays and losses.
  static Topology FullMesh(const MeshParams& params, Rng& rng);

  // The Section 4.4 "constrained access" topology: ample core (10 Mbps / 1 ms,
  // lossless), 800 Kbps access links.
  static Topology ConstrainedAccess(int num_nodes, Rng& rng);

  // The Section 4.5 topology: uniform links of the given bandwidth/latency between
  // all pairs (modelled as ample access and uniform core), optional random core loss.
  static Topology Uniform(int num_nodes, double link_bps, SimTime link_delay,
                          double loss_min, double loss_max, Rng& rng);

  // A synthetic wide-area (PlanetLab stand-in) topology for Section 4.7: per-node
  // access bandwidth 1-20 Mbps, core RTTs 10-400 ms, light random loss.
  static Topology WideArea(int num_nodes, Rng& rng);

 private:
  int num_nodes_;
  std::vector<LinkParams> uplinks_;
  std::vector<LinkParams> downlinks_;
  std::vector<LinkParams> core_;
};

}  // namespace bullet

#endif  // SRC_SIM_TOPOLOGY_H_
