// Fig. 21 (extension, no paper figure): dissemination under *member* dynamics —
// diurnal arrivals, heavy-tailed Pareto lifetimes, and seeders that leave
// shortly after completing. Receivers whose lifetime expires mid-download
// depart incomplete (reported at the deadline in the CDF), so a system that
// finishes faster keeps more of the Pareto tail: Bullet' completes essentially
// everyone, while BitTorrent and SplitStream — 2-3x slower on this topology
// (Fig. 4) — lose the receivers whose stay ends before their download does.
//
// The lifetime floor scales with the TCP-feasible transfer time, so the
// contrast survives REPRO_SCALE and --nodes overrides; --lifetime-pareto-alpha
// sweeps the tail index (smaller = heavier tail = more departures).

#include <memory>
#include <string>

#include "src/harness/scenario_registry.h"
#include "src/harness/workload_gen.h"

namespace bullet {
namespace {

BULLET_SCENARIO(fig21_churn_lifetimes,
                "Extension — Pareto lifetimes, diurnal arrivals, seeder departure") {
  ScenarioConfig cfg;
  cfg.num_nodes = 100;
  cfg.file_mb = ScaledFileMb(100.0);
  cfg.seed = 2101;
  ApplyScenarioOptions(opts, &cfg);

  const double alpha = cfg.lifetime_pareto_alpha > 0 ? cfg.lifetime_pareto_alpha : 1.5;
  const double feasible = TcpFeasibleSeconds(cfg.file_mb, 6e6, /*startup_sec=*/12.0);
  // Everyone stays at least ~2x the feasible transfer time — long enough for a
  // near-optimal system to finish inside the minimum stay, short enough that a
  // 2-3x-slower system's receivers start expiring.
  const SimTime min_stay = SecToSim(2.0 * feasible);

  // Receivers trickle in over ~2 minutes under the diurnal rate curve; the
  // generators are shared across systems so every run sees the same processes
  // (each still draws from its own session-seeded stream).
  const auto arrivals = std::make_shared<DiurnalArrivals>(
      (cfg.num_nodes - 1) / 120.0, /*amplitude=*/0.8, /*period=*/SecToSim(120.0));
  // A 30s linger keeps fast finishers seeding long enough to overlap the
  // diurnal tail of late joiners before they leave.
  const auto lifetimes = std::make_shared<ParetoLifetime>(
      alpha, min_stay, /*depart_after_completion=*/true, /*linger=*/SecToSim(30.0));

  ScenarioReport report(kScenarioName);
  int total_departed_incomplete = 0;
  for (const char* system : {"bullet-prime", "bittorrent", "splitstream"}) {
    WorkloadSpec workload;
    SessionSpec session;
    session.protocol = system;
    session.source = 0;
    session.seed = cfg.seed;
    session.arrivals = arrivals;
    session.lifetimes = lifetimes;
    workload.sessions.push_back(std::move(session));

    const WorkloadResult wl = RunScenarioWorkload(cfg, workload);
    const SessionResult& r = wl.sessions.front();
    report.AddCompletion(ToScenarioResult(r, wl));
    // Underscored keys: metric names are dotted with the series name downstream.
    const std::string key = std::string(system) == "bullet-prime" ? "bullet_prime"
                                                                  : std::string(system);
    report.AddScalar(key + "_departed", r.departed);
    report.AddScalar(key + "_departed_incomplete", r.departed_incomplete);
    total_departed_incomplete += r.departed_incomplete;
  }
  report.AddScalar("lifetime_pareto_alpha", alpha);
  report.AddScalar("min_stay_s", SimToSec(min_stay));
  report.AddScalar("total_departed_incomplete", total_departed_incomplete);
  return report;
}

}  // namespace
}  // namespace bullet
