// Extension scenario (no paper figure): mesh resilience under node failures — the
// Section 1 argument that losing one of n peers costs ~1/n of a node's bandwidth.
// Sweeps the number of failed leaves on the Fig. 4 topology and reports survivor
// completion times; the dual sweep runs legacy Bullet, whose receivers depend partly
// on tree forwarding, for contrast.

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/bullet_legacy.h"
#include "src/core/bullet_prime.h"
#include "src/harness/churn.h"
#include "src/harness/experiment.h"
#include "src/harness/scenario_registry.h"

namespace bullet {
namespace {

std::vector<double> RunChurn(bool legacy, int kills, const ScenarioConfig& cfg) {
  ExperimentParams params;
  params.seed = cfg.seed;
  params.file.block_bytes = cfg.block_bytes;
  params.file.num_blocks =
      static_cast<uint32_t>(cfg.file_mb * 1024.0 * 1024.0 / static_cast<double>(cfg.block_bytes));
  params.file.encoded = legacy;
  params.deadline = cfg.deadline;
  Experiment exp(BuildScenarioTopology(cfg), params);

  std::vector<char> is_victim(static_cast<size_t>(cfg.num_nodes), 0);
  if (kills > 0) {
    Rng churn_rng(cfg.seed ^ 0xc0ffee);
    const ChurnPlan plan = PlanLeafFailures(exp.tree(), params.source, kills, churn_rng);
    for (const NodeId v : plan.victims) {
      is_victim[static_cast<size_t>(v)] = 1;
    }
    ScheduleChurn(exp.net(), plan);
  }
  BulletPrimeConfig bp;
  RunMetrics metrics = exp.Run([&](const Protocol::Context& ctx, const ControlTree* tree)
                                   -> std::unique_ptr<Protocol> {
    if (legacy) {
      return std::make_unique<BulletLegacy>(ctx, params.file, params.source, tree,
                                            BulletLegacyConfig{});
    }
    return std::make_unique<BulletPrime>(ctx, params.file, params.source, tree, bp);
  });

  std::vector<double> survivor_times;
  for (NodeId n = 1; n < cfg.num_nodes; ++n) {
    if (is_victim[static_cast<size_t>(n)]) {
      continue;
    }
    survivor_times.push_back(metrics.node(n).completion >= 0
                                 ? SimToSec(metrics.node(n).completion)
                                 : SimToSec(params.deadline));
  }
  return survivor_times;
}

BULLET_SCENARIO(churn_resilience, "Extension — survivor completion under leaf failures") {
  ScenarioConfig cfg;
  cfg.num_nodes = 100;
  cfg.file_mb = ScaledFileMb(100.0);
  cfg.seed = 3001;
  cfg.deadline = SecToSim(7200.0);
  ApplyScenarioOptions(opts, &cfg);

  struct Sweep {
    const char* name;  // display name, matching the registry's display_name
    bool legacy;
    int kills;
  };
  ScenarioReport report(kScenarioName);
  for (const Sweep sweep :
       {Sweep{"BulletPrime", false, 0}, Sweep{"BulletPrime", false, 10},
        Sweep{"BulletPrime", false, 25}, Sweep{"Bullet", true, 0}, Sweep{"Bullet", true, 25}}) {
    const auto times = RunChurn(sweep.legacy, sweep.kills, cfg);
    report.AddSeries(std::string(sweep.name) + " survivors, " +
                         std::to_string(sweep.kills) + " failures",
                     times);
  }
  return report;
}

}  // namespace
}  // namespace bullet
