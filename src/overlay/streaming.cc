#include "src/overlay/streaming.h"

#include <algorithm>

#include "src/common/logging.h"

namespace bullet {

namespace {

SimTime BlockDuration(const StreamingSpec& spec, int64_t block_bytes) {
  const double bits = static_cast<double>(block_bytes) * 8.0;
  return SecToSim(bits / (spec.bitrate_mbps * 1e6));
}

}  // namespace

StreamPlayback::StreamPlayback(const StreamingSpec& spec, uint32_t num_positions,
                               int64_t block_bytes, SimTime session_start, SimTime join_time)
    : spec_(spec),
      num_positions_(num_positions),
      block_duration_(BlockDuration(spec, block_bytes)),
      session_start_(session_start),
      join_time_(join_time),
      held_(num_positions, 0) {
  BULLET_CHECK(num_positions_ > 0 && "a streaming session needs at least one position");
  BULLET_CHECK(spec_.bitrate_mbps > 0 && spec_.window_blocks > 0 &&
               "streaming bitrate and window must be positive");
  BULLET_CHECK(block_duration_ > 0 && "stream bitrate too high for this block size");
  // Catch up from the live edge: required playback starts at the position the
  // source is releasing when this receiver joins. The final position is always
  // required, so even a very late joiner has something to play.
  start_position_ = std::min(LiveEdge(join_time_), num_positions_ - 1);
  next_needed_ = start_position_;
}

uint32_t StreamPlayback::LiveEdge(SimTime t) const {
  if (t <= session_start_) {
    return 0;
  }
  const int64_t released = (t - session_start_) / block_duration_;
  return static_cast<uint32_t>(
      std::min<int64_t>(released, static_cast<int64_t>(num_positions_)));
}

uint64_t StreamPlayback::BlocksReleasable(SimTime t) const {
  if (t < session_start_) {
    return 0;
  }
  return static_cast<uint64_t>((t - session_start_) / block_duration_) + 1;
}

bool StreamPlayback::MarkHeld(uint32_t position) {
  if (position >= num_positions_ || held_[position]) {
    return false;
  }
  held_[position] = 1;
  while (next_needed_ < num_positions_ && held_[next_needed_]) {
    ++next_needed_;
  }
  return true;
}

bool StreamPlayback::Eligible(uint32_t id, SimTime t) const {
  const uint32_t pos = PositionOf(id);
  if (pos < next_needed_ || held_[pos]) {
    return false;  // already played/held (or before this receiver's range)
  }
  if (pos >= next_needed_ + static_cast<uint32_t>(spec_.window_blocks)) {
    return false;  // outside the sliding window — retained, eligible later
  }
  // Released (or being released) at the source.
  return pos <= LiveEdge(t);
}

PlaybackStats ComputePlaybackStats(const StreamingSpec& spec, uint32_t num_positions,
                                   int64_t block_bytes, SimTime session_start, SimTime join_time,
                                   const std::vector<SimTime>& position_arrival,
                                   SimTime run_deadline) {
  const StreamPlayback ref(spec, num_positions, block_bytes, session_start, join_time);
  const SimTime dur = ref.block_duration();
  const SimTime play_start = join_time + SecToSim(spec.startup_buffer_sec);
  const uint32_t p0 = ref.start_position();

  PlaybackStats stats;
  SimTime clock = play_start;  // stall-shifted playback clock
  bool abandoned = false;
  for (uint32_t p = p0; p < num_positions; ++p) {
    const SimTime arrival =
        p < position_arrival.size() ? position_arrival[p] : static_cast<SimTime>(-1);
    // Fixed (non-shifted) schedule: the instant the player needs position p.
    const SimTime fixed_due = play_start + static_cast<SimTime>(p - p0) * dur;
    if (arrival < 0 || arrival > fixed_due) {
      ++stats.missed_deadline;
    }
    if (abandoned) {
      continue;  // stall already charged through the run deadline
    }
    if (arrival < 0 || arrival > run_deadline) {
      // Never arrived: playback waits until the run ends, then abandons.
      stats.stall_sec += SimToSec(std::max<SimTime>(0, run_deadline - clock));
      abandoned = true;
      continue;
    }
    if (arrival > clock) {
      stats.stall_sec += SimToSec(arrival - clock);
      clock = arrival;
    }
    clock += dur;
  }
  stats.finished = !abandoned && clock <= run_deadline;
  return stats;
}

}  // namespace bullet
