// Strict full-string numeric parsing shared by the CLI flag parser
// (scenario_runner.cc) and the sweep axis/spec-file grammar (sweep.cc), so both
// surfaces accept exactly the same value syntax: no leading whitespace (strto*
// would skip it and accept e.g. " -1" for unsigned), no trailing garbage, no
// fractional integers, no out-of-range values, no nan/inf.

#ifndef SRC_HARNESS_FLAG_PARSE_H_
#define SRC_HARNESS_FLAG_PARSE_H_

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace bullet {

inline bool ParseStrictInt64(const std::string& text, int64_t* out) {
  if (text.empty() || !(std::isdigit(static_cast<unsigned char>(text[0])) || text[0] == '-')) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno != 0) {
    return false;
  }
  *out = v;
  return true;
}

inline bool ParseStrictUint64(const std::string& text, uint64_t* out) {
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno != 0) {
    return false;
  }
  *out = v;
  return true;
}

inline bool ParseStrictDouble(const std::string& text, double* out) {
  if (text.empty() || !(std::isdigit(static_cast<unsigned char>(text[0])) || text[0] == '-' ||
                        text[0] == '.')) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno != 0 || !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace bullet

#endif  // SRC_HARNESS_FLAG_PARSE_H_
