#include "src/baselines/stripe_forest.h"

#include <algorithm>

namespace bullet {

int StripeForest::MaxDepth() const {
  int max_depth = 0;
  for (const auto& tree : trees) {
    for (NodeId n = 0; n < tree.num_nodes(); ++n) {
      max_depth = std::max(max_depth, tree.depth(n));
    }
  }
  return max_depth;
}

bool StripeForest::InteriorDisjoint(NodeId root) const {
  for (size_t stripe = 0; stripe < trees.size(); ++stripe) {
    const auto& tree = trees[stripe];
    for (NodeId n = 0; n < tree.num_nodes(); ++n) {
      if (n == root) {
        continue;
      }
      const bool interior = !tree.children[static_cast<size_t>(n)].empty();
      if (interior && static_cast<size_t>(n % num_stripes) != stripe) {
        return false;
      }
    }
  }
  return true;
}

StripeForest StripeForest::Build(int num_nodes, int num_stripes, NodeId root, Rng& rng) {
  StripeForest forest;
  forest.num_stripes = num_stripes;
  forest.trees.reserve(static_cast<size_t>(num_stripes));

  for (int stripe = 0; stripe < num_stripes; ++stripe) {
    ControlTree tree;
    tree.parent.assign(static_cast<size_t>(num_nodes), -1);
    tree.children.resize(static_cast<size_t>(num_nodes));
    tree.subtree_size.assign(static_cast<size_t>(num_nodes), 1);

    // Interior candidates for this stripe, in random order.
    std::vector<NodeId> interior;
    std::vector<NodeId> leaves;
    for (NodeId n = 0; n < num_nodes; ++n) {
      if (n == root) {
        continue;
      }
      if (n % num_stripes == stripe) {
        interior.push_back(n);
      } else {
        leaves.push_back(n);
      }
    }
    rng.Shuffle(interior);
    rng.Shuffle(leaves);

    // The source feeds each stripe exactly once: the first interior node is the
    // stripe head under the root; remaining interior nodes attach breadth-first
    // below it with fanout = num_stripes (SplitStream's one-full-stream outdegree
    // budget per interior node).
    const size_t fanout = static_cast<size_t>(num_stripes);
    std::vector<NodeId> spine;
    size_t attach_at = 0;
    for (const NodeId n : interior) {
      NodeId p = root;
      if (!spine.empty()) {
        while (tree.children[static_cast<size_t>(spine[attach_at])].size() >= fanout) {
          ++attach_at;
        }
        p = spine[attach_at];
      }
      tree.parent[static_cast<size_t>(n)] = p;
      tree.children[static_cast<size_t>(p)].push_back(n);
      spine.push_back(n);
    }

    // Every remaining node attaches as a leaf under the least-loaded interior node.
    // Degenerate stripes with no interior candidates (tiny swarms) fall back to the
    // root — SplitStream's spare-capacity group.
    const std::vector<NodeId>& hosts = spine;
    for (const NodeId n : leaves) {
      NodeId best = root;
      size_t best_load = SIZE_MAX;
      for (const NodeId h : hosts) {
        const size_t load = tree.children[static_cast<size_t>(h)].size();
        if (load < fanout && load < best_load) {
          best_load = load;
          best = h;
        }
      }
      tree.parent[static_cast<size_t>(n)] = best;
      tree.children[static_cast<size_t>(best)].push_back(n);
    }

    // Subtree sizes (BFS order, accumulate bottom-up).
    std::vector<NodeId> order = {root};
    for (size_t i = 0; i < order.size(); ++i) {
      for (const NodeId c : tree.children[static_cast<size_t>(order[i])]) {
        order.push_back(c);
      }
    }
    for (size_t i = order.size(); i-- > 0;) {
      const NodeId n = order[i];
      const NodeId p = tree.parent[static_cast<size_t>(n)];
      if (p >= 0) {
        tree.subtree_size[static_cast<size_t>(p)] += tree.subtree_size[static_cast<size_t>(n)];
      }
    }
    forest.trees.push_back(std::move(tree));
  }
  return forest;
}

}  // namespace bullet
