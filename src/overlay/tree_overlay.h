// Base class for protocols that maintain the control tree and run RanSub over it
// (Bullet' and the original Bullet). Handles: connecting to the tree parent,
// identifying tree connections via a hello message, routing RanSub messages to the
// agent, and exposing per-child tree connections for source-style pushing.

#ifndef SRC_OVERLAY_TREE_OVERLAY_H_
#define SRC_OVERLAY_TREE_OVERLAY_H_

#include <map>
#include <memory>
#include <vector>

#include "src/overlay/control_tree.h"
#include "src/overlay/dissemination.h"
#include "src/overlay/ransub.h"

namespace bullet {

struct TreeHelloMsg : Message {
  static constexpr int kType = 9000;
  TreeHelloMsg() {
    type = kType;
    wire_bytes = 8;
  }
};

class TreeOverlayProtocol : public DisseminationProtocol {
 public:
  TreeOverlayProtocol(const Context& ctx, const FileParams& file, NodeId source,
                      const ControlTree* tree, RanSubAgent::Config ransub_config);

  void Start() override;
  void OnConnUp(ConnId conn, NodeId peer, bool initiator) override;
  void OnConnDown(ConnId conn, NodeId peer) override;
  void OnMessage(ConnId conn, NodeId from, std::unique_ptr<Message> msg) override;

 protected:
  // Called for every non-tree, non-RanSub message.
  virtual void OnProtocolMessage(ConnId conn, NodeId from, std::unique_ptr<Message> msg) = 0;
  // Called for every connection event that is not a tree connection.
  virtual void OnPeerConnUp(ConnId /*conn*/, NodeId /*peer*/, bool /*initiator*/) {}
  virtual void OnPeerConnDown(ConnId /*conn*/, NodeId /*peer*/) {}
  // Fired once per RanSub epoch with this node's random subset.
  virtual void OnRanSubEpoch(const std::vector<PeerSummary>& subset) = 0;
  // Advertised summary; protocols may override to add rate information.
  virtual PeerSummary MakeSummary();

  const ControlTree& tree() const { return *tree_; }
  // Tree connection to a specific child; -1 if not (yet) established.
  ConnId ChildConn(NodeId child) const;
  const std::vector<NodeId>& tree_children() const {
    return tree_->children[static_cast<size_t>(self())];
  }
  ConnId parent_conn() const { return parent_conn_; }
  bool IsTreeConn(ConnId conn) const;
  void SendOnTree(NodeId peer, std::unique_ptr<Message> msg);

  std::unique_ptr<RanSubAgent> ransub_;

 private:
  const ControlTree* tree_;
  ConnId parent_conn_ = -1;
  std::map<NodeId, ConnId> child_conns_;
};

}  // namespace bullet

#endif  // SRC_OVERLAY_TREE_OVERLAY_H_
