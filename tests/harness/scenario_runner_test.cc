#include "src/harness/scenario_runner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace bullet {
namespace {

RunnerArgs Parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "bullet_run");
  return ParseRunnerArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(ParseRunnerArgsTest, ListFlag) {
  const RunnerArgs args = Parse({"--list"});
  EXPECT_TRUE(args.ok);
  EXPECT_TRUE(args.list);
}

TEST(ParseRunnerArgsTest, ScenarioWithOverrides) {
  const RunnerArgs args = Parse({"--scenario", "fig04_overall_static", "--nodes", "20",
                                 "--file-mb=2.5", "--seed=42", "--block-bytes", "8192",
                                 "--deadline-sec", "600", "--out", "x.json", "--quiet"});
  ASSERT_TRUE(args.ok) << args.error;
  EXPECT_EQ(args.scenario, "fig04_overall_static");
  ASSERT_TRUE(args.options.nodes.has_value());
  EXPECT_EQ(*args.options.nodes, 20);
  ASSERT_TRUE(args.options.file_mb.has_value());
  EXPECT_DOUBLE_EQ(*args.options.file_mb, 2.5);
  ASSERT_TRUE(args.options.seed.has_value());
  EXPECT_EQ(*args.options.seed, 42u);
  ASSERT_TRUE(args.options.block_bytes.has_value());
  EXPECT_EQ(*args.options.block_bytes, 8192);
  ASSERT_TRUE(args.options.deadline_sec.has_value());
  EXPECT_DOUBLE_EQ(*args.options.deadline_sec, 600.0);
  EXPECT_EQ(args.out_path, "x.json");
  EXPECT_TRUE(args.quiet);
}

TEST(ParseRunnerArgsTest, RejectsUnknownFlag) {
  const RunnerArgs args = Parse({"--scenario", "x", "--frobnicate"});
  EXPECT_FALSE(args.ok);
  EXPECT_NE(args.error.find("--frobnicate"), std::string::npos);
}

TEST(ParseRunnerArgsTest, RejectsBadValues) {
  EXPECT_FALSE(Parse({"--scenario", "x", "--nodes", "1"}).ok);       // < 2
  EXPECT_FALSE(Parse({"--scenario", "x", "--nodes", "abc"}).ok);     // not a number
  EXPECT_FALSE(Parse({"--scenario", "x", "--nodes", "20.7"}).ok);    // fractional
  EXPECT_FALSE(Parse({"--scenario", "x", "--seed", "-1"}).ok);       // negative unsigned
  EXPECT_FALSE(Parse({"--scenario", "x", "--seed", " -1"}).ok);      // whitespace-masked sign
  EXPECT_FALSE(Parse({"--scenario", "x", "--block-bytes", "1e19"}).ok);  // not plain int
  EXPECT_FALSE(Parse({"--scenario", "x", "--file-mb", "nan"}).ok);   // non-finite
  EXPECT_FALSE(Parse({"--scenario", "x", "--file-mb", "inf"}).ok);   // non-finite
  EXPECT_FALSE(Parse({"--scenario", "x", "--file-mb", "-3"}).ok);    // negative
  EXPECT_FALSE(Parse({"--scenario", "x", "--nodes"}).ok);            // missing value
  EXPECT_FALSE(Parse({}).ok);                                        // no mode at all

  // Large seeds must round-trip exactly (no float precision loss).
  const RunnerArgs big = Parse({"--scenario", "x", "--seed", "18446744073709551615"});
  ASSERT_TRUE(big.ok) << big.error;
  EXPECT_EQ(*big.options.seed, 18446744073709551615ull);
}

class RunnerMainTest : public ::testing::Test {
 protected:
  RunnerMainTest() {
    registry_.Register("tiny", "a tiny test scenario", [](const ScenarioOptions& opts) {
      ScenarioReport report("tiny");
      report.AddScalar("nodes", opts.nodes.value_or(-1));
      ScenarioResult result;
      result.name = "SystemX";
      result.completion_sec = {1.0, 2.0};
      result.completed = 2;
      result.receivers = 2;
      report.AddCompletion(result);
      return report;
    });
  }

  int Run(std::vector<const char*> argv) {
    argv.insert(argv.begin(), "bullet_run");
    return RunnerMain(static_cast<int>(argv.size()), argv.data(), registry_, out_, err_);
  }

  ScenarioRegistry registry_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(RunnerMainTest, ListPrintsRegisteredScenarios) {
  EXPECT_EQ(Run({"--list"}), 0);
  EXPECT_NE(out_.str().find("tiny\ta tiny test scenario"), std::string::npos);
}

TEST_F(RunnerMainTest, UnknownScenarioFails) {
  EXPECT_EQ(Run({"--scenario", "missing"}), 1);
  EXPECT_NE(err_.str().find("unknown scenario 'missing'"), std::string::npos);
}

TEST_F(RunnerMainTest, BadFlagFailsWithUsage) {
  EXPECT_EQ(Run({"--bogus"}), 2);
  EXPECT_NE(err_.str().find("unknown argument"), std::string::npos);
}

TEST_F(RunnerMainTest, RunWritesJson) {
  const std::string path = ::testing::TempDir() + "/bullet_runner_test.json";
  std::remove(path.c_str());
  EXPECT_EQ(Run({"--scenario", "tiny", "--nodes", "20", "--out", path.c_str(), "--quiet"}), 0);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  const std::string json = content.str();
  EXPECT_NE(json.find("\"schema\":\"bullet-bench-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\":\"tiny\""), std::string::npos);
  EXPECT_NE(json.find("\"requested_options\":{\"nodes\":20}"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"SystemX\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\":[1,2]"), std::string::npos);
  std::remove(path.c_str());
}

TEST(WriteReportJsonTest, EscapesAndNonFinite) {
  ScenarioReport report("esc");
  report.AddScalar("inf", std::numeric_limits<double>::infinity());
  report.AddSeries("quote\"name", {1.5});

  std::ostringstream os;
  WriteReportJson(os, report, ScenarioOptions{});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"inf\":null"), std::string::npos);
  EXPECT_NE(json.find("quote\\\"name"), std::string::npos);
}

}  // namespace
}  // namespace bullet
