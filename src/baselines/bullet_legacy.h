// Bullet (Kostic et al., SOSP'03) baseline — the paper's own predecessor system.
//
// Differences from Bullet' that this implementation preserves (Sections 2-3 of the
// 2005 paper discuss each): data is *pushed down the overlay tree* in disjoint
// subsets (each node forwards an incoming block to one tree child, round-robin,
// skipping children whose pipe is full), and receivers recover the rest from a mesh
// of peers discovered via RanSub. The released Bullet uses a fixed peer set of 10
// senders, a fixed outstanding window of 5 blocks per peer, epoch-driven (not
// self-clocking) availability summaries, and a source-encoded stream: nodes complete
// once they hold (1+eps)n distinct blocks (the experiments charge the same 4%
// overhead the paper assumes, Section 4.2).
//
// Wire messages are shared with Bullet' (src/core/messages.h): both systems descend
// from the same codebase in the paper (MACEDON), and the message vocabulary —
// peering, diffs, block requests, blocks — is identical; only the policies differ.

#ifndef SRC_BASELINES_BULLET_LEGACY_H_
#define SRC_BASELINES_BULLET_LEGACY_H_

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/core/messages.h"
#include "src/core/request_strategy.h"
#include "src/overlay/tree_overlay.h"

namespace bullet {

struct BulletLegacyConfig {
  int num_senders = 10;       // fixed peer set (Section 3.3.1: "the released Bullet")
  int max_receivers = 14;
  int outstanding = 5;        // fixed per-peer window
  RequestStrategy request_strategy = RequestStrategy::kFirstEncountered;
  SimTime summary_period = SecToSim(5.0);  // periodic availability diffs
  int forward_queue_blocks = 3;            // per-child push queue cap
  SimTime source_push_retry = MsToSim(20);
};

class BulletLegacy : public TreeOverlayProtocol {
 public:
  BulletLegacy(const Context& ctx, const FileParams& file, NodeId source, const ControlTree* tree,
               const BulletLegacyConfig& config);

  void Start() override;
  int num_senders() const { return static_cast<int>(senders_.size()); }

 protected:
  void OnProtocolMessage(ConnId conn, NodeId from, std::unique_ptr<Message> msg) override;
  void OnPeerConnUp(ConnId conn, NodeId peer, bool initiator) override;
  void OnPeerConnDown(ConnId conn, NodeId peer) override;
  void OnRanSubEpoch(const std::vector<PeerSummary>& subset) override;
  PeerSummary MakeSummary() override;

 private:
  struct Sender {
    NodeId node = -1;
    ConnId conn = -1;
    bool active = false;
    Bitmap has;
    CandidateSet candidates;
    int outstanding = 0;
    int64_t epoch_bytes = 0;
    SimTime connected_at = 0;
  };
  struct Receiver {
    NodeId node = -1;
    ConnId conn = -1;
    Bitmap told;
  };

  void SourcePushTick();
  void ForwardPushed(uint32_t id);
  void ConnectToSender(NodeId node);
  void IssueRequests(Sender& s);
  void SendDiff(Receiver& r);
  void PeriodicSummaries();

  BulletLegacyConfig config_;
  std::map<ConnId, Sender> senders_;
  std::set<NodeId> sender_nodes_;
  std::unordered_map<uint32_t, ConnId> requested_;
  std::map<ConnId, Receiver> receivers_;

  uint32_t next_push_block_ = 0;
  size_t next_push_child_ = 0;
  size_t next_forward_child_ = 0;
};

// Registers "bullet" (the released Bullet) in ProtocolRegistry::Global().
// Idempotent.
void RegisterBulletLegacyProtocol();

}  // namespace bullet

#endif  // SRC_BASELINES_BULLET_LEGACY_H_
