// The rsync weak rolling checksum (Tridgell's thesis [27], chapter 3): a 32-bit
// Adler-style sum s(k,l) = a + 2^16 b that can slide one byte in O(1). Shotgun's
// delta computation uses it to find old-file blocks anywhere in the new file.

#ifndef SRC_RSYNCX_ROLLING_CHECKSUM_H_
#define SRC_RSYNCX_ROLLING_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace bullet {

class RollingChecksum {
 public:
  // Initializes over data[0, len).
  void Init(const uint8_t* data, size_t len);
  // Slides the window one byte: removes `out` (the oldest byte), appends `in`.
  void Roll(uint8_t out, uint8_t in);

  uint32_t value() const { return (b_ << 16) | (a_ & 0xffff); }
  size_t window() const { return len_; }

  // One-shot convenience.
  static uint32_t Compute(const uint8_t* data, size_t len);

 private:
  uint32_t a_ = 0;
  uint32_t b_ = 0;
  size_t len_ = 0;
};

}  // namespace bullet

#endif  // SRC_RSYNCX_ROLLING_CHECKSUM_H_
