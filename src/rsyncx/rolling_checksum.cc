#include "src/rsyncx/rolling_checksum.h"

namespace bullet {

void RollingChecksum::Init(const uint8_t* data, size_t len) {
  a_ = 0;
  b_ = 0;
  len_ = len;
  for (size_t i = 0; i < len; ++i) {
    a_ += data[i];
    b_ += static_cast<uint32_t>(len - i) * data[i];
  }
  a_ &= 0xffff;
  b_ &= 0xffff;
}

void RollingChecksum::Roll(uint8_t out, uint8_t in) {
  a_ = (a_ - out + in) & 0xffff;
  b_ = (b_ - static_cast<uint32_t>(len_) * out + a_) & 0xffff;
}

uint32_t RollingChecksum::Compute(const uint8_t* data, size_t len) {
  RollingChecksum rc;
  rc.Init(data, len);
  return rc.value();
}

}  // namespace bullet
