#include "src/overlay/ransub.h"

#include <algorithm>
#include <cmath>

namespace bullet {

namespace {

constexpr int64_t kMsgHeaderBytes = 16;

struct Candidate {
  PeerSummary summary;
  float weight = 1.0f;
  double key = 0.0;  // A-Res sampling key
};

}  // namespace

RanSubAgent::RanSubAgent(const ControlTree* tree, NodeId self, Config config, Rng rng,
                         std::function<PeerSummary()> summarize,
                         std::function<void(const std::vector<PeerSummary>&)> on_distribute,
                         std::function<void(NodeId, std::unique_ptr<Message>)> send_to_peer,
                         EventQueue* queue)
    : tree_(tree),
      self_(self),
      config_(config),
      rng_(std::move(rng)),
      summarize_(std::move(summarize)),
      on_distribute_(std::move(on_distribute)),
      send_(std::move(send_to_peer)),
      queue_(queue) {
  child_pools_.resize(tree_->children[static_cast<size_t>(self_)].size());
}

void RanSubAgent::Start() {
  if (tree_->IsRoot(self_)) {
    // First epoch after one period, so nodes have joined and sent initial collects.
    queue_->ScheduleAfter(config_.epoch_period, [this] { RootEpoch(); });
  } else {
    // Seed the pipeline: send an initial collect so ancestors learn about us before
    // the first distribute arrives.
    auto collect = std::make_unique<RanSubCollectMsg>(BuildCollect());
    send_(tree_->parent[static_cast<size_t>(self_)], std::move(collect));
  }
}

bool RanSubAgent::HandleMessage(NodeId from, Message& msg) {
  if (msg.type == RanSubDistributeMsg::kType) {
    OnDistribute(static_cast<RanSubDistributeMsg&>(msg));
    return true;
  }
  if (msg.type == RanSubCollectMsg::kType) {
    OnCollect(from, static_cast<RanSubCollectMsg&>(msg));
    return true;
  }
  return false;
}

void RanSubAgent::RootEpoch() {
  ++epoch_;
  std::vector<const RanSubCollectMsg*> pools;
  for (const auto& p : child_pools_) {
    if (p != nullptr) {
      pools.push_back(p.get());
    }
  }
  const PeerSummary mine = summarize_();
  const std::vector<PeerSummary> self_extra = {mine};
  const std::vector<float> self_weight = {1.0f};

  // The root's own subset.
  std::vector<PeerSummary> my_subset =
      SampleFrom(pools, self_extra, self_weight, config_.subset_size, self_);
  ++epochs_seen_;
  on_distribute_(my_subset);

  SendSubsetsToChildren({}, epoch_);
  queue_->ScheduleAfter(config_.epoch_period, [this] { RootEpoch(); });
}

void RanSubAgent::OnDistribute(const RanSubDistributeMsg& msg) {
  epoch_ = msg.epoch;
  ++epochs_seen_;
  on_distribute_(msg.subset);
  SendSubsetsToChildren(msg.subset, msg.epoch);
  // Pipelined collect: push our current pool up so the root has it for next epoch.
  if (!tree_->IsRoot(self_)) {
    auto collect = std::make_unique<RanSubCollectMsg>(BuildCollect());
    collect->epoch = msg.epoch;
    send_(tree_->parent[static_cast<size_t>(self_)], std::move(collect));
  }
}

void RanSubAgent::OnCollect(NodeId from, RanSubCollectMsg& msg) {
  const auto& kids = tree_->children[static_cast<size_t>(self_)];
  for (size_t i = 0; i < kids.size(); ++i) {
    if (kids[i] == from) {
      auto copy = std::make_unique<RanSubCollectMsg>();
      copy->epoch = msg.epoch;
      copy->pool = msg.pool;
      copy->weights = msg.weights;
      child_pools_[i] = std::move(copy);
      return;
    }
  }
}

std::vector<PeerSummary> RanSubAgent::SampleFrom(const std::vector<const RanSubCollectMsg*>& pools,
                                                 const std::vector<PeerSummary>& extra,
                                                 const std::vector<float>& extra_weights, size_t k,
                                                 NodeId exclude) {
  std::vector<Candidate> candidates;
  auto add = [&](const PeerSummary& s, float w) {
    if (s.node == exclude || w <= 0.0f) {
      return;
    }
    Candidate c;
    c.summary = s;
    c.weight = w;
    // Efraimidis-Spirakis A-Res: top-k by u^(1/w), i.e. max of log(u)/w.
    double u = rng_.UniformDouble();
    if (u <= 0.0) {
      u = 1e-300;
    }
    c.key = std::log(u) / static_cast<double>(w);
    candidates.push_back(c);
  };
  for (const auto* pool : pools) {
    for (size_t i = 0; i < pool->pool.size(); ++i) {
      add(pool->pool[i], i < pool->weights.size() ? pool->weights[i] : 1.0f);
    }
  }
  for (size_t i = 0; i < extra.size(); ++i) {
    add(extra[i], i < extra_weights.size() ? extra_weights[i] : 1.0f);
  }
  // Dedup by node id, keeping the best key.
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    if (a.summary.node != b.summary.node) {
      return a.summary.node < b.summary.node;
    }
    return a.key > b.key;
  });
  candidates.erase(std::unique(candidates.begin(), candidates.end(),
                               [](const Candidate& a, const Candidate& b) {
                                 return a.summary.node == b.summary.node;
                               }),
                   candidates.end());
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.key > b.key; });
  if (candidates.size() > k) {
    candidates.resize(k);
  }
  std::vector<PeerSummary> out;
  out.reserve(candidates.size());
  for (const auto& c : candidates) {
    out.push_back(c.summary);
  }
  return out;
}

RanSubCollectMsg RanSubAgent::BuildCollect() {
  RanSubCollectMsg msg;
  msg.type = RanSubCollectMsg::kType;
  msg.epoch = epoch_;

  std::vector<Candidate> candidates;
  const PeerSummary mine = summarize_();
  {
    Candidate c;
    c.summary = mine;
    c.weight = 1.0f;
    double u = rng_.UniformDouble();
    if (u <= 0.0) {
      u = 1e-300;
    }
    c.key = std::log(u);
    candidates.push_back(c);
  }
  double total_weight = 1.0;
  for (const auto& pool : child_pools_) {
    if (pool == nullptr) {
      continue;
    }
    for (size_t i = 0; i < pool->pool.size(); ++i) {
      Candidate c;
      c.summary = pool->pool[i];
      c.weight = i < pool->weights.size() ? pool->weights[i] : 1.0f;
      total_weight += c.weight;
      double u = rng_.UniformDouble();
      if (u <= 0.0) {
        u = 1e-300;
      }
      c.key = std::log(u) / static_cast<double>(c.weight);
      candidates.push_back(c);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.key > b.key; });
  if (candidates.size() > config_.pool_size) {
    candidates.resize(config_.pool_size);
  }
  // Rescale weights so the pool still represents the whole subtree.
  double kept_weight = 0.0;
  for (const auto& c : candidates) {
    kept_weight += c.weight;
  }
  const double scale = kept_weight > 0.0 ? total_weight / kept_weight : 1.0;
  for (const auto& c : candidates) {
    msg.pool.push_back(c.summary);
    msg.weights.push_back(static_cast<float>(c.weight * scale));
  }
  msg.wire_bytes =
      kMsgHeaderBytes + static_cast<int64_t>(msg.pool.size()) * (PeerSummary::kWireBytes + 4);
  return msg;
}

void RanSubAgent::SendSubsetsToChildren(const std::vector<PeerSummary>& parent_subset, int epoch) {
  const auto& kids = tree_->children[static_cast<size_t>(self_)];
  if (kids.empty()) {
    return;
  }
  const int total_nodes = tree_->num_nodes();
  const int my_subtree = tree_->subtree_size[static_cast<size_t>(self_)];
  // Entries from the parent represent everything outside our subtree.
  float parent_weight = 1.0f;
  if (!parent_subset.empty()) {
    parent_weight = std::max(
        1.0f, static_cast<float>(total_nodes - my_subtree) / static_cast<float>(parent_subset.size()));
  }
  const PeerSummary mine = summarize_();

  for (size_t ci = 0; ci < kids.size(); ++ci) {
    std::vector<const RanSubCollectMsg*> pools;
    for (size_t cj = 0; cj < child_pools_.size(); ++cj) {
      if (child_pools_[cj] != nullptr) {
        pools.push_back(child_pools_[cj].get());
      }
    }
    std::vector<PeerSummary> extra = parent_subset;
    std::vector<float> extra_weights(parent_subset.size(), parent_weight);
    extra.push_back(mine);
    extra_weights.push_back(1.0f);

    auto msg = std::make_unique<RanSubDistributeMsg>();
    msg->type = RanSubDistributeMsg::kType;
    msg->epoch = epoch;
    msg->subset = SampleFrom(pools, extra, extra_weights, config_.subset_size, kids[ci]);
    msg->wire_bytes =
        kMsgHeaderBytes + static_cast<int64_t>(msg->subset.size()) * PeerSummary::kWireBytes;
    send_(kids[ci], std::move(msg));
  }
}

}  // namespace bullet
