#include "src/codec/degree_distribution.h"

#include <algorithm>
#include <cmath>

namespace bullet {

RobustSoliton::RobustSoliton(uint32_t num_blocks, double c, double delta) {
  const double n = static_cast<double>(num_blocks);
  // Ideal soliton: rho(1) = 1/n, rho(d) = 1/(d(d-1)).
  std::vector<double> mass(num_blocks + 1, 0.0);
  mass[1] = 1.0 / n;
  for (uint32_t d = 2; d <= num_blocks; ++d) {
    mass[d] = 1.0 / (static_cast<double>(d) * (d - 1.0));
  }
  // Robust correction tau: extra mass below the spike at n/R, a spike at n/R.
  const double r = c * std::log(n / delta) * std::sqrt(n);
  const uint32_t spike = std::max<uint32_t>(
      1, std::min<uint32_t>(num_blocks, static_cast<uint32_t>(std::round(n / std::max(r, 1.0)))));
  for (uint32_t d = 1; d < spike; ++d) {
    mass[d] += r / (static_cast<double>(d) * n);
  }
  mass[spike] += r * std::log(std::max(r / delta, 1.0 + 1e-9)) / n;

  double total = 0.0;
  for (uint32_t d = 1; d <= num_blocks; ++d) {
    total += mass[d];
  }
  cdf_.resize(num_blocks);
  double acc = 0.0;
  for (uint32_t d = 1; d <= num_blocks; ++d) {
    acc += mass[d] / total;
    cdf_[d - 1] = acc;
    expected_degree_ += static_cast<double>(d) * mass[d] / total;
  }
  cdf_.back() = 1.0;
}

uint32_t RobustSoliton::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint32_t>(std::distance(cdf_.begin(), it)) + 1;
}

double RobustSoliton::pmf(uint32_t degree) const {
  if (degree == 0 || degree > cdf_.size()) {
    return 0.0;
  }
  if (degree == 1) {
    return cdf_[0];
  }
  return cdf_[degree - 1] - cdf_[degree - 2];
}

}  // namespace bullet
