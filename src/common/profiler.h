// Per-phase profiling and always-on run counters for the perf flywheel.
//
// Two layers with different cost/availability trade-offs:
//
//  * RunCounters — always compiled in. Deterministic event/epoch/byte totals
//    the simulator publishes as it runs (plain integer increments, published
//    only from the thread that called Network::Run; the parallel engine
//    accumulates worker-side counts into its own per-partition tallies and
//    folds them in at superstep barriers, so worker threads never touch the
//    thread-local instance). The harness installs a fresh RunCounters per
//    scenario run through a thread-local pointer, so concurrent sweep workers
//    each observe only their own run. These counts depend solely on the seed
//    and configuration — never on wall time — which is what lets sweep
//    aggregates stay byte-identical across --jobs and lets CI gate normalized
//    throughput (count / wall) instead of raw wall clocks.
//
//  * PhaseProfiler — compiled in only with -DBULLET_PROFILE=ON (the
//    BULLET_PROFILE preprocessor flag). Per-phase {count, nanoseconds} totals
//    fed by the BULLET_PROFILE_SCOPE / BULLET_PROFILE_COUNT macros below; in
//    non-profiled builds the macros expand to nothing and the hot paths carry
//    zero overhead. Counts are deterministic (same contract as RunCounters);
//    the nanosecond totals are wall-clock measurements and are therefore only
//    surfaced where wall time is already allowed (per-run JSON, the --profile
//    summary), never in sweep aggregates.
//
// Determinism contract: profiling only *observes* the simulation. Timer reads
// (steady_clock) and counter increments never feed back into event ordering,
// RNG draws, or allocation arithmetic, so a profiled run produces bitwise
// identical BENCH metrics to an unprofiled run of the same seed — the
// determinism test layer asserts this.
//
// Nesting: phase timers are inclusive. kProtocolLogic runs inside a
// kEventDispatch scope (message delivery is an event), so the dispatch total
// includes protocol time; readers subtract when they want exclusive numbers.
//
// Thread-safety: PhaseProfiler totals are relaxed atomics, so one profiler may
// be shared across threads (the sweep engine instead installs one per worker
// run via the thread-local current pointer — cheaper and per-run attributable).
// Install/Swap of the thread-local pointers themselves are per-thread
// operations and must not race with the owning run.

#ifndef SRC_COMMON_PROFILER_H_
#define SRC_COMMON_PROFILER_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace bullet {

// Deterministic totals for one scenario run. The simulator adds to the
// installed instance (if any); the harness snapshots it after the run.
struct RunCounters {
  uint64_t events_executed = 0;   // event-queue callbacks fired
  uint64_t allocator_epochs = 0;  // max-min water-fill recomputations
  uint64_t sim_bytes_sent = 0;    // wire bytes transmitted (all nodes)

  // Thread-local current instance; nullptr outside an installed run.
  static RunCounters* Current();
  // Installs `c` (may be nullptr) and returns the previous instance.
  static RunCounters* Swap(RunCounters* c);
};

// RAII install/restore of the thread-local RunCounters.
class ScopedRunCounters {
 public:
  explicit ScopedRunCounters(RunCounters* c) : prev_(RunCounters::Swap(c)) {}
  ~ScopedRunCounters() { RunCounters::Swap(prev_); }
  ScopedRunCounters(const ScopedRunCounters&) = delete;
  ScopedRunCounters& operator=(const ScopedRunCounters&) = delete;

 private:
  RunCounters* prev_;
};

// The instrumented phases. Names (ProfilePhaseName) are the JSON keys of the
// `profile` block, so renaming one is a schema-visible change.
enum class ProfilePhase : int {
  kEventDispatch = 0,   // event-queue callback execution (timed per event)
  kEventSchedule,       // EventQueue::Schedule calls (count only)
  kAllocatorEpoch,      // flow-set rebuild + max-min water-fill (network tick)
  kWaterFill,           // the water-fill proper (inside kAllocatorEpoch)
  kProtocolLogic,       // NetHandler::OnMessage protocol processing
  kRequestStrategy,     // protocol request-issuing loops (core + baselines)
  kPathLookup,          // route/path-cache snapshots at Connect()
  kTopologyMetrics,     // PathDelay/Rtt/PathLoss composition at Connect()
  kBarrierWait,         // parallel engine: workers idle at superstep barriers
  kMerge,               // parallel engine: deterministic handoff-ring merge
  kCount,
};

constexpr int kProfilePhaseCount = static_cast<int>(ProfilePhase::kCount);
const char* ProfilePhaseName(ProfilePhase phase);

// Per-phase counter/timer accumulator. All mutation is relaxed-atomic.
class PhaseProfiler {
 public:
  // True in builds configured with -DBULLET_PROFILE=ON; lets tests branch on
  // whether the macros below are live without duplicating the preprocessor
  // condition.
  static constexpr bool kCompiledIn =
#ifdef BULLET_PROFILE
      true;
#else
      false;
#endif

  struct PhaseTotals {
    uint64_t count = 0;
    uint64_t ns = 0;
  };

  void AddCount(ProfilePhase phase, uint64_t n = 1) {
    slot(phase).count.fetch_add(n, std::memory_order_relaxed);
  }
  void AddTimed(ProfilePhase phase, uint64_t ns) {
    Slot& s = slot(phase);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.ns.fetch_add(ns, std::memory_order_relaxed);
  }

  PhaseTotals totals(ProfilePhase phase) const {
    const Slot& s = slots_[static_cast<size_t>(phase)];
    return PhaseTotals{s.count.load(std::memory_order_relaxed),
                       s.ns.load(std::memory_order_relaxed)};
  }

  void Reset();

  // Thread-local current instance; nullptr when no profiler is installed (the
  // macros then cost one thread-local load + branch per site).
  static PhaseProfiler* Current();
  static PhaseProfiler* Swap(PhaseProfiler* p);

 private:
  struct Slot {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> ns{0};
  };
  Slot& slot(ProfilePhase phase) { return slots_[static_cast<size_t>(phase)]; }

  Slot slots_[kProfilePhaseCount];
};

// A plain-value copy of a profiler's totals, safe to store and pass around
// after the profiler itself is gone (the sweep engine snapshots per run).
struct PhaseSnapshot {
  PhaseProfiler::PhaseTotals phases[kProfilePhaseCount] = {};

  // Sum of the deterministic per-phase counts; zero iff nothing was recorded
  // (non-profiled builds, or no profiler installed).
  uint64_t total_count() const {
    uint64_t n = 0;
    for (const PhaseProfiler::PhaseTotals& t : phases) {
      n += t.count;
    }
    return n;
  }
};

inline PhaseSnapshot SnapshotPhases(const PhaseProfiler& profiler) {
  PhaseSnapshot snap;
  for (int p = 0; p < kProfilePhaseCount; ++p) {
    snap.phases[p] = profiler.totals(static_cast<ProfilePhase>(p));
  }
  return snap;
}

// RAII install/restore of the thread-local PhaseProfiler.
class ScopedProfilerInstall {
 public:
  explicit ScopedProfilerInstall(PhaseProfiler* p) : prev_(PhaseProfiler::Swap(p)) {}
  ~ScopedProfilerInstall() { PhaseProfiler::Swap(prev_); }
  ScopedProfilerInstall(const ScopedProfilerInstall&) = delete;
  ScopedProfilerInstall& operator=(const ScopedProfilerInstall&) = delete;

 private:
  PhaseProfiler* prev_;
};

#ifdef BULLET_PROFILE

namespace profiler_internal {

// Times one scope into the installed profiler. The clock is read only when a
// profiler is installed, so uninstrumented runs of a profiled build pay a
// thread-local load + branch per scope and nothing else.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(ProfilePhase phase)
      : profiler_(PhaseProfiler::Current()), phase_(phase) {
    if (profiler_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedPhaseTimer() {
    if (profiler_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      profiler_->AddTimed(phase_, static_cast<uint64_t>(ns));
    }
  }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  PhaseProfiler* profiler_;
  ProfilePhase phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace profiler_internal

#define BULLET_PROFILE_CONCAT_INNER(a, b) a##b
#define BULLET_PROFILE_CONCAT(a, b) BULLET_PROFILE_CONCAT_INNER(a, b)
// Times the enclosing scope under `phase` (count + nanoseconds).
#define BULLET_PROFILE_SCOPE(phase)                                        \
  ::bullet::profiler_internal::ScopedPhaseTimer BULLET_PROFILE_CONCAT(     \
      bullet_profile_scope_, __LINE__)(phase)
// Bumps `phase`'s count without timing (for sites too cheap to clock).
#define BULLET_PROFILE_COUNT(phase)                                        \
  do {                                                                     \
    ::bullet::PhaseProfiler* bullet_profile_p = ::bullet::PhaseProfiler::Current(); \
    if (bullet_profile_p != nullptr) {                                     \
      bullet_profile_p->AddCount(phase);                                   \
    }                                                                      \
  } while (false)

#else  // !BULLET_PROFILE

#define BULLET_PROFILE_SCOPE(phase) \
  do {                              \
  } while (false)
#define BULLET_PROFILE_COUNT(phase) \
  do {                              \
  } while (false)

#endif  // BULLET_PROFILE

}  // namespace bullet

#endif  // SRC_COMMON_PROFILER_H_
