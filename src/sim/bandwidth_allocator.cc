#include "src/sim/bandwidth_allocator.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace bullet {

namespace {

struct HeapEntry {
  double share;
  int32_t link;
  uint32_t stamp;
  bool operator>(const HeapEntry& o) const { return share > o.share; }
};

}  // namespace

void AllocateMaxMin(std::vector<FlowSpec>& flows, const std::vector<double>& link_capacity_bps) {
  const size_t num_links = link_capacity_bps.size();
  std::vector<double> remaining(link_capacity_bps);
  std::vector<int32_t> nflows(num_links, 0);
  std::vector<uint32_t> stamp(num_links, 0);

  std::vector<std::vector<uint32_t>> link_flows(num_links);
  for (size_t i = 0; i < flows.size(); ++i) {
    flows[i].rate_bps = 0.0;
    for (int32_t l : flows[i].links) {
      if (l >= 0) {
        ++nflows[static_cast<size_t>(l)];
        link_flows[static_cast<size_t>(l)].push_back(static_cast<uint32_t>(i));
      }
    }
  }

  // Flow indices ordered by ascending cap, so cap-limited flows freeze cheaply.
  std::vector<size_t> by_cap(flows.size());
  for (size_t i = 0; i < flows.size(); ++i) {
    by_cap[i] = i;
  }
  std::sort(by_cap.begin(), by_cap.end(),
            [&](size_t a, size_t b) { return flows[a].cap_bps < flows[b].cap_bps; });
  size_t cap_cursor = 0;

  std::vector<char> frozen(flows.size(), 0);
  size_t frozen_count = 0;

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>> heap;
  auto push_link = [&](int32_t l) {
    const size_t li = static_cast<size_t>(l);
    if (nflows[li] > 0) {
      heap.push(HeapEntry{remaining[li] / nflows[li], l, stamp[li]});
    }
  };
  for (size_t l = 0; l < num_links; ++l) {
    push_link(static_cast<int32_t>(l));
  }

  // Freeze one flow at `rate`, removing its demand from its links.
  auto freeze = [&](size_t fi, double rate) {
    FlowSpec& f = flows[fi];
    f.rate_bps = std::max(rate, 0.0);
    frozen[fi] = 1;
    ++frozen_count;
    for (int32_t l : f.links) {
      if (l < 0) {
        continue;
      }
      const size_t li = static_cast<size_t>(l);
      remaining[li] = std::max(0.0, remaining[li] - f.rate_bps);
      --nflows[li];
      ++stamp[li];
      push_link(l);
    }
  };

  // Flows that traverse no links are bounded only by their cap.
  for (size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].links[0] < 0 && flows[i].links[1] < 0 && flows[i].links[2] < 0 && !frozen[i]) {
      frozen[i] = 1;
      ++frozen_count;
      flows[i].rate_bps = flows[i].cap_bps;
    }
  }

  while (frozen_count < flows.size()) {
    // Find the currently most constrained link (skip stale heap entries).
    double min_share = -1.0;
    int32_t min_link = -1;
    while (!heap.empty()) {
      const HeapEntry top = heap.top();
      const size_t li = static_cast<size_t>(top.link);
      if (top.stamp != stamp[li] || nflows[li] <= 0) {
        heap.pop();
        continue;
      }
      min_share = top.share;
      min_link = top.link;
      break;
    }
    if (min_link < 0) {
      // No constrained link remains; all unfrozen flows get their caps.
      for (size_t i = 0; i < flows.size(); ++i) {
        if (!frozen[i]) {
          frozen[i] = 1;
          ++frozen_count;
          flows[i].rate_bps = flows[i].cap_bps;
        }
      }
      break;
    }

    // First freeze any flow whose cap is at or below the water level: it cannot use
    // a full fair share anywhere (min_share is the global minimum share).
    bool froze_capped = false;
    while (cap_cursor < by_cap.size()) {
      const size_t fi = by_cap[cap_cursor];
      if (frozen[fi]) {
        ++cap_cursor;
        continue;
      }
      if (flows[fi].cap_bps <= min_share) {
        freeze(fi, flows[fi].cap_bps);
        ++cap_cursor;
        froze_capped = true;
      } else {
        break;
      }
    }
    if (froze_capped) {
      continue;  // Water level may have risen; recompute.
    }

    // Saturate the bottleneck link: freeze all its unfrozen flows at the fair share.
    const size_t li = static_cast<size_t>(min_link);
    for (uint32_t fi : link_flows[li]) {
      if (!frozen[fi]) {
        freeze(fi, min_share);
      }
    }
    ++stamp[li];  // Invalidate stale entries for the saturated link.
  }
}

}  // namespace bullet
