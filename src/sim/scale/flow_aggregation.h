// Aggregated max-min water-filling for the mega-swarm regime.
//
// The exact allocator water-fills every flow individually, so an epoch costs
// O(F log F) with F = live flows — at 100k members with tens of peers each,
// the interior water-fill dominates the tick. FlowAggregator trades exactness
// for scale with a two-level allocation:
//
//   1. Per-flow member caps. Access links (a node's uplink/downlink) are
//      private to that node, so their max-min behaviour is predictable: each
//      of the k busy flows on an access link gets at most capacity/k. A flow's
//      member cap is min(tcp cap, up_cap/k_up, down_cap/k_down).
//   2. Bundles. Flows whose routes traverse the *identical* interior link
//      sequence are grouped into one bundle with cap = sum of member caps.
//      Bundles — not flows — are water-filled over the interior links (an
//      IncrementalMaxMin epoch with B bundles instead of F flows; on a
//      transit-stub topology B is bounded by ordered router pairs, not pairs
//      of nodes), and each bundle's rate is split back to members by a
//      bounded water-fill that distributes exactly the bundle rate subject to
//      the member caps.
//
// Invariants (flow_aggregation_test pins these):
//   * conservation — member rates of a bundle sum to the bundle rate (the
//     split subtracts each grant from one running remainder, so the sum
//     telescopes; the last member absorbs the exact residue);
//   * feasibility — per interior link, bundle rates are a max-min allocation
//     of the link capacities, and member sums equal bundle rates, so no
//     interior link is oversubscribed; each access link's flows sum to at
//     most capacity (every member cap is at most capacity/k);
//   * determinism — bundles form in first-use flow order, members split in
//     ascending (member cap, flow index) order; same epoch, same bits.
//
// This mode is *not* bit-identical to the exact allocator: flows inside a
// bundle no longer compete individually at the interior bottleneck, and the
// member-cap bound treats access links as locally fair rather than globally
// water-filled. It is opt-in via NetworkConfig::aggregate_flows; the default
// path never constructs this class and stays byte-identical.

#ifndef SRC_SIM_SCALE_FLOW_AGGREGATION_H_
#define SRC_SIM_SCALE_FLOW_AGGREGATION_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sim/bandwidth_allocator.h"

namespace bullet {

class FlowAggregator {
 public:
  // Computes per-flow rates from `epoch`'s registered inputs (between the last
  // AddFlow* and Allocate(); this replaces epoch.Allocate()). Links with id <
  // `num_access_links` are access links (the network's uplink/downlink block);
  // the rest are the epoch's dense interior ids. Results are readable via
  // rates() until the next call.
  void Allocate(const IncrementalMaxMin& epoch, size_t num_access_links);

  const std::vector<double>& rates() const { return rates_; }

  // Introspection for the shared-bottleneck telemetry and tests.
  int32_t max_interior_link_flows() const { return max_interior_link_flows_; }
  size_t num_bundles() const { return bundles_.size(); }
  // Bundle index of flow i in the last Allocate (-1: empty interior path, the
  // flow was granted its member cap directly).
  int32_t bundle_of_flow(size_t flow) const { return flow_bundle_[flow]; }
  double bundle_rate(size_t bundle) const { return bundles_[bundle].rate; }

 private:
  struct Bundle {
    uint32_t slice_off = 0;  // exemplar interior slice in slice_pool_
    uint32_t slice_len = 0;
    double cap_sum = 0.0;
    double rate = 0.0;
    int32_t members = 0;
  };

  IncrementalMaxMin bundle_alloc_;
  std::vector<double> rates_;

  std::vector<Bundle> bundles_;
  std::vector<int32_t> flow_bundle_;  // per flow: bundle index or -1
  std::vector<double> member_cap_;    // per flow: w_i
  std::vector<int32_t> access_count_; // per access link: busy flows
  std::vector<int32_t> slice_pool_;   // exemplar interior slices, bundle order
  std::vector<int32_t> remap_scratch_;
  std::unordered_map<uint64_t, std::vector<int32_t>> bundle_index_;  // hash -> bundles
  // Per-bundle member lists, grouped after bundling: (member cap, flow index)
  // sorted ascending for the deterministic bounded split.
  std::vector<uint32_t> bundle_off_;
  std::vector<uint32_t> cursor_;
  std::vector<std::pair<double, uint32_t>> bundle_members_;
  int32_t max_interior_link_flows_ = 0;
};

}  // namespace bullet

#endif  // SRC_SIM_SCALE_FLOW_AGGREGATION_H_
