// Max-min fair bandwidth allocation with per-flow rate caps.
//
// Each active flow traverses up to three links (sender uplink, core link, receiver
// downlink) and may additionally be capped by its TCP model. Progressive filling
// computes the unique max-min allocation: repeatedly find the most constrained link,
// freeze its flows at the fair share, and redistribute. Flows whose cap is below the
// current water level are frozen at their cap first.
//
// The allocator is stateless; the network rebuilds the flow set each rate quantum.

#ifndef SRC_SIM_BANDWIDTH_ALLOCATOR_H_
#define SRC_SIM_BANDWIDTH_ALLOCATOR_H_

#include <cstdint>
#include <vector>

namespace bullet {

struct FlowSpec {
  // Link indices into the capacity vector; -1 means unused slot.
  int32_t links[3] = {-1, -1, -1};
  // Per-flow rate cap in bits/second (TCP model); use a large value for "unlimited".
  double cap_bps = 0.0;
  // Output: allocated rate in bits/second.
  double rate_bps = 0.0;
};

// Computes the allocation in place. `link_capacity_bps[i]` is the capacity of link i.
// Runs in O(F log F + saturation events * log L).
void AllocateMaxMin(std::vector<FlowSpec>& flows, const std::vector<double>& link_capacity_bps);

}  // namespace bullet

#endif  // SRC_SIM_BANDWIDTH_ALLOCATOR_H_
