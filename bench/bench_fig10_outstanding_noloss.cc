// Fig. 10: per-peer outstanding-request windows (3/6/9/15/50 fixed vs dynamic) with
// neither bandwidth changes nor losses: 25 participants on uniform 10 Mbps / 100 ms
// links, 8 KB blocks.
//
// Expected shape (paper): small fixed windows cannot fill the 10 Mbps * 200 ms RTT
// bandwidth-delay product (~31 blocks of 8 KB in flight across the request loop);
// the dynamic controller tracks the large-window configurations.

#include "src/harness/scenario_registry.h"
#include "bench/outstanding_common.h"

namespace bullet {
namespace {

BULLET_SCENARIO(fig10_outstanding_noloss, "Fig. 10 — outstanding windows, no losses") {
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kUniform;
  cfg.num_nodes = 25;
  cfg.file_mb = ScaledFileMb(100.0);
  cfg.block_bytes = 8 * 1024;
  cfg.uniform_bps = 10e6;
  cfg.uniform_delay = MsToSim(100);
  cfg.loss_max = 0.0;
  cfg.seed = 1001;
  ApplyScenarioOptions(opts, &cfg);

  ScenarioReport report(kScenarioName);
  bench::RunOutstandingSweep(cfg, {50, 0, 15, 9, 6, 3}, &report);
  return report;
}

}  // namespace
}  // namespace bullet
