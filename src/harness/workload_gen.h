// Generator-driven dynamic workloads.
//
// The paper's claim is about behaviour *under dynamic network conditions*, but
// a WorkloadSpec written by hand can only describe one static membership. The
// generators here describe the processes that produce memberships and their
// dynamics — who arrives when (ArrivalProcess), how long they stay
// (LifetimeModel), what their access links look like (AccessLinkDistribution) —
// and churn.h adds ChurnModel for failure schedules. Each generator is a small
// immutable value: deterministic given the Rng stream it is handed (the harness
// derives one per generator from the session/workload seed with SplitMix64-style
// salts), so the same spec and seed always produce the same schedule.
//
// A SessionSpec carries `arrivals` and `lifetimes`; a WorkloadSpec carries
// `access_links` and `churn` (session.h holds them as shared_ptr-to-const).
// WorkloadExperiment expands arrivals into join_offsets, schedules lifetime
// departures on the event queue (routed through Network::FailNode and the
// session's completion policy, so a session whose stragglers left still
// terminates), and RunScenarioWorkload applies access-link cohorts to the
// topology before the network is built.

#ifndef SRC_HARNESS_WORKLOAD_GEN_H_
#define SRC_HARNESS_WORKLOAD_GEN_H_

#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/time.h"
#include "src/sim/topology.h"

namespace bullet {

// --- arrivals ---

// Produces the join offsets (relative to the session start) for a session's
// receivers; the harness keeps the source at offset zero. Offsets are returned
// in member order and must be non-negative. Deterministic in `rng`'s stream.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  virtual std::vector<SimTime> Offsets(size_t receivers, Rng& rng) const = 0;
};

// Every receiver joins at the same fixed offset (0 = the legacy everyone-at-t0
// shape, expressed as a generator).
class FixedOffsetArrivals final : public ArrivalProcess {
 public:
  explicit FixedOffsetArrivals(SimTime offset = 0);
  std::vector<SimTime> Offsets(size_t receivers, Rng& rng) const override;

 private:
  SimTime offset_;
};

// The fig18 flash-crowd shape: a `late_fraction` of receivers (chosen uniformly
// at random) joins at `late_offset`, the rest at zero.
class FlashCrowdArrivals final : public ArrivalProcess {
 public:
  FlashCrowdArrivals(double late_fraction, SimTime late_offset);
  std::vector<SimTime> Offsets(size_t receivers, Rng& rng) const override;

 private:
  double late_fraction_;
  SimTime late_offset_;
};

// Inhomogeneous-Poisson arrivals under the diurnal rate curve
//   lambda(t) = base_rate_per_sec * (1 + amplitude * sin(2*pi*t/period + phase))
// drawn by thinning against the peak rate, so the process is exact for any
// horizon (multi-hour periods included). The first `receivers` arrival times
// become the offsets, assigned to members in arrival (= member) order.
class DiurnalArrivals final : public ArrivalProcess {
 public:
  // amplitude in [0, 1]; period > 0; base_rate_per_sec > 0.
  DiurnalArrivals(double base_rate_per_sec, double amplitude, SimTime period, double phase = 0.0);
  std::vector<SimTime> Offsets(size_t receivers, Rng& rng) const override;

  double base_rate_per_sec() const { return base_rate_per_sec_; }

 private:
  double base_rate_per_sec_;
  double amplitude_;
  SimTime period_;
  double phase_;
};

// --- lifetimes ---

// Draws how long each receiver stays after joining. A negative draw means the
// member never departs on its own. Models may additionally declare that
// completed receivers depart (stop seeding) `post_completion_linger()` after
// finishing — the "seeder departs" regime; the source never departs.
class LifetimeModel {
 public:
  virtual ~LifetimeModel() = default;
  // One draw per receiver, in member order; `member_index` is the receiver's
  // slot in the normalized member list. Draws must be positive or negative
  // (infinite) — a zero lifetime would depart a member at its join instant.
  virtual SimTime Draw(size_t member_index, Rng& rng) const = 0;
  virtual bool departs_after_completion() const { return false; }
  virtual SimTime post_completion_linger() const { return 0; }
};

// Members stay forever (the legacy behaviour, expressed as a generator).
class InfiniteLifetime final : public LifetimeModel {
 public:
  SimTime Draw(size_t member_index, Rng& rng) const override;
};

// Heavy-tailed Pareto lifetimes: P(L > t) = (xm/t)^alpha for t >= xm. Small
// alpha means a heavy tail (alpha <= 1 has infinite mean); xm is the minimum
// stay. Optionally also departs completed receivers after `linger` (seeders
// leave once done, plus lifetime truncation for those who never finish).
class ParetoLifetime final : public LifetimeModel {
 public:
  ParetoLifetime(double alpha, SimTime xm, bool depart_after_completion = false,
                 SimTime linger = 0);
  SimTime Draw(size_t member_index, Rng& rng) const override;
  bool departs_after_completion() const override { return depart_after_completion_; }
  SimTime post_completion_linger() const override { return linger_; }

  double alpha() const { return alpha_; }

 private:
  double alpha_;
  SimTime xm_;
  bool depart_after_completion_;
  SimTime linger_;
};

// Infinite lifetime until completion, then depart after `linger`: the pure
// "seeder departs after completing" policy.
class SeederDepartureLifetime final : public LifetimeModel {
 public:
  explicit SeederDepartureLifetime(SimTime linger = 0);
  SimTime Draw(size_t member_index, Rng& rng) const override;
  bool departs_after_completion() const override { return true; }
  SimTime post_completion_linger() const override { return linger_; }

 private:
  SimTime linger_;
};

// --- access links ---

// Mutates per-node access-link parameters on a freshly built topology (before
// the network snapshots anything). Deterministic in `rng`'s stream.
class AccessLinkDistribution {
 public:
  virtual ~AccessLinkDistribution() = default;
  virtual void Apply(Topology& topology, Rng& rng) const = 0;
};

// Every node gets symmetric `bps` access links.
class UniformAccessLinks final : public AccessLinkDistribution {
 public:
  explicit UniformAccessLinks(double bps);
  void Apply(Topology& topology, Rng& rng) const override;

 private:
  double bps_;
};

// A DSL-like cohort: `fraction` of the nodes (chosen uniformly, never node 0 —
// a throttled source would turn every run into a source-uplink benchmark) get
// asymmetric down >> up access links; the rest keep the topology's defaults.
class DslAccessLinks final : public AccessLinkDistribution {
 public:
  DslAccessLinks(double fraction, double down_bps, double up_bps);
  void Apply(Topology& topology, Rng& rng) const override;

 private:
  double fraction_;
  double down_bps_;
  double up_bps_;
};

}  // namespace bullet

#endif  // SRC_HARNESS_WORKLOAD_GEN_H_
