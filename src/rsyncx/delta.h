// The rsync algorithm: block signatures, delta computation against a signature, and
// patch application. This is a real implementation operating on bytes — Shotgun
// (Section 4.8) wraps it, and the Fig. 15 bench charges its actual delta sizes to the
// emulated network.
//
// Roles mirror rsync's batch mode as Shotgun uses it: the *source* holds both the old
// and new trees, computes per-file deltas once (signature of old, delta of new
// against it), bundles them, and multicasts the bundle; receivers patch their local
// old copies.

#ifndef SRC_RSYNCX_DELTA_H_
#define SRC_RSYNCX_DELTA_H_

#include <cstdint>
#include <vector>

#include "src/common/hash.h"

namespace bullet {

using Bytes = std::vector<uint8_t>;

struct BlockSignature {
  uint32_t weak = 0;      // rolling checksum
  Digest128 strong;       // collision check
};

struct FileSignature {
  size_t block_size = 0;
  uint64_t file_size = 0;
  std::vector<BlockSignature> blocks;

  int64_t WireBytes() const {
    return 16 + static_cast<int64_t>(blocks.size()) * 20;
  }
};

FileSignature ComputeSignature(const Bytes& data, size_t block_size);

// A delta is a sequence of copy-from-old / literal commands.
struct DeltaCommand {
  enum class Kind { kCopy, kLiteral };
  Kind kind = Kind::kLiteral;
  // kCopy: copy `count` consecutive old blocks starting at `block_index` (the final
  // block may be short).
  uint32_t block_index = 0;
  uint32_t count = 0;
  // kLiteral: raw bytes.
  Bytes literal;
};

struct FileDelta {
  size_t block_size = 0;
  uint64_t new_size = 0;
  std::vector<DeltaCommand> commands;

  int64_t LiteralBytes() const;
  // Wire size: command headers plus literals.
  int64_t WireBytes() const;
};

// Computes the delta turning `old` (described by `sig`) into `new_data`.
FileDelta ComputeDelta(const Bytes& new_data, const FileSignature& sig);

// Applies `delta` to `old_data`; returns the reconstructed new file. Returns an
// empty vector if the delta references blocks beyond the old file (corruption).
Bytes ApplyDelta(const Bytes& old_data, const FileDelta& delta);

}  // namespace bullet

#endif  // SRC_RSYNCX_DELTA_H_
