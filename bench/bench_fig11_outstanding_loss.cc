// Fig. 11: the Fig. 10 windows under 0-1.5% random core losses.
//
// Expected shape (paper): TCP now achieves lower rates, so less data in flight
// suffices; hoarding 50 outstanding blocks on a connection that slows down strands
// requests, and the dynamic controller beats every static choice.

#include "src/harness/scenario_registry.h"
#include "bench/outstanding_common.h"

namespace bullet {
namespace {

BULLET_SCENARIO(fig11_outstanding_loss, "Fig. 11 — outstanding windows under random losses") {
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kUniform;
  cfg.num_nodes = 25;
  cfg.file_mb = ScaledFileMb(100.0);
  cfg.block_bytes = 8 * 1024;
  cfg.uniform_bps = 10e6;
  cfg.uniform_delay = MsToSim(100);
  cfg.loss_min = 0.0;
  cfg.loss_max = 0.015;
  cfg.seed = 1101;
  ApplyScenarioOptions(opts, &cfg);

  ScenarioReport report(kScenarioName);
  bench::RunOutstandingSweep(cfg, {0, 15, 50, 9, 6, 3}, &report);
  return report;
}

}  // namespace
}  // namespace bullet
