// Shared helpers for the transit-stub and session/workload scenarios
// (fig17-fig20): the scaled transit-stub shape and interleaved member splits
// for concurrent sessions.

#ifndef BENCH_SESSION_COMMON_H_
#define BENCH_SESSION_COMMON_H_

#include <algorithm>
#include <vector>

#include "src/harness/scenario_registry.h"

namespace bullet {

inline RoutedTopology::TransitStubParams ScaledTransitStub(int nodes) {
  RoutedTopology::TransitStubParams p;
  p.num_nodes = nodes;
  p.transit_domains = 2;
  p.routers_per_transit = 2;
  p.routers_per_stub = 4;
  // Keep ~8 overlay nodes per stub domain so the router graph grows with the
  // overlay instead of the overlay piling into a fixed set of stubs.
  const int transit_routers = p.transit_domains * p.routers_per_transit;
  p.stub_domains_per_transit_router =
      std::max(2, nodes / (transit_routers * 8));
  p.transit_stub_bps = 30e6;  // shared gateway tier: ~8 nodes x 6 Mbps compete
  return p;
}

// Interleaved member split for two concurrent sessions: even ids (including
// node 0) vs odd ids (including node 1). Interleaving spreads both sessions
// across every stub domain, so their traffic meets on the same gateway and
// transit links instead of partitioning into disjoint regions.
inline std::vector<NodeId> EvenMembers(int num_nodes) {
  std::vector<NodeId> m;
  for (NodeId n = 0; n < num_nodes; n += 2) {
    m.push_back(n);
  }
  return m;
}

inline std::vector<NodeId> OddMembers(int num_nodes) {
  std::vector<NodeId> m;
  for (NodeId n = 1; n < num_nodes; n += 2) {
    m.push_back(n);
  }
  return m;
}

}  // namespace bullet

#endif  // BENCH_SESSION_COMMON_H_
