#include "src/codec/lt_codec.h"

#include <algorithm>

#include "src/common/hash.h"

namespace bullet {

namespace {

void XorInto(Block& dst, const Block& src) {
  const size_t n = std::min(dst.size(), src.size());
  for (size_t i = 0; i < n; ++i) {
    dst[i] ^= src[i];
  }
}

}  // namespace

std::vector<uint32_t> EncodedComposition(uint32_t encoded_id, uint32_t num_blocks,
                                         const RobustSoliton& soliton, uint64_t stream_seed) {
  Rng rng(Mix64(stream_seed ^ (static_cast<uint64_t>(encoded_id) + 1)));
  uint32_t degree = soliton.Sample(rng);
  degree = std::min(degree, num_blocks);
  std::vector<uint32_t> indices;
  indices.reserve(degree);
  // Distinct indices by rejection; degree << n in the common case.
  while (indices.size() < degree) {
    const uint32_t idx = static_cast<uint32_t>(rng.UniformInt(0, num_blocks - 1));
    if (std::find(indices.begin(), indices.end(), idx) == indices.end()) {
      indices.push_back(idx);
    }
  }
  std::sort(indices.begin(), indices.end());
  return indices;
}

LtEncoder::LtEncoder(std::vector<uint8_t> file, size_t block_bytes, uint64_t stream_seed)
    : file_(std::move(file)),
      block_bytes_(block_bytes),
      stream_seed_(stream_seed),
      soliton_(1) {
  const size_t padded = (file_.size() + block_bytes_ - 1) / block_bytes_ * block_bytes_;
  file_.resize(std::max(padded, block_bytes_), 0);
  num_blocks_ = static_cast<uint32_t>(file_.size() / block_bytes_);
  soliton_ = RobustSoliton(num_blocks_);
}

Block LtEncoder::Encode(uint32_t encoded_id) const {
  const auto indices = EncodedComposition(encoded_id, num_blocks_, soliton_, stream_seed_);
  Block out(block_bytes_, 0);
  for (const uint32_t idx : indices) {
    const uint8_t* src = file_.data() + static_cast<size_t>(idx) * block_bytes_;
    for (size_t i = 0; i < block_bytes_; ++i) {
      out[i] ^= src[i];
    }
  }
  return out;
}

LtDecoder::LtDecoder(uint32_t num_blocks, size_t block_bytes, uint64_t stream_seed)
    : num_blocks_(num_blocks),
      block_bytes_(block_bytes),
      stream_seed_(stream_seed),
      soliton_(num_blocks),
      recovered_(num_blocks),
      is_recovered_(num_blocks, 0),
      index_to_equations_(num_blocks) {}

int LtDecoder::AddEncoded(uint32_t encoded_id, Block payload) {
  ++received_count_;
  const uint32_t before = recovered_count_;

  auto eq = std::make_unique<Equation>();
  eq->payload = std::move(payload);
  // Reduce the fresh equation by everything already recovered.
  for (const uint32_t idx : EncodedComposition(encoded_id, num_blocks_, soliton_, stream_seed_)) {
    if (is_recovered_[idx]) {
      XorInto(eq->payload, recovered_[idx]);
    } else {
      eq->unknowns.push_back(idx);
    }
  }

  if (eq->unknowns.empty()) {
    // Nothing new (pure redundancy).
  } else if (eq->unknowns.size() == 1) {
    const uint32_t idx = eq->unknowns[0];
    if (!is_recovered_[idx]) {
      is_recovered_[idx] = 1;
      recovered_[idx] = std::move(eq->payload);
      ++recovered_count_;
      ripple_.push_back(idx);
    }
  } else {
    const size_t slot = equations_.size();
    for (const uint32_t idx : eq->unknowns) {
      index_to_equations_[idx].push_back(slot);
    }
    equations_.push_back(std::move(eq));
  }

  // Drain the ripple.
  while (!ripple_.empty()) {
    const uint32_t idx = ripple_.back();
    ripple_.pop_back();
    Propagate(idx);
  }

  progress_.push_back(recovered_count_);
  return static_cast<int>(recovered_count_ - before);
}

void LtDecoder::Propagate(uint32_t source_index) {
  auto slots = std::move(index_to_equations_[source_index]);
  index_to_equations_[source_index].clear();
  for (const size_t slot : slots) {
    Equation* eq = equations_[slot].get();
    if (eq == nullptr) {
      continue;
    }
    auto it = std::find(eq->unknowns.begin(), eq->unknowns.end(), source_index);
    if (it == eq->unknowns.end()) {
      continue;
    }
    XorInto(eq->payload, recovered_[source_index]);
    eq->unknowns.erase(it);
    if (eq->unknowns.size() == 1) {
      const uint32_t idx = eq->unknowns[0];
      if (!is_recovered_[idx]) {
        is_recovered_[idx] = 1;
        recovered_[idx] = std::move(eq->payload);
        ++recovered_count_;
        ripple_.push_back(idx);
      }
      equations_[slot].reset();
    } else if (eq->unknowns.empty()) {
      equations_[slot].reset();
    }
  }
}

std::vector<uint8_t> LtDecoder::Reconstruct(int64_t file_bytes) const {
  std::vector<uint8_t> out;
  out.reserve(static_cast<size_t>(num_blocks_) * block_bytes_);
  for (uint32_t idx = 0; idx < num_blocks_; ++idx) {
    if (!is_recovered_[idx]) {
      return {};
    }
    out.insert(out.end(), recovered_[idx].begin(), recovered_[idx].end());
  }
  if (file_bytes >= 0 && static_cast<size_t>(file_bytes) <= out.size()) {
    out.resize(static_cast<size_t>(file_bytes));
  }
  return out;
}

}  // namespace bullet
