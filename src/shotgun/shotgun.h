// Shotgun (Section 4.8): rsync batch mode wrapped around Bullet'.
//
// shotgun_sync at the source runs the rsync algorithm between the old and the new
// software image, producing one versioned bundle of per-file deltas; the bundle is
// disseminated to every node over the Bullet' mesh; each node's shotgund applies the
// bundle to its local tree if the bundle's version succeeds its own.
//
// This module implements the data plane for real bytes: tree diffing into a bundle,
// bundle (de)serialization with exact wire sizes, and patch application with
// verification. The Fig. 15 bench pushes these real bundle bytes through the
// emulated network; examples/mirror_sync.cc runs the full path on actual files.

#ifndef SRC_SHOTGUN_SHOTGUN_H_
#define SRC_SHOTGUN_SHOTGUN_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/rsyncx/delta.h"

namespace bullet {

// A software image: path -> file contents.
using FileTree = std::map<std::string, Bytes>;

struct BundleEntry {
  enum class Op { kPatch, kAdd, kDelete };
  Op op = Op::kAdd;
  std::string path;
  FileDelta delta;   // kPatch
  Bytes contents;    // kAdd
};

struct SyncBundle {
  uint32_t from_version = 0;
  uint32_t to_version = 0;
  size_t block_size = 0;
  std::vector<BundleEntry> entries;

  // Exact size the bundle occupies on the wire / on disk.
  int64_t WireBytes() const;
  // Bytes shotgund must write while replaying (the paper observed replay costing
  // about twice the download on PlanetLab disks).
  int64_t ReplayBytes() const;
};

// Computes the bundle turning `old_tree` into `new_tree`. Unchanged files produce no
// entry; changed files produce kPatch (rsync delta); new files kAdd; removed files
// kDelete.
SyncBundle MakeBundle(const FileTree& old_tree, const FileTree& new_tree, size_t block_size,
                      uint32_t from_version, uint32_t to_version);

// Applies `bundle` to `tree` in place. Returns false (leaving `tree` untouched) if
// any patch fails to apply.
bool ApplyBundle(FileTree& tree, const SyncBundle& bundle);

// Serialization (used by the examples to round-trip bundles through real buffers).
Bytes SerializeBundle(const SyncBundle& bundle);
std::optional<SyncBundle> ParseBundle(const Bytes& data);

}  // namespace bullet

#endif  // SRC_SHOTGUN_SHOTGUN_H_
