// Resilience under node failures: the mesh must absorb peer deaths with bounded
// slowdown — the paper's 1/n argument for mesh dissemination (Section 1).

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/core/bullet_prime.h"
#include "src/harness/churn.h"
#include "src/harness/experiment.h"

namespace bullet {
namespace {

struct ChurnRun {
  RunMetrics metrics{0};
  int victims = 0;
};

ChurnRun RunWithChurn(int nodes, int kills, uint64_t seed) {
  Rng topo_rng(seed);
  Topology::MeshParams mesh;
  mesh.num_nodes = nodes;
  mesh.core_loss_max = 0.0;
  Topology topo = Topology::FullMesh(mesh, topo_rng);
  ExperimentParams params;
  params.seed = seed;
  params.file.num_blocks = 640;  // 10 MB
  params.deadline = SecToSim(1800.0);
  Experiment exp(std::move(topo), params);

  ChurnRun run;
  if (kills > 0) {
    Rng churn_rng(seed ^ 0xdead);
    ChurnPlan plan = PlanLeafFailures(exp.tree(), params.source, kills, churn_rng);
    run.victims = static_cast<int>(plan.victims.size());
    ScheduleChurn(exp.net(), plan);
  }
  BulletPrimeConfig config;
  run.metrics = exp.Run([&](const Protocol::Context& ctx, const ControlTree* tree) {
    return std::make_unique<BulletPrime>(ctx, params.file, params.source, tree, config);
  });
  return run;
}

TEST(Churn, FailNodeCutsConnections) {
  Rng rng(3);
  Topology topo = Topology::ConstrainedAccess(4, rng);
  Network net(std::move(topo), NetworkConfig{}, 3);
  const ConnId conn = net.Connect(0, 1);
  net.Run(SecToSim(1.0));
  ASSERT_TRUE(net.IsOpen(conn));
  net.FailNode(1);
  EXPECT_FALSE(net.IsOpen(conn));
  EXPECT_TRUE(net.IsNodeFailed(1));
  EXPECT_EQ(net.Connect(0, 1), -1);
  EXPECT_EQ(net.Connect(1, 2), -1);
  net.FailNode(1);  // idempotent
  EXPECT_EQ(net.Connect(2, 3) >= 0, true);
}

TEST(Churn, PlanTargetsOnlyLeaves) {
  Rng rng(5);
  ControlTree tree = ControlTree::Random(50, 4, rng);
  Rng churn_rng(6);
  const ChurnPlan plan = PlanLeafFailures(tree, 0, 10, churn_rng);
  EXPECT_EQ(plan.victims.size(), 10u);
  for (const NodeId v : plan.victims) {
    EXPECT_NE(v, 0);
    EXPECT_TRUE(tree.children[static_cast<size_t>(v)].empty());
  }
}

TEST(Churn, SurvivorsCompleteDespiteFailures) {
  // Kill 6 of 29 receivers mid-download; every survivor must still finish.
  const ChurnRun churned = RunWithChurn(30, 6, 77);
  ASSERT_EQ(churned.victims, 6);
  int survivors_done = 0;
  for (NodeId n = 1; n < 30; ++n) {
    if (churned.metrics.node(n).completion >= 0) {
      ++survivors_done;
    }
  }
  EXPECT_GE(survivors_done, 29 - 6);
}

TEST(Churn, SlowdownIsBounded) {
  // The paper's 1/n argument: losing ~20% of peers costs far less than 2x.
  const ChurnRun baseline = RunWithChurn(30, 0, 78);
  const ChurnRun churned = RunWithChurn(30, 6, 78);
  const double base_p90 = Percentile(baseline.metrics.CompletionSeconds(0), 0.9);
  std::vector<double> survivor_times;
  for (NodeId n = 1; n < 30; ++n) {
    if (churned.metrics.node(n).completion >= 0) {
      survivor_times.push_back(SimToSec(churned.metrics.node(n).completion));
    }
  }
  ASSERT_GE(survivor_times.size(), 23u);
  EXPECT_LT(Percentile(survivor_times, 0.9), base_p90 * 1.6);
}

}  // namespace
}  // namespace bullet
