// Scenario builders reproducing the paper's experimental setups (Section 4.1), shared
// by the benchmarks, the integration tests and the examples. Each figure's bench is a
// thin wrapper over RunScenario with the right knobs.

#ifndef SRC_HARNESS_SCENARIOS_H_
#define SRC_HARNESS_SCENARIOS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/harness/experiment.h"
#include "src/harness/workload.h"
#include "src/sim/dynamics.h"

namespace bullet {

struct ScenarioConfig {
  enum class Topo {
    kMesh,         // Section 4.1: 6 Mbps access, 2 Mbps core, 5-200 ms, random loss
    kConstrained,  // Section 4.4: ample core, 800 Kbps access
    kUniform,      // Section 4.5: uniform links (bandwidth/latency below)
    kWideArea,     // Section 4.7: synthetic PlanetLab stand-in
    kTransitStub,  // Routed sparse transit-stub graph with shared interior links
  };

  Topo topo = Topo::kMesh;
  // Transit-stub shape when topo == kTransitStub; num_nodes and the loss range
  // above override the corresponding fields at build time.
  RoutedTopology::TransitStubParams transit_stub;
  int num_nodes = 100;
  double file_mb = 100.0;
  int64_t block_bytes = 16 * 1024;
  double loss_min = 0.0;
  double loss_max = 0.03;
  double uniform_bps = 10e6;
  SimTime uniform_delay = MsToSim(100);
  bool dynamic_bw = false;  // the Section 4.1 periodic correlated bandwidth halving
  uint64_t seed = 1;
  SimTime deadline = SecToSim(7200.0);
  bool record_arrivals = false;
  // Pre-PR network tick loop (full allocator recompute every quantum); used by
  // perf_core_scale to benchmark against the incremental default.
  bool full_recompute_allocator = false;
  // Elide idle tick events entirely (NetworkConfig::skip_idle_ticks): fastest
  // for workloads with long quiet phases, but not bit-reproducible against the
  // default mode, so no fig scenario sets it.
  bool skip_idle_ticks = false;
  // Rate-allocation quantum. The paper's emulator uses 10 ms; perf_core_scale
  // runs finer-grained emulation, where the event-driven core's advantage grows
  // (its allocation count tracks flow churn, not tick rate).
  SimTime quantum = MsToSim(10);
  // Force encoded-stream methodology regardless of system (Bullet and SplitStream are
  // always treated as encoded with 4% overhead, per Section 4.2).
  bool force_encoded = false;
  // Protocol-registry key requested via --system. Empty keeps the scenario's
  // own choice; like --topology, scenarios with a fixed system roster (the
  // multi-system comparison figures) ignore it.
  std::string system;
  // Fraction of receivers joining late in staggered-join scenarios; < 0 keeps
  // the scenario's default.
  double join_fraction = -1.0;
  // Pareto tail index for lifetime-churn scenarios (fig21); < 0 keeps the
  // scenario's default. Smaller alpha = heavier tail.
  double lifetime_pareto_alpha = -1.0;
  // Churn model requested via --churn-model for scenarios that honor it
  // ("none", "leaf", "stub", "gateway"); empty keeps the scenario's default.
  std::string churn_model;
  // Streaming (playback-deadline) overrides via --stream-bitrate-mbps /
  // --stream-window-blocks. When > 0, RunScenarioWorkload turns every session
  // that does not already carry a StreamingSpec into a streaming session with
  // these values (each filling the other's default when only one is set);
  // both < 0 keeps sessions in bulk mode.
  double stream_bitrate_mbps = -1.0;
  int stream_window_blocks = -1;
  // Engine worker threads via --threads. > 1 requests the partitioned parallel
  // engine (NetworkConfig::num_threads; requires a transit-stub topology — the
  // CLI validates before the run so a mesh request is a usage error, not a
  // serial fallback surprise). 1 is bit-identical to the serial engine.
  int num_threads = 1;
  // Mega-swarm scale knobs (fig24; --compress-routes / --aggregate-flows).
  // compress_routes caches gateway-to-gateway interior segments once and
  // composes per-pair routes lazily (transit-stub only; composed routes are
  // bitwise-identical to the direct computation, so any scenario may enable
  // it). aggregate_flows water-fills bundles of flows sharing an interior
  // route instead of individual flows — NOT bit-identical, opt-in only.
  bool compress_routes = false;
  bool aggregate_flows = false;
};

struct ScenarioResult {
  std::string name;
  std::vector<double> completion_sec;  // per receiver; incomplete nodes at deadline
  // Completion relative to each receiver's own join time (== completion_sec
  // for the legacy everyone-at-t0 shape); what a late joiner experiences.
  std::vector<double> download_sec;
  double duplicate_fraction = 0.0;
  double control_overhead = 0.0;
  int completed = 0;
  int receivers = 0;
  // Peak flows the allocator saw sharing one interior link (see
  // Network::max_interior_link_flows); > 1 only when pairs truly share links.
  int32_t max_shared_link_flows = 0;
  // Deterministic network-run counters (whole network, not per session: a
  // multi-session workload reports the same totals on every session's result).
  // Seed-reproducible; the perf gate normalizes them by wall time.
  uint64_t events_executed = 0;
  uint64_t allocator_epochs = 0;
  uint64_t sim_bytes_sent = 0;
  // End-of-run memory telemetry (deterministic byte counters; see
  // WorkloadResult). Zero on mesh topologies / protocols without arena state.
  uint64_t route_cache_bytes = 0;
  uint64_t path_pool_bytes = 0;
  uint64_t arena_peak_bytes = 0;
};

// Builds the topology for `cfg` (deterministic in cfg.seed).
std::unique_ptr<Topology> BuildScenarioTopology(const ScenarioConfig& cfg);

// Parses a --topology CLI value ("mesh" or "transit-stub") onto `*topo`;
// returns false on anything else.
bool ParseTopologyName(const std::string& name, ScenarioConfig::Topo* topo);

// Runs one system through the scenario as a single all-nodes zero-offset
// session (the legacy shape). `protocol` is a ProtocolRegistry key; `bp`
// applies when it resolves to Bullet'. Unknown keys abort (callers reaching
// this from the CLI validate against the registry first).
//
// The enum overload RunScenario(System, ...) is gone along with the System
// enum itself — pass the registry key ("bullet-prime", "bullet", "bittorrent",
// "splitstream") directly.
ScenarioResult RunScenario(const std::string& protocol, const ScenarioConfig& cfg,
                           const BulletPrimeConfig& bp = BulletPrimeConfig{});

// The scenario-level knob for --system: the requested registry key when set,
// otherwise `fallback` (the scenario's default).
std::string ScenarioSystemOr(const ScenarioConfig& cfg, const std::string& fallback);
// As above, for scenarios whose sessions cover member *subsets*: a requested
// protocol that requires spanning every node (Entry::requires_full_span, e.g.
// splitstream) cannot apply, so it is ignored like any other inapplicable
// override and `fallback` runs instead.
std::string ScenarioSubsetSystemOr(const ScenarioConfig& cfg, const std::string& fallback);

// Runs an arbitrary workload (N sessions with join schedules) over the
// scenario's topology, dynamics and network knobs. Sessions whose FileParams
// have num_blocks == 0 inherit the scenario file sizing (cfg.file_mb /
// cfg.block_bytes); cfg.force_encoded applies to every session. Workload-level
// generators are honored here: `access_links` mutates the freshly built
// topology (before the network snapshots it) and `churn` is installed on the
// experiment. This is what RunScenario wraps, and what the session scenarios
// (fig18+) call directly.
WorkloadResult RunScenarioWorkload(const ScenarioConfig& cfg, const WorkloadSpec& workload);

// Converts one session's results to the legacy per-system ScenarioResult
// shape, attaching the run's network-wide shared-link peak and counters.
ScenarioResult ToScenarioResult(const SessionResult& session, const WorkloadResult& run);

// --- Fig. 4 reference lines ---

// Download time were the access link the only constraint and protocols free.
double OptimalAccessLinkSeconds(double file_mb, double access_bps);
// Best plausible time for a MACEDON/TCP system: protocol headers, TCP slow start,
// and the initial tree/RanSub startup delay before the mesh forms.
double TcpFeasibleSeconds(double file_mb, double access_bps, double startup_sec);

}  // namespace bullet

#endif  // SRC_HARNESS_SCENARIOS_H_
