#include "src/harness/scenario_runner.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/common/cdf.h"
#include "src/common/stats.h"
#include "src/harness/json_writer.h"

namespace bullet {
namespace {

bool MatchesFlag(const std::string& arg, const std::string& flag) {
  return arg == flag || arg.compare(0, flag.size() + 1, flag + "=") == 0;
}

// Consumes the raw text of "--flag value" or "--flag=value"; false when missing.
bool ConsumeString(int argc, const char* const* argv, int* i, const std::string& arg,
                   const std::string& flag, std::string* out) {
  if (arg.compare(0, flag.size() + 1, flag + "=") == 0) {
    *out = arg.substr(flag.size() + 1);
    return !out->empty();
  }
  if (arg == flag) {
    if (*i + 1 >= argc) {
      return false;
    }
    *out = argv[++*i];
    return true;
  }
  return false;
}

// Strict full-string parses: no leading whitespace (strto* would skip it and
// accept e.g. " -1" for unsigned), no trailing garbage, no fractional integers,
// no out-of-range values, no nan/inf (no float round-trip, no UB casts).
bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty() || !(std::isdigit(static_cast<unsigned char>(text[0])) || text[0] == '-')) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno != 0) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseUint64(const std::string& text, uint64_t* out) {
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno != 0) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty() || !(std::isdigit(static_cast<unsigned char>(text[0])) || text[0] == '-' ||
                        text[0] == '.')) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno != 0 || !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

RunnerArgs ParseRunnerArgs(int argc, const char* const* argv) {
  RunnerArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      args.list = true;
    } else if (arg == "--help" || arg == "-h") {
      args.help = true;
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else if (MatchesFlag(arg, "--scenario")) {
      if (!ConsumeString(argc, argv, &i, arg, "--scenario", &args.scenario)) {
        args.ok = false;
        args.error = "--scenario requires a name";
        return args;
      }
    } else if (MatchesFlag(arg, "--out")) {
      if (!ConsumeString(argc, argv, &i, arg, "--out", &args.out_path)) {
        args.ok = false;
        args.error = "--out requires a path";
        return args;
      }
    } else if (MatchesFlag(arg, "--nodes")) {
      std::string text;
      int64_t v = 0;
      if (!ConsumeString(argc, argv, &i, arg, "--nodes", &text) || !ParseInt64(text, &v) ||
          v < 2 || v > 1000000) {
        args.ok = false;
        args.error = "--nodes requires an integer in [2, 1000000]";
        return args;
      }
      args.options.nodes = static_cast<int>(v);
    } else if (MatchesFlag(arg, "--file-mb")) {
      std::string text;
      double v = 0.0;
      if (!ConsumeString(argc, argv, &i, arg, "--file-mb", &text) || !ParseDouble(text, &v) ||
          v <= 0.0) {
        args.ok = false;
        args.error = "--file-mb requires a positive number";
        return args;
      }
      args.options.file_mb = v;
    } else if (MatchesFlag(arg, "--seed")) {
      std::string text;
      uint64_t v = 0;
      if (!ConsumeString(argc, argv, &i, arg, "--seed", &text) || !ParseUint64(text, &v)) {
        args.ok = false;
        args.error = "--seed requires a non-negative integer";
        return args;
      }
      args.options.seed = v;
    } else if (MatchesFlag(arg, "--block-bytes")) {
      std::string text;
      int64_t v = 0;
      if (!ConsumeString(argc, argv, &i, arg, "--block-bytes", &text) || !ParseInt64(text, &v) ||
          v < 512) {
        args.ok = false;
        args.error = "--block-bytes requires an integer >= 512";
        return args;
      }
      args.options.block_bytes = v;
    } else if (MatchesFlag(arg, "--deadline-sec")) {
      std::string text;
      double v = 0.0;
      if (!ConsumeString(argc, argv, &i, arg, "--deadline-sec", &text) ||
          !ParseDouble(text, &v) || v <= 0.0) {
        args.ok = false;
        args.error = "--deadline-sec requires a positive number";
        return args;
      }
      args.options.deadline_sec = v;
    } else {
      args.ok = false;
      args.error = "unknown argument: " + arg;
      return args;
    }
  }
  if (!args.help && !args.list && args.scenario.empty()) {
    args.ok = false;
    args.error = "one of --list or --scenario NAME is required";
  }
  return args;
}

void WriteReportJson(std::ostream& os, const ScenarioReport& report,
                     const ScenarioOptions& options) {
  JsonWriter json(os);
  json.BeginObject();
  json.Field("schema", "bullet-bench-v1");
  json.Field("scenario", report.scenario());
  json.Field("repro_scale", GetReproScale().file_scale);

  // The overrides as requested on the command line. Scenarios with fixed setups
  // (e.g. fig12's 8-node topology, fig15's delta bundle) may ignore overrides that
  // do not apply to them, so this records the request, not a guarantee.
  json.Key("requested_options").BeginObject();
  if (options.nodes) {
    json.Field("nodes", *options.nodes);
  }
  if (options.file_mb) {
    json.Field("file_mb", *options.file_mb);
  }
  if (options.seed) {
    json.Field("seed", *options.seed);
  }
  if (options.block_bytes) {
    json.Field("block_bytes", *options.block_bytes);
  }
  if (options.deadline_sec) {
    json.Field("deadline_sec", *options.deadline_sec);
  }
  json.EndObject();

  json.Key("scalars").BeginObject();
  for (const auto& [key, value] : report.scalars()) {
    json.Field(key, value);
  }
  json.EndObject();

  json.Key("series").BeginArray();
  for (const SeriesReport& s : report.series()) {
    json.BeginObject();
    json.Field("name", s.name);
    json.Field("count", static_cast<int64_t>(s.samples.size()));
    json.Field("p05_s", Percentile(s.samples, 0.05));
    json.Field("p50_s", Percentile(s.samples, 0.50));
    json.Field("p90_s", Percentile(s.samples, 0.90));
    json.Field("max_s", Percentile(s.samples, 1.0));
    json.Key("metrics").BeginObject();
    for (const auto& [key, value] : s.metrics) {
      json.Field(key, value);
    }
    json.EndObject();
    json.Key("samples").BeginArray();
    for (const double v : s.samples) {
      json.Number(v);
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();

  json.EndObject();
  os << "\n";
}

void PrintScenarioList(std::ostream& os, const ScenarioRegistry& registry) {
  for (const ScenarioRegistry::Entry* entry : registry.List()) {
    os << entry->name << "\t" << entry->description << "\n";
  }
}

void PrintRunnerUsage(std::ostream& os) {
  os << "bullet_run — registry-driven scenario runner for the Bullet' reproduction\n"
        "\n"
        "usage:\n"
        "  bullet_run --list\n"
        "  bullet_run --scenario NAME [overrides]\n"
        "\n"
        "overrides (defaults come from the scenario; fixed-setup scenarios ignore\n"
        "overrides that do not apply, see bench/*.cc):\n"
        "  --nodes N          number of participants\n"
        "  --file-mb F        transferred file size in MB (pre-scaled scenarios ignore\n"
        "                     REPRO_SCALE when this is set)\n"
        "  --seed S           simulation seed\n"
        "  --block-bytes B    block size in bytes\n"
        "  --deadline-sec D   simulated-time deadline\n"
        "  --out PATH         metrics JSON path (default BENCH_<scenario>.json)\n"
        "  --quiet            suppress the summary table / CDF dump on stdout\n"
        "\n"
        "REPRO_SCALE=ci|full scales paper file sizes (ci: 20%, default).\n";
}

int RunnerMain(int argc, const char* const* argv, const ScenarioRegistry& registry,
               std::ostream& out, std::ostream& err) {
  const RunnerArgs args = ParseRunnerArgs(argc, argv);
  if (!args.ok) {
    err << "bullet_run: " << args.error << "\n";
    PrintRunnerUsage(err);
    return 2;
  }
  if (args.help) {
    PrintRunnerUsage(out);
    return 0;
  }
  if (args.list) {
    PrintScenarioList(out, registry);
    return 0;
  }

  const ScenarioRegistry::Entry* entry = registry.Find(args.scenario);
  if (entry == nullptr) {
    err << "bullet_run: unknown scenario '" << args.scenario << "'; --list shows all "
        << registry.size() << "\n";
    return 1;
  }

  const ScenarioReport report = entry->fn(args.options);

  const std::string out_path =
      args.out_path.empty() ? "BENCH_" + report.scenario() + ".json" : args.out_path;
  std::ofstream file(out_path);
  if (!file) {
    err << "bullet_run: cannot open " << out_path << " for writing\n";
    return 1;
  }
  WriteReportJson(file, report, args.options);
  file.close();
  if (!file) {
    err << "bullet_run: failed writing " << out_path << "\n";
    return 1;
  }

  if (!args.quiet) {
    out << "### " << entry->name << " — " << entry->description << "\n";
    const std::vector<CdfSeries> series = report.AsCdfSeries();
    PrintSummaryTable(out, series);
    if (!report.scalars().empty()) {
      out << "\n### scalars\n";
      for (const auto& [key, value] : report.scalars()) {
        out << key << " = " << value << "\n";
      }
    }
    out << "\n### CDF series (fraction, seconds)\n";
    PrintCdf(out, series, 20);
  }
  out << "wrote " << out_path << "\n";
  return 0;
}

int RunnerMain(int argc, const char* const* argv) {
  return RunnerMain(argc, argv, ScenarioRegistry::Global(), std::cout, std::cerr);
}

}  // namespace bullet
