// Exhaustive tests of the paper's pseudocode: Fig. 2 (ManageSenders hill-climbing),
// the 1.5-sigma trim, and Fig. 3 (the XCP-derived outstanding-window controller).

#include "src/core/adaptation.h"

#include <gtest/gtest.h>

namespace bullet {
namespace {

constexpr int kMin = 6;
constexpr int kMax = 25;

TEST(ManageMaxPeers, NoAdjustmentWhileBelowMax) {
  PeerSetState state;
  state.max_peers = 10;
  // Still ramping up (7 < 10): MAX unchanged, history recorded.
  EXPECT_EQ(ManageMaxPeers(state, 7, 1e6, kMin, kMax), 10);
  EXPECT_EQ(state.num_prev, 7);
  EXPECT_DOUBLE_EQ(state.prev_bw, 1e6);
}

TEST(ManageMaxPeers, FirstFullEpochProbesUp) {
  PeerSetState state;
  state.max_peers = 10;
  state.num_prev = 0;  // "try to add a new peer by default"
  EXPECT_EQ(ManageMaxPeers(state, 10, 1e6, kMin, kMax), 11);
}

TEST(ManageMaxPeers, GrowthThatHelpedKeepsGrowing) {
  PeerSetState state;
  state.max_peers = 11;
  state.num_prev = 10;
  state.prev_bw = 1e6;
  EXPECT_EQ(ManageMaxPeers(state, 11, 2e6, kMin, kMax), 12);
}

TEST(ManageMaxPeers, GrowthThatHurtBacksOff) {
  PeerSetState state;
  state.max_peers = 11;
  state.num_prev = 10;
  state.prev_bw = 2e6;
  EXPECT_EQ(ManageMaxPeers(state, 11, 1e6, kMin, kMax), 10);
}

TEST(ManageMaxPeers, ShrinkThatHelpedKeepsShrinking) {
  PeerSetState state;
  state.max_peers = 9;
  state.num_prev = 10;
  state.prev_bw = 1e6;
  EXPECT_EQ(ManageMaxPeers(state, 9, 2e6, kMin, kMax), 8);
}

TEST(ManageMaxPeers, ShrinkThatHurtGrowsBack) {
  PeerSetState state;
  state.max_peers = 9;
  state.num_prev = 10;
  state.prev_bw = 2e6;
  EXPECT_EQ(ManageMaxPeers(state, 9, 1e6, kMin, kMax), 10);
}

TEST(ManageMaxPeers, EqualSizeNoChange) {
  PeerSetState state;
  state.max_peers = 10;
  state.num_prev = 10;
  state.prev_bw = 1e6;
  EXPECT_EQ(ManageMaxPeers(state, 10, 5e6, kMin, kMax), 10);
}

TEST(ManageMaxPeers, HardClamps) {
  PeerSetState state;
  state.max_peers = kMax;
  state.num_prev = 0;
  EXPECT_EQ(ManageMaxPeers(state, kMax, 1e6, kMin, kMax), kMax);

  PeerSetState low;
  low.max_peers = kMin;
  low.num_prev = kMin + 1;
  low.prev_bw = 1e6;
  // Losing a sender made us faster -> try losing another, but clamp at min.
  EXPECT_EQ(ManageMaxPeers(low, kMin, 2e6, kMin, kMax), kMin);
}

TEST(TrimIndices, EmptyAndSmall) {
  EXPECT_TRUE(TrimIndices({}, 1.5, 6).empty());
  EXPECT_TRUE(TrimIndices({1.0, 2.0, 3.0}, 1.5, 6).empty());  // at or below min_keep
}

TEST(TrimIndices, EqualMetricsTrimNothing) {
  // "If all of a peer's senders are approximately equal... none should be closed."
  const std::vector<double> equal(10, 5.0);
  EXPECT_TRUE(TrimIndices(equal, 1.5, 6).empty());
}

TEST(TrimIndices, OutlierBelowCutoffTrimmed) {
  // Nine healthy senders and one stalled one.
  std::vector<double> metric(9, 100.0);
  metric.push_back(0.0);
  const auto trimmed = TrimIndices(metric, 1.5, 6);
  ASSERT_EQ(trimmed.size(), 1u);
  EXPECT_EQ(trimmed[0], 9u);
}

TEST(TrimIndices, RespectsMinKeep) {
  // Seven entries, six must stay, even though several fall below the cutoff.
  std::vector<double> metric = {100, 100, 100, 100, 0.0, 0.0, 0.0};
  const auto trimmed = TrimIndices(metric, 0.5, 6);
  EXPECT_LE(trimmed.size(), 1u);
}

TEST(TrimIndices, WorstFirst) {
  std::vector<double> metric = {100, 100, 100, 100, 100, 100, 100, 2.0, 1.0};
  const auto trimmed = TrimIndices(metric, 1.5, 6);
  ASSERT_EQ(trimmed.size(), 2u);
  EXPECT_EQ(trimmed[0], 8u);  // the very worst goes first
  EXPECT_EQ(trimmed[1], 7u);
}

TEST(TrimIndices, StddevScalesCutoff) {
  // A single outlier among ten otherwise-equal peers has a z-score of exactly 3
  // (population sigma), whatever its magnitude: trimmed at 1 sigma, kept at 3.5.
  std::vector<double> metric = {10, 10, 10, 10, 10, 10, 10, 10, 10, 4.0};
  EXPECT_EQ(TrimIndices(metric, 1.0, 6).size(), 1u);
  EXPECT_TRUE(TrimIndices(metric, 3.5, 6).empty());
}

// ---------- Fig. 3 ----------

OutstandingParams Params() { return OutstandingParams{}; }

TEST(ManageOutstanding, IdlePipeGrowsWindow) {
  // wasted < 0: the sender sat idle; window must grow, and increases take ceil().
  const double d = ManageOutstanding(/*requested=*/3, /*in_front=*/0,
                                     /*wasted_sec=*/-0.5, /*bandwidth=*/128 * 1024,
                                     /*block=*/16 * 1024, Params());
  // 3 + 1 + 0.4 * 0.5 * 8 = 5.6 -> ceil -> 6.
  EXPECT_DOUBLE_EQ(d, 6.0);
}

TEST(ManageOutstanding, QueuedServiceTimeShrinksWindow) {
  // wasted > 0 and in_front <= 1: mild positive service time trims the window.
  const double d = ManageOutstanding(5, 1.0, 0.8, 128 * 1024, 16 * 1024, Params());
  // 5 + 1 - 0.4 * 0.8 * 8 = 3.44 (decrease: no ceil).
  EXPECT_NEAR(d, 3.44, 1e-9);
}

TEST(ManageOutstanding, DeepQueueUsesBetaTerm) {
  // wasted <= 0 but several blocks queued in front: beta term drains the queue.
  const double d = ManageOutstanding(5, 4.0, 0.0, 128 * 1024, 16 * 1024, Params());
  // 5 + 1 - 0.226 * 3 = 5.322 -> it's below requested+1 but above requested; the
  // implementation ceils only when desired > requested: 5.322 > 5 -> ceil -> 6.
  EXPECT_DOUBLE_EQ(d, 6.0);
}

TEST(ManageOutstanding, PositiveWastedWithDeepQueueNotDoubleCounted) {
  // wasted > 0 and in_front > 1: the positive service time already includes the time
  // to drain the in_front blocks, so NEITHER correction applies (the paper takes
  // care not to double count): desired stays at requested + 1.
  const double with_queue = ManageOutstanding(5, 4.0, 1.0, 128 * 1024, 16 * 1024, Params());
  EXPECT_DOUBLE_EQ(with_queue, 6.0);
  // Whereas the same positive wasted with a shallow queue does shrink the window.
  const double no_queue = ManageOutstanding(5, 1.0, 1.0, 128 * 1024, 16 * 1024, Params());
  EXPECT_LT(no_queue, with_queue);
}

TEST(ManageOutstanding, ClampsToBounds) {
  OutstandingParams p;
  p.min_outstanding = 1.0;
  p.max_outstanding = 50.0;
  EXPECT_DOUBLE_EQ(ManageOutstanding(2, 0.0, 5.0, 1024 * 1024, 16 * 1024, p), 1.0);
  EXPECT_DOUBLE_EQ(ManageOutstanding(49, 0, -10.0, 10e6, 16 * 1024, p), 50.0);
}

TEST(ManageOutstanding, ClosedLoopConvergesToPipePlusOne) {
  // Closed-loop model of a pipe holding kBdp blocks in flight: any window beyond the
  // BDP queues at the sender (in_front), and "requested" counts only the requests
  // not yet queued for service. The controller must settle near BDP + 1 — one block
  // in front of the socket buffer — rather than run away or collapse.
  OutstandingParams p;
  const double bw = 256 * 1024;  // bytes/sec
  const double block = 16 * 1024;
  constexpr double kBdp = 8.0;
  double window = 3.0;
  for (int i = 0; i < 300; ++i) {
    const double in_front = std::max(0.0, window - kBdp);
    const double wasted = in_front > 0 ? in_front * block / bw : -0.05;  // idle gap
    const double requested = window - in_front;
    window = ManageOutstanding(requested, in_front, wasted, bw, block, p);
  }
  EXPECT_GE(window, kBdp);        // fills the pipe
  EXPECT_LE(window, kBdp + 4.0);  // without hoarding a deep queue
}

TEST(ManageOutstanding, CollapsesAfterBandwidthDrop) {
  // The Fig. 12 scenario: a sender's path collapses to 100 Kbps, so nearly the whole
  // window piles up in front of its socket buffer. With `requested` counting only
  // the requests not yet queued for service, one marked block is enough to pull the
  // window down to the new, tiny pipe.
  OutstandingParams p;
  const double block = 16 * 1024;
  const double slow_bw = 12.5 * 1024;  // 100 Kbps in bytes/sec
  double window = 30.0;
  const double in_front = window - 1.0;              // pipe now holds ~1 block
  const double wasted = in_front * block / slow_bw;  // long queue wait
  const double requested = window - in_front;
  window = ManageOutstanding(requested, in_front, wasted, slow_bw, block, p);
  EXPECT_LE(window, 3.0);
  EXPECT_GE(window, 1.0);
}

}  // namespace
}  // namespace bullet
