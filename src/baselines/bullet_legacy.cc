#include "src/baselines/bullet_legacy.h"

#include <algorithm>

#include "src/overlay/protocol_registry.h"

namespace bullet {

BulletLegacy::BulletLegacy(const Context& ctx, const FileParams& file, NodeId source,
                           const ControlTree* tree, const BulletLegacyConfig& config)
    : TreeOverlayProtocol(ctx, file, source, tree, RanSubAgent::Config{}), config_(config) {}

void BulletLegacy::Start() {
  TreeOverlayProtocol::Start();
  if (is_source()) {
    queue().ScheduleAfter(SecToSim(1.0), [this] { SourcePushTick(); });
  }
  queue().ScheduleAfter(config_.summary_period, [this] { PeriodicSummaries(); });
}

PeerSummary BulletLegacy::MakeSummary() {
  PeerSummary s = TreeOverlayProtocol::MakeSummary();
  if (is_source()) {
    // Bullet receivers recover from each other; the source only feeds the tree.
    s.block_count = 0;
    s.sketch_bits = 0;
  }
  return s;
}

// ---------------------------------------------------------------------------
// Tree push: the source streams; interior nodes forward disjoint subsets.
// ---------------------------------------------------------------------------

void BulletLegacy::SourcePushTick() {
  const auto& kids = tree_children();
  const uint32_t total = file_.encoded ? file_.BlockSpace() : file_.num_blocks;
  if (!kids.empty()) {
    while (next_push_block_ < total) {
      bool sent = false;
      for (size_t i = 0; i < kids.size(); ++i) {
        const size_t idx = (next_push_child_ + i) % kids.size();
        const ConnId conn = ChildConn(kids[idx]);
        if (conn < 0 ||
            net().QueuedBytes(conn, self()) >= config_.forward_queue_blocks * file_.block_bytes) {
          continue;
        }
        auto msg = std::make_unique<bp::BlockMsg>();
        msg->block_id = next_push_block_;
        msg->pushed = true;
        msg->Finalize(file_.block_bytes);
        net().Send(conn, self(), std::move(msg));
        if (file_.encoded) {
          have_.Set(next_push_block_);
          sketch_.AddBlock(next_push_block_);
        }
        next_push_child_ = (idx + 1) % kids.size();
        ++next_push_block_;
        sent = true;
        break;
      }
      if (!sent) {
        break;
      }
    }
  }
  if (next_push_block_ < total && !net().queue().stopped()) {
    queue().ScheduleAfter(config_.source_push_retry, [this] { SourcePushTick(); });
  }
}

void BulletLegacy::ForwardPushed(uint32_t id) {
  // Disjointness down the tree: each pushed block goes to exactly one child,
  // round-robin, skipping children whose pipe is already full (they will recover the
  // block from the mesh instead).
  const auto& kids = tree_children();
  if (kids.empty()) {
    return;
  }
  for (size_t i = 0; i < kids.size(); ++i) {
    const size_t idx = (next_forward_child_ + i) % kids.size();
    const ConnId conn = ChildConn(kids[idx]);
    if (conn < 0 ||
        net().QueuedBytes(conn, self()) >= config_.forward_queue_blocks * file_.block_bytes) {
      continue;
    }
    auto msg = std::make_unique<bp::BlockMsg>();
    msg->block_id = id;
    msg->pushed = true;
    msg->Finalize(file_.block_bytes);
    net().Send(conn, self(), std::move(msg));
    next_forward_child_ = (idx + 1) % kids.size();
    return;
  }
}

// ---------------------------------------------------------------------------
// Mesh recovery
// ---------------------------------------------------------------------------

void BulletLegacy::OnRanSubEpoch(const std::vector<PeerSummary>& subset) {
  if (is_source() || complete()) {
    return;
  }
  // Replace senders that contributed nothing over a full epoch.
  std::vector<ConnId> dead;
  for (const auto& [conn, s] : senders_) {
    if (s.active && s.epoch_bytes == 0 && s.connected_at + SecToSim(10.0) < now()) {
      dead.push_back(conn);
    }
  }
  for (const ConnId conn : dead) {
    auto it = senders_.find(conn);
    sender_nodes_.erase(it->second.node);
    std::vector<uint32_t> requeue;
    for (const auto& [block, c] : requested_) {
      if (c == conn) {
        requeue.push_back(block);
      }
    }
    for (const uint32_t b : requeue) {
      requested_.erase(b);
    }
    net().Close(conn);
    senders_.erase(it);
  }
  for (auto& [conn, s] : senders_) {
    s.epoch_bytes = 0;
  }

  // Fill the fixed-size peer set, preferring peers with the most blocks.
  const int want = config_.num_senders - static_cast<int>(sender_nodes_.size());
  if (want <= 0) {
    return;
  }
  std::vector<PeerSummary> ranked;
  for (const auto& peer : subset) {
    if (peer.node != self() && peer.node >= 0 && peer.block_count > 0 &&
        sender_nodes_.count(peer.node) == 0) {
      ranked.push_back(peer);
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const PeerSummary& a, const PeerSummary& b) { return a.block_count > b.block_count; });
  for (int i = 0; i < want && i < static_cast<int>(ranked.size()); ++i) {
    ConnectToSender(ranked[static_cast<size_t>(i)].node);
  }
}

void BulletLegacy::ConnectToSender(NodeId node) {
  const ConnId conn = net().Connect(self(), node);
  if (conn < 0) {
    return;
  }
  sender_nodes_.insert(node);
  Sender s;
  s.node = node;
  s.conn = conn;
  s.has.Resize(file_.BlockSpace());
  s.connected_at = now();
  senders_.emplace(conn, std::move(s));
}

void BulletLegacy::OnPeerConnUp(ConnId conn, NodeId /*peer*/, bool initiator) {
  if (initiator && senders_.count(conn) > 0) {
    auto req = std::make_unique<bp::PeerRequestMsg>();
    AccountControlOut(req->wire_bytes);
    net().Send(conn, self(), std::move(req));
  }
}

void BulletLegacy::OnPeerConnDown(ConnId conn, NodeId /*peer*/) {
  auto it = senders_.find(conn);
  if (it != senders_.end()) {
    sender_nodes_.erase(it->second.node);
    std::vector<uint32_t> requeue;
    for (const auto& [block, c] : requested_) {
      if (c == conn) {
        requeue.push_back(block);
      }
    }
    for (const uint32_t b : requeue) {
      requested_.erase(b);
    }
    senders_.erase(it);
    return;
  }
  receivers_.erase(conn);
}

void BulletLegacy::IssueRequests(Sender& s) {
  if (!s.active || complete()) {
    return;
  }
  const auto valid = [this](uint32_t id) {
    return !have_.Test(id) && requested_.find(id) == requested_.end();
  };
  const auto rarity = [](uint32_t) { return 0; };  // legacy Bullet has no rarity data
  while (s.outstanding < config_.outstanding) {
    const auto pick = s.candidates.Pick(config_.request_strategy, valid, rarity, rng());
    if (!pick.has_value()) {
      break;
    }
    auto req = std::make_unique<bp::BlockRequestMsg>();
    req->block_id = *pick;
    AccountControlOut(req->wire_bytes);
    requested_.emplace(*pick, s.conn);
    ++s.outstanding;
    net().Send(s.conn, self(), std::move(req));
  }
}

// ---------------------------------------------------------------------------
// Periodic availability summaries (epoch-driven, unlike Bullet''s self-clocking)
// ---------------------------------------------------------------------------

void BulletLegacy::SendDiff(Receiver& r) {
  auto diff = std::make_unique<bp::DiffMsg>();
  diff->ids = have_.DiffFrom(r.told);
  if (diff->ids.empty()) {
    return;
  }
  for (const uint32_t id : diff->ids) {
    r.told.Set(id);
  }
  diff->Finalize(file_.BlockSpace());
  AccountControlOut(diff->wire_bytes);
  net().Send(r.conn, self(), std::move(diff));
}

void BulletLegacy::PeriodicSummaries() {
  for (auto& [conn, r] : receivers_) {
    SendDiff(r);
  }
  if (!net().queue().stopped()) {
    queue().ScheduleAfter(config_.summary_period, [this] { PeriodicSummaries(); });
  }
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

void BulletLegacy::OnProtocolMessage(ConnId conn, NodeId from, std::unique_ptr<Message> msg) {
  switch (msg->type) {
    case bp::PeerRequestMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      if (static_cast<int>(receivers_.size()) < config_.max_receivers) {
        Receiver r;
        r.node = from;
        r.conn = conn;
        r.told.Resize(file_.BlockSpace());
        auto [it, inserted] = receivers_.emplace(conn, std::move(r));
        auto accept = std::make_unique<bp::PeerAcceptMsg>();
        AccountControlOut(accept->wire_bytes);
        net().Send(conn, self(), std::move(accept));
        SendDiff(it->second);
      } else {
        auto reject = std::make_unique<bp::PeerRejectMsg>();
        AccountControlOut(reject->wire_bytes);
        net().Send(conn, self(), std::move(reject));
      }
      return;
    }
    case bp::PeerAcceptMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      auto it = senders_.find(conn);
      if (it != senders_.end()) {
        it->second.active = true;
      }
      return;
    }
    case bp::PeerRejectMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      auto it = senders_.find(conn);
      if (it != senders_.end()) {
        sender_nodes_.erase(it->second.node);
        senders_.erase(it);
      }
      net().Close(conn);
      return;
    }
    case bp::DiffMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      auto it = senders_.find(conn);
      if (it == senders_.end()) {
        return;
      }
      Sender& s = it->second;
      for (const uint32_t id : static_cast<bp::DiffMsg&>(*msg).ids) {
        if (id < file_.BlockSpace() && !s.has.Test(id)) {
          s.has.Set(id);
          if (!have_.Test(id)) {
            s.candidates.Add(id);
          }
        }
      }
      IssueRequests(s);
      return;
    }
    case bp::BlockRequestMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      auto it = receivers_.find(conn);
      if (it == receivers_.end()) {
        return;
      }
      const uint32_t id = static_cast<bp::BlockRequestMsg&>(*msg).block_id;
      if (!have_.Test(id)) {
        return;
      }
      it->second.told.Set(id);
      auto block = std::make_unique<bp::BlockMsg>();
      block->block_id = id;
      block->Finalize(file_.block_bytes);
      net().Send(conn, self(), std::move(block));
      return;
    }
    case bp::BlockMsg::kType: {
      auto& block = static_cast<bp::BlockMsg&>(*msg);
      if (block.pushed) {
        const bool fresh = AcceptBlock(block.block_id, block.wire_bytes);
        if (fresh && !complete()) {
          ForwardPushed(block.block_id);
        }
        return;
      }
      auto it = senders_.find(conn);
      if (it != senders_.end()) {
        Sender& s = it->second;
        s.outstanding = std::max(0, s.outstanding - 1);
        s.epoch_bytes += block.wire_bytes;
        requested_.erase(block.block_id);
        AcceptBlock(block.block_id, block.wire_bytes);
        if (!complete()) {
          IssueRequests(s);
        }
      } else {
        AcceptBlock(block.block_id, block.wire_bytes);
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace bullet

namespace bullet {

void RegisterBulletLegacyProtocol() {
  ProtocolRegistry::Entry entry;
  entry.key = "bullet";
  entry.display_name = "Bullet";
  entry.description = "The released Bullet (INFOCOM'03 design): fixed peer sets and "
                      "per-peer windows over a source-encoded stream";
  entry.encoded_stream = true;
  entry.config_type = &typeid(BulletLegacyConfig);
  entry.make = [](const ProtocolRegistry::SessionEnv& env) -> ProtocolRegistry::NodeFactory {
    BulletLegacyConfig config;
    if (const auto* c = std::any_cast<BulletLegacyConfig>(&env.spec->protocol_config)) {
      config = *c;
    }
    const FileParams file = env.spec->file;
    const NodeId source = env.spec->source;
    const ControlTree* tree = env.tree;
    return [config, file, source, tree](const Protocol::Context& ctx) {
      return std::unique_ptr<Protocol>(new BulletLegacy(ctx, file, source, tree, config));
    };
  };
  ProtocolRegistry::Global().Register(std::move(entry));
}

}  // namespace bullet
