// Fig. 7: static peer-set sizes (6, 10, 14 senders and receivers) versus Bullet''s
// dynamic sizing, on the lossy Section 4.1 topology.
//
// Expected shape (paper): 14 > 10 > 6 (more TCP flows are more resilient to loss);
// the dynamic strategy starts at 10 and tracks the 14-peer configuration for about
// half the receivers.

#include "src/harness/scenario_registry.h"
#include "bench/peerset_common.h"

namespace bullet {
namespace {

BULLET_SCENARIO(fig07_peerset_static, "Fig. 7 — peer-set size under random losses") {
  ScenarioConfig cfg;
  cfg.num_nodes = 100;
  cfg.file_mb = ScaledFileMb(100.0);
  cfg.seed = 701;
  ApplyScenarioOptions(opts, &cfg);

  ScenarioReport report(kScenarioName);
  bench::RunPeerSetSweep(cfg, {14, 0, 10, 6}, &report);
  return report;
}

}  // namespace
}  // namespace bullet
