#include "src/harness/scenarios.h"

#include <memory>

#include "src/baselines/bittorrent.h"
#include "src/baselines/bullet_legacy.h"
#include "src/baselines/splitstream.h"
#include "src/core/bullet_prime.h"

namespace bullet {

const char* SystemName(System system) {
  switch (system) {
    case System::kBulletPrime:
      return "BulletPrime";
    case System::kBulletLegacy:
      return "Bullet";
    case System::kBitTorrent:
      return "BitTorrent";
    case System::kSplitStream:
      return "SplitStream";
  }
  return "?";
}

std::unique_ptr<Topology> BuildScenarioTopology(const ScenarioConfig& cfg) {
  Rng rng(cfg.seed ^ 0x74d3c2e1b5a69788ULL);
  switch (cfg.topo) {
    case ScenarioConfig::Topo::kMesh: {
      MeshTopology::MeshParams mesh;
      mesh.num_nodes = cfg.num_nodes;
      mesh.core_loss_min = cfg.loss_min;
      mesh.core_loss_max = cfg.loss_max;
      return std::make_unique<MeshTopology>(MeshTopology::FullMesh(mesh, rng));
    }
    case ScenarioConfig::Topo::kConstrained:
      return std::make_unique<MeshTopology>(MeshTopology::ConstrainedAccess(cfg.num_nodes, rng));
    case ScenarioConfig::Topo::kUniform:
      return std::make_unique<MeshTopology>(MeshTopology::Uniform(
          cfg.num_nodes, cfg.uniform_bps, cfg.uniform_delay, cfg.loss_min, cfg.loss_max, rng));
    case ScenarioConfig::Topo::kWideArea:
      return std::make_unique<MeshTopology>(MeshTopology::WideArea(cfg.num_nodes, rng));
    case ScenarioConfig::Topo::kTransitStub: {
      RoutedTopology::TransitStubParams params = cfg.transit_stub;
      params.num_nodes = cfg.num_nodes;
      params.transit_loss_min = cfg.loss_min;
      params.transit_loss_max = cfg.loss_max;
      return std::make_unique<RoutedTopology>(RoutedTopology::TransitStub(params, rng));
    }
  }
  MeshTopology::MeshParams mesh;
  mesh.num_nodes = cfg.num_nodes;
  return std::make_unique<MeshTopology>(MeshTopology::FullMesh(mesh, rng));
}

bool ParseTopologyName(const std::string& name, ScenarioConfig::Topo* topo) {
  if (name == "mesh") {
    *topo = ScenarioConfig::Topo::kMesh;
    return true;
  }
  if (name == "transit-stub") {
    *topo = ScenarioConfig::Topo::kTransitStub;
    return true;
  }
  return false;
}

ScenarioResult RunScenario(System system, const ScenarioConfig& cfg, const BulletPrimeConfig& bp) {
  ExperimentParams params;
  params.seed = cfg.seed;
  params.file.block_bytes = cfg.block_bytes;
  params.file.num_blocks =
      static_cast<uint32_t>(cfg.file_mb * 1024.0 * 1024.0 / static_cast<double>(cfg.block_bytes));
  params.deadline = cfg.deadline;
  params.record_arrivals = cfg.record_arrivals;
  params.full_recompute_allocator = cfg.full_recompute_allocator;
  params.skip_idle_ticks = cfg.skip_idle_ticks;
  params.quantum = cfg.quantum;

  // Per Section 4.2: Bullet and SplitStream run over a source-encoded stream; their
  // downloads complete at (1 + 4%) n distinct blocks.
  const bool encoded = cfg.force_encoded || system == System::kBulletLegacy ||
                       system == System::kSplitStream;
  params.file.encoded = encoded;

  Experiment exp(BuildScenarioTopology(cfg), params);
  if (cfg.dynamic_bw) {
    StartPeriodicBandwidthChanges(exp.net(), BandwidthDynamicsParams{});
  }

  std::shared_ptr<StripeForest> forest;
  if (system == System::kSplitStream) {
    SplitStreamConfig ss_config;
    Rng forest_rng(cfg.seed ^ 0x517cc1b727220a95ULL);
    forest = std::make_shared<StripeForest>(
        StripeForest::Build(cfg.num_nodes, ss_config.num_stripes, params.source, forest_rng));
  }

  RunMetrics metrics = exp.Run([&](const Protocol::Context& ctx, const ControlTree* tree)
                                   -> std::unique_ptr<Protocol> {
    switch (system) {
      case System::kBulletPrime:
        return std::make_unique<BulletPrime>(ctx, params.file, params.source, tree, bp);
      case System::kBulletLegacy:
        return std::make_unique<BulletLegacy>(ctx, params.file, params.source, tree,
                                              BulletLegacyConfig{});
      case System::kBitTorrent:
        return std::make_unique<BitTorrent>(ctx, params.file, params.source, BitTorrentConfig{});
      case System::kSplitStream:
        return std::make_unique<SplitStream>(ctx, params.file, params.source, forest.get(),
                                             SplitStreamConfig{});
    }
    return nullptr;
  });

  ScenarioResult result;
  result.name = SystemName(system);
  result.completion_sec = metrics.CompletionSeconds(params.source, SimToSec(cfg.deadline));
  result.duplicate_fraction = metrics.DuplicateFraction();
  result.control_overhead = metrics.ControlOverheadFraction();
  result.completed = metrics.completed();
  result.receivers = cfg.num_nodes - 1;
  result.max_shared_link_flows = exp.net().max_interior_link_flows();
  return result;
}

double OptimalAccessLinkSeconds(double file_mb, double access_bps) {
  return file_mb * 1024.0 * 1024.0 * 8.0 / access_bps;
}

double TcpFeasibleSeconds(double file_mb, double access_bps, double startup_sec) {
  // Protocol efficiency: TCP/IP header overhead on 1460-byte segments plus block
  // headers (~0.2%), and a sustained-utilization factor for congestion avoidance.
  constexpr double kHeaderEfficiency = 1460.0 / 1500.0;
  constexpr double kTcpUtilization = 0.95;
  const double goodput = access_bps * kHeaderEfficiency * kTcpUtilization;
  return startup_sec + file_mb * 1024.0 * 1024.0 * 8.0 / goodput;
}

}  // namespace bullet
