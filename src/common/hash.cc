#include "src/common/hash.h"

namespace bullet {

namespace {
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t Fnv1a64Seeded(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = kFnvOffset ^ seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}
}  // namespace

uint64_t Fnv1a64(const void* data, size_t len) { return Fnv1a64Seeded(data, len, 0); }

uint64_t Fnv1a64(const std::string& s) { return Fnv1a64(s.data(), s.size()); }

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Digest128 StrongDigest(const void* data, size_t len) {
  Digest128 d;
  d.lo = Mix64(Fnv1a64Seeded(data, len, 0x243f6a8885a308d3ULL));
  d.hi = Mix64(Fnv1a64Seeded(data, len, 0x13198a2e03707344ULL));
  return d;
}

}  // namespace bullet
