// Fig. 8: the Fig. 7 peer-set comparison under synthetic bandwidth changes plus
// random losses.
//
// Expected shape (paper): the dynamic approach matches and sometimes exceeds the
// best static configuration once conditions change underneath the overlay.

#include "src/harness/scenario_registry.h"
#include "bench/peerset_common.h"

namespace bullet {
namespace {

BULLET_SCENARIO(fig08_peerset_dynamic, "Fig. 8 — peer-set size under bandwidth changes") {
  ScenarioConfig cfg;
  cfg.num_nodes = 100;
  cfg.file_mb = ScaledFileMb(100.0);
  cfg.dynamic_bw = true;
  cfg.seed = 801;
  ApplyScenarioOptions(opts, &cfg);

  ScenarioReport report(kScenarioName);
  bench::RunPeerSetSweep(cfg, {14, 0, 10, 6}, &report);
  return report;
}

}  // namespace
}  // namespace bullet
