#include "src/sim/topology.h"

namespace bullet {

Topology::Topology(int num_nodes)
    : num_nodes_(num_nodes),
      uplinks_(static_cast<size_t>(num_nodes)),
      downlinks_(static_cast<size_t>(num_nodes)),
      core_(static_cast<size_t>(num_nodes) * static_cast<size_t>(num_nodes)) {}

SimTime Topology::PathDelay(NodeId src, NodeId dst) const {
  return uplink(src).delay + core(src, dst).delay + downlink(dst).delay;
}

SimTime Topology::Rtt(NodeId src, NodeId dst) const {
  return PathDelay(src, dst) + PathDelay(dst, src);
}

double Topology::PathLoss(NodeId src, NodeId dst) const {
  const double p_core = core(src, dst).loss_rate;
  const double p_up = uplink(src).loss_rate;
  const double p_down = downlink(dst).loss_rate;
  return 1.0 - (1.0 - p_core) * (1.0 - p_up) * (1.0 - p_down);
}

Topology Topology::FullMesh(const MeshParams& params, Rng& rng) {
  Topology topo(params.num_nodes);
  for (NodeId n = 0; n < params.num_nodes; ++n) {
    topo.uplink(n) = LinkParams{params.access_bps, params.access_delay, 0.0};
    topo.downlink(n) = LinkParams{params.access_bps, params.access_delay, 0.0};
  }
  for (NodeId s = 0; s < params.num_nodes; ++s) {
    for (NodeId d = 0; d < params.num_nodes; ++d) {
      if (s == d) {
        continue;
      }
      LinkParams& link = topo.core(s, d);
      link.bandwidth_bps = params.core_bps;
      link.delay = rng.UniformInt(params.core_delay_min, params.core_delay_max);
      link.loss_rate = rng.UniformDouble(params.core_loss_min, params.core_loss_max);
    }
  }
  return topo;
}

Topology Topology::ConstrainedAccess(int num_nodes, Rng& /*rng*/) {
  Topology topo(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    topo.uplink(n) = LinkParams{800e3, MsToSim(1), 0.0};
    topo.downlink(n) = LinkParams{800e3, MsToSim(1), 0.0};
  }
  for (NodeId s = 0; s < num_nodes; ++s) {
    for (NodeId d = 0; d < num_nodes; ++d) {
      if (s == d) {
        continue;
      }
      topo.core(s, d) = LinkParams{10e6, MsToSim(1), 0.0};
    }
  }
  return topo;
}

Topology Topology::Uniform(int num_nodes, double link_bps, SimTime link_delay, double loss_min,
                           double loss_max, Rng& rng) {
  Topology topo(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    // Ample access links so the uniform core links are the constraint.
    topo.uplink(n) = LinkParams{10.0 * link_bps, MsToSim(0), 0.0};
    topo.downlink(n) = LinkParams{10.0 * link_bps, MsToSim(0), 0.0};
  }
  for (NodeId s = 0; s < num_nodes; ++s) {
    for (NodeId d = 0; d < num_nodes; ++d) {
      if (s == d) {
        continue;
      }
      LinkParams& link = topo.core(s, d);
      link.bandwidth_bps = link_bps;
      link.delay = link_delay;
      link.loss_rate = loss_min >= loss_max ? loss_min : rng.UniformDouble(loss_min, loss_max);
    }
  }
  return topo;
}

Topology Topology::WideArea(int num_nodes, Rng& rng) {
  Topology topo(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    // Heterogeneous site uplinks; downstream usually a bit faster than upstream.
    const double up = rng.UniformDouble(1e6, 20e6);
    const double down = up * rng.UniformDouble(1.0, 2.0);
    topo.uplink(n) = LinkParams{up, MsToSim(1), 0.0};
    topo.downlink(n) = LinkParams{down, MsToSim(1), 0.0};
  }
  for (NodeId s = 0; s < num_nodes; ++s) {
    for (NodeId d = 0; d < num_nodes; ++d) {
      if (s == d) {
        continue;
      }
      LinkParams& link = topo.core(s, d);
      // Wide-area paths: rarely the bottleneck but occasionally congested.
      link.bandwidth_bps = rng.UniformDouble(5e6, 50e6);
      link.delay = rng.UniformInt(MsToSim(5), MsToSim(200));
      link.loss_rate = rng.UniformDouble(0.0, 0.01);
    }
  }
  return topo;
}

}  // namespace bullet
