// End-to-end playback-deadline (streaming) coverage: live protocols driving
// the sliding request window to completion, late joiners catching up from the
// live edge, the stall/missed-deadline series in SessionResult, the departed-
// incomplete CDF exclusion, and SplitStream's stripe-forest repair.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/baselines/splitstream.h"
#include "src/baselines/stripe_forest.h"
#include "src/harness/experiment.h"
#include "src/harness/workload.h"
#include "src/harness/workload_gen.h"

namespace bullet {
namespace {

std::unique_ptr<Topology> SmallUniform(int nodes, uint64_t seed) {
  Rng rng(seed);
  return std::make_unique<MeshTopology>(
      MeshTopology::Uniform(nodes, 10e6, MsToSim(20), 0.0, 0.0, rng));
}

FileParams SmallFile(uint32_t blocks, bool encoded = false) {
  FileParams file;
  file.block_bytes = 16 * 1024;
  file.num_blocks = blocks;
  file.encoded = encoded;
  return file;
}

StreamingSpec TestStream(int window = 32) {
  StreamingSpec s;
  s.bitrate_mbps = 2.0;
  s.window_blocks = window;
  s.startup_buffer_sec = 2.0;
  return s;
}

SessionResult RunStreamingSession(const std::string& protocol, int nodes, uint32_t blocks,
                                  uint64_t seed, const StreamingSpec& stream,
                                  bool encoded = false) {
  WorkloadParams params;
  params.seed = seed;
  params.deadline = SecToSim(900.0);
  WorkloadExperiment exp(SmallUniform(nodes, seed), params);
  SessionSpec spec;
  spec.protocol = protocol;
  spec.file = SmallFile(blocks, encoded);
  spec.streaming = stream;
  exp.AddSession(spec);
  return exp.Run().sessions.front();
}

TEST(Streaming, BulletPrimeStreamsToCompletionWithStallSeries) {
  const SessionResult r = RunStreamingSession("bullet-prime", 12, 160, 901, TestStream());
  EXPECT_EQ(r.completed, 11);
  ASSERT_EQ(r.completion_sec.size(), 11u);
  // The stall/missed series parallel the completion series in streaming mode.
  ASSERT_EQ(r.stall_sec.size(), 11u);
  ASSERT_EQ(r.missed_deadline.size(), 11u);
  EXPECT_EQ(r.playback_finished, 11);
  for (const double stall : r.stall_sec) {
    EXPECT_GE(stall, 0.0);
  }
  // A 160-block stream at 2 Mbps lasts ~10.5 s; a completion reported far
  // earlier would mean the source ignored the release pacing.
  for (const double done : r.completion_sec) {
    EXPECT_GT(done, 10.0);
  }
}

TEST(Streaming, BitTorrentHonorsTheSlidingWindow) {
  const SessionResult r = RunStreamingSession("bittorrent", 12, 160, 902, TestStream());
  EXPECT_EQ(r.completed, 11);
  ASSERT_EQ(r.stall_sec.size(), 11u);
  for (const double done : r.completion_sec) {
    EXPECT_GT(done, 10.0) << "completed before the stream finished releasing";
  }
}

TEST(Streaming, SplitStreamPacedSourceCompletesPositions) {
  const SessionResult r =
      RunStreamingSession("splitstream", 12, 160, 903, TestStream(), /*encoded=*/true);
  EXPECT_EQ(r.completed, 11);
  ASSERT_EQ(r.stall_sec.size(), 11u);
  for (const double done : r.completion_sec) {
    EXPECT_GT(done, 10.0);
  }
}

TEST(Streaming, LateJoinersCatchUpFromTheLiveEdge) {
  WorkloadParams params;
  params.seed = 904;
  params.deadline = SecToSim(900.0);
  WorkloadExperiment exp(SmallUniform(10, 904), params);
  SessionSpec spec;
  spec.protocol = "bullet-prime";
  spec.file = SmallFile(160);
  spec.streaming = TestStream();
  // The last two members tune in mid-stream (160 blocks * ~65.5 ms = ~10.5 s).
  spec.join_offsets.assign(10, 0);
  spec.join_offsets[8] = SecToSim(5.0);
  spec.join_offsets[9] = SecToSim(7.0);
  exp.AddSession(spec);
  const SessionResult r = exp.Run().sessions.front();
  // Live-edge catch-up: late joiners skip the positions already played, so
  // they still complete (and their playback can finish) inside the deadline.
  EXPECT_EQ(r.completed, 9);
  EXPECT_EQ(r.playback_finished, 9);
}

TEST(Streaming, DepartedIncompleteReceiversAreExcludedFromTheCdf) {
  // Bulk-mode churn session: lifetimes short enough that several receivers
  // depart mid-download. The departed-incomplete members must not appear in
  // the completion/download series (pre-fix they reported the run deadline,
  // skewing every churn CDF tail).
  WorkloadParams params;
  params.seed = 905;
  params.deadline = SecToSim(600.0);
  WorkloadExperiment exp(SmallUniform(16, 905), params);
  SessionSpec spec;
  spec.protocol = "bullet-prime";
  spec.file = SmallFile(640);  // 10 MB: long enough that short stays expire
  spec.lifetimes = std::make_shared<ParetoLifetime>(
      /*alpha=*/1.1, /*xm=*/SecToSim(5.0), /*depart_after_completion=*/true,
      /*linger=*/SecToSim(10.0));
  exp.AddSession(spec);
  const SessionResult r = exp.Run().sessions.front();
  ASSERT_GT(r.departed_incomplete, 0) << "test needs mid-download departures to bite";
  EXPECT_EQ(r.completion_sec.size(),
            static_cast<size_t>(r.receivers - r.departed_incomplete));
  EXPECT_EQ(r.download_sec.size(), r.completion_sec.size());
  const double deadline_sec = SimToSec(params.deadline);
  for (const double done : r.completion_sec) {
    EXPECT_LT(done, deadline_sec) << "a departed receiver leaked into the series";
  }
}

TEST(Streaming, SplitStreamRepairsOrphanedStripes) {
  // Fail a stripe-interior node mid-run: its children must regraft onto a
  // surviving ancestor (pre-fix they stayed orphaned and fig21-style churn
  // runs completed 0 sessions) and every survivor must still finish.
  const int kNodes = 16;
  const uint64_t kSeed = 906;
  ExperimentParams params;
  params.seed = kSeed;
  params.file = SmallFile(320, /*encoded=*/true);
  params.deadline = SecToSim(900.0);
  Rng topo_rng(kSeed);
  Experiment exp(MeshTopology::Uniform(kNodes, 10e6, MsToSim(20), 0.0, 0.0, topo_rng), params);
  Rng forest_rng(kSeed);
  const StripeForest forest = StripeForest::Build(kNodes, 8, 0, forest_rng);

  // Pick a victim that is a non-source parent in some stripe, plus one of its
  // children there (deterministic given the seed).
  NodeId victim = -1;
  NodeId child = -1;
  int stripe = -1;
  for (int s = 0; s < 8 && victim < 0; ++s) {
    for (NodeId n = 0; n < kNodes; ++n) {
      const NodeId p = forest.trees[static_cast<size_t>(s)].parent[static_cast<size_t>(n)];
      if (p > 0) {
        victim = p;
        child = n;
        stripe = s;
        break;
      }
    }
  }
  ASSERT_GE(victim, 0) << "forest has no non-source interior parents";

  std::map<NodeId, SplitStream*> instances;
  exp.net().queue().Schedule(SecToSim(1.0), [&] { exp.net().FailNode(victim); });
  const RunMetrics metrics = exp.Run([&](const Protocol::Context& ctx, const ControlTree*) {
    auto p = std::make_unique<SplitStream>(ctx, params.file, params.source, &forest,
                                           SplitStreamConfig{});
    instances[ctx.self] = p.get();
    return p;
  });

  // The protocol instances outlive Run; the repaired parent pointer persists.
  ASSERT_TRUE(exp.net().IsNodeFailed(victim)) << "run ended before the scheduled failure";
  const NodeId repaired_parent = instances.at(child)->stripe_parent(stripe);
  EXPECT_NE(repaired_parent, victim) << "orphaned stripe never reparented";
  EXPECT_GE(repaired_parent, 0);
  EXPECT_FALSE(exp.net().IsNodeFailed(repaired_parent)) << "regrafted onto a dead ancestor";
  int survivors_done = 0;
  for (NodeId n = 1; n < kNodes; ++n) {
    if (n != victim && metrics.node(n).completion >= 0) {
      ++survivors_done;
    }
  }
  EXPECT_EQ(survivors_done, kNodes - 2) << "a survivor starved after the stripe failure";
}

}  // namespace
}  // namespace bullet
