// Shared sweep for the Fig. 10/11 outstanding-request-window scenarios: Bullet' with
// each fixed per-peer window (0 = the paper's dynamic controller), peer management
// disabled with up to 5 senders, on the given uniform-link config.

#ifndef BENCH_OUTSTANDING_COMMON_H_
#define BENCH_OUTSTANDING_COMMON_H_

#include <string>
#include <vector>

#include "src/harness/scenario_registry.h"

namespace bullet {
namespace bench {

inline void RunOutstandingSweep(const ScenarioConfig& cfg, const std::vector<int>& windows,
                                ScenarioReport* report) {
  for (const int window : windows) {
    BulletPrimeConfig bp;
    // The paper runs this experiment with up to 5 senders and peer management off.
    bp.dynamic_peer_sets = false;
    bp.initial_senders = 5;
    bp.initial_receivers = 5;
    std::string name;
    if (window == 0) {
      name = "BulletPrime dyn outstanding";
    } else {
      bp.dynamic_outstanding = false;
      bp.fixed_outstanding = window;
      name = "BulletPrime " + std::to_string(window) + " outstanding";
    }
    report->AddCompletion(name, RunScenario("bullet-prime", cfg, bp));
  }
}

}  // namespace bench
}  // namespace bullet

#endif  // BENCH_OUTSTANDING_COMMON_H_
